package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/transport"
)

// syncBuffer is a goroutine-safe output sink for the daemon under test.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// TestDaemonServesClients boots the daemon on a free port, drives it with a
// real TCP client, and lets the serve window close it down.
func TestDaemonServesClients(t *testing.T) {
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-racks", "4", "-servers-per-rack", "4", "-spines", "2",
			"-interval", "200us",
			"-serve-for", "2s",
			"-stats-every", "0",
		}, &out)
	}()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address; output: %q", out.String())
		} else {
			time.Sleep(time.Millisecond)
		}
	}

	cli, err := transport.DialAlloc(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.FlowletStart(1, 0, 7, 1); err != nil {
		t.Fatal(err)
	}
	if err := cli.Flush(); err != nil {
		t.Fatal(err)
	}
	updates, _, err := cli.Recv(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != 1 || updates[0].Flow != 1 || updates[0].Rate <= 0 {
		t.Fatalf("updates = %+v; want one positive rate for flow 1", updates)
	}
	cli.Close()

	if err := <-done; err != nil {
		t.Fatalf("run returned %v; output: %q", err, out.String())
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("missing shutdown line in output: %q", out.String())
	}
}

// TestDaemonDrainSnapshotWarmRestart covers the survivable lifecycle end to
// end: SIGTERM drains the daemon gracefully, the flow-state snapshot lands
// in -snapshot, and a second daemon started from that file re-seeds its
// registry so a returning client re-attaches to a live allocation.
func TestDaemonDrainSnapshotWarmRestart(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "flowtuned.snap")
	common := []string{
		"-listen", "127.0.0.1:0",
		"-racks", "4", "-servers-per-rack", "4", "-spines", "2",
		"-interval", "200us", "-stats-every", "0",
		"-snapshot", snap,
	}

	var out1 syncBuffer
	_, done1 := startShardDaemon(t, &out1, common...)
	addr1 := listenRE.FindStringSubmatch(out1.String())[1]
	cli, err := transport.DialAlloc(addr1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.FlowletStart(7, 0, 12, 2); err != nil {
		t.Fatal(err)
	}
	if err := cli.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.Recv(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// The first SIGTERM drains; the still-connected session keeps its flow
	// alive into the snapshot.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-done1; err != nil {
		t.Fatalf("drain: %v; output %q", err, out1.String())
	}
	if !strings.Contains(out1.String(), "wrote flow-state snapshot") {
		t.Fatalf("no snapshot written; output %q", out1.String())
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatal(err)
	}
	cli.Close()

	var out2 syncBuffer
	_, done2 := startShardDaemon(t, &out2, append([]string{"-serve-for", "3s"}, common...)...)
	addr2 := listenRE.FindStringSubmatch(out2.String())[1]
	if !strings.Contains(out2.String(), "restored 1 flows from "+snap) {
		t.Fatalf("warm restart did not restore the flow; output %q", out2.String())
	}
	// Re-registering the same flowlet adopts the restored, unowned entry in
	// place. The restored allocation is already converged, so no update
	// crosses the notification threshold until the allocation changes —
	// a second flow on the same path shifts both rates and the adopted
	// flow's new rate reaches the session.
	cli2, err := transport.DialAlloc(addr2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	if err := cli2.FlowletStart(7, 0, 12, 2); err != nil {
		t.Fatal(err)
	}
	if err := cli2.FlowletStart(8, 0, 12, 2); err != nil {
		t.Fatal(err)
	}
	if err := cli2.Flush(); err != nil {
		t.Fatal(err)
	}
	rate7 := 0.0
	for deadline := time.Now().Add(5 * time.Second); rate7 == 0 && time.Now().Before(deadline); {
		ups, _, err := cli2.Recv(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range ups {
			if u.Flow == 7 && u.Rate > 0 {
				rate7 = u.Rate
			}
		}
	}
	if rate7 <= 0 {
		t.Fatal("restarted daemon never sent a rate for the adopted flow 7")
	}
	cli2.Close()
	if err := <-done2; err != nil {
		t.Fatalf("restarted daemon: %v; output %q", err, out2.String())
	}
}

// TestDaemonFlagErrors covers flag and topology validation.
func TestDaemonFlagErrors(t *testing.T) {
	var out syncBuffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-racks", "0", "-serve-for", "1ms"}, &out); err == nil {
		t.Error("invalid topology accepted")
	}
	if err := run([]string{"-blocks", "3", "-serve-for", "1ms", "-listen", "127.0.0.1:0"}, &out); err == nil {
		t.Error("non-power-of-two block count accepted")
	}
	for _, bad := range []string{"2", "a/2", "1/x", "3/3", "-1/2", "0/0"} {
		if err := run([]string{"-shard", bad, "-serve-for", "1ms", "-listen", "127.0.0.1:0"}, &out); err == nil {
			t.Errorf("-shard %q accepted", bad)
		}
	}
	if err := run([]string{"-peers", "127.0.0.1:1", "-serve-for", "1ms", "-listen", "127.0.0.1:0"}, &out); err == nil {
		t.Error("-peers without -shard accepted")
	}
	if err := run([]string{"-takeover", "-serve-for", "1ms", "-listen", "127.0.0.1:0"}, &out); err == nil {
		t.Error("-takeover without -shard accepted")
	}
	// 2 shards do not divide the default 9 racks.
	if err := run([]string{"-shard", "0/2", "-serve-for", "1ms", "-listen", "127.0.0.1:0"}, &out); err == nil {
		t.Error("2 shards over 9 racks accepted")
	}
	// Sharding composes with the multicore engine: a shard of an 8-rack
	// fabric can itself span 2 blocks.
	if err := run([]string{"-shard", "0/2", "-blocks", "2", "-racks", "8",
		"-serve-for", "1ms", "-listen", "127.0.0.1:0"}, &out); err != nil {
		t.Errorf("sharded multicore daemon rejected: %v", err)
	}
}

var adminRE = regexp.MustCompile(`admin endpoint on http://(\S+)`)

// adminGet fetches one admin-endpoint path and returns status code and body.
func adminGet(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestDaemonAdminFlagValidation: a malformed -admin address must fail the
// daemon at startup, before it begins serving allocator traffic.
func TestDaemonAdminFlagValidation(t *testing.T) {
	for _, bad := range []string{"not-an-address", "127.0.0.1:notaport", "127.0.0.1:99999"} {
		var out syncBuffer
		if err := run([]string{"-admin", bad, "-serve-for", "1ms", "-listen", "127.0.0.1:0"}, &out); err == nil {
			t.Errorf("-admin %q accepted", bad)
		}
	}
}

// TestDaemonAdminEndpoint boots the daemon with -admin, scrapes the live
// endpoint, and checks the exposition lints clean and the probes and trace
// respond.
func TestDaemonAdminEndpoint(t *testing.T) {
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0", "-admin", "127.0.0.1:0",
			"-racks", "4", "-servers-per-rack", "4", "-spines", "2",
			"-interval", "200us", "-serve-for", "2s", "-stats-every", "0",
		}, &out)
	}()
	var base string
	for deadline := time.Now().Add(5 * time.Second); base == ""; time.Sleep(time.Millisecond) {
		if m := adminRE.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its admin address; output: %q", out.String())
		}
	}

	status, body := adminGet(t, base, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status = %d", status)
	}
	if err := telemetry.Lint(body); err != nil {
		t.Fatalf("lint: %v\n%s", err, body)
	}
	for _, series := range []string{"flowtune_iterations_total", "flowtune_flows", "flowtune_draining 0"} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
	for _, probe := range []string{"/healthz", "/readyz"} {
		if status, body := adminGet(t, base, probe); status != http.StatusOK || body != "ok\n" {
			t.Errorf("%s = %d %q; want 200 ok", probe, status, body)
		}
	}
	status, body = adminGet(t, base, "/trace")
	if status != http.StatusOK {
		t.Fatalf("/trace status = %d", status)
	}
	var trace telemetry.FlightTrace
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("/trace not JSON: %v\n%s", err, body)
	}
	if err := <-done; err != nil {
		t.Fatalf("run returned %v; output: %q", err, out.String())
	}
}

// TestAdminProbesFollowDrain pins the probe semantics the deployment docs
// promise, using the exact closures run() wires up: Drain flips /readyz to
// 503 immediately (stop routing new work here) while /healthz stays 200
// (don't kill the process — it is still fanning out final rates); only when
// Shutdown completes does /healthz go unhealthy too.
func TestAdminProbesFollowDrain(t *testing.T) {
	topo, err := topology.NewTwoTier(topology.Config{
		Racks: 4, ServersPerRack: 4, Spines: 2, LinkCapacity: 10e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reg := telemetry.NewRegistry()
	srv.RegisterMetrics(reg)
	adm, err := telemetry.NewAdmin(telemetry.AdminConfig{
		Registry: reg,
		Healthy:  func() bool { return !srv.Closed() },
		Ready:    func() bool { return !srv.Closed() && !srv.Draining() },
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := adm.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	base := "http://" + addr.String()

	expect := func(stage, probe string, want int) {
		t.Helper()
		if status, _ := adminGet(t, base, probe); status != want {
			t.Errorf("%s: %s = %d; want %d", stage, probe, status, want)
		}
	}
	expect("running", "/healthz", http.StatusOK)
	expect("running", "/readyz", http.StatusOK)

	srv.Drain()
	expect("draining", "/healthz", http.StatusOK)
	expect("draining", "/readyz", http.StatusServiceUnavailable)

	if _, err := srv.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
	expect("shut down", "/healthz", http.StatusServiceUnavailable)
	expect("shut down", "/readyz", http.StatusServiceUnavailable)
}

// startShardDaemon boots one cluster member on a free port and returns its
// address and exit channel.
func startShardDaemon(t *testing.T, out *syncBuffer, args ...string) (addr string, done chan error) {
	t.Helper()
	done = make(chan error, 1)
	go func() { done <- run(args, out) }()
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address; output: %q", out.String())
		} else {
			time.Sleep(time.Millisecond)
		}
	}
	return addr, done
}

// TestShardedClusterOverTCP boots a 2-shard cluster as two real daemon
// processes-worth of run() over TCP, lets the peer dial-with-retry converge
// (shard 1 starts knowing shard 0's address only), and drives a cross-shard
// flow through a client on each shard.
func TestShardedClusterOverTCP(t *testing.T) {
	common := []string{
		"-racks", "4", "-servers-per-rack", "4", "-spines", "2",
		"-interval", "200us", "-serve-for", "5s", "-stats-every", "0",
	}
	var out0, out1 syncBuffer
	addr0, done0 := startShardDaemon(t, &out0, append([]string{
		"-listen", "127.0.0.1:0", "-shard", "0/2"}, common...)...)
	addr1, done1 := startShardDaemon(t, &out1, append([]string{
		"-listen", "127.0.0.1:0", "-shard", "1/2", "-peers", addr0}, common...)...)

	// Only shard 1 dials (shard 0's port was unknown when shard 0 started),
	// which still exercises the dial-with-retry path and the 1→0 exchange
	// direction; full meshes list every peer in each daemon's -peers.
	cli0, err := transport.DialAlloc(addr0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli0.Close()
	cli1, err := transport.DialAlloc(addr1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cli1.Close()

	// Cross-shard flow owned by shard 0 (server 0 → server 12) and a local
	// flow on shard 1; both free-running daemons must allocate.
	if err := cli0.FlowletStart(1, 0, 12, 1); err != nil {
		t.Fatal(err)
	}
	if err := cli0.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cli1.FlowletStart(2, 12, 8, 1); err != nil {
		t.Fatal(err)
	}
	if err := cli1.Flush(); err != nil {
		t.Fatal(err)
	}
	ups0, _, err := cli0.Recv(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups0) != 1 || ups0[0].Flow != 1 || ups0[0].Rate <= 0 {
		t.Fatalf("shard 0 updates = %+v", ups0)
	}
	ups1, _, err := cli1.Recv(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups1) != 1 || ups1[0].Flow != 2 || ups1[0].Rate <= 0 {
		t.Fatalf("shard 1 updates = %+v", ups1)
	}
	if !strings.Contains(out1.String(), "peer "+addr0+" connected") {
		t.Fatalf("shard 1 never connected its peer; output: %q", out1.String())
	}

	cli0.Close()
	cli1.Close()
	if err := <-done0; err != nil {
		t.Fatalf("shard 0: %v; output %q", err, out0.String())
	}
	if err := <-done1; err != nil {
		t.Fatalf("shard 1: %v; output %q", err, out1.String())
	}
}

package main

import (
	"bytes"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// syncBuffer is a goroutine-safe output sink for the daemon under test.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// TestDaemonServesClients boots the daemon on a free port, drives it with a
// real TCP client, and lets the serve window close it down.
func TestDaemonServesClients(t *testing.T) {
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-racks", "4", "-servers-per-rack", "4", "-spines", "2",
			"-interval", "200us",
			"-serve-for", "2s",
			"-stats-every", "0",
		}, &out)
	}()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address; output: %q", out.String())
		} else {
			time.Sleep(time.Millisecond)
		}
	}

	cli, err := transport.DialAlloc(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.FlowletStart(1, 0, 7, 1); err != nil {
		t.Fatal(err)
	}
	if err := cli.Flush(); err != nil {
		t.Fatal(err)
	}
	updates, _, err := cli.Recv(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != 1 || updates[0].Flow != 1 || updates[0].Rate <= 0 {
		t.Fatalf("updates = %+v; want one positive rate for flow 1", updates)
	}
	cli.Close()

	if err := <-done; err != nil {
		t.Fatalf("run returned %v; output: %q", err, out.String())
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("missing shutdown line in output: %q", out.String())
	}
}

// TestDaemonFlagErrors covers flag and topology validation.
func TestDaemonFlagErrors(t *testing.T) {
	var out syncBuffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-racks", "0", "-serve-for", "1ms"}, &out); err == nil {
		t.Error("invalid topology accepted")
	}
	if err := run([]string{"-blocks", "3", "-serve-for", "1ms", "-listen", "127.0.0.1:0"}, &out); err == nil {
		t.Error("non-power-of-two block count accepted")
	}
}

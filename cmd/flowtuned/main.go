// Command flowtuned runs the Flowtune allocator as a networked daemon:
// endpoints connect over TCP, report flowlet starts and ends, and receive
// explicit rate updates each allocation interval, all over the compact
// binary protocol of internal/wire.
//
// The daemon free-runs one allocator iteration every -interval (clients may
// also drive iterations explicitly with Step frames, which deterministic
// test harnesses use). -blocks switches the engine from the sequential NED
// allocator to the FlowBlock/LinkBlock multicore allocator; on a NUMA
// machine, a `numa`-tagged build additionally accepts -pin to bind the
// workers to sockets. Loop latency percentiles and update counters are
// logged every -stats-every.
//
// A cluster of daemons shares the fabric with -shard i/N: each daemon owns
// shard i of an N-way rack partition, accepts only flowlets sourced in its
// racks, and exchanges boundary prices with the peer daemons listed in
// -peers (dialed with bounded exponential backoff, so start order does not
// matter). -shard composes with -blocks, so each shard can itself span
// cores (`flowtuned -shard i/N -blocks M`). With -takeover the peers also replicate flow state to each other
// and adopt a dead daemon's rack block. Per-session hardening is configured
// with -max-session-flows, -max-frame-rate and -idle-timeout.
//
// -admin serves the observability endpoint (internal/telemetry): Prometheus
// text-format metrics on /metrics, liveness and drain-aware readiness probes
// on /healthz and /readyz, the convergence flight recorder as JSON on
// /trace, and net/http/pprof under /debug/pprof/.
//
// SIGINT/SIGTERM triggers a graceful drain: the daemon stops admitting new
// flowlets, finishes the in-flight exchange fan-out, pushes a final
// drain-flagged epoch notification so clients freeze at their last rates,
// and — when -snapshot names a file — persists its flow state for a warm
// restart (-drain-timeout bounds the wait; a second signal exits
// immediately). A daemon started with -snapshot pointing at an existing
// file re-seeds its registry and prices from it before listening, so
// returning clients re-attach to live allocations instead of re-registering
// from scratch.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowtuned: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable body of the command.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("flowtuned", flag.ContinueOnError)
	fs.SetOutput(out)
	listen := fs.String("listen", "127.0.0.1:9070", "TCP address to listen on (port 0 picks a free port)")
	racks := fs.Int("racks", 9, "racks in the scheduled two-tier fabric")
	serversPerRack := fs.Int("servers-per-rack", 16, "servers per rack")
	spines := fs.Int("spines", 4, "spine switches")
	capacity := fs.Float64("capacity", 10e9, "link capacity in bits/s")
	gamma := fs.Float64("gamma", 0, "NED step size (0 selects the engine default)")
	threshold := fs.Float64("threshold", 0.01, "rate-update notification threshold")
	interval := fs.Duration("interval", time.Millisecond, "allocation interval (0 = step-driven only)")
	blocks := fs.Int("blocks", 0, "rack blocks for the multicore engine (0 = sequential); composes with -shard for multicore shards")
	pin := fs.Bool("pin", false, "pin the multicore engine's workers to NUMA sockets (requires -blocks and a `numa`-tagged build; no-op otherwise)")
	shard := fs.String("shard", "", "shard assignment i/N: own shard i of an N-way rack partition (empty = unsharded)")
	peers := fs.String("peers", "", "comma-separated addresses of the peer shard daemons, dialed with retry")
	takeover := fs.Bool("takeover", false, "replicate flow state to peers and adopt a dead peer's rack block (requires -shard)")
	heartbeatTimeout := fs.Duration("heartbeat-timeout", 0, "declare a silent peer dead after this long (0 = exchange-failure detection only)")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Second, "max wait for the in-flight fan-out during graceful shutdown")
	snapshot := fs.String("snapshot", "", "flow-state snapshot file: restored on start if present, written on graceful shutdown")
	wireQuantize := fs.Bool("wire-quantize", false, "send fan-out rates quantized to 1 Mbps (paper granularity) instead of bit-exact float64s")
	maxSessionFlows := fs.Int("max-session-flows", 0, "max live flowlets per session (0 = unlimited)")
	maxFrameRate := fs.Float64("max-frame-rate", 0, "max frames/s per session before disconnect (0 = unlimited)")
	idleTimeout := fs.Duration("idle-timeout", 0, "disconnect sessions idle this long (0 = never)")
	admin := fs.String("admin", "", "admin HTTP address serving /metrics, /healthz, /readyz, /trace and /debug/pprof/ (port 0 picks a free port; empty = disabled)")
	epoch := fs.Uint64("epoch", 1, "allocator epoch announced to clients")
	statsEvery := fs.Duration("stats-every", 10*time.Second, "loop-stats logging period (0 disables)")
	serveFor := fs.Duration("serve-for", 0, "exit after this long (0 = run until SIGINT/SIGTERM)")
	verbose := fs.Bool("verbose", false, "log session lifecycle events")
	if err := fs.Parse(args); err != nil {
		return err
	}

	topo, err := topology.NewTwoTier(topology.Config{
		Racks:          *racks,
		ServersPerRack: *serversPerRack,
		Spines:         *spines,
		LinkCapacity:   *capacity,
	})
	if err != nil {
		return err
	}
	shardIndex, numShards, err := parseShard(*shard)
	if err != nil {
		return err
	}
	if *peers != "" && numShards == 0 {
		return fmt.Errorf("flowtuned: -peers requires -shard")
	}
	if *takeover && numShards == 0 {
		return fmt.Errorf("flowtuned: -takeover requires -shard")
	}
	cfg := server.Config{
		Topology:         topo,
		Gamma:            *gamma,
		UpdateThreshold:  *threshold,
		Interval:         *interval,
		Blocks:           *blocks,
		PinWorkers:       *pin,
		QuantizeRates:    *wireQuantize,
		Epoch:            *epoch,
		MaxSessionFlows:  *maxSessionFlows,
		MaxFrameRate:     *maxFrameRate,
		IdleTimeout:      *idleTimeout,
		ShardIndex:       shardIndex,
		NumShards:        numShards,
		Takeover:         *takeover,
		HeartbeatTimeout: *heartbeatTimeout,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) { fmt.Fprintf(out, "flowtuned: "+format+"\n", args...) }
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	if *admin != "" {
		// The admin endpoint: Prometheus /metrics, drain-aware probes
		// (/readyz flips to 503 the moment a drain starts; /healthz stays
		// 200 until shutdown completes), the convergence flight recorder on
		// /trace, and pprof. Registered before any traffic so the loop
		// series cover the daemon's whole life.
		reg := telemetry.NewRegistry()
		srv.RegisterMetrics(reg)
		rec := telemetry.NewFlightRecorder(0)
		srv.AttachFlightRecorder(rec)
		adm, err := telemetry.NewAdmin(telemetry.AdminConfig{
			Registry: reg,
			Recorder: rec,
			Healthy:  func() bool { return !srv.Closed() },
			Ready:    func() bool { return !srv.Closed() && !srv.Draining() },
		})
		if err != nil {
			return err
		}
		adminAddr, err := adm.Start(*admin)
		if err != nil {
			return err
		}
		defer adm.Close()
		fmt.Fprintf(out, "flowtuned: admin endpoint on http://%s (/metrics /healthz /readyz /trace /debug/pprof/)\n", adminAddr)
	}

	if *snapshot != "" {
		snap, err := os.ReadFile(*snapshot)
		switch {
		case err == nil:
			if err := srv.Restore(snap); err != nil {
				return fmt.Errorf("flowtuned: restore %s: %w", *snapshot, err)
			}
			fmt.Fprintf(out, "flowtuned: restored %d flows from %s\n", srv.NumFlows(), *snapshot)
		case os.IsNotExist(err):
			// Cold start; the file is written on graceful shutdown.
		default:
			return fmt.Errorf("flowtuned: read snapshot: %w", err)
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "flowtuned: listening on %s (%d servers, interval %v, engine %s, epoch %d%s)\n",
		ln.Addr(), topo.NumServers(), *interval, engineName(*blocks), *epoch, shardName(shardIndex, numShards))

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	stop := make(chan struct{})
	defer close(stop)
	if *peers != "" {
		for _, addr := range strings.Split(*peers, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			go maintainPeer(srv, addr, out, stop)
		}
	}

	var statsC <-chan time.Time
	if *statsEvery > 0 {
		t := time.NewTicker(*statsEvery)
		defer t.Stop()
		statsC = t.C
	}
	var deadline <-chan time.Time
	if *serveFor > 0 {
		deadline = time.After(*serveFor)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	for {
		select {
		case s := <-sig:
			fmt.Fprintf(out, "flowtuned: received %v, draining (timeout %v; signal again to exit now)\n", s, *drainTimeout)
			return gracefulShutdown(srv, *drainTimeout, *snapshot, out, sig)
		case <-deadline:
			fmt.Fprintf(out, "flowtuned: serve window elapsed, shutting down\n")
			return gracefulShutdown(srv, *drainTimeout, *snapshot, out, sig)
		case err := <-serveErr:
			if err == net.ErrClosed {
				return nil
			}
			return err
		case <-statsC:
			logStats(out, srv)
		}
	}
}

// gracefulShutdown drains the daemon — no new flowlets, in-flight fan-out
// finished, clients frozen warm by a drain-flagged epoch notification — then
// persists the final flow-state snapshot when snapPath is set. A second
// signal during the drain aborts it and exits immediately.
func gracefulShutdown(srv *server.Server, timeout time.Duration, snapPath string, out io.Writer, sig <-chan os.Signal) error {
	type result struct {
		snap []byte
		err  error
	}
	done := make(chan result, 1)
	go func() {
		snap, err := srv.Shutdown(timeout)
		done <- result{snap, err}
	}()
	var res result
	select {
	case res = <-done:
	case s := <-sig:
		fmt.Fprintf(out, "flowtuned: received %v again, exiting immediately\n", s)
		return srv.Close()
	}
	if res.err != nil {
		return res.err
	}
	if snapPath != "" {
		if err := os.WriteFile(snapPath, res.snap, 0o644); err != nil {
			return fmt.Errorf("flowtuned: write snapshot: %w", err)
		}
		fmt.Fprintf(out, "flowtuned: wrote flow-state snapshot to %s (%d bytes)\n", snapPath, len(res.snap))
	}
	fmt.Fprintf(out, "flowtuned: drained and shut down\n")
	return nil
}

// engineName labels the configured engine for the startup line.
func engineName(blocks int) string {
	if blocks > 0 {
		return fmt.Sprintf("parallel(%d blocks)", blocks)
	}
	return "sequential"
}

// shardName labels the shard assignment for the startup line.
func shardName(index, shards int) string {
	if shards == 0 {
		return ""
	}
	return fmt.Sprintf(", shard %d/%d", index, shards)
}

// parseShard parses an "i/N" shard assignment; the empty string means
// unsharded. Range validation beyond i < N is the server's job.
func parseShard(s string) (index, shards int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("flowtuned: -shard must be i/N, got %q", s)
	}
	index, err = strconv.Atoi(strings.TrimSpace(i))
	if err != nil {
		return 0, 0, fmt.Errorf("flowtuned: -shard index: %w", err)
	}
	shards, err = strconv.Atoi(strings.TrimSpace(n))
	if err != nil {
		return 0, 0, fmt.Errorf("flowtuned: -shard count: %w", err)
	}
	if shards <= 0 || index < 0 || index >= shards {
		return 0, 0, fmt.Errorf("flowtuned: -shard %q out of range", s)
	}
	return index, shards, nil
}

// maintainPeer keeps one peer connection alive for the daemon's lifetime:
// it dials until the handshake succeeds (so cluster start order does not
// matter), then watches for the connection being dropped — a peer restart,
// a network failure, or an exchange timeout — and redials. Retries back off
// exponentially with jitter (capped at 2s) so a dead peer is not hammered
// in lockstep by every survivor, and the schedule resets once a dial
// succeeds. Failures are surfaced whenever their cause changes: a handshake
// *rejection* (mismatched -shard count, protocol version) is a permanent
// misconfiguration the operator must see, not a transient dial error to
// retry silently.
func maintainPeer(srv *server.Server, addr string, out io.Writer, stop <-chan struct{}) {
	lastErr := ""
	redial := &transport.Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second}
	wait := func(d time.Duration) bool {
		select {
		case <-stop:
			return false
		case <-time.After(d):
			return true
		}
	}
	for {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		var shard int
		if err == nil {
			shard, err = srv.ConnectPeer(conn)
		}
		if err != nil {
			if msg := err.Error(); msg != lastErr {
				lastErr = msg
				fmt.Fprintf(out, "flowtuned: peer %s: %v (retrying)\n", addr, err)
			}
			if !wait(redial.Next()) {
				return
			}
			continue
		}
		lastErr = ""
		redial.Reset()
		fmt.Fprintf(out, "flowtuned: peer %s connected\n", addr)
		for srv.HasPeer(shard) {
			if !wait(500 * time.Millisecond) {
				return
			}
		}
		fmt.Fprintf(out, "flowtuned: peer %s dropped, redialing\n", addr)
	}
}

// logStats prints one loop-stats line.
func logStats(out io.Writer, srv *server.Server) {
	ls := srv.LoopStats()
	st := srv.Stats()
	fmt.Fprintf(out, "flowtuned: %d flows, %d sessions; %d iterations (p50 %.1fµs p99 %.1fµs), %d updates sent, %d coalesced\n",
		srv.NumFlows(), st.SessionsActive, ls.Iterations,
		ls.LatencySec.P50*1e6, ls.LatencySec.P99*1e6, st.UpdatesSent, st.UpdatesCoalesced)
}

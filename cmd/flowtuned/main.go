// Command flowtuned runs the Flowtune allocator as a networked daemon:
// endpoints connect over TCP, report flowlet starts and ends, and receive
// explicit rate updates each allocation interval, all over the compact
// binary protocol of internal/wire.
//
// The daemon free-runs one allocator iteration every -interval (clients may
// also drive iterations explicitly with Step frames, which deterministic
// test harnesses use). -blocks switches the engine from the sequential NED
// allocator to the FlowBlock/LinkBlock multicore allocator. Loop latency
// percentiles and update counters are logged every -stats-every.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowtuned: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable body of the command.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("flowtuned", flag.ContinueOnError)
	fs.SetOutput(out)
	listen := fs.String("listen", "127.0.0.1:9070", "TCP address to listen on (port 0 picks a free port)")
	racks := fs.Int("racks", 9, "racks in the scheduled two-tier fabric")
	serversPerRack := fs.Int("servers-per-rack", 16, "servers per rack")
	spines := fs.Int("spines", 4, "spine switches")
	capacity := fs.Float64("capacity", 10e9, "link capacity in bits/s")
	gamma := fs.Float64("gamma", 0, "NED step size (0 selects the engine default)")
	threshold := fs.Float64("threshold", 0.01, "rate-update notification threshold")
	interval := fs.Duration("interval", time.Millisecond, "allocation interval (0 = step-driven only)")
	blocks := fs.Int("blocks", 0, "rack blocks for the multicore engine (0 = sequential)")
	epoch := fs.Uint64("epoch", 1, "allocator epoch announced to clients")
	statsEvery := fs.Duration("stats-every", 10*time.Second, "loop-stats logging period (0 disables)")
	serveFor := fs.Duration("serve-for", 0, "exit after this long (0 = run until SIGINT/SIGTERM)")
	verbose := fs.Bool("verbose", false, "log session lifecycle events")
	if err := fs.Parse(args); err != nil {
		return err
	}

	topo, err := topology.NewTwoTier(topology.Config{
		Racks:          *racks,
		ServersPerRack: *serversPerRack,
		Spines:         *spines,
		LinkCapacity:   *capacity,
	})
	if err != nil {
		return err
	}
	cfg := server.Config{
		Topology:        topo,
		Gamma:           *gamma,
		UpdateThreshold: *threshold,
		Interval:        *interval,
		Blocks:          *blocks,
		Epoch:           *epoch,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) { fmt.Fprintf(out, "flowtuned: "+format+"\n", args...) }
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "flowtuned: listening on %s (%d servers, interval %v, engine %s, epoch %d)\n",
		ln.Addr(), topo.NumServers(), *interval, engineName(*blocks), *epoch)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	var statsC <-chan time.Time
	if *statsEvery > 0 {
		t := time.NewTicker(*statsEvery)
		defer t.Stop()
		statsC = t.C
	}
	var deadline <-chan time.Time
	if *serveFor > 0 {
		deadline = time.After(*serveFor)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	for {
		select {
		case s := <-sig:
			fmt.Fprintf(out, "flowtuned: received %v, shutting down\n", s)
			return nil
		case <-deadline:
			fmt.Fprintf(out, "flowtuned: serve window elapsed, shutting down\n")
			return nil
		case err := <-serveErr:
			if err == net.ErrClosed {
				return nil
			}
			return err
		case <-statsC:
			logStats(out, srv)
		}
	}
}

// engineName labels the configured engine for the startup line.
func engineName(blocks int) string {
	if blocks > 0 {
		return fmt.Sprintf("parallel(%d blocks)", blocks)
	}
	return "sequential"
}

// logStats prints one loop-stats line.
func logStats(out io.Writer, srv *server.Server) {
	ls := srv.LoopStats()
	st := srv.Stats()
	fmt.Fprintf(out, "flowtuned: %d flows, %d sessions; %d iterations (p50 %.1fµs p99 %.1fµs), %d updates sent, %d coalesced\n",
		srv.NumFlows(), st.SessionsActive, ls.Iterations,
		ls.LatencySec.P50*1e6, ls.LatencySec.P99*1e6, st.UpdatesSent, st.UpdatesCoalesced)
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestTinyRun drives one small Flowtune simulation end to end through the
// CLI surface.
func TestTinyRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-scheme", "flowtune",
		"-workload", "web",
		"-racks", "4", "-servers-per-rack", "4", "-spines", "2",
		"-duration", "0.001",
		"-warmup", "0.0005",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput: %s", err, out.String())
	}
	for _, want := range []string{
		"scheme=Flowtune workload=web",
		"servers=16",
		"completion rate:",
		"allocator:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestTinyRunDCTCP covers a non-Flowtune scheme (no allocator section).
func TestTinyRunDCTCP(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-scheme", "dctcp",
		"-workload", "cache",
		"-racks", "4", "-servers-per-rack", "4", "-spines", "2",
		"-duration", "0.001",
		"-warmup", "0.0005",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput: %s", err, out.String())
	}
	if strings.Contains(out.String(), "allocator:") {
		t.Errorf("DCTCP run printed allocator stats:\n%s", out.String())
	}
}

func TestFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-scheme", "carrier-pigeon"}, &out); err == nil {
		t.Error("unknown scheme accepted")
	}
	if err := run([]string{"-workload", "bogus"}, &out); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-load", "7"}, &out); err == nil {
		t.Error("out-of-range load accepted")
	}
}

// Command flowtune-sim runs a single packet-level simulation of one
// congestion-control scheme over one workload and prints flow-completion-time
// percentiles, drop statistics, and queueing delays — the raw ingredients of
// Figures 8–11.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowtune-sim: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable body of the command.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("flowtune-sim", flag.ContinueOnError)
	fs.SetOutput(out)
	schemeName := fs.String("scheme", "flowtune", "scheme: flowtune, dctcp, pfabric, sfqcodel, xcp, tcp")
	kindName := fs.String("workload", "web", "workload: web, cache, hadoop, websearch, datamining")
	load := fs.Float64("load", 0.6, "target server load in (0,1]")
	duration := fs.Float64("duration", 10e-3, "measured simulation time in seconds")
	warmup := fs.Float64("warmup", 2e-3, "warmup time in seconds")
	racks := fs.Int("racks", 0, "racks (0 = the paper's 9-rack fabric)")
	serversPerRack := fs.Int("servers-per-rack", 0, "servers per rack (0 = the paper's 16)")
	spines := fs.Int("spines", 0, "spine switches (0 = the paper's 4)")
	seed := fs.Int64("seed", 1, "workload random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scheme, err := parseScheme(*schemeName)
	if err != nil {
		return err
	}
	kind, err := workload.ParseKind(strings.ToLower(*kindName))
	if err != nil {
		return err
	}

	topoCfg := topology.DefaultSimConfig()
	if *racks > 0 {
		topoCfg.Racks = *racks
	}
	if *serversPerRack > 0 {
		topoCfg.ServersPerRack = *serversPerRack
	}
	if *spines > 0 {
		topoCfg.Spines = *spines
	}
	topo, err := topology.NewTwoTier(topoCfg)
	if err != nil {
		return err
	}
	horizon := *warmup + *duration
	eng, err := transport.NewEngine(transport.EngineConfig{
		Scheme:            scheme,
		Topology:          topo,
		QueueSamplePeriod: 100e-6,
		Horizon:           horizon,
	})
	if err != nil {
		return err
	}
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Kind:               kind,
		NumServers:         topo.NumServers(),
		ServerLinkCapacity: topo.Config().LinkCapacity,
		Load:               *load,
		Seed:               *seed,
	})
	if err != nil {
		return err
	}
	flows := gen.GenerateUntil(horizon * 0.9)
	if err := eng.AddFlowlets(flows); err != nil {
		return err
	}
	eng.Run(horizon)

	fmt.Fprintf(out, "scheme=%s workload=%s load=%.2f servers=%d flowlets=%d\n",
		scheme, kind, *load, topo.NumServers(), len(flows))

	var measured []metrics.FlowRecord
	for _, r := range eng.Records() {
		if r.Start >= *warmup {
			measured = append(measured, r)
		}
	}
	fmt.Fprintf(out, "completion rate: %.1f%%\n", 100*metrics.CompletionRate(measured))
	fmt.Fprintf(out, "dropped: %.3f Gbit/s\n", float64(eng.DroppedBytes()*8)/horizon/1e9)
	fmt.Fprintln(out, "normalized FCT by flow size bucket:")
	for _, s := range metrics.SummarizeFCT(measured, workload.BucketLabel, workload.Buckets()) {
		fmt.Fprintf(out, "  %-18s n=%-7d mean=%-8.2f p50=%-8.2f p99=%-8.2f\n", s.Bucket, s.Count, s.Mean, s.P50, s.P99)
	}
	if scheme == transport.Flowtune && eng.Allocator() != nil {
		stats := eng.Allocator().Stats()
		fmt.Fprintf(out, "allocator: %d iterations, %d rate updates sent, %d suppressed\n",
			stats.Iterations, stats.RateUpdatesSent, stats.RateUpdatesSuppressed)
		fmt.Fprintf(out, "control traffic injected: %.3f MB\n", float64(eng.ControlBytes())/1e6)
	}
	return nil
}

// parseScheme maps a CLI name to a Scheme.
func parseScheme(name string) (transport.Scheme, error) {
	switch strings.ToLower(name) {
	case "flowtune":
		return transport.Flowtune, nil
	case "dctcp":
		return transport.DCTCP, nil
	case "pfabric":
		return transport.PFabric, nil
	case "sfqcodel":
		return transport.SFQCoDel, nil
	case "xcp":
		return transport.XCP, nil
	case "tcp":
		return transport.TCP, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q", name)
	}
}

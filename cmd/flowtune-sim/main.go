// Command flowtune-sim runs a single packet-level simulation of one
// congestion-control scheme over one workload and prints flow-completion-time
// percentiles, drop statistics, and queueing delays — the raw ingredients of
// Figures 8–11.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowtune-sim: ")

	schemeName := flag.String("scheme", "flowtune", "scheme: flowtune, dctcp, pfabric, sfqcodel, xcp, tcp")
	kindName := flag.String("workload", "web", "workload: web, cache, hadoop")
	load := flag.Float64("load", 0.6, "target server load in (0,1]")
	duration := flag.Float64("duration", 10e-3, "measured simulation time in seconds")
	warmup := flag.Float64("warmup", 2e-3, "warmup time in seconds")
	seed := flag.Int64("seed", 1, "workload random seed")
	flag.Parse()

	scheme, err := parseScheme(*schemeName)
	if err != nil {
		log.Fatal(err)
	}
	kind, err := parseKind(*kindName)
	if err != nil {
		log.Fatal(err)
	}

	topo, err := topology.NewTwoTier(topology.DefaultSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	horizon := *warmup + *duration
	eng, err := transport.NewEngine(transport.EngineConfig{
		Scheme:            scheme,
		Topology:          topo,
		QueueSamplePeriod: 100e-6,
		Horizon:           horizon,
	})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Kind:               kind,
		NumServers:         topo.NumServers(),
		ServerLinkCapacity: topo.Config().LinkCapacity,
		Load:               *load,
		Seed:               *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	flows := gen.GenerateUntil(horizon * 0.9)
	if err := eng.AddFlowlets(flows); err != nil {
		log.Fatal(err)
	}
	eng.Run(horizon)

	fmt.Printf("scheme=%s workload=%s load=%.2f servers=%d flowlets=%d\n",
		scheme, kind, *load, topo.NumServers(), len(flows))

	var measured []metrics.FlowRecord
	for _, r := range eng.Records() {
		if r.Start >= *warmup {
			measured = append(measured, r)
		}
	}
	fmt.Printf("completion rate: %.1f%%\n", 100*metrics.CompletionRate(measured))
	fmt.Printf("dropped: %.3f Gbit/s\n", float64(eng.DroppedBytes()*8)/horizon/1e9)
	fmt.Println("normalized FCT by flow size bucket:")
	for _, s := range metrics.SummarizeFCT(measured, workload.BucketLabel, workload.Buckets()) {
		fmt.Printf("  %-18s n=%-7d mean=%-8.2f p50=%-8.2f p99=%-8.2f\n", s.Bucket, s.Count, s.Mean, s.P50, s.P99)
	}
	if scheme == transport.Flowtune && eng.Allocator() != nil {
		stats := eng.Allocator().Stats()
		fmt.Printf("allocator: %d iterations, %d rate updates sent, %d suppressed\n",
			stats.Iterations, stats.RateUpdatesSent, stats.RateUpdatesSuppressed)
		fmt.Printf("control traffic injected: %.3f MB\n", float64(eng.ControlBytes())/1e6)
	}
}

// parseScheme maps a CLI name to a Scheme.
func parseScheme(name string) (transport.Scheme, error) {
	switch strings.ToLower(name) {
	case "flowtune":
		return transport.Flowtune, nil
	case "dctcp":
		return transport.DCTCP, nil
	case "pfabric":
		return transport.PFabric, nil
	case "sfqcodel":
		return transport.SFQCoDel, nil
	case "xcp":
		return transport.XCP, nil
	case "tcp":
		return transport.TCP, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q", name)
	}
}

// parseKind maps a CLI name to a workload kind.
func parseKind(name string) (workload.Kind, error) {
	switch strings.ToLower(name) {
	case "web":
		return workload.Web, nil
	case "cache":
		return workload.Cache, nil
	case "hadoop":
		return workload.Hadoop, nil
	default:
		return 0, fmt.Errorf("unknown workload %q", name)
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestTinyRun exercises flag parsing and one small measured case end to end.
func TestTinyRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-blocks", "1",
		"-nodes", "48",
		"-flows", "64",
		"-iters", "3",
		"-warmup", "1",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput: %s", err, out.String())
	}
	for _, want := range []string{"cores (FlowBlocks): 1", "nodes:              48", "time per iteration:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	// 3 blocks is not a power of two; the allocator must refuse it.
	if err := run([]string{"-blocks", "3", "-nodes", "144", "-flows", "8", "-iters", "1", "-warmup", "0"}, &out); err == nil {
		t.Error("non-power-of-two block count accepted")
	}
}

// Command flowtune-alloc benchmarks the multicore NED allocator (§5/§6.1 of
// the paper) on this machine: it builds a synthetic two-tier fabric, loads a
// random flow set, and reports the time per allocator iteration for a chosen
// number of blocks, nodes, and flows.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowtune-alloc: ")

	blocks := flag.Int("blocks", 2, "number of rack blocks (FlowBlocks = blocks^2); must be a power of two")
	nodes := flag.Int("nodes", 384, "number of servers (multiple of 48)")
	flows := flag.Int("flows", 3072, "number of concurrent flows")
	iters := flag.Int("iters", 200, "measured iterations")
	warmup := flag.Int("warmup", 20, "warmup iterations")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	row, err := experiments.MeasureScalingCase(experiments.ScalingCase{
		Blocks: *blocks,
		Nodes:  *nodes,
		Flows:  *flows,
	}, *warmup, *iters, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cores (FlowBlocks): %d\n", row.Cores)
	fmt.Printf("nodes:              %d\n", row.Nodes)
	fmt.Printf("flows:              %d\n", row.Flows)
	fmt.Printf("time per iteration: %s\n", row.TimePerIteration)
	fmt.Printf("scheduled fabric:   %.2f Tbit/s\n", row.AllocatedTbps)
}

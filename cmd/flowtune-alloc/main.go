// Command flowtune-alloc benchmarks the multicore NED allocator (§5/§6.1 of
// the paper) on this machine: it builds a synthetic two-tier fabric, loads a
// random flow set, and reports the time per allocator iteration for a chosen
// number of blocks, nodes, and flows.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowtune-alloc: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable body of the command.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("flowtune-alloc", flag.ContinueOnError)
	fs.SetOutput(out)
	blocks := fs.Int("blocks", 2, "number of rack blocks (FlowBlocks = blocks^2); must be a power of two")
	nodes := fs.Int("nodes", 384, "number of servers (multiple of 48)")
	flows := fs.Int("flows", 3072, "number of concurrent flows")
	iters := fs.Int("iters", 200, "measured iterations")
	warmup := fs.Int("warmup", 20, "warmup iterations")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	row, err := experiments.MeasureScalingCase(experiments.ScalingCase{
		Blocks: *blocks,
		Nodes:  *nodes,
		Flows:  *flows,
	}, *warmup, *iters, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "cores (FlowBlocks): %d\n", row.Cores)
	fmt.Fprintf(out, "nodes:              %d\n", row.Nodes)
	fmt.Fprintf(out, "flows:              %d\n", row.Flows)
	fmt.Fprintf(out, "time per iteration: %s\n", row.TimePerIteration)
	fmt.Fprintf(out, "scheduled fabric:   %.2f Tbit/s\n", row.AllocatedTbps)
	return nil
}

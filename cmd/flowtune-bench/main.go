// Command flowtune-bench regenerates the tables and figures of the Flowtune
// paper's evaluation (§6) and runs trace-driven workload scenarios.
//
// Paper experiments are selected with -experiment; "all" runs every one of
// them. The -quick flag shrinks durations and sweeps so the full suite
// completes in a couple of minutes; omit it for the full-scale runs recorded
// in EXPERIMENTS.md.
//
// Scenario mode is selected with -scenario: a comma-separated list of named
// scenarios (or "all"), each combining a fabric, a flow-size distribution, an
// arrival process, and a traffic pattern. Every scenario prints a summary and
// writes a machine-readable BENCH_<name>.json into -out; identical seeds
// produce byte-identical JSON. The -short flag shrinks the fabric and run
// windows for CI smoke runs. Use -list to enumerate the scenarios.
//
// -validate <dir> checks that a directory holds a well-formed BENCH_*.json
// for every named scenario (present, schema-tagged, and structurally sane);
// CI runs it against both the fresh artifacts and the baselines committed at
// the repository root, so a scenario can neither silently disappear nor rot
// its schema.
//
// -diff <dir> compares freshly generated results in <dir> against the
// baselines in -baseline (default "."): the job fails when any scenario's
// normalized-FCT p99 regresses by more than 2%. Because scenario runs are
// byte-deterministic for a given seed, the diff also reports whether each
// result is byte-identical to its baseline — an exact comparison, not a
// tolerance check — so unintended behavior changes are visible even when
// they do not move the tails.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowtune-bench: ")

	experiment := flag.String("experiment", "all",
		"experiment to run: table1, fastpass, fig4, fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13, or all")
	quick := flag.Bool("quick", false, "run shortened versions of every experiment")
	scenario := flag.String("scenario", "",
		"run workload scenarios instead of paper experiments: a comma-separated list of names, or \"all\"")
	scaling := flag.Bool("scaling", false,
		"run the wire-scaling sweep (flows on a k=16 fat-tree, shards x blocks on a two-tier fabric) and write BENCH_scaling.json into -out")
	short := flag.Bool("short", false, "shrink scenario fabrics and run windows (CI smoke mode)")
	outDir := flag.String("out", ".", "directory for scenario BENCH_<name>.json files")
	list := flag.Bool("list", false, "list the named scenarios and exit")
	validate := flag.String("validate", "",
		"validate BENCH_<name>.json files for every named scenario in this directory, then exit")
	diff := flag.String("diff", "",
		"compare BENCH_<name>.json files in this directory against the -baseline directory and fail on normalized-FCT p99 regressions, then exit")
	baseline := flag.String("baseline", ".", "baseline directory for -diff")
	engine := flag.String("engine", "",
		"override the scenario's allocator engine: \"sequential\" or \"parallel\" (daemon scenarios only; the parallel engine needs a power-of-two block count dividing the rack count, so full-size 9-rack scenarios require -short or a scenario with its own fabric)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if *list {
		for _, name := range experiments.ScenarioNames() {
			fmt.Printf("%-20s %s\n", name, experiments.ScenarioAbout(name))
		}
		return
	}
	if *validate != "" {
		if err := validateDir(*validate); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("validated %d scenario result files in %s\n", len(experiments.ScenarioNames()), *validate)
		return
	}
	if *diff != "" {
		if err := diffDirs(*diff, *baseline); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *scaling {
		if err := runScaling(*short, *seed, *outDir); err != nil {
			log.Fatalf("scaling: %v", err)
		}
		return
	}
	if *scenario != "" {
		names := strings.Split(*scenario, ",")
		if *scenario == "all" {
			names = experiments.ScenarioNames()
		}
		for _, name := range names {
			if err := runScenario(strings.TrimSpace(name), *short, *seed, *outDir, *engine); err != nil {
				log.Fatalf("scenario %s: %v", name, err)
			}
		}
		return
	}

	names := strings.Split(*experiment, ",")
	if *experiment == "all" {
		names = []string{"table1", "fastpass", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"}
	}
	for _, name := range names {
		if err := run(strings.TrimSpace(name), *quick, *seed); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
}

// validateDir checks every named scenario has a well-formed result file in
// dir: BENCH_<name>.json exists, carries the current schema tag, matches its
// scenario name, and holds a structurally plausible run.
func validateDir(dir string) error {
	var problems []string
	for _, name := range experiments.ScenarioNames() {
		path := filepath.Join(dir, "BENCH_"+name+".json")
		if err := validateScenarioFile(path, name); err != nil {
			problems = append(problems, err.Error())
		}
	}
	if _, err := loadScalingFile(filepath.Join(dir, scalingFile)); err != nil {
		problems = append(problems, err.Error())
	}
	if len(problems) > 0 {
		return fmt.Errorf("invalid benchmark results:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}

// validateScenarioFile checks one BENCH_*.json against the schema.
func validateScenarioFile(path, name string) error {
	_, _, err := loadScenarioFile(path, name)
	return err
}

// plausibleP99 reports whether a normalized-FCT p99 is a usable gate input:
// finite and positive (normalized FCT is ≥ 1 by construction, so zero means
// the statistic was never computed).
func plausibleP99(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

// loadScenarioFile reads one BENCH_*.json, checks it against the schema, and
// returns the decoded result along with the raw bytes (one read, one decode).
func loadScenarioFile(path, name string) (*experiments.ScenarioResult, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var res experiments.ScenarioResult
	if err := dec.Decode(&res); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if dec.More() {
		return nil, nil, fmt.Errorf("%s: trailing data after the result object", path)
	}
	switch {
	case res.Schema != experiments.ScenarioResultSchema:
		return nil, nil, fmt.Errorf("%s: schema %q, want %q", path, res.Schema, experiments.ScenarioResultSchema)
	case res.Name != name:
		return nil, nil, fmt.Errorf("%s: names scenario %q, want %q", path, res.Name, name)
	case res.Servers <= 0 || res.Duration <= 0:
		return nil, nil, fmt.Errorf("%s: implausible fabric (%d servers, %gs duration)", path, res.Servers, res.Duration)
	case res.Flows <= 0 || res.FinishedFlows <= 0:
		return nil, nil, fmt.Errorf("%s: no measured flows (%d flows, %d finished)", path, res.Flows, res.FinishedFlows)
	case res.GoodputBps <= 0:
		return nil, nil, fmt.Errorf("%s: no goodput recorded", path)
	}
	return &res, data, nil
}

// normFCTP99Tolerance is the benchmark-trajectory gate: a fresh run whose
// normalized-FCT p99 exceeds the baseline's by more than this fraction fails
// the diff.
const normFCTP99Tolerance = 0.02

// diffDirs compares the fresh scenario results in freshDir against the
// baselines in baseDir, failing on any normalized-FCT p99 regression beyond
// normFCTP99Tolerance. Both directories must hold a valid result for every
// named scenario.
func diffDirs(freshDir, baseDir string) error {
	var problems []string
	for _, name := range experiments.ScenarioNames() {
		freshPath := filepath.Join(freshDir, "BENCH_"+name+".json")
		basePath := filepath.Join(baseDir, "BENCH_"+name+".json")
		fresh, freshRaw, err := loadScenarioFile(freshPath, name)
		if err != nil {
			problems = append(problems, err.Error())
			continue
		}
		base, baseRaw, err := loadScenarioFile(basePath, name)
		if err != nil {
			problems = append(problems, err.Error())
			continue
		}
		// Runs are byte-deterministic for a given seed, so identity is an
		// exact byte comparison, not a float tolerance.
		identical := bytes.Equal(freshRaw, baseRaw)
		baseP99, freshP99 := base.NormFCT.P99, fresh.NormFCT.P99
		// A broken p99 (zero, negative, NaN, Inf) on either side must fail
		// the gate, never slip through a vacuous float comparison.
		if !plausibleP99(baseP99) {
			problems = append(problems, fmt.Sprintf("%s: implausible baseline normalized-FCT p99 %g", basePath, baseP99))
			continue
		}
		if !plausibleP99(freshP99) {
			problems = append(problems, fmt.Sprintf("%s: implausible fresh normalized-FCT p99 %g", freshPath, freshP99))
			continue
		}
		delta := freshP99/baseP99 - 1
		status := "changed"
		if identical {
			status = "identical"
		}
		fmt.Printf("%-20s norm-FCT p99 %12.6f -> %12.6f  (%+.2f%%, %s)\n",
			name, baseP99, freshP99, delta*100, status)
		if delta > normFCTP99Tolerance {
			problems = append(problems,
				fmt.Sprintf("%s: normalized-FCT p99 regressed %.2f%% (baseline %g, fresh %g, tolerance %.0f%%)",
					name, delta*100, baseP99, freshP99, normFCTP99Tolerance*100))
		}
	}
	if err := diffScaling(freshDir, baseDir); err != nil {
		problems = append(problems, err.Error())
	}
	if len(problems) > 0 {
		return fmt.Errorf("benchmark trajectory regressions:\n  %s", strings.Join(problems, "\n  "))
	}
	fmt.Printf("no normalized-FCT p99 regressions beyond %.0f%% across %d scenarios\n",
		normFCTP99Tolerance*100, len(experiments.ScenarioNames()))
	return nil
}

// runScenario executes one named scenario and writes its BENCH_<name>.json.
// engine optionally overrides the scenario's allocator engine; overridden
// runs are for ad-hoc measurement and CI smoke, not for regenerating the
// committed baselines (which record each scenario's own engine choice).
func runScenario(name string, short bool, seed int64, outDir, engine string) error {
	cfg, err := experiments.NamedScenario(name, short, seed)
	if err != nil {
		return err
	}
	switch engine {
	case "":
		// Keep the scenario's own engine.
	case "sequential":
		cfg.Blocks = 0
	case "parallel":
		if !cfg.Daemon {
			return fmt.Errorf("-engine parallel requires a daemon scenario; %s runs the allocator in process", name)
		}
		if cfg.Blocks == 0 {
			cfg.Blocks = 2
		}
	default:
		return fmt.Errorf("unknown -engine %q (want \"sequential\" or \"parallel\")", engine)
	}
	res, err := experiments.RunScenario(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	path := filepath.Join(outDir, "BENCH_"+name+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n\n", path)
	return nil
}

// scalingFile is the wire-scaling artifact's file name.
const scalingFile = "BENCH_scaling.json"

// wireReductionFloor is the wire v4 acceptance gate: the sharded-incast
// scenario's fixed-v3 / actual byte ratio must stay at or above this for
// both the fan-out and the exchange.
const wireReductionFloor = 2.0

// runScaling executes the wire-scaling sweep and writes BENCH_scaling.json.
func runScaling(short bool, seed int64, outDir string) error {
	res, err := experiments.RunScaling(experiments.ScalingConfig{
		Short: short,
		Seed:  seed,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	path := filepath.Join(outDir, scalingFile)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// loadScalingFile reads and schema-checks one BENCH_scaling.json.
func loadScalingFile(path string) (*experiments.ScalingResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var res experiments.ScalingResult
	if err := dec.Decode(&res); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%s: trailing data after the result object", path)
	}
	switch {
	case res.Schema != experiments.ScalingResultSchema:
		return nil, fmt.Errorf("%s: schema %q, want %q", path, res.Schema, experiments.ScalingResultSchema)
	case len(res.Points) == 0:
		return nil, fmt.Errorf("%s: no sweep points", path)
	case res.ShardedIncast.FanoutReduction < wireReductionFloor:
		return nil, fmt.Errorf("%s: sharded-incast fan-out reduction %.2fx below the %gx floor",
			path, res.ShardedIncast.FanoutReduction, wireReductionFloor)
	case res.ShardedIncast.ExchangeReduction < wireReductionFloor:
		return nil, fmt.Errorf("%s: sharded-incast exchange reduction %.2fx below the %gx floor",
			path, res.ShardedIncast.ExchangeReduction, wireReductionFloor)
	}
	return &res, nil
}

// scalingWireBytes serializes a scaling result with every timing block
// zeroed: the deterministic remainder is what the diff gate compares.
func scalingWireBytes(res *experiments.ScalingResult) ([]byte, error) {
	clone := *res
	clone.Points = append([]experiments.ScalingPoint(nil), res.Points...)
	for i := range clone.Points {
		clone.Points[i].Timing = experiments.ScalingTiming{}
	}
	return json.Marshal(&clone)
}

// diffScaling compares the fresh scaling artifact against the committed
// baseline: both must pass the reduction floor, and the deterministic wire
// blocks must match exactly (timings are machine-dependent and ignored).
func diffScaling(freshDir, baseDir string) error {
	fresh, err := loadScalingFile(filepath.Join(freshDir, scalingFile))
	if err != nil {
		return err
	}
	base, err := loadScalingFile(filepath.Join(baseDir, scalingFile))
	if err != nil {
		return err
	}
	freshWire, err := scalingWireBytes(fresh)
	if err != nil {
		return err
	}
	baseWire, err := scalingWireBytes(base)
	if err != nil {
		return err
	}
	status := "identical"
	if !bytes.Equal(freshWire, baseWire) {
		status = "changed"
	}
	fmt.Printf("%-20s fan-out %.2fx, exchange %.2fx reduction on sharded-incast  (wire blocks %s)\n",
		"scaling", fresh.ShardedIncast.FanoutReduction, fresh.ShardedIncast.ExchangeReduction, status)
	if status == "changed" {
		return fmt.Errorf("%s: deterministic wire blocks differ from the baseline (regenerate with -scaling -short if the change is intended)", scalingFile)
	}
	return nil
}

// run executes one experiment and prints its rendering.
func run(name string, quick bool, seed int64) error {
	fmt.Printf("==== %s ====\n", name)
	defer fmt.Println()
	switch name {
	case "table1":
		cases := experiments.DefaultScalingCases()
		warmup, iters := 20, 200
		if quick {
			cases = cases[:3]
			warmup, iters = 5, 50
		}
		rows, err := experiments.ScalingTable(cases, warmup, iters, seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderScalingTable(rows))
	case "fastpass":
		flows := 3072
		if quick {
			flows = 1024
		}
		cmp, err := experiments.MeasureFastpassComparison(384, flows, seed)
		if err != nil {
			return err
		}
		fmt.Print(cmp.Render())
	case "fig4":
		for _, scheme := range transport.AllSchemes() {
			cfg := experiments.DefaultConvergenceConfig(scheme)
			if quick {
				cfg.StepInterval = 2e-3
			}
			res, err := experiments.RunConvergence(cfg)
			if err != nil {
				return err
			}
			fmt.Print(res.Render(cfg))
		}
	case "fig5":
		duration := 10e-3
		loads := []float64{0.2, 0.4, 0.6, 0.8}
		if quick {
			duration = 3e-3
			loads = []float64{0.4, 0.8}
		}
		points, err := experiments.RunFig5(loads, nil, duration, seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig5(points))
	case "fig6":
		duration := 8e-3
		loads := []float64{0.2, 0.4, 0.6, 0.8}
		if quick {
			duration = 3e-3
			loads = []float64{0.6}
		}
		points, err := experiments.RunFig6(loads, nil, nil, duration, seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig6(points))
	case "fig7":
		duration := 5e-3
		sizes := []int{128, 256, 512, 1024, 2048}
		loads := []float64{0.4, 0.6, 0.8}
		if quick {
			duration = 2e-3
			sizes = []int{128, 256, 512}
			loads = []float64{0.6}
		}
		points, err := experiments.RunFig7(sizes, loads, duration, seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig7(points))
	case "fig8", "fig9", "fig10", "fig11":
		res, err := runComparison(quick, seed)
		if err != nil {
			return err
		}
		switch name {
		case "fig8":
			fmt.Print(experiments.RenderFig8(res.SpeedupOverFlowtune()))
		case "fig9":
			fmt.Print(res.RenderFig9())
		case "fig10":
			fmt.Print(res.RenderFig10())
		case "fig11":
			fmt.Print(res.RenderFig11())
		}
	case "fig12":
		cfg := experiments.NormalizationConfig{Seed: seed}
		loads := []float64{0.2, 0.4, 0.6, 0.8}
		if quick {
			cfg.Duration = 2e-3
			loads = []float64{0.4, 0.8}
		}
		points, err := experiments.RunFig12(loads, cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig12(points))
	case "fig13":
		cfg := experiments.NormalizationConfig{Seed: seed}
		loads := []float64{0.2, 0.4, 0.6, 0.8}
		if quick {
			cfg.Duration = 2e-3
			loads = []float64{0.6}
		}
		points, err := experiments.RunFig13(loads, cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFig13(points))
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
		os.Exit(2)
	}
	return nil
}

// comparisonCache avoids re-running the expensive scheme sweep when several
// of fig8–fig11 are requested in the same invocation.
var comparisonCache *experiments.ComparisonResult

func runComparison(quick bool, seed int64) (*experiments.ComparisonResult, error) {
	if comparisonCache != nil {
		return comparisonCache, nil
	}
	cfg := experiments.ComparisonConfig{Workload: workload.Web, Seed: seed}
	if quick {
		cfg.Loads = []float64{0.6}
		cfg.Duration = 4e-3
		cfg.Warmup = 1e-3
	}
	res, err := experiments.RunComparison(cfg)
	if err != nil {
		return nil, err
	}
	comparisonCache = res
	return res, nil
}

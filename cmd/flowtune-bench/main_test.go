package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// writeResult serializes a minimal valid ScenarioResult for name into dir.
func writeResult(t *testing.T, dir, name string, mutate func(*experiments.ScenarioResult)) {
	t.Helper()
	res := experiments.ScenarioResult{
		Schema:        experiments.ScenarioResultSchema,
		Name:          name,
		Servers:       16,
		Duration:      1.5e-3,
		Flows:         10,
		FinishedFlows: 9,
		GoodputBps:    1e9,
	}
	if mutate != nil {
		mutate(&res)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_"+name+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// writeScaling serializes a minimal valid ScalingResult into dir.
func writeScaling(t *testing.T, dir string, mutate func(*experiments.ScalingResult)) {
	t.Helper()
	res := experiments.ScalingResult{
		Schema: experiments.ScalingResultSchema,
		Short:  true,
		Seed:   1,
		Points: []experiments.ScalingPoint{{
			Label: "flows-2k", Topology: "fat-tree k=16", Flows: 2000, Shards: 1, Blocks: 1,
			Wire: experiments.ScalingWire{
				ConvergeFanoutBytesPerIter: 100, ConvergeFanoutFixedPerIter: 300,
				SteadyFanoutBytesPerIter: 50, SteadyFanoutFixedPerIter: 150,
				FanoutCompression: 3.0,
			},
			Timing: experiments.ScalingTiming{RegisterSec: 0.01, StepSecMean: 0.001, StepSecMax: 0.002, RateUpdateLatencyNs: 40},
		}},
		ShardedIncast: experiments.ScalingScenarioWire{
			FanoutBytes: 100, FanoutBytesFixed: 250, FanoutReduction: 2.5,
			ExchangeBytes: 100, ExchangeBytesFixed: 300, ExchangeReduction: 3.0,
		},
	}
	if mutate != nil {
		mutate(&res)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, scalingFile), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// writeDir populates dir with one well-formed result per scenario plus the
// scaling artifact — the full set validateDir and diffDirs expect.
func writeDir(t *testing.T, dir string, mutate func(*experiments.ScenarioResult)) {
	t.Helper()
	for _, name := range experiments.ScenarioNames() {
		writeResult(t, dir, name, mutate)
	}
	writeScaling(t, dir, nil)
}

func TestValidateDirAcceptsWellFormedResults(t *testing.T) {
	dir := t.TempDir()
	writeDir(t, dir, nil)
	if err := validateDir(dir); err != nil {
		t.Fatalf("validateDir rejected well-formed results: %v", err)
	}
}

func TestValidateDirRejectsSubFloorReduction(t *testing.T) {
	for _, mutate := range []func(*experiments.ScalingResult){
		func(r *experiments.ScalingResult) { r.ShardedIncast.FanoutReduction = 1.4 },
		func(r *experiments.ScalingResult) { r.ShardedIncast.ExchangeReduction = 1.9 },
	} {
		dir := t.TempDir()
		writeDir(t, dir, nil)
		writeScaling(t, dir, mutate)
		if err := validateDir(dir); err == nil {
			t.Fatal("validateDir accepted a wire reduction below the acceptance floor")
		}
	}
}

func TestValidateDirRejectsMissingScenario(t *testing.T) {
	dir := t.TempDir()
	names := experiments.ScenarioNames()
	for _, name := range names[:len(names)-1] {
		writeResult(t, dir, name, nil)
	}
	writeScaling(t, dir, nil)
	err := validateDir(dir)
	if err == nil {
		t.Fatal("validateDir accepted a directory missing a scenario result")
	}
	if !strings.Contains(err.Error(), names[len(names)-1]) {
		t.Fatalf("error does not name the missing scenario: %v", err)
	}
}

func TestValidateDirRejectsBadResults(t *testing.T) {
	cases := []struct {
		label  string
		mutate func(*experiments.ScenarioResult)
	}{
		{"wrong schema", func(r *experiments.ScenarioResult) { r.Schema = "flowtune-bench/scenario/v0" }},
		{"name mismatch", func(r *experiments.ScenarioResult) { r.Name = "somebody-else" }},
		{"no flows", func(r *experiments.ScenarioResult) { r.Flows = 0 }},
		{"no goodput", func(r *experiments.ScenarioResult) { r.GoodputBps = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			dir := t.TempDir()
			writeDir(t, dir, nil)
			writeResult(t, dir, experiments.ScenarioNames()[0], tc.mutate)
			if err := validateDir(dir); err == nil {
				t.Fatalf("validateDir accepted a result with %s", tc.label)
			}
		})
	}
}

func TestValidateDirRejectsGarbageJSON(t *testing.T) {
	dir := t.TempDir()
	writeDir(t, dir, nil)
	path := filepath.Join(dir, "BENCH_"+experiments.ScenarioNames()[0]+".json")
	if err := os.WriteFile(path, []byte(`{"schema": 7`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validateDir(dir); err == nil {
		t.Fatal("validateDir accepted truncated JSON")
	}
}

func TestValidateDirRejectsTrailingData(t *testing.T) {
	dir := t.TempDir()
	writeDir(t, dir, nil)
	path := filepath.Join(dir, "BENCH_"+experiments.ScenarioNames()[0]+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, []byte("\n{\"schema\":\"again\"}")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validateDir(dir); err == nil {
		t.Fatal("validateDir accepted trailing data after the result object")
	}
}

func TestDiffDirsPassesWithinTolerance(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	// 1% worse: inside the 2% gate.
	writeDir(t, base, func(r *experiments.ScenarioResult) { r.NormFCT.P99 = 2.0 })
	writeDir(t, fresh, func(r *experiments.ScenarioResult) { r.NormFCT.P99 = 2.02 })
	if err := diffDirs(fresh, base); err != nil {
		t.Fatalf("diffDirs rejected a within-tolerance trajectory: %v", err)
	}
}

// TestDiffDirsIgnoresTimingButNotWire pins the scaling diff semantics: the
// machine-dependent timing block may drift freely, the deterministic wire
// block may not.
func TestDiffDirsIgnoresTimingButNotWire(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeDir(t, base, func(r *experiments.ScenarioResult) { r.NormFCT.P99 = 2.0 })
	writeDir(t, fresh, func(r *experiments.ScenarioResult) { r.NormFCT.P99 = 2.0 })
	writeScaling(t, fresh, func(r *experiments.ScalingResult) { r.Points[0].Timing.StepSecMean = 99 })
	if err := diffDirs(fresh, base); err != nil {
		t.Fatalf("diffDirs rejected a timing-only scaling drift: %v", err)
	}
	writeScaling(t, fresh, func(r *experiments.ScalingResult) { r.Points[0].Wire.SteadyFanoutBytesPerIter = 99 })
	err := diffDirs(fresh, base)
	if err == nil {
		t.Fatal("diffDirs accepted a drifted deterministic wire block")
	}
	if !strings.Contains(err.Error(), scalingFile) {
		t.Fatalf("error does not name the scaling artifact: %v", err)
	}
}

func TestDiffDirsFailsOnP99Regression(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	names := experiments.ScenarioNames()
	writeDir(t, base, func(r *experiments.ScenarioResult) { r.NormFCT.P99 = 2.0 })
	writeDir(t, fresh, func(r *experiments.ScenarioResult) { r.NormFCT.P99 = 2.0 })
	// 3% worse on one scenario: beyond the 2% gate.
	writeResult(t, fresh, names[0], func(r *experiments.ScenarioResult) { r.NormFCT.P99 = 2.06 })
	err := diffDirs(fresh, base)
	if err == nil {
		t.Fatal("diffDirs accepted a 3% normalized-FCT p99 regression")
	}
	if !strings.Contains(err.Error(), names[0]) {
		t.Fatalf("error does not name the regressed scenario: %v", err)
	}
}

func TestDiffDirsFailsOnMissingBaseline(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	names := experiments.ScenarioNames()
	writeDir(t, fresh, nil)
	for _, name := range names[:len(names)-1] {
		writeResult(t, base, name, nil)
	}
	writeScaling(t, base, nil)
	if err := diffDirs(fresh, base); err == nil {
		t.Fatal("diffDirs accepted a missing baseline file")
	}
}

func TestDiffDirsCommittedBaselinesSelfIdentical(t *testing.T) {
	// The committed baselines diffed against themselves must pass and be
	// reported byte-identical (they are the byte-deterministic reference).
	root := "../.."
	if err := diffDirs(root, root); err != nil {
		t.Fatalf("committed baselines fail their own diff: %v", err)
	}
}

// JSON cannot carry NaN or Inf (encoding fails at generation time), so the
// reachable broken-p99 cases in a result file are zero and negative values.
func TestDiffDirsFailsOnImplausibleP99(t *testing.T) {
	for _, bad := range []float64{0, -1} {
		base, fresh := t.TempDir(), t.TempDir()
		writeDir(t, base, func(r *experiments.ScenarioResult) { r.NormFCT.P99 = 2.0 })
		writeDir(t, fresh, func(r *experiments.ScenarioResult) { r.NormFCT.P99 = 2.0 })
		writeResult(t, fresh, experiments.ScenarioNames()[0], func(r *experiments.ScenarioResult) { r.NormFCT.P99 = bad })
		if err := diffDirs(fresh, base); err == nil {
			t.Errorf("diffDirs accepted a fresh normalized-FCT p99 of %g", bad)
		}
	}
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// writeResult serializes a minimal valid ScenarioResult for name into dir.
func writeResult(t *testing.T, dir, name string, mutate func(*experiments.ScenarioResult)) {
	t.Helper()
	res := experiments.ScenarioResult{
		Schema:        experiments.ScenarioResultSchema,
		Name:          name,
		Servers:       16,
		Duration:      1.5e-3,
		Flows:         10,
		FinishedFlows: 9,
		GoodputBps:    1e9,
	}
	if mutate != nil {
		mutate(&res)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_"+name+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDirAcceptsWellFormedResults(t *testing.T) {
	dir := t.TempDir()
	for _, name := range experiments.ScenarioNames() {
		writeResult(t, dir, name, nil)
	}
	if err := validateDir(dir); err != nil {
		t.Fatalf("validateDir rejected well-formed results: %v", err)
	}
}

func TestValidateDirRejectsMissingScenario(t *testing.T) {
	dir := t.TempDir()
	names := experiments.ScenarioNames()
	for _, name := range names[:len(names)-1] {
		writeResult(t, dir, name, nil)
	}
	err := validateDir(dir)
	if err == nil {
		t.Fatal("validateDir accepted a directory missing a scenario result")
	}
	if !strings.Contains(err.Error(), names[len(names)-1]) {
		t.Fatalf("error does not name the missing scenario: %v", err)
	}
}

func TestValidateDirRejectsBadResults(t *testing.T) {
	cases := []struct {
		label  string
		mutate func(*experiments.ScenarioResult)
	}{
		{"wrong schema", func(r *experiments.ScenarioResult) { r.Schema = "flowtune-bench/scenario/v0" }},
		{"name mismatch", func(r *experiments.ScenarioResult) { r.Name = "somebody-else" }},
		{"no flows", func(r *experiments.ScenarioResult) { r.Flows = 0 }},
		{"no goodput", func(r *experiments.ScenarioResult) { r.GoodputBps = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			dir := t.TempDir()
			for _, name := range experiments.ScenarioNames() {
				writeResult(t, dir, name, nil)
			}
			writeResult(t, dir, experiments.ScenarioNames()[0], tc.mutate)
			if err := validateDir(dir); err == nil {
				t.Fatalf("validateDir accepted a result with %s", tc.label)
			}
		})
	}
}

func TestValidateDirRejectsGarbageJSON(t *testing.T) {
	dir := t.TempDir()
	for _, name := range experiments.ScenarioNames() {
		writeResult(t, dir, name, nil)
	}
	path := filepath.Join(dir, "BENCH_"+experiments.ScenarioNames()[0]+".json")
	if err := os.WriteFile(path, []byte(`{"schema": 7`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validateDir(dir); err == nil {
		t.Fatal("validateDir accepted truncated JSON")
	}
}

func TestValidateDirRejectsTrailingData(t *testing.T) {
	dir := t.TempDir()
	for _, name := range experiments.ScenarioNames() {
		writeResult(t, dir, name, nil)
	}
	path := filepath.Join(dir, "BENCH_"+experiments.ScenarioNames()[0]+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, []byte("\n{\"schema\":\"again\"}")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := validateDir(dir); err == nil {
		t.Fatal("validateDir accepted trailing data after the result object")
	}
}

func TestDiffDirsPassesWithinTolerance(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	for _, name := range experiments.ScenarioNames() {
		writeResult(t, base, name, func(r *experiments.ScenarioResult) { r.NormFCT.P99 = 2.0 })
		// 1% worse: inside the 2% gate.
		writeResult(t, fresh, name, func(r *experiments.ScenarioResult) { r.NormFCT.P99 = 2.02 })
	}
	if err := diffDirs(fresh, base); err != nil {
		t.Fatalf("diffDirs rejected a within-tolerance trajectory: %v", err)
	}
}

func TestDiffDirsFailsOnP99Regression(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	names := experiments.ScenarioNames()
	for _, name := range names {
		writeResult(t, base, name, func(r *experiments.ScenarioResult) { r.NormFCT.P99 = 2.0 })
		writeResult(t, fresh, name, func(r *experiments.ScenarioResult) { r.NormFCT.P99 = 2.0 })
	}
	// 3% worse on one scenario: beyond the 2% gate.
	writeResult(t, fresh, names[0], func(r *experiments.ScenarioResult) { r.NormFCT.P99 = 2.06 })
	err := diffDirs(fresh, base)
	if err == nil {
		t.Fatal("diffDirs accepted a 3% normalized-FCT p99 regression")
	}
	if !strings.Contains(err.Error(), names[0]) {
		t.Fatalf("error does not name the regressed scenario: %v", err)
	}
}

func TestDiffDirsFailsOnMissingBaseline(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	names := experiments.ScenarioNames()
	for _, name := range names {
		writeResult(t, fresh, name, nil)
	}
	for _, name := range names[:len(names)-1] {
		writeResult(t, base, name, nil)
	}
	if err := diffDirs(fresh, base); err == nil {
		t.Fatal("diffDirs accepted a missing baseline file")
	}
}

func TestDiffDirsCommittedBaselinesSelfIdentical(t *testing.T) {
	// The committed baselines diffed against themselves must pass and be
	// reported byte-identical (they are the byte-deterministic reference).
	root := "../.."
	if err := diffDirs(root, root); err != nil {
		t.Fatalf("committed baselines fail their own diff: %v", err)
	}
}

// JSON cannot carry NaN or Inf (encoding fails at generation time), so the
// reachable broken-p99 cases in a result file are zero and negative values.
func TestDiffDirsFailsOnImplausibleP99(t *testing.T) {
	for _, bad := range []float64{0, -1} {
		base, fresh := t.TempDir(), t.TempDir()
		for _, name := range experiments.ScenarioNames() {
			writeResult(t, base, name, func(r *experiments.ScenarioResult) { r.NormFCT.P99 = 2.0 })
			writeResult(t, fresh, name, func(r *experiments.ScenarioResult) { r.NormFCT.P99 = 2.0 })
		}
		writeResult(t, fresh, experiments.ScenarioNames()[0], func(r *experiments.ScenarioResult) { r.NormFCT.P99 = bad })
		if err := diffDirs(fresh, base); err == nil {
			t.Errorf("diffDirs accepted a fresh normalized-FCT p99 of %g", bad)
		}
	}
}

package flowtune_test

import (
	"fmt"
	"math"
	"net"
	"testing"

	flowtune "repro"
)

func defaultTopo(t *testing.T) *flowtune.Topology {
	t.Helper()
	topo, err := flowtune.NewTopology(flowtune.DefaultSimTopologyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestPublicAllocatorEndToEnd(t *testing.T) {
	topo := defaultTopo(t)
	alloc, err := flowtune.NewAllocator(flowtune.AllocatorConfig{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.FlowletStart(1, 0, 17, 1); err != nil {
		t.Fatal(err)
	}
	if err := alloc.FlowletStart(2, 3, 17, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		alloc.Iterate()
	}
	want := topo.Config().LinkCapacity * 0.99 / 2
	for _, id := range []flowtune.FlowID{1, 2} {
		if got := alloc.Rate(id); math.Abs(got-want)/want > 0.02 {
			t.Errorf("flow %d rate %.3g, want %.3g", id, got, want)
		}
	}
}

func TestPublicParallelAllocator(t *testing.T) {
	topo, err := flowtune.NewTopology(flowtune.TopologyConfig{
		Racks: 8, ServersPerRack: 8, Spines: 4, LinkCapacity: 10e9, LinkDelay: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	pa, err := flowtune.NewParallelAllocator(flowtune.ParallelAllocatorConfig{
		Topology: topo, Blocks: 2, Normalize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Close()
	flows := []flowtune.ParallelFlow{
		{ID: 1, Src: 0, Dst: 32},
		{ID: 2, Src: 8, Dst: 32},
	}
	if err := pa.SetFlows(flows); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		pa.Iterate()
	}
	rates := pa.Rates()
	if len(rates) != 2 {
		t.Fatalf("got %d rates", len(rates))
	}
	for id, r := range rates {
		if r <= 0 || r > topo.Config().LinkCapacity*1.001 {
			t.Errorf("flow %d rate %.3g out of range", id, r)
		}
	}
}

func TestPublicSolverAndNormalizer(t *testing.T) {
	const capacity = 10e9
	p := &flowtune.Problem{
		Capacities:  []float64{capacity},
		MaxFlowRate: capacity,
		Flows: []flowtune.Flow{
			{Route: []int32{0}, Util: flowtune.LogUtility{W: capacity}},
			{Route: []int32{0}, Util: flowtune.LogUtility{W: capacity}},
		},
	}
	st := flowtune.NewState(p)
	if _, err := flowtune.Solve(flowtune.NED(1), p, st, flowtune.SolveOptions{MaxIterations: 2000}); err != nil {
		t.Fatal(err)
	}
	for _, r := range st.Rates {
		if math.Abs(r-capacity/2)/(capacity/2) > 0.01 {
			t.Errorf("rate %.3g, want %.3g", r, capacity/2)
		}
	}
	// Baseline solvers are constructible through the public API.
	for _, s := range []flowtune.Solver{flowtune.GradientSolver(), flowtune.FGMSolver(), flowtune.NewtonLikeSolver()} {
		if s.Name() == "" {
			t.Error("solver with empty name")
		}
	}
	// Normalizers scale an over-allocation back into the feasible region.
	over := []float64{8e9, 8e9}
	for _, n := range []flowtune.Normalizer{flowtune.FNorm(), flowtune.UNorm()} {
		out := n.Normalize(p, over, nil)
		if out[0]+out[1] > capacity*1.001 {
			t.Errorf("%s left the link over capacity", n.Name())
		}
	}
}

func TestPublicWorkloadGenerator(t *testing.T) {
	gen, err := flowtune.NewWorkloadGenerator(flowtune.WorkloadConfig{
		Kind: flowtune.Web, NumServers: 64, ServerLinkCapacity: 10e9, Load: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	flows := gen.GenerateN(100)
	if len(flows) != 100 {
		t.Fatalf("generated %d flowlets", len(flows))
	}
	for _, k := range []flowtune.WorkloadKind{flowtune.Web, flowtune.Cache, flowtune.Hadoop} {
		if k.String() == "" {
			t.Error("workload kind with empty name")
		}
	}
}

func TestPublicSimulation(t *testing.T) {
	topo := defaultTopo(t)
	sim, err := flowtune.NewSimulation(flowtune.SimulationConfig{
		Scheme: flowtune.SchemeDCTCP, Topology: topo, Horizon: 3e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddFlowlet(flowtune.Flowlet{ID: 1, Arrival: 0, Src: 0, Dst: 30, SizeBytes: 20000}); err != nil {
		t.Fatal(err)
	}
	sim.Run(3e-3)
	recs := sim.Records()
	if len(recs) != 1 || !recs[0].Finished() {
		t.Fatalf("flow did not finish: %+v", recs)
	}
}

func TestPercentileExported(t *testing.T) {
	if got := flowtune.Percentile([]float64{1, 2, 3, 4}, 100); got != 4 {
		t.Errorf("Percentile = %g", got)
	}
}

// Example_quickstart mirrors the package-level documentation example.
func Example_quickstart() {
	topo, err := flowtune.NewTopology(flowtune.DefaultSimTopologyConfig())
	if err != nil {
		panic(err)
	}
	alloc, err := flowtune.NewAllocator(flowtune.AllocatorConfig{Topology: topo})
	if err != nil {
		panic(err)
	}
	_ = alloc.FlowletStart(1, 0, 17, 1)
	_ = alloc.FlowletStart(2, 3, 17, 1)
	for i := 0; i < 100; i++ {
		alloc.Iterate()
	}
	fmt.Printf("flow 1: %.2f Gbit/s\n", alloc.Rate(1)/1e9)
	fmt.Printf("flow 2: %.2f Gbit/s\n", alloc.Rate(2)/1e9)
	// Output:
	// flow 1: 4.95 Gbit/s
	// flow 2: 4.95 Gbit/s
}

func TestPublicDaemon(t *testing.T) {
	topo := defaultTopo(t)
	daemon, err := flowtune.NewDaemon(flowtune.DaemonConfig{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	defer daemon.Close()
	clientEnd, serverEnd := net.Pipe()
	go daemon.ServeConn(serverEnd)
	cli, err := flowtune.NewDaemonClient(clientEnd, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if err := cli.FlowletStart(1, 0, 17, 1); err != nil {
		t.Fatal(err)
	}
	if err := cli.FlowletStart(2, 3, 17, 1); err != nil {
		t.Fatal(err)
	}
	var last map[flowtune.FlowID]float64
	for i := 0; i < 100; i++ {
		updates, err := cli.Step()
		if err != nil {
			t.Fatal(err)
		}
		if last == nil {
			last = make(map[flowtune.FlowID]float64)
		}
		for _, u := range updates {
			last[u.Flow] = u.Rate
		}
	}
	// Two flows sharing server 17's downlink settle at half line rate each
	// (minus the 1% update-threshold headroom), exactly as in process.
	want := topo.Config().LinkCapacity * 0.99 / 2
	for _, id := range []flowtune.FlowID{1, 2} {
		if got := last[id]; math.Abs(got-want)/want > 0.02 {
			t.Errorf("flow %d rate %.3g, want %.3g", id, got, want)
		}
	}
	var stats flowtune.LoopStats = daemon.LoopStats()
	if stats.Iterations != 100 {
		t.Errorf("daemon ran %d iterations, want 100", stats.Iterations)
	}
	var ds flowtune.DaemonStats = daemon.Stats()
	if ds.SessionsAccepted != 1 || ds.EventsReceived != 2 {
		t.Errorf("daemon stats = %+v", ds)
	}
}

// The DaemonClient must satisfy the simulation engine's backend seam.
var _ flowtune.AllocatorBackend = (*flowtune.DaemonClient)(nil)

// TestPublicShardedCluster drives the sharded-cluster surface through the
// facade: shard map, in-process cluster, sharded client, fair shares on a
// cross-shard bottleneck.
func TestPublicShardedCluster(t *testing.T) {
	topo, err := flowtune.NewTopology(flowtune.TopologyConfig{
		Racks: 4, ServersPerRack: 4, Spines: 2, LinkCapacity: 10e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	smap, err := flowtune.NewShardMap(topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	if smap.NumShards() != 2 || smap.ShardOfFlow(0, 15) != 0 {
		t.Fatalf("shard map wiring: shards=%d owner=%d", smap.NumShards(), smap.ShardOfFlow(0, 15))
	}
	cl, err := flowtune.NewCluster(flowtune.ClusterConfig{Topology: topo, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cli, err := cl.Client(1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Two flows into server 12: one cross-shard (owned by shard 0), one
	// local to shard 1. The boundary exchange must split the downlink.
	if err := cli.FlowletStart(1, 0, 12, 1); err != nil {
		t.Fatal(err)
	}
	if err := cli.FlowletStart(2, 13, 12, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := cli.Step(); err != nil {
			t.Fatal(err)
		}
	}
	rates := cl.Rates()
	want := topo.Config().LinkCapacity * 0.99 / 2
	for _, id := range []int64{1, 2} {
		if got := rates[id]; math.Abs(got-want)/want > 0.05 {
			t.Errorf("flow %d rate %.4g, want ≈ %.4g (fair share of the shared downlink)", id, got, want)
		}
	}
}

// The ShardedClient must satisfy the simulation engine's backend seam too.
var _ flowtune.AllocatorBackend = (*flowtune.ShardedClient)(nil)

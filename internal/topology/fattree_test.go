package topology

import "testing"

func newTestFatTree(t *testing.T, k int) *Topology {
	t.Helper()
	topo, err := NewFatTree(FatTreeConfig{
		K:             k,
		LinkCapacity:  10e9,
		LinkDelay:     1.5e-6,
		HostDelay:     2e-6,
		WithAllocator: true,
	})
	if err != nil {
		t.Fatalf("NewFatTree(k=%d): %v", k, err)
	}
	return topo
}

func TestFatTreeCounts(t *testing.T) {
	topo := newTestFatTree(t, 4)
	if got, want := topo.NumServers(), 16; got != want {
		t.Errorf("servers = %d, want %d", got, want)
	}
	if got, want := topo.NumRacks(), 8; got != want {
		t.Errorf("edge switches = %d, want %d", got, want)
	}
	if got, want := topo.NumSpines(), 8; got != want {
		t.Errorf("aggregation switches = %d, want %d", got, want)
	}
	if got, want := topo.NumCores(), 4; got != want {
		t.Errorf("core switches = %d, want %d", got, want)
	}
	// 16 server links + 16 edge-agg links + 16 agg-core links, each
	// bidirectional, plus 4 allocator uplink pairs.
	if got, want := topo.NumLinks(), 2*(16+16+16)+2*4; got != want {
		t.Errorf("links = %d, want %d", got, want)
	}
	if _, ok := topo.AllocatorNode(); !ok {
		t.Error("allocator host missing")
	}
}

// checkPath verifies that a path is link-contiguous from server src to server
// dst.
func checkPath(t *testing.T, topo *Topology, p Path, from, to NodeID) {
	t.Helper()
	if len(p) == 0 {
		t.Fatal("empty path")
	}
	at := from
	for i, lid := range p {
		l := topo.Link(lid)
		if l.Src != at {
			t.Fatalf("hop %d: link starts at node %d, want %d", i, l.Src, at)
		}
		at = l.Dst
	}
	if at != to {
		t.Fatalf("path ends at node %d, want %d", at, to)
	}
}

func TestFatTreeRoutes(t *testing.T) {
	topo := newTestFatTree(t, 4)
	cases := []struct {
		src, dst, hops int
	}{
		{0, 1, 2},  // same edge switch
		{0, 2, 4},  // same pod, different edge
		{0, 15, 6}, // different pod
	}
	for _, c := range cases {
		for choice := 0; choice < 5; choice++ {
			p, err := topo.Route(c.src, c.dst, choice)
			if err != nil {
				t.Fatalf("Route(%d,%d,%d): %v", c.src, c.dst, choice, err)
			}
			if len(p) != c.hops {
				t.Errorf("Route(%d,%d,%d) has %d hops, want %d", c.src, c.dst, choice, len(p), c.hops)
			}
			if got := topo.HopCount(c.src, c.dst); got != c.hops {
				t.Errorf("HopCount(%d,%d) = %d, want %d", c.src, c.dst, got, c.hops)
			}
			checkPath(t, topo, p, topo.Server(c.src), topo.Server(c.dst))
		}
	}
}

func TestFatTreeRouteDiversity(t *testing.T) {
	// A k=4 fat-tree has 4 distinct cross-pod paths (2 aggs × 2 cores per
	// agg); distinct ECMP choices must exercise all of them.
	topo := newTestFatTree(t, 4)
	paths := make(map[string]bool)
	for choice := 0; choice < 4; choice++ {
		p, err := topo.Route(0, 15, choice)
		if err != nil {
			t.Fatal(err)
		}
		key := ""
		for _, l := range p {
			key += string(rune(l)) // LinkIDs are small; any injective encoding works
		}
		paths[key] = true
	}
	if len(paths) != 4 {
		t.Errorf("found %d distinct cross-pod paths, want 4", len(paths))
	}
}

func TestFatTreeAllocatorPaths(t *testing.T) {
	topo := newTestFatTree(t, 4)
	alloc, _ := topo.AllocatorNode()
	for srv := 0; srv < topo.NumServers(); srv++ {
		up, err := topo.PathToAllocator(srv, srv)
		if err != nil {
			t.Fatalf("PathToAllocator(%d): %v", srv, err)
		}
		checkPath(t, topo, up, topo.Server(srv), alloc)
		down, err := topo.PathFromAllocator(srv, srv)
		if err != nil {
			t.Fatalf("PathFromAllocator(%d): %v", srv, err)
		}
		checkPath(t, topo, down, alloc, topo.Server(srv))
	}
}

func TestTwoTierAllocatorPaths(t *testing.T) {
	topo, err := NewTwoTier(DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	alloc, _ := topo.AllocatorNode()
	for srv := 0; srv < topo.NumServers(); srv += 7 {
		up, err := topo.PathToAllocator(srv, srv)
		if err != nil {
			t.Fatalf("PathToAllocator(%d): %v", srv, err)
		}
		checkPath(t, topo, up, topo.Server(srv), alloc)
		down, err := topo.PathFromAllocator(srv, srv)
		if err != nil {
			t.Fatalf("PathFromAllocator(%d): %v", srv, err)
		}
		checkPath(t, topo, down, alloc, topo.Server(srv))
	}
}

func TestFatTreeValidation(t *testing.T) {
	bad := []FatTreeConfig{
		{K: 3, LinkCapacity: 10e9},
		{K: 0, LinkCapacity: 10e9},
		{K: 4, LinkCapacity: 0},
		{K: 4, LinkCapacity: 10e9, LinkDelay: -1},
	}
	for _, cfg := range bad {
		if _, err := NewFatTree(cfg); err == nil {
			t.Errorf("NewFatTree accepted invalid config %+v", cfg)
		}
	}
}

func TestFatTreeRejectsBlockPartition(t *testing.T) {
	topo, err := NewFatTree(FatTreeConfig{K: 4, LinkCapacity: 10e9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBlockPartition(topo, 2); err == nil {
		t.Fatal("NewBlockPartition accepted a fat-tree topology; the core layer would be unpriced")
	}
}

func TestFatTreeNoAllocator(t *testing.T) {
	topo, err := NewFatTree(FatTreeConfig{K: 4, LinkCapacity: 10e9})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := topo.AllocatorNode(); ok {
		t.Error("unexpected allocator host")
	}
	if _, err := topo.PathToAllocator(0, 0); err == nil {
		t.Error("PathToAllocator succeeded without an allocator host")
	}
}

// Package topology models the datacenter fabrics Flowtune is evaluated on,
// and provides the link/path bookkeeping shared by the rate allocator and
// the packet simulator.
//
// Two fabric families are supported:
//
//   - NewTwoTier builds the two-tier Clos (leaf-spine) fabrics of the
//     paper's evaluation: racks of servers under top-of-rack switches, fully
//     connected to a spine layer (DefaultSimConfig is the paper's 9×16
//     fabric).
//   - NewFatTree builds three-tier k-ary fat-trees (Al-Fares et al., SIGCOMM
//     2008): k pods of k/2 edge and k/2 aggregation switches joined by
//     (k/2)² cores, with uniform link capacity and full bisection bandwidth.
//
// Both families expose the same Topology API: ECMP-style Route selection
// with a caller-supplied hash (§7: Flowtune works with the paths the network
// selects), allocator control paths (PathToAllocator/PathFromAllocator), and
// the LinkBlock partitioning used by the multicore allocator (§5).
package topology

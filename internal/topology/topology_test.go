package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustTopo(t *testing.T, cfg Config) *Topology {
	t.Helper()
	topo, err := NewTwoTier(cfg)
	if err != nil {
		t.Fatalf("NewTwoTier(%+v): %v", cfg, err)
	}
	return topo
}

func TestDefaultSimConfig(t *testing.T) {
	cfg := DefaultSimConfig()
	if cfg.Racks != 9 || cfg.ServersPerRack != 16 || cfg.Spines != 4 {
		t.Fatalf("unexpected default sim config: %+v", cfg)
	}
	if cfg.LinkCapacity != 10e9 {
		t.Fatalf("default link capacity = %g, want 10e9", cfg.LinkCapacity)
	}
	topo := mustTopo(t, cfg)
	if topo.NumServers() != 144 {
		t.Fatalf("NumServers = %d, want 144", topo.NumServers())
	}
}

func TestConfigValidate(t *testing.T) {
	base := DefaultSimConfig()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero racks", func(c *Config) { c.Racks = 0 }},
		{"negative racks", func(c *Config) { c.Racks = -1 }},
		{"zero servers", func(c *Config) { c.ServersPerRack = 0 }},
		{"zero spines", func(c *Config) { c.Spines = 0 }},
		{"zero capacity", func(c *Config) { c.LinkCapacity = 0 }},
		{"negative capacity", func(c *Config) { c.LinkCapacity = -1 }},
		{"negative delay", func(c *Config) { c.LinkDelay = -1e-6 }},
		{"negative host delay", func(c *Config) { c.HostDelay = -1e-6 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("Validate accepted invalid config %+v", cfg)
			}
			if _, err := NewTwoTier(cfg); err == nil {
				t.Fatalf("NewTwoTier accepted invalid config %+v", cfg)
			}
		})
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("Validate rejected the default config: %v", err)
	}
}

func TestTopologyCounts(t *testing.T) {
	cfg := Config{Racks: 4, ServersPerRack: 8, Spines: 2, LinkCapacity: 10e9, LinkDelay: 1e-6}
	topo := mustTopo(t, cfg)
	if got, want := topo.NumServers(), 32; got != want {
		t.Errorf("NumServers = %d, want %d", got, want)
	}
	if got, want := topo.NumRacks(), 4; got != want {
		t.Errorf("NumRacks = %d, want %d", got, want)
	}
	if got, want := topo.NumSpines(), 2; got != want {
		t.Errorf("NumSpines = %d, want %d", got, want)
	}
	// Links: 2 per server (up/down) + 2 per (rack,spine) pair.
	wantLinks := 2*32 + 2*4*2
	if got := topo.NumLinks(); got != wantLinks {
		t.Errorf("NumLinks = %d, want %d", got, wantLinks)
	}
	// No allocator requested.
	if _, ok := topo.AllocatorNode(); ok {
		t.Error("AllocatorNode present although WithAllocator=false")
	}
}

func TestAllocatorNodeLinks(t *testing.T) {
	topo := mustTopo(t, DefaultSimConfig())
	alloc, ok := topo.AllocatorNode()
	if !ok {
		t.Fatal("default sim config should include an allocator host")
	}
	for s := 0; s < topo.NumSpines(); s++ {
		spine := topo.SpineSwitch(s)
		if _, ok := topo.LinkBetween(alloc, spine); !ok {
			t.Errorf("missing allocator->spine%d link", s)
		}
		if _, ok := topo.LinkBetween(spine, alloc); !ok {
			t.Errorf("missing spine%d->allocator link", s)
		}
	}
}

func TestRouteIntraRack(t *testing.T) {
	topo := mustTopo(t, DefaultSimConfig())
	path, err := topo.Route(0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Fatalf("intra-rack path length = %d, want 2", len(path))
	}
	up := topo.Link(path[0])
	down := topo.Link(path[1])
	if !up.Up || down.Up {
		t.Errorf("intra-rack path direction wrong: up=%v down=%v", up.Up, down.Up)
	}
	if up.Src != topo.Server(0) {
		t.Errorf("path does not start at the source server")
	}
	if down.Dst != topo.Server(1) {
		t.Errorf("path does not end at the destination server")
	}
}

func TestRouteCrossRack(t *testing.T) {
	topo := mustTopo(t, DefaultSimConfig())
	path, err := topo.Route(0, 17, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 {
		t.Fatalf("cross-rack path length = %d, want 4", len(path))
	}
	// The path must be link-connected: each link's Dst is the next link's Src.
	for i := 0; i+1 < len(path); i++ {
		if topo.Link(path[i]).Dst != topo.Link(path[i+1]).Src {
			t.Errorf("path not connected at hop %d", i)
		}
	}
	// Spine choice must respect the modulo.
	spine := topo.Link(path[1]).Dst
	if spine != topo.SpineSwitch(3%topo.NumSpines()) {
		t.Errorf("spine choice not honored")
	}
}

func TestRouteErrors(t *testing.T) {
	topo := mustTopo(t, DefaultSimConfig())
	if _, err := topo.Route(0, 0, 0); err == nil {
		t.Error("Route(0,0) should fail")
	}
	if _, err := topo.Route(-1, 5, 0); err == nil {
		t.Error("Route(-1,5) should fail")
	}
	if _, err := topo.Route(0, topo.NumServers(), 0); err == nil {
		t.Error("Route with out-of-range destination should fail")
	}
}

func TestRouteNegativeSpineChoice(t *testing.T) {
	topo := mustTopo(t, DefaultSimConfig())
	if _, err := topo.Route(0, 17, -7); err != nil {
		t.Fatalf("negative spine choice should be accepted (hash values can be negative): %v", err)
	}
}

func TestHopCountAndBaseRTT(t *testing.T) {
	topo := mustTopo(t, DefaultSimConfig())
	if got := topo.HopCount(0, 1); got != 2 {
		t.Errorf("intra-rack HopCount = %d, want 2", got)
	}
	if got := topo.HopCount(0, 20); got != 4 {
		t.Errorf("cross-rack HopCount = %d, want 4", got)
	}
	// Paper: 14 µs 2-hop RTT, 22 µs 4-hop RTT... with 1.5 µs links and 2 µs
	// hosts our model gives 2*(2*1.5+2)=10 µs and 2*(4*1.5+2)=16 µs; check
	// the relative structure rather than the absolute paper numbers.
	rtt2 := topo.BaseRTT(0, 1)
	rtt4 := topo.BaseRTT(0, 20)
	if rtt4 <= rtt2 {
		t.Errorf("4-hop RTT (%g) should exceed 2-hop RTT (%g)", rtt4, rtt2)
	}
	if rtt2 <= 0 {
		t.Errorf("RTT must be positive, got %g", rtt2)
	}
}

func TestCapacities(t *testing.T) {
	topo := mustTopo(t, DefaultSimConfig())
	caps := topo.Capacities()
	if len(caps) != topo.NumLinks() {
		t.Fatalf("Capacities length = %d, want %d", len(caps), topo.NumLinks())
	}
	for i, c := range caps {
		if c <= 0 {
			t.Fatalf("link %d has non-positive capacity %g", i, c)
		}
	}
	// Server links must match the configured capacity.
	up, _ := topo.LinkBetween(topo.Server(0), topo.ToRForRack(0))
	if caps[up] != topo.Config().LinkCapacity {
		t.Errorf("server uplink capacity = %g, want %g", caps[up], topo.Config().LinkCapacity)
	}
}

func TestRackOfServer(t *testing.T) {
	topo := mustTopo(t, DefaultSimConfig())
	per := topo.Config().ServersPerRack
	for _, tc := range []struct{ server, rack int }{{0, 0}, {per - 1, 0}, {per, 1}, {per*3 + 2, 3}} {
		if got := topo.RackOfServer(tc.server); got != tc.rack {
			t.Errorf("RackOfServer(%d) = %d, want %d", tc.server, got, tc.rack)
		}
	}
}

// TestRoutePropertyConnected checks, for random server pairs, that routes are
// connected, start at the source, end at the destination, and only go up then
// down.
func TestRoutePropertyConnected(t *testing.T) {
	topo := mustTopo(t, DefaultSimConfig())
	prop := func(a, b uint16, choice int8) bool {
		src := int(a) % topo.NumServers()
		dst := int(b) % topo.NumServers()
		if src == dst {
			return true
		}
		path, err := topo.Route(src, dst, int(choice))
		if err != nil {
			return false
		}
		if topo.Link(path[0]).Src != topo.Server(src) {
			return false
		}
		if topo.Link(path[len(path)-1]).Dst != topo.Server(dst) {
			return false
		}
		seenDown := false
		for i, lid := range path {
			l := topo.Link(lid)
			if i > 0 && topo.Link(path[i-1]).Dst != l.Src {
				return false
			}
			if !l.Up {
				seenDown = true
			} else if seenDown {
				return false // up link after a down link: not a valley-free path
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestLinkDirectionConsistency(t *testing.T) {
	topo := mustTopo(t, DefaultSimConfig())
	for _, l := range topo.Links() {
		src := topo.Node(l.Src)
		dst := topo.Node(l.Dst)
		switch {
		case src.Kind == Server && dst.Kind == ToR, src.Kind == ToR && dst.Kind == Spine:
			if !l.Up {
				t.Errorf("link %d (%v->%v) should be marked Up", l.ID, src.Kind, dst.Kind)
			}
		case src.Kind == ToR && dst.Kind == Server, src.Kind == Spine && dst.Kind == ToR:
			if l.Up {
				t.Errorf("link %d (%v->%v) should be marked Down", l.ID, src.Kind, dst.Kind)
			}
		}
	}
}

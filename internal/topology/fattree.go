package topology

import "fmt"

// FatTreeConfig describes a three-tier k-ary fat-tree fabric (Al-Fares et
// al., SIGCOMM 2008): k pods, each with k/2 edge (ToR) switches of k/2
// servers and k/2 aggregation switches, joined by (k/2)² core switches. All
// fabric links share one capacity, giving full bisection bandwidth.
type FatTreeConfig struct {
	// K is the switch radix; it must be even and at least 2. The fabric
	// has k³/4 servers.
	K int
	// LinkCapacity is the capacity of every link in bits per second.
	LinkCapacity float64
	// LinkDelay is the one-way propagation delay of each link in seconds.
	LinkDelay float64
	// HostDelay is the processing delay at each host in seconds.
	HostDelay float64
	// WithAllocator attaches an allocator host to every core switch,
	// mirroring the two-tier setup where it hangs off every spine.
	WithAllocator bool
	// AllocatorLinkCapacity is the capacity of each allocator uplink in
	// bits per second. Defaults to 4x LinkCapacity when zero.
	AllocatorLinkCapacity float64
}

// Validate checks the fat-tree configuration.
func (c FatTreeConfig) Validate() error {
	switch {
	case c.K < 2 || c.K%2 != 0:
		return fmt.Errorf("topology: fat-tree K must be even and >= 2, got %d", c.K)
	case c.LinkCapacity <= 0:
		return fmt.Errorf("topology: LinkCapacity must be positive, got %g", c.LinkCapacity)
	case c.LinkDelay < 0:
		return fmt.Errorf("topology: LinkDelay must be non-negative, got %g", c.LinkDelay)
	case c.HostDelay < 0:
		return fmt.Errorf("topology: HostDelay must be non-negative, got %g", c.HostDelay)
	}
	return nil
}

// fatTreeInfo is the pod structure of a fat-tree Topology.
type fatTreeInfo struct {
	cfg FatTreeConfig
	// k/2: edge switches per pod, aggregation switches per pod, servers
	// per edge, and cores per aggregation position.
	half int
}

// podOfRack returns the pod of a rack (edge switch) index.
func (ft *fatTreeInfo) podOfRack(rack int) int { return rack / ft.half }

// NewFatTree builds a three-tier k-ary fat-tree.
func NewFatTree(cfg FatTreeConfig) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.AllocatorLinkCapacity == 0 {
		cfg.AllocatorLinkCapacity = 4 * cfg.LinkCapacity
	}
	half := cfg.K / 2

	t := &Topology{
		cfg: Config{
			Racks:                 cfg.K * half,
			ServersPerRack:        half,
			Spines:                cfg.K * half,
			LinkCapacity:          cfg.LinkCapacity,
			LinkDelay:             cfg.LinkDelay,
			HostDelay:             cfg.HostDelay,
			WithAllocator:         cfg.WithAllocator,
			AllocatorLinkCapacity: cfg.AllocatorLinkCapacity,
		},
		fatTree:     &fatTreeInfo{cfg: cfg, half: half},
		allocatorID: -1,
		linkByPair:  make(map[[2]NodeID]LinkID),
	}

	addNode := func(kind NodeKind, rack, index int) NodeID {
		id := NodeID(len(t.nodes))
		t.nodes = append(t.nodes, Node{ID: id, Kind: kind, Rack: rack, Index: index})
		return id
	}
	addPair := func(lo, hi NodeID, capacity float64) {
		up := LinkID(len(t.links))
		t.links = append(t.links, Link{ID: up, Src: lo, Dst: hi, Capacity: capacity, Delay: cfg.LinkDelay, Up: true})
		t.linkByPair[[2]NodeID{lo, hi}] = up
		down := LinkID(len(t.links))
		t.links = append(t.links, Link{ID: down, Src: hi, Dst: lo, Capacity: capacity, Delay: cfg.LinkDelay, Up: false})
		t.linkByPair[[2]NodeID{hi, lo}] = down
	}

	// Edge switches and their servers, pod by pod.
	for pod := 0; pod < cfg.K; pod++ {
		for e := 0; e < half; e++ {
			rack := pod*half + e
			edge := addNode(ToR, rack, rack)
			t.torIDs = append(t.torIDs, edge)
			for s := 0; s < half; s++ {
				srv := addNode(Server, rack, rack*half+s)
				t.serverIDs = append(t.serverIDs, srv)
				addPair(srv, edge, cfg.LinkCapacity)
			}
		}
	}

	// Aggregation switches: every edge of a pod connects to every
	// aggregation switch of the same pod.
	for pod := 0; pod < cfg.K; pod++ {
		for a := 0; a < half; a++ {
			agg := addNode(Spine, -1, pod*half+a)
			t.spineIDs = append(t.spineIDs, agg)
			for e := 0; e < half; e++ {
				addPair(t.torIDs[pod*half+e], agg, cfg.LinkCapacity)
			}
		}
	}

	// Core switches: core c connects to the aggregation switch at position
	// c/(k/2) of every pod.
	for c := 0; c < half*half; c++ {
		core := addNode(Core, -1, c)
		t.coreIDs = append(t.coreIDs, core)
		pos := c / half
		for pod := 0; pod < cfg.K; pod++ {
			addPair(t.spineIDs[pod*half+pos], core, cfg.LinkCapacity)
		}
	}

	if cfg.WithAllocator {
		alloc := addNode(Allocator, -1, 0)
		t.allocatorID = alloc
		for _, core := range t.coreIDs {
			addPair(alloc, core, cfg.AllocatorLinkCapacity)
		}
	}

	return t, nil
}

// FatTree returns the fat-tree configuration of this topology, or ok=false
// for two-tier fabrics.
func (t *Topology) FatTree() (FatTreeConfig, bool) {
	if t.fatTree == nil {
		return FatTreeConfig{}, false
	}
	return t.fatTree.cfg, true
}

// NumCores returns the number of core switches (0 for two-tier fabrics).
func (t *Topology) NumCores() int { return len(t.coreIDs) }

// CoreSwitch returns the NodeID of core switch c.
func (t *Topology) CoreSwitch(c int) NodeID { return t.coreIDs[c] }

// mod returns i modulo n, mapped into [0, n).
func mod(i, n int) int { return ((i % n) + n) % n }

// mustLink returns the link between two directly connected nodes, panicking
// if none exists (a construction invariant, not a runtime condition).
func (t *Topology) mustLink(src, dst NodeID) LinkID {
	id, ok := t.linkByPair[[2]NodeID{src, dst}]
	if !ok {
		panic(fmt.Sprintf("topology: no link between node %d and node %d", src, dst))
	}
	return id
}

// routeFatTree computes a fat-tree path. choice selects among the k/2
// aggregation switches of the source pod and, for cross-pod paths, among the
// k/2 cores reachable from that aggregation switch — mirroring ECMP with a
// caller-supplied hash, exactly like the two-tier Route.
func (t *Topology) routeFatTree(src, dst, choice int) Path {
	ft := t.fatTree
	srcNode, dstNode := t.serverIDs[src], t.serverIDs[dst]
	srcRack, dstRack := t.RackOfServer(src), t.RackOfServer(dst)
	srcToR, dstToR := t.torIDs[srcRack], t.torIDs[dstRack]

	up1 := t.mustLink(srcNode, srcToR)
	down1 := t.mustLink(dstToR, dstNode)
	if srcRack == dstRack {
		return Path{up1, down1}
	}

	a := mod(choice, ft.half)
	srcPod, dstPod := ft.podOfRack(srcRack), ft.podOfRack(dstRack)
	srcAgg := t.spineIDs[srcPod*ft.half+a]
	if srcPod == dstPod {
		return Path{up1, t.mustLink(srcToR, srcAgg), t.mustLink(srcAgg, dstToR), down1}
	}

	core := t.coreIDs[a*ft.half+mod(choice/ft.half, ft.half)]
	dstAgg := t.spineIDs[dstPod*ft.half+a]
	return Path{
		up1,
		t.mustLink(srcToR, srcAgg),
		t.mustLink(srcAgg, core),
		t.mustLink(core, dstAgg),
		t.mustLink(dstAgg, dstToR),
		down1,
	}
}

// PathToAllocator returns the control path from a server to the allocator
// host, spreading servers across the allocator's uplinks with the
// caller-supplied choice (use the server index for a static spread). The
// allocator hangs off the spines in a two-tier fabric and off the cores in a
// fat-tree.
func (t *Topology) PathToAllocator(server, choice int) (Path, error) {
	up, _, err := t.allocatorPaths(server, choice)
	return up, err
}

// PathFromAllocator returns the control path from the allocator host down to
// a server; it is the reverse of PathToAllocator for the same choice.
func (t *Topology) PathFromAllocator(server, choice int) (Path, error) {
	_, down, err := t.allocatorPaths(server, choice)
	return down, err
}

// allocatorPaths computes both directions of a server's control path.
func (t *Topology) allocatorPaths(server, choice int) (up, down Path, err error) {
	if t.allocatorID < 0 {
		return nil, nil, fmt.Errorf("topology: fabric has no allocator host")
	}
	if server < 0 || server >= len(t.serverIDs) {
		return nil, nil, fmt.Errorf("topology: server index %d out of range (have %d servers)", server, len(t.serverIDs))
	}
	srv := t.serverIDs[server]
	rack := t.RackOfServer(server)
	tor := t.torIDs[rack]
	var via []NodeID // switches between the ToR and the allocator
	if ft := t.fatTree; ft != nil {
		a := mod(choice, ft.half)
		agg := t.spineIDs[ft.podOfRack(rack)*ft.half+a]
		core := t.coreIDs[a*ft.half+mod(choice/ft.half, ft.half)]
		via = []NodeID{agg, core}
	} else {
		via = []NodeID{t.spineIDs[mod(choice, len(t.spineIDs))]}
	}
	up = Path{t.mustLink(srv, tor)}
	prev := tor
	for _, sw := range via {
		up = append(up, t.mustLink(prev, sw))
		prev = sw
	}
	up = append(up, t.mustLink(prev, t.allocatorID))
	down = make(Path, 0, len(up))
	down = append(down, t.mustLink(t.allocatorID, prev))
	for i := len(via) - 2; i >= 0; i-- {
		down = append(down, t.mustLink(via[i+1], via[i]))
	}
	if len(via) > 0 {
		down = append(down, t.mustLink(via[0], tor))
	}
	down = append(down, t.mustLink(tor, srv))
	return up, down, nil
}

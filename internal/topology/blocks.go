package topology

import "fmt"

// BlockPartition groups racks into blocks and links into LinkBlocks, the
// partitioning used by Flowtune's multicore allocator (§5, Figure 2). All
// links going upward from the racks of a block form the block's upward
// LinkBlock; all links going downward toward those racks form its downward
// LinkBlock. Flows are partitioned by (source block, destination block) into
// FlowBlocks; FlowBlock (i,j) updates only upward LinkBlock i and downward
// LinkBlock j.
type BlockPartition struct {
	topo *Topology
	// numBlocks is the number of rack blocks.
	numBlocks int
	// racksPerBlock is the number of racks per block.
	racksPerBlock int
	// upLinks[b] lists the LinkIDs in block b's upward LinkBlock.
	upLinks [][]LinkID
	// downLinks[b] lists the LinkIDs in block b's downward LinkBlock.
	downLinks [][]LinkID
	// blockOfRack[r] is the block index of rack r.
	blockOfRack []int
}

// NewBlockPartition splits the topology's racks into numBlocks equal groups.
// numBlocks must divide the number of racks and should be a power of two for
// the hierarchical aggregation pattern of Figure 3 (not enforced here; the
// aggregation code handles any block count, falling back to a flat merge).
func NewBlockPartition(t *Topology, numBlocks int) (*BlockPartition, error) {
	if numBlocks <= 0 {
		return nil, fmt.Errorf("topology: numBlocks must be positive, got %d", numBlocks)
	}
	if t.NumCores() > 0 {
		// rackOfLink anchors links via Server/ToR endpoints, so the
		// agg↔core layer of a fat-tree would be silently left unpriced.
		return nil, fmt.Errorf("topology: LinkBlock partitioning is defined for two-tier fabrics; fat-tree has %d core switches", t.NumCores())
	}
	if t.NumRacks()%numBlocks != 0 {
		return nil, fmt.Errorf("topology: %d blocks do not evenly divide %d racks", numBlocks, t.NumRacks())
	}
	bp := &BlockPartition{
		topo:          t,
		numBlocks:     numBlocks,
		racksPerBlock: t.NumRacks() / numBlocks,
		upLinks:       make([][]LinkID, numBlocks),
		downLinks:     make([][]LinkID, numBlocks),
		blockOfRack:   make([]int, t.NumRacks()),
	}
	for r := 0; r < t.NumRacks(); r++ {
		bp.blockOfRack[r] = r / bp.racksPerBlock
	}
	for _, l := range t.Links() {
		rack, ok := bp.rackOfLink(l)
		if !ok {
			continue // allocator uplinks are not part of any LinkBlock
		}
		b := bp.blockOfRack[rack]
		if l.Up {
			bp.upLinks[b] = append(bp.upLinks[b], l.ID)
		} else {
			bp.downLinks[b] = append(bp.downLinks[b], l.ID)
		}
	}
	return bp, nil
}

// rackOfLink returns the rack that anchors a link to a block: the source rack
// for upward links, the destination rack for downward links.
func (bp *BlockPartition) rackOfLink(l Link) (int, bool) {
	var n Node
	if l.Up {
		n = bp.topo.Node(l.Src)
	} else {
		n = bp.topo.Node(l.Dst)
	}
	switch n.Kind {
	case Server, ToR:
		return n.Rack, true
	default:
		return 0, false
	}
}

// NumBlocks returns the number of rack blocks.
func (bp *BlockPartition) NumBlocks() int { return bp.numBlocks }

// NumFlowBlocks returns the number of FlowBlocks, numBlocks².
func (bp *BlockPartition) NumFlowBlocks() int { return bp.numBlocks * bp.numBlocks }

// BlockOfServer returns the block index of a server.
func (bp *BlockPartition) BlockOfServer(server int) int {
	return bp.blockOfRack[bp.topo.RackOfServer(server)]
}

// FlowBlockOf returns the FlowBlock index for a flow from server src to
// server dst. FlowBlocks are numbered srcBlock*numBlocks + dstBlock.
func (bp *BlockPartition) FlowBlockOf(src, dst int) int {
	return bp.BlockOfServer(src)*bp.numBlocks + bp.BlockOfServer(dst)
}

// FlowBlockCoords returns the (source block, destination block) coordinates
// of a FlowBlock index.
func (bp *BlockPartition) FlowBlockCoords(fb int) (srcBlock, dstBlock int) {
	return fb / bp.numBlocks, fb % bp.numBlocks
}

// UpwardLinkBlock returns the LinkIDs of block b's upward LinkBlock.
// The returned slice must not be modified.
func (bp *BlockPartition) UpwardLinkBlock(b int) []LinkID { return bp.upLinks[b] }

// DownwardLinkBlock returns the LinkIDs of block b's downward LinkBlock.
// The returned slice must not be modified.
func (bp *BlockPartition) DownwardLinkBlock(b int) []LinkID { return bp.downLinks[b] }

// AggregationSteps returns the number of aggregate/distribute steps needed
// for n² FlowBlocks: log2(numBlocks) (Figure 3 — the number of steps grows
// with every quadrupling of processors).
func (bp *BlockPartition) AggregationSteps() int {
	steps := 0
	for n := 1; n < bp.numBlocks; n *= 2 {
		steps++
	}
	return steps
}

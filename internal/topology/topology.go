package topology

import (
	"fmt"
	"sync/atomic"
)

// NodeKind identifies the role of a node in the fabric.
type NodeKind uint8

const (
	// Server is an end host attached to a ToR switch.
	Server NodeKind = iota
	// ToR is a top-of-rack (leaf) switch.
	ToR
	// Spine is a second-tier (aggregation/spine) switch.
	Spine
	// Core is a third-tier core switch (fat-tree fabrics only).
	Core
	// Allocator is the centralized Flowtune allocator host.
	Allocator
)

// String returns a short human-readable name for the node kind.
func (k NodeKind) String() string {
	switch k {
	case Server:
		return "server"
	case ToR:
		return "tor"
	case Spine:
		return "spine"
	case Core:
		return "core"
	case Allocator:
		return "allocator"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// NodeID identifies a node (server, switch, or allocator) in a Topology.
type NodeID int32

// LinkID identifies a unidirectional link in a Topology.
type LinkID int32

// Node is a single device in the fabric.
type Node struct {
	ID   NodeID
	Kind NodeKind
	// Rack is the rack index for servers and ToR switches, -1 otherwise.
	Rack int
	// Index is the position of the node within its kind (server index,
	// rack index, or spine index).
	Index int
}

// Link is a unidirectional link between two nodes.
type Link struct {
	ID LinkID
	// Src and Dst are the endpoints of the link.
	Src, Dst NodeID
	// Capacity is in bits per second.
	Capacity float64
	// Delay is the one-way propagation delay in seconds.
	Delay float64
	// Up reports whether the link goes up the topology
	// (server→ToR or ToR→spine).
	Up bool
}

// Topology is a description of a two-tier Clos fabric. The node and link
// structure is immutable after construction; the only mutable piece is the
// ECMP route salt (see SetRouteSalt), which models the fabric re-seeding its
// ECMP hash function.
//
// Construct one with NewTwoTier; the zero value is not usable.
type Topology struct {
	nodes []Node
	links []Link

	cfg Config

	// routeSalt is folded into every ECMP path choice (see Route). It is
	// atomic so fault injection can re-hash a fabric shared with
	// free-running daemons; step-driven runs mutate it only at iteration
	// boundaries, keeping routing deterministic.
	routeSalt atomic.Uint64

	// serverIDs[i] is the NodeID of server i.
	serverIDs []NodeID
	// torIDs[r] is the NodeID of the ToR switch of rack r.
	torIDs []NodeID
	// spineIDs[s] is the NodeID of spine switch s (aggregation switches in
	// a fat-tree).
	spineIDs []NodeID
	// coreIDs[c] is the NodeID of core switch c (fat-tree fabrics only).
	coreIDs []NodeID
	// fatTree holds the pod structure of a three-tier fat-tree, nil for
	// two-tier fabrics.
	fatTree *fatTreeInfo
	// allocatorID is the NodeID of the allocator host, or -1 if absent.
	allocatorID NodeID

	// linkByPair maps (src,dst) to the LinkID connecting them.
	linkByPair map[[2]NodeID]LinkID
}

// Config describes a two-tier Clos fabric.
type Config struct {
	// Racks is the number of racks (each with one ToR switch).
	Racks int
	// ServersPerRack is the number of servers attached to each ToR.
	ServersPerRack int
	// Spines is the number of spine switches. Every ToR connects to every
	// spine.
	Spines int
	// LinkCapacity is the capacity of every server and fabric link in
	// bits per second (the paper's simulations use 10 Gbit/s; the
	// allocator benchmarks use 40 Gbit/s).
	LinkCapacity float64
	// LinkDelay is the one-way propagation delay of each link in seconds.
	LinkDelay float64
	// HostDelay is the processing delay at each host in seconds. It is
	// recorded for simulator use; it does not create topology links.
	HostDelay float64
	// WithAllocator adds an allocator host connected to every spine
	// switch with a dedicated AllocatorLinkCapacity link, mirroring the
	// paper's setup (40 Gbit/s link to each spine).
	WithAllocator bool
	// AllocatorLinkCapacity is the capacity of each allocator uplink in
	// bits per second. Defaults to 4x LinkCapacity when zero.
	AllocatorLinkCapacity float64
}

// DefaultSimConfig returns the simulation topology used throughout §6.2-§6.5
// of the paper: 4 spine switches, 9 racks of 16 servers, 10 Gbit/s links,
// 1.5 µs link delay and 2 µs host delay.
func DefaultSimConfig() Config {
	return Config{
		Racks:          9,
		ServersPerRack: 16,
		Spines:         4,
		LinkCapacity:   10e9,
		LinkDelay:      1.5e-6,
		HostDelay:      2e-6,
		WithAllocator:  true,
	}
}

// Validate checks the configuration for obvious errors.
func (c Config) Validate() error {
	switch {
	case c.Racks <= 0:
		return fmt.Errorf("topology: Racks must be positive, got %d", c.Racks)
	case c.ServersPerRack <= 0:
		return fmt.Errorf("topology: ServersPerRack must be positive, got %d", c.ServersPerRack)
	case c.Spines <= 0:
		return fmt.Errorf("topology: Spines must be positive, got %d", c.Spines)
	case c.LinkCapacity <= 0:
		return fmt.Errorf("topology: LinkCapacity must be positive, got %g", c.LinkCapacity)
	case c.LinkDelay < 0:
		return fmt.Errorf("topology: LinkDelay must be non-negative, got %g", c.LinkDelay)
	case c.HostDelay < 0:
		return fmt.Errorf("topology: HostDelay must be non-negative, got %g", c.HostDelay)
	}
	return nil
}

// NewTwoTier builds a two-tier full-bisection Clos topology from cfg.
func NewTwoTier(cfg Config) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.AllocatorLinkCapacity == 0 {
		cfg.AllocatorLinkCapacity = 4 * cfg.LinkCapacity
	}

	t := &Topology{
		cfg:         cfg,
		allocatorID: -1,
		linkByPair:  make(map[[2]NodeID]LinkID),
	}

	addNode := func(kind NodeKind, rack, index int) NodeID {
		id := NodeID(len(t.nodes))
		t.nodes = append(t.nodes, Node{ID: id, Kind: kind, Rack: rack, Index: index})
		return id
	}
	addLink := func(src, dst NodeID, capacity, delay float64, up bool) LinkID {
		id := LinkID(len(t.links))
		t.links = append(t.links, Link{ID: id, Src: src, Dst: dst, Capacity: capacity, Delay: delay, Up: up})
		t.linkByPair[[2]NodeID{src, dst}] = id
		return id
	}

	// Servers and ToRs.
	for r := 0; r < cfg.Racks; r++ {
		tor := addNode(ToR, r, r)
		t.torIDs = append(t.torIDs, tor)
		for s := 0; s < cfg.ServersPerRack; s++ {
			srv := addNode(Server, r, r*cfg.ServersPerRack+s)
			t.serverIDs = append(t.serverIDs, srv)
			addLink(srv, tor, cfg.LinkCapacity, cfg.LinkDelay, true)
			addLink(tor, srv, cfg.LinkCapacity, cfg.LinkDelay, false)
		}
	}

	// Spines, fully connected to every ToR.
	for s := 0; s < cfg.Spines; s++ {
		sp := addNode(Spine, -1, s)
		t.spineIDs = append(t.spineIDs, sp)
		for r := 0; r < cfg.Racks; r++ {
			// Full-bisection: each ToR-spine link carries the rack's
			// share of uplink capacity.
			cap := cfg.LinkCapacity * float64(cfg.ServersPerRack) / float64(cfg.Spines)
			addLink(t.torIDs[r], sp, cap, cfg.LinkDelay, true)
			addLink(sp, t.torIDs[r], cap, cfg.LinkDelay, false)
		}
	}

	if cfg.WithAllocator {
		alloc := addNode(Allocator, -1, 0)
		t.allocatorID = alloc
		for _, sp := range t.spineIDs {
			addLink(alloc, sp, cfg.AllocatorLinkCapacity, cfg.LinkDelay, true)
			addLink(sp, alloc, cfg.AllocatorLinkCapacity, cfg.LinkDelay, false)
		}
	}

	return t, nil
}

// Config returns the configuration the topology was built from.
func (t *Topology) Config() Config { return t.cfg }

// NumServers returns the number of servers in the fabric.
func (t *Topology) NumServers() int { return len(t.serverIDs) }

// NumRacks returns the number of racks.
func (t *Topology) NumRacks() int { return len(t.torIDs) }

// NumSpines returns the number of spine switches.
func (t *Topology) NumSpines() int { return len(t.spineIDs) }

// NumLinks returns the number of unidirectional links.
func (t *Topology) NumLinks() int { return len(t.links) }

// NumNodes returns the number of nodes (servers, switches, allocator).
func (t *Topology) NumNodes() int { return len(t.nodes) }

// Node returns the node with the given id.
func (t *Topology) Node(id NodeID) Node { return t.nodes[id] }

// Link returns the link with the given id.
func (t *Topology) Link(id LinkID) Link { return t.links[id] }

// Links returns all links. The returned slice must not be modified.
func (t *Topology) Links() []Link { return t.links }

// Server returns the NodeID of server i (0 <= i < NumServers).
func (t *Topology) Server(i int) NodeID { return t.serverIDs[i] }

// ServerIndex returns the server index of a server node id.
func (t *Topology) ServerIndex(id NodeID) int { return t.nodes[id].Index }

// ToRForRack returns the ToR switch of rack r.
func (t *Topology) ToRForRack(r int) NodeID { return t.torIDs[r] }

// SpineSwitch returns the NodeID of spine s.
func (t *Topology) SpineSwitch(s int) NodeID { return t.spineIDs[s] }

// AllocatorNode returns the allocator host's NodeID and whether it exists.
func (t *Topology) AllocatorNode() (NodeID, bool) {
	if t.allocatorID < 0 {
		return 0, false
	}
	return t.allocatorID, true
}

// RackOfServer returns the rack index of server i.
func (t *Topology) RackOfServer(i int) int { return i / t.cfg.ServersPerRack }

// LinkBetween returns the link from src to dst, if one exists.
func (t *Topology) LinkBetween(src, dst NodeID) (LinkID, bool) {
	id, ok := t.linkByPair[[2]NodeID{src, dst}]
	return id, ok
}

// UplinkID returns the ToR→spine uplink from rack r to spine (or
// aggregation switch) s, if one exists. Fault plans address fabric links
// symbolically by (rack, spine) so the same plan resolves against both the
// full and the shrunk scenario fabrics.
func (t *Topology) UplinkID(rack, spine int) (LinkID, bool) {
	if rack < 0 || rack >= len(t.torIDs) || spine < 0 || spine >= len(t.spineIDs) {
		return 0, false
	}
	return t.LinkBetween(t.torIDs[rack], t.spineIDs[spine])
}

// DownlinkID returns the spine→ToR downlink from spine s to rack r, if one
// exists. It is the reverse direction of UplinkID.
func (t *Topology) DownlinkID(spine, rack int) (LinkID, bool) {
	if rack < 0 || rack >= len(t.torIDs) || spine < 0 || spine >= len(t.spineIDs) {
		return 0, false
	}
	return t.LinkBetween(t.spineIDs[spine], t.torIDs[rack])
}

// SetRouteSalt replaces the ECMP hash salt. Route folds the salt into the
// caller-supplied path choice, so changing it re-hashes every cross-rack
// path — the fault layer's model of a fabric-wide ECMP re-seed. Paths
// already installed in the data plane keep their old links (the simulator
// routes a flowlet once, at start); only paths routed after the change see
// the new mapping, which is exactly the arbiter/fabric divergence hazard
// the ecmp-rehash scenarios exercise.
func (t *Topology) SetRouteSalt(salt uint64) { t.routeSalt.Store(salt) }

// RouteSalt returns the current ECMP hash salt.
func (t *Topology) RouteSalt() uint64 { return t.routeSalt.Load() }

// Capacities returns a slice of link capacities indexed by LinkID.
func (t *Topology) Capacities() []float64 {
	caps := make([]float64, len(t.links))
	for i, l := range t.links {
		caps[i] = l.Capacity
	}
	return caps
}

// Path is the ordered list of links a flow traverses from source server to
// destination server.
type Path []LinkID

// Route computes the path from server src to server dst (server indices, not
// NodeIDs). Cross-rack flows traverse a spine chosen by spineChoice modulo
// the number of spines; intra-rack flows go server→ToR→server. Route mirrors
// ECMP path selection with the hash supplied by the caller so the allocator
// and the simulator agree on paths (§7: Flowtune works with the paths the
// network selects).
func (t *Topology) Route(src, dst int, spineChoice int) (Path, error) {
	if src < 0 || src >= len(t.serverIDs) || dst < 0 || dst >= len(t.serverIDs) {
		return nil, fmt.Errorf("topology: server index out of range: src=%d dst=%d (have %d servers)", src, dst, len(t.serverIDs))
	}
	if src == dst {
		return nil, fmt.Errorf("topology: source and destination are the same server %d", src)
	}
	if salt := t.routeSalt.Load(); salt != 0 {
		// A bounded additive perturbation keeps Route periodic in the
		// fabric's ECMP fan-out (both the two-tier spine pick and the
		// fat-tree choice decomposition are modulo-arithmetic), so the
		// RouteCache's canonicalized keys stay correct under any salt.
		spineChoice += int(salt % (1 << 20))
	}
	if t.fatTree != nil {
		return t.routeFatTree(src, dst, spineChoice), nil
	}
	srcNode := t.serverIDs[src]
	dstNode := t.serverIDs[dst]
	srcRack := t.RackOfServer(src)
	dstRack := t.RackOfServer(dst)
	srcToR := t.torIDs[srcRack]
	dstToR := t.torIDs[dstRack]

	up1, _ := t.LinkBetween(srcNode, srcToR)
	if srcRack == dstRack {
		down1, _ := t.LinkBetween(srcToR, dstNode)
		return Path{up1, down1}, nil
	}
	spine := t.spineIDs[((spineChoice%len(t.spineIDs))+len(t.spineIDs))%len(t.spineIDs)]
	up2, _ := t.LinkBetween(srcToR, spine)
	down2, _ := t.LinkBetween(spine, dstToR)
	down1, _ := t.LinkBetween(dstToR, dstNode)
	return Path{up1, up2, down2, down1}, nil
}

// HopCount returns the number of links on the path between two servers:
// 2 for intra-rack paths, 4 for cross-rack (two-tier) or intra-pod
// (fat-tree) paths, and 6 for cross-pod fat-tree paths.
func (t *Topology) HopCount(src, dst int) int {
	srcRack, dstRack := t.RackOfServer(src), t.RackOfServer(dst)
	if srcRack == dstRack {
		return 2
	}
	if ft := t.fatTree; ft != nil && ft.podOfRack(srcRack) != ft.podOfRack(dstRack) {
		return 6
	}
	return 4
}

// BaseRTT returns the unloaded round-trip time between two servers,
// including link propagation and host delays, in seconds.
func (t *Topology) BaseRTT(src, dst int) float64 {
	hops := t.HopCount(src, dst)
	oneWay := float64(hops)*t.cfg.LinkDelay + t.cfg.HostDelay
	return 2 * oneWay
}

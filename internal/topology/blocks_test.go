package topology

import "testing"

func TestBlockPartitionBasics(t *testing.T) {
	topo := mustTopo(t, Config{Racks: 8, ServersPerRack: 4, Spines: 2, LinkCapacity: 10e9, LinkDelay: 1e-6})
	bp, err := NewBlockPartition(topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bp.NumBlocks() != 4 {
		t.Fatalf("NumBlocks = %d, want 4", bp.NumBlocks())
	}
	if bp.NumFlowBlocks() != 16 {
		t.Fatalf("NumFlowBlocks = %d, want 16", bp.NumFlowBlocks())
	}
	if bp.AggregationSteps() != 2 {
		t.Fatalf("AggregationSteps = %d, want 2 (log2 of 4 blocks)", bp.AggregationSteps())
	}
}

func TestBlockPartitionErrors(t *testing.T) {
	topo := mustTopo(t, Config{Racks: 9, ServersPerRack: 4, Spines: 2, LinkCapacity: 10e9})
	if _, err := NewBlockPartition(topo, 0); err == nil {
		t.Error("zero blocks should be rejected")
	}
	if _, err := NewBlockPartition(topo, 2); err == nil {
		t.Error("blocks not dividing racks should be rejected")
	}
	if _, err := NewBlockPartition(topo, 3); err != nil {
		t.Errorf("3 blocks over 9 racks should be accepted: %v", err)
	}
}

func TestBlockOfServerAndFlowBlock(t *testing.T) {
	topo := mustTopo(t, Config{Racks: 8, ServersPerRack: 4, Spines: 2, LinkCapacity: 10e9})
	bp, err := NewBlockPartition(topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 2 racks per block, 4 servers per rack => 8 servers per block.
	if got := bp.BlockOfServer(0); got != 0 {
		t.Errorf("BlockOfServer(0) = %d, want 0", got)
	}
	if got := bp.BlockOfServer(9); got != 1 {
		t.Errorf("BlockOfServer(9) = %d, want 1", got)
	}
	fb := bp.FlowBlockOf(0, 9)
	sb, db := bp.FlowBlockCoords(fb)
	if sb != 0 || db != 1 {
		t.Errorf("FlowBlockCoords(%d) = (%d,%d), want (0,1)", fb, sb, db)
	}
}

// TestLinkBlockCoverage checks every fabric link belongs to exactly one
// LinkBlock (up or down) and that allocator links belong to none.
func TestLinkBlockCoverage(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Racks = 8 // divisible into 4 blocks
	topo := mustTopo(t, cfg)
	bp, err := NewBlockPartition(topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[LinkID]int)
	for b := 0; b < bp.NumBlocks(); b++ {
		for _, l := range bp.UpwardLinkBlock(b) {
			seen[l]++
			if !topo.Link(l).Up {
				t.Errorf("link %d in upward LinkBlock %d is not an up link", l, b)
			}
		}
		for _, l := range bp.DownwardLinkBlock(b) {
			seen[l]++
			if topo.Link(l).Up {
				t.Errorf("link %d in downward LinkBlock %d is not a down link", l, b)
			}
		}
	}
	alloc, _ := topo.AllocatorNode()
	for _, l := range topo.Links() {
		isAllocatorLink := l.Src == alloc || l.Dst == alloc
		count := seen[l.ID]
		if isAllocatorLink && count != 0 {
			t.Errorf("allocator link %d assigned to a LinkBlock", l.ID)
		}
		if !isAllocatorLink && count != 1 {
			t.Errorf("fabric link %d assigned to %d LinkBlocks, want exactly 1", l.ID, count)
		}
	}
}

// TestFlowBlockLocality checks the property §5 relies on: every link on a
// flow's route belongs either to the source block's upward LinkBlock or the
// destination block's downward LinkBlock.
func TestFlowBlockLocality(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Racks = 8
	topo := mustTopo(t, cfg)
	bp, err := NewBlockPartition(topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	inBlock := func(links []LinkID, id LinkID) bool {
		for _, l := range links {
			if l == id {
				return true
			}
		}
		return false
	}
	for src := 0; src < topo.NumServers(); src += 7 {
		for dst := 0; dst < topo.NumServers(); dst += 11 {
			if src == dst {
				continue
			}
			path, err := topo.Route(src, dst, src+dst)
			if err != nil {
				t.Fatal(err)
			}
			up := bp.UpwardLinkBlock(bp.BlockOfServer(src))
			down := bp.DownwardLinkBlock(bp.BlockOfServer(dst))
			for _, l := range path {
				if !inBlock(up, l) && !inBlock(down, l) {
					t.Fatalf("flow %d->%d: link %d outside both its LinkBlocks", src, dst, l)
				}
			}
		}
	}
}

func TestAggregationStepsPowers(t *testing.T) {
	for _, tc := range []struct{ blocks, steps int }{{1, 0}, {2, 1}, {4, 2}, {8, 3}} {
		cfg := Config{Racks: 8, ServersPerRack: 2, Spines: 2, LinkCapacity: 1e9}
		topo := mustTopo(t, cfg)
		bp, err := NewBlockPartition(topo, tc.blocks)
		if err != nil {
			t.Fatal(err)
		}
		if got := bp.AggregationSteps(); got != tc.steps {
			t.Errorf("AggregationSteps(%d blocks) = %d, want %d", tc.blocks, got, tc.steps)
		}
	}
}

package topology

// routeChoices returns the number of distinct ECMP path choices between any
// server pair: Route(src, dst, c) and Route(src, dst, c') return the same
// path whenever c ≡ c' modulo this count (for non-negative choices).
// Two-tier fabrics hash over the spines; a fat-tree hashes over the k/2
// source-pod aggregation switches and the k/2 cores reachable from each.
func (t *Topology) routeChoices() int {
	if t.fatTree != nil {
		return t.fatTree.half * t.fatTree.half
	}
	return len(t.spineIDs)
}

// routeKey is the canonical cache key of one routed path.
type routeKey struct {
	src, dst int32
	choice   int32
}

// RouteCache memoizes Topology.Route so steady-state flowlet churn does not
// allocate: the first start of a given (src, dst, ECMP choice) triple routes
// and caches the path, and every later start returns the cached Path. Cached
// paths are shared — callers must treat them as read-only, which both
// allocators already do (they translate the path into their own link
// indices at add time).
//
// The choice is canonicalized modulo the fabric's ECMP fan-out before
// keying, so the cache is bounded by servers² × choices regardless of the
// flow-ID space. A RouteCache is not safe for concurrent use; each allocator
// owns one.
type RouteCache struct {
	topo    *Topology
	choices int
	paths   map[routeKey]Path
	// salt is the topology route salt the cached paths were computed
	// under; Route drops the whole cache when the fabric re-hashes.
	salt uint64
}

// NewRouteCache creates an empty route cache over t.
func NewRouteCache(t *Topology) *RouteCache {
	return &RouteCache{
		topo:    t,
		choices: t.routeChoices(),
		paths:   make(map[routeKey]Path),
		salt:    t.RouteSalt(),
	}
}

// Len returns the number of cached paths.
func (rc *RouteCache) Len() int { return len(rc.paths) }

// Route returns the path from server src to server dst for the given ECMP
// choice, computing and caching it on first use. It returns exactly what
// Topology.Route would.
func (rc *RouteCache) Route(src, dst int, choice int) (Path, error) {
	if s := rc.topo.RouteSalt(); s != rc.salt {
		// The fabric re-seeded its ECMP hash: every cached path may now
		// be stale, so start over.
		rc.salt = s
		clear(rc.paths)
	}
	if choice < 0 {
		// Negative choices decompose differently under truncated division
		// in the fat-tree router; they do not occur on the churn path
		// (flow IDs are non-negative), so bypass the cache rather than
		// canonicalize them wrongly.
		return rc.topo.Route(src, dst, choice)
	}
	key := routeKey{src: int32(src), dst: int32(dst), choice: int32(choice % rc.choices)}
	if src >= 0 && dst >= 0 && src < rc.topo.NumServers() && dst < rc.topo.NumServers() &&
		rc.topo.RackOfServer(src) == rc.topo.RackOfServer(dst) {
		// Intra-rack paths ignore the ECMP choice entirely.
		key.choice = 0
	}
	if p, ok := rc.paths[key]; ok {
		return p, nil
	}
	p, err := rc.topo.Route(src, dst, choice)
	if err != nil {
		return nil, err
	}
	rc.paths[key] = p
	return p, nil
}

package topology

import "fmt"

// ShardMap partitions a two-tier fabric across a cluster of allocator
// daemons: each shard owns a contiguous group of racks (a rack block of the
// §5 partition) — the servers in those racks plus every link anchored at
// them. Flowlets are assigned to the shard of their source server, so a
// shard's flows traverse:
//
//   - its own upward links (server→ToR, ToR→spine anchored at the source
//     rack), which no remote flow ever uses, and
//   - downward links (spine→ToR, ToR→server anchored at the destination
//     rack), which belong to the destination's shard.
//
// The downward links are therefore the only links visible to more than one
// shard: they are the cluster's boundary. Each shard exports the prices of
// its own boundary links (a PriceSnapshot) and pushes its local load on
// remote boundary links to their owner (a PriceDigest), which is the entire
// state the cluster exchanges.
type ShardMap struct {
	topo   *Topology
	shards int
	part   *BlockPartition
	// ownerOfLink[l] is the shard owning LinkID l, or -1 for links outside
	// every shard (allocator uplinks, which no server-to-server route ever
	// traverses).
	ownerOfLink []int32
	// boundary[s] lists shard s's downward links: the links remote flows
	// may traverse and therefore the subject of the price exchange.
	boundary [][]LinkID
	// owned[s] lists every link shard s owns (upward + downward).
	owned [][]LinkID
}

// NewShardMap splits the topology's racks into shards equal groups, reusing
// the FlowBlock/LinkBlock partition rules: the fabric must be two-tier and
// shards must evenly divide the rack count.
func NewShardMap(t *Topology, shards int) (*ShardMap, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("topology: shards must be positive, got %d", shards)
	}
	part, err := NewBlockPartition(t, shards)
	if err != nil {
		return nil, err
	}
	m := &ShardMap{
		topo:        t,
		shards:      shards,
		part:        part,
		ownerOfLink: make([]int32, t.NumLinks()),
		boundary:    make([][]LinkID, shards),
		owned:       make([][]LinkID, shards),
	}
	for i := range m.ownerOfLink {
		m.ownerOfLink[i] = -1
	}
	for s := 0; s < shards; s++ {
		up := part.UpwardLinkBlock(s)
		down := part.DownwardLinkBlock(s)
		m.boundary[s] = down
		m.owned[s] = make([]LinkID, 0, len(up)+len(down))
		m.owned[s] = append(m.owned[s], up...)
		m.owned[s] = append(m.owned[s], down...)
		for _, l := range m.owned[s] {
			m.ownerOfLink[l] = int32(s)
		}
	}
	return m, nil
}

// Topology returns the fabric the map shards.
func (m *ShardMap) Topology() *Topology { return m.topo }

// NumShards returns the number of shards.
func (m *ShardMap) NumShards() int { return m.shards }

// ShardOfServer returns the shard owning a server.
func (m *ShardMap) ShardOfServer(server int) int { return m.part.BlockOfServer(server) }

// ShardOfFlow returns the shard that allocates a flowlet from server src to
// server dst: the source's shard, so every flow is owned by exactly one
// daemon and endpoints can hash locally without coordination.
func (m *ShardMap) ShardOfFlow(src, dst int) int { return m.ShardOfServer(src) }

// OwnerOfLink returns the shard owning a link, or -1 when the link belongs
// to no shard (allocator uplinks).
func (m *ShardMap) OwnerOfLink(l LinkID) int { return int(m.ownerOfLink[l]) }

// BoundaryLinks returns shard s's downward links: the links that flows owned
// by other shards may traverse. Their prices are what shard s exports, and
// remote load on them is what shard s imports. The returned slice must not
// be modified.
func (m *ShardMap) BoundaryLinks(s int) []LinkID { return m.boundary[s] }

// OwnedLinks returns every link shard s owns (upward and downward). The
// returned slice must not be modified.
func (m *ShardMap) OwnedLinks(s int) []LinkID { return m.owned[s] }

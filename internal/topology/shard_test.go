package topology

import "testing"

// shardTestTopo builds a small two-tier fabric with an allocator host so the
// shard map has to classify allocator uplinks too.
func shardTestTopo(t *testing.T) *Topology {
	t.Helper()
	topo, err := NewTwoTier(Config{
		Racks:          4,
		ServersPerRack: 4,
		Spines:         2,
		LinkCapacity:   10e9,
		WithAllocator:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestShardMapOwnership(t *testing.T) {
	topo := shardTestTopo(t)
	m, err := NewShardMap(topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", m.NumShards())
	}

	// Servers split by rack: racks 0-1 → shard 0, racks 2-3 → shard 1.
	for srv := 0; srv < topo.NumServers(); srv++ {
		want := topo.RackOfServer(srv) / 2
		if got := m.ShardOfServer(srv); got != want {
			t.Fatalf("ShardOfServer(%d) = %d, want %d", srv, got, want)
		}
	}
	if m.ShardOfFlow(0, topo.NumServers()-1) != 0 {
		t.Fatal("ShardOfFlow must follow the source server")
	}

	// Every link is owned by exactly one shard, except allocator uplinks.
	for _, l := range topo.Links() {
		owner := m.OwnerOfLink(l.ID)
		srcKind := topo.Node(l.Src).Kind
		dstKind := topo.Node(l.Dst).Kind
		if srcKind == Allocator || dstKind == Allocator {
			if owner != -1 {
				t.Fatalf("allocator link %d owned by shard %d", l.ID, owner)
			}
			continue
		}
		if owner < 0 || owner >= 2 {
			t.Fatalf("fabric link %d has no owner (got %d)", l.ID, owner)
		}
	}

	// Boundary links are exactly the downward links of the shard's racks,
	// and every shard-owned link appears in OwnedLinks exactly once.
	seen := make(map[LinkID]int)
	for s := 0; s < 2; s++ {
		for _, l := range m.BoundaryLinks(s) {
			link := topo.Link(l)
			if link.Up {
				t.Fatalf("shard %d boundary link %d is an upward link", s, l)
			}
			if m.OwnerOfLink(l) != s {
				t.Fatalf("shard %d boundary link %d owned by %d", s, l, m.OwnerOfLink(l))
			}
		}
		for _, l := range m.OwnedLinks(s) {
			seen[l]++
		}
	}
	for l, n := range seen {
		if n != 1 {
			t.Fatalf("link %d owned %d times", l, n)
		}
	}

	// Routes of a flow stay within (source-shard upward ∪ dest-shard
	// downward) links — the invariant the price exchange is built on.
	for _, pair := range [][2]int{{0, 5}, {0, 13}, {14, 2}, {7, 9}} {
		src, dst := pair[0], pair[1]
		path, err := topo.Route(src, dst, src+dst)
		if err != nil {
			t.Fatal(err)
		}
		srcShard, dstShard := m.ShardOfServer(src), m.ShardOfServer(dst)
		for _, l := range path {
			owner := m.OwnerOfLink(l)
			if topo.Link(l).Up {
				if owner != srcShard {
					t.Fatalf("up link %d of %d→%d owned by %d, want source shard %d", l, src, dst, owner, srcShard)
				}
			} else if owner != dstShard {
				t.Fatalf("down link %d of %d→%d owned by %d, want dest shard %d", l, src, dst, owner, dstShard)
			}
		}
	}
}

func TestShardMapErrors(t *testing.T) {
	topo := shardTestTopo(t)
	if _, err := NewShardMap(topo, 3); err == nil {
		t.Fatal("3 shards over 4 racks must be rejected")
	}
	if _, err := NewShardMap(topo, 0); err == nil {
		t.Fatal("0 shards must be rejected")
	}
	ft, err := NewFatTree(FatTreeConfig{K: 4, LinkCapacity: 10e9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardMap(ft, 2); err == nil {
		t.Fatal("fat-tree sharding must be rejected (agg↔core links would be unowned)")
	}
}

func TestRouteCacheMatchesRoute(t *testing.T) {
	for name, build := range map[string]func() (*Topology, error){
		"two-tier": func() (*Topology, error) { return NewTwoTier(DefaultSimConfig()) },
		"fat-tree": func() (*Topology, error) {
			return NewFatTree(FatTreeConfig{K: 4, LinkCapacity: 10e9, WithAllocator: true})
		},
	} {
		t.Run(name, func(t *testing.T) {
			topo, err := build()
			if err != nil {
				t.Fatal(err)
			}
			rc := NewRouteCache(topo)
			n := topo.NumServers()
			// Exercise choices far beyond the ECMP fan-out (flow IDs) and
			// repeat each to hit the cached path the second time.
			for pass := 0; pass < 2; pass++ {
				for i := 0; i < 200; i++ {
					src := (i * 13) % n
					dst := (i*7 + 5) % n
					if src == dst {
						continue
					}
					choice := i * 97
					want, err := topo.Route(src, dst, choice)
					if err != nil {
						t.Fatal(err)
					}
					got, err := rc.Route(src, dst, choice)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("pass %d: route %d→%d/%d: got %v, want %v", pass, src, dst, choice, got, want)
					}
					for k := range got {
						if got[k] != want[k] {
							t.Fatalf("pass %d: route %d→%d/%d: got %v, want %v", pass, src, dst, choice, got, want)
						}
					}
				}
			}
			// The cache key space is bounded by the ECMP fan-out, not the
			// choice values fed in.
			if max := n * n * topo.routeChoices(); rc.Len() > max {
				t.Fatalf("cache holds %d paths, more than %d possible", rc.Len(), max)
			}
			// Errors pass through uncached.
			if _, err := rc.Route(0, 0, 1); err == nil {
				t.Fatal("same-server route must fail")
			}
			if _, err := rc.Route(-1, 1, 1); err == nil {
				t.Fatal("out-of-range server must fail")
			}
			// Negative choices bypass the cache but still route.
			want, err := topo.Route(1, 2, -5)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rc.Route(1, 2, -5)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) || got[0] != want[0] {
				t.Fatalf("negative choice: got %v, want %v", got, want)
			}
		})
	}
}

package wire

import (
	"math"
	"testing"
)

func TestFlowStateRoundTrip(t *testing.T) {
	entries := []FlowStateEntry{
		{Flow: 1, Src: 0, Dst: 15, Weight: 1},
		{Flow: -9, Src: 3, Dst: 3, Weight: 0.25},
		{Flow: 1 << 60, Src: 1 << 20, Dst: 0, Weight: math.Inf(1)},
	}
	buf := AppendFlowStateHeader(nil, 4, 21, 2, len(entries))
	for _, e := range entries {
		buf = AppendFlowStateEntry(buf, e)
	}
	typ, p, rest, err := ParseFrame(buf)
	if err != nil || typ != TypeFlowState || len(rest) != 0 {
		t.Fatalf("ParseFrame = %v, rest %d, err %v", typ, len(rest), err)
	}
	fs, err := DecodeFlowState(p)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Epoch != 4 || fs.Seq != 21 || fs.Shard != 2 || fs.Len() != len(entries) {
		t.Fatalf("flow-state header = epoch %d seq %d shard %d len %d", fs.Epoch, fs.Seq, fs.Shard, fs.Len())
	}
	for i, want := range entries {
		if got := fs.Entry(i); got != want {
			t.Fatalf("entry %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := DecodeFlowState(p[:len(p)-1]); err == nil {
		t.Fatal("truncated flow-state must be rejected")
	}
	if _, err := DecodeFlowState(p[:flowStateHdrLen-1]); err == nil {
		t.Fatal("header-less flow-state must be rejected")
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	in := Heartbeat{Seq: 1 << 50, Shard: 6}
	typ, p, _, err := ParseFrame(AppendHeartbeat(nil, in))
	if err != nil || typ != TypeHeartbeat {
		t.Fatalf("ParseFrame = %v, err %v", typ, err)
	}
	out, err := DecodeHeartbeat(p)
	if err != nil || out != in {
		t.Fatalf("DecodeHeartbeat = %+v, %v; want %+v", out, err, in)
	}
	if _, err := DecodeHeartbeat(p[:heartbeatLen-1]); err == nil {
		t.Fatal("short heartbeat must be rejected")
	}
}

func TestTakeoverRoundTrip(t *testing.T) {
	in := Takeover{Epoch: 3, Seq: 99, Dead: 1, By: 2}
	typ, p, _, err := ParseFrame(AppendTakeover(nil, in))
	if err != nil || typ != TypeTakeover {
		t.Fatalf("ParseFrame = %v, err %v", typ, err)
	}
	out, err := DecodeTakeover(p)
	if err != nil || out != in {
		t.Fatalf("DecodeTakeover = %+v, %v; want %+v", out, err, in)
	}
	if _, err := DecodeTakeover(p[:takeoverLen-1]); err == nil {
		t.Fatal("short takeover must be rejected")
	}
}

// TestEpochDrainFlag pins the drain bit's position: it must never collide
// with a real epoch (epochs are small counters) and must survive an
// EpochNotify round trip.
func TestEpochDrainFlag(t *testing.T) {
	if EpochDrainFlag != 1<<63 {
		t.Fatalf("EpochDrainFlag = %#x; want 1<<63", EpochDrainFlag)
	}
	in := EpochNotify{Epoch: 7 | EpochDrainFlag}
	_, p, _, err := ParseFrame(AppendEpochNotify(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeEpochNotify(p)
	if err != nil || out != in {
		t.Fatalf("DecodeEpochNotify = %+v, %v; want %+v", out, err, in)
	}
	if out.Epoch&EpochDrainFlag == 0 || out.Epoch&^EpochDrainFlag != 7 {
		t.Fatalf("drain flag or epoch lost: %#x", out.Epoch)
	}
}

package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Version is the current protocol version, negotiated in the Hello/Welcome
// handshake. A server refuses clients speaking a newer major version.
//
// Version 2 adds the sharded-cluster frames (PeerHello, PriceDigest,
// PriceSnapshot, ExchangeAck) and the server→client EpochNotify push;
// version-1 clients are still accepted and are never sent v2 frames.
//
// Version 3 adds the survivable-control-plane frames: FlowState (flow-state
// replica chunks, also the payload of on-disk snapshots), Heartbeat
// (peer-liveness pings), Takeover (shard-adoption announcements), and the
// EpochDrainFlag bit on EpochNotify (a draining daemon's final warm-failover
// push). Version-2 clients are still accepted and never see the new frames
// or the drain flag.
//
// Version 4 adds the delta-encoded frames (RateDelta, PriceDigestDelta,
// PriceSnapshotDelta — see delta.go) that make wire cost scale with change
// instead of flow/link count, and the optional FlowletSize hint on
// FlowletAdd (a 32-byte payload carrying the flowlet's expected size in
// bytes). Version-3 endpoints are still accepted: they keep receiving fixed
// RateBatch/PriceDigest/PriceSnapshot frames and 24-byte FlowletAdds.
const Version = 4

// Frame layout: a 4-byte header (message type in byte 0, little-endian uint24
// payload length in bytes 1-3) followed by the payload. All integer fields
// are little-endian; rates and weights are IEEE-754 float64 bit patterns.
const (
	// HeaderBytes is the fixed frame-header size.
	HeaderBytes = 4
	// MaxPayload is the largest encodable payload (the uint24 limit).
	MaxPayload = 1<<24 - 1
)

// MsgType identifies the frame type carried in a header.
type MsgType uint8

// Frame types of protocol version 1.
const (
	// TypeInvalid is never sent; it marks the zero value.
	TypeInvalid MsgType = iota
	// TypeHello opens a session (client → server).
	TypeHello
	// TypeWelcome acknowledges a Hello and carries the allocator epoch
	// (server → client).
	TypeWelcome
	// TypeFlowletAdd registers a flowlet (client → server).
	TypeFlowletAdd
	// TypeFlowletEnd retires a flowlet (client → server).
	TypeFlowletEnd
	// TypeStep asks the daemon to run one allocator iteration now
	// (client → server; used by step-driven deterministic runs).
	TypeStep
	// TypeRateBatch carries a batch of rate updates (server → client).
	TypeRateBatch

	// Frame types added in protocol version 2.

	// TypeEpochNotify announces a new allocator epoch mid-session
	// (server → client), so endpoints detect a daemon state reset without
	// waiting for a failed write. Clients react by re-registering their
	// flowlets (AllocClient.Reconnect).
	TypeEpochNotify
	// TypePeerHello opens a shard-to-shard peer session (peer → peer); the
	// accepting daemon replies with a Welcome.
	TypePeerHello
	// TypePriceDigest pushes one shard's local load and Hessian-diagonal
	// contributions on links the receiver owns (peer → peer). The owner
	// folds them into its next price update, so boundary links are priced
	// from cluster-wide demand.
	TypePriceDigest
	// TypePriceSnapshot publishes the sender's current prices for links it
	// owns (peer → peer), epoch-stamped so a restarted shard's stale prices
	// are never folded into a newer generation.
	TypePriceSnapshot
	// TypeExchangeAck acknowledges receipt of an exchange bundle
	// (a PriceDigest + PriceSnapshot pair); step-driven clusters use it as
	// the delivery barrier that keeps runs deterministic.
	TypeExchangeAck

	// Frame types added in protocol version 3.

	// TypeFlowState carries a chunk of a shard's live flowlet registry
	// (peer → peer): each daemon replicates its flow state to its
	// designated successor so a dead shard's rack block can be adopted
	// warm. The same frames are the body of an on-disk drain snapshot.
	TypeFlowState
	// TypeHeartbeat is a peer-liveness ping (peer → peer). Free-running
	// daemons stamp one into every exchange bundle; a peer silent past the
	// heartbeat timeout is treated as dead, like a failed push.
	TypeHeartbeat
	// TypeTakeover announces that the sending daemon has adopted a dead
	// peer's shard (adopter → every surviving peer). Receivers re-target
	// their digests for the orphaned rack block at the adopter and accept
	// its price snapshots for the adopted links.
	TypeTakeover

	// Frame types added in protocol version 4 (see delta.go).

	// TypeRateDelta carries rate updates with varint-delta flow IDs and
	// xor-compressed (or optionally Mbps-quantized) rates (server → client).
	// Semantically equivalent to a RateBatch over the same entries.
	TypeRateDelta
	// TypePriceDigestDelta is a PriceDigest delta-encoded against the
	// previous acked bundle on the same peer connection: only links whose
	// load or Hessian diagonal changed are listed (peer → peer).
	TypePriceDigestDelta
	// TypePriceSnapshotDelta is a PriceSnapshot delta-encoded against the
	// previous acked bundle on the same peer connection: only links whose
	// price changed are listed (peer → peer).
	TypePriceSnapshotDelta
)

// EpochDrainFlag marks an EpochNotify pushed by a draining daemon: its
// allocator is shutting down gracefully and the announced epoch (low bits) is
// the one a restarted daemon will exceed. Clients react by freezing at their
// last-known rates — the paper's own failure fallback — instead of treating
// the connection loss as an error (transport.ErrDaemonDraining).
const EpochDrainFlag uint64 = 1 << 63

// String returns the frame-type name.
func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeWelcome:
		return "welcome"
	case TypeFlowletAdd:
		return "flowlet-add"
	case TypeFlowletEnd:
		return "flowlet-end"
	case TypeStep:
		return "step"
	case TypeRateBatch:
		return "rate-batch"
	case TypeEpochNotify:
		return "epoch-notify"
	case TypePeerHello:
		return "peer-hello"
	case TypePriceDigest:
		return "price-digest"
	case TypePriceSnapshot:
		return "price-snapshot"
	case TypeExchangeAck:
		return "exchange-ack"
	case TypeFlowState:
		return "flow-state"
	case TypeHeartbeat:
		return "heartbeat"
	case TypeTakeover:
		return "takeover"
	case TypeRateDelta:
		return "rate-delta"
	case TypePriceDigestDelta:
		return "price-digest-delta"
	case TypePriceSnapshotDelta:
		return "price-snapshot-delta"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Fixed payload sizes per frame type.
const (
	helloLen     = 10 // version u16 + client id u64
	welcomeLen   = 18 // version u16 + epoch u64 + interval u64
	addLen       = 24 // flow i64 + src i32 + dst i32 + weight f64
	endLen       = 8  // flow i64
	stepLen      = 8  // seq u64
	batchHdrLen  = 12 // seq u64 + count u32
	rateEntryLen = 16 // flow i64 + rate f64

	epochNotifyLen = 8  // epoch u64
	peerHelloLen   = 18 // version u16 + shard u32 + numShards u32 + epoch u64
	digestHdrLen   = 16 // seq u64 + shard u32 + count u32
	digestEntryLen = 20 // link u32 + load f64 + hdiag f64
	snapHdrLen     = 24 // epoch u64 + seq u64 + shard u32 + count u32
	snapEntryLen   = 12 // link u32 + price f64
	ackLen         = 8  // seq u64

	flowStateHdrLen   = 24 // epoch u64 + seq u64 + shard u32 + count u32
	flowStateEntryLen = 24 // flow i64 + src i32 + dst i32 + weight f64
	heartbeatLen      = 12 // seq u64 + shard u32
	takeoverLen       = 24 // epoch u64 + seq u64 + dead u32 + by u32

	addSizedLen = 32 // flow i64 + src i32 + dst i32 + weight f64 + size i64

	// The delta frames (delta.go) lead with a flags byte followed by uvarint
	// header words (seq/shard/epoch are tiny in practice, so the headers
	// shrink to a handful of bytes); these are the worst-case header sizes,
	// used only by the chunking bounds.
	rateDeltaHdrMax   = 11 // flags u8 + seq uvarint (<=10)
	digestDeltaHdrMax = 16 // flags u8 + seq uvarint (<=10) + shard uvarint (<=5)
	snapDeltaHdrMax   = 26 // flags u8 + epoch uvarint (<=10) + seq uvarint (<=10) + shard uvarint (<=5)
)

// Hello opens a session. ClientID is an opaque label the daemon echoes in
// logs; it does not affect allocation.
type Hello struct {
	Version  uint16
	ClientID uint64
}

// Welcome is the server's handshake reply. Epoch identifies the allocator
// generation (it changes when a daemon restarts), letting endpoints detect
// failover and re-register their flowlets. IntervalNanos is the daemon's
// auto-iteration period in nanoseconds, 0 when step-driven.
type Welcome struct {
	Version       uint16
	Epoch         uint64
	IntervalNanos uint64
}

// FlowletAdd registers a flowlet from server Src to server Dst. Size is an
// optional hint of the flowlet's expected size in bytes (0 = unknown); a
// nonzero Size is carried in the 32-byte v4 payload form, which only
// version-4 sessions may send. Solvers ignore the hint today; it is recorded
// in the engine's flow metadata for size-aware utilities.
type FlowletAdd struct {
	Flow     int64
	Src, Dst int32
	Weight   float64
	Size     int64
}

// FlowletEnd retires a flowlet.
type FlowletEnd struct {
	Flow int64
}

// Step asks the daemon to fold in pending flowlet events and run one
// allocator iteration. The daemon replies to the stepping session with a
// RateBatch echoing Seq (empty when no owned rate changed).
type Step struct {
	Seq uint64
}

// RateEntry is one rate update of a RateBatch.
type RateEntry struct {
	Flow int64
	Rate float64
}

// EpochNotify announces a new allocator epoch to a connected client.
type EpochNotify struct {
	Epoch uint64
}

// PeerHello opens a shard-to-shard peer session: the dialing daemon
// identifies its shard index and the cluster size it believes in, so a
// misconfigured cluster (mismatched shard counts) fails at the handshake
// instead of silently exchanging prices for the wrong partition.
type PeerHello struct {
	Version   uint16
	Shard     uint32
	NumShards uint32
	Epoch     uint64
}

// DigestEntry is one link's remote contribution in a PriceDigest: the load
// and Hessian diagonal the sending shard's flows put on a link the receiving
// shard owns.
type DigestEntry struct {
	Link  uint32
	Load  float64
	Hdiag float64
}

// SnapshotEntry is one link's price in a PriceSnapshot.
type SnapshotEntry struct {
	Link  uint32
	Price float64
}

// FlowStateEntry is one live flowlet of a FlowState chunk; the fields mirror
// FlowletAdd so an adopter (or a restarted daemon) can re-admit the flow
// through the ordinary registration path.
type FlowStateEntry struct {
	Flow     int64
	Src, Dst int32
	Weight   float64
}

// Heartbeat is a peer-liveness ping carrying the sender's shard index and
// iteration counter.
type Heartbeat struct {
	Seq   uint64
	Shard uint32
}

// Takeover announces that shard By has adopted dead shard Dead's rack block.
// Epoch is the adopter's allocator epoch and Seq the iteration at which the
// adoption takes effect, so receivers fold it at the same deterministic
// boundary as the rest of the exchange.
type Takeover struct {
	Epoch uint64
	Seq   uint64
	Dead  uint32
	By    uint32
}

// StepReplyFlag marks a RateBatch sent as the synchronous reply to a Step
// frame: its Seq is the Step's Seq with this bit set. Batches fanned out
// asynchronously carry the daemon's iteration counter with the bit clear,
// so a client can always tell a step barrier from background updates.
const StepReplyFlag uint64 = 1 << 63

// ---------------------------------------------------------------------------
// Encoding. Encoders append a complete frame (header + payload) to buf and
// return the extended slice; with a pre-grown buffer they do not allocate.

// appendHeader appends a frame header for a payload of n bytes.
func appendHeader(buf []byte, t MsgType, n int) []byte {
	return append(buf, byte(t), byte(n), byte(n>>8), byte(n>>16))
}

// AppendHello appends an encoded Hello frame.
func AppendHello(buf []byte, m Hello) []byte {
	buf = appendHeader(buf, TypeHello, helloLen)
	buf = binary.LittleEndian.AppendUint16(buf, m.Version)
	return binary.LittleEndian.AppendUint64(buf, m.ClientID)
}

// AppendWelcome appends an encoded Welcome frame.
func AppendWelcome(buf []byte, m Welcome) []byte {
	buf = appendHeader(buf, TypeWelcome, welcomeLen)
	buf = binary.LittleEndian.AppendUint16(buf, m.Version)
	buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
	return binary.LittleEndian.AppendUint64(buf, m.IntervalNanos)
}

// AppendFlowletAdd appends an encoded FlowletAdd frame: the 24-byte v1
// payload when Size is zero, the 32-byte sized v4 form otherwise. Callers
// must clear Size on sessions that negotiated a version below 4.
func AppendFlowletAdd(buf []byte, m FlowletAdd) []byte {
	n := addLen
	if m.Size != 0 {
		n = addSizedLen
	}
	buf = appendHeader(buf, TypeFlowletAdd, n)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Flow))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Src))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Dst))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Weight))
	if m.Size != 0 {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Size))
	}
	return buf
}

// AppendFlowletEnd appends an encoded FlowletEnd frame.
func AppendFlowletEnd(buf []byte, m FlowletEnd) []byte {
	buf = appendHeader(buf, TypeFlowletEnd, endLen)
	return binary.LittleEndian.AppendUint64(buf, uint64(m.Flow))
}

// AppendStep appends an encoded Step frame.
func AppendStep(buf []byte, m Step) []byte {
	buf = appendHeader(buf, TypeStep, stepLen)
	return binary.LittleEndian.AppendUint64(buf, m.Seq)
}

// AppendEpochNotify appends an encoded EpochNotify frame.
func AppendEpochNotify(buf []byte, m EpochNotify) []byte {
	buf = appendHeader(buf, TypeEpochNotify, epochNotifyLen)
	return binary.LittleEndian.AppendUint64(buf, m.Epoch)
}

// AppendPeerHello appends an encoded PeerHello frame.
func AppendPeerHello(buf []byte, m PeerHello) []byte {
	buf = appendHeader(buf, TypePeerHello, peerHelloLen)
	buf = binary.LittleEndian.AppendUint16(buf, m.Version)
	buf = binary.LittleEndian.AppendUint32(buf, m.Shard)
	buf = binary.LittleEndian.AppendUint32(buf, m.NumShards)
	return binary.LittleEndian.AppendUint64(buf, m.Epoch)
}

// MaxDigestEntries is the largest number of entries one PriceDigest frame
// can carry without overflowing the uint24 payload length.
const MaxDigestEntries = (MaxPayload - digestHdrLen) / digestEntryLen

// AppendPriceDigestHeader appends the frame and digest headers of a
// PriceDigest with count entries; the caller then appends exactly count
// entries with AppendDigestEntry. count must not exceed MaxDigestEntries.
func AppendPriceDigestHeader(buf []byte, seq uint64, shard uint32, count int) []byte {
	buf = appendHeader(buf, TypePriceDigest, digestHdrLen+count*digestEntryLen)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, shard)
	return binary.LittleEndian.AppendUint32(buf, uint32(count))
}

// AppendDigestEntry appends one entry of a PriceDigest opened with
// AppendPriceDigestHeader.
func AppendDigestEntry(buf []byte, e DigestEntry) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, e.Link)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Load))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Hdiag))
}

// MaxSnapshotEntries is the largest number of entries one PriceSnapshot
// frame can carry without overflowing the uint24 payload length.
const MaxSnapshotEntries = (MaxPayload - snapHdrLen) / snapEntryLen

// AppendPriceSnapshotHeader appends the frame and snapshot headers of a
// PriceSnapshot with count entries; the caller then appends exactly count
// entries with AppendSnapshotEntry. count must not exceed
// MaxSnapshotEntries.
func AppendPriceSnapshotHeader(buf []byte, epoch, seq uint64, shard uint32, count int) []byte {
	buf = appendHeader(buf, TypePriceSnapshot, snapHdrLen+count*snapEntryLen)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, shard)
	return binary.LittleEndian.AppendUint32(buf, uint32(count))
}

// AppendSnapshotEntry appends one entry of a PriceSnapshot opened with
// AppendPriceSnapshotHeader.
func AppendSnapshotEntry(buf []byte, e SnapshotEntry) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, e.Link)
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Price))
}

// MaxFlowStateEntries is the largest number of entries one FlowState frame
// can carry without overflowing the uint24 payload length.
const MaxFlowStateEntries = (MaxPayload - flowStateHdrLen) / flowStateEntryLen

// AppendFlowStateHeader appends the frame and chunk headers of a FlowState
// with count entries; the caller then appends exactly count entries with
// AppendFlowStateEntry. count must not exceed MaxFlowStateEntries.
func AppendFlowStateHeader(buf []byte, epoch, seq uint64, shard uint32, count int) []byte {
	buf = appendHeader(buf, TypeFlowState, flowStateHdrLen+count*flowStateEntryLen)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, shard)
	return binary.LittleEndian.AppendUint32(buf, uint32(count))
}

// AppendFlowStateEntry appends one entry of a FlowState opened with
// AppendFlowStateHeader.
func AppendFlowStateEntry(buf []byte, e FlowStateEntry) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Flow))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Src))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Dst))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Weight))
}

// AppendHeartbeat appends an encoded Heartbeat frame.
func AppendHeartbeat(buf []byte, m Heartbeat) []byte {
	buf = appendHeader(buf, TypeHeartbeat, heartbeatLen)
	buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
	return binary.LittleEndian.AppendUint32(buf, m.Shard)
}

// AppendTakeover appends an encoded Takeover frame.
func AppendTakeover(buf []byte, m Takeover) []byte {
	buf = appendHeader(buf, TypeTakeover, takeoverLen)
	buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, m.Dead)
	return binary.LittleEndian.AppendUint32(buf, m.By)
}

// AppendExchangeAck appends an encoded ExchangeAck frame.
func AppendExchangeAck(buf []byte, seq uint64) []byte {
	buf = appendHeader(buf, TypeExchangeAck, ackLen)
	return binary.LittleEndian.AppendUint64(buf, seq)
}

// MaxBatchEntries is the largest number of entries one RateBatch frame can
// carry without overflowing the uint24 payload length.
const MaxBatchEntries = (MaxPayload - batchHdrLen) / rateEntryLen

// AppendRateBatchHeader appends the frame header and batch header of a
// RateBatch with count entries; the caller then appends exactly count entries
// with AppendRateEntry. count must not exceed MaxBatchEntries.
func AppendRateBatchHeader(buf []byte, seq uint64, count int) []byte {
	buf = appendHeader(buf, TypeRateBatch, batchHdrLen+count*rateEntryLen)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	return binary.LittleEndian.AppendUint32(buf, uint32(count))
}

// AppendRateEntry appends one entry of a RateBatch opened with
// AppendRateBatchHeader.
func AppendRateEntry(buf []byte, e RateEntry) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Flow))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Rate))
}

// AppendRateBatch appends a complete RateBatch frame.
func AppendRateBatch(buf []byte, seq uint64, entries []RateEntry) []byte {
	buf = AppendRateBatchHeader(buf, seq, len(entries))
	for _, e := range entries {
		buf = AppendRateEntry(buf, e)
	}
	return buf
}

// ---------------------------------------------------------------------------
// Decoding. Decoders take the payload of one frame (as delivered by
// ParseFrame or Scanner.Next) and validate its exact length.

// payloadErr reports a payload of the wrong size.
func payloadErr(t MsgType, want, got int) error {
	return fmt.Errorf("wire: %s payload must be %d bytes, got %d", t, want, got)
}

// DecodeHello decodes a Hello payload.
func DecodeHello(p []byte) (Hello, error) {
	if len(p) != helloLen {
		return Hello{}, payloadErr(TypeHello, helloLen, len(p))
	}
	return Hello{
		Version:  binary.LittleEndian.Uint16(p),
		ClientID: binary.LittleEndian.Uint64(p[2:]),
	}, nil
}

// DecodeWelcome decodes a Welcome payload.
func DecodeWelcome(p []byte) (Welcome, error) {
	if len(p) != welcomeLen {
		return Welcome{}, payloadErr(TypeWelcome, welcomeLen, len(p))
	}
	return Welcome{
		Version:       binary.LittleEndian.Uint16(p),
		Epoch:         binary.LittleEndian.Uint64(p[2:]),
		IntervalNanos: binary.LittleEndian.Uint64(p[10:]),
	}, nil
}

// DecodeFlowletAdd decodes a FlowletAdd payload, accepting both the 24-byte
// v1 form and the 32-byte sized v4 form. The sized form must carry a
// positive size: zero means "no hint" and is only ever sent as the short
// form, so both forms re-encode canonically.
func DecodeFlowletAdd(p []byte) (FlowletAdd, error) {
	if len(p) != addLen && len(p) != addSizedLen {
		return FlowletAdd{}, fmt.Errorf("wire: %s payload must be %d or %d bytes, got %d", TypeFlowletAdd, addLen, addSizedLen, len(p))
	}
	m := FlowletAdd{
		Flow:   int64(binary.LittleEndian.Uint64(p)),
		Src:    int32(binary.LittleEndian.Uint32(p[8:])),
		Dst:    int32(binary.LittleEndian.Uint32(p[12:])),
		Weight: math.Float64frombits(binary.LittleEndian.Uint64(p[16:])),
	}
	if len(p) == addSizedLen {
		m.Size = int64(binary.LittleEndian.Uint64(p[24:]))
		if m.Size <= 0 {
			return FlowletAdd{}, fmt.Errorf("wire: sized flowlet-add must carry a positive size, got %d", m.Size)
		}
	}
	return m, nil
}

// DecodeFlowletEnd decodes a FlowletEnd payload.
func DecodeFlowletEnd(p []byte) (FlowletEnd, error) {
	if len(p) != endLen {
		return FlowletEnd{}, payloadErr(TypeFlowletEnd, endLen, len(p))
	}
	return FlowletEnd{Flow: int64(binary.LittleEndian.Uint64(p))}, nil
}

// DecodeStep decodes a Step payload.
func DecodeStep(p []byte) (Step, error) {
	if len(p) != stepLen {
		return Step{}, payloadErr(TypeStep, stepLen, len(p))
	}
	return Step{Seq: binary.LittleEndian.Uint64(p)}, nil
}

// RateBatch is a decoded rate-update batch. It aliases the frame payload, so
// it is only valid until the underlying buffer is reused; Entry decodes
// in place without allocating.
type RateBatch struct {
	// Seq is the allocator iteration sequence number of the batch.
	Seq     uint64
	entries []byte
}

// DecodeRateBatch decodes a RateBatch payload.
func DecodeRateBatch(p []byte) (RateBatch, error) {
	if len(p) < batchHdrLen {
		return RateBatch{}, fmt.Errorf("wire: rate-batch payload must be at least %d bytes, got %d", batchHdrLen, len(p))
	}
	count := binary.LittleEndian.Uint32(p[8:])
	if want := batchHdrLen + int(count)*rateEntryLen; len(p) != want {
		return RateBatch{}, fmt.Errorf("wire: rate-batch declares %d entries (%d bytes), got %d bytes", count, want, len(p))
	}
	return RateBatch{Seq: binary.LittleEndian.Uint64(p), entries: p[batchHdrLen:]}, nil
}

// Len returns the number of entries in the batch.
func (b RateBatch) Len() int { return len(b.entries) / rateEntryLen }

// Entry decodes entry i.
func (b RateBatch) Entry(i int) RateEntry {
	p := b.entries[i*rateEntryLen:]
	return RateEntry{
		Flow: int64(binary.LittleEndian.Uint64(p)),
		Rate: math.Float64frombits(binary.LittleEndian.Uint64(p[8:])),
	}
}

// DecodeEpochNotify decodes an EpochNotify payload.
func DecodeEpochNotify(p []byte) (EpochNotify, error) {
	if len(p) != epochNotifyLen {
		return EpochNotify{}, payloadErr(TypeEpochNotify, epochNotifyLen, len(p))
	}
	return EpochNotify{Epoch: binary.LittleEndian.Uint64(p)}, nil
}

// DecodePeerHello decodes a PeerHello payload.
func DecodePeerHello(p []byte) (PeerHello, error) {
	if len(p) != peerHelloLen {
		return PeerHello{}, payloadErr(TypePeerHello, peerHelloLen, len(p))
	}
	return PeerHello{
		Version:   binary.LittleEndian.Uint16(p),
		Shard:     binary.LittleEndian.Uint32(p[2:]),
		NumShards: binary.LittleEndian.Uint32(p[6:]),
		Epoch:     binary.LittleEndian.Uint64(p[10:]),
	}, nil
}

// PriceDigest is a decoded boundary-load digest. Like RateBatch it aliases
// the frame payload: it is only valid until the underlying buffer is reused,
// and Entry decodes in place without allocating.
type PriceDigest struct {
	// Seq is the sender's iteration counter when the digest was taken.
	Seq uint64
	// Shard is the sending shard's index.
	Shard   uint32
	entries []byte
}

// DecodePriceDigest decodes a PriceDigest payload.
func DecodePriceDigest(p []byte) (PriceDigest, error) {
	if len(p) < digestHdrLen {
		return PriceDigest{}, fmt.Errorf("wire: price-digest payload must be at least %d bytes, got %d", digestHdrLen, len(p))
	}
	count := binary.LittleEndian.Uint32(p[12:])
	if want := digestHdrLen + int(count)*digestEntryLen; len(p) != want {
		return PriceDigest{}, fmt.Errorf("wire: price-digest declares %d entries (%d bytes), got %d bytes", count, want, len(p))
	}
	return PriceDigest{
		Seq:     binary.LittleEndian.Uint64(p),
		Shard:   binary.LittleEndian.Uint32(p[8:]),
		entries: p[digestHdrLen:],
	}, nil
}

// Len returns the number of entries in the digest.
func (d PriceDigest) Len() int { return len(d.entries) / digestEntryLen }

// Entry decodes entry i.
func (d PriceDigest) Entry(i int) DigestEntry {
	p := d.entries[i*digestEntryLen:]
	return DigestEntry{
		Link:  binary.LittleEndian.Uint32(p),
		Load:  math.Float64frombits(binary.LittleEndian.Uint64(p[4:])),
		Hdiag: math.Float64frombits(binary.LittleEndian.Uint64(p[12:])),
	}
}

// PriceSnapshot is a decoded boundary-price snapshot. It aliases the frame
// payload like PriceDigest.
type PriceSnapshot struct {
	// Epoch is the sender's allocator epoch; receivers drop snapshots from
	// an epoch older than the one the peer session advertised.
	Epoch uint64
	// Seq is the sender's iteration counter when the snapshot was taken.
	Seq uint64
	// Shard is the sending shard's index.
	Shard   uint32
	entries []byte
}

// DecodePriceSnapshot decodes a PriceSnapshot payload.
func DecodePriceSnapshot(p []byte) (PriceSnapshot, error) {
	if len(p) < snapHdrLen {
		return PriceSnapshot{}, fmt.Errorf("wire: price-snapshot payload must be at least %d bytes, got %d", snapHdrLen, len(p))
	}
	count := binary.LittleEndian.Uint32(p[20:])
	if want := snapHdrLen + int(count)*snapEntryLen; len(p) != want {
		return PriceSnapshot{}, fmt.Errorf("wire: price-snapshot declares %d entries (%d bytes), got %d bytes", count, want, len(p))
	}
	return PriceSnapshot{
		Epoch:   binary.LittleEndian.Uint64(p),
		Seq:     binary.LittleEndian.Uint64(p[8:]),
		Shard:   binary.LittleEndian.Uint32(p[16:]),
		entries: p[snapHdrLen:],
	}, nil
}

// Len returns the number of entries in the snapshot.
func (s PriceSnapshot) Len() int { return len(s.entries) / snapEntryLen }

// Entry decodes entry i.
func (s PriceSnapshot) Entry(i int) SnapshotEntry {
	p := s.entries[i*snapEntryLen:]
	return SnapshotEntry{
		Link:  binary.LittleEndian.Uint32(p),
		Price: math.Float64frombits(binary.LittleEndian.Uint64(p[4:])),
	}
}

// FlowState is a decoded flow-state chunk. It aliases the frame payload like
// PriceDigest.
type FlowState struct {
	// Epoch is the sender's allocator epoch; stale-epoch chunks are dropped
	// like stale price snapshots.
	Epoch uint64
	// Seq is the sender's iteration counter when the chunk was taken.
	Seq uint64
	// Shard is the shard whose flows the chunk carries.
	Shard   uint32
	entries []byte
}

// DecodeFlowState decodes a FlowState payload.
func DecodeFlowState(p []byte) (FlowState, error) {
	if len(p) < flowStateHdrLen {
		return FlowState{}, fmt.Errorf("wire: flow-state payload must be at least %d bytes, got %d", flowStateHdrLen, len(p))
	}
	count := binary.LittleEndian.Uint32(p[20:])
	if want := flowStateHdrLen + int(count)*flowStateEntryLen; len(p) != want {
		return FlowState{}, fmt.Errorf("wire: flow-state declares %d entries (%d bytes), got %d bytes", count, want, len(p))
	}
	return FlowState{
		Epoch:   binary.LittleEndian.Uint64(p),
		Seq:     binary.LittleEndian.Uint64(p[8:]),
		Shard:   binary.LittleEndian.Uint32(p[16:]),
		entries: p[flowStateHdrLen:],
	}, nil
}

// Len returns the number of entries in the chunk.
func (f FlowState) Len() int { return len(f.entries) / flowStateEntryLen }

// Entry decodes entry i.
func (f FlowState) Entry(i int) FlowStateEntry {
	p := f.entries[i*flowStateEntryLen:]
	return FlowStateEntry{
		Flow:   int64(binary.LittleEndian.Uint64(p)),
		Src:    int32(binary.LittleEndian.Uint32(p[8:])),
		Dst:    int32(binary.LittleEndian.Uint32(p[12:])),
		Weight: math.Float64frombits(binary.LittleEndian.Uint64(p[16:])),
	}
}

// DecodeHeartbeat decodes a Heartbeat payload.
func DecodeHeartbeat(p []byte) (Heartbeat, error) {
	if len(p) != heartbeatLen {
		return Heartbeat{}, payloadErr(TypeHeartbeat, heartbeatLen, len(p))
	}
	return Heartbeat{
		Seq:   binary.LittleEndian.Uint64(p),
		Shard: binary.LittleEndian.Uint32(p[8:]),
	}, nil
}

// DecodeTakeover decodes a Takeover payload.
func DecodeTakeover(p []byte) (Takeover, error) {
	if len(p) != takeoverLen {
		return Takeover{}, payloadErr(TypeTakeover, takeoverLen, len(p))
	}
	return Takeover{
		Epoch: binary.LittleEndian.Uint64(p),
		Seq:   binary.LittleEndian.Uint64(p[8:]),
		Dead:  binary.LittleEndian.Uint32(p[16:]),
		By:    binary.LittleEndian.Uint32(p[20:]),
	}, nil
}

// DecodeExchangeAck decodes an ExchangeAck payload and returns the echoed
// sequence number.
func DecodeExchangeAck(p []byte) (uint64, error) {
	if len(p) != ackLen {
		return 0, payloadErr(TypeExchangeAck, ackLen, len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// ---------------------------------------------------------------------------
// Framing.

// ErrShortFrame reports that a buffer ends mid-frame.
var ErrShortFrame = fmt.Errorf("wire: short frame")

// maxMsgType is the highest frame type of this protocol version.
const maxMsgType = TypePriceSnapshotDelta

// ParseFrame splits one frame off the front of buf. It returns the frame
// type, its payload (aliasing buf), and the remaining bytes. A buffer ending
// mid-frame returns ErrShortFrame; an unknown frame type is an error.
func ParseFrame(buf []byte) (t MsgType, payload, rest []byte, err error) {
	if len(buf) < HeaderBytes {
		return TypeInvalid, nil, buf, ErrShortFrame
	}
	t = MsgType(buf[0])
	if t == TypeInvalid || t > maxMsgType {
		return TypeInvalid, nil, buf, fmt.Errorf("wire: unknown frame type %d", buf[0])
	}
	n := int(buf[1]) | int(buf[2])<<8 | int(buf[3])<<16
	if len(buf) < HeaderBytes+n {
		return TypeInvalid, nil, buf, ErrShortFrame
	}
	return t, buf[HeaderBytes : HeaderBytes+n], buf[HeaderBytes+n:], nil
}

// Scanner reads frames from a byte stream, reusing one internal buffer. The
// payload returned by Next is valid only until the following Next call.
//
// A Next call interrupted mid-frame by a transient read error (typically a
// net.Conn read deadline) keeps the partial frame buffered: the next call
// resumes where the read stopped instead of desynchronizing the stream, so
// polling a connection with deadlines is safe.
type Scanner struct {
	r       io.Reader
	hdr     [HeaderBytes]byte
	hdrHave int
	buf     []byte
	payHave int
	inPay   bool
}

// NewScanner creates a frame scanner over r.
func NewScanner(r io.Reader) *Scanner { return &Scanner{r: r} }

// Next reads the next frame. It returns io.EOF at a clean end of stream and
// io.ErrUnexpectedEOF when the stream ends mid-frame; any other error leaves
// the partial frame buffered for the next call.
func (s *Scanner) Next() (MsgType, []byte, error) {
	for s.hdrHave < HeaderBytes {
		n, err := s.r.Read(s.hdr[s.hdrHave:])
		s.hdrHave += n
		if s.hdrHave >= HeaderBytes {
			break
		}
		if err != nil {
			if err == io.EOF && s.hdrHave > 0 {
				err = io.ErrUnexpectedEOF
			}
			return TypeInvalid, nil, err
		}
	}
	t := MsgType(s.hdr[0])
	if t == TypeInvalid || t > maxMsgType {
		return TypeInvalid, nil, fmt.Errorf("wire: unknown frame type %d", s.hdr[0])
	}
	want := int(s.hdr[1]) | int(s.hdr[2])<<8 | int(s.hdr[3])<<16
	if !s.inPay {
		if cap(s.buf) < want {
			s.buf = make([]byte, want)
		}
		s.buf = s.buf[:want]
		s.payHave = 0
		s.inPay = true
	}
	for s.payHave < want {
		n, err := s.r.Read(s.buf[s.payHave:])
		s.payHave += n
		if s.payHave >= want {
			break
		}
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return TypeInvalid, nil, err
		}
	}
	s.hdrHave = 0
	s.inPay = false
	return t, s.buf, nil
}

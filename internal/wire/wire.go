package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Version is the current protocol version, negotiated in the Hello/Welcome
// handshake. A server refuses clients speaking a newer major version.
const Version = 1

// Frame layout: a 4-byte header (message type in byte 0, little-endian uint24
// payload length in bytes 1-3) followed by the payload. All integer fields
// are little-endian; rates and weights are IEEE-754 float64 bit patterns.
const (
	// HeaderBytes is the fixed frame-header size.
	HeaderBytes = 4
	// MaxPayload is the largest encodable payload (the uint24 limit).
	MaxPayload = 1<<24 - 1
)

// MsgType identifies the frame type carried in a header.
type MsgType uint8

// Frame types of protocol version 1.
const (
	// TypeInvalid is never sent; it marks the zero value.
	TypeInvalid MsgType = iota
	// TypeHello opens a session (client → server).
	TypeHello
	// TypeWelcome acknowledges a Hello and carries the allocator epoch
	// (server → client).
	TypeWelcome
	// TypeFlowletAdd registers a flowlet (client → server).
	TypeFlowletAdd
	// TypeFlowletEnd retires a flowlet (client → server).
	TypeFlowletEnd
	// TypeStep asks the daemon to run one allocator iteration now
	// (client → server; used by step-driven deterministic runs).
	TypeStep
	// TypeRateBatch carries a batch of rate updates (server → client).
	TypeRateBatch
)

// String returns the frame-type name.
func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeWelcome:
		return "welcome"
	case TypeFlowletAdd:
		return "flowlet-add"
	case TypeFlowletEnd:
		return "flowlet-end"
	case TypeStep:
		return "step"
	case TypeRateBatch:
		return "rate-batch"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Fixed payload sizes per frame type.
const (
	helloLen     = 10 // version u16 + client id u64
	welcomeLen   = 18 // version u16 + epoch u64 + interval u64
	addLen       = 24 // flow i64 + src i32 + dst i32 + weight f64
	endLen       = 8  // flow i64
	stepLen      = 8  // seq u64
	batchHdrLen  = 12 // seq u64 + count u32
	rateEntryLen = 16 // flow i64 + rate f64
)

// Hello opens a session. ClientID is an opaque label the daemon echoes in
// logs; it does not affect allocation.
type Hello struct {
	Version  uint16
	ClientID uint64
}

// Welcome is the server's handshake reply. Epoch identifies the allocator
// generation (it changes when a daemon restarts), letting endpoints detect
// failover and re-register their flowlets. IntervalNanos is the daemon's
// auto-iteration period in nanoseconds, 0 when step-driven.
type Welcome struct {
	Version       uint16
	Epoch         uint64
	IntervalNanos uint64
}

// FlowletAdd registers a flowlet from server Src to server Dst.
type FlowletAdd struct {
	Flow     int64
	Src, Dst int32
	Weight   float64
}

// FlowletEnd retires a flowlet.
type FlowletEnd struct {
	Flow int64
}

// Step asks the daemon to fold in pending flowlet events and run one
// allocator iteration. The daemon replies to the stepping session with a
// RateBatch echoing Seq (empty when no owned rate changed).
type Step struct {
	Seq uint64
}

// RateEntry is one rate update of a RateBatch.
type RateEntry struct {
	Flow int64
	Rate float64
}

// StepReplyFlag marks a RateBatch sent as the synchronous reply to a Step
// frame: its Seq is the Step's Seq with this bit set. Batches fanned out
// asynchronously carry the daemon's iteration counter with the bit clear,
// so a client can always tell a step barrier from background updates.
const StepReplyFlag uint64 = 1 << 63

// ---------------------------------------------------------------------------
// Encoding. Encoders append a complete frame (header + payload) to buf and
// return the extended slice; with a pre-grown buffer they do not allocate.

// appendHeader appends a frame header for a payload of n bytes.
func appendHeader(buf []byte, t MsgType, n int) []byte {
	return append(buf, byte(t), byte(n), byte(n>>8), byte(n>>16))
}

// AppendHello appends an encoded Hello frame.
func AppendHello(buf []byte, m Hello) []byte {
	buf = appendHeader(buf, TypeHello, helloLen)
	buf = binary.LittleEndian.AppendUint16(buf, m.Version)
	return binary.LittleEndian.AppendUint64(buf, m.ClientID)
}

// AppendWelcome appends an encoded Welcome frame.
func AppendWelcome(buf []byte, m Welcome) []byte {
	buf = appendHeader(buf, TypeWelcome, welcomeLen)
	buf = binary.LittleEndian.AppendUint16(buf, m.Version)
	buf = binary.LittleEndian.AppendUint64(buf, m.Epoch)
	return binary.LittleEndian.AppendUint64(buf, m.IntervalNanos)
}

// AppendFlowletAdd appends an encoded FlowletAdd frame.
func AppendFlowletAdd(buf []byte, m FlowletAdd) []byte {
	buf = appendHeader(buf, TypeFlowletAdd, addLen)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Flow))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Src))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Dst))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Weight))
}

// AppendFlowletEnd appends an encoded FlowletEnd frame.
func AppendFlowletEnd(buf []byte, m FlowletEnd) []byte {
	buf = appendHeader(buf, TypeFlowletEnd, endLen)
	return binary.LittleEndian.AppendUint64(buf, uint64(m.Flow))
}

// AppendStep appends an encoded Step frame.
func AppendStep(buf []byte, m Step) []byte {
	buf = appendHeader(buf, TypeStep, stepLen)
	return binary.LittleEndian.AppendUint64(buf, m.Seq)
}

// MaxBatchEntries is the largest number of entries one RateBatch frame can
// carry without overflowing the uint24 payload length.
const MaxBatchEntries = (MaxPayload - batchHdrLen) / rateEntryLen

// AppendRateBatchHeader appends the frame header and batch header of a
// RateBatch with count entries; the caller then appends exactly count entries
// with AppendRateEntry. count must not exceed MaxBatchEntries.
func AppendRateBatchHeader(buf []byte, seq uint64, count int) []byte {
	buf = appendHeader(buf, TypeRateBatch, batchHdrLen+count*rateEntryLen)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	return binary.LittleEndian.AppendUint32(buf, uint32(count))
}

// AppendRateEntry appends one entry of a RateBatch opened with
// AppendRateBatchHeader.
func AppendRateEntry(buf []byte, e RateEntry) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Flow))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Rate))
}

// AppendRateBatch appends a complete RateBatch frame.
func AppendRateBatch(buf []byte, seq uint64, entries []RateEntry) []byte {
	buf = AppendRateBatchHeader(buf, seq, len(entries))
	for _, e := range entries {
		buf = AppendRateEntry(buf, e)
	}
	return buf
}

// ---------------------------------------------------------------------------
// Decoding. Decoders take the payload of one frame (as delivered by
// ParseFrame or Scanner.Next) and validate its exact length.

// payloadErr reports a payload of the wrong size.
func payloadErr(t MsgType, want, got int) error {
	return fmt.Errorf("wire: %s payload must be %d bytes, got %d", t, want, got)
}

// DecodeHello decodes a Hello payload.
func DecodeHello(p []byte) (Hello, error) {
	if len(p) != helloLen {
		return Hello{}, payloadErr(TypeHello, helloLen, len(p))
	}
	return Hello{
		Version:  binary.LittleEndian.Uint16(p),
		ClientID: binary.LittleEndian.Uint64(p[2:]),
	}, nil
}

// DecodeWelcome decodes a Welcome payload.
func DecodeWelcome(p []byte) (Welcome, error) {
	if len(p) != welcomeLen {
		return Welcome{}, payloadErr(TypeWelcome, welcomeLen, len(p))
	}
	return Welcome{
		Version:       binary.LittleEndian.Uint16(p),
		Epoch:         binary.LittleEndian.Uint64(p[2:]),
		IntervalNanos: binary.LittleEndian.Uint64(p[10:]),
	}, nil
}

// DecodeFlowletAdd decodes a FlowletAdd payload.
func DecodeFlowletAdd(p []byte) (FlowletAdd, error) {
	if len(p) != addLen {
		return FlowletAdd{}, payloadErr(TypeFlowletAdd, addLen, len(p))
	}
	return FlowletAdd{
		Flow:   int64(binary.LittleEndian.Uint64(p)),
		Src:    int32(binary.LittleEndian.Uint32(p[8:])),
		Dst:    int32(binary.LittleEndian.Uint32(p[12:])),
		Weight: math.Float64frombits(binary.LittleEndian.Uint64(p[16:])),
	}, nil
}

// DecodeFlowletEnd decodes a FlowletEnd payload.
func DecodeFlowletEnd(p []byte) (FlowletEnd, error) {
	if len(p) != endLen {
		return FlowletEnd{}, payloadErr(TypeFlowletEnd, endLen, len(p))
	}
	return FlowletEnd{Flow: int64(binary.LittleEndian.Uint64(p))}, nil
}

// DecodeStep decodes a Step payload.
func DecodeStep(p []byte) (Step, error) {
	if len(p) != stepLen {
		return Step{}, payloadErr(TypeStep, stepLen, len(p))
	}
	return Step{Seq: binary.LittleEndian.Uint64(p)}, nil
}

// RateBatch is a decoded rate-update batch. It aliases the frame payload, so
// it is only valid until the underlying buffer is reused; Entry decodes
// in place without allocating.
type RateBatch struct {
	// Seq is the allocator iteration sequence number of the batch.
	Seq     uint64
	entries []byte
}

// DecodeRateBatch decodes a RateBatch payload.
func DecodeRateBatch(p []byte) (RateBatch, error) {
	if len(p) < batchHdrLen {
		return RateBatch{}, fmt.Errorf("wire: rate-batch payload must be at least %d bytes, got %d", batchHdrLen, len(p))
	}
	count := binary.LittleEndian.Uint32(p[8:])
	if want := batchHdrLen + int(count)*rateEntryLen; len(p) != want {
		return RateBatch{}, fmt.Errorf("wire: rate-batch declares %d entries (%d bytes), got %d bytes", count, want, len(p))
	}
	return RateBatch{Seq: binary.LittleEndian.Uint64(p), entries: p[batchHdrLen:]}, nil
}

// Len returns the number of entries in the batch.
func (b RateBatch) Len() int { return len(b.entries) / rateEntryLen }

// Entry decodes entry i.
func (b RateBatch) Entry(i int) RateEntry {
	p := b.entries[i*rateEntryLen:]
	return RateEntry{
		Flow: int64(binary.LittleEndian.Uint64(p)),
		Rate: math.Float64frombits(binary.LittleEndian.Uint64(p[8:])),
	}
}

// ---------------------------------------------------------------------------
// Framing.

// ErrShortFrame reports that a buffer ends mid-frame.
var ErrShortFrame = fmt.Errorf("wire: short frame")

// validTypes is the highest frame type of this protocol version.
const maxMsgType = TypeRateBatch

// ParseFrame splits one frame off the front of buf. It returns the frame
// type, its payload (aliasing buf), and the remaining bytes. A buffer ending
// mid-frame returns ErrShortFrame; an unknown frame type is an error.
func ParseFrame(buf []byte) (t MsgType, payload, rest []byte, err error) {
	if len(buf) < HeaderBytes {
		return TypeInvalid, nil, buf, ErrShortFrame
	}
	t = MsgType(buf[0])
	if t == TypeInvalid || t > maxMsgType {
		return TypeInvalid, nil, buf, fmt.Errorf("wire: unknown frame type %d", buf[0])
	}
	n := int(buf[1]) | int(buf[2])<<8 | int(buf[3])<<16
	if len(buf) < HeaderBytes+n {
		return TypeInvalid, nil, buf, ErrShortFrame
	}
	return t, buf[HeaderBytes : HeaderBytes+n], buf[HeaderBytes+n:], nil
}

// Scanner reads frames from a byte stream, reusing one internal buffer. The
// payload returned by Next is valid only until the following Next call.
//
// A Next call interrupted mid-frame by a transient read error (typically a
// net.Conn read deadline) keeps the partial frame buffered: the next call
// resumes where the read stopped instead of desynchronizing the stream, so
// polling a connection with deadlines is safe.
type Scanner struct {
	r       io.Reader
	hdr     [HeaderBytes]byte
	hdrHave int
	buf     []byte
	payHave int
	inPay   bool
}

// NewScanner creates a frame scanner over r.
func NewScanner(r io.Reader) *Scanner { return &Scanner{r: r} }

// Next reads the next frame. It returns io.EOF at a clean end of stream and
// io.ErrUnexpectedEOF when the stream ends mid-frame; any other error leaves
// the partial frame buffered for the next call.
func (s *Scanner) Next() (MsgType, []byte, error) {
	for s.hdrHave < HeaderBytes {
		n, err := s.r.Read(s.hdr[s.hdrHave:])
		s.hdrHave += n
		if s.hdrHave >= HeaderBytes {
			break
		}
		if err != nil {
			if err == io.EOF && s.hdrHave > 0 {
				err = io.ErrUnexpectedEOF
			}
			return TypeInvalid, nil, err
		}
	}
	t := MsgType(s.hdr[0])
	if t == TypeInvalid || t > maxMsgType {
		return TypeInvalid, nil, fmt.Errorf("wire: unknown frame type %d", s.hdr[0])
	}
	want := int(s.hdr[1]) | int(s.hdr[2])<<8 | int(s.hdr[3])<<16
	if !s.inPay {
		if cap(s.buf) < want {
			s.buf = make([]byte, want)
		}
		s.buf = s.buf[:want]
		s.payHave = 0
		s.inPay = true
	}
	for s.payHave < want {
		n, err := s.r.Read(s.buf[s.payHave:])
		s.payHave += n
		if s.payHave >= want {
			break
		}
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return TypeInvalid, nil, err
		}
	}
	s.hdrHave = 0
	s.inPay = false
	return t, s.buf, nil
}

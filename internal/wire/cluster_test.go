package wire

import (
	"math"
	"testing"
)

func TestEpochNotifyRoundTrip(t *testing.T) {
	in := EpochNotify{Epoch: 1 << 40}
	typ, p, rest, err := ParseFrame(AppendEpochNotify(nil, in))
	if err != nil || typ != TypeEpochNotify || len(rest) != 0 {
		t.Fatalf("ParseFrame = %v, rest %d, err %v", typ, len(rest), err)
	}
	out, err := DecodeEpochNotify(p)
	if err != nil || out != in {
		t.Fatalf("DecodeEpochNotify = %+v, %v; want %+v", out, err, in)
	}
	if _, err := DecodeEpochNotify(p[:4]); err == nil {
		t.Fatal("short epoch-notify payload must be rejected")
	}
}

func TestPeerHelloRoundTrip(t *testing.T) {
	in := PeerHello{Version: Version, Shard: 3, NumShards: 8, Epoch: 11}
	typ, p, _, err := ParseFrame(AppendPeerHello(nil, in))
	if err != nil || typ != TypePeerHello {
		t.Fatalf("ParseFrame = %v, err %v", typ, err)
	}
	out, err := DecodePeerHello(p)
	if err != nil || out != in {
		t.Fatalf("DecodePeerHello = %+v, %v; want %+v", out, err, in)
	}
	if _, err := DecodePeerHello(p[:peerHelloLen-1]); err == nil {
		t.Fatal("short peer-hello payload must be rejected")
	}
}

func TestPriceDigestRoundTrip(t *testing.T) {
	entries := []DigestEntry{
		{Link: 0, Load: 5e9, Hdiag: -2.5e-3},
		{Link: 41, Load: 0, Hdiag: 0},
		{Link: 1 << 20, Load: math.Inf(1), Hdiag: math.Inf(-1)},
	}
	buf := AppendPriceDigestHeader(nil, 9, 2, len(entries))
	for _, e := range entries {
		buf = AppendDigestEntry(buf, e)
	}
	typ, p, rest, err := ParseFrame(buf)
	if err != nil || typ != TypePriceDigest || len(rest) != 0 {
		t.Fatalf("ParseFrame = %v, rest %d, err %v", typ, len(rest), err)
	}
	d, err := DecodePriceDigest(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.Seq != 9 || d.Shard != 2 || d.Len() != len(entries) {
		t.Fatalf("digest header = seq %d shard %d len %d", d.Seq, d.Shard, d.Len())
	}
	for i, want := range entries {
		if got := d.Entry(i); got != want {
			t.Fatalf("entry %d = %+v, want %+v", i, got, want)
		}
	}
	// Truncated and over-declared payloads are rejected.
	if _, err := DecodePriceDigest(p[:len(p)-1]); err == nil {
		t.Fatal("truncated digest must be rejected")
	}
	if _, err := DecodePriceDigest(p[:digestHdrLen-1]); err == nil {
		t.Fatal("header-less digest must be rejected")
	}
}

func TestPriceSnapshotRoundTrip(t *testing.T) {
	entries := []SnapshotEntry{
		{Link: 7, Price: 1},
		{Link: 8, Price: 0},
		{Link: 9, Price: 123.456},
	}
	buf := AppendPriceSnapshotHeader(nil, 5, 17, 1, len(entries))
	for _, e := range entries {
		buf = AppendSnapshotEntry(buf, e)
	}
	typ, p, _, err := ParseFrame(buf)
	if err != nil || typ != TypePriceSnapshot {
		t.Fatalf("ParseFrame = %v, err %v", typ, err)
	}
	s, err := DecodePriceSnapshot(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Epoch != 5 || s.Seq != 17 || s.Shard != 1 || s.Len() != len(entries) {
		t.Fatalf("snapshot header = epoch %d seq %d shard %d len %d", s.Epoch, s.Seq, s.Shard, s.Len())
	}
	for i, want := range entries {
		if got := s.Entry(i); got != want {
			t.Fatalf("entry %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := DecodePriceSnapshot(p[:len(p)-1]); err == nil {
		t.Fatal("truncated snapshot must be rejected")
	}
}

func TestExchangeAckRoundTrip(t *testing.T) {
	typ, p, _, err := ParseFrame(AppendExchangeAck(nil, 77))
	if err != nil || typ != TypeExchangeAck {
		t.Fatalf("ParseFrame = %v, err %v", typ, err)
	}
	seq, err := DecodeExchangeAck(p)
	if err != nil || seq != 77 {
		t.Fatalf("DecodeExchangeAck = %d, %v", seq, err)
	}
	if _, err := DecodeExchangeAck(p[:3]); err == nil {
		t.Fatal("short ack must be rejected")
	}
}

package wire

import (
	"bytes"
	"io"
	"math"
	"testing"
)

func TestHelloRoundTrip(t *testing.T) {
	in := Hello{Version: Version, ClientID: 0xdeadbeefcafe}
	typ, payload, rest, err := ParseFrame(AppendHello(nil, in))
	if err != nil || typ != TypeHello || len(rest) != 0 {
		t.Fatalf("ParseFrame = %v, rest %d bytes, err %v", typ, len(rest), err)
	}
	out, err := DecodeHello(payload)
	if err != nil || out != in {
		t.Fatalf("DecodeHello = %+v, %v; want %+v", out, err, in)
	}
}

func TestWelcomeRoundTrip(t *testing.T) {
	in := Welcome{Version: Version, Epoch: 7, IntervalNanos: 10_000}
	_, payload, _, err := ParseFrame(AppendWelcome(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeWelcome(payload)
	if err != nil || out != in {
		t.Fatalf("DecodeWelcome = %+v, %v; want %+v", out, err, in)
	}
}

func TestFlowletFramesRoundTrip(t *testing.T) {
	add := FlowletAdd{Flow: -12345, Src: 3, Dst: 141, Weight: 2.5}
	end := FlowletEnd{Flow: 1 << 60}
	step := Step{Seq: 42}

	var buf []byte
	buf = AppendFlowletAdd(buf, add)
	buf = AppendFlowletEnd(buf, end)
	buf = AppendStep(buf, step)

	typ, p, rest, err := ParseFrame(buf)
	if err != nil || typ != TypeFlowletAdd {
		t.Fatalf("frame 1: %v, %v", typ, err)
	}
	if got, err := DecodeFlowletAdd(p); err != nil || got != add {
		t.Fatalf("DecodeFlowletAdd = %+v, %v", got, err)
	}
	typ, p, rest, err = ParseFrame(rest)
	if err != nil || typ != TypeFlowletEnd {
		t.Fatalf("frame 2: %v, %v", typ, err)
	}
	if got, err := DecodeFlowletEnd(p); err != nil || got != end {
		t.Fatalf("DecodeFlowletEnd = %+v, %v", got, err)
	}
	typ, p, rest, err = ParseFrame(rest)
	if err != nil || typ != TypeStep || len(rest) != 0 {
		t.Fatalf("frame 3: %v, %v, rest %d", typ, err, len(rest))
	}
	if got, err := DecodeStep(p); err != nil || got != step {
		t.Fatalf("DecodeStep = %+v, %v", got, err)
	}
}

func TestRateBatchRoundTrip(t *testing.T) {
	entries := []RateEntry{
		{Flow: 1, Rate: 5e9},
		{Flow: 99, Rate: 0},
		{Flow: -7, Rate: math.Inf(1)},
	}
	_, p, _, err := ParseFrame(AppendRateBatch(nil, 17, entries))
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeRateBatch(p)
	if err != nil {
		t.Fatal(err)
	}
	if b.Seq != 17 || b.Len() != len(entries) {
		t.Fatalf("Seq %d Len %d; want 17, %d", b.Seq, b.Len(), len(entries))
	}
	for i, want := range entries {
		if got := b.Entry(i); got != want {
			t.Fatalf("Entry(%d) = %+v; want %+v", i, got, want)
		}
	}
}

func TestRateBatchIncrementalMatchesWhole(t *testing.T) {
	entries := []RateEntry{{Flow: 5, Rate: 1e9}, {Flow: 6, Rate: 2e9}}
	whole := AppendRateBatch(nil, 3, entries)
	inc := AppendRateBatchHeader(nil, 3, len(entries))
	for _, e := range entries {
		inc = AppendRateEntry(inc, e)
	}
	if !bytes.Equal(whole, inc) {
		t.Fatalf("incremental encoding differs:\n%x\n%x", whole, inc)
	}
}

func TestDecodeRejectsWrongLengths(t *testing.T) {
	if _, err := DecodeHello(make([]byte, 3)); err == nil {
		t.Error("DecodeHello accepted a short payload")
	}
	if _, err := DecodeFlowletAdd(make([]byte, 25)); err == nil {
		t.Error("DecodeFlowletAdd accepted a long payload")
	}
	if _, err := DecodeRateBatch(nil); err == nil {
		t.Error("DecodeRateBatch accepted an empty payload")
	}
	// Batch header declaring more entries than the payload holds.
	p := AppendRateBatch(nil, 1, []RateEntry{{Flow: 1, Rate: 1}})
	p[HeaderBytes+8] = 2 // count field
	if _, err := DecodeRateBatch(p[HeaderBytes:]); err == nil {
		t.Error("DecodeRateBatch accepted a count/length mismatch")
	}
}

func TestParseFrameErrors(t *testing.T) {
	if _, _, _, err := ParseFrame([]byte{byte(TypeHello), 10}); err != ErrShortFrame {
		t.Errorf("truncated header: err = %v; want ErrShortFrame", err)
	}
	if _, _, _, err := ParseFrame(appendHeader(nil, TypeHello, 10)); err != ErrShortFrame {
		t.Errorf("truncated payload: err = %v; want ErrShortFrame", err)
	}
	if _, _, _, err := ParseFrame([]byte{0xEE, 0, 0, 0}); err == nil {
		t.Error("unknown frame type accepted")
	}
}

func TestScanner(t *testing.T) {
	var buf []byte
	buf = AppendHello(buf, Hello{Version: 1, ClientID: 2})
	buf = AppendStep(buf, Step{Seq: 9})
	buf = AppendRateBatch(buf, 9, []RateEntry{{Flow: 4, Rate: 2.5e9}})

	sc := NewScanner(bytes.NewReader(buf))
	typ, _, err := sc.Next()
	if err != nil || typ != TypeHello {
		t.Fatalf("frame 1: %v, %v", typ, err)
	}
	typ, p, err := sc.Next()
	if err != nil || typ != TypeStep {
		t.Fatalf("frame 2: %v, %v", typ, err)
	}
	if s, _ := DecodeStep(p); s.Seq != 9 {
		t.Fatalf("step seq = %d", s.Seq)
	}
	typ, p, err = sc.Next()
	if err != nil || typ != TypeRateBatch {
		t.Fatalf("frame 3: %v, %v", typ, err)
	}
	if b, _ := DecodeRateBatch(p); b.Len() != 1 || b.Entry(0).Flow != 4 {
		t.Fatalf("batch = %+v", b)
	}
	if _, _, err := sc.Next(); err != io.EOF {
		t.Fatalf("EOF: %v", err)
	}
	// A stream ending mid-frame is an unexpected EOF.
	sc = NewScanner(bytes.NewReader(buf[:len(buf)-3]))
	var lastErr error
	for lastErr == nil {
		_, _, lastErr = sc.Next()
	}
	if lastErr != io.ErrUnexpectedEOF {
		t.Fatalf("mid-frame EOF: %v", lastErr)
	}
}

func TestAppendersDoNotAllocateSteadyState(t *testing.T) {
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		buf = buf[:0]
		buf = AppendFlowletAdd(buf, FlowletAdd{Flow: 1, Src: 2, Dst: 3, Weight: 1})
		buf = AppendFlowletEnd(buf, FlowletEnd{Flow: 1})
		buf = AppendRateBatchHeader(buf, 1, 2)
		buf = AppendRateEntry(buf, RateEntry{Flow: 1, Rate: 1e9})
		buf = AppendRateEntry(buf, RateEntry{Flow: 2, Rate: 2e9})
	})
	if allocs != 0 {
		t.Fatalf("steady-state encode allocates %v times per run", allocs)
	}
}

// stutterReader delivers its payload in tiny chunks and injects a transient
// (timeout-like) error between every chunk, simulating read deadlines firing
// mid-frame on a slow TCP connection.
type stutterReader struct {
	data []byte
	pos  int
	tick bool
}

type tempErr struct{}

func (tempErr) Error() string { return "i/o timeout (transient)" }

func (r *stutterReader) Read(p []byte) (int, error) {
	r.tick = !r.tick
	if r.tick {
		return 0, tempErr{}
	}
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p[:min(1, len(p))], r.data[r.pos:])
	r.pos += n
	return n, nil
}

// TestScannerResumesAfterTransientErrors verifies that a Next call
// interrupted mid-frame keeps the partial frame buffered: retrying yields the
// complete, correct frame stream instead of desynchronizing.
func TestScannerResumesAfterTransientErrors(t *testing.T) {
	var data []byte
	data = AppendWelcome(data, Welcome{Version: Version, Epoch: 5, IntervalNanos: 123})
	data = AppendRateBatch(data, 9, []RateEntry{{Flow: 3, Rate: 1e9}, {Flow: 4, Rate: 2e9}})
	data = AppendFlowletEnd(data, FlowletEnd{Flow: 3})

	sc := NewScanner(&stutterReader{data: data})
	next := func() (MsgType, []byte) {
		t.Helper()
		for {
			typ, payload, err := sc.Next()
			if err == nil {
				return typ, payload
			}
			if _, transient := err.(tempErr); !transient {
				t.Fatalf("non-transient error: %v", err)
			}
		}
	}
	typ, p := next()
	if w, _ := DecodeWelcome(p); typ != TypeWelcome || w.Epoch != 5 {
		t.Fatalf("frame 1 = %s %+v", typ, p)
	}
	typ, p = next()
	b, err := DecodeRateBatch(p)
	if err != nil || typ != TypeRateBatch || b.Len() != 2 || b.Entry(1).Flow != 4 {
		t.Fatalf("frame 2 = %s, err %v", typ, err)
	}
	typ, p = next()
	if e, _ := DecodeFlowletEnd(p); typ != TypeFlowletEnd || e.Flow != 3 {
		t.Fatalf("frame 3 = %s %+v", typ, p)
	}
	if _, _, err := sc.Next(); err != io.EOF {
		// Drain any trailing transient error first.
		for {
			_, _, err = sc.Next()
			if _, transient := err.(tempErr); !transient {
				break
			}
		}
		if err != io.EOF {
			t.Fatalf("end of stream: %v", err)
		}
	}
}

package wire

// Protocol version 4: delta-encoded frames. The fixed v1-v3 frames spend
// wire bytes proportional to flow/link count every iteration; the paper's
// control plane ships ~6-byte rate updates by sending only what changed.
// The three frames here make wire cost scale with *change*:
//
//   - RateDelta replaces RateBatch on v4 client sessions. Flow IDs are
//     zigzag-varint deltas against the previous entry (batches are usually
//     close to sorted, so deltas are tiny), and rates are xor-compressed
//     against the previous entry's rate bits — bit-exact float64s, so
//     allocation math is untouched. An optional quantized mode (flags bit 0)
//     sends uvarint Mbps instead, the paper's own granularity.
//   - PriceDigestDelta / PriceSnapshotDelta replace the full exchange frames
//     on v4 peer connections. The *sender* delta-encodes against the bundle
//     the peer last acked and lists only changed links; a frame with the
//     reset flag re-baselines the receiver (full resync) after an ack gap,
//     peer reconnect, or takeover.
//
// Delta frames also shrink their headers: a flags byte followed by uvarint
// seq/shard/epoch words (tiny counters in practice) instead of the fixed
// eight-byte words of the v3 frames. Steady state sends many small or empty
// frames — an empty step reply is 7 bytes against RateBatch's 16 — so the
// header is the fan-out floor once suppression has removed the entries.
//
// All varints are minimal-length and xor-floats carry no zero top byte, so
// every accepted payload re-encodes bit-identically (FuzzFrameRoundTrip
// relies on this canonical form).

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Flag bits of the delta frames.
const (
	// RateDeltaQuantized marks a RateDelta whose rates are uvarint Mbps
	// (paper-style granularity) instead of bit-exact xor-compressed floats.
	RateDeltaQuantized byte = 1 << 0
	// RateDeltaStepReply is the wire form of StepReplyFlag: the seq uvarint
	// carries only the counter, so the flag rides in the flags byte instead
	// of pinning the header at eight bytes. Steady-state replies are often
	// empty or tiny — header bytes are the fan-out floor.
	RateDeltaStepReply byte = 1 << 1
	// DeltaReset marks a PriceDigestDelta or PriceSnapshotDelta that
	// re-baselines the receiver: digest resets zero every contribution from
	// the sending shard first, snapshot resets re-pin exactly the listed
	// links and unpin the rest.
	DeltaReset byte = 1 << 0
)

// Conservative worst-case entry sizes, used only for the chunking bounds.
const (
	maxRateDeltaEntryLen = 20 // flow varint (<=10) + quantized Mbps varint (<=10)
	maxDigestDeltaEntry  = 28 // link varint (<=10) + two xor-floats (<=9 each)
	maxSnapDeltaEntry    = 19 // link varint (<=10) + one xor-float (<=9)
)

// MaxRateDeltaEntries is the largest entry count guaranteed to fit one
// RateDelta frame whatever the entry values (worst-case varint sizes; the
// extra 10 covers the entry-count varint).
const MaxRateDeltaEntries = (MaxPayload - rateDeltaHdrMax - 10) / maxRateDeltaEntryLen

// MaxDigestDeltaEntries is the worst-case entry bound of PriceDigestDelta.
const MaxDigestDeltaEntries = (MaxPayload - digestDeltaHdrMax - 10) / maxDigestDeltaEntry

// MaxSnapshotDeltaEntries is the worst-case entry bound of
// PriceSnapshotDelta.
const MaxSnapshotDeltaEntries = (MaxPayload - snapDeltaHdrMax - 10) / maxSnapDeltaEntry

// maxQuantized caps quantized rates at 2^50 Mbps (~10^21 bits/s, far beyond
// any link). The cap keeps quantize(dequantize(q)) == q exact in float64, so
// quantized frames re-encode bit-identically.
const maxQuantized = 1 << 50

// QuantizeRate rounds a rate to the paper's Mbps granularity for the
// quantized RateDelta mode. Positive rates never round to zero (a live flow
// keeps at least 1 Mbps) and non-positive rates quantize to zero.
func QuantizeRate(rate float64) uint64 {
	if rate <= 0 || math.IsNaN(rate) {
		return 0
	}
	q := math.Round(rate / 1e6)
	if q < 1 {
		return 1
	}
	if q >= maxQuantized {
		return maxQuantized
	}
	return uint64(q)
}

// DequantizeRate maps a quantized Mbps value back to a rate in bits/s.
func DequantizeRate(q uint64) float64 { return float64(q) * 1e6 }

// patchFrameLen back-fills the uint24 payload length of a variable-length
// frame whose header was appended at start. Encoders panic on overflow: the
// Max*DeltaEntries bounds make exceeding MaxPayload a caller bug, and a
// silently truncated length would desynchronize the stream.
func patchFrameLen(buf []byte, start int) []byte {
	n := len(buf) - start - HeaderBytes
	if n > MaxPayload {
		panic(fmt.Sprintf("wire: %s payload %d bytes exceeds MaxPayload; respect the Max*DeltaEntries bounds", MsgType(buf[start]), n))
	}
	buf[start+1] = byte(n)
	buf[start+2] = byte(n >> 8)
	buf[start+3] = byte(n >> 16)
	return buf
}

// zigzag maps a signed delta to an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarint decodes a minimal-length unsigned varint, rejecting non-canonical
// encodings (a padded varint would break the bit-exact re-encode property).
func uvarint(p []byte) (uint64, int, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, fmt.Errorf("wire: truncated or overlong varint")
	}
	if n > 1 && v>>(7*uint(n-1)) == 0 {
		return 0, 0, fmt.Errorf("wire: non-minimal varint")
	}
	return v, n, nil
}

// appendXorFloat appends the xor-compressed form of a float64 bit pattern
// against the previous value: one byte with the significant-byte count of
// x = bits ^ prev, then that many little-endian bytes. Equal values cost a
// single zero byte.
func appendXorFloat(buf []byte, bitsNow, prev uint64) []byte {
	x := bitsNow ^ prev
	n := (bits.Len64(x) + 7) / 8
	buf = append(buf, byte(n))
	for i := 0; i < n; i++ {
		buf = append(buf, byte(x>>(8*uint(i))))
	}
	return buf
}

// xorFloat decodes one appendXorFloat value, returning the new bit pattern
// and the number of bytes consumed. Non-canonical forms (length > 8, or a
// zero top byte) are rejected.
func xorFloat(p []byte, prev uint64) (uint64, int, error) {
	if len(p) < 1 {
		return 0, 0, fmt.Errorf("wire: truncated xor-float")
	}
	n := int(p[0])
	if n > 8 {
		return 0, 0, fmt.Errorf("wire: xor-float length %d exceeds 8", n)
	}
	if len(p) < 1+n {
		return 0, 0, fmt.Errorf("wire: truncated xor-float")
	}
	var x uint64
	for i := 0; i < n; i++ {
		x |= uint64(p[1+i]) << (8 * uint(i))
	}
	if n > 0 && p[n] == 0 {
		return 0, 0, fmt.Errorf("wire: non-minimal xor-float")
	}
	return prev ^ x, 1 + n, nil
}

// ---------------------------------------------------------------------------
// RateDelta.

// RateDelta is a decoded delta rate-update frame. Unlike the aliasing
// RateBatch, entries are decoded eagerly (they are not random-accessible);
// DecodeRateDelta reuses the Entries capacity of the value it fills.
type RateDelta struct {
	// Seq carries the same semantics as RateBatch.Seq, including
	// StepReplyFlag.
	Seq uint64
	// Quantized reports the Mbps-granularity mode; rates have already been
	// dequantized to bits/s.
	Quantized bool
	Entries   []RateEntry
}

// AppendRateDelta appends a complete RateDelta frame. Entries keep their
// order (step replies preserve the engine's update order); flow IDs are
// zigzag-encoded deltas so any order round-trips. len(entries) must not
// exceed MaxRateDeltaEntries.
func AppendRateDelta(buf []byte, seq uint64, quantized bool, entries []RateEntry) []byte {
	start := len(buf)
	buf = appendHeader(buf, TypeRateDelta, 0)
	var flags byte
	if quantized {
		flags |= RateDeltaQuantized
	}
	if seq&StepReplyFlag != 0 {
		flags |= RateDeltaStepReply
		seq &^= StepReplyFlag
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	var prevFlow int64
	var prevBits uint64
	for _, e := range entries {
		buf = binary.AppendUvarint(buf, zigzag(e.Flow-prevFlow))
		prevFlow = e.Flow
		if quantized {
			buf = binary.AppendUvarint(buf, QuantizeRate(e.Rate))
		} else {
			b := math.Float64bits(e.Rate)
			buf = appendXorFloat(buf, b, prevBits)
			prevBits = b
		}
	}
	return patchFrameLen(buf, start)
}

// DecodeRateDelta decodes a RateDelta payload into d, reusing d.Entries.
func DecodeRateDelta(p []byte, d *RateDelta) error {
	if len(p) < 1 {
		return fmt.Errorf("wire: rate-delta payload is empty")
	}
	flags := p[0]
	if flags&^(RateDeltaQuantized|RateDeltaStepReply) != 0 {
		return fmt.Errorf("wire: rate-delta has unknown flags %#x", flags)
	}
	d.Quantized = flags&RateDeltaQuantized != 0
	p = p[1:]
	seq, n, err := uvarint(p)
	if err != nil {
		return fmt.Errorf("wire: rate-delta seq: %w", err)
	}
	if seq&StepReplyFlag != 0 {
		return fmt.Errorf("wire: rate-delta seq %#x collides with the step-reply bit", seq)
	}
	p = p[n:]
	d.Seq = seq
	if flags&RateDeltaStepReply != 0 {
		d.Seq |= StepReplyFlag
	}
	count, n, err := uvarint(p)
	if err != nil {
		return fmt.Errorf("wire: rate-delta count: %w", err)
	}
	p = p[n:]
	if count > uint64(len(p)) { // every entry takes >= 2 bytes
		return fmt.Errorf("wire: rate-delta declares %d entries in %d bytes", count, len(p))
	}
	d.Entries = d.Entries[:0]
	var prevFlow int64
	var prevBits uint64
	for i := uint64(0); i < count; i++ {
		u, n, err := uvarint(p)
		if err != nil {
			return fmt.Errorf("wire: rate-delta entry %d flow: %w", i, err)
		}
		p = p[n:]
		prevFlow += unzigzag(u)
		var rate float64
		if d.Quantized {
			q, n, err := uvarint(p)
			if err != nil {
				return fmt.Errorf("wire: rate-delta entry %d rate: %w", i, err)
			}
			if q > maxQuantized {
				return fmt.Errorf("wire: rate-delta entry %d quantized rate %d exceeds %d Mbps", i, q, uint64(maxQuantized))
			}
			p = p[n:]
			rate = DequantizeRate(q)
		} else {
			b, n, err := xorFloat(p, prevBits)
			if err != nil {
				return fmt.Errorf("wire: rate-delta entry %d rate: %w", i, err)
			}
			p = p[n:]
			prevBits = b
			rate = math.Float64frombits(b)
		}
		d.Entries = append(d.Entries, RateEntry{Flow: prevFlow, Rate: rate})
	}
	if len(p) != 0 {
		return fmt.Errorf("wire: rate-delta has %d trailing bytes", len(p))
	}
	return nil
}

// ---------------------------------------------------------------------------
// PriceDigestDelta.

// PriceDigestDelta is a decoded delta digest. Entries are decoded eagerly;
// DecodePriceDigestDelta reuses the slice capacities of the value it fills.
type PriceDigestDelta struct {
	// Seq and Shard carry the PriceDigest semantics.
	Seq   uint64
	Shard uint32
	// Reset re-baselines the receiver: zero every contribution from this
	// shard before applying the listed entries. A reset digest may omit
	// all-zero links; a non-reset digest lists exactly the changed links.
	Reset bool
	Links []uint32
	Loads []float64
	Hdiag []float64
}

// AppendPriceDigestDelta appends a complete PriceDigestDelta frame over
// parallel links/loads/hdiag slices. Links keep their order (senders emit
// them sorted, making deltas small, but any order round-trips). len(links)
// must not exceed MaxDigestDeltaEntries.
func AppendPriceDigestDelta(buf []byte, seq uint64, shard uint32, reset bool, links []uint32, loads, hdiag []float64) []byte {
	start := len(buf)
	buf = appendHeader(buf, TypePriceDigestDelta, 0)
	var flags byte
	if reset {
		flags |= DeltaReset
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(shard))
	buf = binary.AppendUvarint(buf, uint64(len(links)))
	var prevLink int64
	var prevLoad, prevHdiag uint64
	for i, l := range links {
		buf = binary.AppendUvarint(buf, zigzag(int64(l)-prevLink))
		prevLink = int64(l)
		lb := math.Float64bits(loads[i])
		buf = appendXorFloat(buf, lb, prevLoad)
		prevLoad = lb
		hb := math.Float64bits(hdiag[i])
		buf = appendXorFloat(buf, hb, prevHdiag)
		prevHdiag = hb
	}
	return patchFrameLen(buf, start)
}

// DecodePriceDigestDelta decodes a PriceDigestDelta payload into d, reusing
// its slice capacities.
func DecodePriceDigestDelta(p []byte, d *PriceDigestDelta) error {
	if len(p) < 1 {
		return fmt.Errorf("wire: price-digest-delta payload is empty")
	}
	flags := p[0]
	if flags&^DeltaReset != 0 {
		return fmt.Errorf("wire: price-digest-delta has unknown flags %#x", flags)
	}
	d.Reset = flags&DeltaReset != 0
	p = p[1:]
	seq, n, err := uvarint(p)
	if err != nil {
		return fmt.Errorf("wire: price-digest-delta seq: %w", err)
	}
	p = p[n:]
	d.Seq = seq
	shard, n, err := uvarint(p)
	if err != nil {
		return fmt.Errorf("wire: price-digest-delta shard: %w", err)
	}
	if shard > math.MaxUint32 {
		return fmt.Errorf("wire: price-digest-delta shard %d out of range", shard)
	}
	p = p[n:]
	d.Shard = uint32(shard)
	count, n, err := uvarint(p)
	if err != nil {
		return fmt.Errorf("wire: price-digest-delta count: %w", err)
	}
	p = p[n:]
	if count > uint64(len(p)) { // every entry takes >= 3 bytes
		return fmt.Errorf("wire: price-digest-delta declares %d entries in %d bytes", count, len(p))
	}
	d.Links = d.Links[:0]
	d.Loads = d.Loads[:0]
	d.Hdiag = d.Hdiag[:0]
	var prevLink int64
	var prevLoad, prevHdiag uint64
	for i := uint64(0); i < count; i++ {
		u, n, err := uvarint(p)
		if err != nil {
			return fmt.Errorf("wire: price-digest-delta entry %d link: %w", i, err)
		}
		p = p[n:]
		prevLink += unzigzag(u)
		if prevLink < 0 || prevLink > math.MaxUint32 {
			return fmt.Errorf("wire: price-digest-delta entry %d link %d out of range", i, prevLink)
		}
		lb, n, err := xorFloat(p, prevLoad)
		if err != nil {
			return fmt.Errorf("wire: price-digest-delta entry %d load: %w", i, err)
		}
		p = p[n:]
		prevLoad = lb
		hb, n, err := xorFloat(p, prevHdiag)
		if err != nil {
			return fmt.Errorf("wire: price-digest-delta entry %d hdiag: %w", i, err)
		}
		p = p[n:]
		prevHdiag = hb
		d.Links = append(d.Links, uint32(prevLink))
		d.Loads = append(d.Loads, math.Float64frombits(lb))
		d.Hdiag = append(d.Hdiag, math.Float64frombits(hb))
	}
	if len(p) != 0 {
		return fmt.Errorf("wire: price-digest-delta has %d trailing bytes", len(p))
	}
	return nil
}

// ---------------------------------------------------------------------------
// PriceSnapshotDelta.

// PriceSnapshotDelta is a decoded delta snapshot. Entries are decoded
// eagerly; DecodePriceSnapshotDelta reuses the slice capacities of the value
// it fills.
type PriceSnapshotDelta struct {
	// Epoch, Seq and Shard carry the PriceSnapshot semantics.
	Epoch uint64
	Seq   uint64
	Shard uint32
	// Reset re-baselines the receiver's pin set: pin exactly the listed
	// links at the listed prices. Unlike digest resets, a snapshot reset
	// must list every boundary link — a pinned zero price is not the same
	// as an unpinned link. Non-reset frames list only changed links.
	Reset  bool
	Links  []uint32
	Prices []float64
}

// AppendPriceSnapshotDelta appends a complete PriceSnapshotDelta frame over
// parallel links/prices slices. len(links) must not exceed
// MaxSnapshotDeltaEntries.
func AppendPriceSnapshotDelta(buf []byte, epoch, seq uint64, shard uint32, reset bool, links []uint32, prices []float64) []byte {
	start := len(buf)
	buf = appendHeader(buf, TypePriceSnapshotDelta, 0)
	var flags byte
	if reset {
		flags |= DeltaReset
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, epoch)
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(shard))
	buf = binary.AppendUvarint(buf, uint64(len(links)))
	var prevLink int64
	var prevPrice uint64
	for i, l := range links {
		buf = binary.AppendUvarint(buf, zigzag(int64(l)-prevLink))
		prevLink = int64(l)
		pb := math.Float64bits(prices[i])
		buf = appendXorFloat(buf, pb, prevPrice)
		prevPrice = pb
	}
	return patchFrameLen(buf, start)
}

// DecodePriceSnapshotDelta decodes a PriceSnapshotDelta payload into d,
// reusing its slice capacities.
func DecodePriceSnapshotDelta(p []byte, d *PriceSnapshotDelta) error {
	if len(p) < 1 {
		return fmt.Errorf("wire: price-snapshot-delta payload is empty")
	}
	flags := p[0]
	if flags&^DeltaReset != 0 {
		return fmt.Errorf("wire: price-snapshot-delta has unknown flags %#x", flags)
	}
	d.Reset = flags&DeltaReset != 0
	p = p[1:]
	epoch, n, err := uvarint(p)
	if err != nil {
		return fmt.Errorf("wire: price-snapshot-delta epoch: %w", err)
	}
	p = p[n:]
	d.Epoch = epoch
	seq, n, err := uvarint(p)
	if err != nil {
		return fmt.Errorf("wire: price-snapshot-delta seq: %w", err)
	}
	p = p[n:]
	d.Seq = seq
	shard, n, err := uvarint(p)
	if err != nil {
		return fmt.Errorf("wire: price-snapshot-delta shard: %w", err)
	}
	if shard > math.MaxUint32 {
		return fmt.Errorf("wire: price-snapshot-delta shard %d out of range", shard)
	}
	p = p[n:]
	d.Shard = uint32(shard)
	count, n, err := uvarint(p)
	if err != nil {
		return fmt.Errorf("wire: price-snapshot-delta count: %w", err)
	}
	p = p[n:]
	if count > uint64(len(p)) { // every entry takes >= 2 bytes
		return fmt.Errorf("wire: price-snapshot-delta declares %d entries in %d bytes", count, len(p))
	}
	d.Links = d.Links[:0]
	d.Prices = d.Prices[:0]
	var prevLink int64
	var prevPrice uint64
	for i := uint64(0); i < count; i++ {
		u, n, err := uvarint(p)
		if err != nil {
			return fmt.Errorf("wire: price-snapshot-delta entry %d link: %w", i, err)
		}
		p = p[n:]
		prevLink += unzigzag(u)
		if prevLink < 0 || prevLink > math.MaxUint32 {
			return fmt.Errorf("wire: price-snapshot-delta entry %d link %d out of range", i, prevLink)
		}
		pb, n, err := xorFloat(p, prevPrice)
		if err != nil {
			return fmt.Errorf("wire: price-snapshot-delta entry %d price: %w", i, err)
		}
		p = p[n:]
		prevPrice = pb
		d.Links = append(d.Links, uint32(prevLink))
		d.Prices = append(d.Prices, math.Float64frombits(pb))
	}
	if len(p) != 0 {
		return fmt.Errorf("wire: price-snapshot-delta has %d trailing bytes", len(p))
	}
	return nil
}

// ---------------------------------------------------------------------------
// Fixed-frame size accounting, used by the servers' v3-equivalent byte
// counters: the bytes the same update set would have cost in fixed frames.

// RateBatchSize returns the encoded size of a RateBatch frame with n
// entries, header included.
func RateBatchSize(n int) int { return HeaderBytes + batchHdrLen + n*rateEntryLen }

// PriceDigestSize returns the encoded size of a PriceDigest frame with n
// entries, header included.
func PriceDigestSize(n int) int { return HeaderBytes + digestHdrLen + n*digestEntryLen }

// PriceSnapshotSize returns the encoded size of a PriceSnapshot frame with n
// entries, header included.
func PriceSnapshotSize(n int) int { return HeaderBytes + snapHdrLen + n*snapEntryLen }

package wire

import (
	"math"
	"math/rand"
	"testing"
)

func TestRateDeltaRoundTrip(t *testing.T) {
	cases := [][]RateEntry{
		nil,
		{{Flow: 0, Rate: 0}},
		{{Flow: 7, Rate: 5e9}, {Flow: 8, Rate: 5e9}, {Flow: 9, Rate: 5e9}},
		// Step replies keep engine order: descending and mixed IDs must
		// round-trip too (zigzag deltas).
		{{Flow: 100, Rate: 1e9}, {Flow: 3, Rate: 2e9}, {Flow: 50, Rate: 1e9}},
		{{Flow: math.MaxInt64, Rate: math.Inf(1)}, {Flow: math.MinInt64, Rate: -1}},
	}
	for _, entries := range cases {
		frame := AppendRateDelta(nil, 42|StepReplyFlag, false, entries)
		typ, payload, rest, err := ParseFrame(frame)
		if err != nil || typ != TypeRateDelta || len(rest) != 0 {
			t.Fatalf("ParseFrame: %v %v rest=%d", typ, err, len(rest))
		}
		var d RateDelta
		if err := DecodeRateDelta(payload, &d); err != nil {
			t.Fatalf("DecodeRateDelta: %v", err)
		}
		if d.Seq != 42|StepReplyFlag || d.Quantized {
			t.Fatalf("header round trip: %+v", d)
		}
		if len(d.Entries) != len(entries) {
			t.Fatalf("got %d entries, want %d", len(d.Entries), len(entries))
		}
		for i, e := range entries {
			g := d.Entries[i]
			if g.Flow != e.Flow || math.Float64bits(g.Rate) != math.Float64bits(e.Rate) {
				t.Fatalf("entry %d: got %+v, want %+v", i, g, e)
			}
		}
	}
}

func TestRateDeltaQuantized(t *testing.T) {
	entries := []RateEntry{{Flow: 1, Rate: 5e9}, {Flow: 2, Rate: 0.3e6}, {Flow: 3, Rate: 0}, {Flow: 4, Rate: 1.4999e6}}
	frame := AppendRateDelta(nil, 7, true, entries)
	_, payload, _, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	var d RateDelta
	if err := DecodeRateDelta(payload, &d); err != nil {
		t.Fatal(err)
	}
	if !d.Quantized {
		t.Fatal("quantized flag lost")
	}
	want := []float64{5e9, 1e6, 0, 1e6} // Mbps rounding, positive floor 1 Mbps
	for i, w := range want {
		if d.Entries[i].Rate != w {
			t.Fatalf("entry %d: got %g, want %g", i, d.Entries[i].Rate, w)
		}
	}
}

func TestDigestDeltaRoundTrip(t *testing.T) {
	links := []uint32{4, 9, 11, math.MaxUint32}
	loads := []float64{5e9, 5e9, 0, -1e-3}
	hdiag := []float64{-1e-3, -1e-3, math.Inf(-1), 0}
	frame := AppendPriceDigestDelta(nil, 3, 2, true, links, loads, hdiag)
	_, payload, _, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	var d PriceDigestDelta
	if err := DecodePriceDigestDelta(payload, &d); err != nil {
		t.Fatal(err)
	}
	if d.Seq != 3 || d.Shard != 2 || !d.Reset {
		t.Fatalf("header round trip: %+v", d)
	}
	for i := range links {
		if d.Links[i] != links[i] || math.Float64bits(d.Loads[i]) != math.Float64bits(loads[i]) ||
			math.Float64bits(d.Hdiag[i]) != math.Float64bits(hdiag[i]) {
			t.Fatalf("entry %d: got (%d %g %g)", i, d.Links[i], d.Loads[i], d.Hdiag[i])
		}
	}
}

func TestSnapshotDeltaRoundTrip(t *testing.T) {
	links := []uint32{0, 1, 7}
	prices := []float64{1.5, 1.5, 0}
	frame := AppendPriceSnapshotDelta(nil, 9, 3, 1, false, links, prices)
	_, payload, _, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	var d PriceSnapshotDelta
	if err := DecodePriceSnapshotDelta(payload, &d); err != nil {
		t.Fatal(err)
	}
	if d.Epoch != 9 || d.Seq != 3 || d.Shard != 1 || d.Reset {
		t.Fatalf("header round trip: %+v", d)
	}
	for i := range links {
		if d.Links[i] != links[i] || d.Prices[i] != prices[i] {
			t.Fatalf("entry %d: got (%d %g)", i, d.Links[i], d.Prices[i])
		}
	}
}

// TestDeltaTruncation feeds every proper payload prefix of valid delta
// frames to the decoders: all must error, none may panic.
func TestDeltaTruncation(t *testing.T) {
	rd := AppendRateDelta(nil, 1, false, []RateEntry{{Flow: 1, Rate: 1e9}, {Flow: 2, Rate: 2e9}})
	dd := AppendPriceDigestDelta(nil, 1, 0, false, []uint32{3, 5}, []float64{1, 2}, []float64{3, 4})
	sd := AppendPriceSnapshotDelta(nil, 1, 2, 0, true, []uint32{3, 5}, []float64{1, 2})
	for name, frame := range map[string][]byte{"rate": rd, "digest": dd, "snapshot": sd} {
		payload := frame[HeaderBytes:]
		for n := 0; n < len(payload); n++ {
			var err error
			switch name {
			case "rate":
				err = DecodeRateDelta(payload[:n], &RateDelta{})
			case "digest":
				err = DecodePriceDigestDelta(payload[:n], &PriceDigestDelta{})
			case "snapshot":
				err = DecodePriceSnapshotDelta(payload[:n], &PriceSnapshotDelta{})
			}
			if err == nil {
				t.Fatalf("%s: %d-byte prefix of %d-byte payload decoded without error", name, n, len(payload))
			}
		}
	}
}

// TestFlowletAddSized pins the 24/32-byte dual forms.
func TestFlowletAddSized(t *testing.T) {
	plain := AppendFlowletAdd(nil, FlowletAdd{Flow: 1, Src: 2, Dst: 3, Weight: 1})
	if len(plain) != HeaderBytes+addLen {
		t.Fatalf("plain add is %d bytes, want %d", len(plain), HeaderBytes+addLen)
	}
	sized := AppendFlowletAdd(nil, FlowletAdd{Flow: 1, Src: 2, Dst: 3, Weight: 1, Size: 1 << 16})
	if len(sized) != HeaderBytes+addSizedLen {
		t.Fatalf("sized add is %d bytes, want %d", len(sized), HeaderBytes+addSizedLen)
	}
	m, err := DecodeFlowletAdd(sized[HeaderBytes:])
	if err != nil || m.Size != 1<<16 {
		t.Fatalf("sized decode: %+v %v", m, err)
	}
	// A zero size in the 32-byte form is non-canonical and must be rejected.
	bad := append([]byte(nil), sized[HeaderBytes:]...)
	for i := 24; i < 32; i++ {
		bad[i] = 0
	}
	if _, err := DecodeFlowletAdd(bad); err == nil {
		t.Fatal("zero-size 32-byte add decoded without error")
	}
}

// churnTraces builds the two BenchmarkWireEncode workloads: a slow-moving
// price trace (most links unchanged per iteration, the common steady state)
// and an incast rate storm (every flow's rate moves every iteration, but
// toward the same fair share).
func churnRates(n int, storm bool, rng *rand.Rand) (prev, next []RateEntry) {
	prev = make([]RateEntry, n)
	next = make([]RateEntry, n)
	for i := range prev {
		prev[i] = RateEntry{Flow: int64(i * 3), Rate: 1e9}
		next[i] = prev[i]
	}
	if storm {
		share := 1e10 / float64(n)
		for i := range next {
			next[i].Rate = share
		}
	} else {
		for i := 0; i < n/50+1; i++ {
			next[rng.Intn(n)].Rate = 1e9 * (1 + rng.Float64()/100)
		}
	}
	return prev, next
}

// BenchmarkWireEncode compares v3 fixed frames against v4 delta encoding on
// realistic churn traces, reporting bytes per iteration.
func BenchmarkWireEncode(b *testing.B) {
	const flows = 4096
	for _, bench := range []struct {
		name  string
		storm bool
	}{
		{"slow-prices", false},
		{"incast-storm", true},
	} {
		rng := rand.New(rand.NewSource(1))
		prev, next := churnRates(flows, bench.storm, rng)
		// v4 sends only entries whose rate changed since the last batch.
		changed := make([]RateEntry, 0, flows)
		for i := range next {
			if next[i].Rate != prev[i].Rate {
				changed = append(changed, next[i])
			}
		}
		b.Run(bench.name+"/v3-fixed", func(b *testing.B) {
			buf := make([]byte, 0, RateBatchSize(flows))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = AppendRateBatch(buf[:0], uint64(i), next)
			}
			b.ReportMetric(float64(len(buf)), "bytes/iter")
		})
		b.Run(bench.name+"/v4-delta", func(b *testing.B) {
			buf := make([]byte, 0, RateBatchSize(flows))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = AppendRateDelta(buf[:0], uint64(i), false, changed)
			}
			b.ReportMetric(float64(len(buf)), "bytes/iter")
		})
		b.Run(bench.name+"/v4-delta-quantized", func(b *testing.B) {
			buf := make([]byte, 0, RateBatchSize(flows))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = AppendRateDelta(buf[:0], uint64(i), true, changed)
			}
			b.ReportMetric(float64(len(buf)), "bytes/iter")
		})
	}
}

package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzFrameRoundTrip feeds arbitrary bytes through the frame parser and,
// for every frame that decodes, re-encodes it and requires a bit-exact
// round trip. Decoders must never panic on malformed input.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(AppendHello(nil, Hello{Version: Version, ClientID: 1}))
	f.Add(AppendWelcome(nil, Welcome{Version: Version, Epoch: 3, IntervalNanos: 10_000}))
	f.Add(AppendFlowletAdd(nil, FlowletAdd{Flow: 7, Src: 1, Dst: 2, Weight: 1.5}))
	f.Add(AppendFlowletEnd(nil, FlowletEnd{Flow: 7}))
	f.Add(AppendStep(nil, Step{Seq: 9}))
	f.Add(AppendRateBatch(nil, 9, []RateEntry{{Flow: 7, Rate: 5e9}, {Flow: 8, Rate: math.NaN()}}))
	f.Add(AppendEpochNotify(nil, EpochNotify{Epoch: 2}))
	f.Add(AppendPeerHello(nil, PeerHello{Version: Version, Shard: 1, NumShards: 4, Epoch: 1}))
	digest := AppendPriceDigestHeader(nil, 3, 1, 2)
	digest = AppendDigestEntry(digest, DigestEntry{Link: 4, Load: 5e9, Hdiag: -1e-3})
	digest = AppendDigestEntry(digest, DigestEntry{Link: 9, Load: 0, Hdiag: math.Inf(-1)})
	f.Add(digest)
	snap := AppendPriceSnapshotHeader(nil, 1, 3, 0, 1)
	snap = AppendSnapshotEntry(snap, SnapshotEntry{Link: 4, Price: 1.5})
	f.Add(snap)
	f.Add(AppendExchangeAck(nil, 3))
	fstate := AppendFlowStateHeader(nil, 2, 5, 1, 2)
	fstate = AppendFlowStateEntry(fstate, FlowStateEntry{Flow: 7, Src: 1, Dst: 2, Weight: 1.5})
	fstate = AppendFlowStateEntry(fstate, FlowStateEntry{Flow: 8, Src: 3, Dst: 0, Weight: 0})
	f.Add(fstate)
	f.Add(AppendHeartbeat(nil, Heartbeat{Seq: 4, Shard: 2}))
	f.Add(AppendTakeover(nil, Takeover{Epoch: 2, Seq: 9, Dead: 0, By: 1}))
	f.Add([]byte{0xFF, 0x00})
	f.Add(appendHeader(nil, TypeRateBatch, batchHdrLen+3))
	f.Add(appendHeader(nil, TypePriceDigest, digestHdrLen+7))

	// v4 delta frames: sized adds, empty deltas, quantized mode, reset
	// (ack-gap resync) frames, and max-varint flow/link jumps.
	f.Add(AppendFlowletAdd(nil, FlowletAdd{Flow: 7, Src: 1, Dst: 2, Weight: 1.5, Size: 1 << 20}))
	f.Add(AppendRateDelta(nil, 9|StepReplyFlag, false, []RateEntry{{Flow: 7, Rate: 5e9}, {Flow: 8, Rate: 5e9}, {Flow: 3, Rate: 2.5e9}}))
	f.Add(AppendRateDelta(nil, 4, false, nil))
	f.Add(AppendRateDelta(nil, 5, true, []RateEntry{{Flow: math.MaxInt64, Rate: 1e9}, {Flow: math.MinInt64, Rate: 0.2e6}}))
	f.Add(AppendPriceDigestDelta(nil, 3, 1, true, []uint32{4, 9, math.MaxUint32}, []float64{5e9, 0, 1}, []float64{-1e-3, 0, math.Inf(-1)}))
	f.Add(AppendPriceDigestDelta(nil, 4, 1, false, nil, nil, nil))
	f.Add(AppendPriceSnapshotDelta(nil, 1, 3, 0, true, []uint32{4, 5}, []float64{1.5, 1.5}))
	f.Add(AppendPriceSnapshotDelta(nil, 2, 7, 0, false, nil, nil))
	f.Add(appendHeader(nil, TypeRateDelta, rateDeltaHdrMax+5))

	f.Fuzz(func(t *testing.T, data []byte) {
		buf := data
		for {
			typ, payload, rest, err := ParseFrame(buf)
			if err != nil {
				return
			}
			var reenc []byte
			switch typ {
			case TypeHello:
				m, err := DecodeHello(payload)
				if err != nil {
					break
				}
				reenc = AppendHello(nil, m)
			case TypeWelcome:
				m, err := DecodeWelcome(payload)
				if err != nil {
					break
				}
				reenc = AppendWelcome(nil, m)
			case TypeFlowletAdd:
				m, err := DecodeFlowletAdd(payload)
				if err != nil {
					break
				}
				reenc = AppendFlowletAdd(nil, m)
			case TypeFlowletEnd:
				m, err := DecodeFlowletEnd(payload)
				if err != nil {
					break
				}
				reenc = AppendFlowletEnd(nil, m)
			case TypeStep:
				m, err := DecodeStep(payload)
				if err != nil {
					break
				}
				reenc = AppendStep(nil, m)
			case TypeRateBatch:
				b, err := DecodeRateBatch(payload)
				if err != nil {
					break
				}
				reenc = AppendRateBatchHeader(nil, b.Seq, b.Len())
				for i := 0; i < b.Len(); i++ {
					reenc = AppendRateEntry(reenc, b.Entry(i))
				}
			case TypeEpochNotify:
				m, err := DecodeEpochNotify(payload)
				if err != nil {
					break
				}
				reenc = AppendEpochNotify(nil, m)
			case TypePeerHello:
				m, err := DecodePeerHello(payload)
				if err != nil {
					break
				}
				reenc = AppendPeerHello(nil, m)
			case TypePriceDigest:
				d, err := DecodePriceDigest(payload)
				if err != nil {
					break
				}
				reenc = AppendPriceDigestHeader(nil, d.Seq, d.Shard, d.Len())
				for i := 0; i < d.Len(); i++ {
					reenc = AppendDigestEntry(reenc, d.Entry(i))
				}
			case TypePriceSnapshot:
				s, err := DecodePriceSnapshot(payload)
				if err != nil {
					break
				}
				reenc = AppendPriceSnapshotHeader(nil, s.Epoch, s.Seq, s.Shard, s.Len())
				for i := 0; i < s.Len(); i++ {
					reenc = AppendSnapshotEntry(reenc, s.Entry(i))
				}
			case TypeExchangeAck:
				seq, err := DecodeExchangeAck(payload)
				if err != nil {
					break
				}
				reenc = AppendExchangeAck(nil, seq)
			case TypeFlowState:
				fs, err := DecodeFlowState(payload)
				if err != nil {
					break
				}
				reenc = AppendFlowStateHeader(nil, fs.Epoch, fs.Seq, fs.Shard, fs.Len())
				for i := 0; i < fs.Len(); i++ {
					reenc = AppendFlowStateEntry(reenc, fs.Entry(i))
				}
			case TypeHeartbeat:
				m, err := DecodeHeartbeat(payload)
				if err != nil {
					break
				}
				reenc = AppendHeartbeat(nil, m)
			case TypeTakeover:
				m, err := DecodeTakeover(payload)
				if err != nil {
					break
				}
				reenc = AppendTakeover(nil, m)
			case TypeRateDelta:
				var d RateDelta
				if err := DecodeRateDelta(payload, &d); err != nil {
					break
				}
				reenc = AppendRateDelta(nil, d.Seq, d.Quantized, d.Entries)
			case TypePriceDigestDelta:
				var d PriceDigestDelta
				if err := DecodePriceDigestDelta(payload, &d); err != nil {
					break
				}
				reenc = AppendPriceDigestDelta(nil, d.Seq, d.Shard, d.Reset, d.Links, d.Loads, d.Hdiag)
			case TypePriceSnapshotDelta:
				var d PriceSnapshotDelta
				if err := DecodePriceSnapshotDelta(payload, &d); err != nil {
					break
				}
				reenc = AppendPriceSnapshotDelta(nil, d.Epoch, d.Seq, d.Shard, d.Reset, d.Links, d.Prices)
			}
			if reenc != nil {
				orig := buf[:HeaderBytes+len(payload)]
				if !bytes.Equal(reenc, orig) {
					t.Fatalf("%s round trip differs:\n in %x\nout %x", typ, orig, reenc)
				}
			}
			buf = rest
		}
	})
}

// FuzzScanner checks the stream scanner agrees with the buffer parser on
// arbitrary input: same frame sequence, no panics.
func FuzzScanner(f *testing.F) {
	var seed []byte
	seed = AppendHello(seed, Hello{Version: Version})
	seed = AppendRateBatch(seed, 1, []RateEntry{{Flow: 1, Rate: 1e9}})
	f.Add(seed)
	f.Add([]byte{byte(TypeStep), stepLen, 0, 0, 1, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		sc := NewScanner(bytes.NewReader(data))
		buf := data
		for {
			wantType, wantPayload, rest, perr := ParseFrame(buf)
			gotType, gotPayload, serr := sc.Next()
			if perr != nil {
				if serr == nil {
					t.Fatalf("scanner produced %s where parser failed with %v", gotType, perr)
				}
				return
			}
			if serr != nil {
				t.Fatalf("scanner failed with %v where parser produced %s", serr, wantType)
			}
			if gotType != wantType || !bytes.Equal(gotPayload, wantPayload) {
				t.Fatalf("scanner %s %x != parser %s %x", gotType, gotPayload, wantType, wantPayload)
			}
			buf = rest
		}
	})
}

// rateEntryLenConsistency pins the wire-format constants: changing a layout
// without bumping Version must fail loudly.
func TestWireLayoutConstants(t *testing.T) {
	if Version != 4 {
		t.Fatalf("Version = %d; update layout pins when revving the protocol", Version)
	}
	pins := []struct {
		name string
		got  int
		want int
	}{
		{"HeaderBytes", HeaderBytes, 4},
		{"helloLen", helloLen, 10},
		{"welcomeLen", welcomeLen, 18},
		{"addLen", addLen, 24},
		{"endLen", endLen, 8},
		{"stepLen", stepLen, 8},
		{"batchHdrLen", batchHdrLen, 12},
		{"rateEntryLen", rateEntryLen, 16},
		{"epochNotifyLen", epochNotifyLen, 8},
		{"peerHelloLen", peerHelloLen, 18},
		{"digestHdrLen", digestHdrLen, 16},
		{"digestEntryLen", digestEntryLen, 20},
		{"snapHdrLen", snapHdrLen, 24},
		{"snapEntryLen", snapEntryLen, 12},
		{"ackLen", ackLen, 8},
		{"flowStateHdrLen", flowStateHdrLen, 24},
		{"flowStateEntryLen", flowStateEntryLen, 24},
		{"heartbeatLen", heartbeatLen, 12},
		{"takeoverLen", takeoverLen, 24},
		{"addSizedLen", addSizedLen, 32},
		{"rateDeltaHdrMax", rateDeltaHdrMax, 11},
		{"digestDeltaHdrMax", digestDeltaHdrMax, 16},
		{"snapDeltaHdrMax", snapDeltaHdrMax, 26},
	}
	for _, p := range pins {
		if p.got != p.want {
			t.Errorf("%s = %d; want %d (bump wire.Version when changing the layout)", p.name, p.got, p.want)
		}
	}
	// Endianness pin: Flow 1 encodes with its low byte first.
	b := AppendFlowletEnd(nil, FlowletEnd{Flow: 1})
	if b[HeaderBytes] != 1 || binary.LittleEndian.Uint64(b[HeaderBytes:]) != 1 {
		t.Errorf("FlowletEnd(1) encodes as %x; want little-endian", b)
	}
}

// Package wire defines the binary protocol spoken between Flowtune endpoints
// and the flowtuned allocator daemon.
//
// Frames are length-prefixed: a 4-byte header (type byte plus a little-endian
// uint24 payload length) followed by a fixed-layout payload. Protocol
// version 1 has six frame types: the Hello/Welcome handshake (which carries
// the allocator epoch so endpoints can detect daemon restarts), FlowletAdd
// and FlowletEnd notifications, a Step request that drives one allocator
// iteration in step-driven deterministic runs, and the RateBatch fan-out of
// rate updates.
//
// Encoders are append-style (AppendFlowletAdd et al.) and do not allocate
// once the destination buffer has grown to a steady-state size; decoders
// validate exact payload lengths and alias their input, and RateBatch
// entries decode in place. Scanner reads frames off any io.Reader reusing a
// single buffer. Every (encode, decode) pair round-trips bit-exactly,
// including NaN rate patterns — see the package fuzz test.
package wire

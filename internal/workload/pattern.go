package workload

import (
	"fmt"
	"math/rand"
)

// PatternKind selects how flowlet endpoints are chosen. The patterns mirror
// the structured datacenter workloads of the evaluation literature: uniform
// random (the paper's default), a fixed permutation, many-to-one incast, and
// an all-to-all shuffle.
type PatternKind int

const (
	// PatternUniform picks source and destination uniformly at random for
	// every flowlet (the paper's §6.2 default).
	PatternUniform PatternKind = iota
	// PatternPermutation fixes a random derangement π of the servers at
	// construction time; every flowlet from server s goes to π(s). Each
	// server link carries exactly one sending and one receiving flow
	// direction, making permutation the classic full-bisection stress test.
	PatternPermutation
	// PatternIncast makes flowlets arrive in synchronized many-to-one
	// bursts: each arrival event spawns FanIn flowlets from distinct random
	// sources to a single victim server.
	PatternIncast
	// PatternShuffle cycles deterministically through every ordered
	// (source, destination) pair, emulating the all-to-all transfer phase
	// of a MapReduce-style shuffle.
	PatternShuffle
)

// String returns the pattern name used by the scenario CLI.
func (p PatternKind) String() string {
	switch p {
	case PatternUniform:
		return "uniform"
	case PatternPermutation:
		return "permutation"
	case PatternIncast:
		return "incast"
	case PatternShuffle:
		return "shuffle"
	default:
		return fmt.Sprintf("PatternKind(%d)", int(p))
	}
}

// ParsePattern maps a pattern name ("uniform", "permutation", "incast",
// "shuffle") to its PatternKind.
func ParsePattern(s string) (PatternKind, error) {
	for _, p := range []PatternKind{PatternUniform, PatternPermutation, PatternIncast, PatternShuffle} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown traffic pattern %q", s)
}

// pairPicker chooses flowlet endpoints. next picks both endpoints of an
// open-loop arrival; destFor picks the destination for a closed-loop worker
// pinned to a source server.
type pairPicker interface {
	next(rng *rand.Rand) (src, dst int)
	destFor(rng *rand.Rand, src int) int
}

// uniformPicker draws both endpoints uniformly at random (src ≠ dst).
type uniformPicker struct{ n int }

func (u uniformPicker) next(rng *rand.Rand) (int, int) {
	src := rng.Intn(u.n)
	return src, u.destFor(rng, src)
}

func (u uniformPicker) destFor(rng *rand.Rand, src int) int {
	dst := rng.Intn(u.n - 1)
	if dst >= src {
		dst++
	}
	return dst
}

// permutationPicker sends every flowlet from s to a fixed π(s). The
// permutation is a uniformly random cycle over all servers, so it is a
// derangement for any n ≥ 2.
type permutationPicker struct{ dstOf []int }

func newPermutationPicker(n int, rng *rand.Rand) permutationPicker {
	order := rng.Perm(n)
	dstOf := make([]int, n)
	for i, s := range order {
		dstOf[s] = order[(i+1)%n]
	}
	return permutationPicker{dstOf: dstOf}
}

func (p permutationPicker) next(rng *rand.Rand) (int, int) {
	src := rng.Intn(len(p.dstOf))
	return src, p.dstOf[src]
}

func (p permutationPicker) destFor(_ *rand.Rand, src int) int { return p.dstOf[src] }

// shufflePicker walks all n(n-1) ordered pairs in a deterministic round-robin
// so every pair receives the same number of flowlets over time.
type shufflePicker struct {
	n     int
	count int64
}

func (s *shufflePicker) next(_ *rand.Rand) (int, int) {
	c := s.count
	s.count++
	src := int(c % int64(s.n))
	round := int(c / int64(s.n) % int64(s.n-1))
	dst := (src + 1 + round) % s.n
	return src, dst
}

func (s *shufflePicker) destFor(_ *rand.Rand, src int) int {
	c := s.count
	s.count++
	round := int(c % int64(s.n-1))
	return (src + 1 + round) % s.n
}

// incastSources draws fanIn distinct sources, none equal to the victim.
func incastSources(rng *rand.Rand, n, fanIn, victim int) []int {
	if fanIn > n-1 {
		fanIn = n - 1
	}
	// Partial Fisher-Yates over the server indices excluding the victim.
	pool := make([]int, 0, n-1)
	for s := 0; s < n; s++ {
		if s != victim {
			pool = append(pool, s)
		}
	}
	for i := 0; i < fanIn; i++ {
		j := i + rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return pool[:fanIn]
}

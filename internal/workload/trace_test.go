package workload

import (
	"math"
	"testing"
)

func poissonCfg(pattern PatternKind, seed int64) TraceConfig {
	return TraceConfig{
		Pattern:            pattern,
		Kind:               Web,
		NumServers:         32,
		ServerLinkCapacity: 10e9,
		Load:               0.5,
		Seed:               seed,
	}
}

func mustTrace(t *testing.T, cfg TraceConfig) *Trace {
	t.Helper()
	tr, err := NewTrace(cfg)
	if err != nil {
		t.Fatalf("NewTrace: %v", err)
	}
	return tr
}

func TestTraceSeedDeterminism(t *testing.T) {
	for _, pattern := range []PatternKind{PatternUniform, PatternPermutation, PatternIncast, PatternShuffle} {
		a := mustTrace(t, poissonCfg(pattern, 42))
		b := mustTrace(t, poissonCfg(pattern, 42))
		for i := 0; i < 1000; i++ {
			fa, _ := a.Next()
			fb, _ := b.Next()
			if fa != fb {
				t.Fatalf("%s: flow %d differs with identical seeds: %+v vs %+v", pattern, i, fa, fb)
			}
		}
		c := mustTrace(t, poissonCfg(pattern, 43))
		same := true
		for i := 0; i < 100; i++ {
			fa, _ := mustTrace(t, poissonCfg(pattern, 42)).Next()
			fc, _ := c.Next()
			if fa != fc {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical streams", pattern)
		}
	}
}

// TestPoissonInterArrivals checks that open-loop inter-arrival times are
// exponential with the configured rate: the sample mean matches 1/rate and
// the coefficient of variation is ~1.
func TestPoissonInterArrivals(t *testing.T) {
	tr := mustTrace(t, poissonCfg(PatternUniform, 7))
	rate := tr.ArrivalRate()
	if rate <= 0 {
		t.Fatalf("ArrivalRate = %g, want positive", rate)
	}
	const n = 50000
	gaps := make([]float64, 0, n)
	prev := 0.0
	for i := 0; i < n; i++ {
		f, _ := tr.Next()
		gaps = append(gaps, f.Arrival-prev)
		prev = f.Arrival
	}
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / n
	want := 1 / rate
	if mean < 0.97*want || mean > 1.03*want {
		t.Errorf("mean inter-arrival %g, want %g +-3%%", mean, want)
	}
	var ss float64
	for _, g := range gaps {
		ss += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(ss/n) / mean
	if cv < 0.95 || cv > 1.05 {
		t.Errorf("inter-arrival CV %g, want ~1 (exponential)", cv)
	}
}

// TestPoissonOfferedLoad checks the arrival rate delivers the configured load
// in expectation: rate × mean size ≈ Load × aggregate capacity.
func TestPoissonOfferedLoad(t *testing.T) {
	cfg := poissonCfg(PatternUniform, 1)
	tr := mustTrace(t, cfg)
	byteRate := tr.ArrivalRate() * tr.Config().Dist.Mean()
	want := cfg.Load * cfg.ServerLinkCapacity * float64(cfg.NumServers) / 8
	if math.Abs(byteRate-want)/want > 1e-9 {
		t.Errorf("offered byte rate %g, want %g", byteRate, want)
	}
}

func TestPermutationPattern(t *testing.T) {
	tr := mustTrace(t, poissonCfg(PatternPermutation, 3))
	n := tr.Config().NumServers
	dstOf := make(map[int]int)
	for i := 0; i < 5000; i++ {
		f, _ := tr.Next()
		if f.Src == f.Dst {
			t.Fatal("permutation produced a self-flow")
		}
		if prev, seen := dstOf[f.Src]; seen && prev != f.Dst {
			t.Fatalf("server %d sent to both %d and %d", f.Src, prev, f.Dst)
		}
		dstOf[f.Src] = f.Dst
	}
	// Every destination is distinct (the map is injective).
	seen := make(map[int]bool)
	for _, d := range dstOf {
		if seen[d] {
			t.Fatalf("two servers map to destination %d", d)
		}
		seen[d] = true
	}
	if len(dstOf) != n {
		t.Errorf("only %d of %d servers appeared as sources", len(dstOf), n)
	}
}

func TestIncastBursts(t *testing.T) {
	cfg := poissonCfg(PatternIncast, 5)
	cfg.IncastFanIn = 8
	tr := mustTrace(t, cfg)
	for burst := 0; burst < 200; burst++ {
		srcs := make(map[int]bool)
		var at float64
		var dst int
		for i := 0; i < cfg.IncastFanIn; i++ {
			f, _ := tr.Next()
			if i == 0 {
				at, dst = f.Arrival, f.Dst
			}
			if f.Arrival != at {
				t.Fatalf("burst %d: flow %d arrives at %g, want %g", burst, i, f.Arrival, at)
			}
			if f.Dst != dst {
				t.Fatalf("burst %d: mixed destinations %d and %d", burst, f.Dst, dst)
			}
			if f.Src == dst {
				t.Fatalf("burst %d: source equals victim %d", burst, dst)
			}
			if srcs[f.Src] {
				t.Fatalf("burst %d: duplicate source %d", burst, f.Src)
			}
			srcs[f.Src] = true
		}
	}
}

func TestIncastVictimRotation(t *testing.T) {
	cfg := poissonCfg(PatternIncast, 5)
	cfg.IncastFanIn = 4
	tr := mustTrace(t, cfg)
	victims := make(map[int]bool)
	for burst := 0; burst < 2*cfg.NumServers; burst++ {
		for i := 0; i < cfg.IncastFanIn; i++ {
			f, _ := tr.Next()
			victims[f.Dst] = true
		}
	}
	if len(victims) != cfg.NumServers {
		t.Fatalf("default incast hit %d distinct victims over %d bursts, want %d",
			len(victims), 2*cfg.NumServers, cfg.NumServers)
	}

	cfg.IncastTarget = 7
	tr = mustTrace(t, cfg)
	for burst := 0; burst < 20; burst++ {
		for i := 0; i < cfg.IncastFanIn; i++ {
			f, _ := tr.Next()
			if f.Dst != 7 {
				t.Fatalf("pinned incast sent burst %d to server %d, want 7", burst, f.Dst)
			}
		}
	}
}

func TestShufflePairCoverage(t *testing.T) {
	cfg := poissonCfg(PatternShuffle, 9)
	cfg.NumServers = 8
	tr := mustTrace(t, cfg)
	n := cfg.NumServers
	counts := make(map[[2]int]int)
	total := n * (n - 1) * 3
	for i := 0; i < total; i++ {
		f, _ := tr.Next()
		if f.Src == f.Dst {
			t.Fatal("shuffle produced a self-flow")
		}
		counts[[2]int{f.Src, f.Dst}]++
	}
	if len(counts) != n*(n-1) {
		t.Fatalf("covered %d pairs, want %d", len(counts), n*(n-1))
	}
	for pair, c := range counts {
		if c != 3 {
			t.Errorf("pair %v saw %d flows, want exactly 3", pair, c)
		}
	}
}

func TestClosedLoopConcurrency(t *testing.T) {
	tr := mustTrace(t, TraceConfig{
		Pattern:     PatternUniform,
		Arrival:     ArrivalClosedLoop,
		Kind:        Cache,
		NumServers:  4,
		Concurrency: 2,
		ThinkTime:   10e-6,
		Seed:        11,
	})
	// Exactly NumServers × Concurrency initial arrivals, then the trace
	// stalls until completions are reported.
	var initial []Flowlet
	for {
		f, ok := tr.Next()
		if !ok {
			break
		}
		initial = append(initial, f)
	}
	if len(initial) != 8 {
		t.Fatalf("got %d initial arrivals, want 8", len(initial))
	}
	perSrc := make(map[int]int)
	for _, f := range initial {
		perSrc[f.Src]++
	}
	for s, c := range perSrc {
		if c != 2 {
			t.Errorf("server %d has %d outstanding, want 2", s, c)
		}
	}
	tr.Complete(initial[3].ID, 1e-3)
	f, ok := tr.Next()
	if !ok {
		t.Fatal("no arrival after completion")
	}
	if f.Src != initial[3].Src {
		t.Errorf("follow-up flow from server %d, want %d (same worker)", f.Src, initial[3].Src)
	}
	if got, want := f.Arrival, 1e-3+10e-6; got != want {
		t.Errorf("follow-up arrival %g, want %g (completion + think time)", got, want)
	}
	if _, ok := tr.Next(); ok {
		t.Error("trace emitted an arrival with no pending completion")
	}
}

func TestChurnEvents(t *testing.T) {
	tr := mustTrace(t, poissonCfg(PatternUniform, 13))
	flows := tr.GenerateUntil(2e-3)
	if len(flows) == 0 {
		t.Fatal("no flows generated")
	}
	events := ChurnEvents(flows, IdealHold(10e9, 2))
	if len(events) != 2*len(flows) {
		t.Fatalf("got %d events, want %d", len(events), 2*len(flows))
	}
	active := make(map[int64]bool)
	prev := math.Inf(-1)
	for _, ev := range events {
		if ev.At < prev {
			t.Fatal("events out of order")
		}
		prev = ev.At
		switch ev.Kind {
		case FlowletAdd:
			active[ev.Flow.ID] = true
		case FlowletRemove:
			if !active[ev.Flow.ID] {
				t.Fatalf("flow %d removed before being added", ev.Flow.ID)
			}
			delete(active, ev.Flow.ID)
		}
	}
	if len(active) != 0 {
		t.Errorf("%d flows never removed", len(active))
	}
}

package workload

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParseCDFTwoColumn(t *testing.T) {
	src := `# comment line
1460 0
14600 0.5

146000 1.0
`
	d, err := ParseCDF("test", strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseCDF: %v", err)
	}
	if got := d.Quantile(0); got != 1460 {
		t.Errorf("Quantile(0) = %g, want 1460", got)
	}
	if got := d.Quantile(1); got != 146000 {
		t.Errorf("Quantile(1) = %g, want 146000", got)
	}
	if got := d.Quantile(0.5); got < 14599 || got > 14601 {
		t.Errorf("Quantile(0.5) = %g, want ~14600", got)
	}
}

func TestParseCDFThreeColumnAndImplicitZero(t *testing.T) {
	// ns-2 style: <bytes> <id> <cdf>, first probability above zero.
	src := "1460 1 0.3\n14600 2 1\n"
	d, err := ParseCDF("ns2", strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseCDF: %v", err)
	}
	// The zero-probability point is prepended at the smallest size.
	if got := d.Quantile(0.1); got != 1460 {
		t.Errorf("Quantile(0.1) = %g, want 1460", got)
	}
}

func TestParseCDFErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"not ending at 1":  "100 0\n200 0.5\n",
		"bad column count": "100\n",
		"bad probability":  "100 1.5\n",
		"bad size":         "abc 1\n",
		"trailing garbage": "1460x 0.5\n2000 1\n",
		"glued columns":    "1e44.5 0.9\n2000 1\n",
	}
	for name, src := range cases {
		if _, err := ParseCDF(name, strings.NewReader(src)); err == nil {
			t.Errorf("%s: ParseCDF accepted %q", name, src)
		}
	}
}

// TestBuiltinDistSanity checks mean/percentile invariants of every built-in
// distribution: quantiles are monotone, span the table, and the analytic mean
// matches the empirical mean of a large sample.
func TestBuiltinDistSanity(t *testing.T) {
	for _, kind := range []Kind{Web, Cache, Hadoop, WebSearch, DataMining} {
		d := NewSizeDist(kind)
		min, max := d.Quantile(0), d.Quantile(1)
		if min <= 0 || max <= min {
			t.Fatalf("%s: degenerate quantile range [%g, %g]", kind, min, max)
		}
		prev := 0.0
		for u := 0.0; u <= 1.0; u += 0.01 {
			q := d.Quantile(u)
			if q < prev {
				t.Fatalf("%s: quantile not monotone at u=%.2f: %g < %g", kind, u, q, prev)
			}
			prev = q
		}
		mean := d.Mean()
		if mean < min || mean > max {
			t.Fatalf("%s: mean %g outside [%g, %g]", kind, mean, min, max)
		}
		rng := rand.New(rand.NewSource(1))
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(d.Sample(rng))
		}
		got := sum / n
		if got < 0.9*mean || got > 1.1*mean {
			t.Errorf("%s: sample mean %g deviates from analytic mean %g by more than 10%%", kind, got, mean)
		}
	}
}

func TestDistributionShapes(t *testing.T) {
	// Over half of data-mining flows fit in one packet; web-search flows
	// start at one MSS and reach the megabyte range.
	dm := NewSizeDist(DataMining)
	if p50 := dm.Quantile(0.5); p50 > 1460 {
		t.Errorf("datamining p50 = %g, want <= 1460", p50)
	}
	ws := NewSizeDist(WebSearch)
	if p99 := ws.Quantile(0.99); p99 < 1e6 {
		t.Errorf("websearch p99 = %g, want >= 1 MB", p99)
	}
	if ws.Mean() <= NewSizeDist(Web).Mean() {
		t.Errorf("websearch mean %g should exceed facebook web mean %g", ws.Mean(), NewSizeDist(Web).Mean())
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range []Kind{Web, Cache, Hadoop, WebSearch, DataMining} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind accepted unknown name")
	}
}

package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// The two trace-derived distributions below are the standard datacenter
// workloads of the flow-scheduling literature, used alongside the Facebook
// workloads for scenario runs:
//
//   - WebSearch is modelled after the web-search cluster measurements of the
//     DCTCP paper (Alizadeh et al., SIGCOMM 2010): a mix of short queries and
//     multi-megabyte background transfers.
//   - DataMining is modelled after the data-mining cluster measurements of
//     VL2 (Greenberg et al., SIGCOMM 2009): over half the flows fit in a
//     single packet while most bytes travel in flows of 100 MB and more.
//
// Both tables are expressed in bytes, with sizes quantized to 1460-byte MSS
// multiples as in the published CDFs.

// webSearchCDF is the DCTCP web-search flow-size CDF.
var webSearchCDF = []cdfPoint{
	{Bytes: 1460, Prob: 0},
	{Bytes: 1460, Prob: 0.15},
	{Bytes: 2920, Prob: 0.20},
	{Bytes: 4380, Prob: 0.30},
	{Bytes: 7300, Prob: 0.40},
	{Bytes: 10220, Prob: 0.53},
	{Bytes: 58400, Prob: 0.60},
	{Bytes: 105120, Prob: 0.70},
	{Bytes: 200020, Prob: 0.80},
	{Bytes: 389820, Prob: 0.90},
	{Bytes: 1733020, Prob: 0.95},
	{Bytes: 3076220, Prob: 0.98},
	{Bytes: 8760000, Prob: 1.0},
}

// dataMiningCDF is the VL2 data-mining flow-size CDF.
var dataMiningCDF = []cdfPoint{
	{Bytes: 100, Prob: 0},
	{Bytes: 1460, Prob: 0.50},
	{Bytes: 2920, Prob: 0.60},
	{Bytes: 4380, Prob: 0.70},
	{Bytes: 10220, Prob: 0.80},
	{Bytes: 389820, Prob: 0.90},
	{Bytes: 3076220, Prob: 0.95},
	{Bytes: 97333000, Prob: 0.99},
	{Bytes: 973330000, Prob: 1.0},
}

// ParseCDF reads an empirical flow-size CDF from r and returns a sampler for
// it. The format is the one used by the classic simulator trace files: one
// point per line, either
//
//	<bytes> <cumulative-probability>
//
// or the three-column ns-2 form
//
//	<bytes> <id> <cumulative-probability>
//
// where the middle column is ignored. Blank lines and lines starting with '#'
// are skipped. Probabilities must be non-decreasing and end at 1; if the
// first point has a probability above zero, a zero-probability point at the
// same size is prepended so the CDF spans [0, 1].
func ParseCDF(name string, r io.Reader) (*EmpiricalDist, error) {
	var points []cdfPoint
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		var bytesField, probField string
		switch len(fields) {
		case 2:
			bytesField, probField = fields[0], fields[1]
		case 3:
			bytesField, probField = fields[0], fields[2]
		default:
			return nil, fmt.Errorf("workload: %s:%d: want 2 or 3 columns, got %d", name, lineNo, len(fields))
		}
		size, err := strconv.ParseFloat(bytesField, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: %s:%d: bad size %q: %v", name, lineNo, bytesField, err)
		}
		prob, err := strconv.ParseFloat(probField, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: %s:%d: bad probability %q: %v", name, lineNo, probField, err)
		}
		if prob < 0 || prob > 1 {
			return nil, fmt.Errorf("workload: %s:%d: probability %g outside [0,1]", name, lineNo, prob)
		}
		points = append(points, cdfPoint{Bytes: size, Prob: prob})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading %s: %w", name, err)
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("workload: %s: no CDF points", name)
	}
	if points[0].Prob > 0 {
		points = append([]cdfPoint{{Bytes: points[0].Bytes, Prob: 0}}, points...)
	}
	last := &points[len(points)-1]
	if math.Abs(last.Prob-1) > 1e-9 {
		return nil, fmt.Errorf("workload: %s: CDF ends at probability %g, want 1", name, last.Prob)
	}
	last.Prob = 1
	return NewEmpirical(name, points)
}

// LoadCDFFile reads an empirical flow-size CDF from a file (see ParseCDF for
// the accepted format). The distribution is named after the file's base name.
func LoadCDFFile(path string) (*EmpiricalDist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return ParseCDF(base, f)
}

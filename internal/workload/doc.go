// Package workload generates the trace-driven flowlet workloads of
// Flowtune's evaluation and of the broader flow-scheduling literature. A
// workload is the product of three independent choices, combined by Trace:
//
//   - A flow-size distribution: the paper's Facebook Web/Cache/Hadoop
//     workloads (§6.2), the DCTCP web-search and VL2 data-mining CDFs, or a
//     user-supplied CDF file parsed with ParseCDF/LoadCDFFile.
//   - An arrival process: open-loop Poisson arrivals whose rate is set so
//     offered bytes equal a target fraction of aggregate server capacity, or
//     closed-loop arrivals that keep a fixed number of flowlets outstanding
//     per server and react to completion feedback (Trace.Complete).
//   - A traffic pattern: uniform random endpoints, a fixed permutation,
//     synchronized many-to-one incast bursts, or an all-to-all shuffle.
//
// All randomness flows from one seeded deterministic RNG, so identical
// configurations produce identical flowlet streams — the foundation of the
// reproducible BENCH_*.json results emitted by cmd/flowtune-bench. ChurnEvents
// converts a trace into an explicit add/remove event stream for
// allocator-only churn runs. The legacy Generator type is the paper's
// original uniform-Poisson generator and remains for the figure experiments.
package workload

package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	for _, tc := range []struct {
		kind Kind
		want string
	}{{Web, "web"}, {Cache, "cache"}, {Hadoop, "hadoop"}} {
		if got := tc.kind.String(); got != tc.want {
			t.Errorf("%v.String() = %q, want %q", tc.kind, got, tc.want)
		}
	}
}

func TestNewEmpiricalValidation(t *testing.T) {
	cases := []struct {
		name string
		pts  []cdfPoint
	}{
		{"too few", []cdfPoint{{Bytes: 1, Prob: 0}}},
		{"no zero start", []cdfPoint{{Bytes: 1, Prob: 0.5}, {Bytes: 2, Prob: 1}}},
		{"no one end", []cdfPoint{{Bytes: 1, Prob: 0}, {Bytes: 2, Prob: 0.9}}},
		{"non-positive size", []cdfPoint{{Bytes: 0, Prob: 0}, {Bytes: 2, Prob: 1}}},
		{"decreasing prob", []cdfPoint{{Bytes: 1, Prob: 0}, {Bytes: 2, Prob: 0.7}, {Bytes: 3, Prob: 0.5}, {Bytes: 4, Prob: 1}}},
		{"decreasing size", []cdfPoint{{Bytes: 10, Prob: 0}, {Bytes: 5, Prob: 0.5}, {Bytes: 20, Prob: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewEmpirical("bad", tc.pts); err == nil {
				t.Error("invalid CDF accepted")
			}
		})
	}
	if _, err := NewEmpirical("ok", []cdfPoint{{Bytes: 100, Prob: 0}, {Bytes: 1000, Prob: 1}}); err != nil {
		t.Errorf("valid CDF rejected: %v", err)
	}
}

func TestSizeDistMeansOrdering(t *testing.T) {
	web := NewSizeDist(Web)
	cache := NewSizeDist(Cache)
	hadoop := NewSizeDist(Hadoop)
	// The paper: Web has the smallest mean flow size, Hadoop the largest.
	if !(web.Mean() < cache.Mean() && cache.Mean() < hadoop.Mean()) {
		t.Errorf("mean ordering wrong: web=%.0f cache=%.0f hadoop=%.0f", web.Mean(), cache.Mean(), hadoop.Mean())
	}
}

func TestWebMostlySmallFlows(t *testing.T) {
	// "the majority of flows are under 10 packets" — check the Web CDF.
	web := NewSizeDist(Web)
	if q := web.Quantile(0.5); q > 10*PacketSize {
		t.Errorf("web median %g bytes should be under 10 packets", q)
	}
}

func TestQuantileMonotone(t *testing.T) {
	for _, kind := range []Kind{Web, Cache, Hadoop} {
		d := NewSizeDist(kind)
		prev := 0.0
		for u := 0.0; u <= 1.0; u += 0.01 {
			q := d.Quantile(u)
			if q < prev {
				t.Fatalf("%v quantile not monotone at u=%.2f: %g < %g", kind, u, q, prev)
			}
			prev = q
		}
	}
}

func TestSampleWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, kind := range []Kind{Web, Cache, Hadoop} {
		d := NewSizeDist(kind)
		lo := d.Quantile(0)
		hi := d.Quantile(1)
		for i := 0; i < 10000; i++ {
			s := float64(d.Sample(rng))
			if s < 64 || s < lo*0.99 || s > hi*1.01 {
				t.Fatalf("%v sample %g outside [%g,%g]", kind, s, lo, hi)
			}
		}
	}
}

func TestSampleMeanMatchesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := NewSizeDist(Web)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(rng))
	}
	empirical := sum / n
	if math.Abs(empirical-d.Mean())/d.Mean() > 0.05 {
		t.Errorf("sample mean %.0f deviates more than 5%% from analytic mean %.0f", empirical, d.Mean())
	}
}

func TestGeneratorConfigValidation(t *testing.T) {
	base := GeneratorConfig{Kind: Web, NumServers: 16, ServerLinkCapacity: 10e9, Load: 0.5}
	cases := []struct {
		name   string
		mutate func(*GeneratorConfig)
	}{
		{"one server", func(c *GeneratorConfig) { c.NumServers = 1 }},
		{"zero capacity", func(c *GeneratorConfig) { c.ServerLinkCapacity = 0 }},
		{"zero load", func(c *GeneratorConfig) { c.Load = 0 }},
		{"load above one", func(c *GeneratorConfig) { c.Load = 1.5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := NewGenerator(cfg); err == nil {
				t.Error("invalid generator config accepted")
			}
		})
	}
	if _, err := NewGenerator(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestGeneratorArrivalRateMatchesLoad(t *testing.T) {
	cfg := GeneratorConfig{Kind: Web, NumServers: 100, ServerLinkCapacity: 10e9, Load: 0.8, Seed: 3}
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// offered bytes/s = rate × mean size; offered load = offered bits /
	// (servers × capacity) should equal Load.
	offered := g.ArrivalRate() * g.MeanSize() * 8
	load := offered / (float64(cfg.NumServers) * cfg.ServerLinkCapacity)
	if math.Abs(load-cfg.Load) > 1e-9 {
		t.Errorf("implied load %g, want %g", load, cfg.Load)
	}
}

func TestGeneratorFlowletsSortedAndValid(t *testing.T) {
	g, err := NewGenerator(GeneratorConfig{Kind: Cache, NumServers: 32, ServerLinkCapacity: 10e9, Load: 0.6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	flows := g.GenerateN(5000)
	prev := 0.0
	seen := make(map[int64]bool)
	for _, f := range flows {
		if f.Arrival < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = f.Arrival
		if f.Src == f.Dst {
			t.Fatal("flowlet with identical src and dst")
		}
		if f.Src < 0 || f.Src >= 32 || f.Dst < 0 || f.Dst >= 32 {
			t.Fatalf("endpoint out of range: %+v", f)
		}
		if f.SizeBytes < 64 {
			t.Fatalf("flowlet too small: %+v", f)
		}
		if seen[f.ID] {
			t.Fatalf("duplicate flowlet ID %d", f.ID)
		}
		seen[f.ID] = true
	}
}

func TestGenerateUntilHorizon(t *testing.T) {
	g, err := NewGenerator(GeneratorConfig{Kind: Web, NumServers: 64, ServerLinkCapacity: 10e9, Load: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 1e-3
	flows := g.GenerateUntil(horizon)
	if len(flows) == 0 {
		t.Fatal("no flowlets generated in 1 ms at load 0.5")
	}
	for _, f := range flows {
		if f.Arrival >= horizon {
			t.Fatalf("flowlet at %g beyond horizon %g", f.Arrival, horizon)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	mk := func() []Flowlet {
		g, err := NewGenerator(GeneratorConfig{Kind: Web, NumServers: 16, ServerLinkCapacity: 10e9, Load: 0.4, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return g.GenerateN(100)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generator not deterministic at flowlet %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestBucketLabel(t *testing.T) {
	cases := []struct {
		bytes int64
		want  string
	}{
		{1, "1 packet"},
		{1500, "1 packet"},
		{1501, "1-10 packets"},
		{15000, "1-10 packets"},
		{15001, "10-100 packets"},
		{150000, "10-100 packets"},
		{150001, "100-1000 packets"},
		{1500000, "100-1000 packets"},
		{1500001, "large"},
		{1 << 30, "large"},
	}
	for _, tc := range cases {
		if got := BucketLabel(tc.bytes); got != tc.want {
			t.Errorf("BucketLabel(%d) = %q, want %q", tc.bytes, got, tc.want)
		}
	}
	if len(Buckets()) != 5 {
		t.Errorf("Buckets() should list 5 buckets")
	}
}

func TestSizePackets(t *testing.T) {
	for _, tc := range []struct {
		bytes int64
		want  int
	}{{1, 1}, {1500, 1}, {1501, 2}, {3000, 2}, {0, 1}} {
		f := Flowlet{SizeBytes: tc.bytes}
		if got := f.SizePackets(); got != tc.want {
			t.Errorf("SizePackets(%d) = %d, want %d", tc.bytes, got, tc.want)
		}
	}
}

// TestBucketLabelProperty: the bucket label is consistent with SizePackets.
func TestBucketLabelProperty(t *testing.T) {
	prop := func(raw uint32) bool {
		bytes := int64(raw%(3<<20)) + 1
		packets := (bytes + PacketSize - 1) / PacketSize
		label := BucketLabel(bytes)
		switch {
		case packets <= 1:
			return label == "1 packet"
		case packets <= 10:
			return label == "1-10 packets"
		case packets <= 100:
			return label == "10-100 packets"
		case packets <= 1000:
			return label == "100-1000 packets"
		default:
			return label == "large"
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

package workload

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// ArrivalKind selects the arrival process of a Trace.
type ArrivalKind int

const (
	// ArrivalPoisson is the open-loop process of the paper's evaluation:
	// flowlets arrive as a Poisson stream whose rate is set so the offered
	// bytes equal Load × aggregate server capacity, regardless of how fast
	// the network drains them.
	ArrivalPoisson ArrivalKind = iota
	// ArrivalClosedLoop keeps a fixed number of outstanding flowlets per
	// server: a worker issues its next flowlet ThinkTime seconds after the
	// previous one completes. The offered load adapts to network speed, so
	// a closed-loop trace needs completion feedback via Trace.Complete.
	ArrivalClosedLoop
)

// String returns the arrival-process name used by the scenario CLI.
func (a ArrivalKind) String() string {
	switch a {
	case ArrivalPoisson:
		return "poisson"
	case ArrivalClosedLoop:
		return "closedloop"
	default:
		return fmt.Sprintf("ArrivalKind(%d)", int(a))
	}
}

// ParseArrival maps an arrival-process name ("poisson", "closedloop") to its
// ArrivalKind.
func ParseArrival(s string) (ArrivalKind, error) {
	for _, a := range []ArrivalKind{ArrivalPoisson, ArrivalClosedLoop} {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown arrival process %q", s)
}

// TraceConfig configures a Trace: a deterministic, seeded stream of flowlets
// combining a size distribution, an arrival process, and a traffic pattern.
type TraceConfig struct {
	// Pattern selects how endpoints are chosen (default PatternUniform).
	Pattern PatternKind
	// Arrival selects the arrival process (default ArrivalPoisson).
	Arrival ArrivalKind
	// Kind selects a built-in size distribution; ignored when Dist is set.
	Kind Kind
	// Dist overrides the size distribution, e.g. one parsed from a CDF
	// file with ParseCDF or LoadCDFFile.
	Dist SizeDist
	// NumServers is the number of servers traffic is spread across.
	NumServers int
	// ServerLinkCapacity is the capacity of each server link in bits/s.
	ServerLinkCapacity float64
	// Load is the open-loop offered load in (0, 1]: the Poisson rate is
	// set so offered bytes equal Load × NumServers × ServerLinkCapacity.
	// Ignored by closed-loop traces.
	Load float64
	// Seed seeds the deterministic random source. Identical configurations
	// produce identical flowlet streams.
	Seed int64
	// IncastFanIn is the number of concurrent sources per incast burst
	// (default 16). Only used by PatternIncast.
	IncastFanIn int
	// IncastTarget, when positive, pins every incast burst to that victim
	// server; the default (0 or negative) rotates the victim round-robin
	// across servers so load stays balanced.
	IncastTarget int
	// Concurrency is the number of outstanding flowlets per server under
	// ArrivalClosedLoop (default 1).
	Concurrency int
	// ThinkTime is the closed-loop delay in seconds between a flowlet's
	// completion and the worker's next arrival (default 0).
	ThinkTime float64
}

// withDefaults fills unset fields and validates the configuration.
func (c TraceConfig) withDefaults() (TraceConfig, error) {
	if c.NumServers < 2 {
		return c, fmt.Errorf("workload: need at least 2 servers, got %d", c.NumServers)
	}
	if c.Dist == nil {
		c.Dist = NewSizeDist(c.Kind)
	}
	if c.Pattern == PatternIncast {
		if c.IncastFanIn == 0 {
			c.IncastFanIn = 16
		}
		if c.IncastFanIn < 1 || c.IncastFanIn > c.NumServers-1 {
			return c, fmt.Errorf("workload: IncastFanIn must be in [1,%d], got %d", c.NumServers-1, c.IncastFanIn)
		}
		if c.IncastTarget >= c.NumServers {
			return c, fmt.Errorf("workload: IncastTarget %d out of range (have %d servers)", c.IncastTarget, c.NumServers)
		}
		if c.IncastTarget == 0 {
			c.IncastTarget = -1
		}
	}
	if c.Concurrency == 0 {
		c.Concurrency = 1
	}
	if c.Concurrency < 0 {
		return c, fmt.Errorf("workload: Concurrency must be positive, got %d", c.Concurrency)
	}
	if c.ThinkTime < 0 {
		return c, fmt.Errorf("workload: ThinkTime must be non-negative, got %g", c.ThinkTime)
	}
	switch c.Arrival {
	case ArrivalPoisson:
		if c.Load <= 0 || c.Load > 1 {
			return c, fmt.Errorf("workload: Load must be in (0,1], got %g", c.Load)
		}
		if c.ServerLinkCapacity <= 0 {
			return c, fmt.Errorf("workload: ServerLinkCapacity must be positive, got %g", c.ServerLinkCapacity)
		}
	case ArrivalClosedLoop:
		if c.Pattern == PatternIncast {
			return c, fmt.Errorf("workload: closed-loop incast is not supported; use ArrivalPoisson")
		}
	default:
		return c, fmt.Errorf("workload: unknown arrival kind %d", int(c.Arrival))
	}
	return c, nil
}

// pendingFlow is one scheduled closed-loop arrival.
type pendingFlow struct {
	at     float64
	worker int
}

// pendingHeap orders pending arrivals by time (worker index breaks ties so
// the stream is deterministic).
type pendingHeap []pendingFlow

func (h pendingHeap) Len() int { return len(h) }
func (h pendingHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].worker < h[j].worker
}
func (h pendingHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pendingHeap) Push(x interface{}) { *h = append(*h, x.(pendingFlow)) }
func (h *pendingHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Trace is a deterministic flowlet stream: a size distribution, an arrival
// process, and a traffic pattern driven by one seeded RNG. Open-loop traces
// are infinite; closed-loop traces emit new arrivals only as completions are
// reported via Complete.
type Trace struct {
	cfg    TraceConfig
	rng    *rand.Rand
	picker pairPicker

	// Open-loop state.
	burstRate float64 // burst arrivals per second (a burst is 1 flowlet, or FanIn for incast)
	nextAt    float64
	burst     []Flowlet // generated flowlets not yet handed out
	victim    int       // next incast victim for rotating targets

	// Closed-loop state.
	pending pendingHeap
	ownerOf map[int64]int // flow ID -> worker

	count int64
}

// NewTrace creates a flowlet trace.
func NewTrace(cfg TraceConfig) (*Trace, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	t := &Trace{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	switch cfg.Pattern {
	case PatternUniform, PatternIncast:
		t.picker = uniformPicker{n: cfg.NumServers}
	case PatternPermutation:
		t.picker = newPermutationPicker(cfg.NumServers, t.rng)
	case PatternShuffle:
		t.picker = &shufflePicker{n: cfg.NumServers}
	default:
		return nil, fmt.Errorf("workload: unknown pattern kind %d", int(cfg.Pattern))
	}
	switch cfg.Arrival {
	case ArrivalPoisson:
		byteRate := cfg.Load * cfg.ServerLinkCapacity * float64(cfg.NumServers) / 8
		flowRate := byteRate / cfg.Dist.Mean()
		fanIn := 1
		if cfg.Pattern == PatternIncast {
			fanIn = cfg.IncastFanIn
		}
		t.burstRate = flowRate / float64(fanIn)
		t.nextAt = t.rng.ExpFloat64() / t.burstRate
	case ArrivalClosedLoop:
		t.ownerOf = make(map[int64]int)
		workers := cfg.NumServers * cfg.Concurrency
		for w := 0; w < workers; w++ {
			heap.Push(&t.pending, pendingFlow{at: 0, worker: w})
		}
	}
	return t, nil
}

// Config returns the validated configuration the trace was built from.
func (t *Trace) Config() TraceConfig { return t.cfg }

// ArrivalRate returns the aggregate open-loop flowlet arrival rate in
// flowlets per second (0 for closed-loop traces, whose rate is emergent).
func (t *Trace) ArrivalRate() float64 {
	fanIn := 1.0
	if t.cfg.Pattern == PatternIncast {
		fanIn = float64(t.cfg.IncastFanIn)
	}
	return t.burstRate * fanIn
}

// Next returns the next flowlet in arrival order. ok is false when the trace
// has no arrival ready: that never happens for open-loop traces, and for
// closed-loop traces it means every worker is waiting on a completion.
func (t *Trace) Next() (f Flowlet, ok bool) {
	if t.cfg.Arrival == ArrivalClosedLoop {
		if len(t.pending) == 0 {
			return Flowlet{}, false
		}
		p := heap.Pop(&t.pending).(pendingFlow)
		src := p.worker % t.cfg.NumServers
		f = Flowlet{
			ID:        t.count,
			Arrival:   p.at,
			Src:       src,
			Dst:       t.picker.destFor(t.rng, src),
			SizeBytes: t.cfg.Dist.Sample(t.rng),
		}
		t.count++
		t.ownerOf[f.ID] = p.worker
		return f, true
	}
	if len(t.burst) == 0 {
		t.generateBurst()
	}
	f = t.burst[0]
	t.burst = t.burst[1:]
	return f, true
}

// generateBurst produces the flowlets of the next open-loop arrival event:
// one flowlet for most patterns, FanIn flowlets for incast.
func (t *Trace) generateBurst() {
	at := t.nextAt
	t.nextAt += t.rng.ExpFloat64() / t.burstRate
	if t.cfg.Pattern != PatternIncast {
		src, dst := t.picker.next(t.rng)
		t.burst = append(t.burst, Flowlet{
			ID:        t.count,
			Arrival:   at,
			Src:       src,
			Dst:       dst,
			SizeBytes: t.cfg.Dist.Sample(t.rng),
		})
		t.count++
		return
	}
	victim := t.cfg.IncastTarget
	if victim < 0 {
		victim = t.victim
		t.victim = (t.victim + 1) % t.cfg.NumServers
	}
	for _, src := range incastSources(t.rng, t.cfg.NumServers, t.cfg.IncastFanIn, victim) {
		t.burst = append(t.burst, Flowlet{
			ID:        t.count,
			Arrival:   at,
			Src:       src,
			Dst:       victim,
			SizeBytes: t.cfg.Dist.Sample(t.rng),
		})
		t.count++
	}
}

// Complete reports that a flowlet finished at the given time. For closed-loop
// traces this schedules the owning worker's next arrival at at + ThinkTime;
// for open-loop traces it is a no-op.
func (t *Trace) Complete(id int64, at float64) {
	if t.cfg.Arrival != ArrivalClosedLoop {
		return
	}
	w, ok := t.ownerOf[id]
	if !ok {
		return
	}
	delete(t.ownerOf, id)
	heap.Push(&t.pending, pendingFlow{at: at + t.cfg.ThinkTime, worker: w})
}

// NextBefore returns the next flowlet if it arrives strictly before the
// horizon.
func (t *Trace) NextBefore(horizon float64) (Flowlet, bool) {
	if t.cfg.Arrival == ArrivalClosedLoop {
		if len(t.pending) == 0 || t.pending[0].at >= horizon {
			return Flowlet{}, false
		}
		return t.Next()
	}
	if len(t.burst) == 0 && t.nextAt >= horizon {
		return Flowlet{}, false
	}
	f, ok := t.Next()
	if !ok || f.Arrival >= horizon {
		// Flowlets of one incast burst share an arrival time, so a burst
		// straddling the horizon cannot happen; this is purely defensive.
		return Flowlet{}, false
	}
	return f, ok
}

// GenerateUntil returns all flowlets arriving before the horizon. For
// closed-loop traces this returns only the initial window of arrivals that
// exist without completion feedback.
func (t *Trace) GenerateUntil(horizon float64) []Flowlet {
	var out []Flowlet
	for {
		f, ok := t.NextBefore(horizon)
		if !ok {
			return out
		}
		out = append(out, f)
	}
}

// ---------------------------------------------------------------------------
// Churn streams

// EventKind distinguishes flowlet churn events.
type EventKind uint8

const (
	// FlowletAdd announces a flowlet to the allocator.
	FlowletAdd EventKind = iota
	// FlowletRemove retires a flowlet from the allocator.
	FlowletRemove
)

// String returns "add" or "remove".
func (k EventKind) String() string {
	if k == FlowletAdd {
		return "add"
	}
	return "remove"
}

// Event is one add/remove churn event presented to an allocator.
type Event struct {
	// At is the event time in seconds.
	At float64
	// Kind says whether the flowlet starts or ends.
	Kind EventKind
	// Flow is the flowlet being added or removed.
	Flow Flowlet
}

// ChurnEvents expands a flowlet trace into a time-ordered add/remove event
// stream, with each flowlet removed hold(f) seconds after it arrives. It is
// the input for allocator-only churn runs, where no packet simulation exists
// to decide completions. Ties are broken add-before-remove, then by flow ID,
// so the stream is deterministic.
func ChurnEvents(flows []Flowlet, hold func(Flowlet) float64) []Event {
	events := make([]Event, 0, 2*len(flows))
	for _, f := range flows {
		events = append(events, Event{At: f.Arrival, Kind: FlowletAdd, Flow: f})
		events = append(events, Event{At: f.Arrival + hold(f), Kind: FlowletRemove, Flow: f})
	}
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Flow.ID < b.Flow.ID
	})
	return events
}

// IdealHold returns a hold-time model for ChurnEvents: each flowlet stays
// active for its ideal serialization time at linkRate bits/s, multiplied by
// slowdown (use slowdown > 1 to emulate a loaded network).
func IdealHold(linkRate, slowdown float64) func(Flowlet) float64 {
	if slowdown <= 0 {
		slowdown = 1
	}
	return func(f Flowlet) float64 {
		return slowdown * float64(f.SizeBytes*8) / linkRate
	}
}

package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Kind selects one of the three Facebook workloads from the paper.
type Kind int

const (
	// Web is the web-server workload: dominated by very small flows, with
	// the highest rate of flowlet arrivals. It stresses Flowtune the most
	// and is the paper's default.
	Web Kind = iota
	// Cache is the cache-follower workload: small-to-medium flows with a
	// heavier tail than Web.
	Cache
	// Hadoop is the Hadoop workload: larger flows and the lowest arrival
	// rate for a given load.
	Hadoop
	// WebSearch is the DCTCP web-search workload (Alizadeh et al., SIGCOMM
	// 2010), the standard heavy-short-query distribution of the
	// flow-scheduling literature.
	WebSearch
	// DataMining is the VL2 data-mining workload (Greenberg et al., SIGCOMM
	// 2009): over half the flows are a single packet, but most bytes travel
	// in flows of 100 MB and more.
	DataMining
)

// String returns the lowercase workload name used in the paper's figures.
func (k Kind) String() string {
	switch k {
	case Web:
		return "web"
	case Cache:
		return "cache"
	case Hadoop:
		return "hadoop"
	case WebSearch:
		return "websearch"
	case DataMining:
		return "datamining"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps a workload name ("web", "cache", "hadoop", "websearch",
// "datamining") to its Kind.
func ParseKind(s string) (Kind, error) {
	for _, k := range []Kind{Web, Cache, Hadoop, WebSearch, DataMining} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown workload kind %q", s)
}

// PacketSize is the MTU-sized packet used to convert between bytes and
// packets in the evaluation (1500-byte Ethernet frames).
const PacketSize = 1500

// SizeDist is a flow/flowlet size distribution in bytes.
type SizeDist interface {
	// Sample draws a flowlet size in bytes.
	Sample(rng *rand.Rand) int64
	// Mean returns the distribution's mean size in bytes.
	Mean() float64
	// Name returns a short identifier for reports.
	Name() string
}

// cdfPoint is one point of an empirical CDF: Prob of the size being <= Bytes.
type cdfPoint struct {
	Bytes float64
	Prob  float64
}

// EmpiricalDist is a piecewise log-linear empirical size distribution,
// interpolated between CDF points in log-size space.
type EmpiricalDist struct {
	name   string
	points []cdfPoint
	mean   float64
}

// NewEmpirical builds an empirical distribution from CDF points. Points must
// be sorted by probability, start at probability 0 and end at probability 1,
// with strictly positive sizes.
func NewEmpirical(name string, points []cdfPoint) (*EmpiricalDist, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("workload: need at least 2 CDF points, got %d", len(points))
	}
	if points[0].Prob != 0 || points[len(points)-1].Prob != 1 {
		return nil, fmt.Errorf("workload: CDF must span probability [0,1]")
	}
	for i, p := range points {
		if p.Bytes <= 0 {
			return nil, fmt.Errorf("workload: CDF point %d has non-positive size %g", i, p.Bytes)
		}
		if i > 0 && (p.Prob < points[i-1].Prob || p.Bytes < points[i-1].Bytes) {
			return nil, fmt.Errorf("workload: CDF points must be non-decreasing (point %d)", i)
		}
	}
	d := &EmpiricalDist{name: name, points: points}
	d.mean = d.computeMean()
	return d, nil
}

// computeMean numerically integrates the inverse CDF.
func (d *EmpiricalDist) computeMean() float64 {
	const steps = 100000
	sum := 0.0
	for i := 0; i < steps; i++ {
		u := (float64(i) + 0.5) / steps
		sum += d.quantile(u)
	}
	return sum / steps
}

// quantile returns the size at probability u using log-linear interpolation.
func (d *EmpiricalDist) quantile(u float64) float64 {
	pts := d.points
	if u <= pts[0].Prob {
		return pts[0].Bytes
	}
	if u >= pts[len(pts)-1].Prob {
		return pts[len(pts)-1].Bytes
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Prob >= u })
	lo, hi := pts[i-1], pts[i]
	if hi.Prob == lo.Prob {
		return hi.Bytes
	}
	frac := (u - lo.Prob) / (hi.Prob - lo.Prob)
	logSize := math.Log(lo.Bytes) + frac*(math.Log(hi.Bytes)-math.Log(lo.Bytes))
	return math.Exp(logSize)
}

// Sample draws a flowlet size in bytes (at least 64 bytes).
func (d *EmpiricalDist) Sample(rng *rand.Rand) int64 {
	size := int64(math.Round(d.quantile(rng.Float64())))
	if size < 64 {
		size = 64
	}
	return size
}

// Quantile exposes the inverse CDF for tests and reporting.
func (d *EmpiricalDist) Quantile(u float64) float64 { return d.quantile(u) }

// Mean returns the mean flowlet size in bytes.
func (d *EmpiricalDist) Mean() float64 { return d.mean }

// Name returns the distribution name.
func (d *EmpiricalDist) Name() string { return d.name }

// NewSizeDist returns the empirical flowlet-size distribution for a workload
// kind. The CDFs are modelled after the published Facebook datacenter
// measurements (Roy et al., SIGCOMM 2015) referenced by the paper: Web is
// dominated by sub-10-packet flows, Cache has a mid-size body with a heavy
// tail, and Hadoop has the largest flows.
func NewSizeDist(kind Kind) *EmpiricalDist {
	var pts []cdfPoint
	switch kind {
	case Web:
		pts = []cdfPoint{
			{Bytes: 100, Prob: 0},
			{Bytes: 300, Prob: 0.30},
			{Bytes: 1e3, Prob: 0.55},
			{Bytes: 3e3, Prob: 0.70},
			{Bytes: 1e4, Prob: 0.80},
			{Bytes: 5e4, Prob: 0.90},
			{Bytes: 2e5, Prob: 0.96},
			{Bytes: 1e6, Prob: 0.99},
			{Bytes: 1e7, Prob: 1.0},
		}
	case Cache:
		pts = []cdfPoint{
			{Bytes: 100, Prob: 0},
			{Bytes: 500, Prob: 0.20},
			{Bytes: 2e3, Prob: 0.45},
			{Bytes: 1e4, Prob: 0.65},
			{Bytes: 7e4, Prob: 0.80},
			{Bytes: 4e5, Prob: 0.92},
			{Bytes: 2e6, Prob: 0.98},
			{Bytes: 3e7, Prob: 1.0},
		}
	case Hadoop:
		pts = []cdfPoint{
			{Bytes: 300, Prob: 0},
			{Bytes: 1e3, Prob: 0.10},
			{Bytes: 1e4, Prob: 0.30},
			{Bytes: 1e5, Prob: 0.55},
			{Bytes: 1e6, Prob: 0.80},
			{Bytes: 1e7, Prob: 0.95},
			{Bytes: 1e8, Prob: 1.0},
		}
	case WebSearch:
		pts = webSearchCDF
	case DataMining:
		pts = dataMiningCDF
	default:
		panic(fmt.Sprintf("workload: unknown kind %d", int(kind)))
	}
	d, err := NewEmpirical(kind.String(), pts)
	if err != nil {
		panic(err) // the built-in tables are statically correct
	}
	return d
}

// Flowlet is one flowlet to be injected into the network or announced to the
// allocator.
type Flowlet struct {
	// ID is a unique, monotonically increasing identifier.
	ID int64
	// Arrival is the arrival time in seconds from the start of the run.
	Arrival float64
	// Src and Dst are server indices.
	Src, Dst int
	// SizeBytes is the flowlet length in bytes.
	SizeBytes int64
}

// SizePackets returns the flowlet size in MTU-sized packets (at least 1).
func (f Flowlet) SizePackets() int {
	p := int((f.SizeBytes + PacketSize - 1) / PacketSize)
	if p < 1 {
		p = 1
	}
	return p
}

// GeneratorConfig configures a flowlet generator.
type GeneratorConfig struct {
	// Kind selects the size distribution.
	Kind Kind
	// NumServers is the number of servers to spread traffic across.
	NumServers int
	// ServerLinkCapacity is the capacity of each server link in bits/s.
	ServerLinkCapacity float64
	// Load is the target average server load in (0, 1]: the Poisson
	// arrival rate is chosen so offered bytes equal Load × capacity.
	Load float64
	// Seed seeds the deterministic random source.
	Seed int64
}

// Validate checks the generator configuration.
func (c GeneratorConfig) Validate() error {
	switch {
	case c.NumServers < 2:
		return fmt.Errorf("workload: need at least 2 servers, got %d", c.NumServers)
	case c.ServerLinkCapacity <= 0:
		return fmt.Errorf("workload: ServerLinkCapacity must be positive, got %g", c.ServerLinkCapacity)
	case c.Load <= 0 || c.Load > 1:
		return fmt.Errorf("workload: Load must be in (0,1], got %g", c.Load)
	}
	return nil
}

// Generator produces a Poisson stream of flowlets at a target load.
type Generator struct {
	cfg   GeneratorConfig
	dist  *EmpiricalDist
	rng   *rand.Rand
	rate  float64 // aggregate flowlet arrivals per second
	next  float64 // arrival time of the next flowlet
	count int64
}

// NewGenerator creates a flowlet generator.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dist := NewSizeDist(cfg.Kind)
	// 100% load is when the per-server arrival rate equals link capacity
	// divided by mean flow size (§6.2).
	perServer := cfg.Load * cfg.ServerLinkCapacity / (8 * dist.Mean())
	g := &Generator{
		cfg:  cfg,
		dist: dist,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		rate: perServer * float64(cfg.NumServers),
	}
	g.next = g.expInterval()
	return g, nil
}

// ArrivalRate returns the aggregate flowlet arrival rate in flowlets/second.
func (g *Generator) ArrivalRate() float64 { return g.rate }

// MeanSize returns the mean flowlet size in bytes for the configured kind.
func (g *Generator) MeanSize() float64 { return g.dist.Mean() }

// Dist returns the underlying size distribution.
func (g *Generator) Dist() *EmpiricalDist { return g.dist }

func (g *Generator) expInterval() float64 {
	return g.rng.ExpFloat64() / g.rate
}

// Next returns the next flowlet in arrival order.
func (g *Generator) Next() Flowlet {
	f := Flowlet{
		ID:        g.count,
		Arrival:   g.next,
		SizeBytes: g.dist.Sample(g.rng),
	}
	f.Src = g.rng.Intn(g.cfg.NumServers)
	f.Dst = g.rng.Intn(g.cfg.NumServers - 1)
	if f.Dst >= f.Src {
		f.Dst++
	}
	g.count++
	g.next += g.expInterval()
	return f
}

// GenerateUntil returns all flowlets arriving before the given time horizon
// in seconds.
func (g *Generator) GenerateUntil(horizon float64) []Flowlet {
	var out []Flowlet
	for g.next < horizon {
		out = append(out, g.Next())
	}
	return out
}

// GenerateN returns the next n flowlets.
func (g *Generator) GenerateN(n int) []Flowlet {
	out := make([]Flowlet, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.Next())
	}
	return out
}

// BucketLabel classifies a flowlet size into the paper's Figure 8 buckets:
// "1 packet", "1-10 packets", "10-100 packets", "100-1000 packets", "large".
func BucketLabel(sizeBytes int64) string {
	packets := (sizeBytes + PacketSize - 1) / PacketSize
	switch {
	case packets <= 1:
		return "1 packet"
	case packets <= 10:
		return "1-10 packets"
	case packets <= 100:
		return "10-100 packets"
	case packets <= 1000:
		return "100-1000 packets"
	default:
		return "large"
	}
}

// Buckets lists the Figure 8 bucket labels in ascending size order.
func Buckets() []string {
	return []string{"1 packet", "1-10 packets", "10-100 packets", "100-1000 packets", "large"}
}

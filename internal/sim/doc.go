// Package sim is a packet-level discrete-event network simulator. It is the
// substrate on which Flowtune and the comparison schemes (DCTCP, pFabric,
// Cubic-over-sfqCoDel, XCP) are evaluated, playing the role ns2 plays in the
// paper: packets traverse store-and-forward links with finite-capacity
// queues, experience queueing delay, ECN marking and drops, and all control
// traffic shares the network with data traffic.
//
// The Simulator is a plain event heap with deterministic FIFO ordering of
// same-time events, so every run is reproducible for a given input; the
// Network wires a topology.Topology into per-link queues and transmitters
// with pluggable queue disciplines (drop-tail, pFabric priority, sfqCoDel,
// XCP).
package sim

package sim

import (
	"testing"
)

func dataPacket(flow int64, bytes int, priority float64) *Packet {
	return &Packet{Flow: flow, Kind: Data, PayloadBytes: bytes - HeaderBytes, WireBytes: bytes, Priority: priority}
}

func TestDropTailFIFO(t *testing.T) {
	q := NewDropTailQueue(10000)
	var dropped []*Packet
	q.SetDropHandler(func(p *Packet) { dropped = append(dropped, p) })
	p1 := dataPacket(1, 1000, 0)
	p2 := dataPacket(2, 1000, 0)
	q.Enqueue(p1, 0)
	q.Enqueue(p2, 0)
	if q.Len() != 2 || q.Bytes() != 2000 {
		t.Fatalf("Len=%d Bytes=%d", q.Len(), q.Bytes())
	}
	got1, _ := q.Dequeue(0)
	got2, _ := q.Dequeue(0)
	if got1 != p1 || got2 != p2 {
		t.Error("not FIFO")
	}
	if _, ok := q.Dequeue(0); ok {
		t.Error("dequeue from empty queue succeeded")
	}
	if len(dropped) != 0 {
		t.Error("unexpected drops")
	}
}

func TestDropTailLimit(t *testing.T) {
	q := NewDropTailQueue(2500)
	var dropped []*Packet
	q.SetDropHandler(func(p *Packet) { dropped = append(dropped, p) })
	q.Enqueue(dataPacket(1, 1000, 0), 0)
	q.Enqueue(dataPacket(2, 1000, 0), 0)
	victim := dataPacket(3, 1000, 0)
	q.Enqueue(victim, 0)
	if len(dropped) != 1 || dropped[0] != victim {
		t.Errorf("expected the arriving packet to be dropped, got %v", dropped)
	}
	if q.Len() != 2 {
		t.Errorf("Len = %d, want 2", q.Len())
	}
}

func TestECNMarking(t *testing.T) {
	q := NewECNQueue(100000, 2000)
	// Below threshold: no mark.
	p1 := dataPacket(1, 1000, 0)
	p1.ECNCapable = true
	q.Enqueue(p1, 0)
	if p1.ECNMarked {
		t.Error("packet marked below threshold")
	}
	q.Enqueue(dataPacket(2, 1500, 0), 0)
	// Queue now holds 2500 >= 2000 bytes: next ECN-capable packet is marked.
	p3 := dataPacket(3, 1000, 0)
	p3.ECNCapable = true
	q.Enqueue(p3, 0)
	if !p3.ECNMarked {
		t.Error("packet not marked above threshold")
	}
	// Non-ECN-capable packets are never marked.
	p4 := dataPacket(4, 1000, 0)
	q.Enqueue(p4, 0)
	if p4.ECNMarked {
		t.Error("non-capable packet marked")
	}
}

func TestPFabricPriorityDequeue(t *testing.T) {
	q := NewPFabricQueue(100000)
	big := dataPacket(1, 1500, 1e6)
	small := dataPacket(2, 1500, 100)
	medium := dataPacket(3, 1500, 1000)
	q.Enqueue(big, 0)
	q.Enqueue(small, 0)
	q.Enqueue(medium, 0)
	want := []*Packet{small, medium, big}
	for i, w := range want {
		got, ok := q.Dequeue(0)
		if !ok || got != w {
			t.Fatalf("dequeue %d: got %v, want flow %d", i, got.Flow, w.Flow)
		}
	}
}

func TestPFabricDropsLargestRemaining(t *testing.T) {
	q := NewPFabricQueue(3200)
	var dropped []*Packet
	q.SetDropHandler(func(p *Packet) { dropped = append(dropped, p) })
	small := dataPacket(1, 1500, 10)
	big := dataPacket(2, 1500, 1e9)
	q.Enqueue(small, 0)
	q.Enqueue(big, 0)
	// Queue is full (3000 of 3200); a new higher-priority (smaller
	// remaining) packet evicts the big flow's packet, not itself.
	urgent := dataPacket(3, 1500, 5)
	q.Enqueue(urgent, 0)
	if len(dropped) != 1 || dropped[0] != big {
		t.Fatalf("expected the largest-remaining packet to be dropped, got %+v", dropped)
	}
	got, _ := q.Dequeue(0)
	if got != urgent {
		t.Errorf("most urgent packet should dequeue first")
	}
}

func TestPFabricTieFIFO(t *testing.T) {
	q := NewPFabricQueue(100000)
	a := dataPacket(1, 1500, 50)
	b := dataPacket(2, 1500, 50)
	q.Enqueue(a, 0)
	q.Enqueue(b, 0)
	got, _ := q.Dequeue(0)
	if got != a {
		t.Error("equal priorities should dequeue FIFO")
	}
}

func TestSFQCoDelFairness(t *testing.T) {
	q := NewSFQCoDelQueue(1<<20, 10e9)
	// Flow 1 floods the queue; flow 2 sends a little. DRR should interleave
	// them rather than serving flow 1's backlog first.
	for i := 0; i < 20; i++ {
		q.Enqueue(dataPacket(1, 1500, 0), 0)
	}
	for i := 0; i < 3; i++ {
		q.Enqueue(dataPacket(2, 1500, 0), 0)
	}
	if q.Len() != 23 {
		t.Fatalf("Len = %d, want 23", q.Len())
	}
	flow2Seen := 0
	for i := 0; i < 6; i++ {
		p, ok := q.Dequeue(0)
		if !ok {
			t.Fatal("queue empty too early")
		}
		if p.Flow == 2 {
			flow2Seen++
		}
	}
	if flow2Seen == 0 {
		t.Error("DRR did not interleave the small flow within the first 6 packets")
	}
}

func TestSFQCoDelDropsPersistentQueue(t *testing.T) {
	q := NewSFQCoDelQueue(1<<20, 10e9)
	q.Target = 1e-3
	q.Interval = 10e-3
	var dropped int
	q.SetDropHandler(func(*Packet) { dropped++ })
	// Fill one bucket, then dequeue much later than target+interval: CoDel
	// must start dropping head packets.
	for i := 0; i < 50; i++ {
		q.Enqueue(dataPacket(1, 1500, 0), 0)
	}
	now := Time(0)
	for i := 0; i < 50; i++ {
		now += 2e-3 // drain far slower than the 1 ms target sojourn
		if _, ok := q.Dequeue(now); !ok {
			break
		}
	}
	if dropped == 0 {
		t.Error("CoDel never dropped despite persistent over-target sojourn times")
	}
}

func TestSFQCoDelByteLimit(t *testing.T) {
	q := NewSFQCoDelQueue(3000, 10e9)
	var dropped int
	q.SetDropHandler(func(*Packet) { dropped++ })
	for i := 0; i < 5; i++ {
		q.Enqueue(dataPacket(int64(i), 1500, 0), 0)
	}
	if dropped != 3 {
		t.Errorf("dropped %d, want 3 (limit 2 packets)", dropped)
	}
}

func TestXCPQueueFeedbackSignals(t *testing.T) {
	const capacity = 10e9
	q := NewXCPQueue(1<<20, capacity, 40e-6)
	// Interval 1: low utilization -> positive feedback afterwards.
	now := Time(0)
	q.Enqueue(dataPacket(1, 1500, 0), now)
	q.Dequeue(now)
	now += 50e-6
	p := dataPacket(1, 1500, 0)
	q.Enqueue(p, now) // rolls the interval; spare capacity was large
	if q.aggregateFeedback <= 0 {
		t.Errorf("under-utilized link should compute positive aggregate feedback, got %g", q.aggregateFeedback)
	}
	if p.XCPFeedback <= 0 {
		t.Errorf("packet should receive positive feedback, got %g", p.XCPFeedback)
	}

	// Saturate the link for one interval: feedback must turn negative.
	for i := 0; i < 60; i++ {
		q.Enqueue(dataPacket(2, 1500, 0), now)
	}
	now += 50e-6
	p2 := dataPacket(3, 1500, 0)
	q.Enqueue(p2, now)
	if q.aggregateFeedback >= 0 {
		t.Errorf("overloaded link should compute negative aggregate feedback, got %g", q.aggregateFeedback)
	}
}

func TestXCPQueueDelegatesToFIFO(t *testing.T) {
	q := NewXCPQueue(2500, 10e9, 40e-6)
	var dropped int
	q.SetDropHandler(func(*Packet) { dropped++ })
	q.Enqueue(dataPacket(1, 1000, 0), 0)
	q.Enqueue(dataPacket(2, 1000, 0), 0)
	q.Enqueue(dataPacket(3, 1000, 0), 0)
	if dropped != 1 {
		t.Errorf("dropped %d, want 1", dropped)
	}
	if q.Len() != 2 || q.Bytes() != 2000 {
		t.Errorf("Len=%d Bytes=%d", q.Len(), q.Bytes())
	}
}

package sim

import (
	"fmt"

	"repro/internal/topology"
)

// LinkStats accumulates per-link counters used by the evaluation.
type LinkStats struct {
	// PacketsSent and BytesSent count transmitted packets/bytes.
	PacketsSent int64
	BytesSent   int64
	// PacketsDropped and BytesDropped count drops at this link's queue.
	PacketsDropped int64
	BytesDropped   int64
}

// Link is a unidirectional link: a queue feeding a serializing transmitter
// followed by a fixed propagation delay.
type Link struct {
	id    topology.LinkID
	rate  float64
	delay Time
	queue Queue

	sim     *Simulator
	net     *Network
	busy    bool
	stats   LinkStats
	samples []QueueSample
}

// QueueSample is one periodic observation of a link's queue, used to compute
// p99 queueing delay as in Figure 9.
type QueueSample struct {
	At    Time
	Bytes int
	// Delay is the queueing delay a newly arriving packet would see.
	Delay Time
}

// Stats returns the link's counters.
func (l *Link) Stats() LinkStats { return l.stats }

// Samples returns the periodic queue samples collected so far.
func (l *Link) Samples() []QueueSample { return l.samples }

// Queue returns the link's queue discipline.
func (l *Link) Queue() Queue { return l.queue }

// Rate returns the link rate in bits per second.
func (l *Link) Rate() float64 { return l.rate }

// send enqueues a packet and starts transmission if the link is idle.
func (l *Link) send(p *Packet) {
	l.queue.Enqueue(p, l.sim.Now())
	if !l.busy {
		l.transmitNext()
	}
}

// transmitNext dequeues and serializes the next packet.
func (l *Link) transmitNext() {
	p, ok := l.queue.Dequeue(l.sim.Now())
	if !ok {
		l.busy = false
		return
	}
	l.busy = true
	txTime := Time(p.WireBytes*8) / l.rate
	l.stats.PacketsSent++
	l.stats.BytesSent += int64(p.WireBytes)
	l.sim.Schedule(txTime, func() {
		// Serialization finished: launch the packet onto the wire and
		// immediately start the next one.
		l.sim.Schedule(l.delay, func() { l.net.arrive(p) })
		l.transmitNext()
	})
}

// Network instantiates a topology inside a simulator: one Link per topology
// link, plus host delivery handlers for servers and the allocator.
type Network struct {
	sim  *Simulator
	topo *topology.Topology

	links []*Link

	// handlers[server] receives packets whose Dst is that server;
	// allocatorHandler receives packets destined to the allocator host
	// (Dst == AllocatorDst).
	handlers         map[int]func(*Packet)
	allocatorHandler func(*Packet)

	// dropHandlers are notified of every packet drop (after stats are
	// updated), letting transports model loss detection.
	dropHandlers []func(*Packet, topology.LinkID)

	totalDroppedBytes int64
	totalSentBytes    int64
}

// AllocatorDst is the Dst value identifying the allocator host.
const AllocatorDst = -1

// QueueFactory builds the queue for a given link; schemes install their
// queue discipline (ECN thresholds, pFabric priority queues, sfqCoDel, XCP)
// through it.
type QueueFactory func(link topology.Link) Queue

// NewNetwork builds the simulated network for a topology, creating each
// link's queue with the supplied factory.
func NewNetwork(s *Simulator, topo *topology.Topology, qf QueueFactory) (*Network, error) {
	if s == nil || topo == nil {
		return nil, fmt.Errorf("sim: simulator and topology are required")
	}
	if qf == nil {
		qf = func(l topology.Link) Queue {
			// Default: 256 KB drop-tail buffers.
			return NewDropTailQueue(256 << 10)
		}
	}
	n := &Network{
		sim:      s,
		topo:     topo,
		handlers: make(map[int]func(*Packet)),
	}
	for _, tl := range topo.Links() {
		q := qf(tl)
		link := &Link{
			id:    tl.ID,
			rate:  tl.Capacity,
			delay: tl.Delay,
			queue: q,
			sim:   s,
			net:   n,
		}
		q.SetDropHandler(func(p *Packet) { n.drop(p, link) })
		n.links = append(n.links, link)
	}
	return n, nil
}

// Topology returns the topology the network was built from.
func (n *Network) Topology() *topology.Topology { return n.topo }

// Sim returns the simulator driving the network.
func (n *Network) Sim() *Simulator { return n.sim }

// Link returns the simulated link for a topology link id.
func (n *Network) Link(id topology.LinkID) *Link { return n.links[id] }

// Links returns all simulated links indexed by LinkID.
func (n *Network) Links() []*Link { return n.links }

// SetLinkRate changes a link's transmission rate mid-run. The packet
// currently serializing (if any) finishes at the old rate; every subsequent
// dequeue — and every queue sample — uses the new one, which is exactly how
// a degraded or administratively shaped physical link behaves. Rate must be
// positive (model a dead link as a tiny fraction of its former rate so
// in-flight packets still drain, just impossibly slowly).
func (n *Network) SetLinkRate(id topology.LinkID, rate float64) error {
	if id < 0 || int(id) >= len(n.links) {
		return fmt.Errorf("sim: SetLinkRate link %d out of range (%d links)", id, len(n.links))
	}
	if !(rate > 0) {
		return fmt.Errorf("sim: SetLinkRate link %d: invalid rate %g", id, rate)
	}
	n.links[id].rate = rate
	return nil
}

// RegisterHost installs the delivery handler for a server index.
func (n *Network) RegisterHost(server int, handler func(*Packet)) {
	n.handlers[server] = handler
}

// RegisterAllocatorHost installs the delivery handler for the allocator.
func (n *Network) RegisterAllocatorHost(handler func(*Packet)) {
	n.allocatorHandler = handler
}

// OnDrop registers a callback invoked for every dropped packet.
func (n *Network) OnDrop(fn func(*Packet, topology.LinkID)) {
	n.dropHandlers = append(n.dropHandlers, fn)
}

// Send injects a packet into the network on the first link of its path. The
// caller must have set Path; Hop should be zero.
func (n *Network) Send(p *Packet) {
	if len(p.Path) == 0 {
		// Degenerate case (same-host delivery): deliver immediately.
		n.deliver(p)
		return
	}
	if p.SentAt == 0 {
		p.SentAt = n.sim.Now()
	}
	n.links[p.Path[p.Hop]].send(p)
}

// arrive handles a packet finishing a link's propagation: forward it to the
// next link or deliver it to its destination host.
func (n *Network) arrive(p *Packet) {
	p.Hop++
	if p.IsLast() {
		n.deliver(p)
		return
	}
	n.links[p.Path[p.Hop]].send(p)
}

// deliver hands the packet to its destination's handler.
func (n *Network) deliver(p *Packet) {
	if p.Dst == AllocatorDst {
		if n.allocatorHandler != nil {
			n.allocatorHandler(p)
		}
		return
	}
	if h, ok := n.handlers[p.Dst]; ok {
		h(p)
	}
}

// drop records a packet drop and notifies transports.
func (n *Network) drop(p *Packet, l *Link) {
	l.stats.PacketsDropped++
	l.stats.BytesDropped += int64(p.WireBytes)
	n.totalDroppedBytes += int64(p.WireBytes)
	for _, fn := range n.dropHandlers {
		fn(p, l.id)
	}
}

// TotalDroppedBytes returns the number of bytes dropped network-wide.
func (n *Network) TotalDroppedBytes() int64 { return n.totalDroppedBytes }

// TotalSentBytes returns the number of bytes transmitted network-wide.
func (n *Network) TotalSentBytes() int64 {
	var total int64
	for _, l := range n.links {
		total += l.stats.BytesSent
	}
	return total
}

// StartQueueSampling samples every link's queue occupancy with the given
// period (the paper samples every 1 ms) until the simulator stops scheduling
// events past the horizon.
func (n *Network) StartQueueSampling(period, horizon Time) {
	var tick func()
	tick = func() {
		now := n.sim.Now()
		for _, l := range n.links {
			bytes := l.queue.Bytes()
			l.samples = append(l.samples, QueueSample{
				At:    now,
				Bytes: bytes,
				Delay: Time(bytes*8) / l.rate,
			})
		}
		if now+period <= horizon {
			n.sim.Schedule(period, tick)
		}
	}
	n.sim.Schedule(period, tick)
}

// PathQueueDelays returns, for every sample instant, the summed queueing
// delay along the path's links — the "network path queueing delay" plotted in
// Figure 9. All links must have been sampled the same number of times.
func (n *Network) PathQueueDelays(path []int32) []Time {
	if len(path) == 0 {
		return nil
	}
	numSamples := len(n.links[path[0]].samples)
	out := make([]Time, numSamples)
	for _, lid := range path {
		s := n.links[lid].samples
		if len(s) < numSamples {
			numSamples = len(s)
			out = out[:numSamples]
		}
		for i := 0; i < numSamples; i++ {
			out[i] += s[i].Delay
		}
	}
	return out
}

package sim

import (
	"testing"

	"repro/internal/topology"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.NewTwoTier(topology.DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func newTestNetwork(t *testing.T, qf QueueFactory) (*Simulator, *Network, *topology.Topology) {
	t.Helper()
	topo := testTopo(t)
	s := New()
	n, err := NewNetwork(s, topo, qf)
	if err != nil {
		t.Fatal(err)
	}
	return s, n, topo
}

// makeDataPacket builds a packet routed from server src to server dst.
func makeDataPacket(t *testing.T, topo *topology.Topology, flow int64, src, dst, payload int) *Packet {
	t.Helper()
	route, err := topo.Route(src, dst, int(flow))
	if err != nil {
		t.Fatal(err)
	}
	path := make([]int32, len(route))
	for i, l := range route {
		path[i] = int32(l)
	}
	return &Packet{
		Flow: flow, Kind: Data, Src: src, Dst: dst,
		PayloadBytes: payload, WireBytes: payload + HeaderBytes,
		Path: path,
	}
}

func TestNewNetworkValidation(t *testing.T) {
	topo := testTopo(t)
	if _, err := NewNetwork(nil, topo, nil); err == nil {
		t.Error("nil simulator accepted")
	}
	if _, err := NewNetwork(New(), nil, nil); err == nil {
		t.Error("nil topology accepted")
	}
	s := New()
	n, err := NewNetwork(s, topo, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Links()) != topo.NumLinks() {
		t.Errorf("network has %d links, topology has %d", len(n.Links()), topo.NumLinks())
	}
}

func TestPacketDeliveryIntraRack(t *testing.T) {
	s, n, topo := newTestNetwork(t, nil)
	var delivered *Packet
	var deliveredAt Time
	n.RegisterHost(1, func(p *Packet) { delivered = p; deliveredAt = s.Now() })
	p := makeDataPacket(t, topo, 1, 0, 1, 1000)
	n.Send(p)
	s.Run(1)
	if delivered == nil {
		t.Fatal("packet not delivered")
	}
	if delivered != p {
		t.Error("wrong packet delivered")
	}
	// Delivery time = 2 links × (serialization + propagation).
	cfg := topo.Config()
	txTime := float64((1000+HeaderBytes)*8) / cfg.LinkCapacity
	want := 2 * (txTime + cfg.LinkDelay)
	if deliveredAt < want*0.99 || deliveredAt > want*1.5 {
		t.Errorf("delivery completed at %g, want about %g", deliveredAt, want)
	}
}

func TestPacketDeliveryCrossRack(t *testing.T) {
	s, n, topo := newTestNetwork(t, nil)
	delivered := false
	n.RegisterHost(20, func(p *Packet) { delivered = true })
	n.Send(makeDataPacket(t, topo, 7, 0, 20, 1500))
	s.Run(1)
	if !delivered {
		t.Fatal("cross-rack packet not delivered")
	}
}

func TestAllocatorDelivery(t *testing.T) {
	s, n, topo := newTestNetwork(t, nil)
	got := 0
	n.RegisterAllocatorHost(func(p *Packet) { got++ })
	alloc, _ := topo.AllocatorNode()
	tor := topo.ToRForRack(0)
	spine := topo.SpineSwitch(0)
	up1, _ := topo.LinkBetween(topo.Server(0), tor)
	up2, _ := topo.LinkBetween(tor, spine)
	up3, _ := topo.LinkBetween(spine, alloc)
	p := &Packet{Kind: Control, Src: 0, Dst: AllocatorDst, WireBytes: 64,
		Path: []int32{int32(up1), int32(up2), int32(up3)}}
	n.Send(p)
	s.Run(1)
	if got != 1 {
		t.Fatalf("allocator received %d packets, want 1", got)
	}
}

func TestLinkSerializationOrder(t *testing.T) {
	s, n, topo := newTestNetwork(t, nil)
	var order []int64
	n.RegisterHost(1, func(p *Packet) { order = append(order, p.Flow) })
	// Two packets sent back-to-back share the first link; they must arrive
	// in order and be serialized (second arrives one tx-time later).
	n.Send(makeDataPacket(t, topo, 1, 0, 1, 1500))
	n.Send(makeDataPacket(t, topo, 2, 0, 1, 1500))
	s.Run(1)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("arrival order %v", order)
	}
}

func TestDropsAreCountedAndReported(t *testing.T) {
	// Tiny queues force drops under a burst.
	s, n, topo := newTestNetwork(t, func(l topology.Link) Queue { return NewDropTailQueue(4000) })
	var notified int
	n.OnDrop(func(p *Packet, link topology.LinkID) { notified++ })
	received := 0
	n.RegisterHost(1, func(p *Packet) { received++ })
	for i := 0; i < 20; i++ {
		n.Send(makeDataPacket(t, topo, int64(i), 0, 1, 1500))
	}
	s.Run(1)
	if notified == 0 {
		t.Fatal("expected drops with a 4 KB buffer and a 20-packet burst")
	}
	if n.TotalDroppedBytes() == 0 {
		t.Error("TotalDroppedBytes not counted")
	}
	if received+notified != 20 {
		t.Errorf("received %d + dropped %d != 20", received, notified)
	}
	if n.TotalSentBytes() == 0 {
		t.Error("TotalSentBytes not counted")
	}
}

func TestQueueSamplingAndPathDelays(t *testing.T) {
	s, n, topo := newTestNetwork(t, nil)
	n.RegisterHost(1, func(p *Packet) {})
	n.StartQueueSampling(100e-6, 1e-3)
	// Keep the first link busy so samples see a queue.
	for i := 0; i < 200; i++ {
		n.Send(makeDataPacket(t, topo, int64(i), 0, 1, 1500))
	}
	s.Run(2e-3)
	route, _ := topo.Route(0, 1, 0)
	link := n.Link(route[0])
	if len(link.Samples()) == 0 {
		t.Fatal("no queue samples collected")
	}
	path := []int32{int32(route[0]), int32(route[1])}
	delays := n.PathQueueDelays(path)
	if len(delays) == 0 {
		t.Fatal("no path delays")
	}
	positive := false
	for _, d := range delays {
		if d < 0 {
			t.Fatal("negative queueing delay")
		}
		if d > 0 {
			positive = true
		}
	}
	if !positive {
		t.Error("expected at least one positive queueing-delay sample under a 200-packet burst")
	}
	if n.PathQueueDelays(nil) != nil {
		t.Error("empty path should yield nil delays")
	}
}

func TestSendWithEmptyPathDeliversLocally(t *testing.T) {
	s, n, _ := newTestNetwork(t, nil)
	delivered := false
	n.RegisterHost(3, func(p *Packet) { delivered = true })
	n.Send(&Packet{Kind: Data, Dst: 3})
	s.Run(1)
	if !delivered {
		t.Error("empty-path packet not delivered to its destination host")
	}
}

func TestLinkStats(t *testing.T) {
	s, n, topo := newTestNetwork(t, nil)
	n.RegisterHost(1, func(p *Packet) {})
	p := makeDataPacket(t, topo, 1, 0, 1, 1000)
	n.Send(p)
	s.Run(1)
	route, _ := topo.Route(0, 1, 1)
	stats := n.Link(route[0]).Stats()
	if stats.PacketsSent != 1 || stats.BytesSent != int64(p.WireBytes) {
		t.Errorf("link stats wrong: %+v", stats)
	}
}

package sim

// XCPQueue is a drop-tail FIFO augmented with an XCP router efficiency/
// fairness controller (Katabi et al.): every control interval the router
// computes an aggregate feedback from its spare capacity and standing queue,
// and apportions it to the packets that traverse the link during the next
// interval by writing into their XCPFeedback field. Receivers echo the field
// in ACKs and senders adjust their windows by it, which is what makes XCP
// conservative in handing out bandwidth (§6.3 of the Flowtune paper).
type XCPQueue struct {
	// LimitBytes is the buffer size.
	LimitBytes int
	// Capacity is the attached link's rate in bits per second.
	Capacity float64
	// Interval is the control interval in seconds (roughly the mean RTT).
	Interval Time
	// Alpha and Beta are XCP's stability constants (0.4 and 0.226).
	Alpha, Beta float64

	fifo *DropTailQueue

	// Controller state for the current interval.
	intervalInit  bool
	intervalStart Time
	arrivedBytes  float64
	packetsSeen   int

	// Feedback computed at the end of the previous interval.
	aggregateFeedback float64 // bytes of window change to hand out this interval
	expectedPackets   int
}

// NewXCPQueue builds an XCP-controlled queue for a link of the given rate.
func NewXCPQueue(limitBytes int, capacity float64, interval Time) *XCPQueue {
	return &XCPQueue{
		LimitBytes: limitBytes,
		Capacity:   capacity,
		Interval:   interval,
		Alpha:      0.4,
		Beta:       0.226,
		fifo:       NewDropTailQueue(limitBytes),
		// Until the first control interval completes there is no feedback
		// to hand out; expectedPackets must still be positive so the
		// per-packet share is well defined (zero, not NaN).
		expectedPackets: 1,
	}
}

// SetDropHandler implements Queue.
func (q *XCPQueue) SetDropHandler(fn func(*Packet)) { q.fifo.SetDropHandler(fn) }

// rollInterval closes the current control interval and computes the
// aggregate feedback for the next one.
func (q *XCPQueue) rollInterval(now Time) {
	if !q.intervalInit {
		q.intervalInit = true
		q.intervalStart = now
		return
	}
	elapsed := now - q.intervalStart
	if elapsed < q.Interval {
		return
	}
	// Spare capacity in bytes over the interval, minus a term that drains
	// the standing queue.
	capacityBytes := q.Capacity / 8 * elapsed
	spare := q.Alpha*(capacityBytes-q.arrivedBytes) - q.Beta*float64(q.fifo.Bytes())
	q.aggregateFeedback = spare
	q.expectedPackets = q.packetsSeen
	if q.expectedPackets == 0 {
		q.expectedPackets = 1
	}
	q.arrivedBytes = 0
	q.packetsSeen = 0
	q.intervalStart = now
}

// Enqueue implements Queue.
func (q *XCPQueue) Enqueue(p *Packet, now Time) {
	q.rollInterval(now)
	q.arrivedBytes += float64(p.WireBytes)
	if p.Kind == Data {
		q.packetsSeen++
		// Per-packet feedback: an equal share of the aggregate feedback,
		// a simplification of XCP's cwnd/rtt-weighted apportioning that
		// preserves its conservative, interval-limited allocation.
		share := q.aggregateFeedback / float64(q.expectedPackets)
		if p.XCPFeedback > share || p.XCPFeedback == 0 {
			p.XCPFeedback = share
		}
	}
	q.fifo.Enqueue(p, now)
}

// Dequeue implements Queue.
func (q *XCPQueue) Dequeue(now Time) (*Packet, bool) { return q.fifo.Dequeue(now) }

// Len implements Queue.
func (q *XCPQueue) Len() int { return q.fifo.Len() }

// Bytes implements Queue.
func (q *XCPQueue) Bytes() int { return q.fifo.Bytes() }

package sim

// Queue is an output queue discipline attached to a link. Implementations
// report every dropped packet (whether the arriving packet or a victim
// already queued) through the drop handler installed with SetDropHandler.
type Queue interface {
	// Enqueue offers a packet to the queue at the given time. The packet
	// may be accepted, marked, or dropped.
	Enqueue(p *Packet, now Time)
	// Dequeue removes the next packet to transmit. Queues that drop at
	// dequeue time (CoDel) may report drops and return a later packet.
	Dequeue(now Time) (*Packet, bool)
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns the number of queued bytes (wire bytes).
	Bytes() int
	// SetDropHandler installs the callback invoked for every drop.
	SetDropHandler(func(*Packet))
}

// DropTailQueue is a FIFO queue with a byte limit and optional ECN marking:
// packets from ECN-capable transports are marked when the queue length at
// enqueue time is at or above MarkThresholdBytes (DCTCP's single-threshold
// marking).
type DropTailQueue struct {
	// LimitBytes is the maximum queued bytes before arriving packets are
	// dropped.
	LimitBytes int
	// MarkThresholdBytes enables ECN marking when positive.
	MarkThresholdBytes int

	pkts   []*Packet
	bytes  int
	onDrop func(*Packet)
}

// NewDropTailQueue creates a FIFO queue with the given byte limit.
func NewDropTailQueue(limitBytes int) *DropTailQueue {
	return &DropTailQueue{LimitBytes: limitBytes}
}

// NewECNQueue creates a FIFO queue with DCTCP-style marking at markBytes.
func NewECNQueue(limitBytes, markBytes int) *DropTailQueue {
	return &DropTailQueue{LimitBytes: limitBytes, MarkThresholdBytes: markBytes}
}

// SetDropHandler implements Queue.
func (q *DropTailQueue) SetDropHandler(fn func(*Packet)) { q.onDrop = fn }

// Enqueue implements Queue.
func (q *DropTailQueue) Enqueue(p *Packet, now Time) {
	if q.bytes+p.WireBytes > q.LimitBytes {
		if q.onDrop != nil {
			q.onDrop(p)
		}
		return
	}
	if q.MarkThresholdBytes > 0 && p.ECNCapable && q.bytes >= q.MarkThresholdBytes {
		p.ECNMarked = true
	}
	p.EnqueuedAt = now
	q.pkts = append(q.pkts, p)
	q.bytes += p.WireBytes
}

// Dequeue implements Queue.
func (q *DropTailQueue) Dequeue(now Time) (*Packet, bool) {
	if len(q.pkts) == 0 {
		return nil, false
	}
	p := q.pkts[0]
	q.pkts[0] = nil
	q.pkts = q.pkts[1:]
	q.bytes -= p.WireBytes
	return p, true
}

// Len implements Queue.
func (q *DropTailQueue) Len() int { return len(q.pkts) }

// Bytes implements Queue.
func (q *DropTailQueue) Bytes() int { return q.bytes }

// PFabricQueue implements pFabric's switch behaviour: a small queue in which
// packets are dequeued in order of priority (fewest remaining bytes first)
// and, when the queue is full, the packet with the largest remaining bytes —
// possibly the arriving one — is dropped.
type PFabricQueue struct {
	// LimitBytes is the (small) per-port buffer, roughly 2 bandwidth-delay
	// products in the pFabric paper.
	LimitBytes int

	pkts   []*Packet
	bytes  int
	onDrop func(*Packet)
}

// NewPFabricQueue creates a pFabric priority queue with the given buffer.
func NewPFabricQueue(limitBytes int) *PFabricQueue {
	return &PFabricQueue{LimitBytes: limitBytes}
}

// SetDropHandler implements Queue.
func (q *PFabricQueue) SetDropHandler(fn func(*Packet)) { q.onDrop = fn }

// Enqueue implements Queue.
func (q *PFabricQueue) Enqueue(p *Packet, now Time) {
	p.EnqueuedAt = now
	q.pkts = append(q.pkts, p)
	q.bytes += p.WireBytes
	for q.bytes > q.LimitBytes && len(q.pkts) > 1 {
		// Drop the packet with the largest remaining flow size. Control
		// and ACK packets carry priority 0 and are never the victim while
		// data packets are present.
		victim := 0
		for i, c := range q.pkts {
			if c.Priority > q.pkts[victim].Priority {
				victim = i
			}
		}
		v := q.pkts[victim]
		q.pkts = append(q.pkts[:victim], q.pkts[victim+1:]...)
		q.bytes -= v.WireBytes
		if q.onDrop != nil {
			q.onDrop(v)
		}
	}
	if q.bytes > q.LimitBytes && len(q.pkts) == 1 {
		v := q.pkts[0]
		q.pkts = q.pkts[:0]
		q.bytes = 0
		if q.onDrop != nil {
			q.onDrop(v)
		}
	}
}

// Dequeue implements Queue: the packet with the smallest remaining flow size
// is sent first; ties break in FIFO order.
func (q *PFabricQueue) Dequeue(now Time) (*Packet, bool) {
	if len(q.pkts) == 0 {
		return nil, false
	}
	best := 0
	for i, c := range q.pkts {
		if c.Priority < q.pkts[best].Priority {
			best = i
		}
	}
	p := q.pkts[best]
	q.pkts = append(q.pkts[:best], q.pkts[best+1:]...)
	q.bytes -= p.WireBytes
	return p, true
}

// Len implements Queue.
func (q *PFabricQueue) Len() int { return len(q.pkts) }

// Bytes implements Queue.
func (q *PFabricQueue) Bytes() int { return q.bytes }

package sim

// Header sizes used to model wire overheads, in bytes.
const (
	// HeaderBytes is the combined Ethernet + IP + TCP header overhead
	// added to every data packet.
	HeaderBytes = 54
	// AckBytes is the size of a bare acknowledgment packet.
	AckBytes = 64
	// MTU is the maximum transmission unit for data payloads.
	MTU = 1500
)

// PacketKind distinguishes the roles a packet can play.
type PacketKind uint8

const (
	// Data carries flow payload bytes.
	Data PacketKind = iota
	// Ack acknowledges received payload.
	Ack
	// Control carries allocator control messages (flowlet notifications
	// and rate updates).
	Control
)

// Packet is a simulated packet. Packets are passed by pointer and owned by
// exactly one queue or link at a time.
type Packet struct {
	// Flow identifies the flow the packet belongs to (data and ACKs) or
	// the control stream (allocator traffic).
	Flow int64
	// Kind is the packet's role.
	Kind PacketKind
	// Src and Dst are server indices (or -1 for the allocator host).
	Src, Dst int
	// Seq is the first payload byte carried by a data packet, or the
	// cumulative/selective acknowledgment carried by an ACK.
	Seq int64
	// PayloadBytes is the number of flow payload bytes carried.
	PayloadBytes int
	// WireBytes is the packet's size on the wire, including headers.
	WireBytes int
	// Priority is the scheduling priority used by pFabric queues: the
	// number of bytes remaining in the flow when the packet was sent
	// (lower is more urgent).
	Priority float64
	// ECNCapable marks packets from ECN-capable transports (DCTCP).
	ECNCapable bool
	// ECNMarked is set by queues that exceed their marking threshold.
	ECNMarked bool
	// EchoECN is set on ACKs to echo a received mark back to the sender.
	EchoECN bool
	// XCPFeedback is the per-packet rate feedback field used by XCP:
	// routers reduce it, the receiver echoes it, and the sender adjusts
	// its window by the echoed amount (in bytes per RTT).
	XCPFeedback float64
	// XCPCwnd and XCPRTT carry the sender's current window (bytes) and RTT
	// estimate (seconds) so XCP routers can compute per-packet feedback.
	XCPCwnd float64
	XCPRTT  float64
	// SentAt is the time the packet was first transmitted by its source,
	// used for RTT measurement.
	SentAt Time
	// EnqueuedAt is set by queues when the packet is enqueued, to measure
	// queueing delay.
	EnqueuedAt Time
	// Path is the remaining route: Path[Hop] is the next link to cross.
	Path []int32
	// Hop is the index of the next link in Path.
	Hop int
	// Retransmit marks retransmitted data packets.
	Retransmit bool
	// Ctrl carries allocator control-message contents for Control packets.
	Ctrl *ControlInfo
}

// ControlType enumerates allocator control messages.
type ControlType uint8

const (
	// CtrlFlowletStart announces a new flowlet to the allocator.
	CtrlFlowletStart ControlType = iota
	// CtrlFlowletEnd announces that a flowlet has finished.
	CtrlFlowletEnd
	// CtrlRateUpdate carries a new allocated rate to an endpoint.
	CtrlRateUpdate
)

// ControlInfo is the payload of an allocator control message.
type ControlInfo struct {
	// Type is the message type.
	Type ControlType
	// Flow identifies the flowlet.
	Flow int64
	// Src and Dst are the flowlet's endpoints (server indices), set on
	// flowlet-start messages.
	Src, Dst int
	// Rate is the allocated rate in bits/s, set on rate updates.
	Rate float64
	// Size is the flowlet's size hint in bytes (0 = unknown), set on
	// flowlet-start messages. Carried into the allocator's flow metadata
	// (wire v4 FlowletAdd hint); the solvers ignore it.
	Size int64
}

// IsLast reports whether the packet has traversed its entire path.
func (p *Packet) IsLast() bool { return p.Hop >= len(p.Path) }

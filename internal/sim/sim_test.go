package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSimulatorOrdering(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(3e-6, func() { order = append(order, 3) })
	s.Schedule(1e-6, func() { order = append(order, 1) })
	s.Schedule(2e-6, func() { order = append(order, 2) })
	s.Run(1)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("events out of order: %v", order)
	}
	if s.Processed() != 3 {
		t.Errorf("Processed = %d, want 3", s.Processed())
	}
}

func TestSimulatorTieBreakFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(1e-6, func() { order = append(order, i) })
	}
	s.Run(1)
	if !sort.IntsAreSorted(order) {
		t.Errorf("same-time events not FIFO: %v", order)
	}
}

func TestSimulatorRunHorizon(t *testing.T) {
	s := New()
	ran := 0
	s.Schedule(1e-3, func() { ran++ })
	s.Schedule(2e-3, func() { ran++ })
	s.Run(1.5e-3)
	if ran != 1 {
		t.Errorf("ran %d events before horizon, want 1", ran)
	}
	if s.Now() != 1.5e-3 {
		t.Errorf("Now = %g, want 1.5e-3", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	s.Run(1)
	if ran != 2 {
		t.Errorf("remaining event did not run")
	}
}

func TestSimulatorNestedScheduling(t *testing.T) {
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			s.Schedule(1e-6, tick)
		}
	}
	s.Schedule(0, tick)
	s.Run(1)
	if count != 10 {
		t.Errorf("nested scheduling ran %d times, want 10", count)
	}
}

func TestSimulatorNegativeDelayClamped(t *testing.T) {
	s := New()
	var innerAt Time
	s.Schedule(5e-6, func() {
		s.Schedule(-1, func() { innerAt = s.Now() })
	})
	s.Run(1)
	if innerAt != 5e-6 {
		t.Errorf("negative-delay event ran at %g, want 5e-6 (clamped to the present)", innerAt)
	}
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Schedule(nil) did not panic")
		}
	}()
	New().Schedule(0, nil)
}

func TestAtAbsoluteTime(t *testing.T) {
	s := New()
	var at Time
	s.At(2e-3, func() { at = s.Now() })
	s.Run(1)
	if at != 2e-3 {
		t.Errorf("At callback ran at %g, want 2e-3", at)
	}
}

func TestRunAllGuard(t *testing.T) {
	s := New()
	var loop func()
	loop = func() { s.Schedule(1e-9, loop) }
	s.Schedule(0, loop)
	defer func() {
		if recover() == nil {
			t.Error("RunAll did not panic on a runaway event loop")
		}
	}()
	s.RunAll(1000)
}

// TestEventTimeMonotonicProperty: with random delays, the simulator clock
// never goes backwards during execution.
func TestEventTimeMonotonicProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		ok := true
		last := Time(0)
		for i := 0; i < int(n%40)+1; i++ {
			s.Schedule(rng.Float64()*1e-3, func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
				if rng.Float64() < 0.5 {
					s.Schedule(rng.Float64()*1e-4, func() {})
				}
			})
		}
		s.Run(1)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

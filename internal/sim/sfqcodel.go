package sim

import "math"

// SFQCoDelQueue implements stochastic fair queueing with a CoDel AQM per
// bucket, the queue discipline of the Cubic-over-sfqCoDel comparison scheme:
// flows are hashed into buckets, buckets are served in deficit round-robin
// order, and each bucket runs the CoDel "drop when sojourn time stays above
// target for an interval" controller. The target and interval default to
// values scaled for datacenter RTTs.
type SFQCoDelQueue struct {
	// LimitBytes caps the total queued bytes across all buckets.
	LimitBytes int
	// NumBuckets is the number of SFQ hash buckets (default 1024).
	NumBuckets int
	// Target is CoDel's acceptable standing queue delay in seconds.
	Target Time
	// Interval is CoDel's measurement interval in seconds.
	Interval Time
	// Rate is the drain rate of the attached link in bits/s, used to
	// convert bytes of backlog into sojourn-time estimates.
	Rate float64
	// Quantum is the DRR quantum in bytes (default one MTU + headers).
	Quantum int

	buckets map[int]*codelBucket
	active  []int // round-robin order of non-empty bucket ids
	bytes   int
	count   int
	onDrop  func(*Packet)
}

// codelBucket is one SFQ bucket with its own FIFO and CoDel state.
type codelBucket struct {
	pkts    []*Packet
	bytes   int
	deficit int

	// CoDel state (per RFC 8289, simplified).
	dropping     bool
	firstAboveAt Time
	dropNextAt   Time
	dropCount    int
}

// NewSFQCoDelQueue builds an sfqCoDel queue for a link with the given rate.
func NewSFQCoDelQueue(limitBytes int, linkRate float64) *SFQCoDelQueue {
	return &SFQCoDelQueue{
		LimitBytes: limitBytes,
		NumBuckets: 1024,
		Target:     100e-6,
		Interval:   2e-3,
		Rate:       linkRate,
		Quantum:    MTU + HeaderBytes,
		buckets:    make(map[int]*codelBucket),
	}
}

// SetDropHandler implements Queue.
func (q *SFQCoDelQueue) SetDropHandler(fn func(*Packet)) { q.onDrop = fn }

// bucketOf hashes a flow to a bucket index.
func (q *SFQCoDelQueue) bucketOf(flow int64) int {
	h := uint64(flow) * 0x9e3779b97f4a7c15
	return int(h % uint64(q.NumBuckets))
}

// Enqueue implements Queue.
func (q *SFQCoDelQueue) Enqueue(p *Packet, now Time) {
	if q.bytes+p.WireBytes > q.LimitBytes {
		if q.onDrop != nil {
			q.onDrop(p)
		}
		return
	}
	id := q.bucketOf(p.Flow)
	b, ok := q.buckets[id]
	if !ok {
		b = &codelBucket{}
		q.buckets[id] = b
	}
	if len(b.pkts) == 0 {
		b.deficit = q.Quantum
		q.active = append(q.active, id)
	}
	p.EnqueuedAt = now
	b.pkts = append(b.pkts, p)
	b.bytes += p.WireBytes
	q.bytes += p.WireBytes
	q.count++
}

// sojourn estimates how long the head packet of a bucket has been queued.
func sojourn(p *Packet, now Time) Time { return now - p.EnqueuedAt }

// codelShouldDrop runs the CoDel state machine on the head packet of a
// bucket and reports whether it should be dropped.
func (q *SFQCoDelQueue) codelShouldDrop(b *codelBucket, p *Packet, now Time) bool {
	if sojourn(p, now) < q.Target || b.bytes <= MTU+HeaderBytes {
		b.firstAboveAt = 0
		return false
	}
	if b.firstAboveAt == 0 {
		b.firstAboveAt = now + q.Interval
		return false
	}
	if now < b.firstAboveAt {
		return false
	}
	if !b.dropping {
		b.dropping = true
		if b.dropCount > 2 && now-b.dropNextAt < 8*q.Interval {
			// Re-entering drop state shortly after leaving it: resume at
			// the previous drop rate.
			b.dropCount -= 2
		} else {
			b.dropCount = 1
		}
		b.dropNextAt = now + q.Interval/math.Sqrt(float64(b.dropCount))
		return true
	}
	if now >= b.dropNextAt {
		b.dropCount++
		b.dropNextAt = now + q.Interval/math.Sqrt(float64(b.dropCount))
		return true
	}
	return false
}

// Dequeue implements Queue using deficit round-robin across buckets.
func (q *SFQCoDelQueue) Dequeue(now Time) (*Packet, bool) {
	for len(q.active) > 0 {
		id := q.active[0]
		b := q.buckets[id]
		if len(b.pkts) == 0 {
			q.active = q.active[1:]
			continue
		}
		head := b.pkts[0]
		if b.deficit < head.WireBytes {
			// Move the bucket to the back of the round and replenish.
			q.active = append(q.active[1:], id)
			b.deficit += q.Quantum
			continue
		}
		// CoDel: drop head packets while the controller says so.
		for len(b.pkts) > 0 && q.codelShouldDrop(b, b.pkts[0], now) {
			victim := b.pkts[0]
			b.pkts = b.pkts[1:]
			b.bytes -= victim.WireBytes
			q.bytes -= victim.WireBytes
			q.count--
			if q.onDrop != nil {
				q.onDrop(victim)
			}
		}
		if len(b.pkts) == 0 {
			b.dropping = false
			q.active = q.active[1:]
			continue
		}
		p := b.pkts[0]
		if sojourn(p, now) < q.Target {
			b.dropping = false
		}
		b.pkts = b.pkts[1:]
		b.bytes -= p.WireBytes
		b.deficit -= p.WireBytes
		q.bytes -= p.WireBytes
		q.count--
		if len(b.pkts) == 0 {
			q.active = q.active[1:]
		}
		return p, true
	}
	return nil, false
}

// Len implements Queue.
func (q *SFQCoDelQueue) Len() int { return q.count }

// Bytes implements Queue.
func (q *SFQCoDelQueue) Bytes() int { return q.bytes }

package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulation time in seconds since the start of the run.
type Time = float64

// Event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-breaker for deterministic ordering
	call func()
}

// eventHeap is a min-heap of events ordered by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulator owns the event queue and the simulation clock.
type Simulator struct {
	now    Time
	seq    uint64
	events eventHeap
	// processed counts executed events, for sanity limits in tests.
	processed uint64
}

// New creates an empty simulator at time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time.
func (s *Simulator) Now() Time { return s.now }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Schedule runs fn after delay seconds of simulated time. Negative delays are
// clamped to zero (the event runs at the current time, after already-pending
// events at that time).
func (s *Simulator) Schedule(delay Time, fn func()) {
	if fn == nil {
		panic("sim: Schedule called with nil callback")
	}
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	s.seq++
	heap.Push(&s.events, &event{at: s.now + delay, seq: s.seq, call: fn})
}

// At runs fn at the absolute simulation time t (clamped to the present).
func (s *Simulator) At(t Time, fn func()) {
	s.Schedule(t-s.now, fn)
}

// Run executes events until the queue is empty or the clock passes until.
func (s *Simulator) Run(until Time) {
	for len(s.events) > 0 {
		next := s.events[0]
		if next.at > until {
			break
		}
		heap.Pop(&s.events)
		if next.at > s.now {
			s.now = next.at
		}
		s.processed++
		next.call()
	}
	if s.now < until {
		s.now = until
	}
}

// RunAll executes every pending event. It panics if more than maxEvents are
// processed, to protect tests against runaway event loops.
func (s *Simulator) RunAll(maxEvents uint64) {
	start := s.processed
	for len(s.events) > 0 {
		next := heap.Pop(&s.events).(*event)
		if next.at > s.now {
			s.now = next.at
		}
		s.processed++
		next.call()
		if s.processed-start > maxEvents {
			panic(fmt.Sprintf("sim: RunAll exceeded %d events", maxEvents))
		}
	}
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.events) }

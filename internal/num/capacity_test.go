package num

import (
	"math"
	"testing"
)

// capacityTestProblem builds a small problem with overlapping routes so a
// capacity change on the shared link moves every price and rate.
func capacityTestProblem(caps []float64) *Problem {
	p := &Problem{Capacities: append([]float64(nil), caps...), MaxFlowRate: 10e9}
	routes := [][]int32{{0, 1}, {1, 2}, {0, 2}, {1}, {0}}
	for i, r := range routes {
		p.Flows = append(p.Flows, Flow{
			Route: r,
			Util:  LogUtility{W: 10e9 * float64(1+i%2)},
		})
	}
	return p
}

// TestSetCapacityMutateMatchesRebuild pins the re-pricing contract of live
// capacity updates: mutating Capacities in place mid-run must be bitwise
// identical to rebuilding the problem from scratch with the new capacities
// and resuming from the same solver state. The solvers read capacities fresh
// every step, so nothing else may be cached.
func TestSetCapacityMutateMatchesRebuild(t *testing.T) {
	p1 := capacityTestProblem([]float64{10e9, 10e9, 10e9})
	st1 := NewState(p1)
	ned1 := &NED{Gamma: 1}
	for i := 0; i < 25; i++ {
		ned1.Step(p1, st1)
	}
	if err := p1.SetCapacity(1, 2.5e9); err != nil {
		t.Fatal(err)
	}

	p2 := capacityTestProblem([]float64{10e9, 2.5e9, 10e9})
	st2 := &State{
		Prices: append([]float64(nil), st1.Prices...),
		Rates:  append([]float64(nil), st1.Rates...),
	}
	ned2 := &NED{Gamma: 1}

	for i := 0; i < 25; i++ {
		ned1.Step(p1, st1)
		ned2.Step(p2, st2)
		for l := range st1.Prices {
			if st1.Prices[l] != st2.Prices[l] {
				t.Fatalf("step %d: link %d price %g (mutated) != %g (rebuilt)", i, l, st1.Prices[l], st2.Prices[l])
			}
		}
		for f := range st1.Rates {
			if st1.Rates[f] != st2.Rates[f] {
				t.Fatalf("step %d: flow %d rate %g (mutated) != %g (rebuilt)", i, f, st1.Rates[f], st2.Rates[f])
			}
		}
	}
}

func TestSetCapacityRejectsBadInput(t *testing.T) {
	p := &Problem{Capacities: []float64{1e9}}
	bad := []struct {
		link int
		cap  float64
	}{
		{-1, 1e9}, {1, 1e9}, {0, 0}, {0, -2}, {0, math.NaN()}, {0, math.Inf(1)},
	}
	for _, c := range bad {
		if err := p.SetCapacity(c.link, c.cap); err == nil {
			t.Errorf("SetCapacity(%d, %g) accepted", c.link, c.cap)
		}
	}
	if err := p.SetCapacity(0, 2e9); err != nil || p.Capacities[0] != 2e9 {
		t.Fatalf("valid SetCapacity failed: %v (cap now %g)", err, p.Capacities[0])
	}
}

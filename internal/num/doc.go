// Package num implements the Network Utility Maximization (NUM) machinery at
// the heart of Flowtune's rate allocator (§3 of the paper): flow utility
// functions, the price-based dual decomposition, and the price-update
// algorithms compared in the paper — Newton-Exact-Diagonal (NED), Gradient
// projection, the Fast weighted Gradient Method (FGM), and the measurement
// based Newton-like method — together with their reduced-precision "RT"
// variants.
//
// The solver hot loops do not iterate the Problem's []Flow directly: the flow
// set is compiled into a flat CSR flow→link index with dense per-flow weights
// (see Compiled) so the common LogUtility case runs an interface-free,
// branch-free inner loop, and the index is maintained incrementally across
// flowlet churn via Problem.AppendFlow and Problem.RemoveFlowSwap. See
// ARCHITECTURE.md for the full design note.
package num

package num

import (
	"math"
	"math/rand"
	"testing"
)

// randomRoute draws a duplicate-free route of 1-4 links.
func randomRoute(rng *rand.Rand, numLinks int) []int32 {
	routeLen := 1 + rng.Intn(4)
	seen := map[int32]bool{}
	var route []int32
	for len(route) < routeLen {
		l := int32(rng.Intn(numLinks))
		if !seen[l] {
			seen[l] = true
			route = append(route, l)
		}
	}
	return route
}

// checkCompiledMatchesFlows verifies the CSR index agrees with p.Flows entry
// by entry, and that the transpose is consistent with the flow-major index.
func checkCompiledMatchesFlows(t *testing.T, p *Problem) {
	t.Helper()
	c := p.Compiled()
	if c.NumFlows() != len(p.Flows) {
		t.Fatalf("compiled has %d flows, problem has %d", c.NumFlows(), len(p.Flows))
	}
	for i := range p.Flows {
		f := &p.Flows[i]
		got := c.Route(i)
		if len(got) != len(f.Route) {
			t.Fatalf("flow %d: compiled route %v, want %v", i, got, f.Route)
		}
		for j := range got {
			if got[j] != f.Route[j] {
				t.Fatalf("flow %d: compiled route %v, want %v", i, got, f.Route)
			}
		}
		w, log := logWeight(*f)
		if log {
			if c.utility(i) != nil || c.Weights[i] != w {
				t.Fatalf("flow %d: fast path weight %g (util %v), want %g", i, c.Weights[i], c.utility(i), w)
			}
		} else if c.utility(i) != f.Util {
			t.Fatalf("flow %d: compiled utility %v, want %v", i, c.utility(i), f.Util)
		}
	}
	// Transpose: per-link flow sets must match a reference count.
	numLinks := len(p.Capacities)
	flows, off := c.Transpose(numLinks)
	counts := make(map[int32]map[int32]int)
	for i := range p.Flows {
		for _, l := range p.Flows[i].Route {
			if counts[l] == nil {
				counts[l] = map[int32]int{}
			}
			counts[l][int32(i)]++
		}
	}
	for l := 0; l < numLinks; l++ {
		for _, fi := range flows[off[l]:off[l+1]] {
			counts[int32(l)][fi]--
			if counts[int32(l)][fi] == 0 {
				delete(counts[int32(l)], fi)
			}
		}
		if len(counts[int32(l)]) != 0 {
			t.Fatalf("link %d: transpose disagrees with flow routes: leftover %v", l, counts[int32(l)])
		}
	}
}

// TestCompiledChurnConsistency drives a randomized AppendFlow/RemoveFlowSwap
// sequence and asserts the compiled index stays consistent with the flow set
// after every swap-delete (including arena compactions).
func TestCompiledChurnConsistency(t *testing.T) {
	const numLinks = 8
	const capacity = 10e9
	rng := rand.New(rand.NewSource(42))
	p := &Problem{MaxFlowRate: capacity}
	for l := 0; l < numLinks; l++ {
		p.Capacities = append(p.Capacities, capacity)
	}
	for step := 0; step < 3000; step++ {
		if rng.Float64() < 0.55 || len(p.Flows) == 0 {
			f := Flow{Route: randomRoute(rng, numLinks), Util: LogUtility{W: capacity * (1 + rng.Float64())}}
			if rng.Float64() < 0.05 {
				f.Util = AlphaFairUtility{W: capacity, Alpha: 2}
			}
			p.AppendFlow(f)
		} else {
			p.RemoveFlowSwap(rng.Intn(len(p.Flows)))
		}
		if step%37 == 0 || len(p.Flows) < 3 {
			checkCompiledMatchesFlows(t, p)
		}
	}
	checkCompiledMatchesFlows(t, p)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// referenceNEDStep is the pre-refactor NED iteration: interface dispatch per
// flow and per-flow Route slices, kept here as the oracle for the CSR path.
func referenceNEDStep(p *Problem, st *State, gamma float64) {
	loads := make([]float64, len(p.Capacities))
	hdiag := make([]float64, len(p.Capacities))
	for i, f := range p.Flows {
		ps := st.PathPrice(f.Route)
		if ps < minPathPrice {
			ps = minPathPrice
		}
		u := f.Util
		if u == nil {
			u = LogUtility{W: 1}
		}
		x := u.Rate(ps)
		if p.MaxFlowRate > 0 && x > p.MaxFlowRate {
			x = p.MaxFlowRate
		}
		st.Rates[i] = x
		d := u.RateDeriv(ps)
		for _, l := range f.Route {
			loads[l] += x
			hdiag[l] += d
		}
	}
	for l := range st.Prices {
		g := loads[l] - p.Capacities[l]
		h := hdiag[l]
		if h == 0 {
			st.Prices[l] *= 0.5
			continue
		}
		price := st.Prices[l] - gamma*g/h
		if price < 0 {
			price = 0
		}
		st.Prices[l] = price
	}
}

// buildRandomProblem returns a random multi-link problem; withCustom mixes in
// alpha-fair flows to exercise the generic dispatch path.
func buildRandomProblem(seed int64, numFlows int, withCustom bool) *Problem {
	const numLinks = 12
	const capacity = 10e9
	rng := rand.New(rand.NewSource(seed))
	p := &Problem{MaxFlowRate: capacity}
	for l := 0; l < numLinks; l++ {
		p.Capacities = append(p.Capacities, capacity)
	}
	for f := 0; f < numFlows; f++ {
		fl := Flow{Route: randomRoute(rng, numLinks), Util: LogUtility{W: capacity * (1 + rng.Float64())}}
		if withCustom && f%7 == 0 {
			fl.Util = AlphaFairUtility{W: capacity, Alpha: 2}
		}
		p.Flows = append(p.Flows, fl)
	}
	return p
}

// TestCompiledEquivalenceWithReference runs 200 NED iterations through the
// compiled CSR path and the pre-refactor reference path and requires the
// rates and prices to agree within 1e-9 relative error throughout, both for
// the all-log fast path and for problems mixing custom utilities.
func TestCompiledEquivalenceWithReference(t *testing.T) {
	for _, withCustom := range []bool{false, true} {
		name := "all-log"
		if withCustom {
			name = "mixed-utilities"
		}
		t.Run(name, func(t *testing.T) {
			p := buildRandomProblem(7, 60, withCustom)
			ref := buildRandomProblem(7, 60, withCustom)
			st := NewState(p)
			st.Resize(len(p.Flows))
			stRef := NewState(ref)
			stRef.Resize(len(ref.Flows))
			ned := &NED{Gamma: 0.4}
			for iter := 0; iter < 200; iter++ {
				ned.Step(p, st)
				referenceNEDStep(ref, stRef, 0.4)
				for i := range st.Rates {
					if relDiff(st.Rates[i], stRef.Rates[i]) > 1e-9 {
						t.Fatalf("iter %d flow %d: CSR rate %.15g, reference %.15g", iter, i, st.Rates[i], stRef.Rates[i])
					}
				}
				for l := range st.Prices {
					if relDiff(st.Prices[l], stRef.Prices[l]) > 1e-9 {
						t.Fatalf("iter %d link %d: CSR price %.15g, reference %.15g", iter, l, st.Prices[l], stRef.Prices[l])
					}
				}
			}
		})
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Max(math.Abs(a), math.Abs(b)), 1e-300)
}

// TestCompiledStalenessDetection: direct Flows mutations that change the flow
// count are picked up without Invalidate; same-count replacement requires it.
func TestCompiledStalenessDetection(t *testing.T) {
	const capacity = 10e9
	p := &Problem{Capacities: []float64{capacity}, MaxFlowRate: capacity}
	p.Flows = append(p.Flows, Flow{Route: []int32{0}, Util: LogUtility{W: capacity}})
	if got := p.Compiled().NumFlows(); got != 1 {
		t.Fatalf("compiled flows = %d, want 1", got)
	}
	// Direct append: count changes, rebuild happens.
	p.Flows = append(p.Flows, Flow{Route: []int32{0}, Util: LogUtility{W: 2 * capacity}})
	if got := p.Compiled().NumFlows(); got != 2 {
		t.Fatalf("after direct append: compiled flows = %d, want 2", got)
	}
	// Same-count replacement: stale until Invalidate.
	p.Flows[0] = Flow{Route: []int32{0}, Util: LogUtility{W: 5 * capacity}}
	p.Invalidate()
	if got := p.Compiled().Weights[0]; got != 5*capacity {
		t.Fatalf("after Invalidate: weight = %g, want %g", got, 5*capacity)
	}
}

// TestCompiledFastPathRestoredAfterCustomRemoval: removing the last
// custom-utility flow must drop the Utils slice so the monomorphized
// log-utility fast path re-engages.
func TestCompiledFastPathRestoredAfterCustomRemoval(t *testing.T) {
	const capacity = 10e9
	p := &Problem{Capacities: []float64{capacity}, MaxFlowRate: capacity}
	p.AppendFlow(Flow{Route: []int32{0}, Util: LogUtility{W: capacity}})
	if !p.Compiled().AllLog() {
		t.Fatal("all-log problem should start on the fast path")
	}
	p.AppendFlow(Flow{Route: []int32{0}, Util: AlphaFairUtility{W: capacity, Alpha: 2}})
	if p.Compiled().AllLog() {
		t.Fatal("custom utility should disable the fast path")
	}
	p.AppendFlow(Flow{Route: []int32{0}, Util: LogUtility{W: 2 * capacity}})
	p.RemoveFlowSwap(1) // remove the alpha-fair flow
	c := p.Compiled()
	if !c.AllLog() {
		t.Fatal("fast path should re-engage once the last custom-utility flow is removed")
	}
	checkCompiledMatchesFlows(t, p)
}

// TestCompiledProblemCopy: a Problem copied by value must not alias the
// original's compiled index — diverging mutations on both copies must each
// see their own flow set.
func TestCompiledProblemCopy(t *testing.T) {
	const capacity = 10e9
	p := &Problem{Capacities: []float64{capacity, capacity}, MaxFlowRate: capacity}
	p.AppendFlow(Flow{Route: []int32{0}, Util: LogUtility{W: capacity}})
	p.Compiled()

	p2 := *p
	p2.Flows = append([]Flow(nil), p.Flows...)
	p2.AppendFlow(Flow{Route: []int32{1}, Util: LogUtility{W: 2 * capacity}})
	p.AppendFlow(Flow{Route: []int32{0}, Util: LogUtility{W: 3 * capacity}})

	checkCompiledMatchesFlows(t, p)
	checkCompiledMatchesFlows(t, &p2)
	if p.Compiled() == p2.Compiled() {
		t.Fatal("copied problem shares the original's compiled index")
	}
}

// TestCompiledSolveEquivalence: a full Solve through the CSR path reaches the
// same converged allocation as the analytical fair share (guards against the
// index corrupting long solver runs).
func TestCompiledSolveEquivalence(t *testing.T) {
	const capacity = 10e9
	p := &Problem{Capacities: []float64{capacity}, MaxFlowRate: capacity}
	for i := 0; i < 5; i++ {
		p.AppendFlow(Flow{Route: []int32{0}, Util: LogUtility{W: capacity}})
	}
	st := NewState(p)
	if _, err := Solve(&NED{Gamma: 1}, p, st, SolveOptions{MaxIterations: 2000}); err != nil {
		t.Fatal(err)
	}
	want := capacity / 5
	for i, r := range st.Rates {
		if relDiff(r, want) > 0.01 {
			t.Errorf("flow %d rate %.4g, want %.4g", i, r, want)
		}
	}
}

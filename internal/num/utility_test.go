package num

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogUtilityValue(t *testing.T) {
	u := LogUtility{W: 2}
	if got := u.Value(math.E); math.Abs(got-2) > 1e-12 {
		t.Errorf("Value(e) = %g, want 2", got)
	}
	if !math.IsInf(u.Value(0), -1) {
		t.Error("Value(0) should be -Inf")
	}
	if !math.IsInf(u.Value(-1), -1) {
		t.Error("Value(-1) should be -Inf")
	}
}

func TestLogUtilityRateInverse(t *testing.T) {
	// Rate(p) must be the inverse of the marginal utility U'(x)=w/x.
	u := LogUtility{W: 3}
	for _, x := range []float64{0.5, 1, 10, 1e9} {
		price := u.W / x // U'(x)
		if got := u.Rate(price); math.Abs(got-x)/x > 1e-12 {
			t.Errorf("Rate(U'(%g)) = %g, want %g", x, got, x)
		}
	}
	if !math.IsInf(u.Rate(0), 1) {
		t.Error("Rate(0) should be +Inf")
	}
}

func TestLogUtilityRateDeriv(t *testing.T) {
	u := NewLogUtility()
	// Numerical derivative check.
	for _, p := range []float64{0.1, 1, 5} {
		const h = 1e-7
		numeric := (u.Rate(p+h) - u.Rate(p-h)) / (2 * h)
		analytic := u.RateDeriv(p)
		if math.Abs(numeric-analytic)/math.Abs(analytic) > 1e-4 {
			t.Errorf("RateDeriv(%g) = %g, numeric %g", p, analytic, numeric)
		}
		if analytic >= 0 {
			t.Errorf("RateDeriv(%g) = %g, want negative", p, analytic)
		}
	}
}

func TestAlphaFairValidation(t *testing.T) {
	if _, err := NewAlphaFair(0, 2); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewAlphaFair(1, 1); err == nil {
		t.Error("alpha=1 accepted (should use LogUtility)")
	}
	if _, err := NewAlphaFair(1, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := NewAlphaFair(1, 2); err != nil {
		t.Errorf("valid alpha-fair rejected: %v", err)
	}
}

func TestAlphaFairRateInverse(t *testing.T) {
	u, err := NewAlphaFair(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// U'(x) = w·x^(-α); Rate must invert it.
	for _, x := range []float64{0.5, 1, 4, 100} {
		price := u.W * math.Pow(x, -u.Alpha)
		if got := u.Rate(price); math.Abs(got-x)/x > 1e-10 {
			t.Errorf("Rate(U'(%g)) = %g, want %g", x, got, x)
		}
	}
}

func TestAlphaFairRateDeriv(t *testing.T) {
	u, err := NewAlphaFair(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.5, 1, 2} {
		const h = 1e-7
		numeric := (u.Rate(p+h) - u.Rate(p-h)) / (2 * h)
		analytic := u.RateDeriv(p)
		if math.Abs(numeric-analytic)/math.Abs(analytic) > 1e-4 {
			t.Errorf("RateDeriv(%g) = %g, numeric %g", p, analytic, numeric)
		}
	}
}

// TestUtilityConcavityProperty: for random prices p1 < p2, Rate must be
// decreasing (concave utility => decreasing inverse marginal utility).
func TestUtilityConcavityProperty(t *testing.T) {
	alpha, _ := NewAlphaFair(1.5, 2)
	utils := []Utility{NewLogUtility(), LogUtility{W: 7}, alpha}
	prop := func(a, b uint16) bool {
		p1 := float64(a%1000+1) / 100
		p2 := p1 + float64(b%1000+1)/100
		for _, u := range utils {
			if u.Rate(p1) < u.Rate(p2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}

func TestAlphaFairValueSign(t *testing.T) {
	u, _ := NewAlphaFair(1, 2)
	// For alpha=2, U(x) = -1/x: negative, increasing.
	if u.Value(1) >= 0 {
		t.Errorf("alpha=2 utility at 1 should be negative, got %g", u.Value(1))
	}
	if u.Value(2) <= u.Value(1) {
		t.Error("utility should be increasing")
	}
	if !math.IsInf(u.Value(0), -1) {
		t.Error("Value(0) should be -Inf")
	}
}

package num

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// singleLinkProblem returns n unit-weight flows sharing one link of the given
// capacity. Weights follow the repository convention weight = capacity.
func singleLinkProblem(n int, capacity float64) *Problem {
	p := &Problem{Capacities: []float64{capacity}, MaxFlowRate: capacity}
	for i := 0; i < n; i++ {
		p.Flows = append(p.Flows, Flow{Route: []int32{0}, Util: LogUtility{W: capacity}})
	}
	return p
}

// twoLinkTandemProblem: one long flow over links 0-1 and one short flow on
// each link. With equal weights the proportional-fair allocation gives the
// long flow 1/3 of capacity and each short flow 2/3 (for equal capacities).
func twoLinkTandemProblem(capacity float64) *Problem {
	return &Problem{
		Capacities:  []float64{capacity, capacity},
		MaxFlowRate: capacity,
		Flows: []Flow{
			{Route: []int32{0, 1}, Util: LogUtility{W: capacity}},
			{Route: []int32{0}, Util: LogUtility{W: capacity}},
			{Route: []int32{1}, Util: LogUtility{W: capacity}},
		},
	}
}

func solveWith(t *testing.T, s Solver, p *Problem, maxIter int) *State {
	t.Helper()
	st := NewState(p)
	if _, err := Solve(s, p, st, SolveOptions{MaxIterations: maxIter, Tolerance: 1e-10}); err != nil {
		t.Logf("Solve(%s): %v (continuing with the reached state)", s.Name(), err)
	}
	return st
}

func TestNEDSingleLinkFairShare(t *testing.T) {
	const capacity = 10e9
	for _, n := range []int{1, 2, 3, 5, 10, 50} {
		p := singleLinkProblem(n, capacity)
		st := solveWith(t, &NED{Gamma: 1}, p, 2000)
		want := capacity / float64(n)
		for i, r := range st.Rates {
			if math.Abs(r-want)/want > 0.01 {
				t.Errorf("n=%d: flow %d rate %.3g, want %.3g", n, i, r, want)
			}
		}
	}
}

func TestNEDWeightedShares(t *testing.T) {
	const capacity = 10e9
	p := &Problem{
		Capacities:  []float64{capacity},
		MaxFlowRate: capacity,
		Flows: []Flow{
			{Route: []int32{0}, Util: LogUtility{W: 1 * capacity}},
			{Route: []int32{0}, Util: LogUtility{W: 3 * capacity}},
		},
	}
	st := solveWith(t, &NED{Gamma: 1}, p, 2000)
	if math.Abs(st.Rates[0]-capacity/4)/(capacity/4) > 0.01 {
		t.Errorf("weight-1 flow got %.3g, want %.3g", st.Rates[0], capacity/4)
	}
	if math.Abs(st.Rates[1]-3*capacity/4)/(3*capacity/4) > 0.01 {
		t.Errorf("weight-3 flow got %.3g, want %.3g", st.Rates[1], 3*capacity/4)
	}
}

func TestNEDTandemProportionalFairness(t *testing.T) {
	const capacity = 10e9
	p := twoLinkTandemProblem(capacity)
	st := solveWith(t, &NED{Gamma: 1}, p, 4000)
	// Proportional fairness: long flow c/3, short flows 2c/3.
	wantLong := capacity / 3
	wantShort := 2 * capacity / 3
	if math.Abs(st.Rates[0]-wantLong)/wantLong > 0.02 {
		t.Errorf("long flow rate %.3g, want %.3g", st.Rates[0], wantLong)
	}
	for _, i := range []int{1, 2} {
		if math.Abs(st.Rates[i]-wantShort)/wantShort > 0.02 {
			t.Errorf("short flow %d rate %.3g, want %.3g", i, st.Rates[i], wantShort)
		}
	}
}

func TestSolversConvergeToSameAllocation(t *testing.T) {
	const capacity = 10e9
	p := twoLinkTandemProblem(capacity)
	ned := solveWith(t, &NED{Gamma: 1}, p, 4000)
	grad := solveWith(t, NewGradient(), p, 60000)
	newton := solveWith(t, NewNewtonLike(), p, 60000)
	for i := range p.Flows {
		if math.Abs(ned.Rates[i]-grad.Rates[i])/ned.Rates[i] > 0.05 {
			t.Errorf("flow %d: NED %.3g vs Gradient %.3g differ by more than 5%%", i, ned.Rates[i], grad.Rates[i])
		}
		if math.Abs(ned.Rates[i]-newton.Rates[i])/ned.Rates[i] > 0.05 {
			t.Errorf("flow %d: NED %.3g vs Newton-like %.3g differ by more than 5%%", i, ned.Rates[i], newton.Rates[i])
		}
	}
}

func TestNEDConvergesFasterThanGradient(t *testing.T) {
	const capacity = 10e9
	countIters := func(s Solver) int {
		p := twoLinkTandemProblem(capacity)
		st := NewState(p)
		iters, _ := Solve(s, p, st, SolveOptions{MaxIterations: 50000, Tolerance: 1e-8})
		return iters
	}
	nedIters := countIters(&NED{Gamma: 1})
	gradIters := countIters(NewGradient())
	if nedIters >= gradIters {
		t.Errorf("NED (%d iterations) should converge in fewer iterations than Gradient (%d)", nedIters, gradIters)
	}
}

func TestNEDRespectsMaxFlowRate(t *testing.T) {
	const capacity = 10e9
	p := singleLinkProblem(1, capacity)
	p.MaxFlowRate = capacity / 2
	st := solveWith(t, &NED{Gamma: 1}, p, 1000)
	if st.Rates[0] > p.MaxFlowRate*1.001 {
		t.Errorf("rate %.3g exceeds MaxFlowRate %.3g", st.Rates[0], p.MaxFlowRate)
	}
}

func TestNEDCapacityRespectedAtConvergence(t *testing.T) {
	const capacity = 10e9
	rng := rand.New(rand.NewSource(17))
	// Random multi-link problem: 12 links, 40 flows over random 1-4 link routes.
	p := &Problem{MaxFlowRate: capacity}
	for l := 0; l < 12; l++ {
		p.Capacities = append(p.Capacities, capacity)
	}
	for f := 0; f < 40; f++ {
		routeLen := 1 + rng.Intn(4)
		seen := map[int32]bool{}
		var route []int32
		for len(route) < routeLen {
			l := int32(rng.Intn(12))
			if !seen[l] {
				seen[l] = true
				route = append(route, l)
			}
		}
		p.Flows = append(p.Flows, Flow{Route: route, Util: LogUtility{W: capacity}})
	}
	// γ=0.4 is the step size the paper uses in its simulations; γ=1 can
	// oscillate on problems with many shared multi-link routes because the
	// diagonal approximation ignores cross-link terms.
	st := solveWith(t, &NED{Gamma: 0.4}, p, 5000)
	if !Feasible(p, st.Rates, 0.02) {
		t.Errorf("converged NED allocation violates capacities by more than 2%%: max utilization %.3f",
			MaxLinkUtilization(p, st.Rates))
	}
	// At the proportional-fair optimum every link with positive price is
	// saturated; at least the bottleneck utilization should be close to 1.
	if u := MaxLinkUtilization(p, st.Rates); u < 0.95 {
		t.Errorf("max link utilization %.3f, want >= 0.95 (work-conserving optimum)", u)
	}
}

func TestNEDWarmStartAfterChurn(t *testing.T) {
	const capacity = 10e9
	p := singleLinkProblem(4, capacity)
	st := NewState(p)
	solver := &NED{Gamma: 1}
	if _, err := Solve(solver, p, st, SolveOptions{MaxIterations: 2000}); err != nil {
		t.Fatal(err)
	}
	// Remove one flow and warm-start: should re-converge in few iterations.
	p.Flows = p.Flows[:3]
	st.Resize(3)
	iters, err := Solve(solver, p, st, SolveOptions{MaxIterations: 2000, Tolerance: 1e-8})
	if err != nil {
		t.Fatalf("re-convergence failed: %v", err)
	}
	if iters > 200 {
		t.Errorf("warm-started NED took %d iterations to re-converge, want <= 200", iters)
	}
	want := capacity / 3
	for i, r := range st.Rates {
		if math.Abs(r-want)/want > 0.01 {
			t.Errorf("flow %d rate %.3g after churn, want %.3g", i, r, want)
		}
	}
}

func TestGradientSlowButFeasibleUnderChurn(t *testing.T) {
	// Gradient adjusts prices slowly; after a single step from converged
	// state with a new flow, its over-allocation should be modest.
	const capacity = 10e9
	p := singleLinkProblem(3, capacity)
	grad := NewGradient()
	st := NewState(p)
	if _, err := Solve(grad, p, st, SolveOptions{MaxIterations: 100000, Tolerance: 1e-9}); err != nil {
		t.Logf("gradient solve: %v", err)
	}
	p.Flows = append(p.Flows, Flow{Route: []int32{0}, Util: LogUtility{W: capacity}})
	st.Resize(4)
	grad.Step(p, st)
	over := OverAllocation(p, st.Rates)
	// The new flow can add at most one NIC's worth of over-allocation.
	if over > capacity {
		t.Errorf("gradient over-allocation after churn %.3g exceeds one NIC rate", over)
	}
}

func TestSolverNames(t *testing.T) {
	cases := []struct {
		s    Solver
		want string
	}{
		{&NED{}, "NED"},
		{&NED{RT: true}, "NED-RT"},
		{NewGradient(), "Gradient"},
		{&Gradient{RT: true}, "Gradient-RT"},
		{NewFGM(), "FGM"},
		{NewNewtonLike(), "Newton-like"},
	}
	for _, tc := range cases {
		if got := tc.s.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

func TestSolveValidatesProblem(t *testing.T) {
	p := &Problem{Capacities: []float64{1e9}, Flows: []Flow{{Route: []int32{5}}}}
	if _, err := Solve(&NED{}, p, NewState(p), SolveOptions{}); err == nil {
		t.Error("Solve accepted a flow with an out-of-range link")
	}
	p2 := &Problem{Capacities: []float64{0}, Flows: nil}
	if _, err := Solve(&NED{}, p2, NewState(p2), SolveOptions{}); err == nil {
		t.Error("Solve accepted a non-positive capacity")
	}
	p3 := &Problem{Capacities: []float64{1e9}, Flows: []Flow{{Route: nil}}}
	if _, err := Solve(&NED{}, p3, NewState(p3), SolveOptions{}); err == nil {
		t.Error("Solve accepted a flow with an empty route")
	}
}

func TestRTVariantsCloseToExact(t *testing.T) {
	const capacity = 10e9
	p := twoLinkTandemProblem(capacity)
	exact := solveWith(t, &NED{Gamma: 1}, p, 4000)
	rt := solveWith(t, &NED{Gamma: 1, RT: true}, p, 4000)
	for i := range p.Flows {
		if math.Abs(exact.Rates[i]-rt.Rates[i])/exact.Rates[i] > 0.02 {
			t.Errorf("flow %d: NED %.4g vs NED-RT %.4g differ by more than 2%%", i, exact.Rates[i], rt.Rates[i])
		}
	}
}

func TestFGMRunsWithoutNaN(t *testing.T) {
	const capacity = 10e9
	p := twoLinkTandemProblem(capacity)
	st := NewState(p)
	fgm := NewFGM()
	for i := 0; i < 500; i++ {
		fgm.Step(p, st)
		for l, price := range st.Prices {
			if math.IsNaN(price) || math.IsInf(price, 0) || price < 0 {
				t.Fatalf("iteration %d: invalid price %g on link %d", i, price, l)
			}
		}
	}
}

// TestNEDFairShareProperty: for random flow counts and capacities, NED's
// converged single-link allocation is the fair share.
func TestNEDFairShareProperty(t *testing.T) {
	prop := func(nRaw uint8, capRaw uint16) bool {
		n := int(nRaw%20) + 1
		capacity := float64(capRaw%1000+1) * 1e8
		p := singleLinkProblem(n, capacity)
		st := NewState(p)
		_, _ = Solve(&NED{Gamma: 1}, p, st, SolveOptions{MaxIterations: 3000, Tolerance: 1e-9})
		want := capacity / float64(n)
		for _, r := range st.Rates {
			if math.Abs(r-want)/want > 0.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

// TestPriceNonNegativityProperty: prices stay non-negative and finite across
// solvers and random churn sequences.
func TestPriceNonNegativityProperty(t *testing.T) {
	prop := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const capacity = 10e9
		p := &Problem{Capacities: []float64{capacity, capacity, capacity}, MaxFlowRate: capacity}
		st := NewState(p)
		solvers := []Solver{&NED{Gamma: 1}, NewGradient(), NewFGM(), NewNewtonLike()}
		s := solvers[int(seed%int64(len(solvers))+int64(len(solvers)))%len(solvers)]
		for i := 0; i < int(steps%100)+10; i++ {
			// Random churn.
			if rng.Float64() < 0.3 || len(p.Flows) == 0 {
				route := []int32{int32(rng.Intn(3))}
				if rng.Float64() < 0.5 {
					route = append(route, int32(rng.Intn(3)))
				}
				p.Flows = append(p.Flows, Flow{Route: route, Util: LogUtility{W: capacity}})
			} else if rng.Float64() < 0.2 {
				p.Flows = p.Flows[:len(p.Flows)-1]
			}
			st.Resize(len(p.Flows))
			if len(p.Flows) == 0 {
				continue
			}
			s.Step(p, st)
			for _, price := range st.Prices {
				if price < 0 || math.IsNaN(price) || math.IsInf(price, 0) {
					return false
				}
			}
			for _, r := range st.Rates {
				if r < 0 || math.IsNaN(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestObjectiveImprovesOverIterations(t *testing.T) {
	const capacity = 10e9
	p := twoLinkTandemProblem(capacity)
	st := NewState(p)
	ned := &NED{Gamma: 1}
	ned.Step(p, st)
	// Feasible (normalized) objective should not decrease substantially as
	// the solver converges; compare early vs late objective of feasible
	// scaled rates.
	early := feasibleObjective(p, st.Rates)
	for i := 0; i < 500; i++ {
		ned.Step(p, st)
	}
	late := feasibleObjective(p, st.Rates)
	if late < early-1e-6 {
		t.Errorf("objective decreased from %.6g to %.6g over iterations", early, late)
	}
}

// feasibleObjective scales rates uniformly into the feasible region and
// returns the objective.
func feasibleObjective(p *Problem, rates []float64) float64 {
	u := MaxLinkUtilization(p, rates)
	scaled := make([]float64, len(rates))
	for i, r := range rates {
		if u > 1 {
			scaled[i] = r / u
		} else {
			scaled[i] = r
		}
	}
	return Objective(p, scaled)
}

package num

import (
	"fmt"
	"math"
)

// Solver performs one iteration of a NUM price-update algorithm. All solvers
// follow the same two-phase iteration structure as Algorithm 1: a rate-update
// step that sets each flow's rate from the current prices, followed by a
// price-update step that adjusts each link's price from the resulting
// over-allocation G_l; they differ in how the price step is scaled.
type Solver interface {
	// Name returns the solver's short name for reports ("NED",
	// "Gradient", ...).
	Name() string
	// Step performs one full iteration (rate update + price update) on
	// the problem, mutating st in place.
	Step(p *Problem, st *State)
}

// scratch holds per-iteration working buffers shared by solvers to avoid
// reallocating on every step.
type scratch struct {
	loads []float64 // per-link aggregate rate
	hdiag []float64 // per-link Hessian diagonal H_ll
}

func (s *scratch) ensure(numLinks int) {
	if cap(s.loads) < numLinks {
		s.loads = make([]float64, numLinks)
		s.hdiag = make([]float64, numLinks)
	}
	s.loads = s.loads[:numLinks]
	s.hdiag = s.hdiag[:numLinks]
}

// rateUpdate performs Equation 3: x_s = (U'_s)⁻¹(Σ_{l∈L(s)} p_l). It also
// accumulates per-link loads and, when hessian is true, the exact Hessian
// diagonal H_ll = Σ_{s∈S(l)} ∂x_s/∂p_l used by NED.
//
// minPrice clamps the path price away from zero so log-utility rates stay
// finite when all prices on a path drop to zero.
func rateUpdate(p *Problem, st *State, sc *scratch, hessian bool, minPrice float64) {
	c := p.Compiled()
	sc.ensure(len(p.Capacities))
	loads, hdiag := sc.loads, sc.hdiag
	for i := range loads {
		loads[i] = 0
		hdiag[i] = 0
	}
	if c.AllLog() {
		rateUpdateLog(c, p.MaxFlowRate, st, loads, hdiag, hessian, minPrice)
		return
	}
	rateUpdateGeneric(c, p.MaxFlowRate, st, loads, hdiag, hessian, minPrice)
}

// rateUpdateLog is the monomorphized log-utility fast path: every flow's rate
// is w/p and its sensitivity -w/p², computed straight from the CSR index with
// no interface dispatch and no per-flow pointer chasing.
func rateUpdateLog(c *Compiled, maxRate float64, st *State, loads, hdiag []float64, hessian bool, minPrice float64) {
	routes, off, lens, weights := c.Routes, c.Off, c.Len, c.Weights
	prices, rates := st.Prices, st.Rates
	if hessian {
		for i := range off {
			o := off[i]
			route := routes[o : o+lens[i]]
			ps := 0.0
			for _, l := range route {
				ps += prices[l]
			}
			if ps < minPrice {
				ps = minPrice
			}
			w := weights[i]
			x := w / ps
			if maxRate > 0 && x > maxRate {
				x = maxRate
			}
			rates[i] = x
			d := -w / (ps * ps)
			for _, l := range route {
				loads[l] += x
				hdiag[l] += d
			}
		}
		return
	}
	for i := range off {
		o := off[i]
		route := routes[o : o+lens[i]]
		ps := 0.0
		for _, l := range route {
			ps += prices[l]
		}
		if ps < minPrice {
			ps = minPrice
		}
		x := weights[i] / ps
		if maxRate > 0 && x > maxRate {
			x = maxRate
		}
		rates[i] = x
		for _, l := range route {
			loads[l] += x
		}
	}
}

// rateUpdateGeneric handles problems mixing custom utilities: log-utility
// flows still take the inline formulas, the rest dispatch through the
// interface.
func rateUpdateGeneric(c *Compiled, maxRate float64, st *State, loads, hdiag []float64, hessian bool, minPrice float64) {
	routes, off, lens := c.Routes, c.Off, c.Len
	prices, rates := st.Prices, st.Rates
	for i := range off {
		o := off[i]
		route := routes[o : o+lens[i]]
		ps := 0.0
		for _, l := range route {
			ps += prices[l]
		}
		if ps < minPrice {
			ps = minPrice
		}
		var x, d float64
		if u := c.Utils[i]; u != nil {
			x = u.Rate(ps)
			if hessian {
				d = u.RateDeriv(ps)
			}
		} else {
			w := c.Weights[i]
			x = w / ps
			if hessian {
				d = -w / (ps * ps)
			}
		}
		if maxRate > 0 && x > maxRate {
			x = maxRate
		}
		rates[i] = x
		if hessian {
			for _, l := range route {
				loads[l] += x
				hdiag[l] += d
			}
		} else {
			for _, l := range route {
				loads[l] += x
			}
		}
	}
}

// minPathPrice is the floor on path prices used by all solvers to keep rates
// finite. With 10-400 Gbit/s links, a price of 1e-12 allows rates up to
// 1e12·w bits/s, far above any link capacity, so the floor never binds at the
// optimum.
const minPathPrice = 1e-12

// applyPins overwrites pinned link prices after a price update (see
// Problem.PinnedPrices): pinned links belong to a remote owner, so the local
// update's result for them is discarded in favour of the imported price.
func applyPins(p *Problem, st *State) {
	if p.PinnedPrices == nil {
		return
	}
	for l, pin := range p.PinnedPrices {
		if pin >= 0 {
			st.Prices[l] = pin
		}
	}
}

// LoadReporter is implemented by solvers that retain the per-link load and
// Hessian-diagonal accumulations of their most recent Step. The returned
// slices alias solver scratch: they are valid until the next Step and must
// not be modified. hdiag is nil for solvers that do not compute the Hessian
// diagonal. A sharded allocator uses this to export its local boundary-link
// demand without recomputing it.
type LoadReporter interface {
	LastLoads() (loads, hdiag []float64)
}

// NED is the Newton-Exact-Diagonal solver (Algorithm 1): the price update is
// scaled by the exactly computed Hessian diagonal,
//
//	p_l ← max(0, p_l − γ·G_l/H_ll)
//
// where G_l is the link's over-allocation and H_ll = Σ ∂x_s/∂p_l (negative),
// so over-allocated links raise their price proportionally to how strongly
// flows will react.
type NED struct {
	// Gamma is the step-size parameter γ; the paper uses values in
	// [0.2, 1.5] and defaults to 0.4 in simulations, 1.0 in analysis.
	Gamma float64
	// RT enables the reduced-precision "real-time" variant (NED-RT in
	// Figure 12): single-precision arithmetic and a fast reciprocal
	// approximation in the price update.
	RT bool

	sc scratch
}

// NewNED returns a NED solver with the default γ=1 step size.
func NewNED() *NED { return &NED{Gamma: 1} }

// Name implements Solver.
func (n *NED) Name() string {
	if n.RT {
		return "NED-RT"
	}
	return "NED"
}

// Step implements Solver.
func (n *NED) Step(p *Problem, st *State) {
	gamma := n.Gamma
	if gamma == 0 {
		gamma = 1
	}
	rateUpdate(p, st, &n.sc, true, minPathPrice)
	ext, extH := p.ExternalLoads, p.ExternalHdiag
	for l := range st.Prices {
		g := n.sc.loads[l] - p.Capacities[l]
		h := n.sc.hdiag[l]
		if ext != nil {
			g += ext[l]
		}
		if extH != nil {
			h += extH[l]
		}
		if h == 0 {
			// No flows traverse the link: decay its price so the next
			// flowlet to use it is not throttled by a stale price.
			st.Prices[l] *= 0.5
			continue
		}
		var delta float64
		if n.RT {
			delta = float64(float32(gamma) * float32(g) / float32(h))
		} else {
			delta = gamma * g / h
		}
		price := st.Prices[l] - delta
		if price < 0 {
			price = 0
		}
		if n.RT {
			price = float64(float32(price))
		}
		st.Prices[l] = price
	}
	applyPins(p, st)
}

// LastLoads implements LoadReporter: the loads and Hessian diagonals
// accumulated by the most recent Step.
func (n *NED) LastLoads() (loads, hdiag []float64) { return n.sc.loads, n.sc.hdiag }

// Gradient is the gradient-projection solver (Low & Lapsley): prices move
// proportionally to the link's relative over-allocation,
// p_l ← max(0, p_l + γ·G_l/c_l). Because the step is not scaled by how
// sensitive flows actually are to the price (the Hessian), γ must be chosen
// conservatively, which makes the method slow to converge compared with NED
// and prone to sluggish reactions to churn.
//
// Prices are meaningful only when flow weights are on the same scale as link
// capacities (the convention used throughout this repository: weight = w ×
// link capacity), so that the optimal prices are O(1) like their initial
// value.
type Gradient struct {
	// Gamma is the dimensionless step size applied to the relative
	// over-allocation G_l/c_l (default 0.5).
	Gamma float64
	// RT enables the reduced-precision variant (Gradient-RT).
	RT bool

	sc scratch
}

// NewGradient returns a gradient-projection solver with the default step.
func NewGradient() *Gradient { return &Gradient{Gamma: 0.5} }

// Name implements Solver.
func (g *Gradient) Name() string {
	if g.RT {
		return "Gradient-RT"
	}
	return "Gradient"
}

// Step implements Solver.
func (g *Gradient) Step(p *Problem, st *State) {
	gamma := g.Gamma
	if gamma == 0 {
		gamma = 0.5
	}
	rateUpdate(p, st, &g.sc, false, minPathPrice)
	for l := range st.Prices {
		load := g.sc.loads[l]
		if p.ExternalLoads != nil {
			load += p.ExternalLoads[l]
		}
		over := (load - p.Capacities[l]) / p.Capacities[l]
		var delta float64
		if g.RT {
			delta = float64(float32(gamma) * float32(over))
		} else {
			delta = gamma * over
		}
		price := st.Prices[l] + delta
		if price < 0 {
			price = 0
		}
		st.Prices[l] = price
	}
	applyPins(p, st)
}

// LastLoads implements LoadReporter; hdiag is nil because the gradient
// solver never computes the Hessian diagonal.
func (g *Gradient) LastLoads() (loads, hdiag []float64) { return g.sc.loads, nil }

// FGM is the Fast weighted Gradient Method (Beck et al. 2014): an accelerated
// gradient method whose step is scaled by a crude upper bound on the utility
// curvature rather than the exact Hessian diagonal, with Nesterov-style
// momentum on the prices. The paper observes that FGM "does not handle the
// stream of updates well" — under churn the momentum term keeps pushing
// prices and the allocations become unrealistic; Figure 12 shows this.
type FGM struct {
	// Gamma scales the gradient step (default 1).
	Gamma float64

	lip     []float64 // per-link crude curvature bound
	prev    []float64 // previous prices, for the momentum term
	tk      float64   // Nesterov momentum sequence value
	sc      scratch
	started bool
}

// NewFGM returns an FGM solver.
func NewFGM() *FGM { return &FGM{Gamma: 1} }

// Name implements Solver.
func (f *FGM) Name() string { return "FGM" }

// estimateLipschitz computes a crude per-link curvature bound: the number of
// flows sharing the link times the largest |RateDeriv| at the initial price
// of 1. This mirrors FGM's use of a worst-case constant instead of the exact
// per-iteration values NED computes; the bound goes stale as prices move and
// as flowlets churn, which is the source of its misbehaviour in Figure 12.
func (f *FGM) estimateLipschitz(p *Problem) []float64 {
	c := p.Compiled()
	share := make([]float64, len(p.Capacities))
	// For LogUtility |RateDeriv(1)| = w, so the fast path reduces to a max
	// over the dense weights.
	maxDeriv := 1.0
	for i, w := range c.Weights {
		if u := c.utility(i); u != nil {
			w = math.Abs(u.RateDeriv(1))
		}
		if w > maxDeriv {
			maxDeriv = w
		}
	}
	// Per-link flow counts come straight from the transposed index.
	_, linkOff := c.Transpose(len(p.Capacities))
	for l := range share {
		n := float64(linkOff[l+1] - linkOff[l])
		if n == 0 {
			n = 1
		}
		share[l] = n * maxDeriv
	}
	return share
}

// Step implements Solver.
func (f *FGM) Step(p *Problem, st *State) {
	gamma := f.Gamma
	if gamma == 0 {
		gamma = 1
	}
	if !f.started || len(f.prev) != len(st.Prices) {
		f.lip = f.estimateLipschitz(p)
		f.prev = append(f.prev[:0], st.Prices...)
		f.tk = 1
		f.started = true
	}
	rateUpdate(p, st, &f.sc, false, minPathPrice)

	tNext := (1 + math.Sqrt(1+4*f.tk*f.tk)) / 2
	momentum := (f.tk - 1) / tNext
	f.tk = tNext

	for l := range st.Prices {
		load := f.sc.loads[l]
		if p.ExternalLoads != nil {
			load += p.ExternalLoads[l]
		}
		over := load - p.Capacities[l]
		grad := gamma * over / f.lip[l]
		// Gradient step from the extrapolated point, then projection.
		extrap := st.Prices[l] + momentum*(st.Prices[l]-f.prev[l])
		price := extrap + grad
		if price < 0 {
			price = 0
		}
		f.prev[l] = st.Prices[l]
		st.Prices[l] = price
	}
	applyPins(p, st)
}

// NewtonLike is the measurement-based Newton-like method (Athuraliya & Low
// 2000): instead of computing H_ll exactly it estimates flow sensitivity by
// observing how the aggregate link load changed in response to the previous
// price change, averaged over a measurement window. The estimate lags the
// network and carries error, which is why the paper found the method slow and
// sometimes unstable.
type NewtonLike struct {
	// Gamma is the step size (default 0.5).
	Gamma float64
	// Window is the exponential averaging weight of the sensitivity
	// estimate in (0,1]; smaller values average over longer intervals.
	Window float64

	prevLoads  []float64
	prevPrices []float64
	estimate   []float64
	sc         scratch
	started    bool
}

// NewNewtonLike returns a Newton-like solver with the defaults used in the
// comparison experiments.
func NewNewtonLike() *NewtonLike { return &NewtonLike{Gamma: 0.5, Window: 0.25} }

// Name implements Solver.
func (n *NewtonLike) Name() string { return "Newton-like" }

// Step implements Solver.
func (n *NewtonLike) Step(p *Problem, st *State) {
	gamma := n.Gamma
	if gamma == 0 {
		gamma = 0.5
	}
	window := n.Window
	if window == 0 {
		window = 0.25
	}
	rateUpdate(p, st, &n.sc, false, minPathPrice)

	numLinks := len(p.Capacities)
	if !n.started || len(n.estimate) != numLinks {
		n.prevLoads = make([]float64, numLinks)
		n.prevPrices = make([]float64, numLinks)
		n.estimate = make([]float64, numLinks)
		copy(n.prevLoads, n.sc.loads)
		copy(n.prevPrices, st.Prices)
		n.started = true
		// First iteration: fall back to a gentle gradient step.
		for l := range st.Prices {
			price := st.Prices[l] + 0.05*(n.sc.loads[l]-p.Capacities[l])/p.Capacities[l]
			if price < 0 {
				price = 0
			}
			st.Prices[l] = price
		}
		applyPins(p, st)
		return
	}

	for l := range st.Prices {
		dPrice := st.Prices[l] - n.prevPrices[l]
		dLoad := n.sc.loads[l] - n.prevLoads[l]
		if math.Abs(dPrice) > 1e-15 {
			obs := dLoad / dPrice // observed sensitivity (negative when stable)
			n.estimate[l] = (1-window)*n.estimate[l] + window*obs
		}
		n.prevLoads[l] = n.sc.loads[l]
		n.prevPrices[l] = st.Prices[l]

		g := n.sc.loads[l] - p.Capacities[l]
		if p.ExternalLoads != nil {
			g += p.ExternalLoads[l]
		}
		est := n.estimate[l]
		var price float64
		if est < -1e-15 {
			price = st.Prices[l] - gamma*g/est
		} else {
			// No reliable estimate yet: gentle gradient step.
			price = st.Prices[l] + 0.05*g/p.Capacities[l]
		}
		if price < 0 {
			price = 0
		}
		st.Prices[l] = price
	}
	applyPins(p, st)
}

// SolveOptions configures Solve.
type SolveOptions struct {
	// MaxIterations bounds the number of solver steps (default 10000).
	MaxIterations int
	// Tolerance is the relative convergence tolerance on the maximum
	// price change between iterations (default 1e-9).
	Tolerance float64
}

// Solve iterates a solver until the prices stop changing (relative change
// below tol) or maxIter is reached, and returns the number of iterations
// executed. It is used to obtain reference optimal allocations (e.g. the
// denominator of Figure 13) and by the convergence tests.
func Solve(s Solver, p *Problem, st *State, opts SolveOptions) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = 10000
	}
	tol := opts.Tolerance
	if tol == 0 {
		tol = 1e-9
	}
	st.Resize(len(p.Flows))
	prev := make([]float64, len(st.Prices))
	for iter := 1; iter <= maxIter; iter++ {
		copy(prev, st.Prices)
		s.Step(p, st)
		maxChange := 0.0
		for l := range st.Prices {
			denom := math.Max(math.Abs(prev[l]), 1e-12)
			change := math.Abs(st.Prices[l]-prev[l]) / denom
			if change > maxChange {
				maxChange = change
			}
		}
		if maxChange < tol {
			return iter, nil
		}
	}
	return maxIter, fmt.Errorf("num: %s did not converge within %d iterations", s.Name(), maxIter)
}

package num

import "testing"

// twoFlowShared builds a 3-link problem where flows A (links 0,1) and B
// (links 2,1) share link 1 — the boundary-link shape of a sharded cluster.
func twoFlowShared() *Problem {
	return &Problem{
		Capacities: []float64{10e9, 10e9, 10e9},
		Flows: []Flow{
			{Route: []int32{0, 1}, Util: LogUtility{W: 10e9}},
			{Route: []int32{2, 1}, Util: LogUtility{W: 10e9}},
		},
	}
}

// TestExternalLoadsMatchCombinedStep verifies the exactness property the
// boundary exchange relies on: a NED price update over a partial flow set
// plus the missing flows' load/hdiag supplied as external contributions is
// bit-identical to the price update of the combined problem.
func TestExternalLoadsMatchCombinedStep(t *testing.T) {
	combined := twoFlowShared()
	stC := NewState(combined)
	nedC := &NED{Gamma: 1}
	nedC.Step(combined, stC)

	// Shard view: only flow A, with flow B's first-step contribution on the
	// shared link provided externally. At the initial all-ones prices flow
	// B's rate is w/2 and its sensitivity -w/4, exactly what the combined
	// run accumulated on links 1 and 2.
	shard := &Problem{
		Capacities: []float64{10e9, 10e9, 10e9},
		Flows:      []Flow{{Route: []int32{0, 1}, Util: LogUtility{W: 10e9}}},
	}
	w := 10e9
	xB := w / 2
	dB := -w / 4
	shard.ExternalLoads = []float64{0, xB, xB}
	shard.ExternalHdiag = []float64{0, dB, dB}
	stS := NewState(shard)
	nedS := &NED{Gamma: 1}
	nedS.Step(shard, stS)

	for l := range stC.Prices {
		if stS.Prices[l] != stC.Prices[l] {
			t.Fatalf("link %d: shard price %v != combined price %v", l, stS.Prices[l], stC.Prices[l])
		}
	}
	if stS.Rates[0] != stC.Rates[0] {
		t.Fatalf("flow A rate %v != combined %v", stS.Rates[0], stC.Rates[0])
	}
}

// TestZeroExternalLoadsAreIdentity pins the byte-identity requirement of
// partition-local traffic: allocating the external arrays but leaving them
// zero must not perturb a single bit of the trajectory.
func TestZeroExternalLoadsAreIdentity(t *testing.T) {
	plain := twoFlowShared()
	stP := NewState(plain)
	nedP := &NED{Gamma: 0.4}

	ext := twoFlowShared()
	ext.ExternalLoads = make([]float64, 3)
	ext.ExternalHdiag = make([]float64, 3)
	ext.PinnedPrices = []float64{-1, -1, -1}
	stE := NewState(ext)
	nedE := &NED{Gamma: 0.4}

	for i := 0; i < 50; i++ {
		nedP.Step(plain, stP)
		nedE.Step(ext, stE)
		for l := range stP.Prices {
			if stP.Prices[l] != stE.Prices[l] {
				t.Fatalf("iter %d link %d: %v != %v", i, l, stP.Prices[l], stE.Prices[l])
			}
		}
		for f := range stP.Rates {
			if stP.Rates[f] != stE.Rates[f] {
				t.Fatalf("iter %d flow %d: %v != %v", i, f, stP.Rates[f], stE.Rates[f])
			}
		}
	}
}

// TestPinnedPricesOverrideLocalUpdate verifies pinned links hold their
// imported price through a Step while unpinned links keep evolving.
func TestPinnedPricesOverrideLocalUpdate(t *testing.T) {
	p := twoFlowShared()
	p.PinnedPrices = []float64{-1, 2.5, -1}
	st := NewState(p)
	ned := &NED{Gamma: 1}
	ned.Step(p, st)
	if st.Prices[1] != 2.5 {
		t.Fatalf("pinned link price = %v, want 2.5", st.Prices[1])
	}
	if st.Prices[0] == 1 {
		t.Fatal("unpinned loaded link price did not move")
	}
	// The pinned price feeds the next rate update: flow A sees path price
	// p0 + 2.5.
	prev := st.Prices[0]
	ned.Step(p, st)
	wantPath := prev + 2.5
	w := 10e9
	if got := st.Rates[0]; got != w/wantPath {
		t.Fatalf("rate after pin = %v, want %v", got, w/wantPath)
	}
}

// TestLastLoadsReportsStepAccumulation checks the LoadReporter contract NED
// exposes for digest building.
func TestLastLoadsReportsStepAccumulation(t *testing.T) {
	p := twoFlowShared()
	st := NewState(p)
	ned := &NED{Gamma: 1}
	ned.Step(p, st)
	loads, hdiag := ned.LastLoads()
	want := LinkLoads(p, st.Rates, nil)
	for l := range want {
		if loads[l] != want[l] {
			t.Fatalf("link %d load %v != %v", l, loads[l], want[l])
		}
	}
	if hdiag == nil || hdiag[1] >= 0 {
		t.Fatalf("hdiag on shared link = %v, want negative", hdiag)
	}
	var _ LoadReporter = ned
	var _ LoadReporter = NewGradient()
}

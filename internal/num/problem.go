package num

import (
	"fmt"
	"math"
)

// Flow is one flow (flowlet) in a NUM problem: the links it traverses and its
// utility function.
type Flow struct {
	// Route lists the link indices the flow traverses. It must be
	// non-empty: every flow passes through at least one link.
	Route []int32
	// Util is the flow's utility function. Nil means LogUtility{W: 1}.
	Util Utility
}

// utility returns the flow's utility, defaulting to proportional fairness.
func (f Flow) utility() Utility {
	if f.Util == nil {
		return LogUtility{W: 1}
	}
	return f.Util
}

// Problem is a static NUM instance: link capacities and a set of flows.
// Solvers iterate on a State derived from the problem.
//
// Copying a Problem by value is safe but forfeits the compiled-index cache:
// the copy detects that the cache belongs to the original and builds its own
// on first use.
type Problem struct {
	// Capacities holds the capacity of each link in bits per second.
	Capacities []float64
	// Flows is the set of flows to allocate. Prefer mutating it through
	// AppendFlow/RemoveFlowSwap, which keep the compiled CSR index (see
	// Compiled) in sync incrementally. Direct mutation is supported as long
	// as the flow count differs between solver steps; code that replaces
	// flows without changing the count must call Invalidate.
	Flows []Flow
	// MaxFlowRate caps each flow's rate in the rate-update step, modelling
	// the fact that an endpoint cannot send faster than its NIC. Zero
	// means no cap. Without a cap, a flow arriving on links whose prices
	// have decayed to zero would momentarily be allocated an unphysical
	// rate, grossly inflating the over-allocation the normalizer has to
	// absorb.
	MaxFlowRate float64

	// ExternalLoads and ExternalHdiag, when non-nil, carry per-link load
	// and Hessian-diagonal contributions from flows that are not part of
	// this problem — the remote shards of a sharded allocator cluster.
	// Solvers add them to the locally accumulated values in the
	// price-update step, and normalizers include ExternalLoads in link
	// utilization ratios, so boundary links are priced and normalized
	// against cluster-wide demand instead of just the local flow set. Both
	// must have length len(Capacities) when set.
	ExternalLoads []float64
	ExternalHdiag []float64

	// PinnedPrices, when non-nil, overrides the locally computed price of
	// selected links after every price update: an entry >= 0 is an
	// imported price (typically a remote owner's boundary-price snapshot)
	// that replaces whatever the local update produced; a negative entry
	// leaves the link's price under local control. It must have length
	// len(Capacities) when set.
	PinnedPrices []float64

	// compiled caches the CSR index over Flows; version is the mutation
	// counter used to detect staleness.
	compiled *Compiled
	version  uint64
}

// Validate checks that all routes reference valid links and capacities are
// positive.
func (p *Problem) Validate() error {
	for i, c := range p.Capacities {
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("num: link %d has invalid capacity %g", i, c)
		}
	}
	for i, f := range p.Flows {
		if len(f.Route) == 0 {
			return fmt.Errorf("num: flow %d has an empty route", i)
		}
		for _, l := range f.Route {
			if l < 0 || int(l) >= len(p.Capacities) {
				return fmt.Errorf("num: flow %d references link %d, but there are only %d links", i, l, len(p.Capacities))
			}
		}
	}
	return nil
}

// SetCapacity replaces one link's capacity in place. Solvers read Capacities
// fresh on every step and the compiled CSR index holds only routes and
// weights, so the change re-prices the link on the very next iteration with
// no rebuild and no state loss — the mechanism live link degradation rides
// on. The new capacity must be positive and finite (model a dead link as a
// tiny fraction of its former capacity, not zero, to keep the price update
// well-defined).
func (p *Problem) SetCapacity(link int, capacity float64) error {
	if link < 0 || link >= len(p.Capacities) {
		return fmt.Errorf("num: SetCapacity link %d out of range (%d links)", link, len(p.Capacities))
	}
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return fmt.Errorf("num: SetCapacity link %d: invalid capacity %g", link, capacity)
	}
	p.Capacities[link] = capacity
	return nil
}

// State is the mutable solver state for a Problem: link prices and flow
// rates. Prices persist across flow churn (the optimizer warm-starts from the
// previous prices, §4), which is why State is separate from Problem.
type State struct {
	// Prices holds the dual variable (price) of each link.
	Prices []float64
	// Rates holds the current rate of each flow in bits per second.
	Rates []float64
}

// NewState creates a State with all link prices initialized to 1 (the paper's
// initialization, §3) and all rates zero. The rates are filled in by the
// first solver iteration.
func NewState(p *Problem) *State {
	st := &State{
		Prices: make([]float64, len(p.Capacities)),
		Rates:  make([]float64, len(p.Flows)),
	}
	for i := range st.Prices {
		st.Prices[i] = 1
	}
	return st
}

// Resize adjusts the Rates slice to match a changed flow count, preserving
// prices. New flows start with rate zero. Growth doubles the capacity:
// Resize runs once per flowlet add, and an exact-fit reallocation would make
// registering n flows O(n²) in copied bytes — hours, not seconds, at the
// million-flow scale.
func (s *State) Resize(numFlows int) {
	if cap(s.Rates) >= numFlows {
		s.Rates = s.Rates[:numFlows]
		return
	}
	newCap := 2 * cap(s.Rates)
	if newCap < numFlows {
		newCap = numFlows
	}
	r := make([]float64, numFlows, newCap)
	copy(r, s.Rates)
	s.Rates = r
}

// PathPrice returns the sum of prices along a route.
func (s *State) PathPrice(route []int32) float64 {
	sum := 0.0
	for _, l := range route {
		sum += s.Prices[l]
	}
	return sum
}

// LinkLoads returns the total allocated rate on each link given the current
// per-flow rates.
func LinkLoads(p *Problem, rates []float64, out []float64) []float64 {
	if out == nil {
		out = make([]float64, len(p.Capacities))
	}
	for i := range out {
		out[i] = 0
	}
	c := p.Compiled()
	routes, off, lens := c.Routes, c.Off, c.Len
	for i := range off {
		r := rates[i]
		o := off[i]
		for _, l := range routes[o : o+lens[i]] {
			out[l] += r
		}
	}
	return out
}

// OverAllocation returns the total amount by which link loads exceed their
// capacities, summed over all links, in bits per second. This is the metric
// plotted in Figure 12.
func OverAllocation(p *Problem, rates []float64) float64 {
	loads := LinkLoads(p, rates, nil)
	over := 0.0
	for l, load := range loads {
		if excess := load - p.Capacities[l]; excess > 0 {
			over += excess
		}
	}
	return over
}

// Objective returns the NUM objective Σ U_s(x_s) for the given rates.
func Objective(p *Problem, rates []float64) float64 {
	c := p.Compiled()
	sum := 0.0
	for i := range c.Off {
		if u := c.utility(i); u != nil {
			sum += u.Value(rates[i])
			continue
		}
		sum += LogUtility{W: c.Weights[i]}.Value(rates[i])
	}
	return sum
}

// TotalThroughput returns the sum of flow rates in bits per second.
func TotalThroughput(rates []float64) float64 {
	sum := 0.0
	for _, r := range rates {
		sum += r
	}
	return sum
}

// MaxLinkUtilization returns the maximum ratio of link load to capacity.
func MaxLinkUtilization(p *Problem, rates []float64) float64 {
	loads := LinkLoads(p, rates, nil)
	max := 0.0
	for l, load := range loads {
		if u := load / p.Capacities[l]; u > max {
			max = u
		}
	}
	return max
}

// Feasible reports whether the rates satisfy every link capacity constraint
// within a relative tolerance tol (e.g. 1e-9).
func Feasible(p *Problem, rates []float64, tol float64) bool {
	loads := LinkLoads(p, rates, nil)
	for l, load := range loads {
		if load > p.Capacities[l]*(1+tol) {
			return false
		}
	}
	return true
}

package num

// This file implements the compiled problem representation: a flat,
// cache-friendly CSR (compressed-sparse-row) layout of the flow→link
// incidence that the solver hot loops iterate over instead of chasing one
// heap-allocated Route slice and one Utility interface per flow.
//
// Layout. All routes live concatenated in one arena (Routes); flow i's route
// is Routes[Off[i] : Off[i]+Len[i]]. Per-flow log-utility weights are stored
// densely in Weights so the common LogUtility case runs a branch-free,
// interface-free inner loop; problems that mix in custom utilities carry a
// parallel Utils slice and fall back to interface dispatch only for the flows
// that need it. A transposed link→flow index (LinkFlows/LinkOff) is built
// lazily for link-major consumers.
//
// Churn. The layout supports O(route length) swap-delete and append, mirroring
// the allocator's FlowletStart/FlowletEnd, so the index is maintained
// incrementally across flowlet churn instead of being rebuilt per iteration.
// Swap-deletes leave holes in the arena; the arena is compacted (into a
// reused scratch buffer) once holes outnumber live entries. Because of the
// holes the layout keeps explicit per-flow lengths instead of the textbook
// n+1 offsets array.

// Compiled is the compiled CSR form of a Problem's flow set. Obtain one with
// Problem.Compiled; all exported fields and the slices they contain must be
// treated as read-only.
type Compiled struct {
	// Routes is the route arena: flow i traverses the link indices
	// Routes[Off[i] : Off[i]+Len[i]].
	Routes []int32
	// Off holds each flow's start offset into Routes.
	Off []int32
	// Len holds each flow's route length.
	Len []int32
	// Weights holds each flow's log-utility weight. It is meaningful only
	// for flows on the fast path (Utils == nil, or Utils[i] == nil).
	Weights []float64
	// Utils is nil when every flow uses LogUtility (the fully
	// monomorphized case). Otherwise it has one entry per flow: nil for
	// log-utility flows, the custom Utility for the rest.
	Utils []Utility

	owner     *Problem // the Problem this index belongs to (copy detection)
	version   uint64   // Problem.version this index is consistent with
	dead      int      // arena entries orphaned by swap-deletes
	numCustom int      // flows with a non-LogUtility utility

	// Lazily built transpose: link l is traversed by the flows
	// linkFlows[linkOff[l]:linkOff[l+1]].
	linkFlows []int32
	linkOff   []int32
	tNumLinks int
	tvalid    bool

	routesScratch []int32 // ping-pong buffer for arena compaction
	cursorScratch []int32 // per-link cursors for transpose construction
}

// logWeight reports whether the flow is on the monomorphized log-utility fast
// path and, if so, its weight.
func logWeight(f Flow) (float64, bool) {
	if f.Util == nil {
		return 1, true
	}
	if lu, ok := f.Util.(LogUtility); ok {
		return lu.W, true
	}
	return 0, false
}

// Compiled returns the CSR index for the problem's current flow set,
// (re)building it if the cached one is missing or stale. Staleness is
// detected by flow count and by the mutation counter AppendFlow,
// RemoveFlowSwap and Invalidate maintain; see the Flows field comment for the
// direct-mutation caveat.
func (p *Problem) Compiled() *Compiled {
	c := p.compiled
	if c == nil || c.owner != p {
		// No index yet, or p is a copy of another Problem and shares its
		// cache pointer: give p its own index rather than mutating (or
		// trusting the version counter of) the shared one.
		c = &Compiled{owner: p}
		p.compiled = c
	} else if len(c.Off) == len(p.Flows) && c.version == p.version {
		return c
	}
	c.rebuild(p)
	return c
}

// Invalidate marks the cached CSR index stale so the next Compiled call
// rebuilds it. Call it after mutating Flows directly in a way the staleness
// check cannot see (replacing flows without changing the flow count).
func (p *Problem) Invalidate() {
	p.version++
}

// AppendFlow adds a flow to the problem, keeping the compiled index in sync
// incrementally (O(route length)).
func (p *Problem) AppendFlow(f Flow) {
	c := p.compiled
	sync := c != nil && c.owner == p && len(c.Off) == len(p.Flows) && c.version == p.version
	p.Flows = append(p.Flows, f)
	p.version++
	if sync {
		c.appendFlow(f)
		c.version = p.version
	}
}

// RemoveFlowSwap removes flow i by moving the last flow into its slot (the
// allocator's swap-delete), keeping the compiled index in sync incrementally.
// Callers maintaining per-flow state in problem order must apply the same
// swap.
func (p *Problem) RemoveFlowSwap(i int) {
	c := p.compiled
	sync := c != nil && c.owner == p && len(c.Off) == len(p.Flows) && c.version == p.version
	last := len(p.Flows) - 1
	if i != last {
		p.Flows[i] = p.Flows[last]
	}
	p.Flows[last] = Flow{} // release the route and utility
	p.Flows = p.Flows[:last]
	p.version++
	if sync {
		c.removeFlowSwap(i)
		c.version = p.version
	}
}

// rebuild recompiles the index from scratch, reusing existing capacity.
func (c *Compiled) rebuild(p *Problem) {
	n := len(p.Flows)
	total := 0
	custom := 0
	for i := range p.Flows {
		total += len(p.Flows[i].Route)
		if _, log := logWeight(p.Flows[i]); !log {
			custom++
		}
	}
	c.Routes = resizeInt32(c.Routes, total)[:0]
	c.Off = resizeInt32(c.Off, n)
	c.Len = resizeInt32(c.Len, n)
	c.Weights = resizeFloat64(c.Weights, n)
	c.Utils = nil
	c.numCustom = custom
	if custom > 0 {
		c.Utils = make([]Utility, n)
	}
	for i := range p.Flows {
		f := &p.Flows[i]
		c.Off[i] = int32(len(c.Routes))
		c.Len[i] = int32(len(f.Route))
		c.Routes = append(c.Routes, f.Route...)
		w, log := logWeight(*f)
		c.Weights[i] = w
		if !log {
			c.Utils[i] = f.Util
		}
	}
	c.dead = 0
	c.tvalid = false
	c.version = p.version
}

// appendFlow adds one flow at the end of the index.
func (c *Compiled) appendFlow(f Flow) {
	c.Off = append(c.Off, int32(len(c.Routes)))
	c.Len = append(c.Len, int32(len(f.Route)))
	c.Routes = append(c.Routes, f.Route...)
	w, log := logWeight(f)
	c.Weights = append(c.Weights, w)
	if !log {
		c.numCustom++
	}
	if c.Utils != nil {
		var u Utility
		if !log {
			u = f.Util
		}
		c.Utils = append(c.Utils, u)
	} else if !log {
		// First custom utility: materialize the per-flow slice.
		c.Utils = make([]Utility, len(c.Off))
		c.Utils[len(c.Off)-1] = f.Util
	}
	c.tvalid = false
}

// removeFlowSwap removes flow i by swap-delete, leaving its route as a hole
// in the arena and compacting once holes outnumber live entries.
func (c *Compiled) removeFlowSwap(i int) {
	last := len(c.Off) - 1
	c.dead += int(c.Len[i])
	if c.Utils != nil && c.Utils[i] != nil {
		c.numCustom--
	}
	if i != last {
		c.Off[i] = c.Off[last]
		c.Len[i] = c.Len[last]
		c.Weights[i] = c.Weights[last]
		if c.Utils != nil {
			c.Utils[i] = c.Utils[last]
		}
	}
	c.Off = c.Off[:last]
	c.Len = c.Len[:last]
	c.Weights = c.Weights[:last]
	if c.Utils != nil {
		c.Utils[last] = nil
		if c.numCustom == 0 {
			// The last custom-utility flow is gone: drop the per-flow
			// slice so the monomorphized fast path re-engages.
			c.Utils = nil
		} else {
			c.Utils = c.Utils[:last]
		}
	}
	c.tvalid = false
	if live := len(c.Routes) - c.dead; c.dead > live && c.dead > CompactMinDead {
		c.Routes, c.routesScratch, c.dead = CompactArena(c.Routes, c.routesScratch, c.Off, c.Len)
	}
}

// CompactMinDead is the minimum number of orphaned arena entries before a
// swap-delete considers compaction, shared by every CSR arena in the tree
// (this package's Compiled index and the parallel allocator's FlowBlocks).
const CompactMinDead = 64

// CompactArena rewrites a CSR arena (per-flow slices at off[i]:off[i]+len[i])
// without holes into a reused scratch buffer and swaps the buffers, updating
// off in place, so steady-state churn allocates nothing once both buffers
// have grown to the working-set size. It returns the compacted arena, the new
// scratch buffer (the old arena, truncated), and the reset dead count.
func CompactArena(arena, scratch, off, length []int32) (newArena, newScratch []int32, dead int) {
	live := 0
	for i := range length {
		live += int(length[i])
	}
	buf := scratch
	if cap(buf) < live {
		buf = make([]int32, 0, live)
	}
	buf = buf[:0]
	for i := range off {
		o, n := off[i], length[i]
		off[i] = int32(len(buf))
		buf = append(buf, arena[o:o+n]...)
	}
	return buf, arena[:0], 0
}

// NumFlows returns the number of flows in the index.
func (c *Compiled) NumFlows() int { return len(c.Off) }

// AllLog reports whether every flow is on the log-utility fast path.
func (c *Compiled) AllLog() bool { return c.Utils == nil }

// Route returns flow i's route as a slice into the arena (read-only).
func (c *Compiled) Route(i int) []int32 {
	o := c.Off[i]
	return c.Routes[o : o+c.Len[i]]
}

// utility returns flow i's utility, nil meaning the log fast path with weight
// Weights[i].
func (c *Compiled) utility(i int) Utility {
	if c.Utils == nil {
		return nil
	}
	return c.Utils[i]
}

// Transpose returns the link→flow index for numLinks links: link l is
// traversed by the flows flows[off[l]:off[l+1]]. It is rebuilt lazily after
// churn with a counting sort over the flow-major index.
func (c *Compiled) Transpose(numLinks int) (flows, off []int32) {
	if !c.tvalid || c.tNumLinks != numLinks {
		c.buildTranspose(numLinks)
	}
	return c.linkFlows, c.linkOff
}

func (c *Compiled) buildTranspose(numLinks int) {
	c.linkOff = resizeInt32(c.linkOff, numLinks+1)
	for i := range c.linkOff {
		c.linkOff[i] = 0
	}
	live := 0
	for i := range c.Off {
		for _, l := range c.Route(i) {
			c.linkOff[l+1]++
			live++
		}
	}
	for l := 0; l < numLinks; l++ {
		c.linkOff[l+1] += c.linkOff[l]
	}
	c.linkFlows = resizeInt32(c.linkFlows, live)
	cur := resizeInt32(c.cursorScratch, numLinks)
	copy(cur, c.linkOff[:numLinks])
	for i := range c.Off {
		for _, l := range c.Route(i) {
			c.linkFlows[cur[l]] = int32(i)
			cur[l]++
		}
	}
	c.cursorScratch = cur
	c.tNumLinks = numLinks
	c.tvalid = true
}

// resizeInt32 returns a slice of length n, reusing s's capacity when possible.
func resizeInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// resizeFloat64 returns a slice of length n, reusing s's capacity.
func resizeFloat64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

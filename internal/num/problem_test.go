package num

import (
	"math"
	"testing"
)

func TestProblemValidate(t *testing.T) {
	good := &Problem{Capacities: []float64{1e9, 2e9}, Flows: []Flow{{Route: []int32{0, 1}}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
	bad := []*Problem{
		{Capacities: []float64{0}, Flows: nil},
		{Capacities: []float64{-1}, Flows: nil},
		{Capacities: []float64{math.NaN()}, Flows: nil},
		{Capacities: []float64{math.Inf(1)}, Flows: nil},
		{Capacities: []float64{1e9}, Flows: []Flow{{Route: nil}}},
		{Capacities: []float64{1e9}, Flows: []Flow{{Route: []int32{1}}}},
		{Capacities: []float64{1e9}, Flows: []Flow{{Route: []int32{-1}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid problem %d accepted", i)
		}
	}
}

func TestNewStateInitialization(t *testing.T) {
	p := &Problem{Capacities: []float64{1e9, 1e9}, Flows: []Flow{{Route: []int32{0}}, {Route: []int32{1}}}}
	st := NewState(p)
	if len(st.Prices) != 2 || len(st.Rates) != 2 {
		t.Fatalf("state sizes wrong: %d prices, %d rates", len(st.Prices), len(st.Rates))
	}
	for _, price := range st.Prices {
		if price != 1 {
			t.Errorf("initial price %g, want 1 (the paper's initialization)", price)
		}
	}
}

func TestStateResize(t *testing.T) {
	p := &Problem{Capacities: []float64{1e9}, Flows: []Flow{{Route: []int32{0}}, {Route: []int32{0}}}}
	st := NewState(p)
	st.Rates[0], st.Rates[1] = 5, 7
	st.Resize(1)
	if len(st.Rates) != 1 || st.Rates[0] != 5 {
		t.Errorf("shrink lost data: %v", st.Rates)
	}
	st.Resize(3)
	if len(st.Rates) != 3 || st.Rates[0] != 5 {
		t.Errorf("grow lost data: %v", st.Rates)
	}
	if st.Rates[2] != 0 {
		t.Errorf("new slots should be zero, got %g", st.Rates[2])
	}
}

func TestPathPrice(t *testing.T) {
	st := &State{Prices: []float64{0.5, 1.5, 2}}
	if got := st.PathPrice([]int32{0, 2}); got != 2.5 {
		t.Errorf("PathPrice = %g, want 2.5", got)
	}
	if got := st.PathPrice(nil); got != 0 {
		t.Errorf("PathPrice(nil) = %g, want 0", got)
	}
}

func TestLinkLoadsAndOverAllocation(t *testing.T) {
	p := &Problem{
		Capacities: []float64{10, 10},
		Flows: []Flow{
			{Route: []int32{0}},
			{Route: []int32{0, 1}},
		},
	}
	rates := []float64{6, 7}
	loads := LinkLoads(p, rates, nil)
	if loads[0] != 13 || loads[1] != 7 {
		t.Errorf("loads = %v, want [13 7]", loads)
	}
	if got := OverAllocation(p, rates); got != 3 {
		t.Errorf("OverAllocation = %g, want 3", got)
	}
	if got := MaxLinkUtilization(p, rates); got != 1.3 {
		t.Errorf("MaxLinkUtilization = %g, want 1.3", got)
	}
	if Feasible(p, rates, 0.01) {
		t.Error("Feasible should report false for an over-allocated problem")
	}
	if !Feasible(p, []float64{3, 7}, 0.01) {
		t.Error("Feasible should report true for a feasible allocation")
	}
}

func TestLinkLoadsReuseBuffer(t *testing.T) {
	p := &Problem{Capacities: []float64{10}, Flows: []Flow{{Route: []int32{0}}}}
	buf := make([]float64, 1)
	buf[0] = 123
	out := LinkLoads(p, []float64{4}, buf)
	if &out[0] != &buf[0] {
		t.Error("LinkLoads did not reuse the provided buffer")
	}
	if out[0] != 4 {
		t.Errorf("buffer not reset: %v", out)
	}
}

func TestObjectiveAndThroughput(t *testing.T) {
	p := &Problem{
		Capacities: []float64{10},
		Flows: []Flow{
			{Route: []int32{0}, Util: LogUtility{W: 1}},
			{Route: []int32{0}, Util: LogUtility{W: 2}},
		},
	}
	rates := []float64{math.E, math.E}
	want := 1.0 + 2.0 // 1*log(e) + 2*log(e)
	if got := Objective(p, rates); math.Abs(got-want) > 1e-12 {
		t.Errorf("Objective = %g, want %g", got, want)
	}
	if got := TotalThroughput(rates); math.Abs(got-2*math.E) > 1e-12 {
		t.Errorf("TotalThroughput = %g, want %g", got, 2*math.E)
	}
}

func TestFlowDefaultUtility(t *testing.T) {
	f := Flow{Route: []int32{0}}
	u := f.utility()
	if _, ok := u.(LogUtility); !ok {
		t.Errorf("default utility should be LogUtility, got %T", u)
	}
}

package num

import (
	"math/rand"
	"testing"
)

// opaqueLog behaves exactly like LogUtility but hides behind the interface,
// forcing the generic dispatch path; the delta against the monomorphized fast
// path is the cost the CSR compilation removes.
type opaqueLog struct{ w float64 }

func (u opaqueLog) Value(x float64) float64 { return LogUtility{W: u.w}.Value(x) }
func (u opaqueLog) Rate(p float64) float64  { return u.w / p }
func (u opaqueLog) RateDeriv(p float64) float64 {
	return -u.w / (p * p)
}

// benchProblem builds a dense random problem; opaque selects the interface
// path for every flow.
func benchProblem(numFlows int, opaque bool) *Problem {
	const numLinks = 256
	const capacity = 40e9
	rng := rand.New(rand.NewSource(1))
	p := &Problem{MaxFlowRate: capacity}
	for l := 0; l < numLinks; l++ {
		p.Capacities = append(p.Capacities, capacity)
	}
	for f := 0; f < numFlows; f++ {
		var u Utility = LogUtility{W: capacity}
		if opaque {
			u = opaqueLog{w: capacity}
		}
		p.Flows = append(p.Flows, Flow{Route: randomRoute(rng, numLinks), Util: u})
	}
	return p
}

// BenchmarkRateUpdateLogFastPath measures the monomorphized CSR inner loop
// (every flow LogUtility, no interface dispatch).
func BenchmarkRateUpdateLogFastPath(b *testing.B) {
	p := benchProblem(5000, false)
	st := NewState(p)
	var sc scratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rateUpdate(p, st, &sc, true, minPathPrice)
	}
}

// BenchmarkRateUpdateInterfacePath measures the same workload forced through
// the generic interface-dispatch path.
func BenchmarkRateUpdateInterfacePath(b *testing.B) {
	p := benchProblem(5000, true)
	st := NewState(p)
	var sc scratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rateUpdate(p, st, &sc, true, minPathPrice)
	}
}

// BenchmarkCompiledChurn measures one AppendFlow + RemoveFlowSwap pair
// against a steady 5000-flow index (the incremental maintenance cost paid
// per flowlet event, including amortized arena compaction).
func BenchmarkCompiledChurn(b *testing.B) {
	const numLinks = 256
	p := benchProblem(5000, false)
	p.Compiled()
	rng := rand.New(rand.NewSource(2))
	routes := make([][]int32, 64)
	for i := range routes {
		routes[i] = randomRoute(rng, numLinks)
	}
	// Boxed once: storing a LogUtility in the interface field allocates, and
	// that boxing cost belongs to flow construction, not index maintenance.
	var util Utility = LogUtility{W: 40e9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AppendFlow(Flow{Route: routes[i%len(routes)], Util: util})
		p.RemoveFlowSwap(rng.Intn(len(p.Flows)))
	}
}

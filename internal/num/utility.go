package num

import (
	"fmt"
	"math"
)

// Utility is a flow utility function U(x) of the flow's allocated rate x.
// NED admits any strictly concave, differentiable, monotonically increasing
// utility; the interface exposes the pieces the optimizer needs: the inverse
// marginal utility (U')⁻¹ used in the rate-update step (Equation 3), and its
// derivative used to compute the exact Hessian diagonal H_ll (Equation 4).
type Utility interface {
	// Value returns U(x).
	Value(x float64) float64
	// Rate returns (U')⁻¹(p): the rate a flow chooses when the sum of the
	// prices along its path is p.
	Rate(priceSum float64) float64
	// RateDeriv returns d/dp (U')⁻¹(p): how the chosen rate reacts to a
	// change in path price. It is negative for concave utilities.
	RateDeriv(priceSum float64) float64
}

// LogUtility is the weighted logarithmic utility U(x) = w·log(x), which makes
// the NUM objective weighted proportional fairness (§3). It is the utility
// used throughout the paper's evaluation.
type LogUtility struct {
	// W is the flow weight; it must be positive. NewLogUtility returns the
	// canonical w=1 utility.
	W float64
}

// NewLogUtility returns the unweighted proportional-fairness utility.
func NewLogUtility() LogUtility { return LogUtility{W: 1} }

// Value returns w·log(x).
func (u LogUtility) Value(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return u.W * math.Log(x)
}

// Rate returns w/p, the profit-maximizing rate at path price p.
func (u LogUtility) Rate(priceSum float64) float64 {
	if priceSum <= 0 {
		return math.Inf(1)
	}
	return u.W / priceSum
}

// RateDeriv returns -w/p².
func (u LogUtility) RateDeriv(priceSum float64) float64 {
	if priceSum <= 0 {
		return math.Inf(-1)
	}
	return -u.W / (priceSum * priceSum)
}

// AlphaFairUtility is the family of α-fair utilities
// U(x) = w·x^(1-α)/(1-α) for α ≠ 1 (α=1 is LogUtility). α=2 approximates
// minimum potential delay fairness; α→∞ approaches max-min fairness.
type AlphaFairUtility struct {
	// W is the flow weight (positive).
	W float64
	// Alpha is the fairness parameter (positive, ≠ 1).
	Alpha float64
}

// NewAlphaFair builds an α-fair utility, validating its parameters.
func NewAlphaFair(w, alpha float64) (AlphaFairUtility, error) {
	if w <= 0 {
		return AlphaFairUtility{}, fmt.Errorf("num: alpha-fair weight must be positive, got %g", w)
	}
	if alpha <= 0 || alpha == 1 {
		return AlphaFairUtility{}, fmt.Errorf("num: alpha must be positive and != 1 (use LogUtility for alpha=1), got %g", alpha)
	}
	return AlphaFairUtility{W: w, Alpha: alpha}, nil
}

// Value returns w·x^(1-α)/(1-α).
func (u AlphaFairUtility) Value(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return u.W * math.Pow(x, 1-u.Alpha) / (1 - u.Alpha)
}

// Rate returns (w/p)^(1/α).
func (u AlphaFairUtility) Rate(priceSum float64) float64 {
	if priceSum <= 0 {
		return math.Inf(1)
	}
	return math.Pow(u.W/priceSum, 1/u.Alpha)
}

// RateDeriv returns d/dp (w/p)^(1/α) = -(1/α)·(w/p)^(1/α)/p.
func (u AlphaFairUtility) RateDeriv(priceSum float64) float64 {
	if priceSum <= 0 {
		return math.Inf(-1)
	}
	return -math.Pow(u.W/priceSum, 1/u.Alpha) / (u.Alpha * priceSum)
}

// Package cluster runs N flowtuned daemons as a cooperating sharded
// allocator: a deterministic shard map (topology.ShardMap) derived from the
// FlowBlock/LinkBlock rack partition assigns each rack block — its servers
// plus every link anchored at its racks — to one daemon, endpoints hash each
// flowlet to the shard of its source server (transport.ShardedClient), and
// the daemons reconcile cross-shard paths by exchanging only boundary state:
// each shard pushes its local load on remote downward links to their owner
// (wire.PriceDigest) and publishes the prices of its own downward links
// (wire.PriceSnapshot) after every iteration.
//
// On partition-local traffic (flows that stay inside one shard) the cluster
// is byte-identical to a single daemon, because no two shards' flows share a
// link and NED's per-link price updates are independent given loads. The
// one caveat is floating-point summation order: a retirement that is not
// the most recent registration swap-deletes the single daemon's global flow
// array differently from a shard's local one, which can reorder per-link
// load accumulation and perturb rates at ULP scale — an associativity
// artifact bounded by the convergence tests, not exchange divergence. On
// cross-shard traffic the exchange makes every boundary link's price update
// use cluster-wide load and sensitivity — exact except for the one-iteration
// staleness of the remote contributions — so the cluster converges to the
// global allocation within a tolerance set by churn and the exchange lag.
//
// This package hosts the in-process harness (daemons + full peer mesh over
// net.Pipe) used by tests and the sharded-incast scenario; production
// clusters run the same daemons as flowtuned processes over TCP.
package cluster

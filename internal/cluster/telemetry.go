package cluster

import (
	"fmt"
	"net"
	"strconv"

	"repro/internal/telemetry"
)

// Observability: a cluster exposes the same admin surface a single daemon
// does, in two shapes. ServeAdmin starts one aggregated endpoint whose
// /metrics carries every shard's series under shard="i" labels and whose
// /trace merges the per-shard flight recorders into a shard-keyed map — the
// cross-shard scrape an operator points a collector at. ServeShardAdmins
// additionally gives every daemon its own endpoint (matching a production
// deployment, where each flowtuned process serves its own -admin port).

// adminState tracks the admin endpoints a cluster has started, so Close can
// tear them down.
type adminState struct {
	cluster   *telemetry.Admin
	shards    []*telemetry.Admin
	recorders []*telemetry.FlightRecorder
}

// AttachFlightRecorders lazily attaches one flight recorder per shard and
// returns them, index-aligned with the shards (idempotent: a second caller —
// another admin surface, or the scenario runner — reuses the recorders the
// first attached).
func (c *Cluster) AttachFlightRecorders() []*telemetry.FlightRecorder {
	if c.admin.recorders == nil {
		c.admin.recorders = make([]*telemetry.FlightRecorder, len(c.servers))
		for i, srv := range c.servers {
			rec := telemetry.NewFlightRecorder(telemetry.DefaultFlightWindow)
			srv.AttachFlightRecorder(rec)
			c.admin.recorders[i] = rec
		}
	}
	return c.admin.recorders
}

// RegisterMetrics exposes every shard's counter surfaces in reg, each series
// labeled shard="i". The in-loop series (iteration-latency histogram, churn
// counter) record into the registry registered most recently — register into
// one aggregated registry, or one registry per shard, not both.
func (c *Cluster) RegisterMetrics(reg *telemetry.Registry) {
	for i, srv := range c.servers {
		srv.RegisterMetrics(reg, telemetry.Label{Key: "shard", Value: strconv.Itoa(i)})
	}
	reg.GaugeFunc("flowtune_cluster_shards", "Daemons in the cluster.",
		func() float64 { return float64(len(c.servers)) })
	reg.GaugeFunc("flowtune_cluster_shards_alive", "Daemons not yet closed.", func() float64 {
		alive := 0
		for _, srv := range c.servers {
			if !srv.Closed() {
				alive++
			}
		}
		return float64(alive)
	})
}

// ServeAdmin starts the aggregated cluster admin endpoint on addr (port 0
// picks a free port) and returns the bound address. Its /metrics is the
// cross-shard scrape; /trace serves a map keyed "shard-i" of every shard's
// flight-recorder window; /readyz reports ready while at least one shard is
// alive and none is draining; /healthz while at least one shard is alive.
// The endpoint is torn down by Close.
func (c *Cluster) ServeAdmin(addr string) (net.Addr, error) {
	if c.admin.cluster != nil {
		return nil, fmt.Errorf("cluster: admin endpoint already serving on %s", c.admin.cluster.Addr())
	}
	recs := c.AttachFlightRecorders()
	reg := telemetry.NewRegistry()
	c.RegisterMetrics(reg)
	adm, err := telemetry.NewAdmin(telemetry.AdminConfig{
		Registry: reg,
		Trace: func() any {
			out := make(map[string]telemetry.FlightTrace, len(recs))
			for i, rec := range recs {
				out[fmt.Sprintf("shard-%d", i)] = rec.Trace()
			}
			return out
		},
		Healthy: func() bool { return c.anyAlive() },
		Ready: func() bool {
			if !c.anyAlive() {
				return false
			}
			for _, srv := range c.servers {
				if !srv.Closed() && srv.Draining() {
					return false
				}
			}
			return true
		},
	})
	if err != nil {
		return nil, err
	}
	bound, err := adm.Start(addr)
	if err != nil {
		return nil, err
	}
	c.admin.cluster = adm
	return bound, nil
}

// ServeShardAdmins starts one admin endpoint per shard on the given
// addresses (len(addrs) must equal NumShards; port 0 picks free ports) and
// returns the bound addresses, index-aligned with the shards. Each endpoint
// serves only its shard's registry and flight recorder, with drain-aware
// probes wired to that daemon — exactly what a production flowtuned process
// serves on its own -admin port. Torn down by Close.
func (c *Cluster) ServeShardAdmins(addrs []string) ([]net.Addr, error) {
	if len(addrs) != len(c.servers) {
		return nil, fmt.Errorf("cluster: %d admin addrs for %d shards", len(addrs), len(c.servers))
	}
	if c.admin.shards != nil {
		return nil, fmt.Errorf("cluster: shard admin endpoints already serving")
	}
	recs := c.AttachFlightRecorders()
	bound := make([]net.Addr, len(addrs))
	admins := make([]*telemetry.Admin, len(addrs))
	for i, srv := range c.servers {
		reg := telemetry.NewRegistry()
		srv.RegisterMetrics(reg, telemetry.Label{Key: "shard", Value: strconv.Itoa(i)})
		adm, err := telemetry.NewAdmin(telemetry.AdminConfig{
			Registry: reg,
			Recorder: recs[i],
			Healthy:  func() bool { return !srv.Closed() },
			Ready:    func() bool { return !srv.Closed() && !srv.Draining() },
		})
		if err == nil {
			bound[i], err = adm.Start(addrs[i])
		}
		if err != nil {
			for _, started := range admins[:i] {
				started.Close()
			}
			return nil, err
		}
		admins[i] = adm
	}
	c.admin.shards = admins
	return bound, nil
}

// AdminAddrs returns the bound per-shard admin addresses (nil until
// ServeShardAdmins).
func (c *Cluster) AdminAddrs() []net.Addr {
	if c.admin.shards == nil {
		return nil
	}
	out := make([]net.Addr, len(c.admin.shards))
	for i, adm := range c.admin.shards {
		out[i] = adm.Addr()
	}
	return out
}

// FlightRecorder returns shard i's flight recorder (nil until an admin
// surface attached them).
func (c *Cluster) FlightRecorder(i int) *telemetry.FlightRecorder {
	if c.admin.recorders == nil {
		return nil
	}
	return c.admin.recorders[i]
}

// anyAlive reports whether at least one daemon is still open.
func (c *Cluster) anyAlive() bool {
	for _, srv := range c.servers {
		if !srv.Closed() {
			return true
		}
	}
	return false
}

// closeAdmins tears down every admin endpoint the cluster started.
func (c *Cluster) closeAdmins() {
	if c.admin.cluster != nil {
		c.admin.cluster.Close()
		c.admin.cluster = nil
	}
	for _, adm := range c.admin.shards {
		adm.Close()
	}
	c.admin.shards = nil
}

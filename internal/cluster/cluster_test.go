package cluster

import (
	"errors"
	"math"
	"math/rand"
	"net"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/topology"
	"repro/internal/transport"
)

// testTopo is the 4-rack fabric the cluster tests shard in halves.
func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.NewTwoTier(topology.Config{
		Racks: 4, ServersPerRack: 4, Spines: 2, LinkCapacity: 10e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// startSingle builds the unsharded reference daemon with one client.
func startSingle(t *testing.T, topo *topology.Topology) (*server.Server, *transport.AllocClient) {
	t.Helper()
	srv, err := server.New(server.Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	clientEnd, serverEnd := net.Pipe()
	go srv.ServeConn(serverEnd)
	cli, err := transport.NewAllocClient(clientEnd, 99)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

// churnEvent is one scripted flowlet event.
type churnEvent struct {
	end      bool
	id       core.FlowID
	src, dst int
	weight   float64
}

// partitionLocalChurn scripts a seeded churn sequence whose flows never
// leave their source shard. Retirements pop the most recently started flow:
// that keeps the allocators' swap-delete bookkeeping a no-op in both the
// single daemon and the shards, so per-link load accumulation visits the
// surviving flows in the same order everywhere. (With arbitrary interleaved
// retirements the single daemon's swap-deletes relocate flows across shard
// boundaries in its flow array, reordering floating-point summation and
// perturbing rates at ULP scale — a float-associativity artifact, not a
// divergence of the exchange; TestCrossShardConvergence bounds that regime.)
func partitionLocalChurn(smap *topology.ShardMap, seed int64, n int) []churnEvent {
	rng := rand.New(rand.NewSource(seed))
	numServers := smap.Topology().NumServers()
	var events []churnEvent
	live := make([]churnEvent, 0, n)
	next := core.FlowID(1)
	for len(events) < n {
		if len(live) > 0 && rng.Intn(3) == 0 {
			events = append(events, churnEvent{end: true, id: live[len(live)-1].id})
			live = live[:len(live)-1]
			continue
		}
		src := rng.Intn(numServers)
		// Pick dst inside the same shard.
		dst := rng.Intn(numServers)
		for smap.ShardOfServer(dst) != smap.ShardOfServer(src) || dst == src {
			dst = rng.Intn(numServers)
		}
		ev := churnEvent{id: next, src: src, dst: dst, weight: 1 + float64(rng.Intn(3))}
		next++
		events = append(events, ev)
		live = append(live, ev)
	}
	return events
}

// backend is the common surface of AllocClient and ShardedClient the
// equivalence test drives.
type backend interface {
	FlowletStart(id core.FlowID, src, dst int, weight float64) error
	FlowletEnd(id core.FlowID) error
	Step() ([]core.RateUpdate, error)
}

// TestPartitionLocalByteIdentical is the sharded-cluster acceptance check:
// on partition-local traffic a 2-shard cluster (with its price exchange
// running) must produce exactly the single daemon's rates — same update
// sets, bit-identical floats — at every step of a seeded churn sequence.
func TestPartitionLocalByteIdentical(t *testing.T) {
	topo := testTopo(t)
	single, singleCli := startSingle(t, topo)

	cl, err := New(Config{Topology: topo, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	clusterCli, err := cl.Client(99)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { clusterCli.Close() })

	events := partitionLocalChurn(cl.Map(), 42, 400)
	apply := func(b backend, ev churnEvent) error {
		if ev.end {
			return b.FlowletEnd(ev.id)
		}
		return b.FlowletStart(ev.id, ev.src, ev.dst, ev.weight)
	}
	const perStep = 8
	for start := 0; start < len(events); start += perStep {
		end := min(start+perStep, len(events))
		for _, ev := range events[start:end] {
			if err := apply(singleCli, ev); err != nil {
				t.Fatal(err)
			}
			if err := apply(clusterCli, ev); err != nil {
				t.Fatal(err)
			}
		}
		wantUps, err := singleCli.Step()
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[core.FlowID]float64, len(wantUps))
		for _, u := range wantUps {
			want[u.Flow] = u.Rate
		}
		gotUps, err := clusterCli.Step()
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[core.FlowID]float64, len(gotUps))
		for _, u := range gotUps {
			got[u.Flow] = u.Rate
		}
		if len(got) != len(want) {
			t.Fatalf("step %d: %d cluster updates, single daemon sent %d", start/perStep, len(got), len(want))
		}
		for id, rate := range want {
			if gr, ok := got[id]; !ok || gr != rate {
				t.Fatalf("step %d flow %d: cluster rate %v (present %v), single %v", start/perStep, id, gr, ok, rate)
			}
		}
	}
	// Full engine state agrees too, bit for bit.
	want := single.Rates()
	got := cl.Rates()
	if len(got) != len(want) {
		t.Fatalf("final flow counts differ: cluster %d, single %d", len(got), len(want))
	}
	for id, rate := range want {
		if got[int64(id)] != rate {
			t.Fatalf("final flow %d: cluster %v, single %v", id, got[int64(id)], rate)
		}
	}
	// The equivalence must hold with the exchange actually exercised.
	for i := 0; i < cl.NumShards(); i++ {
		if cl.Server(i).Stats().PeerExchanges == 0 {
			t.Fatalf("shard %d never folded a peer bundle", i)
		}
	}
}

// TestCrossShardConvergence seeds cross-shard traffic and bounds the
// cluster's distance from the global allocator: the exchange's one-iteration
// lag must not keep it from converging to (nearly) the same allocation and
// objective on a static flow set.
func TestCrossShardConvergence(t *testing.T) {
	topo := testTopo(t)
	single, singleCli := startSingle(t, topo)
	cl, err := New(Config{Topology: topo, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	clusterCli, err := cl.Client(7)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { clusterCli.Close() })

	rng := rand.New(rand.NewSource(7))
	n := topo.NumServers()
	flows := 0
	for id := core.FlowID(1); flows < 48; id++ {
		src := rng.Intn(n)
		dst := rng.Intn(n)
		if dst == src {
			continue
		}
		if err := singleCli.FlowletStart(id, src, dst, 1); err != nil {
			t.Fatal(err)
		}
		if err := clusterCli.FlowletStart(id, src, dst, 1); err != nil {
			t.Fatal(err)
		}
		flows++
	}
	for i := 0; i < 400; i++ {
		if _, err := singleCli.Step(); err != nil {
			t.Fatal(err)
		}
		if _, err := clusterCli.Step(); err != nil {
			t.Fatal(err)
		}
	}
	want := single.Rates()
	got := cl.Rates()
	if len(got) != len(want) {
		t.Fatalf("flow counts differ: cluster %d, single %d", len(got), len(want))
	}
	var objWant, objGot, worst float64
	for id, rw := range want {
		rg := got[int64(id)]
		if rg <= 0 || rw <= 0 {
			t.Fatalf("flow %d: non-positive rates %g/%g", id, rg, rw)
		}
		objWant += math.Log(rw)
		objGot += math.Log(rg)
		if dev := math.Abs(rg-rw) / rw; dev > worst {
			worst = dev
		}
	}
	// Objective gap: the proportional-fairness objective of the sharded
	// allocation must sit within 1% of the global allocator's.
	if gap := math.Abs(objGot-objWant) / math.Abs(objWant); gap > 0.01 {
		t.Fatalf("objective gap %.4f (cluster %g vs global %g)", gap, objGot, objWant)
	}
	// And no individual flow may be wildly misallocated.
	if worst > 0.25 {
		t.Fatalf("worst per-flow rate deviation %.3f", worst)
	}
	t.Logf("objective gap %.5f, worst per-flow deviation %.4f",
		math.Abs(objGot-objWant)/math.Abs(objWant), worst)
}

// TestFourShardDeterminism re-runs a 4-shard cluster (3 peers per shard, so
// external contributions are a 3-term float sum) over cross-shard traffic
// and requires bit-identical rates: peer digests must be summed in shard
// order, never map-iteration order.
func TestFourShardDeterminism(t *testing.T) {
	topo, err := topology.NewTwoTier(topology.Config{
		Racks: 8, ServersPerRack: 2, Spines: 2, LinkCapacity: 10e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() map[int64]float64 {
		cl, err := New(Config{Topology: topo, Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		cli, err := cl.Client(3)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		rng := rand.New(rand.NewSource(11))
		n := topo.NumServers()
		for id := core.FlowID(1); id <= 32; id++ {
			src := rng.Intn(n)
			dst := (src + 1 + rng.Intn(n-1)) % n
			if err := cli.FlowletStart(id, src, dst, 1); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 50; i++ {
			if _, err := cli.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return cl.Rates()
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) || len(a) != 32 {
		t.Fatalf("flow counts differ or wrong: %d vs %d", len(a), len(b))
	}
	for id, ra := range a {
		if rb := b[id]; rb != ra {
			t.Fatalf("flow %d: run A %v != run B %v", id, ra, rb)
		}
	}
}

// TestShardedClientRoutingAndReconnect pins flow→shard routing and the
// per-shard reconnect path: killing one shard's session breaks only that
// shard, and Reconnect restores it with its flows re-registered while the
// other shard's session is untouched.
func TestShardedClientRoutingAndReconnect(t *testing.T) {
	topo := testTopo(t)
	cl, err := New(Config{Topology: topo, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	cli, err := cl.Client(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })

	// Servers 0-7 are shard 0, 8-15 shard 1 (4 racks × 4 servers).
	if err := cli.FlowletStart(1, 0, 9, 1); err != nil { // owned by shard 0
		t.Fatal(err)
	}
	if err := cli.FlowletStart(2, 9, 0, 1); err != nil { // owned by shard 1
		t.Fatal(err)
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	if got := cl.Server(0).NumFlows(); got != 1 {
		t.Fatalf("shard 0 flows = %d, want 1", got)
	}
	if got := cl.Server(1).NumFlows(); got != 1 {
		t.Fatalf("shard 1 flows = %d, want 1", got)
	}

	// Kill shard 1's session; the next Step must fail naming shard 1.
	cli.Client(1).Conn().Close()
	_, err = cli.Step()
	var se *transport.ShardError
	if err == nil || !errors.As(err, &se) || se.Shard != 1 {
		t.Fatalf("step after kill = %v, want ShardError{Shard: 1}", err)
	}

	// Per-shard reconnect: only shard 1's session is re-established and
	// re-registered; the cluster allocates both flows again.
	clientEnd, serverEnd := net.Pipe()
	go cl.Server(1).ServeConn(serverEnd)
	if err := cli.Reconnect(1, clientEnd); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	if got := cl.Server(1).NumFlows(); got != 1 {
		t.Fatalf("shard 1 flows after reconnect = %d, want 1", got)
	}
	rates := cl.Rates()
	if rates[1] <= 0 || rates[2] <= 0 {
		t.Fatalf("rates after reconnect: %v", rates)
	}
}

// TestMulticorePartitionLocalByteIdentical is the multicore-shard acceptance
// check: a 2-shard cluster whose daemons run the parallel engine (Blocks: 2)
// must still produce exactly the single sequential daemon's rates on
// partition-local traffic — the boundary fold-in and digest export of the
// ParallelAllocator keep the wire bytes bit-identical to the sequential
// engine's. Gamma is set to the sequential default explicitly because the
// parallel allocator's own default differs (1 vs 0.4).
func TestMulticorePartitionLocalByteIdentical(t *testing.T) {
	topo := testTopo(t)
	single, singleCli := startSingle(t, topo)

	cl, err := New(Config{Topology: topo, Shards: 2, Blocks: 2, Gamma: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	clusterCli, err := cl.Client(99)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { clusterCli.Close() })

	events := partitionLocalChurn(cl.Map(), 42, 400)
	apply := func(b backend, ev churnEvent) error {
		if ev.end {
			return b.FlowletEnd(ev.id)
		}
		return b.FlowletStart(ev.id, ev.src, ev.dst, ev.weight)
	}
	const perStep = 8
	for start := 0; start < len(events); start += perStep {
		end := min(start+perStep, len(events))
		for _, ev := range events[start:end] {
			if err := apply(singleCli, ev); err != nil {
				t.Fatal(err)
			}
			if err := apply(clusterCli, ev); err != nil {
				t.Fatal(err)
			}
		}
		wantUps, err := singleCli.Step()
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[core.FlowID]float64, len(wantUps))
		for _, u := range wantUps {
			want[u.Flow] = u.Rate
		}
		gotUps, err := clusterCli.Step()
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[core.FlowID]float64, len(gotUps))
		for _, u := range gotUps {
			got[u.Flow] = u.Rate
		}
		if len(got) != len(want) {
			t.Fatalf("step %d: %d multicore-cluster updates, single daemon sent %d", start/perStep, len(got), len(want))
		}
		for id, rate := range want {
			if gr, ok := got[id]; !ok || gr != rate {
				t.Fatalf("step %d flow %d: multicore cluster rate %v (present %v), single %v", start/perStep, id, gr, ok, rate)
			}
		}
	}
	want := single.Rates()
	got := cl.Rates()
	if len(got) != len(want) {
		t.Fatalf("final flow counts differ: cluster %d, single %d", len(got), len(want))
	}
	for id, rate := range want {
		if got[int64(id)] != rate {
			t.Fatalf("final flow %d: multicore cluster %v, single %v", id, got[int64(id)], rate)
		}
	}
	for i := 0; i < cl.NumShards(); i++ {
		if cl.Server(i).Stats().PeerExchanges == 0 {
			t.Fatalf("shard %d never folded a peer bundle", i)
		}
	}
}

// TestMulticoreCrossShardConvergence bounds the multicore cluster's distance
// from the global sequential allocator on cross-shard traffic, exactly as
// TestCrossShardConvergence does for sequential shards: the combination of
// exchange lag and the parallel engine's merge-tree summation order must not
// move the objective more than 1% or any flow more than 25%.
func TestMulticoreCrossShardConvergence(t *testing.T) {
	topo := testTopo(t)
	single, singleCli := startSingle(t, topo)
	cl, err := New(Config{Topology: topo, Shards: 2, Blocks: 2, Gamma: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	clusterCli, err := cl.Client(7)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { clusterCli.Close() })

	rng := rand.New(rand.NewSource(7))
	n := topo.NumServers()
	flows := 0
	for id := core.FlowID(1); flows < 48; id++ {
		src := rng.Intn(n)
		dst := rng.Intn(n)
		if dst == src {
			continue
		}
		if err := singleCli.FlowletStart(id, src, dst, 1); err != nil {
			t.Fatal(err)
		}
		if err := clusterCli.FlowletStart(id, src, dst, 1); err != nil {
			t.Fatal(err)
		}
		flows++
	}
	for i := 0; i < 400; i++ {
		if _, err := singleCli.Step(); err != nil {
			t.Fatal(err)
		}
		if _, err := clusterCli.Step(); err != nil {
			t.Fatal(err)
		}
	}
	want := single.Rates()
	got := cl.Rates()
	if len(got) != len(want) {
		t.Fatalf("flow counts differ: cluster %d, single %d", len(got), len(want))
	}
	var objWant, objGot, worst float64
	for id, rw := range want {
		rg := got[int64(id)]
		if rg <= 0 || rw <= 0 {
			t.Fatalf("flow %d: non-positive rates %g/%g", id, rg, rw)
		}
		objWant += math.Log(rw)
		objGot += math.Log(rg)
		if dev := math.Abs(rg-rw) / rw; dev > worst {
			worst = dev
		}
	}
	if gap := math.Abs(objGot-objWant) / math.Abs(objWant); gap > 0.01 {
		t.Fatalf("objective gap %.4f (multicore cluster %g vs global %g)", gap, objGot, objWant)
	}
	if worst > 0.25 {
		t.Fatalf("worst per-flow rate deviation %.3f", worst)
	}
	t.Logf("objective gap %.5f, worst per-flow deviation %.4f",
		math.Abs(objGot-objWant)/math.Abs(objWant), worst)
}

// TestKillTakeoverFailover is the survivable-control-plane check at cluster
// level: kill one daemon mid-run, the survivor adopts its rack block from the
// replicated flow state, and the frozen client fails over onto it — with the
// whole sequence deterministic run to run.
func TestKillTakeoverFailover(t *testing.T) {
	testKillTakeoverFailover(t, 0)
}

// TestKillTakeoverFailoverMulticore runs the same kill/takeover/failover
// sequence with every daemon on the parallel engine (Blocks: 2): the adopted
// flows are replayed into a multicore allocator's FlowBlocks and the adopted
// boundary links come under its LinkBlocks' control, and the whole sequence
// must stay deterministic run to run.
func TestKillTakeoverFailoverMulticore(t *testing.T) {
	testKillTakeoverFailover(t, 2)
}

func testKillTakeoverFailover(t *testing.T, blocks int) {
	topo := testTopo(t)
	runOnce := func() map[int64]float64 {
		cl, err := New(Config{Topology: topo, Shards: 2, Blocks: blocks, Takeover: true})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		cli, err := cl.Client(1)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		cli.SetFreezeOnFailure(true)

		// Servers 0-7 are shard 0, 8-15 shard 1.
		if err := cli.FlowletStart(1, 0, 9, 1); err != nil { // shard 0
			t.Fatal(err)
		}
		if err := cli.FlowletStart(2, 9, 0, 1); err != nil { // shard 1
			t.Fatal(err)
		}
		if err := cli.FlowletStart(3, 8, 15, 2); err != nil { // shard 1
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if _, err := cli.Step(); err != nil {
				t.Fatal(err)
			}
		}

		cl.Kill(1)
		// Freeze-on-failure: the dead shard's session freezes instead of
		// failing the cluster step; the survivor detects the death at its
		// exchange push and adopts at the next iteration boundary.
		for i := 0; i < 4 && !cl.Server(0).ServesShard(1); i++ {
			if _, err := cli.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if !cl.Server(0).ServesShard(1) {
			t.Fatal("survivor never adopted the dead shard")
		}
		if !cli.Frozen(1) {
			t.Fatal("dead shard's session did not freeze")
		}
		if got := cl.Server(0).Stats().Takeovers; got != 1 {
			t.Fatalf("Takeovers = %d, want 1", got)
		}
		// The replica seeded the dead daemon's flows into the survivor.
		if got := cl.Server(0).NumFlows(); got != 3 {
			t.Fatalf("survivor NumFlows = %d after adoption, want 3", got)
		}

		adopter := cli.Successor(1)
		if adopter != 0 {
			t.Fatalf("Successor(1) = %d, want 0", adopter)
		}
		if err := cli.Failover(1, adopter); err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Step(); err != nil {
			t.Fatal(err)
		}
		// The re-registrations were adopted in place: zero engine churn.
		if got := cl.Server(0).Stats().AdoptedFlows; got != 2 {
			t.Fatalf("AdoptedFlows = %d, want 2", got)
		}
		// New flows hashed to the dead daemon's shard route to the adopter.
		if err := cli.FlowletStart(4, 10, 2, 1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			if _, err := cli.Step(); err != nil {
				t.Fatal(err)
			}
		}
		rates := cl.Rates()
		for id := int64(1); id <= 4; id++ {
			if rates[id] <= 0 {
				t.Fatalf("flow %d not allocated after failover: %v", id, rates)
			}
		}
		return rates
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("flow counts differ across runs: %d vs %d", len(a), len(b))
	}
	for id, ra := range a {
		if rb := b[id]; rb != ra {
			t.Fatalf("flow %d: run A %v != run B %v (failover not deterministic)", id, ra, rb)
		}
	}
}

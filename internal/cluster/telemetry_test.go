package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// clusterGet fetches one admin path and returns status code and body.
func clusterGet(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestClusterAdminAggregated covers the cross-shard scrape: one endpoint
// whose /metrics carries every shard's series under shard="i" labels, whose
// /trace merges the per-shard flight recorders, and whose readiness probe
// reacts to any shard draining.
func TestClusterAdminAggregated(t *testing.T) {
	topo := testTopo(t)
	cl, err := New(Config{Topology: topo, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	addr, err := cl.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()
	if _, err := cl.ServeAdmin("127.0.0.1:0"); err == nil {
		t.Fatal("second ServeAdmin accepted")
	}

	cli, err := cl.Client(7)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	// One flow per shard (servers 0 and 15 sit in shards 0 and 1), stepped to
	// convergence so both flight recorders hold samples.
	if err := cli.FlowletStart(core.FlowID(1), 0, 3, 1); err != nil {
		t.Fatal(err)
	}
	if err := cli.FlowletStart(core.FlowID(2), 15, 12, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := cli.Step(); err != nil {
			t.Fatal(err)
		}
	}

	status, body := clusterGet(t, base, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status = %d", status)
	}
	if err := telemetry.Lint(body); err != nil {
		t.Fatalf("lint: %v\n%s", err, body)
	}
	for _, series := range []string{
		`flowtune_flows{shard="0"} 1`,
		`flowtune_flows{shard="1"} 1`,
		`flowtune_iterations_total{shard="0"} 5`,
		`flowtune_peer_exchanges_total{shard="1"}`,
		"flowtune_cluster_shards 2",
		"flowtune_cluster_shards_alive 2",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}

	status, body = clusterGet(t, base, "/trace")
	if status != http.StatusOK {
		t.Fatalf("/trace status = %d", status)
	}
	var traces map[string]telemetry.FlightTrace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/trace not a shard-keyed map: %v\n%s", err, body)
	}
	for _, shard := range []string{"shard-0", "shard-1"} {
		tr, ok := traces[shard]
		if !ok || tr.Total != 5 || len(tr.Samples) != 5 {
			t.Errorf("trace[%s] = %+v; want 5 samples", shard, tr)
		}
	}

	// Probe semantics across the shard lifecycle: draining any live shard
	// drops readiness; liveness holds while at least one shard is up.
	if status, _ := clusterGet(t, base, "/readyz"); status != http.StatusOK {
		t.Fatalf("/readyz = %d before drain", status)
	}
	cl.Drain(0)
	if status, _ := clusterGet(t, base, "/readyz"); status != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d with shard 0 draining; want 503", status)
	}
	if status, _ := clusterGet(t, base, "/healthz"); status != http.StatusOK {
		t.Errorf("/healthz = %d with shard 0 draining; want 200", status)
	}
}

// TestClusterShardAdmins covers the production shape: one endpoint per
// daemon, each with its own registry and drain-aware probes.
func TestClusterShardAdmins(t *testing.T) {
	topo := testTopo(t)
	cl, err := New(Config{Topology: topo, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	if _, err := cl.ServeShardAdmins([]string{"127.0.0.1:0"}); err == nil {
		t.Fatal("addr/shard count mismatch accepted")
	}
	addrs, err := cl.ServeShardAdmins([]string{"127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.AdminAddrs(); len(got) != 2 || got[0].String() != addrs[0].String() {
		t.Fatalf("AdminAddrs = %v; want %v", got, addrs)
	}

	// Each shard serves its own labeled registry.
	for i, addr := range addrs {
		status, body := clusterGet(t, "http://"+addr.String(), "/metrics")
		if status != http.StatusOK {
			t.Fatalf("shard %d /metrics status = %d", i, status)
		}
		if err := telemetry.Lint(body); err != nil {
			t.Fatalf("shard %d lint: %v", i, err)
		}
		want := `flowtune_flows{shard="` + []string{"0", "1"}[i] + `"} 0`
		if !strings.Contains(body, want) {
			t.Errorf("shard %d /metrics missing %q", i, want)
		}
	}

	// Probes are per-daemon: draining shard 1 flips only its own readiness.
	cl.Drain(1)
	if status, _ := clusterGet(t, "http://"+addrs[0].String(), "/readyz"); status != http.StatusOK {
		t.Errorf("shard 0 /readyz = %d; want 200", status)
	}
	if status, _ := clusterGet(t, "http://"+addrs[1].String(), "/readyz"); status != http.StatusServiceUnavailable {
		t.Errorf("shard 1 /readyz = %d; want 503", status)
	}
	if status, _ := clusterGet(t, "http://"+addrs[1].String(), "/healthz"); status != http.StatusOK {
		t.Errorf("shard 1 /healthz = %d; want 200 (draining, not dead)", status)
	}
	if err := cl.Kill(0); err != nil {
		t.Fatal(err)
	}
	if status, _ := clusterGet(t, "http://"+addrs[0].String(), "/healthz"); status != http.StatusServiceUnavailable {
		t.Errorf("shard 0 /healthz = %d after kill; want 503", status)
	}
}

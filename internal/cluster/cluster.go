package cluster

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/server"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Config configures an in-process allocator cluster.
type Config struct {
	// Topology is the fabric the cluster schedules. Required; it must be a
	// two-tier fabric whose rack count Shards divides.
	Topology *topology.Topology
	// Shards is the number of flowtuned daemons; each owns one rack block.
	Shards int
	// Gamma, UpdateThreshold, Interval and Epoch are passed through to
	// every daemon (see server.Config).
	Gamma           float64
	UpdateThreshold float64
	Interval        time.Duration
	Epoch           uint64
	// Blocks and PinWorkers select every daemon's engine (see
	// server.Config): Blocks > 0 makes each shard a multicore daemon
	// running the parallel allocator with that many rack blocks, and
	// PinWorkers additionally pins its workers to NUMA sockets (numa-tag
	// builds only). Zero keeps the sequential engine.
	Blocks     int
	PinWorkers bool
	// MaxSessionFlows, MaxFrameRate and IdleTimeout pass the per-session
	// hardening limits through to every daemon.
	MaxSessionFlows int
	MaxFrameRate    float64
	IdleTimeout     time.Duration
	// Takeover enables peer shard failover on every daemon: each replicates
	// its flow state to its successor and adopts a dead peer's rack block
	// (see server.Config.Takeover). HeartbeatTimeout passes the free-running
	// staleness bound through.
	Takeover         bool
	HeartbeatTimeout time.Duration
	// QuantizeRates passes the opt-in lossy wire mode through to every
	// daemon (see server.Config.QuantizeRates).
	QuantizeRates bool
	// Logf, when set, receives every daemon's log lines prefixed with its
	// shard index.
	Logf func(format string, args ...any)
}

// Cluster is a cooperating set of sharded flowtuned daemons hosted in one
// process, their peer mesh wired over in-memory pipes. It is the harness the
// sharded scenarios and tests run on; production clusters run the same
// daemons as separate flowtuned processes connected over TCP (see
// cmd/flowtuned's -shard and -peers flags).
type Cluster struct {
	smap    *topology.ShardMap
	servers []*server.Server
	// admin holds the observability endpoints started via ServeAdmin /
	// ServeShardAdmins (see telemetry.go).
	admin adminState
}

// New builds the daemons and connects the full peer mesh. Every daemon dials
// every other, so each direction of every shard pair has a dedicated push
// connection, exactly as in a TCP deployment.
func New(cfg Config) (*Cluster, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("cluster: Config.Topology is required")
	}
	smap, err := topology.NewShardMap(cfg.Topology, cfg.Shards)
	if err != nil {
		return nil, err
	}
	c := &Cluster{smap: smap}
	for i := 0; i < cfg.Shards; i++ {
		logf := cfg.Logf
		if logf != nil {
			shard := i
			inner := cfg.Logf
			logf = func(format string, args ...any) {
				inner("shard %d: "+format, append([]any{shard}, args...)...)
			}
		}
		srv, err := server.New(server.Config{
			Topology:         cfg.Topology,
			Gamma:            cfg.Gamma,
			UpdateThreshold:  cfg.UpdateThreshold,
			Interval:         cfg.Interval,
			Epoch:            cfg.Epoch,
			Blocks:           cfg.Blocks,
			PinWorkers:       cfg.PinWorkers,
			MaxSessionFlows:  cfg.MaxSessionFlows,
			MaxFrameRate:     cfg.MaxFrameRate,
			IdleTimeout:      cfg.IdleTimeout,
			NumShards:        cfg.Shards,
			ShardIndex:       i,
			Takeover:         cfg.Takeover,
			HeartbeatTimeout: cfg.HeartbeatTimeout,
			QuantizeRates:    cfg.QuantizeRates,
			Logf:             logf,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.servers = append(c.servers, srv)
	}
	for i := 0; i < cfg.Shards; i++ {
		for j := 0; j < cfg.Shards; j++ {
			if i == j {
				continue
			}
			out, in := net.Pipe()
			go c.servers[j].ServeConn(in)
			if _, err := c.servers[i].ConnectPeer(out); err != nil {
				c.Close()
				return nil, fmt.Errorf("cluster: peer %d→%d: %w", i, j, err)
			}
		}
	}
	return c, nil
}

// Map returns the cluster's shard map.
func (c *Cluster) Map() *topology.ShardMap { return c.smap }

// NumShards returns the number of daemons.
func (c *Cluster) NumShards() int { return len(c.servers) }

// Server returns shard i's daemon.
func (c *Cluster) Server(i int) *server.Server { return c.servers[i] }

// Client connects a ShardedClient to every daemon over in-memory pipes and
// performs the handshakes.
func (c *Cluster) Client(clientID uint64) (*transport.ShardedClient, error) {
	conns := make([]net.Conn, len(c.servers))
	for i, srv := range c.servers {
		clientEnd, serverEnd := net.Pipe()
		go srv.ServeConn(serverEnd)
		conns[i] = clientEnd
	}
	return transport.NewShardedClient(conns, c.smap, clientID)
}

// Kill closes daemon i abruptly — no drain, no snapshot — simulating a
// crashed shard. Its peers detect the death when their next exchange push
// fails and, with Takeover enabled, the successor adopts its rack block.
func (c *Cluster) Kill(i int) error { return c.servers[i].Close() }

// Drain puts daemon i into graceful drain: it keeps iterating and serving
// its flows but refuses new flowlet adds (see server.Server.Drain). A drain
// followed by a Kill before the operator finishes the handover is the
// kill-during-drain fault scenario.
func (c *Cluster) Drain(i int) { c.servers[i].Drain() }

// SetLinkCapacity broadcasts a live link-capacity change to every daemon
// still alive, so all shards re-price the link at their next iteration
// boundary. Dead (closed) daemons are skipped: the fabric event outlives
// them, and a takeover successor already carries the updated capacity.
func (c *Cluster) SetLinkCapacity(l topology.LinkID, capacity float64) error {
	var first error
	for _, srv := range c.servers {
		err := srv.SetLinkCapacity(l, capacity)
		if err != nil && !errors.Is(err, net.ErrClosed) && first == nil {
			first = err
		}
	}
	return first
}

// Rates merges every shard's current rate map (a diagnostic mirror of
// server.Server.Rates; flow ownership makes the maps disjoint).
func (c *Cluster) Rates() map[int64]float64 {
	out := make(map[int64]float64)
	for _, srv := range c.servers {
		for id, rate := range srv.Rates() {
			out[int64(id)] = rate
		}
	}
	return out
}

// WireStats sums the control-plane byte counters across every daemon:
// rate fan-out bytes actually written (and their fixed v3-encoding cost),
// and boundary-exchange bytes built (and their fixed cost). The fixed/actual
// ratios are the wire v4 compression factors the scaling artifact reports.
type WireStats struct {
	FanoutBytes        int64
	FanoutBytesFixed   int64
	ExchangeBytes      int64
	ExchangeBytesFixed int64
}

// WireStats aggregates the wire byte counters over all shards.
func (c *Cluster) WireStats() WireStats {
	var w WireStats
	for _, srv := range c.servers {
		st := srv.Stats()
		w.FanoutBytes += st.FanoutBytes
		w.FanoutBytesFixed += st.FanoutBytesFixed
		w.ExchangeBytes += st.ExchangeBytes
		w.ExchangeBytesFixed += st.ExchangeBytesFixed
	}
	return w
}

// Close shuts every daemon down, along with any admin endpoints.
func (c *Cluster) Close() error {
	c.closeAdmins()
	var first error
	for _, srv := range c.servers {
		if err := srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

package cluster

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// TestFreeRunningClusterLoopBudget runs a 2-shard cluster on its internal
// tickers — no Step frames — with live flows on both shards, and checks the
// wall-clock side of the paper's control-loop budget: the solver loops keep
// iterating, rate updates reach the endpoints, boundary prices keep folding,
// and the measured per-iteration latency stays far below the interval. The
// paper budgets ~10 µs per iteration on dedicated cores; a shared CI runner
// gets a generously padded bound, and the deterministic (simulated-time)
// side of the same budget is pinned by the freerun-latency scenario
// baseline.
func TestFreeRunningClusterLoopBudget(t *testing.T) {
	const interval = 200 * time.Microsecond
	topo := testTopo(t)
	cl, err := New(Config{Topology: topo, Shards: 2, Interval: interval})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// One client per daemon, each starting flows inside its shard's rack
	// block (shard 0 owns servers 0-7, shard 1 owns 8-15).
	for i := 0; i < cl.NumShards(); i++ {
		clientEnd, serverEnd := net.Pipe()
		go cl.Server(i).ServeConn(serverEnd)
		cli, err := transport.NewAllocClient(clientEnd, uint64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		base := 8 * i
		if err := cli.FlowletStart(core.FlowID(1+2*i), base, base+4, 1); err != nil {
			t.Fatal(err)
		}
		if err := cli.FlowletStart(core.FlowID(2+2*i), base+5, base+1, 1); err != nil {
			t.Fatal(err)
		}
		if err := cli.Flush(); err != nil {
			t.Fatal(err)
		}
		// The first rate update proves this daemon's loop is live.
		deadline := time.Now().Add(5 * time.Second)
		got := false
		for !got && time.Now().Before(deadline) {
			updates, _, err := cli.Recv(5 * time.Second)
			if err != nil {
				t.Fatal(err)
			}
			got = len(updates) > 0
		}
		if !got {
			t.Fatalf("shard %d sent no rate updates", i)
		}
	}

	// Let both daemons iterate and exchange for a while.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ready := true
		for i := 0; i < cl.NumShards(); i++ {
			if cl.Server(i).LoopStats().Iterations < 100 || cl.Server(i).Stats().ExchangeFolds == 0 {
				ready = false
			}
		}
		if ready {
			break
		}
		if time.Now().After(deadline) {
			for i := 0; i < cl.NumShards(); i++ {
				t.Logf("shard %d: loop %+v stats %+v", i, cl.Server(i).LoopStats(), cl.Server(i).Stats())
			}
			t.Fatal("cluster did not reach 100 iterations with exchange folds")
		}
		time.Sleep(5 * time.Millisecond)
	}

	for i := 0; i < cl.NumShards(); i++ {
		ls := cl.Server(i).LoopStats()
		st := cl.Server(i).Stats()
		// CI-safe ceiling: two orders of magnitude over the 10 µs budget,
		// still far under the 200 µs tick.
		if ls.LatencySec.Mean > 1e-3 {
			t.Errorf("shard %d mean iteration latency %.0f µs; budget-scale is ~10 µs", i, ls.LatencySec.Mean*1e6)
		}
		if ls.IterationsPerSec <= 0 {
			t.Errorf("shard %d iterations/sec = %g; want positive", i, ls.IterationsPerSec)
		}
		if st.ExchangeStalenessIters < 0 {
			t.Errorf("shard %d negative staleness %d", i, st.ExchangeStalenessIters)
		}
		t.Logf("shard %d: %d iters, latency p50 %.1f µs p99 %.1f µs, %d folds, staleness sum %d iters",
			i, ls.Iterations, ls.LatencySec.P50*1e6, ls.LatencySec.P99*1e6, st.ExchangeFolds, st.ExchangeStalenessIters)
	}
}

package cluster

import (
	"errors"
	"net"
	"testing"

	"repro/internal/core"
	"repro/internal/transport"
)

// wire4Rates folds one Step's updates into the client-side rate view.
func wire4Rates(view map[core.FlowID]float64, ups []core.RateUpdate) {
	for _, u := range ups {
		view[u.Flow] = u.Rate
	}
}

// checkView asserts the client-side rate view is within the engines'
// notification threshold of the daemons' live rates: the wire v4 delta
// suppression must never leave an endpoint holding a stale allocation. The
// daemons notify when a rate moves more than UpdateThreshold (default 1%)
// from the last value they sent, so 2% of slack covers one in-flight change.
func checkView(t *testing.T, cl *Cluster, view map[core.FlowID]float64, label string, dead ...int) {
	t.Helper()
	// Merge the live daemons' rate maps by hand: Cluster.Rates consults
	// every daemon, and a killed one still reports the stale rates it held
	// at death — the adopter's fresh values are what the client must track.
	live := make(map[int64]float64)
	for i := 0; i < cl.NumShards(); i++ {
		if len(dead) > 0 && i == dead[0] {
			continue
		}
		for id, rate := range cl.Server(i).Rates() {
			live[int64(id)] = rate
		}
	}
	for id, want := range live {
		got, ok := view[core.FlowID(id)]
		if !ok {
			t.Fatalf("%s: flow %d allocated %v by the daemons but never reached the client", label, id, want)
		}
		if diff := got - want; diff < -0.02*want || diff > 0.02*want {
			t.Fatalf("%s: flow %d client rate %v, daemon rate %v (stale beyond threshold)", label, id, got, want)
		}
	}
}

// reconnectShard re-dials one shard's session over a fresh in-memory pipe.
func reconnectShard(t *testing.T, cl *Cluster, cli *transport.ShardedClient, shard int) {
	t.Helper()
	clientEnd, serverEnd := net.Pipe()
	go cl.Server(shard).ServeConn(serverEnd)
	if err := cli.Reconnect(shard, clientEnd); err != nil {
		t.Fatalf("reconnect shard %d: %v", shard, err)
	}
}

// TestDeltaWireSurvivesResync runs the full disruption gauntlet against the
// wire v4 delta state: a client reconnect (fresh fan-out shadow), a daemon
// epoch bump (shadow cleared, client re-registers), and a daemon kill with
// peer takeover (exchange shadows resynced via reset frames). After each
// event the endpoint's view must track the cluster's live allocation — a
// desynchronized delta baseline would strand it on stale rates. Run under
// -race in CI.
func TestDeltaWireSurvivesResync(t *testing.T) {
	topo := testTopo(t)
	cl, err := New(Config{Topology: topo, Shards: 4, Takeover: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	cli, err := cl.Client(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	cli.SetFreezeOnFailure(true)

	view := make(map[core.FlowID]float64)
	step := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			ups, err := cli.Step()
			if err != nil {
				t.Fatal(err)
			}
			wire4Rates(view, ups)
		}
	}

	// Incast into server 0: every flow shares the bottleneck, so any churn
	// moves every rate — lost updates cannot hide behind a quiet flow.
	// Racks hold servers [0..3], [4..7], [8..11], [12..15]; one shard each.
	next := core.FlowID(1)
	for src := 1; src < topo.NumServers(); src++ {
		if err := cli.FlowletStart(next, src, 0, 1); err != nil {
			t.Fatal(err)
		}
		next++
	}
	step(30)
	checkView(t, cl, view, "steady state")

	// Client reconnect: the replacement session starts with an empty
	// delta shadow, so nothing may be suppressed against the old session's
	// history.
	reconnectShard(t, cl, cli, 2)
	if err := cli.FlowletStart(next, 9, 0, 2); err != nil { // churn: shift all rates
		t.Fatal(err)
	}
	next++
	step(30)
	checkView(t, cl, view, "after reconnect")

	// Epoch bump: the daemon clears its sessions' shadows and pushes
	// EpochNotify; the client surfaces ErrEpochChanged and re-registers
	// over a fresh session.
	if err := cl.Server(1).BumpEpoch(cli.Epoch(1) + 1); err != nil {
		t.Fatal(err)
	}
	bumped := false
	for i := 0; i < 50 && !bumped; i++ {
		ups, err := cli.Step()
		switch {
		case err == nil:
			wire4Rates(view, ups)
		case errors.Is(err, transport.ErrEpochChanged):
			bumped = true
			reconnectShard(t, cl, cli, 1)
		default:
			t.Fatal(err)
		}
	}
	if !bumped {
		t.Fatal("epoch bump never surfaced to the client")
	}
	if err := cli.FlowletStart(next, 5, 0, 1); err != nil { // churn again
		t.Fatal(err)
	}
	next++
	step(30)
	checkView(t, cl, view, "after epoch bump")

	// Kill + takeover: the survivors drop the dead peer's exchange state,
	// resync each other with reset delta frames, and the adopter's sessions
	// re-baseline the failed-over flows.
	cl.Kill(3)
	for i := 0; i < 6 && !cl.Server(0).ServesShard(3); i++ {
		if _, err := cli.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !cl.Server(0).ServesShard(3) {
		t.Fatal("survivor never adopted the dead shard")
	}
	adopter := cli.Successor(3)
	if adopter != 0 {
		t.Fatalf("Successor(3) = %d, want 0", adopter)
	}
	if err := cli.Failover(3, adopter); err != nil {
		t.Fatal(err)
	}
	// Churn hard enough that every rate moves well past the notification
	// threshold relative to anything allocated during the frozen window —
	// rates that changed while the dead shard's session was frozen were
	// lost by design (the client froze at last-known rates), and only a
	// fresh above-threshold change re-notifies them.
	for _, src := range []int{13, 14, 3, 6} {
		if err := cli.FlowletStart(next, src, 0, 1); err != nil {
			t.Fatal(err)
		}
		next++
	}
	step(30)
	checkView(t, cl, view, "after takeover", 3)

	// The disruptions must have exercised the delta wire, and the delta
	// encoding must never cost more than the fixed v3 frames it replaces.
	w := cl.WireStats()
	if w.FanoutBytes == 0 || w.ExchangeBytes == 0 {
		t.Fatalf("wire counters silent: %+v", w)
	}
	if w.FanoutBytes > w.FanoutBytesFixed {
		t.Fatalf("delta fan-out cost %d bytes > fixed %d", w.FanoutBytes, w.FanoutBytesFixed)
	}
	if w.ExchangeBytes > w.ExchangeBytesFixed {
		t.Fatalf("delta exchange cost %d bytes > fixed %d", w.ExchangeBytes, w.ExchangeBytesFixed)
	}
}

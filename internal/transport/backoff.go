package transport

import (
	"math/rand"
	"time"
)

// Backoff computes bounded exponential retry delays for redial loops: the
// daemon's peer-maintenance loop and endpoint failover both use it instead
// of a fixed sleep, so a dead target is probed quickly at first but a
// long outage does not burn CPU, and the jitter keeps a cluster's worth of
// dialers from thundering at a restarted daemon in lockstep.
//
// The zero value is ready to use (50ms base, 2s cap). Next returns the delay
// before the upcoming attempt: the exponential term doubles per attempt and
// is capped at Max, and the returned delay is drawn uniformly from
// [term/2, term) so concurrent dialers spread out. Backoff is not safe for
// concurrent use; give each dial loop its own.
type Backoff struct {
	Base time.Duration // first delay; 50ms if zero
	Max  time.Duration // delay cap; 2s if zero

	attempt int
}

// Next returns the delay to sleep before the next attempt and advances the
// schedule.
func (b *Backoff) Next() time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	if base > max {
		base = max
	}
	term := base
	for i := 0; i < b.attempt && term < max; i++ {
		term *= 2
	}
	if term > max {
		term = max
	}
	b.attempt++
	half := term / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// Reset restarts the schedule after a successful attempt.
func (b *Backoff) Reset() { b.attempt = 0 }

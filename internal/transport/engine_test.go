package transport

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// newTestEngine creates an engine on the default fabric.
func newTestEngine(t *testing.T, scheme Scheme, horizon float64) *Engine {
	t.Helper()
	eng, err := NewEngine(EngineConfig{Scheme: scheme, Horizon: horizon})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestEngineDefaults(t *testing.T) {
	eng := newTestEngine(t, Flowtune, 1e-3)
	if eng.Topology().NumServers() != 144 {
		t.Errorf("default topology has %d servers, want 144", eng.Topology().NumServers())
	}
	if eng.Allocator() == nil {
		t.Error("Flowtune engine must have an allocator")
	}
	dctcp := newTestEngine(t, DCTCP, 1e-3)
	if dctcp.Allocator() != nil {
		t.Error("non-Flowtune engine must not have an allocator")
	}
}

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{
		Flowtune: "Flowtune", DCTCP: "DCTCP", PFabric: "pFabric",
		SFQCoDel: "sfqCoDel", XCP: "XCP", TCP: "TCP",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
	if len(AllSchemes()) != 5 {
		t.Errorf("AllSchemes should list the five compared schemes")
	}
}

func TestQueueFactoryPerScheme(t *testing.T) {
	link := topology.Link{Capacity: 10e9}
	if _, ok := QueueFactory(DCTCP)(link).(*sim.DropTailQueue); !ok {
		t.Error("DCTCP should use an ECN drop-tail queue")
	}
	if _, ok := QueueFactory(PFabric)(link).(*sim.PFabricQueue); !ok {
		t.Error("pFabric should use a priority queue")
	}
	if _, ok := QueueFactory(SFQCoDel)(link).(*sim.SFQCoDelQueue); !ok {
		t.Error("sfqCoDel should use an SFQ-CoDel queue")
	}
	if _, ok := QueueFactory(XCP)(link).(*sim.XCPQueue); !ok {
		t.Error("XCP should use an XCP queue")
	}
	if _, ok := QueueFactory(Flowtune)(link).(*sim.DropTailQueue); !ok {
		t.Error("Flowtune should use a plain drop-tail queue")
	}
}

// TestSingleFlowCompletesEachScheme: a single short flow on an idle network
// must complete, with an FCT close to the ideal, under every scheme.
func TestSingleFlowCompletesEachScheme(t *testing.T) {
	for _, scheme := range append(AllSchemes(), TCP) {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			eng := newTestEngine(t, scheme, 5e-3)
			f := workload.Flowlet{ID: 1, Arrival: 0, Src: 0, Dst: 20, SizeBytes: 15000}
			if err := eng.AddFlowlet(f); err != nil {
				t.Fatal(err)
			}
			eng.Run(5e-3)
			rec := eng.Records()[0]
			if !rec.Finished() {
				t.Fatalf("%s: flow did not finish", scheme)
			}
			if rec.NormalizedFCT() > 20 {
				t.Errorf("%s: normalized FCT %.1f is implausibly high on an idle network", scheme, rec.NormalizedFCT())
			}
			if eng.DroppedBytes() != 0 {
				t.Errorf("%s: drops on an idle network", scheme)
			}
		})
	}
}

func TestAddFlowletValidation(t *testing.T) {
	eng := newTestEngine(t, DCTCP, 1e-3)
	f := workload.Flowlet{ID: 1, Src: 0, Dst: 1, SizeBytes: 1000}
	if err := eng.AddFlowlet(f); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddFlowlet(f); err == nil {
		t.Error("duplicate flowlet accepted")
	}
	if err := eng.AddFlowlet(workload.Flowlet{ID: 2, Src: 0, Dst: 0, SizeBytes: 1}); err == nil {
		t.Error("flowlet with identical endpoints accepted")
	}
}

// TestFlowtuneSharesBottleneckFairly: two long flows into one receiver get
// roughly equal rates under the allocator.
func TestFlowtuneSharesBottleneckFairly(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Scheme: Flowtune, Horizon: 4e-3, TrackThroughput: true})
	if err != nil {
		t.Fatal(err)
	}
	const size = 10 << 20
	if err := eng.AddFlowlet(workload.Flowlet{ID: 1, Arrival: 0, Src: 16, Dst: 0, SizeBytes: size}); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddFlowlet(workload.Flowlet{ID: 2, Arrival: 0, Src: 32, Dst: 0, SizeBytes: size}); err != nil {
		t.Fatal(err)
	}
	eng.Run(4e-3)
	// Compare received throughput over the measurement window.
	t1 := eng.FlowThroughput(1).Rates()
	t2 := eng.FlowThroughput(2).Rates()
	mean := func(v []float64) float64 {
		if len(v) <= 10 {
			return metrics.Mean(v)
		}
		return metrics.Mean(v[10:]) // skip the pre-allocation transient
	}
	m1, m2 := mean(t1), mean(t2)
	if m1 == 0 || m2 == 0 {
		t.Fatal("a flow received nothing")
	}
	if math.Abs(m1-m2)/math.Max(m1, m2) > 0.2 {
		t.Errorf("unfair split: %.2f vs %.2f Gbit/s", m1/1e9, m2/1e9)
	}
	// Together they should use most of the 10 Gbit/s bottleneck.
	if m1+m2 < 7e9 {
		t.Errorf("bottleneck under-utilized: %.2f Gbit/s total", (m1+m2)/1e9)
	}
	if m1+m2 > 10.1e9 {
		t.Errorf("bottleneck over-subscribed: %.2f Gbit/s total", (m1+m2)/1e9)
	}
}

func TestFlowtuneAllocatorReceivesNotifications(t *testing.T) {
	eng := newTestEngine(t, Flowtune, 3e-3)
	if err := eng.AddFlowlet(workload.Flowlet{ID: 1, Arrival: 0, Src: 0, Dst: 20, SizeBytes: 100000}); err != nil {
		t.Fatal(err)
	}
	eng.Run(3e-3)
	stats := eng.Allocator().Stats()
	if stats.StartNotifications != 1 {
		t.Errorf("allocator saw %d start notifications, want 1", stats.StartNotifications)
	}
	if stats.EndNotifications != 1 {
		t.Errorf("allocator saw %d end notifications, want 1 (flow finished)", stats.EndNotifications)
	}
	if eng.ControlBytes() == 0 {
		t.Error("control traffic should have been injected into the fabric")
	}
	if !eng.Records()[0].Finished() {
		t.Error("flow did not finish")
	}
}

func TestStopFlow(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Scheme: Flowtune, Horizon: 2e-3, TrackThroughput: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddFlowlet(workload.Flowlet{ID: 1, Arrival: 0, Src: 16, Dst: 0, SizeBytes: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	eng.Sim().At(1e-3, func() { eng.StopFlow(1) })
	eng.Run(2e-3)
	rates := eng.FlowThroughput(1).Rates()
	// Some throughput before the stop, none near the end.
	sawTraffic := false
	for i, r := range rates {
		at := float64(i) * 100e-6
		if at < 0.9e-3 && r > 0 {
			sawTraffic = true
		}
		if at > 1.5e-3 && r > 0 {
			t.Errorf("traffic at %.2f ms after StopFlow at 1 ms", at*1e3)
		}
	}
	if !sawTraffic {
		t.Error("flow never sent before being stopped")
	}
	// Stopping twice or stopping an unknown flow must not panic.
	eng.StopFlow(1)
	eng.StopFlow(99)
}

func TestAllocatorFailureFallback(t *testing.T) {
	eng := newTestEngine(t, Flowtune, 4e-3)
	if err := eng.AddFlowlet(workload.Flowlet{ID: 1, Arrival: 0, Src: 16, Dst: 0, SizeBytes: 2 << 20}); err != nil {
		t.Fatal(err)
	}
	// Fail the allocator before the flow starts: the endpoint must still
	// make progress (pre-allocation window behaviour) and finish.
	eng.FailAllocator()
	eng.Run(4e-3)
	if !eng.Records()[0].Finished() {
		t.Error("flow did not finish with a failed allocator")
	}
	if got := eng.Allocator().Stats().RateUpdatesSent; got != 0 {
		t.Errorf("failed allocator sent %d updates", got)
	}
	eng.RecoverAllocator()
}

// TestDCTCPKeepsQueuesShorterThanTCP: the ECN-based scheme should hold the
// bottleneck queue near its marking threshold, well below what loss-based TCP
// builds.
func TestDCTCPKeepsQueuesShorterThanTCP(t *testing.T) {
	maxQueue := func(scheme Scheme) int {
		eng, err := NewEngine(EngineConfig{Scheme: scheme, Horizon: 4e-3, QueueSamplePeriod: 50e-6})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := eng.AddFlowlet(workload.Flowlet{ID: int64(i), Arrival: 0, Src: 16 * (i + 1), Dst: 0, SizeBytes: 8 << 20}); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run(4e-3)
		// Bottleneck is the receiver's downlink.
		topo := eng.Topology()
		down, _ := topo.LinkBetween(topo.ToRForRack(0), topo.Server(0))
		max := 0
		for _, s := range eng.Network().Link(down).Samples() {
			if s.Bytes > max {
				max = s.Bytes
			}
		}
		return max
	}
	dctcp := maxQueue(DCTCP)
	tcp := maxQueue(TCP)
	if dctcp == 0 {
		t.Fatal("DCTCP built no queue at all under 4-flow incast")
	}
	if dctcp >= tcp {
		t.Errorf("DCTCP max queue (%d bytes) should be smaller than TCP's (%d bytes)", dctcp, tcp)
	}
}

// TestPFabricFavorsShortFlows: with a long flow occupying the bottleneck, a
// short flow's completion should be barely affected under pFabric.
func TestPFabricFavorsShortFlows(t *testing.T) {
	eng := newTestEngine(t, PFabric, 5e-3)
	if err := eng.AddFlowlet(workload.Flowlet{ID: 1, Arrival: 0, Src: 16, Dst: 0, SizeBytes: 8 << 20}); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddFlowlet(workload.Flowlet{ID: 2, Arrival: 1e-3, Src: 32, Dst: 0, SizeBytes: 3000}); err != nil {
		t.Fatal(err)
	}
	eng.Run(5e-3)
	short := eng.Records()[1]
	if !short.Finished() {
		t.Fatal("short flow did not finish under pFabric")
	}
	if short.NormalizedFCT() > 5 {
		t.Errorf("short flow normalized FCT %.1f; pFabric should prioritize it", short.NormalizedFCT())
	}
}

// TestXCPConservativeRampUp: a single long XCP flow should take noticeably
// longer to reach link rate than a DCTCP flow (XCP hands out spare capacity
// gradually).
func TestXCPConservativeRampUp(t *testing.T) {
	timeToFinish := func(scheme Scheme) float64 {
		eng, err := NewEngine(EngineConfig{Scheme: scheme, Horizon: 20e-3})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.AddFlowlet(workload.Flowlet{ID: 1, Arrival: 0, Src: 16, Dst: 0, SizeBytes: 2 << 20}); err != nil {
			t.Fatal(err)
		}
		eng.Run(20e-3)
		rec := eng.Records()[0]
		if !rec.Finished() {
			t.Fatalf("%s: 2 MB flow did not finish in 20 ms", scheme)
		}
		return rec.FCT()
	}
	xcp := timeToFinish(XCP)
	dctcp := timeToFinish(DCTCP)
	if xcp <= dctcp {
		t.Errorf("XCP (%.2f ms) should be slower to ramp up than DCTCP (%.2f ms)", xcp*1e3, dctcp*1e3)
	}
}

// TestRetransmissionRecoversFromDrops: under a severe incast with tiny
// pFabric buffers, drops happen but flows still finish.
func TestRetransmissionRecoversFromDrops(t *testing.T) {
	eng := newTestEngine(t, PFabric, 30e-3)
	for i := 0; i < 12; i++ {
		if err := eng.AddFlowlet(workload.Flowlet{
			ID: int64(i), Arrival: 0, Src: 16 + i, Dst: 0, SizeBytes: 150_000,
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run(30e-3)
	if eng.DroppedBytes() == 0 {
		t.Error("expected drops under a 12-flow incast with pFabric's small buffers")
	}
	for i, rec := range eng.Records() {
		if !rec.Finished() {
			t.Errorf("flow %d did not finish despite retransmissions", i)
		}
	}
}

func TestAchievedRates(t *testing.T) {
	eng := newTestEngine(t, DCTCP, 5e-3)
	if err := eng.AddFlowlet(workload.Flowlet{ID: 1, Arrival: 0, Src: 0, Dst: 20, SizeBytes: 30000}); err != nil {
		t.Fatal(err)
	}
	eng.Run(5e-3)
	rates := eng.AchievedRates()
	if len(rates) != 1 || rates[0] <= 0 {
		t.Errorf("AchievedRates = %v", rates)
	}
}

package transport

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// testConn builds a connection wired into a real engine (so senders can use
// the pacing and window machinery) without running the simulator.
func testConn(t *testing.T, scheme Scheme) (*Engine, *conn) {
	t.Helper()
	eng, err := NewEngine(EngineConfig{Scheme: scheme, Horizon: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddFlowlet(workload.Flowlet{ID: 1, Arrival: 0, Src: 0, Dst: 20, SizeBytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	return eng, eng.conns[1]
}

func ack(seq int64) *sim.Packet {
	return &sim.Packet{Kind: sim.Ack, Flow: 1, Seq: seq, WireBytes: sim.AckBytes}
}

func TestNewSenderPerScheme(t *testing.T) {
	cases := map[Scheme]string{
		Flowtune: "*transport.flowtuneSender",
		DCTCP:    "*transport.dctcpSender",
		PFabric:  "*transport.pfabricSender",
		SFQCoDel: "*transport.cubicSender",
		XCP:      "*transport.xcpSender",
		TCP:      "*transport.renoSender",
	}
	for scheme, want := range cases {
		s := newSender(scheme)
		if got := typeName(s); got != want {
			t.Errorf("newSender(%s) = %s, want %s", scheme, got, want)
		}
	}
}

func typeName(v interface{}) string { return sprintfType(v) }

func sprintfType(v interface{}) string { return fmtSprintfT(v) }

func fmtSprintfT(v interface{}) string { return fmtT(v) }

// fmtT avoids importing fmt at three call sites; kept tiny on purpose.
func fmtT(v interface{}) string {
	switch v.(type) {
	case *flowtuneSender:
		return "*transport.flowtuneSender"
	case *dctcpSender:
		return "*transport.dctcpSender"
	case *pfabricSender:
		return "*transport.pfabricSender"
	case *cubicSender:
		return "*transport.cubicSender"
	case *xcpSender:
		return "*transport.xcpSender"
	case *renoSender:
		return "*transport.renoSender"
	default:
		return "unknown"
	}
}

func TestDCTCPAlphaAndWindow(t *testing.T) {
	_, c := testConn(t, DCTCP)
	s := newDCTCPSender()
	s.start(c)
	if !c.ecnCapable {
		t.Error("DCTCP connection must be ECN-capable")
	}
	startCwnd := c.cwnd
	// A full window of unmarked ACKs: additive increase.
	c.ackedBytes = s.windowEnd
	s.onAck(c, ack(0), 20e-6)
	if c.cwnd <= startCwnd {
		t.Errorf("cwnd %g did not grow after an unmarked window", c.cwnd)
	}
	// A fully marked window: alpha rises toward 1 and the window shrinks.
	grown := c.cwnd
	a := &sim.Packet{Kind: sim.Ack, Flow: 1, EchoECN: true}
	c.ackedBytes = s.windowEnd
	s.onAck(c, a, 20e-6)
	if s.alpha <= 0 {
		t.Errorf("alpha = %g, want > 0 after marks", s.alpha)
	}
	if c.cwnd >= grown {
		t.Errorf("cwnd %g did not shrink after a marked window (was %g)", c.cwnd, grown)
	}
	// Loss halves the window.
	before := c.cwnd
	s.onLoss(c)
	if c.cwnd >= before {
		t.Error("loss did not reduce cwnd")
	}
	if c.cwnd < float64(sim.MTU) {
		t.Error("cwnd fell below one segment")
	}
}

func TestCubicWindowEvolution(t *testing.T) {
	eng, c := testConn(t, SFQCoDel)
	s := newCubicSender()
	s.start(c)
	if !s.inSlowStart {
		t.Error("cubic should start in slow start")
	}
	start := c.cwnd
	s.onAck(c, ack(0), 20e-6)
	if c.cwnd <= start {
		t.Error("slow start did not grow the window")
	}
	// Loss: multiplicative decrease by the cubic beta and slow start exits.
	before := c.cwnd
	s.onLoss(c)
	if got := c.cwnd; math.Abs(got-before*cubicBeta) > 1 && got != float64(sim.MTU) {
		t.Errorf("cwnd after loss = %g, want %g", got, before*cubicBeta)
	}
	if s.inSlowStart {
		t.Error("still in slow start after a loss")
	}
	// Post-loss growth resumes (cubic concave region).
	after := c.cwnd
	eng.sim.Schedule(100e-6, func() {})
	eng.sim.Run(1e-4)
	for i := 0; i < 50; i++ {
		s.onAck(c, ack(0), 20e-6)
	}
	if c.cwnd <= after {
		t.Error("cubic window did not grow after the loss epoch")
	}
}

func TestRenoSlowStartAndAIMD(t *testing.T) {
	_, c := testConn(t, TCP)
	s := newRenoSender()
	s.start(c)
	start := c.cwnd
	s.onAck(c, ack(0), 20e-6)
	if c.cwnd != start+float64(sim.MTU) {
		t.Errorf("slow start growth %g, want +1 MSS", c.cwnd-start)
	}
	s.onLoss(c)
	halved := c.cwnd
	if halved >= start+float64(sim.MTU) {
		t.Error("loss did not halve the window")
	}
	// Congestion avoidance: sub-MSS growth per ACK.
	s.onAck(c, ack(0), 20e-6)
	if c.cwnd-halved >= float64(sim.MTU) {
		t.Errorf("congestion avoidance grew too fast: +%g", c.cwnd-halved)
	}
}

func TestXCPSenderFollowsFeedback(t *testing.T) {
	_, c := testConn(t, XCP)
	s := &xcpSender{}
	s.start(c)
	start := c.cwnd
	a := ack(0)
	a.XCPFeedback = 5000
	s.onAck(c, a, 20e-6)
	if c.cwnd != start+5000 {
		t.Errorf("cwnd = %g, want %g", c.cwnd, start+5000)
	}
	// Negative feedback shrinks but never below one segment.
	a.XCPFeedback = -1e9
	s.onAck(c, a, 20e-6)
	if c.cwnd != float64(sim.MTU) {
		t.Errorf("cwnd = %g, want floor of one MTU", c.cwnd)
	}
	// The window is capped near 2×BDP.
	a.XCPFeedback = 1e12
	s.onAck(c, a, 20e-6)
	maxWindow := 2 * c.eng.serverLinkRate() / 8 * c.rttEstimate()
	if c.cwnd > maxWindow*1.001 {
		t.Errorf("cwnd %g exceeds the 2xBDP cap %g", c.cwnd, maxWindow)
	}
}

func TestPFabricSenderPacesAtLineRate(t *testing.T) {
	_, c := testConn(t, PFabric)
	s := &pfabricSender{}
	s.start(c)
	if c.paceRate != c.eng.serverLinkRate() {
		t.Errorf("pFabric pace rate %g, want line rate %g", c.paceRate, c.eng.serverLinkRate())
	}
	// Repeated losses push the flow into probe mode; an ACK restores it.
	for i := 0; i < 10; i++ {
		s.onLoss(c)
	}
	if c.paceRate >= c.eng.serverLinkRate() {
		t.Error("probe mode did not reduce the pacing rate")
	}
	s.onAck(c, ack(0), 20e-6)
	if c.paceRate != c.eng.serverLinkRate() {
		t.Error("ACK did not restore line-rate pacing")
	}
}

func TestFlowtuneSenderRateUpdates(t *testing.T) {
	_, c := testConn(t, Flowtune)
	s := &flowtuneSender{}
	s.start(c)
	if s.allocated {
		t.Error("sender should not be allocated before the first update")
	}
	s.setRate(c, 2e9)
	if !s.allocated {
		t.Error("setRate did not mark the sender allocated")
	}
	if c.paceRate != 2e9 {
		t.Errorf("pace rate %g, want 2e9", c.paceRate)
	}
	// Subsequent ACKs must not grow a window (rate-controlled now).
	before := c.cwnd
	s.onAck(c, ack(0), 20e-6)
	if c.cwnd != before {
		t.Error("allocated Flowtune sender should not grow its window on ACKs")
	}
}

func TestConnSegmentLen(t *testing.T) {
	_, c := testConn(t, TCP)
	c.size = 4000
	if got := c.segmentLen(0); got != sim.MTU {
		t.Errorf("segmentLen(0) = %d, want MTU", got)
	}
	if got := c.segmentLen(3000); got != 1000 {
		t.Errorf("segmentLen(3000) = %d, want 1000", got)
	}
	if got := c.segmentLen(4000); got != 0 {
		t.Errorf("segmentLen(4000) = %d, want 0", got)
	}
}

func TestConnRemainingTracksAcks(t *testing.T) {
	_, c := testConn(t, PFabric)
	if c.remaining() != c.size {
		t.Error("remaining should start at the flow size")
	}
	// Pretend the whole flow has been transmitted so the ACK does not
	// trigger new transmissions; only the accounting is under test here.
	c.nextSeq = c.size
	c.unacked[0] = 1500
	c.inflight = 1500
	c.handleAck(&sim.Packet{Kind: sim.Ack, Flow: 1, Seq: 0, SentAt: 0})
	if c.remaining() != c.size-1500 {
		t.Errorf("remaining = %d, want %d", c.remaining(), c.size-1500)
	}
	if c.inflight != 0 {
		t.Errorf("inflight = %d, want 0", c.inflight)
	}
	// A duplicate ACK for the same segment must not double-count.
	c.handleAck(&sim.Packet{Kind: sim.Ack, Flow: 1, Seq: 0, SentAt: 0})
	if c.remaining() != c.size-1500 {
		t.Error("duplicate ACK changed accounting")
	}
}

func TestReceiverDeduplicatesRetransmissions(t *testing.T) {
	_, c := testConn(t, TCP)
	data := &sim.Packet{Kind: sim.Data, Flow: 1, Seq: 0, PayloadBytes: 1500, WireBytes: 1554}
	a1 := c.handleData(data)
	a2 := c.handleData(data) // retransmitted duplicate
	if c.receivedBytes != 1500 {
		t.Errorf("receivedBytes = %d, want 1500 (duplicates must not count)", c.receivedBytes)
	}
	if a1 == nil || a2 == nil {
		t.Error("every data packet must be acknowledged, even duplicates")
	}
	if a1.Seq != 0 || a2.Seq != 0 {
		t.Error("ACKs must echo the segment offset")
	}
}

package transport

import (
	"fmt"
	"net"

	"repro/internal/core"
	"repro/internal/topology"
)

// ShardedClient is the endpoint side of a sharded allocator cluster: one
// AllocClient per flowtuned shard, multiplexed behind the AllocatorBackend
// interface. Every flowlet is hashed to its owning shard (the shard of its
// source server, matching the daemons' ownership rule), notifications are
// buffered on the owning shard's session, and Step drives the daemons in
// shard order, merging their rate updates into one stream. Like AllocClient
// it is not safe for concurrent use.
type ShardedClient struct {
	smap    *topology.ShardMap
	clients []*AllocClient
	shardOf map[core.FlowID]int // flow → daemon (client index) registered with
	updates []core.RateUpdate

	// daemonOf[x] is the daemon currently serving shard x — initially the
	// identity, re-pointed by Failover when a peer adopts a dead daemon's
	// rack block. It mirrors the daemons' own servedBy table.
	daemonOf []int
	dead     []bool
}

// ShardError wraps an error from one shard's session with the shard index,
// so a caller can repair exactly the session that failed (see Reconnect).
type ShardError struct {
	Shard int
	Err   error
}

// Error implements error.
func (e *ShardError) Error() string { return fmt.Sprintf("shard %d: %v", e.Shard, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *ShardError) Unwrap() error { return e.Err }

// NewShardedClient wraps one established connection per shard (conns[i]
// must reach the daemon owning shard i of smap) and performs every
// handshake. On failure all connections are closed.
func NewShardedClient(conns []net.Conn, smap *topology.ShardMap, clientID uint64) (*ShardedClient, error) {
	closeAll := func() {
		for _, conn := range conns {
			conn.Close()
		}
	}
	if len(conns) != smap.NumShards() {
		closeAll()
		return nil, fmt.Errorf("transport: sharded client needs %d connections, got %d", smap.NumShards(), len(conns))
	}
	c := &ShardedClient{
		smap:     smap,
		clients:  make([]*AllocClient, len(conns)),
		shardOf:  make(map[core.FlowID]int),
		daemonOf: make([]int, len(conns)),
		dead:     make([]bool, len(conns)),
	}
	for i := range c.daemonOf {
		c.daemonOf[i] = i
	}
	for i, conn := range conns {
		cli, err := NewAllocClient(conn, clientID)
		if err != nil {
			closeAll()
			return nil, &ShardError{Shard: i, Err: err}
		}
		c.clients[i] = cli
	}
	return c, nil
}

// DialShardedCluster connects to a flowtuned cluster over TCP, one address
// per shard in shard order.
func DialShardedCluster(addrs []string, smap *topology.ShardMap, clientID uint64) (*ShardedClient, error) {
	conns := make([]net.Conn, 0, len(addrs))
	for i, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, &ShardError{Shard: i, Err: fmt.Errorf("transport: dial shard: %w", err)}
		}
		conns = append(conns, conn)
	}
	return NewShardedClient(conns, smap, clientID)
}

// NumShards returns the cluster size.
func (c *ShardedClient) NumShards() int { return len(c.clients) }

// Client exposes one shard's underlying session (tests and reconnect logic
// use it).
func (c *ShardedClient) Client(shard int) *AllocClient { return c.clients[shard] }

// Map returns the shard map the client hashes with.
func (c *ShardedClient) Map() *topology.ShardMap { return c.smap }

// NumFlows returns the number of flowlets registered across all shards.
func (c *ShardedClient) NumFlows() int { return len(c.shardOf) }

// FlowletStart buffers a flowlet-start notification on the owning shard's
// session. Duplicate registrations are no-ops, mirroring AllocClient.
func (c *ShardedClient) FlowletStart(id core.FlowID, src, dst int, weight float64) error {
	return c.FlowletStartSized(id, src, dst, weight, 0)
}

// FlowletStartSized is FlowletStart carrying the wire v4 flowlet-size hint
// (bytes, 0 = unknown) to the owning shard's daemon.
func (c *ShardedClient) FlowletStartSized(id core.FlowID, src, dst int, weight float64, size int64) error {
	if _, dup := c.shardOf[id]; dup {
		return nil
	}
	if src < 0 || src >= c.smap.Topology().NumServers() {
		return fmt.Errorf("transport: flowlet %d: source server %d out of range", id, src)
	}
	daemon := c.daemonOf[c.smap.ShardOfFlow(src, dst)]
	if err := c.clients[daemon].FlowletStartSized(id, src, dst, weight, size); err != nil {
		return &ShardError{Shard: daemon, Err: err}
	}
	c.shardOf[id] = daemon
	return nil
}

// FlowletEnd buffers a flowlet-end notification on the shard that owns the
// flow. Unknown flows are ignored.
func (c *ShardedClient) FlowletEnd(id core.FlowID) error {
	shard, ok := c.shardOf[id]
	if !ok {
		return nil
	}
	delete(c.shardOf, id)
	if err := c.clients[shard].FlowletEnd(id); err != nil {
		return &ShardError{Shard: shard, Err: err}
	}
	return nil
}

// Flush writes all buffered notifications to their daemons.
func (c *ShardedClient) Flush() error {
	for i, cli := range c.clients {
		if c.dead[i] {
			continue
		}
		if err := cli.Flush(); err != nil {
			return &ShardError{Shard: i, Err: err}
		}
	}
	return nil
}

// Step steps every shard daemon once, in shard order, and returns the
// merged rate updates (each shard's updates in its own deterministic order,
// concatenated shard by shard). Stepping shard by shard also sequences the
// cluster's boundary-price exchange: a daemon pushes its bundle — and waits
// for the ack — before its step returns, so by the time shard i+1 steps,
// shard i's digest for this iteration is already queued there. The returned
// slice is reused across calls.
func (c *ShardedClient) Step() ([]core.RateUpdate, error) {
	c.updates = c.updates[:0]
	for i, cli := range c.clients {
		if c.dead[i] {
			continue
		}
		ups, err := cli.Step()
		if err != nil {
			return nil, &ShardError{Shard: i, Err: err}
		}
		c.updates = append(c.updates, ups...)
	}
	return c.updates, nil
}

// Reconnect re-establishes one shard's session over a new connection after
// it failed (or its daemon restarted with a new epoch): only that shard's
// flowlets are re-registered, the others keep their live sessions — the
// per-shard half of AllocClient.Reconnect.
func (c *ShardedClient) Reconnect(shard int, conn net.Conn) error {
	if err := c.clients[shard].Reconnect(conn); err != nil {
		return &ShardError{Shard: shard, Err: err}
	}
	return nil
}

// Epoch returns one shard's allocator epoch from its handshake (or the last
// EpochNotify it pushed).
func (c *ShardedClient) Epoch(shard int) uint64 { return c.clients[shard].Epoch() }

// SetFreezeOnFailure applies freeze-on-failure to every shard session: a
// shard whose daemon dies freezes at last-known rates instead of failing the
// whole cluster step. Frozen reports per-shard state; Failover repairs it.
func (c *ShardedClient) SetFreezeOnFailure(on bool) {
	for _, cli := range c.clients {
		cli.SetFreezeOnFailure(on)
	}
}

// Frozen reports whether one daemon's session froze after a failure.
func (c *ShardedClient) Frozen(daemon int) bool { return c.clients[daemon].Frozen() }

// Successor returns the daemon that adopts dead's rack block under the
// cluster's takeover rule — the next index after it, skipping daemons the
// client has already failed over — so the endpoint and the daemons agree on
// where orphaned flows land. Returns -1 when no live daemon remains.
func (c *ShardedClient) Successor(dead int) int {
	n := len(c.clients)
	for i := 1; i < n; i++ {
		cand := (dead + i) % n
		if !c.dead[cand] {
			return cand
		}
	}
	return -1
}

// Failover re-homes a dead daemon's flows onto the peer daemon that adopted
// its rack block (the cluster's takeover successor): the dead session's
// registrations are re-sent, sorted, as bare adds on the adopter's live
// session — the adopter holds them unowned from the dead daemon's replica,
// so each add transfers ownership without engine churn — and future flows
// hashed to the dead daemon's shards route to the adopter. The dead session
// is closed; its daemon is skipped by Step from now on.
func (c *ShardedClient) Failover(dead, adopter int) error {
	if dead == adopter || dead < 0 || dead >= len(c.clients) || adopter < 0 || adopter >= len(c.clients) {
		return fmt.Errorf("transport: failover %d → %d out of range", dead, adopter)
	}
	if c.dead[dead] {
		return nil
	}
	if c.dead[adopter] {
		return fmt.Errorf("transport: failover %d → %d: adopter is dead", dead, adopter)
	}
	c.dead[dead] = true
	c.clients[dead].Close()
	for x := range c.daemonOf {
		if c.daemonOf[x] == dead {
			c.daemonOf[x] = adopter
		}
	}
	// Flows that ended while the dead session was frozen still sit in the
	// adopter's replica; retire them there before re-registering survivors.
	for _, id := range c.clients[dead].TakeFrozenEnds() {
		c.clients[adopter].EndOrphan(id)
	}
	for _, r := range c.clients[dead].Registrations() {
		if err := c.clients[adopter].FlowletStartSized(r.ID, r.Src, r.Dst, r.Weight, r.Size); err != nil {
			return &ShardError{Shard: adopter, Err: err}
		}
		c.shardOf[r.ID] = adopter
	}
	return nil
}

// Close closes every shard session, returning the first error.
func (c *ShardedClient) Close() error {
	var first error
	for _, cli := range c.clients {
		if err := cli.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

package transport

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// sender is the congestion-control logic attached to one connection. The
// conn provides the mechanism (segmentation, pacing or windowing, receiver
// bookkeeping, retransmission); the sender provides the policy.
type sender interface {
	// start is called once when the flow becomes available at the sender.
	start(c *conn)
	// onAck is called when an acknowledgment for a data segment arrives.
	onAck(c *conn, ack *sim.Packet, rttSample float64)
	// onLoss is called when a data segment of this flow is known lost
	// (dropped in the network or retransmission timer fired).
	onLoss(c *conn)
}

// conn is one flow's endpoint state: the sender side at the source server and
// the receiver side at the destination server. All times are simulator times.
type conn struct {
	eng  *Engine
	id   int64
	src  int
	dst  int
	size int64

	fwdPath []int32
	revPath []int32
	baseRTT float64

	// Sender state.
	snd           sender
	nextSeq       int64         // next new payload byte to send
	ackedBytes    int64         // total payload bytes acknowledged
	unacked       map[int64]int // segment start -> payload length
	inflight      int64         // bytes sent but not yet acknowledged
	cwnd          float64       // congestion window in bytes (window schemes)
	paceRate      float64       // pacing rate in bits/s (rate schemes); 0 disables pacing
	pacing        bool          // a pacing send is scheduled
	ecnCapable    bool          // set ECN-capable on data packets
	senderDone    bool          // all bytes acknowledged
	retxQueue     []int64       // segments awaiting retransmission
	retxScheduled bool
	rtoArmed      bool
	lastProgress  float64 // time of last new ack, for the RTO timer
	srtt          float64 // smoothed RTT estimate

	// Receiver state.
	received      map[int64]int
	receivedBytes int64

	// recordIdx indexes the engine's FlowRecord for this flow.
	recordIdx int

	throughput *metrics.ThroughputSeries
}

// remaining returns the payload bytes not yet acknowledged, which is
// pFabric's packet priority.
func (c *conn) remaining() int64 { return c.size - c.ackedBytes }

// record returns the engine's flow record for this connection.
func (c *conn) record() *metrics.FlowRecord { return &c.eng.records[c.recordIdx] }

// segmentAt returns the payload length of the segment starting at seq.
func (c *conn) segmentLen(seq int64) int {
	left := c.size - seq
	if left >= sim.MTU {
		return sim.MTU
	}
	return int(left)
}

// sendSegment transmits the data segment starting at seq.
func (c *conn) sendSegment(seq int64, retransmit bool) {
	payload := c.segmentLen(seq)
	if payload <= 0 {
		return
	}
	now := c.eng.sim.Now()
	p := &sim.Packet{
		Flow:         c.id,
		Kind:         sim.Data,
		Src:          c.src,
		Dst:          c.dst,
		Seq:          seq,
		PayloadBytes: payload,
		WireBytes:    payload + sim.HeaderBytes,
		Priority:     float64(c.remaining()),
		ECNCapable:   c.ecnCapable,
		SentAt:       now,
		Path:         c.fwdPath,
		Retransmit:   retransmit,
	}
	if c.eng.cfg.Scheme == XCP {
		p.XCPCwnd = c.cwnd
		p.XCPRTT = c.rttEstimate()
	}
	if !retransmit {
		if _, ok := c.unacked[seq]; !ok {
			c.unacked[seq] = payload
			c.inflight += int64(payload)
		}
	}
	c.armRTO()
	c.eng.net.Send(p)
}

// rttEstimate returns the smoothed RTT, falling back to the path's base RTT.
func (c *conn) rttEstimate() float64 {
	if c.srtt > 0 {
		return c.srtt
	}
	return c.baseRTT
}

// trySendWindow sends new segments while the congestion window allows, for
// window-based schemes (DCTCP, Cubic, XCP, TCP).
func (c *conn) trySendWindow() {
	for c.nextSeq < c.size && (c.inflight == 0 || float64(c.inflight) < c.cwnd) {
		seq := c.nextSeq
		payload := c.segmentLen(seq)
		c.nextSeq += int64(payload)
		c.sendSegment(seq, false)
	}
}

// startPacing begins (or resumes) the paced sending loop for rate-based
// schemes (Flowtune, pFabric). Each call sends at most one segment and
// schedules the next send according to the current pacing rate.
func (c *conn) startPacing() {
	if c.pacing || c.nextSeq >= c.size || c.paceRate <= 0 {
		return
	}
	c.pacing = true
	c.paceNext()
}

// paceNext sends the next segment and schedules the following one.
func (c *conn) paceNext() {
	if c.nextSeq >= c.size || c.paceRate <= 0 {
		c.pacing = false
		return
	}
	seq := c.nextSeq
	payload := c.segmentLen(seq)
	c.nextSeq += int64(payload)
	c.sendSegment(seq, false)
	if c.nextSeq >= c.size {
		c.pacing = false
		return
	}
	gap := float64((payload+sim.HeaderBytes)*8) / c.paceRate
	c.eng.sim.Schedule(gap, c.paceNext)
}

// setPaceRate updates the pacing rate; if the connection still has bytes to
// send and pacing had stopped (rate was zero), it restarts the pacing loop.
func (c *conn) setPaceRate(rate float64) {
	c.paceRate = rate
	if rate > 0 {
		c.startPacing()
	}
}

// handleAck processes an acknowledgment arriving back at the sender.
func (c *conn) handleAck(p *sim.Packet) {
	now := c.eng.sim.Now()
	length, outstanding := c.unacked[p.Seq]
	if outstanding {
		delete(c.unacked, p.Seq)
		c.inflight -= int64(length)
		c.ackedBytes += int64(length)
		c.lastProgress = now
	}
	rtt := now - p.SentAt
	if rtt > 0 {
		if c.srtt == 0 {
			c.srtt = rtt
		} else {
			c.srtt = 0.875*c.srtt + 0.125*rtt
		}
	}
	c.snd.onAck(c, p, rtt)
	if c.ackedBytes >= c.size && !c.senderDone {
		c.senderDone = true
		c.eng.senderFinished(c)
	}
}

// handleLoss is invoked when one of the connection's data segments is known
// lost. The segment is queued for retransmission after the scheme's
// retransmission delay, modelling the detection latency (fast retransmit or
// timeout) a real transport would incur.
func (c *conn) handleLoss(p *sim.Packet) {
	if c.senderDone {
		return
	}
	if _, ok := c.unacked[p.Seq]; !ok {
		return // already acknowledged (e.g. a duplicate retransmission was dropped)
	}
	c.retxQueue = append(c.retxQueue, p.Seq)
	c.snd.onLoss(c)
	c.scheduleRetransmits()
}

// scheduleRetransmits schedules the pending retransmissions after the
// scheme's retransmission delay.
func (c *conn) scheduleRetransmits() {
	if c.retxScheduled || len(c.retxQueue) == 0 {
		return
	}
	c.retxScheduled = true
	delay := c.eng.retxDelay(c)
	c.eng.sim.Schedule(delay, func() {
		c.retxScheduled = false
		queue := c.retxQueue
		c.retxQueue = nil
		for _, seq := range queue {
			if _, still := c.unacked[seq]; still && !c.senderDone {
				c.sendSegment(seq, true)
			}
		}
	})
}

// armRTO starts the retransmission-timeout watchdog if it is not running.
// The watchdog recovers from lost acknowledgments, which the loss callback
// cannot see.
func (c *conn) armRTO() {
	if c.rtoArmed || c.senderDone {
		return
	}
	c.rtoArmed = true
	c.lastProgress = c.eng.sim.Now()
	c.eng.sim.Schedule(c.eng.rtoInterval(c), c.rtoCheck)
}

// rtoCheck fires periodically while data is outstanding and retransmits
// everything unacknowledged when no progress has been made for a full RTO.
func (c *conn) rtoCheck() {
	c.rtoArmed = false
	if c.senderDone || len(c.unacked) == 0 {
		return
	}
	now := c.eng.sim.Now()
	rto := c.eng.rtoInterval(c)
	if now-c.lastProgress >= rto {
		c.snd.onLoss(c)
		for seq := range c.unacked {
			c.retxQueue = append(c.retxQueue, seq)
		}
		c.lastProgress = now
		c.scheduleRetransmits()
	}
	c.rtoArmed = true
	c.eng.sim.Schedule(rto, c.rtoCheck)
}

// handleData processes a data packet arriving at the receiver and returns an
// acknowledgment to send back.
func (c *conn) handleData(p *sim.Packet) *sim.Packet {
	now := c.eng.sim.Now()
	if _, dup := c.received[p.Seq]; !dup {
		c.received[p.Seq] = p.PayloadBytes
		c.receivedBytes += int64(p.PayloadBytes)
		c.eng.deliveredBytes += int64(p.PayloadBytes)
		if c.throughput != nil {
			c.throughput.Add(now, p.PayloadBytes)
		}
		if c.receivedBytes >= c.size {
			rec := c.record()
			if rec.End == 0 {
				rec.End = now
				if c.eng.onFlowComplete != nil {
					c.eng.onFlowComplete(c.id, now)
				}
			}
		}
	}
	ack := &sim.Packet{
		Flow:        c.id,
		Kind:        sim.Ack,
		Src:         c.dst,
		Dst:         c.src,
		Seq:         p.Seq,
		WireBytes:   sim.AckBytes,
		EchoECN:     p.ECNMarked,
		XCPFeedback: p.XCPFeedback,
		SentAt:      p.SentAt, // carried through for RTT measurement
		Path:        c.revPath,
	}
	return ack
}

package transport

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// EngineConfig configures a simulation run of one scheme over one workload.
type EngineConfig struct {
	// Scheme selects the congestion-control scheme.
	Scheme Scheme
	// Topology is the fabric to simulate; nil uses the paper's default
	// simulation topology (9 racks × 16 servers, 4 spines, 10 Gbit/s).
	Topology *topology.Topology
	// AllocatorInterval is the Flowtune allocator's iteration period
	// (default 10 µs, §6.2).
	AllocatorInterval float64
	// AllocatorGamma is NED's γ (default 0.4).
	AllocatorGamma float64
	// UpdateThreshold is the allocator's rate-update notification
	// threshold (default 0.01).
	UpdateThreshold float64
	// TrackThroughput enables per-flow throughput time series (used by the
	// Figure 4 convergence experiment).
	TrackThroughput bool
	// ThroughputInterval is the time-series bucket width (default 100 µs).
	ThroughputInterval float64
	// QueueSamplePeriod enables periodic queue sampling when positive
	// (the paper samples every 1 ms).
	QueueSamplePeriod float64
	// Horizon is the simulation end time in seconds; required by Run.
	Horizon float64
	// ExternalAllocator, when set, terminates the Flowtune control plane
	// outside the engine — typically an AllocClient speaking the wire
	// protocol to a flowtuned daemon — instead of the in-process
	// core.Allocator. Control messages still traverse the simulated
	// fabric; only the allocator computation moves out of process.
	ExternalAllocator AllocatorBackend
	// TrackRateLatency records, for every flowlet, the simulated time from
	// its start (when the flowlet-start notification leaves the sender)
	// until the first allocator rate update arrives back at the sender —
	// the paper's flowlet-start→rate-arrival control-loop latency. The
	// samples are in sim time, so they are byte-deterministic even though
	// the path includes the allocator's iteration alignment. Flowtune only.
	TrackRateLatency bool
}

// withDefaults fills unset fields.
func (c EngineConfig) withDefaults() (EngineConfig, error) {
	if c.Topology == nil {
		topo, err := topology.NewTwoTier(topology.DefaultSimConfig())
		if err != nil {
			return c, err
		}
		c.Topology = topo
	}
	if c.AllocatorInterval == 0 {
		c.AllocatorInterval = 10e-6
	}
	if c.AllocatorGamma == 0 {
		c.AllocatorGamma = 0.4
	}
	if c.UpdateThreshold == 0 {
		c.UpdateThreshold = 0.01
	}
	if c.ThroughputInterval == 0 {
		c.ThroughputInterval = 100e-6
	}
	return c, nil
}

// Engine runs one congestion-control scheme over a set of flowlets on a
// simulated fabric and collects the evaluation metrics.
type Engine struct {
	cfg  EngineConfig
	sim  *sim.Simulator
	net  *sim.Network
	topo *topology.Topology

	conns   map[int64]*conn
	records []metrics.FlowRecord

	// onFlowComplete, if set, fires when a flow's last payload byte
	// arrives at the receiver (used by closed-loop workloads).
	onFlowComplete func(id int64, at float64)
	// deliveredBytes counts distinct payload bytes that reached their
	// receivers (retransmitted duplicates excluded).
	deliveredBytes int64

	// Flowtune-specific allocator endpoint. backend is where control
	// messages terminate (the in-process allocator, or an external
	// daemon client); alloc is only set for the in-process case.
	backend        AllocatorBackend
	backendErr     error
	registered     map[core.FlowID]bool
	alloc          *core.Allocator
	allocRunning   bool
	allocFailed    bool
	ctrlToAlloc    map[int][]int32 // control path from each server to the allocator
	ctrlFromAlloc  map[int][]int32 // control path from the allocator to each server
	controlPackets int64
	controlBytes   int64

	// rateSeen and rateLatencies implement TrackRateLatency: one sample
	// per flowlet, appended in rate-arrival order.
	rateSeen      map[int64]bool
	rateLatencies []float64
}

// NewEngine creates an engine for the given configuration.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := sim.New()
	net, err := sim.NewNetwork(s, cfg.Topology, QueueFactory(cfg.Scheme))
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:   cfg,
		sim:   s,
		net:   net,
		topo:  cfg.Topology,
		conns: make(map[int64]*conn),
	}
	for srv := 0; srv < e.topo.NumServers(); srv++ {
		server := srv
		net.RegisterHost(server, func(p *sim.Packet) { e.hostReceive(server, p) })
	}
	net.OnDrop(e.packetDropped)
	if cfg.Scheme == Flowtune {
		if err := e.setupAllocator(); err != nil {
			return nil, err
		}
	}
	if cfg.QueueSamplePeriod > 0 && cfg.Horizon > 0 {
		net.StartQueueSampling(cfg.QueueSamplePeriod, cfg.Horizon)
	}
	return e, nil
}

// Sim returns the engine's simulator.
func (e *Engine) Sim() *sim.Simulator { return e.sim }

// Network returns the engine's simulated network.
func (e *Engine) Network() *sim.Network { return e.net }

// Topology returns the fabric being simulated.
func (e *Engine) Topology() *topology.Topology { return e.topo }

// Allocator returns the Flowtune allocator, or nil for other schemes.
func (e *Engine) Allocator() *core.Allocator { return e.alloc }

// serverLinkRate returns the capacity of a server's access link.
func (e *Engine) serverLinkRate() float64 { return e.topo.Config().LinkCapacity }

// retxDelay models how long a sender takes to detect and repair a loss.
func (e *Engine) retxDelay(c *conn) float64 {
	switch e.cfg.Scheme {
	case PFabric:
		// pFabric uses aggressive probing and small RTOs.
		return 3 * c.baseRTT
	default:
		return math.Max(200e-6, 2*c.rttEstimate())
	}
}

// rtoInterval is the retransmission-timeout period for lost-ACK recovery.
func (e *Engine) rtoInterval(c *conn) float64 {
	switch e.cfg.Scheme {
	case PFabric:
		return math.Max(60e-6, 3*c.rttEstimate())
	default:
		return math.Max(1e-3, 4*c.rttEstimate())
	}
}

// AddFlowlet registers a flowlet: its connection starts at the flowlet's
// arrival time.
func (e *Engine) AddFlowlet(f workload.Flowlet) error {
	if _, dup := e.conns[f.ID]; dup {
		return fmt.Errorf("transport: flowlet %d already added", f.ID)
	}
	fwd, err := e.topo.Route(f.Src, f.Dst, int(f.ID))
	if err != nil {
		return err
	}
	rev, err := e.topo.Route(f.Dst, f.Src, int(f.ID))
	if err != nil {
		return err
	}
	c := &conn{
		eng:      e,
		id:       f.ID,
		src:      f.Src,
		dst:      f.Dst,
		size:     f.SizeBytes,
		fwdPath:  pathToInt32(fwd),
		revPath:  pathToInt32(rev),
		baseRTT:  e.topo.BaseRTT(f.Src, f.Dst),
		unacked:  make(map[int64]int),
		received: make(map[int64]int),
		snd:      newSender(e.cfg.Scheme),
	}
	idealRate := e.serverLinkRate()
	e.records = append(e.records, metrics.FlowRecord{
		ID:            f.ID,
		SizeBytes:     f.SizeBytes,
		Start:         f.Arrival,
		IdealDuration: float64(f.SizeBytes*8)/idealRate + c.baseRTT,
	})
	c.recordIdx = len(e.records) - 1
	if e.cfg.TrackThroughput {
		c.throughput = metrics.NewThroughputSeries(e.cfg.ThroughputInterval, 0)
	}
	e.conns[f.ID] = c
	e.sim.At(f.Arrival, func() { c.snd.start(c) })
	return nil
}

// AddFlowlets registers a batch of flowlets.
func (e *Engine) AddFlowlets(flows []workload.Flowlet) error {
	for _, f := range flows {
		if err := e.AddFlowlet(f); err != nil {
			return err
		}
	}
	return nil
}

// Run advances the simulation until the configured horizon (or the given
// horizon if the configuration left it zero).
func (e *Engine) Run(horizon float64) {
	if horizon == 0 {
		horizon = e.cfg.Horizon
	}
	if e.cfg.Horizon < horizon {
		e.cfg.Horizon = horizon
	}
	if e.cfg.Scheme == Flowtune && !e.allocRunning {
		e.allocRunning = true
		e.sim.Schedule(e.cfg.AllocatorInterval, e.allocatorTick)
	}
	e.sim.Run(horizon)
}

// Records returns the per-flow outcome records.
func (e *Engine) Records() []metrics.FlowRecord { return e.records }

// SetFlowCompleteHook registers a callback fired at the simulated time a
// flow's last payload byte arrives at its receiver. Closed-loop workloads use
// it to schedule the next arrival; the callback may add new flowlets.
func (e *Engine) SetFlowCompleteHook(fn func(id int64, at float64)) { e.onFlowComplete = fn }

// StopFlow aborts a flow's sender at the current simulation time: no further
// data is sent and, under Flowtune, a flowlet-end notification is sent to the
// allocator. It is used by the Figure 4 convergence experiment, where senders
// start and stop on a fixed schedule.
func (e *Engine) StopFlow(id int64) {
	c, ok := e.conns[id]
	if !ok || c.senderDone {
		return
	}
	c.senderDone = true
	c.paceRate = 0
	c.nextSeq = c.size // prevent any further new transmissions
	c.retxQueue = nil
	if e.cfg.Scheme == Flowtune {
		e.notifyFlowletEnd(c)
	}
}

// FlowThroughput returns the receiver-side throughput series of a flow (only
// populated when TrackThroughput is set).
func (e *Engine) FlowThroughput(id int64) *metrics.ThroughputSeries {
	if c, ok := e.conns[id]; ok {
		return c.throughput
	}
	return nil
}

// DroppedBytes returns total bytes dropped in the fabric.
func (e *Engine) DroppedBytes() int64 { return e.net.TotalDroppedBytes() }

// DeliveredBytes returns the distinct payload bytes delivered to receivers so
// far. Sampling it before and after a measurement window yields goodput.
func (e *Engine) DeliveredBytes() int64 { return e.deliveredBytes }

// ControlBytes returns the bytes of allocator control traffic injected into
// the fabric (Flowtune only).
func (e *Engine) ControlBytes() int64 { return e.controlBytes }

// AchievedRates returns, for every finished flow, its achieved throughput
// (size divided by completion time), used for the fairness comparison.
func (e *Engine) AchievedRates() []float64 {
	var rates []float64
	for _, r := range e.records {
		if r.Finished() && r.FCT() > 0 {
			rates = append(rates, float64(r.SizeBytes*8)/r.FCT())
		}
	}
	return rates
}

// hostReceive dispatches a packet delivered to a server.
func (e *Engine) hostReceive(server int, p *sim.Packet) {
	switch p.Kind {
	case sim.Data:
		c, ok := e.conns[p.Flow]
		if !ok || server != c.dst {
			return
		}
		ack := c.handleData(p)
		e.sim.Schedule(e.topo.Config().HostDelay, func() { e.net.Send(ack) })
	case sim.Ack:
		c, ok := e.conns[p.Flow]
		if !ok || server != c.src {
			return
		}
		c.handleAck(p)
	case sim.Control:
		if p.Ctrl == nil || p.Ctrl.Type != sim.CtrlRateUpdate {
			return
		}
		c, ok := e.conns[p.Ctrl.Flow]
		if !ok || c.senderDone {
			return
		}
		if ft, ok := c.snd.(*flowtuneSender); ok {
			ft.setRate(c, p.Ctrl.Rate)
			if e.rateSeen != nil && !e.rateSeen[p.Ctrl.Flow] {
				e.rateSeen[p.Ctrl.Flow] = true
				e.rateLatencies = append(e.rateLatencies, e.sim.Now()-e.records[c.recordIdx].Start)
			}
		}
	}
}

// packetDropped lets the owning connection react to a lost data packet.
func (e *Engine) packetDropped(p *sim.Packet, _ topology.LinkID) {
	if p.Kind != sim.Data {
		return
	}
	if c, ok := e.conns[p.Flow]; ok {
		c.handleLoss(p)
	}
}

// senderFinished is called when a connection has every byte acknowledged.
func (e *Engine) senderFinished(c *conn) {
	if e.cfg.Scheme == Flowtune {
		e.notifyFlowletEnd(c)
	}
}

// ---------------------------------------------------------------------------
// Flowtune allocator endpoint

// setupAllocator builds the allocator endpoint and its control paths. The
// allocator host stays part of the simulated fabric either way; with an
// external backend the computation happens in the daemon instead of the
// in-process core.Allocator.
func (e *Engine) setupAllocator() error {
	if _, ok := e.topo.AllocatorNode(); !ok {
		return fmt.Errorf("transport: Flowtune requires a topology with an allocator host")
	}
	e.registered = make(map[core.FlowID]bool)
	if e.cfg.TrackRateLatency {
		e.rateSeen = make(map[int64]bool)
	}
	if e.cfg.ExternalAllocator != nil {
		e.backend = e.cfg.ExternalAllocator
	} else {
		alloc, err := core.NewAllocator(core.Config{
			Topology:          e.topo,
			Gamma:             e.cfg.AllocatorGamma,
			UpdateThreshold:   e.cfg.UpdateThreshold,
			IterationInterval: e.cfg.AllocatorInterval,
		})
		if err != nil {
			return err
		}
		e.alloc = alloc
		e.backend = inprocBackend{alloc: alloc}
	}
	e.ctrlToAlloc = make(map[int][]int32)
	e.ctrlFromAlloc = make(map[int][]int32)
	for srv := 0; srv < e.topo.NumServers(); srv++ {
		// Spread servers statically across the allocator's uplinks.
		up, err := e.topo.PathToAllocator(srv, srv)
		if err != nil {
			return err
		}
		down, err := e.topo.PathFromAllocator(srv, srv)
		if err != nil {
			return err
		}
		e.ctrlToAlloc[srv] = pathToInt32(up)
		e.ctrlFromAlloc[srv] = pathToInt32(down)
	}
	e.net.RegisterAllocatorHost(e.allocatorReceive)
	return nil
}

// WrapBackend replaces the allocator backend with wrap(current backend).
// This is the seam the fault-injection layer uses: the wrapper sees every
// FlowletStart/FlowletEnd/Step exactly where the fabric-terminated control
// plane does, regardless of whether the inner backend is the in-process
// allocator, a daemon client, or a sharded-cluster client. It must be called
// before Run and only for the Flowtune scheme.
func (e *Engine) WrapBackend(wrap func(AllocatorBackend) AllocatorBackend) error {
	if e.backend == nil {
		return fmt.Errorf("transport: WrapBackend requires the Flowtune scheme")
	}
	if e.allocRunning {
		return fmt.Errorf("transport: WrapBackend must be called before Run")
	}
	e.backend = wrap(e.backend)
	return nil
}

// RateLatencies returns the flowlet-start→rate-arrival latency samples in
// seconds of simulated time, one per flowlet that received at least one rate
// update, in rate-arrival order (only populated when TrackRateLatency is
// set).
func (e *Engine) RateLatencies() []float64 { return e.rateLatencies }

// FailAllocator simulates an allocator failure: no new iterations run and no
// updates are sent; endpoints keep their last allocated rates.
func (e *Engine) FailAllocator() {
	if e.backend == nil {
		return
	}
	if e.alloc != nil {
		e.alloc.Fail()
	}
	e.allocFailed = true
}

// RecoverAllocator restores a failed allocator.
func (e *Engine) RecoverAllocator() {
	if e.backend == nil {
		return
	}
	if e.alloc != nil {
		e.alloc.Recover()
	}
	e.allocFailed = false
}

// Err returns the first fatal control-plane error of the run (a broken
// connection to an external allocator daemon), or nil.
func (e *Engine) Err() error { return e.backendErr }

// notifyFlowletStart sends a flowlet-start control message to the allocator.
func (e *Engine) notifyFlowletStart(c *conn) {
	e.sendControl(c.src, sim.AllocatorDst, e.ctrlToAlloc[c.src], &sim.ControlInfo{
		Type: sim.CtrlFlowletStart,
		Flow: c.id,
		Src:  c.src,
		Dst:  c.dst,
		Size: c.size,
	}, core.FlowletStartBytes)
}

// notifyFlowletEnd sends a flowlet-end control message to the allocator.
func (e *Engine) notifyFlowletEnd(c *conn) {
	e.sendControl(c.src, sim.AllocatorDst, e.ctrlToAlloc[c.src], &sim.ControlInfo{
		Type: sim.CtrlFlowletEnd,
		Flow: c.id,
	}, core.FlowletEndBytes)
}

// sendControl injects a control packet onto a path.
func (e *Engine) sendControl(src, dst int, path []int32, info *sim.ControlInfo, payload int) {
	p := &sim.Packet{
		Flow:         -int64(info.Flow) - 1, // control traffic has its own flow space
		Kind:         sim.Control,
		Src:          src,
		Dst:          dst,
		PayloadBytes: payload,
		WireBytes:    payload + sim.HeaderBytes,
		Path:         path,
		Ctrl:         info,
	}
	e.controlPackets++
	e.controlBytes += int64(p.WireBytes)
	e.net.Send(p)
}

// allocatorReceive handles control packets arriving at the allocator host.
func (e *Engine) allocatorReceive(p *sim.Packet) {
	if p.Kind != sim.Control || p.Ctrl == nil || e.backend == nil || e.allocFailed || e.backendErr != nil {
		return
	}
	id := core.FlowID(p.Ctrl.Flow)
	switch p.Ctrl.Type {
	case sim.CtrlFlowletStart:
		// Ignore duplicate registrations defensively.
		if !e.registered[id] {
			if err := startFlowlet(e.backend, id, p.Ctrl.Src, p.Ctrl.Dst, 1, p.Ctrl.Size); err == nil {
				e.registered[id] = true
			}
		}
	case sim.CtrlFlowletEnd:
		if e.registered[id] {
			_ = e.backend.FlowletEnd(id)
			delete(e.registered, id)
		}
	}
}

// allocatorTick runs one allocator iteration and ships the resulting rate
// updates to endpoints as control packets through the fabric.
func (e *Engine) allocatorTick() {
	if e.backend != nil && !e.allocFailed && e.backendErr == nil {
		updates, err := e.backend.Step()
		if err != nil {
			// A broken daemon connection is fatal for the run; record
			// it and stop ticking so Err surfaces the cause.
			e.backendErr = err
			return
		}
		for _, u := range updates {
			e.sendControl(sim.AllocatorDst, u.Src, e.ctrlFromAlloc[u.Src], &sim.ControlInfo{
				Type: sim.CtrlRateUpdate,
				Flow: int64(u.Flow),
				Rate: u.Rate,
			}, core.RateUpdateBytes)
		}
	}
	if e.sim.Now() < e.cfg.Horizon {
		e.sim.Schedule(e.cfg.AllocatorInterval, e.allocatorTick)
	}
}

// pathToInt32 converts a topology path into the packet representation.
func pathToInt32(p topology.Path) []int32 {
	out := make([]int32, len(p))
	for i, l := range p {
		out[i] = int32(l)
	}
	return out
}

package transport

import (
	"testing"
	"time"
)

// TestBackoffBoundsAndGrowth pins the redial schedule: every delay sits in
// [term/2, term] for the exponentially growing, capped term, and Reset
// restarts the schedule.
func TestBackoffBoundsAndGrowth(t *testing.T) {
	b := &Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	terms := []time.Duration{10, 20, 40, 80, 80, 80} // ms, capped at Max
	for i, term := range terms {
		term *= time.Millisecond
		d := b.Next()
		if d < term/2 || d > term {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, d, term/2, term)
		}
	}
	b.Reset()
	if d := b.Next(); d > 10*time.Millisecond {
		t.Fatalf("delay after Reset = %v, want ≤ base", d)
	}

	// The zero value is usable with sane defaults.
	var zero Backoff
	if d := zero.Next(); d < 25*time.Millisecond || d > 50*time.Millisecond {
		t.Fatalf("zero-value first delay = %v, want within [25ms, 50ms]", d)
	}
	for i := 0; i < 20; i++ {
		if d := zero.Next(); d > 2*time.Second {
			t.Fatalf("zero-value delay %v exceeds the 2s cap", d)
		}
	}
}

package transport

import (
	"math"

	"repro/internal/sim"
)

// initialWindowBytes is the initial congestion window of the window-based
// schemes (10 MTU-sized segments, as in modern datacenter TCP stacks).
const initialWindowBytes = 10 * sim.MTU

// ---------------------------------------------------------------------------
// Flowtune

// flowtuneSender paces the flow at the rate allocated by the centralized
// allocator. Until the first rate update arrives the endpoint behaves like a
// freshly started TCP connection (§6.2: servers open a regular TCP connection
// and in parallel notify the allocator), sending an initial window at line
// rate. When the allocator is failed, the engine stops delivering updates and
// the connection keeps its last allocated rate, which is the paper's
// fault-tolerance story.
type flowtuneSender struct {
	allocated bool
}

func (s *flowtuneSender) start(c *conn) {
	// Before the first allocation the endpoint behaves like a freshly
	// started TCP connection with a small initial window (2 segments, the
	// classic ns2 default): enough to get 1-2 packet flowlets out the door
	// immediately, without blasting unpaced bursts into the fabric — the
	// near-empty queues of §6.5 depend on unallocated flowlets staying
	// gentle for the few tens of microseconds until their rate arrives.
	c.cwnd = 2 * sim.MTU
	c.trySendWindow()
	c.eng.notifyFlowletStart(c)
}

func (s *flowtuneSender) onAck(c *conn, ack *sim.Packet, rtt float64) {
	if !s.allocated {
		// Pre-allocation slow start so very short flows are not stuck
		// behind a 10 µs allocator iteration.
		c.cwnd += float64(sim.MTU)
		c.trySendWindow()
		return
	}
	// Paced sends are driven by the pacing loop; nothing to do per ACK.
}

func (s *flowtuneSender) onLoss(c *conn) {
	// Drops are extremely rare under Flowtune (allocations never exceed
	// capacity); the retransmission machinery in conn handles recovery.
}

// setRate is called by the engine when a rate update for this flow arrives.
func (s *flowtuneSender) setRate(c *conn, rate float64) {
	s.allocated = true
	c.setPaceRate(rate)
}

// ---------------------------------------------------------------------------
// DCTCP

// dctcpSender implements DCTCP's ECN-fraction congestion control: the
// receiver echoes ECN marks, the sender maintains an EWMA α of the fraction
// of marked bytes per window, and once per window reduces cwnd by α/2.
type dctcpSender struct {
	alpha       float64
	markedBytes float64
	windowBytes float64
	windowEnd   int64 // ackedBytes value at which the current window closes
	g           float64
}

func newDCTCPSender() *dctcpSender { return &dctcpSender{g: 1.0 / 16} }

func (s *dctcpSender) start(c *conn) {
	c.cwnd = initialWindowBytes
	c.ecnCapable = true
	s.windowEnd = int64(c.cwnd)
	c.trySendWindow()
}

func (s *dctcpSender) onAck(c *conn, ack *sim.Packet, rtt float64) {
	acked := float64(sim.MTU)
	s.windowBytes += acked
	if ack.EchoECN {
		s.markedBytes += acked
	}
	if c.ackedBytes >= s.windowEnd {
		// One window's worth of data acknowledged: update α and adjust.
		frac := 0.0
		if s.windowBytes > 0 {
			frac = s.markedBytes / s.windowBytes
		}
		s.alpha = (1-s.g)*s.alpha + s.g*frac
		if s.markedBytes > 0 {
			c.cwnd = math.Max(float64(sim.MTU), c.cwnd*(1-s.alpha/2))
		} else {
			c.cwnd += float64(sim.MTU) // additive increase per RTT
		}
		s.markedBytes = 0
		s.windowBytes = 0
		s.windowEnd = c.ackedBytes + int64(c.cwnd)
	}
	c.trySendWindow()
}

func (s *dctcpSender) onLoss(c *conn) {
	c.cwnd = math.Max(float64(sim.MTU), c.cwnd/2)
}

// ---------------------------------------------------------------------------
// pFabric

// pfabricSender models pFabric's minimal rate control: flows start at line
// rate and stay there, relying on the fabric's priority queues to resolve
// contention; after repeated timeouts a flow enters probe mode (modelled as a
// reduced pacing rate), matching the paper's description of pFabric starving
// long flows rather than pacing them.
type pfabricSender struct {
	losses int
}

func (s *pfabricSender) start(c *conn) {
	c.paceRate = c.eng.serverLinkRate()
	c.startPacing()
}

func (s *pfabricSender) onAck(c *conn, ack *sim.Packet, rtt float64) {
	// Priorities of subsequent packets reflect the new remaining size via
	// conn.remaining(); nothing else to adjust.
	s.losses = 0
	if c.paceRate < c.eng.serverLinkRate() {
		c.setPaceRate(c.eng.serverLinkRate())
	}
}

func (s *pfabricSender) onLoss(c *conn) {
	s.losses++
	if s.losses > 8 {
		// Probe mode: back off to one packet per RTT until an ACK returns.
		c.setPaceRate(float64(sim.MTU*8) / c.rttEstimate())
	}
}

// ---------------------------------------------------------------------------
// Cubic (over sfqCoDel)

// cubicSender implements TCP Cubic's window growth with fast-convergence
// multiplicative decrease; CoDel drops in the fabric are its only congestion
// signal.
type cubicSender struct {
	wMax        float64
	epochStart  float64
	k           float64
	inSlowStart bool
	ssthresh    float64
}

func newCubicSender() *cubicSender {
	return &cubicSender{inSlowStart: true, ssthresh: math.Inf(1)}
}

const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

func (s *cubicSender) start(c *conn) {
	c.cwnd = initialWindowBytes
	c.trySendWindow()
}

func (s *cubicSender) onAck(c *conn, ack *sim.Packet, rtt float64) {
	if s.inSlowStart {
		c.cwnd += float64(sim.MTU)
		if c.cwnd >= s.ssthresh {
			s.inSlowStart = false
		}
	} else {
		now := c.eng.sim.Now()
		if s.epochStart == 0 {
			s.epochStart = now
			s.wMax = math.Max(s.wMax, c.cwnd)
			s.k = math.Cbrt(s.wMax * (1 - cubicBeta) / (cubicC * float64(sim.MTU)))
		}
		t := now - s.epochStart
		target := cubicC*float64(sim.MTU)*math.Pow(t-s.k, 3) + s.wMax
		if target > c.cwnd {
			// Approach the cubic target over one RTT.
			c.cwnd += (target - c.cwnd) * float64(sim.MTU) / math.Max(c.cwnd, float64(sim.MTU))
		} else {
			c.cwnd += float64(sim.MTU) * float64(sim.MTU) / (100 * math.Max(c.cwnd, float64(sim.MTU)))
		}
	}
	c.trySendWindow()
}

func (s *cubicSender) onLoss(c *conn) {
	s.inSlowStart = false
	s.wMax = c.cwnd
	c.cwnd = math.Max(float64(sim.MTU), c.cwnd*cubicBeta)
	s.ssthresh = c.cwnd
	s.epochStart = 0
}

// ---------------------------------------------------------------------------
// XCP

// xcpSender adjusts its window by the explicit feedback computed by XCP
// routers and echoed by the receiver. XCP starts with a small window and only
// grows as fast as routers hand out spare capacity, which is what makes it
// conservative (§6.3).
type xcpSender struct{}

func (s *xcpSender) start(c *conn) {
	c.cwnd = 2 * sim.MTU
	c.trySendWindow()
}

func (s *xcpSender) onAck(c *conn, ack *sim.Packet, rtt float64) {
	c.cwnd += ack.XCPFeedback
	if c.cwnd < float64(sim.MTU) {
		c.cwnd = float64(sim.MTU)
	}
	maxWindow := 2 * c.eng.serverLinkRate() / 8 * c.rttEstimate()
	if c.cwnd > maxWindow {
		c.cwnd = maxWindow
	}
	c.trySendWindow()
}

func (s *xcpSender) onLoss(c *conn) {
	c.cwnd = math.Max(float64(sim.MTU), c.cwnd/2)
}

// ---------------------------------------------------------------------------
// Plain TCP (Reno-like) — used standalone and as Flowtune's fallback.

// renoSender is a plain Reno-like TCP: slow start, AIMD, halving on loss.
type renoSender struct {
	ssthresh float64
}

func newRenoSender() *renoSender { return &renoSender{ssthresh: math.Inf(1)} }

func (s *renoSender) start(c *conn) {
	c.cwnd = initialWindowBytes
	c.trySendWindow()
}

func (s *renoSender) onAck(c *conn, ack *sim.Packet, rtt float64) {
	if c.cwnd < s.ssthresh {
		c.cwnd += float64(sim.MTU)
	} else {
		c.cwnd += float64(sim.MTU) * float64(sim.MTU) / math.Max(c.cwnd, float64(sim.MTU))
	}
	c.trySendWindow()
}

func (s *renoSender) onLoss(c *conn) {
	c.cwnd = math.Max(float64(sim.MTU), c.cwnd/2)
	s.ssthresh = c.cwnd
}

// newSender builds the sender implementation for a scheme.
func newSender(s Scheme) sender {
	switch s {
	case Flowtune:
		return &flowtuneSender{}
	case DCTCP:
		return newDCTCPSender()
	case PFabric:
		return &pfabricSender{}
	case SFQCoDel:
		return newCubicSender()
	case XCP:
		return &xcpSender{}
	default:
		return newRenoSender()
	}
}

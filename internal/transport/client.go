package transport

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// ErrEpochChanged reports that the daemon pushed an EpochNotify frame: its
// allocator state was reset under a live connection (an operator epoch bump
// or a failover). The client has already recorded the new epoch; the caller
// should re-establish the session with Reconnect, which re-registers the
// live flowlet set.
var ErrEpochChanged = errors.New("transport: daemon epoch changed; reconnect to re-register flowlets")

// AllocatorBackend is where the simulation engine's Flowtune control plane
// terminates: either the in-process core.Allocator or a flowtuned daemon
// reached through an AllocClient. FlowletStart/FlowletEnd deliver
// notifications; Step folds pending notifications in, runs one allocator
// iteration, and returns the rate updates it produced.
type AllocatorBackend interface {
	FlowletStart(id core.FlowID, src, dst int, weight float64) error
	FlowletEnd(id core.FlowID) error
	Step() ([]core.RateUpdate, error)
}

// inprocBackend adapts core.Allocator to AllocatorBackend.
type inprocBackend struct{ alloc *core.Allocator }

func (b inprocBackend) FlowletStart(id core.FlowID, src, dst int, weight float64) error {
	return b.alloc.FlowletStart(id, src, dst, weight)
}
func (b inprocBackend) FlowletEnd(id core.FlowID) error  { return b.alloc.FlowletEnd(id) }
func (b inprocBackend) Step() ([]core.RateUpdate, error) { return b.alloc.Iterate(), nil }

// AllocClient is the endpoint side of the flowtuned wire protocol. It
// implements AllocatorBackend over any net.Conn — loopback TCP via
// DialAlloc, or an in-memory net.Pipe end via NewAllocClient for
// deterministic tests.
//
// Flowlet notifications are buffered and flushed in one write per Step (or
// by an explicit Flush), mirroring the paper's MTU batching of control
// messages. AllocClient is not safe for concurrent use; the simulation
// engine and the scenario runner drive it from a single goroutine.
type AllocClient struct {
	conn net.Conn
	sc   *wire.Scanner
	id   uint64 // client label from the Hello handshake

	wbuf []byte // buffered outgoing frames
	seq  uint64 // step sequence counter

	epoch    uint64
	interval time.Duration

	// regs tracks the full registration of every live flow: the source
	// server fills core.RateUpdate.Src on decoded updates and mirrors the
	// in-process duplicate/unknown defense, and the rest lets Reconnect
	// re-register the live flowlet set with a fresh daemon session.
	regs    map[core.FlowID]flowReg
	updates []core.RateUpdate // reused across Step calls
}

// flowReg is the client-side record of one registered flowlet.
type flowReg struct {
	src, dst int32
	weight   float64
}

// DialAlloc connects to a flowtuned daemon over TCP and performs the
// handshake.
func DialAlloc(addr string, clientID uint64) (*AllocClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial allocator: %w", err)
	}
	c, err := NewAllocClient(conn, clientID)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewAllocClient wraps an established connection to a flowtuned daemon and
// performs the Hello/Welcome handshake.
func NewAllocClient(conn net.Conn, clientID uint64) (*AllocClient, error) {
	c := &AllocClient{
		id:   clientID,
		regs: make(map[core.FlowID]flowReg),
	}
	if err := c.handshake(conn); err != nil {
		return nil, err
	}
	return c, nil
}

// handshake performs the Hello/Welcome exchange over conn and adopts it as
// the client's connection.
func (c *AllocClient) handshake(conn net.Conn) error {
	sc := wire.NewScanner(conn)
	hello := wire.AppendHello(nil, wire.Hello{Version: wire.Version, ClientID: c.id})
	if _, err := conn.Write(hello); err != nil {
		return fmt.Errorf("transport: allocator handshake: %w", err)
	}
	typ, payload, err := sc.Next()
	if err != nil {
		return fmt.Errorf("transport: allocator handshake: %w", err)
	}
	if typ != wire.TypeWelcome {
		return fmt.Errorf("transport: allocator handshake: expected welcome, got %s", typ)
	}
	w, err := wire.DecodeWelcome(payload)
	if err != nil {
		return fmt.Errorf("transport: allocator handshake: %w", err)
	}
	if w.Version > wire.Version {
		return fmt.Errorf("transport: daemon speaks protocol v%d, client supports v%d", w.Version, wire.Version)
	}
	c.conn = conn
	c.sc = sc
	c.epoch = w.Epoch
	c.interval = time.Duration(w.IntervalNanos)
	return nil
}

// Reconnect re-establishes the session over a new connection after the old
// one failed (or the daemon restarted): it closes the previous connection (so
// the daemon's reader notices the death promptly and retires the old
// session's ownership), performs the handshake on conn, and re-registers
// every live flowlet through the daemon's incremental churn path. Each
// re-registration is an End/Add pair: if the daemon has not yet detected the
// old session's death when the frames are folded in, the End retires the
// stale ownership so the Add can never be dropped as a duplicate, and the
// daemon's orphan sweep is ownership-checked so it cannot later retire the
// fresh registration. The frames are buffered and flushed by the next Flush
// or Step, like ordinary notifications; Epoch reports the new session's
// allocator generation afterwards.
func (c *AllocClient) Reconnect(conn net.Conn) error {
	if c.conn != nil && c.conn != conn {
		c.conn.Close()
	}
	if err := c.handshake(conn); err != nil {
		return err
	}
	// Frames buffered for the dead connection (and the step-sequence
	// space) belong to the old session.
	c.wbuf = c.wbuf[:0]
	c.seq = 0
	// Deterministic re-registration order keeps daemon-side folding (and
	// therefore rate trajectories) reproducible in tests.
	ids := make([]core.FlowID, 0, len(c.regs))
	for id := range c.regs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := c.regs[id]
		c.wbuf = wire.AppendFlowletEnd(c.wbuf, wire.FlowletEnd{Flow: int64(id)})
		c.wbuf = wire.AppendFlowletAdd(c.wbuf, wire.FlowletAdd{
			Flow:   int64(id),
			Src:    r.src,
			Dst:    r.dst,
			Weight: r.weight,
		})
	}
	return nil
}

// Epoch returns the daemon's allocator epoch from the handshake.
func (c *AllocClient) Epoch() uint64 { return c.epoch }

// Interval returns the daemon's free-running iteration period (zero for a
// step-driven daemon).
func (c *AllocClient) Interval() time.Duration { return c.interval }

// NumFlows returns the number of flowlets this client has registered.
func (c *AllocClient) NumFlows() int { return len(c.regs) }

// FlowletStart buffers a flowlet-start notification. Registering an
// already-registered flow is a no-op, mirroring the engine's defensive
// duplicate handling.
func (c *AllocClient) FlowletStart(id core.FlowID, src, dst int, weight float64) error {
	if _, dup := c.regs[id]; dup {
		return nil
	}
	c.regs[id] = flowReg{src: int32(src), dst: int32(dst), weight: weight}
	c.wbuf = wire.AppendFlowletAdd(c.wbuf, wire.FlowletAdd{
		Flow:   int64(id),
		Src:    int32(src),
		Dst:    int32(dst),
		Weight: weight,
	})
	return nil
}

// FlowletEnd buffers a flowlet-end notification. Unknown flows are ignored.
func (c *AllocClient) FlowletEnd(id core.FlowID) error {
	if _, ok := c.regs[id]; !ok {
		return nil
	}
	delete(c.regs, id)
	c.wbuf = wire.AppendFlowletEnd(c.wbuf, wire.FlowletEnd{Flow: int64(id)})
	return nil
}

// Flush writes all buffered notifications to the daemon.
func (c *AllocClient) Flush() error {
	if len(c.wbuf) == 0 {
		return nil
	}
	_, err := c.conn.Write(c.wbuf)
	c.wbuf = c.wbuf[:0]
	if err != nil {
		return fmt.Errorf("transport: allocator flush: %w", err)
	}
	return nil
}

// Step flushes buffered notifications, asks the daemon to run one allocator
// iteration, and returns the rate updates the daemon addressed to this
// client. Updates from asynchronous fan-out batches that arrive while
// waiting are folded in ahead of the step reply, preserving arrival order.
// The returned slice is reused across calls.
func (c *AllocClient) Step() ([]core.RateUpdate, error) {
	c.seq++
	c.wbuf = wire.AppendStep(c.wbuf, wire.Step{Seq: c.seq})
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return nil, fmt.Errorf("transport: allocator step: %w", err)
	}
	c.wbuf = c.wbuf[:0]

	c.updates = c.updates[:0]
	want := c.seq | wire.StepReplyFlag
	for {
		batch, err := c.readBatch()
		if err != nil {
			return nil, err
		}
		c.appendBatch(batch)
		if batch.Seq == want {
			return c.updates, nil
		}
	}
}

// Recv reads the next asynchronous rate batch from a free-running daemon,
// waiting up to timeout (0 means no deadline). It returns the decoded
// updates and the daemon iteration that produced them.
func (c *AllocClient) Recv(timeout time.Duration) ([]core.RateUpdate, uint64, error) {
	if timeout > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, 0, err
		}
		defer c.conn.SetReadDeadline(time.Time{})
	}
	batch, err := c.readBatch()
	if err != nil {
		return nil, 0, err
	}
	c.updates = c.updates[:0]
	c.appendBatch(batch)
	return c.updates, batch.Seq &^ wire.StepReplyFlag, nil
}

// readBatch reads the next RateBatch frame. An EpochNotify push interrupts
// the read with ErrEpochChanged after recording the new epoch; anything else
// the daemon never sends after the handshake.
func (c *AllocClient) readBatch() (wire.RateBatch, error) {
	typ, payload, err := c.sc.Next()
	if err != nil {
		return wire.RateBatch{}, fmt.Errorf("transport: allocator read: %w", err)
	}
	switch typ {
	case wire.TypeRateBatch:
		return wire.DecodeRateBatch(payload)
	case wire.TypeEpochNotify:
		m, err := wire.DecodeEpochNotify(payload)
		if err != nil {
			return wire.RateBatch{}, fmt.Errorf("transport: %w", err)
		}
		c.epoch = m.Epoch
		return wire.RateBatch{}, ErrEpochChanged
	default:
		return wire.RateBatch{}, fmt.Errorf("transport: unexpected %s frame from daemon", typ)
	}
}

// appendBatch decodes a batch into c.updates, filling Src from the client's
// registration table. Updates for flows already ended locally are dropped.
func (c *AllocClient) appendBatch(b wire.RateBatch) {
	for i := 0; i < b.Len(); i++ {
		e := b.Entry(i)
		reg, ok := c.regs[core.FlowID(e.Flow)]
		if !ok {
			continue
		}
		c.updates = append(c.updates, core.RateUpdate{
			Flow: core.FlowID(e.Flow),
			Src:  int(reg.src),
			Rate: e.Rate,
		})
	}
}

// Conn exposes the underlying connection (tests use it to inject raw
// frames).
func (c *AllocClient) Conn() net.Conn { return c.conn }

// Close closes the connection to the daemon.
func (c *AllocClient) Close() error { return c.conn.Close() }

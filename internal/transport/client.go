package transport

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// ErrEpochChanged reports that the daemon pushed an EpochNotify frame: its
// allocator state was reset under a live connection (an operator epoch bump
// or a failover). The client has already recorded the new epoch; the caller
// should re-establish the session with Reconnect, which re-registers the
// live flowlet set.
var ErrEpochChanged = errors.New("transport: daemon epoch changed; reconnect to re-register flowlets")

// ErrDaemonDraining reports that the daemon pushed a drain-flagged
// EpochNotify: it is shutting down on purpose after snapshotting its state.
// The client should freeze at last-known rates and fail over — to the
// restarted daemon via ResumeReconnect (the snapshot restore holds its flows
// ready for adoption), or to the peer that adopts its shard.
var ErrDaemonDraining = errors.New("transport: daemon draining; fail over at last-known rates")

// AllocatorBackend is where the simulation engine's Flowtune control plane
// terminates: either the in-process core.Allocator or a flowtuned daemon
// reached through an AllocClient. FlowletStart/FlowletEnd deliver
// notifications; Step folds pending notifications in, runs one allocator
// iteration, and returns the rate updates it produced.
type AllocatorBackend interface {
	FlowletStart(id core.FlowID, src, dst int, weight float64) error
	FlowletEnd(id core.FlowID) error
	Step() ([]core.RateUpdate, error)
}

// sizedStarter is implemented by backends that accept the wire v4
// flowlet-size hint (bytes, 0 = unknown) alongside a registration. The hint
// rides into the engine's flow metadata and is ignored by the solvers.
type sizedStarter interface {
	FlowletStartSized(id core.FlowID, src, dst int, weight float64, size int64) error
}

// startFlowlet registers a flowlet with b, passing the size hint through
// when the backend can carry it.
func startFlowlet(b AllocatorBackend, id core.FlowID, src, dst int, weight float64, size int64) error {
	if s, ok := b.(sizedStarter); ok && size > 0 {
		return s.FlowletStartSized(id, src, dst, weight, size)
	}
	return b.FlowletStart(id, src, dst, weight)
}

// inprocBackend adapts core.Allocator to AllocatorBackend.
type inprocBackend struct{ alloc *core.Allocator }

func (b inprocBackend) FlowletStart(id core.FlowID, src, dst int, weight float64) error {
	return b.alloc.FlowletStart(id, src, dst, weight)
}
func (b inprocBackend) FlowletStartSized(id core.FlowID, src, dst int, weight float64, size int64) error {
	return b.alloc.FlowletStartSized(id, src, dst, weight, size)
}
func (b inprocBackend) FlowletEnd(id core.FlowID) error  { return b.alloc.FlowletEnd(id) }
func (b inprocBackend) Step() ([]core.RateUpdate, error) { return b.alloc.Iterate(), nil }

// AllocClient is the endpoint side of the flowtuned wire protocol. It
// implements AllocatorBackend over any net.Conn — loopback TCP via
// DialAlloc, or an in-memory net.Pipe end via NewAllocClient for
// deterministic tests.
//
// Flowlet notifications are buffered and flushed in one write per Step (or
// by an explicit Flush), mirroring the paper's MTU batching of control
// messages. AllocClient is not safe for concurrent use; the simulation
// engine and the scenario runner drive it from a single goroutine.
type AllocClient struct {
	conn net.Conn
	sc   *wire.Scanner
	id   uint64 // client label from the Hello handshake

	wbuf []byte // buffered outgoing frames
	seq  uint64 // step sequence counter

	epoch    uint64
	interval time.Duration

	// freeze enables freeze-on-failure: a failed Step marks the session
	// frozen and surfaces last-known rates (no updates, no error) instead of
	// erroring, until ResumeReconnect repairs it. Off by default — callers
	// that want hard errors (tests, operator tools) keep them.
	freeze bool
	frozen bool
	// frozenEnds records flows that ended while the session was frozen:
	// their End frames can never reach the dead daemon, but the successor
	// still holds the flows (snapshot or replica), so the failover replays
	// these ends there to keep ghost flows from holding fabric shares.
	frozenEnds []core.FlowID

	// regs tracks the full registration of every live flow: the source
	// server fills core.RateUpdate.Src on decoded updates and mirrors the
	// in-process duplicate/unknown defense, and the rest lets Reconnect
	// re-register the live flowlet set with a fresh daemon session.
	regs    map[core.FlowID]flowReg
	updates []core.RateUpdate // reused across Step calls
	delta   wire.RateDelta    // scratch for v4 RateDelta decoding
}

// flowReg is the client-side record of one registered flowlet.
type flowReg struct {
	src, dst int32
	weight   float64
	size     int64 // flowlet-size hint in bytes (0 = unknown)
}

// DialAlloc connects to a flowtuned daemon over TCP and performs the
// handshake.
func DialAlloc(addr string, clientID uint64) (*AllocClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial allocator: %w", err)
	}
	c, err := NewAllocClient(conn, clientID)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewAllocClient wraps an established connection to a flowtuned daemon and
// performs the Hello/Welcome handshake.
func NewAllocClient(conn net.Conn, clientID uint64) (*AllocClient, error) {
	c := &AllocClient{
		id:   clientID,
		regs: make(map[core.FlowID]flowReg),
	}
	if err := c.handshake(conn); err != nil {
		return nil, err
	}
	return c, nil
}

// handshake performs the Hello/Welcome exchange over conn and adopts it as
// the client's connection.
func (c *AllocClient) handshake(conn net.Conn) error {
	sc := wire.NewScanner(conn)
	hello := wire.AppendHello(nil, wire.Hello{Version: wire.Version, ClientID: c.id})
	if _, err := conn.Write(hello); err != nil {
		return fmt.Errorf("transport: allocator handshake: %w", err)
	}
	typ, payload, err := sc.Next()
	if err != nil {
		return fmt.Errorf("transport: allocator handshake: %w", err)
	}
	if typ != wire.TypeWelcome {
		return fmt.Errorf("transport: allocator handshake: expected welcome, got %s", typ)
	}
	w, err := wire.DecodeWelcome(payload)
	if err != nil {
		return fmt.Errorf("transport: allocator handshake: %w", err)
	}
	if w.Version > wire.Version {
		return fmt.Errorf("transport: daemon speaks protocol v%d, client supports v%d", w.Version, wire.Version)
	}
	c.conn = conn
	c.sc = sc
	c.epoch = w.Epoch
	c.interval = time.Duration(w.IntervalNanos)
	return nil
}

// Reconnect re-establishes the session over a new connection after the old
// one failed (or the daemon restarted): it closes the previous connection (so
// the daemon's reader notices the death promptly and retires the old
// session's ownership), performs the handshake on conn, and re-registers
// every live flowlet through the daemon's incremental churn path. Each
// re-registration is an End/Add pair: if the daemon has not yet detected the
// old session's death when the frames are folded in, the End retires the
// stale ownership so the Add can never be dropped as a duplicate, and the
// daemon's orphan sweep is ownership-checked so it cannot later retire the
// fresh registration. The frames are buffered and flushed by the next Flush
// or Step, like ordinary notifications; Epoch reports the new session's
// allocator generation afterwards.
func (c *AllocClient) Reconnect(conn net.Conn) error {
	if c.conn != nil && c.conn != conn {
		c.conn.Close()
	}
	if err := c.handshake(conn); err != nil {
		return err
	}
	// Frames buffered for the dead connection (and the step-sequence
	// space) belong to the old session.
	c.wbuf = c.wbuf[:0]
	c.seq = 0
	// Deterministic re-registration order keeps daemon-side folding (and
	// therefore rate trajectories) reproducible in tests.
	ids := make([]core.FlowID, 0, len(c.regs))
	for id := range c.regs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := c.regs[id]
		c.wbuf = wire.AppendFlowletEnd(c.wbuf, wire.FlowletEnd{Flow: int64(id)})
		c.wbuf = wire.AppendFlowletAdd(c.wbuf, wire.FlowletAdd{
			Flow:   int64(id),
			Src:    r.src,
			Dst:    r.dst,
			Weight: r.weight,
			Size:   r.size,
		})
	}
	return nil
}

// ResumeReconnect re-establishes the session against a daemon that already
// holds this client's flows — one restored from a snapshot, or a peer that
// adopted them from a replica. Unlike Reconnect it re-registers with bare
// adds only (no End/Add pairs): the daemon's adoption path matches each add
// against its unowned flow and transfers ownership in place, so the engine
// sees zero churn and rates continue bit-identically from where the dead
// daemon left them. It also clears the frozen state set by freeze-on-failure.
func (c *AllocClient) ResumeReconnect(conn net.Conn) error {
	if c.conn != nil && c.conn != conn {
		c.conn.Close()
	}
	if err := c.handshake(conn); err != nil {
		return err
	}
	c.wbuf = c.wbuf[:0]
	c.seq = 0
	c.frozen = false
	// Flows that ended while frozen are still in the daemon's restored
	// snapshot; retire them before re-registering the survivors.
	for _, id := range c.frozenEnds {
		c.wbuf = wire.AppendFlowletEnd(c.wbuf, wire.FlowletEnd{Flow: int64(id)})
	}
	c.frozenEnds = nil
	ids := make([]core.FlowID, 0, len(c.regs))
	for id := range c.regs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := c.regs[id]
		c.wbuf = wire.AppendFlowletAdd(c.wbuf, wire.FlowletAdd{
			Flow:   int64(id),
			Src:    r.src,
			Dst:    r.dst,
			Weight: r.weight,
			Size:   r.size,
		})
	}
	return nil
}

// SetFreezeOnFailure selects what a failed Step does: enabled, the session
// freezes at last-known rates (Step returns no updates and no error, Frozen
// reports true) until ResumeReconnect; disabled (the default), Step surfaces
// the error. ErrEpochChanged is never frozen — it means the daemon is alive
// with reset state, which needs a Reconnect, not a failover.
func (c *AllocClient) SetFreezeOnFailure(on bool) { c.freeze = on }

// Frozen reports whether the session froze after a failure (always false
// unless SetFreezeOnFailure(true)).
func (c *AllocClient) Frozen() bool { return c.frozen }

// FlowRegistration is one live flowlet registration as the client tracks it.
type FlowRegistration struct {
	ID       core.FlowID
	Src, Dst int
	Weight   float64
	Size     int64 // flowlet-size hint in bytes (0 = unknown)
}

// Registrations returns the live flowlet registrations, sorted by flow ID —
// what a failover must re-register with the adopting daemon.
func (c *AllocClient) Registrations() []FlowRegistration {
	out := make([]FlowRegistration, 0, len(c.regs))
	for id, r := range c.regs {
		out = append(out, FlowRegistration{ID: id, Src: int(r.src), Dst: int(r.dst), Weight: r.weight, Size: r.size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Epoch returns the daemon's allocator epoch from the handshake.
func (c *AllocClient) Epoch() uint64 { return c.epoch }

// Interval returns the daemon's free-running iteration period (zero for a
// step-driven daemon).
func (c *AllocClient) Interval() time.Duration { return c.interval }

// NumFlows returns the number of flowlets this client has registered.
func (c *AllocClient) NumFlows() int { return len(c.regs) }

// FlowletStart buffers a flowlet-start notification. Registering an
// already-registered flow is a no-op, mirroring the engine's defensive
// duplicate handling.
func (c *AllocClient) FlowletStart(id core.FlowID, src, dst int, weight float64) error {
	return c.FlowletStartSized(id, src, dst, weight, 0)
}

// FlowletStartSized is FlowletStart carrying the flowlet's expected size in
// bytes (0 = unknown) as a wire v4 hint. The daemon records it in the flow
// metadata; the solvers ignore it.
func (c *AllocClient) FlowletStartSized(id core.FlowID, src, dst int, weight float64, size int64) error {
	if _, dup := c.regs[id]; dup {
		return nil
	}
	c.regs[id] = flowReg{src: int32(src), dst: int32(dst), weight: weight, size: size}
	c.wbuf = wire.AppendFlowletAdd(c.wbuf, wire.FlowletAdd{
		Flow:   int64(id),
		Src:    int32(src),
		Dst:    int32(dst),
		Weight: weight,
		Size:   size,
	})
	return nil
}

// FlowletEnd buffers a flowlet-end notification. Unknown flows are ignored.
func (c *AllocClient) FlowletEnd(id core.FlowID) error {
	if _, ok := c.regs[id]; !ok {
		return nil
	}
	delete(c.regs, id)
	if c.frozen {
		c.frozenEnds = append(c.frozenEnds, id)
		return nil
	}
	c.wbuf = wire.AppendFlowletEnd(c.wbuf, wire.FlowletEnd{Flow: int64(id)})
	return nil
}

// EndOrphan buffers a flowlet-end for a flow this session never registered.
// A failover uses it to retire, at the adopting daemon, flows that ended
// while their own daemon's session was frozen — the adopter holds them
// unowned from the dead daemon's replica and nobody else will ever end them.
func (c *AllocClient) EndOrphan(id core.FlowID) {
	delete(c.regs, id)
	c.wbuf = wire.AppendFlowletEnd(c.wbuf, wire.FlowletEnd{Flow: int64(id)})
}

// TakeFrozenEnds returns (and clears) the flows that ended while the session
// was frozen, in end order.
func (c *AllocClient) TakeFrozenEnds() []core.FlowID {
	ends := c.frozenEnds
	c.frozenEnds = nil
	return ends
}

// Flush writes all buffered notifications to the daemon.
func (c *AllocClient) Flush() error {
	if len(c.wbuf) == 0 {
		return nil
	}
	_, err := c.conn.Write(c.wbuf)
	c.wbuf = c.wbuf[:0]
	if err != nil {
		return fmt.Errorf("transport: allocator flush: %w", err)
	}
	return nil
}

// Step flushes buffered notifications, asks the daemon to run one allocator
// iteration, and returns the rate updates the daemon addressed to this
// client. Updates from asynchronous fan-out batches that arrive while
// waiting are folded in ahead of the step reply, preserving arrival order.
// The returned slice is reused across calls.
//
// With freeze-on-failure enabled a failed step (daemon crash or drain)
// freezes the session instead: the endpoint keeps sending at last-known
// rates — the paper's fallback when the allocator goes away — and Step is a
// no-op until ResumeReconnect.
func (c *AllocClient) Step() ([]core.RateUpdate, error) {
	if c.frozen {
		return nil, nil
	}
	ups, err := c.step()
	if err != nil && c.freeze && !errors.Is(err, ErrEpochChanged) {
		c.frozen = true
		return nil, nil
	}
	return ups, err
}

// step is Step without the freeze-on-failure wrapper.
func (c *AllocClient) step() ([]core.RateUpdate, error) {
	c.seq++
	c.wbuf = wire.AppendStep(c.wbuf, wire.Step{Seq: c.seq})
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return nil, fmt.Errorf("transport: allocator step: %w", err)
	}
	c.wbuf = c.wbuf[:0]

	c.updates = c.updates[:0]
	want := c.seq | wire.StepReplyFlag
	for {
		seq, err := c.readBatch()
		if err != nil {
			return nil, err
		}
		if seq == want {
			return c.updates, nil
		}
	}
}

// Recv reads the next asynchronous rate batch from a free-running daemon,
// waiting up to timeout (0 means no deadline). It returns the decoded
// updates and the daemon iteration that produced them.
func (c *AllocClient) Recv(timeout time.Duration) ([]core.RateUpdate, uint64, error) {
	if timeout > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, 0, err
		}
		defer c.conn.SetReadDeadline(time.Time{})
	}
	c.updates = c.updates[:0]
	seq, err := c.readBatch()
	if err != nil {
		return nil, 0, err
	}
	return c.updates, seq &^ wire.StepReplyFlag, nil
}

// readBatch reads the next rate frame — a fixed RateBatch or a v4 RateDelta
// (quantized or lossless; the delta decoder expands either back to absolute
// rates) — appends its decoded updates to c.updates, and returns the frame's
// sequence word. An EpochNotify push interrupts the read with ErrEpochChanged
// after recording the new epoch; anything else the daemon never sends after
// the handshake.
func (c *AllocClient) readBatch() (uint64, error) {
	typ, payload, err := c.sc.Next()
	if err != nil {
		return 0, fmt.Errorf("transport: allocator read: %w", err)
	}
	switch typ {
	case wire.TypeRateBatch:
		b, err := wire.DecodeRateBatch(payload)
		if err != nil {
			return 0, fmt.Errorf("transport: %w", err)
		}
		for i := 0; i < b.Len(); i++ {
			e := b.Entry(i)
			c.appendUpdate(e.Flow, e.Rate)
		}
		return b.Seq, nil
	case wire.TypeRateDelta:
		if err := wire.DecodeRateDelta(payload, &c.delta); err != nil {
			return 0, fmt.Errorf("transport: %w", err)
		}
		for _, e := range c.delta.Entries {
			c.appendUpdate(e.Flow, e.Rate)
		}
		return c.delta.Seq, nil
	case wire.TypeEpochNotify:
		m, err := wire.DecodeEpochNotify(payload)
		if err != nil {
			return 0, fmt.Errorf("transport: %w", err)
		}
		if m.Epoch&wire.EpochDrainFlag != 0 {
			c.epoch = m.Epoch &^ wire.EpochDrainFlag
			return 0, ErrDaemonDraining
		}
		c.epoch = m.Epoch
		return 0, ErrEpochChanged
	default:
		return 0, fmt.Errorf("transport: unexpected %s frame from daemon", typ)
	}
}

// appendUpdate folds one decoded rate update into c.updates, filling Src
// from the client's registration table. Updates for flows already ended
// locally are dropped.
func (c *AllocClient) appendUpdate(flow int64, rate float64) {
	reg, ok := c.regs[core.FlowID(flow)]
	if !ok {
		return
	}
	c.updates = append(c.updates, core.RateUpdate{
		Flow: core.FlowID(flow),
		Src:  int(reg.src),
		Rate: rate,
	})
}

// Conn exposes the underlying connection (tests use it to inject raw
// frames).
func (c *AllocClient) Conn() net.Conn { return c.conn }

// Close closes the connection to the daemon.
func (c *AllocClient) Close() error { return c.conn.Close() }

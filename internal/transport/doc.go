// Package transport implements the endpoint congestion-control schemes
// compared in Flowtune's evaluation (§6.3–§6.5) on top of the packet
// simulator: Flowtune's allocator-paced endpoints, DCTCP, pFabric,
// Cubic-over-sfqCoDel, and XCP, plus a plain TCP(Reno-like) fallback. The
// Engine type wires a workload of flowlets into a simulated fabric with the
// chosen scheme and collects the metrics the figures report.
//
// The transports are simplified relative to full protocol implementations,
// but each one reproduces the
// mechanism the paper's comparison hinges on: DCTCP's ECN-fraction window
// control, pFabric's shortest-remaining-first priority dropping, sfqCoDel's
// per-flow CoDel dropping under Cubic, XCP's conservative explicit feedback,
// and Flowtune's explicit rate allocation with near-empty queues.
//
// Under the Flowtune scheme the Engine also simulates the control plane:
// flowlet start/end notifications and rate updates travel as real packets
// over the allocator's uplinks (topology.PathToAllocator), so control-plane
// latency and bandwidth are part of every result. Where the control plane
// *terminates* is pluggable through the AllocatorBackend seam: the default
// is the in-process core.Allocator, and AllocClient — the endpoint side of
// the flowtuned wire protocol — lets the same simulation drive a live
// allocator daemon over a socket or in-memory pipe instead.
package transport

package transport

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Scheme identifies a congestion-control scheme.
type Scheme int

const (
	// Flowtune is the paper's scheme: endpoints pace flows at rates
	// computed by the centralized allocator.
	Flowtune Scheme = iota
	// DCTCP is Data Center TCP (ECN-fraction window control).
	DCTCP
	// PFabric is pFabric (priority queues by remaining flow size).
	PFabric
	// SFQCoDel is Cubic endpoints over sfqCoDel switch queues.
	SFQCoDel
	// XCP is the eXplicit Control Protocol.
	XCP
	// TCP is a plain Reno-like TCP baseline (also the behaviour Flowtune
	// endpoints fall back to when the allocator fails).
	TCP
)

// String returns the scheme name used in the paper's figures.
func (s Scheme) String() string {
	switch s {
	case Flowtune:
		return "Flowtune"
	case DCTCP:
		return "DCTCP"
	case PFabric:
		return "pFabric"
	case SFQCoDel:
		return "sfqCoDel"
	case XCP:
		return "XCP"
	case TCP:
		return "TCP"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// AllSchemes lists the five schemes compared in the evaluation figures.
func AllSchemes() []Scheme { return []Scheme{Flowtune, DCTCP, PFabric, SFQCoDel, XCP} }

// Queueing parameters per scheme. Sizes are in bytes of wire data.
const (
	// defaultBufferBytes is the switch buffer for schemes without special
	// requirements (Flowtune, DCTCP, XCP, TCP).
	defaultBufferBytes = 1 << 20
	// dctcpMarkBytes is DCTCP's ECN marking threshold (≈65 MTU-sized
	// packets, the DCTCP paper's K for 10 Gbit/s links).
	dctcpMarkBytes = 65 * (sim.MTU + sim.HeaderBytes)
	// pfabricBufferBytes is pFabric's small per-port buffer (≈2 BDP for a
	// 10 Gbit/s link and ~22 µs RTT).
	pfabricBufferBytes = 24 * (sim.MTU + sim.HeaderBytes)
	// sfqCoDelBufferBytes bounds the aggregate sfqCoDel backlog.
	sfqCoDelBufferBytes = 1 << 20
	// xcpControlInterval is the XCP router control interval, roughly the
	// fabric's mean RTT.
	xcpControlInterval = 40e-6
)

// QueueFactory returns the queue-discipline factory a scheme installs on
// every link of the fabric.
func QueueFactory(s Scheme) sim.QueueFactory {
	switch s {
	case DCTCP:
		return func(l topology.Link) sim.Queue {
			return sim.NewECNQueue(defaultBufferBytes, dctcpMarkBytes)
		}
	case PFabric:
		return func(l topology.Link) sim.Queue {
			return sim.NewPFabricQueue(pfabricBufferBytes)
		}
	case SFQCoDel:
		return func(l topology.Link) sim.Queue {
			return sim.NewSFQCoDelQueue(sfqCoDelBufferBytes, l.Capacity)
		}
	case XCP:
		return func(l topology.Link) sim.Queue {
			return sim.NewXCPQueue(defaultBufferBytes, l.Capacity, xcpControlInterval)
		}
	default: // Flowtune, TCP
		return func(l topology.Link) sim.Queue {
			return sim.NewDropTailQueue(defaultBufferBytes)
		}
	}
}

package norm

import (
	"repro/internal/num"
)

// Normalizer scales a set of flow rates so that no link exceeds its capacity.
type Normalizer interface {
	// Name returns the scheme's short name ("F-NORM" or "U-NORM").
	Name() string
	// Normalize writes the scaled rates into out (allocating when out is
	// nil or too short) and returns it. rates is not modified.
	Normalize(p *num.Problem, rates []float64, out []float64) []float64
}

// ensureOut prepares the output slice.
func ensureOut(out []float64, n int) []float64 {
	if cap(out) < n {
		return make([]float64, n)
	}
	return out[:n]
}

// linkRatios computes r_l = (Σ_{s∈S(l)} x_s) / c_l for every link. External
// loads (remote shards' flows, see num.Problem.ExternalLoads) count toward a
// link's utilization: a boundary link crowded by remote traffic must slow
// the local flows that traverse it just as local congestion would.
func linkRatios(p *num.Problem, rates []float64, loads []float64) []float64 {
	loads = num.LinkLoads(p, rates, loads)
	if p.ExternalLoads != nil {
		for l := range loads {
			loads[l] += p.ExternalLoads[l]
		}
	}
	for l := range loads {
		loads[l] /= p.Capacities[l]
	}
	return loads
}

// UNorm is uniform normalization (§4.1): every flow is scaled by the same
// factor, the utilization ratio of the most congested link, so the relative
// sizes of flows (and hence the fairness of a proportional-fair allocation)
// are preserved. Its drawback is that one hot link throttles the entire
// network's throughput (Figure 13).
type UNorm struct {
	ratios []float64
}

// NewUNorm returns a uniform normalizer.
func NewUNorm() *UNorm { return &UNorm{} }

// Name implements Normalizer.
func (u *UNorm) Name() string { return "U-NORM" }

// Normalize implements Normalizer.
func (u *UNorm) Normalize(p *num.Problem, rates []float64, out []float64) []float64 {
	out = ensureOut(out, len(rates))
	u.ratios = linkRatios(p, rates, u.ratios)
	worst := 0.0
	for _, r := range u.ratios {
		if r > worst {
			worst = r
		}
	}
	if worst <= 1 {
		// No link over capacity: rates pass through unchanged (the paper
		// scales *up* to fill the most congested link only when it is
		// over-allocated; never scale flows above their allocation).
		copy(out, rates)
		return out
	}
	inv := 1 / worst
	for i, r := range rates {
		out[i] = r * inv
	}
	return out
}

// FNorm is per-flow normalization (§4.2): each flow is scaled by the
// utilization ratio of the most congested link on its own path. Links that
// are over-allocated only slow the flows that traverse them, so a few hot
// links do not reduce the whole network's throughput. F-NORM achieves over
// 99.7% of optimal throughput in the paper (Figure 13) and is Flowtune's
// default.
type FNorm struct {
	ratios []float64
}

// NewFNorm returns a per-flow normalizer.
func NewFNorm() *FNorm { return &FNorm{} }

// Name implements Normalizer.
func (f *FNorm) Name() string { return "F-NORM" }

// Normalize implements Normalizer.
func (f *FNorm) Normalize(p *num.Problem, rates []float64, out []float64) []float64 {
	out = ensureOut(out, len(rates))
	f.ratios = linkRatios(p, rates, f.ratios)
	// Walk the compiled CSR index instead of the per-flow Route slices: one
	// contiguous pass over the route arena with the reused ratio scratch.
	c := p.Compiled()
	routes, off, lens := c.Routes, c.Off, c.Len
	ratios := f.ratios
	for i := range off {
		worst := 0.0
		o := off[i]
		for _, l := range routes[o : o+lens[i]] {
			if r := ratios[l]; r > worst {
				worst = r
			}
		}
		if worst > 1 {
			out[i] = rates[i] / worst
		} else {
			out[i] = rates[i]
		}
	}
	return out
}

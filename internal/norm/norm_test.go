package norm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/num"
)

// prob builds a small problem: 3 links, flows as given.
func prob(capacity float64, routes ...[]int32) *num.Problem {
	p := &num.Problem{Capacities: []float64{capacity, capacity, capacity}}
	for _, r := range routes {
		p.Flows = append(p.Flows, num.Flow{Route: r, Util: num.LogUtility{W: capacity}})
	}
	return p
}

func TestNames(t *testing.T) {
	if NewFNorm().Name() != "F-NORM" {
		t.Error("FNorm name wrong")
	}
	if NewUNorm().Name() != "U-NORM" {
		t.Error("UNorm name wrong")
	}
}

func TestNoOverAllocationPassThrough(t *testing.T) {
	p := prob(10, []int32{0}, []int32{1})
	rates := []float64{4, 5}
	for _, n := range []Normalizer{NewFNorm(), NewUNorm()} {
		out := n.Normalize(p, rates, nil)
		for i := range rates {
			if out[i] != rates[i] {
				t.Errorf("%s modified feasible rates: %v -> %v", n.Name(), rates, out)
			}
		}
	}
}

func TestUNormScalesEverythingByWorstLink(t *testing.T) {
	// Link 0 is 2x over-allocated, link 1 is exactly full.
	p := prob(10, []int32{0}, []int32{1})
	rates := []float64{20, 10}
	out := NewUNorm().Normalize(p, rates, nil)
	if math.Abs(out[0]-10) > 1e-9 {
		t.Errorf("flow on hot link scaled to %g, want 10", out[0])
	}
	if math.Abs(out[1]-5) > 1e-9 {
		t.Errorf("U-NORM should scale the innocent flow to 5, got %g", out[1])
	}
}

func TestFNormScalesOnlyAffectedFlows(t *testing.T) {
	p := prob(10, []int32{0}, []int32{1})
	rates := []float64{20, 10}
	out := NewFNorm().Normalize(p, rates, nil)
	if math.Abs(out[0]-10) > 1e-9 {
		t.Errorf("flow on hot link scaled to %g, want 10", out[0])
	}
	if math.Abs(out[1]-10) > 1e-9 {
		t.Errorf("F-NORM should leave the innocent flow at 10, got %g", out[1])
	}
}

func TestFNormUsesWorstLinkOnPath(t *testing.T) {
	// A two-link flow where link 0 is 1.5x over and link 1 is 3x over: the
	// flow must be scaled by 3x.
	p := &num.Problem{Capacities: []float64{10, 10}}
	p.Flows = []num.Flow{
		{Route: []int32{0, 1}},
		{Route: []int32{0}},
		{Route: []int32{1}},
	}
	rates := []float64{10, 5, 20}
	// loads: link0 = 15 (1.5x), link1 = 30 (3x)
	out := NewFNorm().Normalize(p, rates, nil)
	if math.Abs(out[0]-10.0/3) > 1e-9 {
		t.Errorf("two-link flow scaled to %g, want %g", out[0], 10.0/3)
	}
	if math.Abs(out[1]-5.0/1.5) > 1e-9 {
		t.Errorf("link-0 flow scaled to %g, want %g", out[1], 5.0/1.5)
	}
	if math.Abs(out[2]-20.0/3) > 1e-9 {
		t.Errorf("link-1 flow scaled to %g, want %g", out[2], 20.0/3)
	}
}

func TestFNormThroughputAtLeastUNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		numLinks := 2 + rng.Intn(5)
		p := &num.Problem{}
		for l := 0; l < numLinks; l++ {
			p.Capacities = append(p.Capacities, 1e9*(1+rng.Float64()*9))
		}
		numFlows := 1 + rng.Intn(10)
		rates := make([]float64, numFlows)
		for f := 0; f < numFlows; f++ {
			route := []int32{int32(rng.Intn(numLinks))}
			if rng.Float64() < 0.5 {
				other := int32(rng.Intn(numLinks))
				if other != route[0] {
					route = append(route, other)
				}
			}
			p.Flows = append(p.Flows, num.Flow{Route: route})
			rates[f] = rng.Float64() * 2e9
		}
		fOut := NewFNorm().Normalize(p, rates, nil)
		uOut := NewUNorm().Normalize(p, rates, nil)
		if num.TotalThroughput(fOut) < num.TotalThroughput(uOut)-1e-6 {
			t.Fatalf("trial %d: F-NORM throughput %.4g below U-NORM %.4g",
				trial, num.TotalThroughput(fOut), num.TotalThroughput(uOut))
		}
	}
}

// TestNormalizersFeasibilityProperty: after either normalizer, no link
// exceeds its capacity and no rate increases.
func TestNormalizersFeasibilityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numLinks := 2 + rng.Intn(6)
		p := &num.Problem{}
		for l := 0; l < numLinks; l++ {
			p.Capacities = append(p.Capacities, 1e9*(0.5+rng.Float64()*4))
		}
		numFlows := 1 + rng.Intn(12)
		rates := make([]float64, numFlows)
		for f := 0; f < numFlows; f++ {
			start := rng.Intn(numLinks)
			length := 1 + rng.Intn(2)
			var route []int32
			for i := 0; i < length && start+i < numLinks; i++ {
				route = append(route, int32(start+i))
			}
			p.Flows = append(p.Flows, num.Flow{Route: route})
			rates[f] = rng.Float64() * 3e9
		}
		for _, n := range []Normalizer{NewFNorm(), NewUNorm()} {
			out := n.Normalize(p, rates, nil)
			if !num.Feasible(p, out, 1e-9) {
				return false
			}
			for i := range out {
				if out[i] > rates[i]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Error(err)
	}
}

func TestUNormPreservesRelativeShares(t *testing.T) {
	p := prob(10, []int32{0}, []int32{0}, []int32{1})
	rates := []float64{30, 10, 5}
	out := NewUNorm().Normalize(p, rates, nil)
	// Ratio between flows must be preserved by uniform scaling.
	if math.Abs(out[0]/out[1]-3) > 1e-9 {
		t.Errorf("relative shares not preserved: %v", out)
	}
	if math.Abs(out[0]/out[2]-6) > 1e-9 {
		t.Errorf("relative shares not preserved: %v", out)
	}
}

func TestNormalizeReusesBuffer(t *testing.T) {
	p := prob(10, []int32{0})
	buf := make([]float64, 1)
	out := NewFNorm().Normalize(p, []float64{5}, buf)
	if &out[0] != &buf[0] {
		t.Error("F-NORM did not reuse the provided buffer")
	}
}

func TestEmptyProblem(t *testing.T) {
	p := &num.Problem{Capacities: []float64{10}}
	for _, n := range []Normalizer{NewFNorm(), NewUNorm()} {
		out := n.Normalize(p, nil, nil)
		if len(out) != 0 {
			t.Errorf("%s returned %d rates for an empty problem", n.Name(), len(out))
		}
	}
}

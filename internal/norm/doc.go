// Package norm implements Flowtune's rate normalization (§4): the optimizer
// works online and may momentarily allocate more than a link's capacity while
// prices re-converge after flowlet churn; the normalizer scales the rates
// down so that no link is over-subscribed before they are sent to endpoints.
// Two schemes from the paper are provided: uniform normalization (U-NORM) and
// per-flow normalization (F-NORM).
package norm

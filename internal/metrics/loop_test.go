package metrics

import (
	"sync"
	"testing"
)

func TestLoopRecorderCounters(t *testing.T) {
	r := NewLoopRecorder(4)
	r.Record(1e-6, 3)
	r.Record(3e-6, 1)
	s := r.Snapshot()
	if s.Iterations != 2 || s.Updates != 4 {
		t.Fatalf("counters = %d iters, %d updates; want 2, 4", s.Iterations, s.Updates)
	}
	if s.UpdatesPerIteration != 2 {
		t.Fatalf("UpdatesPerIteration = %g; want 2", s.UpdatesPerIteration)
	}
	if s.LatencySec.Count != 2 || s.LatencySec.Max != 3e-6 {
		t.Fatalf("latency = %+v", s.LatencySec)
	}
	// 2 iterations over 4 µs of busy time = 500k iterations/s.
	if got, want := s.IterationsPerSec, 500_000.0; got < want*0.99 || got > want*1.01 {
		t.Fatalf("IterationsPerSec = %g; want ≈%g", got, want)
	}
}

func TestLoopRecorderWindowBounded(t *testing.T) {
	r := NewLoopRecorder(8)
	for i := 0; i < 100; i++ {
		r.Record(float64(i), 0)
	}
	s := r.Snapshot()
	if s.Iterations != 100 {
		t.Fatalf("Iterations = %d", s.Iterations)
	}
	if s.LatencySec.Count != 8 {
		t.Fatalf("window count = %d; want 8", s.LatencySec.Count)
	}
	// The window holds the most recent 8 samples (92..99).
	if s.LatencySec.Max != 99 || s.LatencySec.P50 < 92 {
		t.Fatalf("window stats = %+v; want samples 92..99", s.LatencySec)
	}
}

// TestLoopRecorderWindowWraparound pins the exact window contents after the
// ring has wrapped more than once: the percentile window must hold the most
// recent `window` latencies and nothing older.
func TestLoopRecorderWindowWraparound(t *testing.T) {
	r := NewLoopRecorder(4)
	for i := 0; i < 10; i++ { // wraps the 4-slot ring twice
		r.Record(float64(i), 1)
	}
	s := r.Snapshot()
	if s.Iterations != 10 || s.Updates != 10 {
		t.Fatalf("lifetime counters = %d/%d; want 10/10", s.Iterations, s.Updates)
	}
	// Window must be exactly {6, 7, 8, 9}.
	want := DistStats{Count: 4, Mean: 7.5, P50: 7.5, P99: 8.97, Max: 9}
	got := s.LatencySec
	if got.Count != want.Count || got.Mean != want.Mean || got.P50 != want.P50 || got.Max != want.Max {
		t.Fatalf("window stats = %+v; want %+v (samples 6..9)", got, want)
	}
	if got.P99 < got.P50 || got.P99 > got.Max {
		t.Fatalf("P99 = %g outside [P50=%g, Max=%g]", got.P99, got.P50, got.Max)
	}
}

// TestLoopRecorderEmptySnapshot: a fresh recorder must snapshot to zeros, not
// NaN (the rate fields divide by iteration and busy-time counters).
func TestLoopRecorderEmptySnapshot(t *testing.T) {
	s := NewLoopRecorder(4).Snapshot()
	if s.Iterations != 0 || s.Updates != 0 {
		t.Fatalf("fresh counters = %+v", s)
	}
	if s.UpdatesPerIteration != 0 || s.IterationsPerSec != 0 {
		t.Fatalf("fresh rates must be 0, got %+v", s)
	}
	if s.LatencySec != (DistStats{}) {
		t.Fatalf("fresh latency stats = %+v; want zero value", s.LatencySec)
	}
}

func TestLoopRecorderConcurrent(t *testing.T) {
	r := NewLoopRecorder(16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				r.Record(1e-6, 1)
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if s := r.Snapshot(); s.Iterations != 1000 || s.Updates != 1000 {
		t.Fatalf("stats = %+v; want 1000 iterations and updates", s)
	}
}

package metrics

import (
	"sync"
	"testing"
)

func TestLoopRecorderCounters(t *testing.T) {
	r := NewLoopRecorder(4)
	r.Record(1e-6, 3)
	r.Record(3e-6, 1)
	s := r.Snapshot()
	if s.Iterations != 2 || s.Updates != 4 {
		t.Fatalf("counters = %d iters, %d updates; want 2, 4", s.Iterations, s.Updates)
	}
	if s.UpdatesPerIteration != 2 {
		t.Fatalf("UpdatesPerIteration = %g; want 2", s.UpdatesPerIteration)
	}
	if s.LatencySec.Count != 2 || s.LatencySec.Max != 3e-6 {
		t.Fatalf("latency = %+v", s.LatencySec)
	}
	// 2 iterations over 4 µs of busy time = 500k iterations/s.
	if got, want := s.IterationsPerSec, 500_000.0; got < want*0.99 || got > want*1.01 {
		t.Fatalf("IterationsPerSec = %g; want ≈%g", got, want)
	}
}

func TestLoopRecorderWindowBounded(t *testing.T) {
	r := NewLoopRecorder(8)
	for i := 0; i < 100; i++ {
		r.Record(float64(i), 0)
	}
	s := r.Snapshot()
	if s.Iterations != 100 {
		t.Fatalf("Iterations = %d", s.Iterations)
	}
	if s.LatencySec.Count != 8 {
		t.Fatalf("window count = %d; want 8", s.LatencySec.Count)
	}
	// The window holds the most recent 8 samples (92..99).
	if s.LatencySec.Max != 99 || s.LatencySec.P50 < 92 {
		t.Fatalf("window stats = %+v; want samples 92..99", s.LatencySec)
	}
}

func TestLoopRecorderConcurrent(t *testing.T) {
	r := NewLoopRecorder(16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				r.Record(1e-6, 1)
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if s := r.Snapshot(); s.Iterations != 1000 || s.Updates != 1000 {
		t.Fatalf("stats = %+v; want 1000 iterations and updates", s)
	}
}

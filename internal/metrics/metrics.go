package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0 <= p <= 100) of values using
// nearest-rank interpolation. It returns 0 for an empty slice. The input is
// not modified.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile over an already-sorted non-empty sample.
func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of values (0 for an empty slice).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// DistStats summarizes one sample of a scalar quantity. The JSON field names
// are part of the BENCH_*.json schema emitted by cmd/flowtune-bench.
type DistStats struct {
	// Count is the sample size.
	Count int `json:"count"`
	// Mean is the arithmetic mean (0 for an empty sample).
	Mean float64 `json:"mean"`
	// P50 and P99 are the 50th and 99th percentiles.
	P50 float64 `json:"p50"`
	P99 float64 `json:"p99"`
	// Max is the largest observation.
	Max float64 `json:"max"`
}

// Summarize computes DistStats over a sample. The input is not modified.
func Summarize(values []float64) DistStats {
	s := DistStats{Count: len(values), Mean: Mean(values)}
	if len(values) == 0 {
		return s
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	s.P50 = percentileSorted(sorted, 50)
	s.P99 = percentileSorted(sorted, 99)
	s.Max = sorted[len(sorted)-1]
	return s
}

// FlowRecord is the outcome of one flow (flowlet) in a simulation.
type FlowRecord struct {
	// ID is the flow identifier.
	ID int64
	// SizeBytes is the flow's payload size.
	SizeBytes int64
	// Start is the time the flow became available at the sender.
	Start float64
	// End is the time the last payload byte arrived at the receiver; zero
	// if the flow did not finish before the simulation horizon.
	End float64
	// IdealDuration is the time the flow would take on an empty network
	// (serialization at the bottleneck rate plus base RTT), used to
	// normalize completion times as in Figure 8.
	IdealDuration float64
}

// Finished reports whether the flow completed.
func (r FlowRecord) Finished() bool { return r.End > r.Start }

// FCT returns the flow completion time in seconds (0 if unfinished).
func (r FlowRecord) FCT() float64 {
	if !r.Finished() {
		return 0
	}
	return r.End - r.Start
}

// NormalizedFCT returns the completion time divided by the ideal duration.
func (r FlowRecord) NormalizedFCT() float64 {
	if !r.Finished() || r.IdealDuration <= 0 {
		return 0
	}
	return r.FCT() / r.IdealDuration
}

// FCTSummary summarizes normalized flow completion times for one flow-size
// bucket.
type FCTSummary struct {
	Bucket   string
	Count    int
	Mean     float64
	P50, P99 float64
}

// SummarizeFCT groups finished flows into the given buckets (keyed by the
// bucket function) and returns normalized-FCT summaries per bucket, in the
// order of bucketOrder.
func SummarizeFCT(records []FlowRecord, bucketOf func(sizeBytes int64) string, bucketOrder []string) []FCTSummary {
	grouped := make(map[string][]float64)
	for _, r := range records {
		if !r.Finished() {
			continue
		}
		b := bucketOf(r.SizeBytes)
		grouped[b] = append(grouped[b], r.NormalizedFCT())
	}
	var out []FCTSummary
	for _, b := range bucketOrder {
		vals := grouped[b]
		if len(vals) == 0 {
			continue
		}
		out = append(out, FCTSummary{
			Bucket: b,
			Count:  len(vals),
			Mean:   Mean(vals),
			P50:    Percentile(vals, 50),
			P99:    Percentile(vals, 99),
		})
	}
	return out
}

// P99ByBucket returns a map from bucket label to the p99 normalized FCT.
func P99ByBucket(records []FlowRecord, bucketOf func(sizeBytes int64) string) map[string]float64 {
	grouped := make(map[string][]float64)
	for _, r := range records {
		if !r.Finished() {
			continue
		}
		grouped[bucketOf(r.SizeBytes)] = append(grouped[bucketOf(r.SizeBytes)], r.NormalizedFCT())
	}
	out := make(map[string]float64, len(grouped))
	for b, vals := range grouped {
		out[b] = Percentile(vals, 99)
	}
	return out
}

// CompletionRate returns the fraction of flows that finished.
func CompletionRate(records []FlowRecord) float64 {
	if len(records) == 0 {
		return 0
	}
	done := 0
	for _, r := range records {
		if r.Finished() {
			done++
		}
	}
	return float64(done) / float64(len(records))
}

// FairnessScore returns the proportional-fairness score Σ log2(rate) used in
// Figure 11. Rates of zero or below contribute the configured floor (the
// paper's comparison penalizes starved flows heavily; we use log2(floor)).
func FairnessScore(rates []float64, floor float64) float64 {
	if floor <= 0 {
		floor = 1
	}
	score := 0.0
	for _, r := range rates {
		if r < floor {
			r = floor
		}
		score += math.Log2(r)
	}
	return score
}

// MeanPerFlowFairness returns the fairness score divided by the number of
// flows, which is what Figure 11 plots (relative to Flowtune's value).
func MeanPerFlowFairness(rates []float64, floor float64) float64 {
	if len(rates) == 0 {
		return 0
	}
	return FairnessScore(rates, floor) / float64(len(rates))
}

// ThroughputSeries builds a per-interval throughput time series (bits/s) from
// (time, bytes) deliveries, as used for the Figure 4 convergence plots, which
// compute throughput over 100 µs intervals.
type ThroughputSeries struct {
	Interval float64
	start    float64
	buckets  []float64
}

// NewThroughputSeries creates a series with the given bucket width in
// seconds, starting at time start.
func NewThroughputSeries(interval, start float64) *ThroughputSeries {
	if interval <= 0 {
		interval = 100e-6
	}
	return &ThroughputSeries{Interval: interval, start: start}
}

// Add records bytes delivered at the given time.
func (t *ThroughputSeries) Add(at float64, bytes int) {
	if at < t.start {
		return
	}
	idx := int((at - t.start) / t.Interval)
	for len(t.buckets) <= idx {
		t.buckets = append(t.buckets, 0)
	}
	t.buckets[idx] += float64(bytes)
}

// Rates returns the throughput in bits/s for every interval.
func (t *ThroughputSeries) Rates() []float64 {
	out := make([]float64, len(t.buckets))
	for i, b := range t.buckets {
		out[i] = b * 8 / t.Interval
	}
	return out
}

// RateAt returns the throughput of the interval containing time at.
func (t *ThroughputSeries) RateAt(at float64) float64 {
	idx := int((at - t.start) / t.Interval)
	if idx < 0 || idx >= len(t.buckets) {
		return 0
	}
	return t.buckets[idx] * 8 / t.Interval
}

// JainIndex returns Jain's fairness index of the given rates: 1 when all
// rates are equal, 1/n when one flow gets everything.
func JainIndex(rates []float64) float64 {
	if len(rates) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, r := range rates {
		sum += r
		sumSq += r * r
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(rates)) * sumSq)
}

// FormatRate renders a bits/s value as a human-readable string (Gbit/s or
// Mbit/s) for reports.
func FormatRate(bps float64) string {
	switch {
	case bps >= 1e9:
		return fmt.Sprintf("%.2f Gbit/s", bps/1e9)
	case bps >= 1e6:
		return fmt.Sprintf("%.2f Mbit/s", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.2f Kbit/s", bps/1e3)
	default:
		return fmt.Sprintf("%.0f bit/s", bps)
	}
}

package metrics

import "sync"

// LoopStats is a snapshot of allocator control-loop performance: how long
// iterations take (percentiles over a sliding window of recent iterations)
// and how much work they push out.
type LoopStats struct {
	// Iterations and Updates count over the recorder's whole lifetime.
	Iterations int64 `json:"iterations"`
	Updates    int64 `json:"updates"`
	// LatencySec summarizes per-iteration wall-clock latency in seconds
	// over the recent window.
	LatencySec DistStats `json:"latency_sec"`
	// UpdatesPerIteration is the lifetime mean fan-out per iteration.
	UpdatesPerIteration float64 `json:"updates_per_iteration"`
	// IterationsPerSec is the loop's busy throughput: iterations divided
	// by total time spent iterating (not wall-clock time, which includes
	// idle waits between ticks).
	IterationsPerSec float64 `json:"iterations_per_sec"`
}

// LoopRecorder accumulates allocator-loop latency and throughput. It keeps a
// bounded ring of recent iteration latencies for percentiles, so memory use
// is constant regardless of daemon uptime. It is safe for concurrent use.
type LoopRecorder struct {
	mu         sync.Mutex
	window     []float64 // ring buffer of latencies in seconds
	next       int       // ring write cursor
	iterations int64
	updates    int64
	busy       float64 // total seconds spent iterating
}

// DefaultLoopWindow is the default percentile window size.
const DefaultLoopWindow = 1024

// NewLoopRecorder creates a recorder keeping the last window iteration
// latencies (DefaultLoopWindow when window <= 0).
func NewLoopRecorder(window int) *LoopRecorder {
	if window <= 0 {
		window = DefaultLoopWindow
	}
	return &LoopRecorder{window: make([]float64, 0, window)}
}

// Record logs one loop iteration that took latencySec seconds and emitted
// updates rate updates.
func (r *LoopRecorder) Record(latencySec float64, updates int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.iterations++
	r.updates += int64(updates)
	r.busy += latencySec
	if len(r.window) < cap(r.window) {
		r.window = append(r.window, latencySec)
		return
	}
	r.window[r.next] = latencySec
	r.next = (r.next + 1) % len(r.window)
}

// Snapshot returns the current statistics. Percentiles cover only the recent
// window; counters cover the recorder's lifetime.
func (r *LoopRecorder) Snapshot() LoopStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := LoopStats{
		Iterations: r.iterations,
		Updates:    r.updates,
		LatencySec: Summarize(r.window),
	}
	if r.iterations > 0 {
		s.UpdatesPerIteration = float64(r.updates) / float64(r.iterations)
	}
	if r.busy > 0 {
		s.IterationsPerSec = float64(r.iterations) / r.busy
	}
	return s
}

package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if got := Percentile(vals, 0); got != 1 {
		t.Errorf("p0 = %g, want 1", got)
	}
	if got := Percentile(vals, 100); got != 5 {
		t.Errorf("p100 = %g, want 5", got)
	}
	if got := Percentile(vals, 50); got != 3 {
		t.Errorf("p50 = %g, want 3", got)
	}
	if got := Percentile(nil, 99); got != 0 {
		t.Errorf("empty percentile = %g, want 0", got)
	}
	// Input must not be modified.
	if vals[0] != 5 {
		t.Error("Percentile modified its input")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	vals := []float64{0, 10}
	if got := Percentile(vals, 25); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("p25 = %g, want 2.5", got)
	}
}

// TestPercentileProperty: percentile is monotone in p and bounded by min/max.
func TestPercentileProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, int(n%50)+1)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(vals, p)
			if v < prev-1e-9 || v < sorted[0]-1e-9 || v > sorted[len(sorted)-1]+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g, want 0", got)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if got := Summarize(nil); got != (DistStats{}) {
		t.Errorf("Summarize(nil) = %+v; want zero value", got)
	}
	// A single sample collapses every statistic onto the sample.
	got := Summarize([]float64{2.5})
	want := DistStats{Count: 1, Mean: 2.5, P50: 2.5, P99: 2.5, Max: 2.5}
	if got != want {
		t.Errorf("Summarize single = %+v; want %+v", got, want)
	}
}

// TestSummarizeMonotonicity: on any sample, P50 <= P99 <= Max and the mean is
// bounded by the extremes.
func TestSummarizeMonotonicity(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, int(n%64)+1)
		for i := range vals {
			vals[i] = rng.ExpFloat64()
		}
		s := Summarize(vals)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		lo, hi := sorted[0], sorted[len(sorted)-1]
		const eps = 1e-9
		return s.Count == len(vals) &&
			s.P50 <= s.P99+eps && s.P99 <= s.Max+eps &&
			s.Mean >= lo-eps && s.Mean <= hi+eps &&
			s.Max == hi
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFlowRecord(t *testing.T) {
	r := FlowRecord{SizeBytes: 1500, Start: 1, End: 1.001, IdealDuration: 0.0005}
	if !r.Finished() {
		t.Error("record should be finished")
	}
	if math.Abs(r.FCT()-0.001) > 1e-12 {
		t.Errorf("FCT = %g, want 0.001", r.FCT())
	}
	if math.Abs(r.NormalizedFCT()-2) > 1e-9 {
		t.Errorf("NormalizedFCT = %g, want 2", r.NormalizedFCT())
	}
	unfinished := FlowRecord{Start: 1}
	if unfinished.Finished() || unfinished.FCT() != 0 || unfinished.NormalizedFCT() != 0 {
		t.Error("unfinished record misreported")
	}
}

func TestSummarizeFCTAndP99(t *testing.T) {
	bucketOf := func(size int64) string {
		if size <= 10 {
			return "small"
		}
		return "big"
	}
	var records []FlowRecord
	for i := 0; i < 100; i++ {
		records = append(records, FlowRecord{
			SizeBytes: 5, Start: 0, End: float64(i + 1), IdealDuration: 1,
		})
	}
	records = append(records, FlowRecord{SizeBytes: 50, Start: 0, End: 2, IdealDuration: 1})
	records = append(records, FlowRecord{SizeBytes: 50, Start: 5, End: 0}) // unfinished
	sums := SummarizeFCT(records, bucketOf, []string{"small", "big"})
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	if sums[0].Bucket != "small" || sums[0].Count != 100 {
		t.Errorf("small bucket: %+v", sums[0])
	}
	if sums[1].Count != 1 {
		t.Errorf("big bucket should only count the finished flow: %+v", sums[1])
	}
	p99 := P99ByBucket(records, bucketOf)
	if p99["small"] < 90 {
		t.Errorf("p99 of small bucket = %g, want >= 90", p99["small"])
	}
	if got := CompletionRate(records); math.Abs(got-101.0/102) > 1e-9 {
		t.Errorf("CompletionRate = %g", got)
	}
}

func TestFairnessScore(t *testing.T) {
	// Two flows at rate 4: score = 2*log2(4) = 4.
	if got := FairnessScore([]float64{4, 4}, 1); got != 4 {
		t.Errorf("FairnessScore = %g, want 4", got)
	}
	// A starved flow is clamped to the floor.
	withStarved := FairnessScore([]float64{4, 0}, 1)
	if withStarved != 2 {
		t.Errorf("FairnessScore with starved flow = %g, want 2", withStarved)
	}
	if got := MeanPerFlowFairness([]float64{4, 4}, 1); got != 2 {
		t.Errorf("MeanPerFlowFairness = %g, want 2", got)
	}
	if got := MeanPerFlowFairness(nil, 1); got != 0 {
		t.Errorf("MeanPerFlowFairness(nil) = %g, want 0", got)
	}
}

func TestFairnessPrefersEqualAllocation(t *testing.T) {
	equal := FairnessScore([]float64{5, 5}, 1)
	unequal := FairnessScore([]float64{9, 1}, 1)
	if equal <= unequal {
		t.Errorf("equal allocation (%g) should score higher than unequal (%g)", equal, unequal)
	}
}

func TestThroughputSeries(t *testing.T) {
	ts := NewThroughputSeries(1e-3, 0)
	ts.Add(0.5e-3, 125)  // 125 bytes in bucket 0
	ts.Add(0.9e-3, 125)  // another 125 bytes in bucket 0
	ts.Add(2.5e-3, 1250) // bucket 2
	rates := ts.Rates()
	if len(rates) != 3 {
		t.Fatalf("got %d buckets, want 3", len(rates))
	}
	if math.Abs(rates[0]-2e6) > 1e-6 {
		t.Errorf("bucket 0 rate = %g, want 2e6", rates[0])
	}
	if rates[1] != 0 {
		t.Errorf("bucket 1 rate = %g, want 0", rates[1])
	}
	if math.Abs(rates[2]-1e7) > 1e-6 {
		t.Errorf("bucket 2 rate = %g, want 1e7", rates[2])
	}
	if got := ts.RateAt(2.1e-3); math.Abs(got-1e7) > 1e-6 {
		t.Errorf("RateAt = %g, want 1e7", got)
	}
	if got := ts.RateAt(10); got != 0 {
		t.Errorf("RateAt beyond series = %g, want 0", got)
	}
}

func TestThroughputSeriesIgnoresBeforeStart(t *testing.T) {
	ts := NewThroughputSeries(1e-3, 1.0)
	ts.Add(0.5, 1000)
	if len(ts.Rates()) != 0 {
		t.Error("deliveries before the start time should be ignored")
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal rates Jain = %g, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("single-flow Jain = %g, want 0.25", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Errorf("Jain(nil) = %g, want 0", got)
	}
}

func TestFormatRate(t *testing.T) {
	cases := []struct {
		bps  float64
		want string
	}{
		{2.5e9, "2.50 Gbit/s"},
		{3e6, "3.00 Mbit/s"},
		{1.5e3, "1.50 Kbit/s"},
		{500, "500 bit/s"},
	}
	for _, tc := range cases {
		if got := FormatRate(tc.bps); got != tc.want {
			t.Errorf("FormatRate(%g) = %q, want %q", tc.bps, got, tc.want)
		}
	}
}

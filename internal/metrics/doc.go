// Package metrics collects and summarizes the quantities reported in
// Flowtune's evaluation: flow completion times (normalized by the ideal
// transfer time on an empty network and bucketed by flow size), 99th
// percentile queueing delays, drop rates, throughput time series, and the
// proportional-fairness score Σ log2(rate).
//
// DistStats and Summarize provide the generic count/mean/p50/p99/max summary
// used by the scenario runner's machine-readable BENCH_*.json output.
package metrics

//go:build !numa || !linux

package affinity

import "errors"

// Enabled reports whether worker pinning can do anything on this machine.
// This build lacks the numa tag (or is not linux), so it cannot.
func Enabled() bool { return false }

// Sockets returns the number of NUMA nodes workers are distributed over;
// always 0 in this build.
func Sockets() int { return 0 }

// PinWorker would pin the calling goroutine's OS thread to a NUMA node; in
// this build it always fails. Callers gate on Enabled and fall back to
// unpinned workers.
func PinWorker(worker int) (int, error) {
	return 0, errors.New("affinity: built without the numa tag")
}

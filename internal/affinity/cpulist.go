package affinity

import (
	"fmt"
	"strconv"
	"strings"
)

// parseCPUList parses the kernel's cpulist format ("0-3,8,10-11") into the
// expanded CPU numbers. It is the format of
// /sys/devices/system/node/node*/cpulist; an empty (or all-whitespace) list
// parses to no CPUs, which callers treat as a memory-only node.
func parseCPUList(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var cpus []int
	for _, field := range strings.Split(s, ",") {
		lo, hi, ok := strings.Cut(field, "-")
		first, err := strconv.Atoi(strings.TrimSpace(lo))
		if err != nil {
			return nil, fmt.Errorf("affinity: bad cpulist entry %q: %v", field, err)
		}
		last := first
		if ok {
			last, err = strconv.Atoi(strings.TrimSpace(hi))
			if err != nil {
				return nil, fmt.Errorf("affinity: bad cpulist range %q: %v", field, err)
			}
		}
		if first < 0 || last < first {
			return nil, fmt.Errorf("affinity: bad cpulist range %q", field)
		}
		for cpu := first; cpu <= last; cpu++ {
			cpus = append(cpus, cpu)
		}
	}
	return cpus, nil
}

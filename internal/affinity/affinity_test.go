package affinity

import "testing"

// TestEnabledContract holds in every build mode: with pinning available,
// PinWorker must succeed and round-robin over the discovered sockets; without
// it (the stub, or a single-node machine under the numa tag), Sockets is 0
// and PinWorker fails rather than silently doing nothing.
func TestEnabledContract(t *testing.T) {
	if !Enabled() {
		if n := Sockets(); n != 0 {
			t.Fatalf("Sockets() = %d with Enabled() == false, want 0", n)
		}
		if _, err := PinWorker(0); err == nil {
			t.Fatalf("PinWorker succeeded with Enabled() == false")
		}
		return
	}
	n := Sockets()
	if n < 2 {
		t.Fatalf("Sockets() = %d with Enabled() == true, want >= 2", n)
	}
	for worker := 0; worker < 2*n; worker++ {
		node, err := PinWorker(worker)
		if err != nil {
			t.Fatalf("PinWorker(%d): %v", worker, err)
		}
		if node != worker%n {
			t.Fatalf("PinWorker(%d) pinned to node %d, want %d", worker, node, worker%n)
		}
	}
}

func TestParseCPUList(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{in: "0-3", want: []int{0, 1, 2, 3}},
		{in: "0-1,8,10-11\n", want: []int{0, 1, 8, 10, 11}},
		{in: "5", want: []int{5}},
		{in: "", want: nil},
		{in: "  \n", want: nil},
		{in: "3-1", err: true},
		{in: "a-b", err: true},
		{in: "1,,2", err: true},
		{in: "-2", err: true},
	}
	for _, c := range cases {
		got, err := parseCPUList(c.in)
		if c.err {
			if err == nil {
				t.Errorf("parseCPUList(%q): want error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseCPUList(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseCPUList(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseCPUList(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

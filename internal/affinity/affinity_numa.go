//go:build numa && linux

package affinity

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"syscall"
	"unsafe"
)

// cpuSet mirrors the kernel's cpu_set_t for sched_setaffinity: a bitmask
// with one bit per CPU, sized here for machines up to 1024 CPUs.
type cpuSet [16]uint64

func (s *cpuSet) set(cpu int) {
	if cpu >= 0 && cpu < len(s)*64 {
		s[cpu/64] |= 1 << (cpu % 64)
	}
}

// nodeCPUs returns each NUMA node's CPUs, discovered once from sysfs.
// Memory-only nodes (no CPUs) are skipped — a worker cannot run there.
var nodeCPUs = sync.OnceValue(func() [][]int {
	var nodes [][]int
	for n := 0; ; n++ {
		raw, err := os.ReadFile(fmt.Sprintf("/sys/devices/system/node/node%d/cpulist", n))
		if err != nil {
			break
		}
		cpus, err := parseCPUList(string(raw))
		if err != nil {
			return nil
		}
		if len(cpus) > 0 {
			nodes = append(nodes, cpus)
		}
	}
	if len(nodes) < 2 {
		// One node means pinning buys no locality; report disabled.
		return nil
	}
	return nodes
})

// Enabled reports whether worker pinning can do anything on this machine:
// the binary was built with the numa tag and sysfs exposes at least two
// NUMA nodes with CPUs.
func Enabled() bool { return len(nodeCPUs()) > 0 }

// Sockets returns the number of NUMA nodes workers are distributed over
// (0 when Enabled is false).
func Sockets() int { return len(nodeCPUs()) }

// PinWorker locks the calling goroutine to its OS thread and restricts that
// thread to the CPUs of NUMA node worker % Sockets(), returning the node it
// was pinned to. Memory the calling goroutine allocates and first touches
// afterwards lands on that node. The thread stays locked for the life of the
// goroutine — callers are long-lived workers, which is the point.
func PinWorker(worker int) (int, error) {
	nodes := nodeCPUs()
	if len(nodes) == 0 {
		return 0, fmt.Errorf("affinity: no NUMA nodes discovered")
	}
	runtime.LockOSThread()
	node := worker % len(nodes)
	var mask cpuSet
	for _, cpu := range nodes[node] {
		mask.set(cpu)
	}
	// Raw syscall on the calling thread (tid 0 = self); golang.org/x/sys is
	// deliberately not a dependency.
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		runtime.UnlockOSThread()
		return 0, fmt.Errorf("affinity: sched_setaffinity: %v", errno)
	}
	return node, nil
}

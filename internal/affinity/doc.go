// Package affinity pins allocator worker threads to NUMA sockets.
//
// The multicore allocator's merge phase is memory-bound: each pairwise
// aggregation round streams a partner FlowBlock's accumulator arrays. When
// the machine spans several memory nodes, placing a worker's accumulators on
// the node its thread runs on keeps those streams local. This package
// provides the two primitives that makes possible: discovering the machine's
// NUMA nodes, and pinning the calling goroutine's OS thread to one of them
// (round-robin by worker index) so that pages the worker then touches for
// the first time are allocated node-locally by the kernel's first-touch
// policy.
//
// The real implementation is gated behind the `numa` build tag and linux
// (nodes are read from /sys/devices/system/node, pinning uses the raw
// sched_setaffinity syscall — no external dependencies). Every other build
// gets no-op stubs: Enabled reports false and PinWorker fails, so callers
// such as core.ParallelAllocator degrade to unpinned workers. Single-node
// machines also report Enabled() == false — pinning every worker to the only
// socket would just fight the Go scheduler for no locality gain.
package affinity

package fastpass

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewArbiterValidation(t *testing.T) {
	if _, err := NewArbiter(1); err == nil {
		t.Error("1-node arbiter accepted")
	}
	if _, err := NewArbiter(8); err != nil {
		t.Errorf("valid arbiter rejected: %v", err)
	}
}

func TestAddDemandValidation(t *testing.T) {
	a, _ := NewArbiter(4)
	if err := a.AddDemand(0, 0, 1); err == nil {
		t.Error("self demand accepted")
	}
	if err := a.AddDemand(-1, 2, 1); err == nil {
		t.Error("negative src accepted")
	}
	if err := a.AddDemand(0, 4, 1); err == nil {
		t.Error("out-of-range dst accepted")
	}
	if err := a.AddDemand(0, 1, 0); err == nil {
		t.Error("zero packets accepted")
	}
	if err := a.AddDemand(0, 1, 3); err != nil {
		t.Errorf("valid demand rejected: %v", err)
	}
	if a.Backlog() != 3 {
		t.Errorf("Backlog = %d, want 3", a.Backlog())
	}
}

func TestTimeslotMatchingConstraints(t *testing.T) {
	a, _ := NewArbiter(4)
	// Two flows from the same source: only one can be admitted per slot.
	a.AddDemand(0, 1, 5)
	a.AddDemand(0, 2, 5)
	// Two flows to the same destination.
	a.AddDemand(2, 3, 5)
	a.AddDemand(1, 3, 5)
	for slot := 0; slot < 20; slot++ {
		matched := a.AllocateTimeslot()
		srcSeen := map[int32]bool{}
		dstSeen := map[int32]bool{}
		for _, pair := range matched {
			if srcSeen[pair[0]] {
				t.Fatalf("slot %d: source %d matched twice", slot, pair[0])
			}
			if dstSeen[pair[1]] {
				t.Fatalf("slot %d: destination %d matched twice", slot, pair[1])
			}
			srcSeen[pair[0]] = true
			dstSeen[pair[1]] = true
		}
	}
}

func TestAllDemandEventuallyServed(t *testing.T) {
	a, _ := NewArbiter(6)
	total := 0
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20; i++ {
		src := rng.Intn(6)
		dst := rng.Intn(5)
		if dst >= src {
			dst++
		}
		n := 1 + rng.Intn(10)
		a.AddDemand(src, dst, n)
		total += n
	}
	for slot := 0; slot < 10000 && a.Backlog() > 0; slot++ {
		a.AllocateTimeslot()
	}
	if a.Backlog() != 0 {
		t.Fatalf("backlog %d remained after 10000 slots", a.Backlog())
	}
	if a.Allocated() != int64(total) {
		t.Errorf("Allocated = %d, want %d", a.Allocated(), total)
	}
}

func TestMatchingIsMaximalOnDisjointPairs(t *testing.T) {
	a, _ := NewArbiter(8)
	// Four disjoint pairs can all be admitted in one slot.
	a.AddDemand(0, 1, 1)
	a.AddDemand(2, 3, 1)
	a.AddDemand(4, 5, 1)
	a.AddDemand(6, 7, 1)
	matched := a.AllocateTimeslot()
	if len(matched) != 4 {
		t.Errorf("matched %d pairs, want 4 (maximal matching on disjoint pairs)", len(matched))
	}
}

func TestNoStarvationRoundRobin(t *testing.T) {
	a, _ := NewArbiter(3)
	// Two flows from the same source compete; both must make progress.
	a.AddDemand(0, 1, 100)
	a.AddDemand(0, 2, 100)
	for slot := 0; slot < 100; slot++ {
		a.AllocateTimeslot()
	}
	if a.Backlog() != 100 {
		t.Errorf("total backlog = %d, want 100 (one packet admitted per slot)", a.Backlog())
	}
	// Both destinations should have received a reasonable share.
	remaining1 := int(a.Backlog())
	_ = remaining1
	served := map[int]int{}
	a2, _ := NewArbiter(3)
	a2.AddDemand(0, 1, 100)
	a2.AddDemand(0, 2, 100)
	for slot := 0; slot < 100; slot++ {
		for _, pair := range a2.AllocateTimeslot() {
			served[int(pair[1])]++
		}
	}
	if served[1] < 20 || served[2] < 20 {
		t.Errorf("round-robin starved a destination: %v", served)
	}
}

// TestTimeslotProperty: per slot, admitted pairs never exceed min(#sources
// with demand, #destinations with demand), and the backlog decreases by the
// number of admitted packets.
func TestTimeslotProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 3 + rng.Intn(6)
		a, err := NewArbiter(nodes)
		if err != nil {
			return false
		}
		for i := 0; i < rng.Intn(15); i++ {
			src := rng.Intn(nodes)
			dst := rng.Intn(nodes - 1)
			if dst >= src {
				dst++
			}
			a.AddDemand(src, dst, 1+rng.Intn(5))
		}
		for slot := 0; slot < 50; slot++ {
			before := a.Backlog()
			matched := a.AllocateTimeslot()
			after := a.Backlog()
			if before-after != int64(len(matched)) {
				return false
			}
			if len(matched) > nodes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

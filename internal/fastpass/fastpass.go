package fastpass

import (
	"fmt"
)

// Demand is the backlog of one source-destination pair in packets.
type Demand struct {
	Src, Dst int
	Packets  int
}

// Arbiter allocates packet timeslots with a greedy maximal matching, the
// same core operation as Fastpass's timeslot allocator.
type Arbiter struct {
	numNodes int

	// backlog[src][dst] is the number of packets waiting.
	backlog [][]int32
	// active lists (src,dst) pairs with a non-zero backlog, in round-robin
	// order to avoid starving any pair.
	active [][2]int32
	// pairIndex maps src*numNodes+dst to its position in active, or -1.
	pairIndex []int32

	srcBusy []bool
	dstBusy []bool

	// allocated counts packets admitted so far.
	allocated int64
	// timeslots counts timeslots processed.
	timeslots int64
}

// NewArbiter creates an arbiter for numNodes endpoints.
func NewArbiter(numNodes int) (*Arbiter, error) {
	if numNodes < 2 {
		return nil, fmt.Errorf("fastpass: need at least 2 nodes, got %d", numNodes)
	}
	a := &Arbiter{
		numNodes:  numNodes,
		backlog:   make([][]int32, numNodes),
		pairIndex: make([]int32, numNodes*numNodes),
		srcBusy:   make([]bool, numNodes),
		dstBusy:   make([]bool, numNodes),
	}
	for i := range a.backlog {
		a.backlog[i] = make([]int32, numNodes)
	}
	for i := range a.pairIndex {
		a.pairIndex[i] = -1
	}
	return a, nil
}

// AddDemand adds packets to a pair's backlog.
func (a *Arbiter) AddDemand(src, dst, packets int) error {
	if src < 0 || src >= a.numNodes || dst < 0 || dst >= a.numNodes || src == dst {
		return fmt.Errorf("fastpass: invalid pair (%d,%d)", src, dst)
	}
	if packets <= 0 {
		return fmt.Errorf("fastpass: packets must be positive, got %d", packets)
	}
	key := src*a.numNodes + dst
	if a.backlog[src][dst] == 0 && a.pairIndex[key] < 0 {
		a.pairIndex[key] = int32(len(a.active))
		a.active = append(a.active, [2]int32{int32(src), int32(dst)})
	}
	a.backlog[src][dst] += int32(packets)
	return nil
}

// Backlog returns the total number of packets waiting.
func (a *Arbiter) Backlog() int64 {
	var total int64
	for _, pair := range a.active {
		total += int64(a.backlog[pair[0]][pair[1]])
	}
	return total
}

// Allocated returns the total number of packets admitted so far.
func (a *Arbiter) Allocated() int64 { return a.allocated }

// Timeslots returns the number of timeslots processed so far.
func (a *Arbiter) Timeslots() int64 { return a.timeslots }

// AllocateTimeslot computes one timeslot's maximal matching and returns the
// admitted (src,dst) pairs. The returned slice is valid until the next call.
func (a *Arbiter) AllocateTimeslot() [][2]int32 {
	a.timeslots++
	for i := range a.srcBusy {
		a.srcBusy[i] = false
		a.dstBusy[i] = false
	}
	matched := a.active[:0:0]
	var requeue [][2]int32
	// Greedy maximal matching over active pairs in round-robin order:
	// pairs served this slot move to the back of the order so competing
	// pairs sharing a source or destination are not starved.
	w := 0
	for _, pair := range a.active {
		src, dst := pair[0], pair[1]
		if a.backlog[src][dst] == 0 {
			a.pairIndex[int(src)*a.numNodes+int(dst)] = -1
			continue
		}
		if a.srcBusy[src] || a.dstBusy[dst] {
			// Keep the pair near the front for the next timeslot.
			a.active[w] = pair
			a.pairIndex[int(src)*a.numNodes+int(dst)] = int32(w)
			w++
			continue
		}
		a.srcBusy[src] = true
		a.dstBusy[dst] = true
		a.backlog[src][dst]--
		a.allocated++
		matched = append(matched, pair)
		if a.backlog[src][dst] > 0 {
			requeue = append(requeue, pair)
		} else {
			a.pairIndex[int(src)*a.numNodes+int(dst)] = -1
		}
	}
	a.active = a.active[:w]
	for _, pair := range requeue {
		a.pairIndex[int(pair[0])*a.numNodes+int(pair[1])] = int32(len(a.active))
		a.active = append(a.active, pair)
	}
	return matched
}

// Package fastpass implements a simplified Fastpass-style centralized
// arbiter (Perry et al., SIGCOMM 2014), the baseline Flowtune's §6.1 compares
// against. Fastpass performs per-packet work: for every timeslot (one
// MTU-sized packet time on a server link) it computes a maximal matching
// between sources and destinations and admits at most one packet per matched
// pair. Because work is per packet rather than per flowlet, its allocation
// throughput is bounded by how many timeslots a core can process per second,
// which is the quantity the comparison benchmark measures.
package fastpass

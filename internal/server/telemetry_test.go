package server

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// TestIterateZeroAllocsWithTelemetry pins the observability cost on the hot
// loop: with the metrics registry and the convergence flight recorder both
// attached, a steady-state server iteration (fold, engine step, telemetry
// sample) must still not allocate.
func TestIterateZeroAllocsWithTelemetry(t *testing.T) {
	for _, tc := range []struct {
		name   string
		blocks int
	}{
		{"sequential", 0},
		{"parallel", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			topo := testTopology(t)
			srv, err := New(Config{Topology: topo, Blocks: tc.blocks, UpdateThreshold: 0.01})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			reg := telemetry.NewRegistry()
			srv.RegisterMetrics(reg)
			rec := telemetry.NewFlightRecorder(0)
			srv.AttachFlightRecorder(rec)

			srv.mu.Lock()
			for i := 0; i < 64; i++ {
				if err := srv.eng.FlowletStart(core.FlowID(i), i%16, (i+5)%16, 1); err != nil {
					srv.mu.Unlock()
					t.Fatal(err)
				}
			}
			srv.mu.Unlock()

			// Converge and grow every reused buffer to its working size.
			for i := 0; i < 50; i++ {
				if err := srv.iterate(nil, 0); err != nil {
					t.Fatal(err)
				}
			}
			if allocs := testing.AllocsPerRun(100, func() { srv.iterate(nil, 0) }); allocs != 0 {
				t.Fatalf("steady-state iterate with telemetry allocates %.1f times per op; want 0", allocs)
			}

			if rec.Total() < 150 {
				t.Fatalf("flight recorder saw %d samples; want >= 150", rec.Total())
			}
			last := rec.Snapshot()[rec.Len()-1]
			if last.Iteration == 0 || last.LatencySec <= 0 {
				t.Fatalf("flight sample not populated: %+v", last)
			}
			if last.Objective == 0 {
				t.Fatalf("converged run should have a finite non-zero objective, got %+v", last)
			}
		})
	}
}

// TestServerMetricsExposition scrapes a live daemon's registry and lints the
// exposition: every counter surface must appear as a named series, and the
// output must be a valid Prometheus text exposition.
func TestServerMetricsExposition(t *testing.T) {
	topo := testTopology(t)
	srv, cli := startPipeDaemon(t, Config{Topology: topo})
	defer cli.Close()

	reg := telemetry.NewRegistry()
	srv.RegisterMetrics(reg)

	if err := cli.FlowletStart(1, 0, 5, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := telemetry.Lint(out); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
	for _, series := range []string{
		"flowtune_sessions_accepted_total 1",
		"flowtune_sessions_active 1",
		"flowtune_events_received_total",
		`flowtune_events_dropped_total{reason="duplicate_add"}`,
		`flowtune_events_dropped_total{reason="drain_reject"}`,
		"flowtune_updates_sent_total",
		`flowtune_wire_bytes_total{direction="fanout",encoding="wire"}`,
		`flowtune_wire_bytes_total{direction="fanout",encoding="fixed_v3"}`,
		"flowtune_flows 1",
		"flowtune_iterations_total 1",
		"flowtune_iteration_latency_seconds_bucket",
		"flowtune_churn_events_total 1",
		"flowtune_draining 0",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("exposition missing %q", series)
		}
	}
}

// TestServerMetricsShardLabels checks the label plumbing the cluster admin
// uses: the same server registered under a shard label renders labeled
// series, and two label sets coexist in one registry.
func TestServerMetricsShardLabels(t *testing.T) {
	topo := testTopology(t)
	reg := telemetry.NewRegistry()
	for i, shard := range []string{"0", "1"} {
		srv, err := New(Config{Topology: topo})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		srv.RegisterMetrics(reg, telemetry.Label{Key: "shard", Value: shard})
		_ = i
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := telemetry.Lint(out); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
	for _, series := range []string{
		`flowtune_flows{shard="0"} 0`,
		`flowtune_flows{shard="1"} 0`,
		`flowtune_events_dropped_total{shard="0",reason="duplicate_add"} 0`,
	} {
		if !strings.Contains(out, series) {
			t.Errorf("exposition missing %q:\n%s", series, out)
		}
	}
}

// TestFlightRecorderSamplesChurn drives flowlet churn through a session and
// checks the flight recorder attributes it to the right iteration.
func TestFlightRecorderSamplesChurn(t *testing.T) {
	topo := testTopology(t)
	srv, cli := startPipeDaemon(t, Config{Topology: topo})
	defer cli.Close()
	rec := telemetry.NewFlightRecorder(8)
	srv.AttachFlightRecorder(rec)

	if err := cli.FlowletStart(1, 0, 5, 1); err != nil {
		t.Fatal(err)
	}
	if err := cli.FlowletStart(2, 3, 9, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	samples := rec.Snapshot()
	if len(samples) != 1 {
		t.Fatalf("got %d samples; want 1", len(samples))
	}
	s := samples[0]
	if s.ChurnEvents != 2 {
		t.Fatalf("ChurnEvents = %d; want 2 (both adds folded at the step boundary)", s.ChurnEvents)
	}
	if s.Iteration != 1 || s.Updates != 2 {
		t.Fatalf("sample = %+v; want iteration 1 with 2 updates", s)
	}
}

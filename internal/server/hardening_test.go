package server

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/wire"
)

// startWatchedDaemon is startPipeDaemon plus the session's exit error, which
// the hardening tests assert on.
func startWatchedDaemon(t *testing.T, cfg Config) (*Server, *transport.AllocClient, <-chan error) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	clientEnd, serverEnd := net.Pipe()
	errc := make(chan error, 1)
	go func() { errc <- srv.ServeConn(serverEnd) }()
	cli, err := transport.NewAllocClient(clientEnd, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli, errc
}

// TestMaxSessionFlowsRejectsExcessAdds pins the per-session flow cap: adds
// beyond MaxSessionFlows are dropped at the fold and counted, and ending a
// flow frees a slot.
func TestMaxSessionFlowsRejectsExcessAdds(t *testing.T) {
	topo := testTopology(t)
	srv, cli, _ := startWatchedDaemon(t, Config{Topology: topo, MaxSessionFlows: 2})
	for id := int64(1); id <= 3; id++ {
		if err := cli.FlowletStart(core.FlowID(id), 0, int(id), 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	if got := srv.NumFlows(); got != 2 {
		t.Fatalf("NumFlows = %d, want 2 (third add over the limit)", got)
	}
	if st := srv.Stats(); st.LimitedAdds != 1 {
		t.Fatalf("LimitedAdds = %d, want 1", st.LimitedAdds)
	}
	// Retiring one flow makes room for the next add.
	if err := cli.FlowletEnd(core.FlowID(1)); err != nil {
		t.Fatal(err)
	}
	if err := cli.FlowletStart(core.FlowID(4), 0, 4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	if got := srv.NumFlows(); got != 2 {
		t.Fatalf("NumFlows after retire+add = %d, want 2", got)
	}
	if !srv.hasFlow(core.FlowID(4)) {
		t.Fatal("post-retire add was not accepted")
	}
}

// hasFlow checks engine registration (test helper).
func (s *Server) hasFlow(id core.FlowID) bool {
	_, ok := s.Rates()[id]
	return ok
}

// TestMaxFrameRateDisconnectsBlaster pins the frame-rate limit: a session
// blasting frames far above MaxFrameRate is disconnected with a telling
// error.
func TestMaxFrameRateDisconnectsBlaster(t *testing.T) {
	topo := testTopology(t)
	_, cli, errc := startWatchedDaemon(t, Config{Topology: topo, MaxFrameRate: 20})
	// 200 frames arrive within well under a second: the bucket (20 tokens)
	// must run dry and the daemon must cut the session.
	var buf []byte
	for id := int64(1); id <= 200; id++ {
		buf = wire.AppendFlowletEnd(buf[:0], wire.FlowletEnd{Flow: id})
		if _, err := cli.Conn().Write(buf); err != nil {
			break // daemon already closed the pipe — that is the point
		}
	}
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "frame rate") {
			t.Fatalf("session ended with %v, want frame-rate error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blasting session was not disconnected")
	}
}

// TestSubUnitFrameRateAllowsFirstFrame pins the burst floor: a rate below
// one frame per second must throttle, not disconnect every client on its
// first frame.
func TestSubUnitFrameRateAllowsFirstFrame(t *testing.T) {
	topo := testTopology(t)
	srv, cli, _ := startWatchedDaemon(t, Config{Topology: topo, MaxFrameRate: 0.5})
	if err := cli.FlowletStart(core.FlowID(1), 0, 5, 1); err != nil {
		t.Fatal(err)
	}
	if err := cli.Flush(); err != nil {
		t.Fatal(err)
	}
	// Give the daemon time to fold the frame; the session must survive it.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().EventsReceived == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first frame never accepted under sub-1 frame rate")
		}
		time.Sleep(time.Millisecond)
	}
	if st := srv.Stats(); st.SessionsActive != 1 {
		t.Fatalf("session dropped on its first frame: %+v", st)
	}
}

// TestIdleTimeoutCoversHandshake pins the pre-handshake deadline: a
// connection that never sends a Hello is shed too.
func TestIdleTimeoutCoversHandshake(t *testing.T) {
	topo := testTopology(t)
	srv, err := New(Config{Topology: topo, IdleTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	clientEnd, serverEnd := net.Pipe()
	defer clientEnd.Close()
	errc := make(chan error, 1)
	go func() { errc <- srv.ServeConn(serverEnd) }()
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "handshake") {
			t.Fatalf("pre-handshake session ended with %v, want handshake timeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("silent pre-handshake connection was not shed")
	}
}

// TestIdleTimeoutDisconnectsSilentSession pins the idle timeout: a session
// that goes quiet is shed.
func TestIdleTimeoutDisconnectsSilentSession(t *testing.T) {
	topo := testTopology(t)
	srv, _, errc := startWatchedDaemon(t, Config{Topology: topo, IdleTimeout: 50 * time.Millisecond})
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "idle") {
			t.Fatalf("session ended with %v, want idle-timeout error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle session was not disconnected")
	}
	// The session's (zero) flows were cleaned up and the daemon keeps
	// serving new sessions.
	clientEnd, serverEnd := net.Pipe()
	go srv.ServeConn(serverEnd)
	cli, err := transport.NewAllocClient(clientEnd, 8)
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()
}

// TestRejectsInvalidLimits pins config validation.
func TestRejectsInvalidLimits(t *testing.T) {
	topo := testTopology(t)
	for _, cfg := range []Config{
		{Topology: topo, MaxSessionFlows: -1},
		{Topology: topo, MaxFrameRate: -0.5},
		{Topology: topo, IdleTimeout: -time.Second},
	} {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

// TestBumpEpochNotifiesClient pins the epoch-change push: a live client
// learns the new epoch without writing anything, and reacts by reconnecting.
func TestBumpEpochNotifiesClient(t *testing.T) {
	topo := testTopology(t)
	srv, cli, _ := startWatchedDaemon(t, Config{Topology: topo})
	if err := cli.FlowletStart(core.FlowID(1), 0, 5, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	if err := srv.BumpEpoch(9); err != nil {
		t.Fatal(err)
	}
	_, _, err := cli.Recv(2 * time.Second)
	if !errors.Is(err, transport.ErrEpochChanged) {
		t.Fatalf("Recv after bump = %v, want ErrEpochChanged", err)
	}
	if cli.Epoch() != 9 {
		t.Fatalf("client epoch = %d, want 9", cli.Epoch())
	}
	if srv.Epoch() != 9 {
		t.Fatalf("server epoch = %d, want 9", srv.Epoch())
	}
	// A non-advancing bump is refused.
	if err := srv.BumpEpoch(9); err == nil {
		t.Fatal("BumpEpoch(9) twice must fail")
	}
	// The documented reaction: reconnect and re-register, after which the
	// daemon still allocates the flow.
	clientEnd, serverEnd := net.Pipe()
	go srv.ServeConn(serverEnd)
	if err := cli.Reconnect(clientEnd); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	if got := srv.NumFlows(); got != 1 {
		t.Fatalf("NumFlows after reconnect = %d, want 1", got)
	}
}

package server

import (
	"cmp"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Config configures a flowtuned daemon.
type Config struct {
	// Topology is the fabric the allocator schedules. Required.
	Topology *topology.Topology
	// Gamma is NED's step size (default 0.4, matching the in-process
	// allocator; the parallel engine defaults to 1 when Blocks > 0).
	Gamma float64
	// UpdateThreshold is the relative rate-change notification threshold
	// (default 0.01). The same fraction of link capacity is withheld as
	// headroom, mirroring core.Config.
	UpdateThreshold float64
	// Interval is the free-running iteration period. Zero disables the
	// internal ticker: iterations then run only when a client sends a
	// Step frame, which is what deterministic end-to-end runs use.
	Interval time.Duration
	// Blocks selects the multicore engine: when positive, the daemon runs
	// the FlowBlock/LinkBlock parallel allocator with Blocks rack blocks
	// (must be a power of two dividing the rack count). Zero selects the
	// sequential allocator. Either engine composes with NumShards: a
	// sharded daemon with Blocks > 0 spans cores within its shard while
	// exchanging boundary prices with its peers.
	Blocks int
	// PinWorkers pins the parallel engine's workers to NUMA sockets and
	// first-touches their merge accumulators node-locally. Only meaningful
	// with Blocks > 0 and a binary built with the `numa` tag on linux
	// (a no-op otherwise; see internal/affinity).
	PinWorkers bool
	// Epoch identifies this allocator generation in the Hello/Welcome
	// handshake (default 1). Restarting operators should bump it so
	// endpoints re-register their flowlets.
	Epoch uint64
	// LatencyWindow is the loop-latency percentile window
	// (default metrics.DefaultLoopWindow).
	LatencyWindow int
	// Logf, when set, receives daemon log lines.
	Logf func(format string, args ...any)

	// MaxSessionFlows caps the number of live flowlets one session may
	// register (0 = unlimited). Adds beyond the cap are dropped at the
	// iteration boundary and counted in Stats.LimitedAdds, so one buggy
	// or hostile endpoint cannot grow the optimizer without bound.
	MaxSessionFlows int
	// MaxFrameRate caps the sustained frame rate of one session in frames
	// per second (0 = unlimited), with a one-second burst allowance. A
	// session exceeding it is disconnected.
	MaxFrameRate float64
	// IdleTimeout disconnects a session that has sent no frame for this
	// long (0 = never). Free-running daemons use it to shed endpoints
	// that died without closing their connection.
	IdleTimeout time.Duration

	// NumShards enables sharded cluster operation: this daemon owns shard
	// ShardIndex of a NumShards-way rack partition of Topology (see
	// topology.ShardMap), accepts only flowlets whose source servers it
	// owns, and exchanges boundary prices with its peers (Server.ConnectPeer)
	// at every iteration boundary. 0 runs the daemon unsharded. Sharding
	// works with both engines — set Blocks > 0 to run a multicore shard.
	NumShards int
	// ShardIndex is this daemon's shard in [0, NumShards).
	ShardIndex int

	// Takeover enables peer-detected shard failover in a sharded cluster:
	// every iteration the daemon replicates its flow state to its successor
	// (the next live shard index), and when a peer daemon dies — its
	// exchange push fails, or (free-running) its heartbeats go stale past
	// HeartbeatTimeout — the dead daemon's successor adopts the orphaned
	// rack block, seeded from the replica and last price snapshot it holds,
	// and announces the takeover to the surviving peers.
	Takeover bool
	// HeartbeatTimeout declares a peer dead when no frame has arrived from
	// it for this long. It only applies to free-running daemons
	// (Interval > 0): step-driven runs detect death solely through the
	// synchronous exchange push, which keeps them deterministic. 0 disables
	// staleness detection.
	HeartbeatTimeout time.Duration

	// QuantizeRates switches protocol-v4 rate fan-out to the paper's Mbps
	// granularity (uvarint Mbps per entry instead of bit-exact
	// xor-compressed float64s). Endpoints then receive rates rounded to
	// 1 Mbps, so it is opt-in (flowtuned -wire-quantize): the default
	// lossless mode keeps allocation math and committed baselines
	// byte-identical. v3 sessions are unaffected either way.
	QuantizeRates bool
}

// Stats is a snapshot of daemon counters.
type Stats struct {
	// SessionsAccepted counts handshakes completed; SessionsActive is the
	// current session count.
	SessionsAccepted int64
	SessionsActive   int64
	// EventsReceived counts FlowletAdd/FlowletEnd frames accepted into
	// the inbox.
	EventsReceived int64
	// DuplicateAdds and UnknownEnds count events dropped at the
	// iteration boundary because the flow was already (or not)
	// registered; RejectedAdds count adds the engine refused (bad route).
	DuplicateAdds int64
	UnknownEnds   int64
	RejectedAdds  int64
	// UpdatesSent counts rate-update entries written to clients;
	// UpdatesCoalesced counts updates overwritten by a newer rate before
	// a slow client drained them (the backpressure policy); BatchesSent
	// counts RateBatch frames.
	UpdatesSent      int64
	UpdatesCoalesced int64
	BatchesSent      int64
	// LimitedAdds counts adds dropped because the session hit
	// Config.MaxSessionFlows.
	LimitedAdds int64
	// PeerExchanges counts boundary-exchange bundles folded in from peer
	// shards; PeerRejected counts peer frames or entries dropped as
	// invalid (wrong owner, unknown link, stale epoch).
	PeerExchanges int64
	PeerRejected  int64
	// AdoptedFlows counts flowlets whose ownership was transferred without
	// engine churn: restored (or replica-seeded) flows claimed by a
	// reconnecting client's re-registration.
	AdoptedFlows int64
	// Takeovers counts dead peer shards this daemon adopted.
	Takeovers int64
	// DrainRejects counts flowlet adds refused because the daemon was
	// draining.
	DrainRejects int64
	// ExchangeFolds counts peer exchange messages folded into an
	// iteration; ExchangeStalenessIters sums, over those folds, how many
	// iterations old each message's originating sequence number was at
	// fold time (clamped at zero for free-running daemons that fold a
	// peer's newer bundle). ExchangeStalenessIters/ExchangeFolds is the
	// mean boundary-price staleness in allocator iterations — the
	// paper's control-loop freshness budget, observable per daemon.
	ExchangeFolds          int64
	ExchangeStalenessIters int64
	// FanoutBytes counts rate-update bytes actually written to clients
	// (RateBatch or RateDelta frames); FanoutBytesFixed counts the bytes
	// the same updates would have cost as fixed v3 RateBatch frames, so
	// FanoutBytesFixed/FanoutBytes is the fan-out compression ratio.
	FanoutBytes      int64
	FanoutBytesFixed int64
	// ExchangeBytes counts PriceDigest/PriceSnapshot (or their v4 delta
	// forms) bytes built into peer exchange bundles; ExchangeBytesFixed
	// counts the fixed v3 cost of the same boundary state. Both are
	// accumulated at bundle-build time, so step-driven runs count them
	// deterministically.
	ExchangeBytes      int64
	ExchangeBytesFixed int64
}

// flowMeta is the registration a flow without an owning session was created
// from (snapshot restore or peer replica).
type flowMeta struct {
	src, dst int
	weight   float64
}

// event is one flowlet notification waiting for the next iteration boundary.
type event struct {
	end      bool
	flow     core.FlowID
	src, dst int
	weight   float64
	// size is the wire v4 flowlet-size hint in bytes (0 = unknown).
	size int64
	sess *session
	// cleanup marks an orphan-retirement event generated when sess
	// disconnected. It only applies while sess still owns the flow: if a
	// reconnected client re-registered the flow under a new session before
	// the sweep ran, the stale cleanup must not retire it.
	cleanup bool
}

// Server is the flowtuned allocator daemon: it owns the optimizer, drains
// client flowlet notifications at iteration boundaries (the paper's "updates
// are folded in between iterations" design), and fans rate updates back out
// to the sessions that registered the flows.
type Server struct {
	cfg  Config
	eng  engine
	loop *metrics.LoopRecorder

	mu       sync.Mutex
	sessions map[*session]struct{}
	// conns tracks every connection handed to ServeConn, including ones
	// still mid-handshake, so Close can unblock their readers.
	conns  map[net.Conn]struct{}
	owners map[core.FlowID]*session
	// unowned holds the registration metadata of flows that live in the
	// engine without an owning session (restored from a snapshot or seeded
	// from a peer replica), so a reconnecting client's re-registration can
	// be verified and adopted without engine churn.
	unowned  map[core.FlowID]flowMeta
	inbox    []event
	seq      uint64 // iteration counter
	closed   bool
	draining bool

	done chan struct{}
	wg   sync.WaitGroup

	lnMu      sync.Mutex
	listeners []net.Listener

	stSessions  atomic.Int64
	stActive    atomic.Int64
	stEvents    atomic.Int64
	stDupAdds   atomic.Int64
	stUnknown   atomic.Int64
	stRejected  atomic.Int64
	stUpdates   atomic.Int64
	stCoalesced atomic.Int64
	stBatches   atomic.Int64
	stLimited   atomic.Int64
	stPeerEx    atomic.Int64
	stPeerRej   atomic.Int64
	stAdopted   atomic.Int64
	stTakeovers atomic.Int64
	stDrainRej  atomic.Int64
	stExchFolds atomic.Int64
	stExchStale atomic.Int64

	stFanoutBytes atomic.Int64
	stFanoutFixed atomic.Int64
	stExchBytes   atomic.Int64
	stExchFixed   atomic.Int64

	// telemetry is the optional observability hook (registry series written
	// in the loop plus the convergence flight recorder), nil until
	// RegisterMetrics or AttachFlightRecorder wires it. Guarded by mu.
	telemetry *serverTelemetry

	// epoch is the allocator generation announced in handshakes; BumpEpoch
	// advances it mid-run and notifies connected clients.
	epoch atomic.Uint64

	// shard is the sharded-cluster state, nil for an unsharded daemon.
	shard *shardState
}

// New creates a daemon. The caller owns serving: pass a listener to Serve,
// or individual connections (e.g. net.Pipe ends) to ServeConn.
func New(cfg Config) (*Server, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("server: Config.Topology is required")
	}
	if cfg.UpdateThreshold == 0 {
		cfg.UpdateThreshold = 0.01
	}
	if cfg.UpdateThreshold < 0 || cfg.UpdateThreshold >= 1 {
		return nil, fmt.Errorf("server: UpdateThreshold must be in [0,1), got %g", cfg.UpdateThreshold)
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 1
	}
	if cfg.MaxSessionFlows < 0 || cfg.MaxFrameRate < 0 || cfg.IdleTimeout < 0 {
		return nil, fmt.Errorf("server: session limits must be non-negative")
	}
	var eng engine
	var err error
	if cfg.Blocks > 0 {
		eng, err = newParallelEngine(cfg)
	} else {
		eng, err = newCoreEngine(cfg)
	}
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		eng:      eng,
		loop:     metrics.NewLoopRecorder(cfg.LatencyWindow),
		sessions: make(map[*session]struct{}),
		conns:    make(map[net.Conn]struct{}),
		owners:   make(map[core.FlowID]*session),
		unowned:  make(map[core.FlowID]flowMeta),
		done:     make(chan struct{}),
	}
	s.epoch.Store(cfg.Epoch)
	if cfg.NumShards > 0 {
		s.shard, err = newShardState(cfg, eng)
		if err != nil {
			eng.Close()
			return nil, err
		}
	} else if cfg.NumShards < 0 || cfg.ShardIndex != 0 {
		eng.Close()
		return nil, fmt.Errorf("server: invalid shard configuration %d/%d", cfg.ShardIndex, cfg.NumShards)
	}
	if cfg.Interval > 0 {
		s.wg.Add(1)
		go s.tickLoop()
	}
	return s, nil
}

// logf logs through the configured sink.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Epoch returns the daemon's allocator epoch.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// BumpEpoch advances the daemon's allocator epoch (it must be greater than
// the current one) and pushes an EpochNotify frame to every connected
// protocol-v2 client, so endpoints learn about an allocator state reset
// without waiting for a failed write; they respond by re-registering their
// flowlets (transport.AllocClient.Reconnect). Operators use it after
// swapping allocator state under a live daemon.
func (s *Server) BumpEpoch(epoch uint64) error {
	for {
		cur := s.epoch.Load()
		if epoch <= cur {
			return fmt.Errorf("server: epoch %d does not advance current epoch %d", epoch, cur)
		}
		if s.epoch.CompareAndSwap(cur, epoch) {
			break
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	notify := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		if sess.version >= 2 {
			notify = append(notify, sess)
		}
	}
	// Register the notifier goroutines under s.mu, like session writers, so
	// Close cannot start waiting between the check above and the Add.
	s.wg.Add(len(notify))
	s.mu.Unlock()
	frame := wire.AppendEpochNotify(nil, wire.EpochNotify{Epoch: epoch})
	for _, sess := range notify {
		// One goroutine per session: a slow or dead client must not stall
		// the operator path or its peers (frame is never written to, so
		// sharing it is safe).
		go func() {
			defer s.wg.Done()
			// The epoch bump resets the client's view (it re-registers its
			// flowlets), so the delta fan-out must re-baseline: drop the
			// last-sent shadow before the notify so every later rate is
			// sent in full.
			sess.pmu.Lock()
			clear(sess.lastSent)
			sess.pmu.Unlock()
			if err := sess.write(frame); err != nil {
				s.removeSession(sess)
			}
		}()
	}
	s.logf("epoch bumped to %d (%d clients notified)", epoch, len(notify))
	return nil
}

// NumFlows returns the number of currently registered flowlets.
func (s *Server) NumFlows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.NumFlows()
}

// Iterations returns the number of allocator iterations run so far.
func (s *Server) Iterations() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// LoopStats returns allocator-loop latency and throughput statistics.
func (s *Server) LoopStats() metrics.LoopStats { return s.loop.Snapshot() }

// Stats returns a snapshot of daemon counters.
func (s *Server) Stats() Stats {
	return Stats{
		SessionsAccepted: s.stSessions.Load(),
		SessionsActive:   s.stActive.Load(),
		EventsReceived:   s.stEvents.Load(),
		DuplicateAdds:    s.stDupAdds.Load(),
		UnknownEnds:      s.stUnknown.Load(),
		RejectedAdds:     s.stRejected.Load(),
		UpdatesSent:      s.stUpdates.Load(),
		UpdatesCoalesced: s.stCoalesced.Load(),
		BatchesSent:      s.stBatches.Load(),
		LimitedAdds:      s.stLimited.Load(),
		PeerExchanges:    s.stPeerEx.Load(),
		PeerRejected:     s.stPeerRej.Load(),
		AdoptedFlows:     s.stAdopted.Load(),
		Takeovers:        s.stTakeovers.Load(),
		DrainRejects:     s.stDrainRej.Load(),

		ExchangeFolds:          s.stExchFolds.Load(),
		ExchangeStalenessIters: s.stExchStale.Load(),

		FanoutBytes:        s.stFanoutBytes.Load(),
		FanoutBytesFixed:   s.stFanoutFixed.Load(),
		ExchangeBytes:      s.stExchBytes.Load(),
		ExchangeBytesFixed: s.stExchFixed.Load(),
	}
}

// SetLinkCapacity changes one fabric link's raw capacity in the daemon's
// engine. It serializes with the iteration loop under the server mutex, so a
// call between steps of a step-driven daemon lands at an exact iteration
// boundary and the very next Iterate re-prices the link — no engine rebuild,
// no flow churn. Closed daemons reject the call so a cluster-wide broadcast
// can skip dead shards explicitly.
func (s *Server) SetLinkCapacity(l topology.LinkID, capacity float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return net.ErrClosed
	}
	return s.eng.SetLinkCapacity(l, capacity)
}

// Rates returns the engine's current rates keyed by flow ID (a diagnostic
// mirror of core.Allocator.Rates).
func (s *Server) Rates() map[core.FlowID]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Rates()
}

// tickLoop drives free-running iterations every cfg.Interval.
func (s *Server) tickLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.iterate(nil, 0)
		}
	}
}

// Serve accepts sessions from ln until the daemon is closed. It always
// returns a non-nil error; after Close it returns net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.isClosed() {
		s.lnMu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.listeners = append(s.listeners, ln)
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return net.ErrClosed
			}
			return err
		}
		// The closed check and wg.Add share the mutex Close uses to set
		// closed, so an Add can never start while Close is in wg.Wait.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// isClosed reports whether Close has been called.
func (s *Server) isClosed() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// Close shuts the daemon down: listeners stop accepting, sessions are torn
// down, the ticker stops, and the engine is released. It is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	// Closing every served conn (sessions and mid-handshake readers alike)
	// unblocks their goroutines so wg.Wait below cannot hang on a silent
	// peer that never completed its Hello.
	conns := make([]net.Conn, 0, len(s.conns))
	for conn := range s.conns {
		conns = append(conns, conn)
	}
	s.mu.Unlock()

	s.lnMu.Lock()
	for _, ln := range s.listeners {
		ln.Close()
	}
	s.listeners = nil
	s.lnMu.Unlock()

	for _, conn := range conns {
		conn.Close()
	}
	if s.shard != nil {
		// Closing outbound peer connections unblocks any iteration waiting
		// on an exchange ack.
		s.shard.closePeers()
	}
	s.wg.Wait()

	s.mu.Lock()
	s.eng.Close()
	s.mu.Unlock()
	return nil
}

// ---------------------------------------------------------------------------
// Sessions

// session is one connected endpoint client.
type session struct {
	srv  *Server
	conn net.Conn
	id   uint64 // client label from Hello
	// version is the protocol version the client announced; v2 frames
	// (EpochNotify) are only pushed to sessions that understand them.
	version uint16

	// Write side: wmu serializes frame writes; wbuf is the reused
	// synchronous-path encode buffer.
	wmu  sync.Mutex
	wbuf []byte

	// Asynchronous fan-out with coalescing backpressure: pending holds the
	// latest rate per flow not yet drained by the writer goroutine, so a
	// slow client bounds daemon memory at O(its flows) and always catches
	// up to the *current* allocation, never a backlog of stale ones.
	pmu        sync.Mutex
	pending    map[int64]float64
	pendingSeq uint64
	kick       chan struct{}
	done       chan struct{}

	// lastSent (guarded by pmu, v4 sessions only) shadows the last rate
	// value sent per flow — the xor bit pattern, or the quantized Mbps in
	// QuantizeRates mode — so the writer skips flows whose rate has not
	// changed since the session's last batch. It is per-session state: a
	// reconnect starts a fresh session (and shadow), BumpEpoch clears it,
	// and a flowlet end deletes its entry so a reused flow ID is never
	// suppressed against a retired flow's rate.
	lastSent map[int64]uint64

	// fanBuf and fanEntries are the writer's reused encode buffer and entry
	// scratch; replyEntries is the step-reply path's (the two paths run on
	// different goroutines). Reusing them pins steady-state fan-out at
	// 0 allocs/op (see BenchmarkFanoutFlush).
	fanBuf       []byte
	fanEntries   []wire.RateEntry
	replyEntries []wire.RateEntry

	// flows are the flowlets this session registered (owned). Guarded by
	// srv.mu.
	flows map[core.FlowID]struct{}
}

// ServeConn runs one client session over conn (any net.Conn: loopback TCP
// from Serve, or an in-memory net.Pipe end for deterministic tests). It
// blocks until the peer disconnects or the daemon closes, and returns the
// reason the session ended.
func (s *Server) ServeConn(conn net.Conn) error {
	defer conn.Close()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	sc := wire.NewScanner(conn)

	// Handshake: the first frame must be a compatible Hello — or, on a
	// sharded daemon, a PeerHello opening a shard-to-shard session. The
	// idle timeout covers this first read too, so a connection that never
	// completes its handshake cannot pin a goroutine forever.
	if s.cfg.IdleTimeout > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
			return fmt.Errorf("server: handshake: %w", err)
		}
	}
	typ, payload, err := sc.Next()
	if err != nil {
		return fmt.Errorf("server: handshake read: %w", err)
	}
	if typ == wire.TypePeerHello {
		// Peer sessions are push-driven by the remote daemon's iteration
		// cadence, which this daemon cannot predict; lift the deadline.
		if s.cfg.IdleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Time{}); err != nil {
				return fmt.Errorf("server: handshake: %w", err)
			}
		}
		return s.servePeer(conn, sc, payload)
	}
	if typ != wire.TypeHello {
		return fmt.Errorf("server: handshake: expected hello, got %s", typ)
	}
	hello, err := wire.DecodeHello(payload)
	if err != nil {
		return fmt.Errorf("server: handshake: %w", err)
	}
	if hello.Version > wire.Version {
		return fmt.Errorf("server: client speaks protocol v%d, daemon supports v%d", hello.Version, wire.Version)
	}

	sess := &session{
		srv:      s,
		conn:     conn,
		id:       hello.ClientID,
		version:  hello.Version,
		pending:  make(map[int64]float64),
		lastSent: make(map[int64]uint64),
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		flows:    make(map[core.FlowID]struct{}),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.sessions[sess] = struct{}{}
	s.wg.Add(1) // writer goroutine; under s.mu so it cannot race Close's Wait
	s.mu.Unlock()
	s.stSessions.Add(1)
	s.stActive.Add(1)
	defer s.removeSession(sess)
	go func() {
		defer s.wg.Done()
		sess.writer()
	}()

	// Advertise the highest version both sides speak, so old clients keep
	// working and are never sent v2 frames.
	version := uint16(wire.Version)
	if hello.Version < version {
		version = hello.Version
	}
	welcome := wire.AppendWelcome(nil, wire.Welcome{
		Version:       version,
		Epoch:         s.Epoch(),
		IntervalNanos: uint64(s.cfg.Interval),
	})
	if err := sess.write(welcome); err != nil {
		return fmt.Errorf("server: handshake write: %w", err)
	}
	s.logf("session %d connected from %v", sess.id, conn.RemoteAddr())

	// Frame-rate policing: a token bucket refilled at MaxFrameRate with a
	// one-second burst allowance (floored at one frame, so sub-1 rates
	// throttle instead of disconnecting every client on its first frame).
	var tokens, burst float64
	var lastRefill time.Time
	if s.cfg.MaxFrameRate > 0 {
		burst = s.cfg.MaxFrameRate
		if burst < 1 {
			burst = 1
		}
		tokens = burst
		lastRefill = time.Now()
	}
	for {
		if s.cfg.IdleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
				return fmt.Errorf("server: session %d: %w", sess.id, err)
			}
		}
		typ, payload, err := sc.Next()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return fmt.Errorf("server: session %d: idle for %v, disconnecting", sess.id, s.cfg.IdleTimeout)
			}
			return fmt.Errorf("server: session %d: %w", sess.id, err)
		}
		if s.cfg.MaxFrameRate > 0 {
			now := time.Now()
			tokens += now.Sub(lastRefill).Seconds() * s.cfg.MaxFrameRate
			if tokens > burst {
				tokens = burst
			}
			lastRefill = now
			if tokens < 1 {
				return fmt.Errorf("server: session %d: frame rate exceeded %g frames/s, disconnecting", sess.id, s.cfg.MaxFrameRate)
			}
			tokens--
		}
		switch typ {
		case wire.TypeFlowletAdd:
			m, err := wire.DecodeFlowletAdd(payload)
			if err != nil {
				return fmt.Errorf("server: session %d: %w", sess.id, err)
			}
			if m.Size != 0 && sess.version < 4 {
				return fmt.Errorf("server: session %d: sized flowlet-add on a v%d session", sess.id, sess.version)
			}
			s.enqueue(event{
				flow:   core.FlowID(m.Flow),
				src:    int(m.Src),
				dst:    int(m.Dst),
				weight: m.Weight,
				size:   m.Size,
				sess:   sess,
			})
		case wire.TypeFlowletEnd:
			m, err := wire.DecodeFlowletEnd(payload)
			if err != nil {
				return fmt.Errorf("server: session %d: %w", sess.id, err)
			}
			s.enqueue(event{end: true, flow: core.FlowID(m.Flow), sess: sess})
		case wire.TypeStep:
			m, err := wire.DecodeStep(payload)
			if err != nil {
				return fmt.Errorf("server: session %d: %w", sess.id, err)
			}
			if err := s.iterate(sess, m.Seq); err != nil {
				return err
			}
		default:
			return fmt.Errorf("server: session %d: unexpected %s frame", sess.id, typ)
		}
	}
}

// enqueue appends a flowlet event to the inbox; it is folded into the
// allocator at the next iteration boundary.
func (s *Server) enqueue(ev event) {
	s.stEvents.Add(1)
	s.mu.Lock()
	s.inbox = append(s.inbox, ev)
	s.mu.Unlock()
}

// removeSession detaches a session and schedules cleanup of its flowlets:
// every flow it still owns is retired at the next iteration boundary, so a
// crashed endpoint's flowlets do not hold fabric shares forever.
func (s *Server) removeSession(sess *session) {
	s.mu.Lock()
	if _, ok := s.sessions[sess]; !ok {
		s.mu.Unlock()
		return
	}
	delete(s.sessions, sess)
	var orphans []core.FlowID
	if s.draining {
		// A draining daemon keeps disconnected clients' flows registered:
		// they are about to be written to the snapshot (and have already
		// been replicated to the successor shard), so a cleanup sweep here
		// would retire exactly the flows a restarted or adopting daemon
		// needs. Clients fail over warm at last-known rates regardless.
		// The flows become unowned, claimable by a reconnecting client.
		for id := range sess.flows {
			s.owners[id] = nil
		}
	} else {
		orphans = make([]core.FlowID, 0, len(sess.flows))
		for id := range sess.flows {
			orphans = append(orphans, id)
		}
		sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
		for _, id := range orphans {
			s.inbox = append(s.inbox, event{end: true, flow: id, sess: sess, cleanup: true})
		}
	}
	s.mu.Unlock()
	close(sess.done)
	sess.conn.Close()
	s.stActive.Add(-1)
	s.logf("session %d disconnected (%d flowlets scheduled for cleanup)", sess.id, len(orphans))
}

// write sends one pre-encoded frame buffer on the session connection.
func (sess *session) write(frame []byte) error {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	_, err := sess.conn.Write(frame)
	return err
}

// queueUpdate records a rate update for asynchronous delivery, coalescing
// with any undelivered update for the same flow (latest rate wins). Called
// with srv.mu held.
func (sess *session) queueUpdate(flow int64, rate float64, seq uint64) {
	sess.pmu.Lock()
	if _, dup := sess.pending[flow]; dup {
		sess.srv.stCoalesced.Add(1)
	}
	sess.pending[flow] = rate
	sess.pendingSeq = seq
	sess.pmu.Unlock()
	select {
	case sess.kick <- struct{}{}:
	default:
	}
}

// writer drains the pending map into rate frames. One goroutine per
// session, so a slow client never blocks the allocator loop or its peers.
func (sess *session) writer() {
	for {
		select {
		case <-sess.done:
			return
		case <-sess.kick:
		}
		if !sess.flushPending() {
			sess.srv.removeSession(sess)
			return
		}
	}
}

// shadowBits is the value the last-sent shadow compares: the rate's float64
// bit pattern, or its quantized Mbps when the daemon quantizes v4 fan-out.
func (sess *session) shadowBits(rate float64) uint64 {
	if sess.srv.cfg.QuantizeRates {
		return wire.QuantizeRate(rate)
	}
	return math.Float64bits(rate)
}

// flushPending drains the pending map into one burst of RateBatch (v3) or
// RateDelta (v4) frames, reporting false on a write error. The drain and the
// write happen under one wmu hold: once a step reply (also serialized by
// wmu) has purged a superseded rate from the pending map, no stale copy of
// it can reach the wire afterwards. Buffers and entry scratch live on the
// session, so the steady state allocates nothing.
func (sess *session) flushPending() bool {
	sess.wmu.Lock()
	sess.pmu.Lock()
	if len(sess.pending) == 0 {
		sess.pmu.Unlock()
		sess.wmu.Unlock()
		return true
	}
	delta := sess.version >= 4
	drained := 0
	entries := sess.fanEntries[:0]
	for flow, rate := range sess.pending {
		delete(sess.pending, flow)
		drained++
		if delta {
			// Skip flows whose rate is unchanged since this session's last
			// sent value. The engine's own notification threshold already
			// suppresses unchanged rates at the source, so this almost
			// never fires in lossless mode — but quantization collapses
			// nearby rates, and the shadow is what makes that cheap.
			bits := sess.shadowBits(rate)
			if prev, seen := sess.lastSent[flow]; seen && prev == bits {
				continue
			}
			sess.lastSent[flow] = bits
		}
		entries = append(entries, wire.RateEntry{Flow: flow, Rate: rate})
	}
	seq := sess.pendingSeq
	sess.pmu.Unlock()
	sess.fanEntries = entries
	sess.srv.stFanoutFixed.Add(fixedRateBytes(drained))
	if len(entries) == 0 {
		sess.wmu.Unlock()
		return true
	}
	// Deterministic wire order regardless of map iteration (and small flow
	// deltas for the v4 encoding), chunked to the per-frame entry limit.
	slices.SortFunc(entries, func(a, b wire.RateEntry) int {
		return cmp.Compare(a.Flow, b.Flow)
	})
	maxChunk := maxBatchEntries
	if delta {
		maxChunk = maxRateDeltaEntries
	}
	buf := sess.fanBuf
	writeErr := false
	var sent int64
	for start := 0; start < len(entries); start += maxChunk {
		end := min(start+maxChunk, len(entries))
		if delta {
			buf = wire.AppendRateDelta(buf[:0], seq, sess.srv.cfg.QuantizeRates, entries[start:end])
		} else {
			buf = wire.AppendRateBatch(buf[:0], seq, entries[start:end])
		}
		sent += int64(len(buf))
		if _, err := sess.conn.Write(buf); err != nil {
			writeErr = true
			break
		}
		sess.srv.stBatches.Add(1)
		sess.srv.stUpdates.Add(int64(end - start))
	}
	sess.fanBuf = buf
	sess.wmu.Unlock()
	sess.srv.stFanoutBytes.Add(sent)
	return !writeErr
}

// fixedRateBytes is the wire cost of n rate updates as fixed v3 RateBatch
// frames with v3 chunking — the baseline of the FanoutBytesFixed counter.
func fixedRateBytes(n int) int64 {
	if n == 0 {
		return int64(wire.RateBatchSize(0))
	}
	var b int64
	for n > 0 {
		c := min(n, maxBatchEntries)
		b += int64(wire.RateBatchSize(c))
		n -= c
	}
	return b
}

// ---------------------------------------------------------------------------
// The allocator loop

// iterate runs one allocator iteration: drain the inbox, step the engine,
// and fan updates out. When stepper is non-nil the iteration was requested
// by a Step frame and the stepper synchronously receives a reply batch
// (possibly empty) echoing stepSeq with wire.StepReplyFlag set; updates owned
// by other sessions go through their asynchronous writers.
func (s *Server) iterate(stepper *session, stepSeq uint64) error {
	if s.shard != nil {
		// Serialize the whole fold → iterate → exchange sequence across
		// concurrent iterations so peers always observe bundles in
		// iteration order.
		s.shard.sendMu.Lock()
		defer s.shard.sendMu.Unlock()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	if s.shard != nil {
		s.foldExchangeLocked()
		if s.shard.takeover {
			s.processDeathsLocked()
		}
	}
	churn := len(s.inbox)
	s.drainInboxLocked()

	start := time.Now()
	updates := s.eng.Iterate()
	latency := time.Since(start)
	s.seq++
	seq := s.seq
	s.loop.Record(latency.Seconds(), len(updates))
	if s.telemetry != nil {
		s.recordTelemetryLocked(seq, latency.Seconds(), len(updates), churn)
	}

	var reply []byte
	replyCount, replyBatches := 0, 0
	if stepper != nil {
		for _, u := range updates {
			if s.owners[u.Flow] == stepper {
				replyCount++
			}
		}
		// Chunk oversized update sets so no frame exceeds the uint24
		// payload limit. Non-final chunks carry the iteration sequence
		// (the client folds them in like asynchronous fan-out); only the
		// final chunk carries the step-reply barrier.
		reply = stepper.wbuf[:0]
		if stepper.version >= 4 {
			// v4 step replies use the delta encoding in engine update
			// order: zigzag flow deltas cost one extra bit for unsorted
			// IDs, never correctness, and preserving order keeps decoded
			// update sequences identical to the v3 wire.
			entries := stepper.replyEntries[:0]
			for _, u := range updates {
				if s.owners[u.Flow] == stepper {
					entries = append(entries, wire.RateEntry{Flow: int64(u.Flow), Rate: u.Rate})
				}
			}
			stepper.replyEntries = entries
			if len(entries) == 0 {
				reply = wire.AppendRateDelta(reply, stepSeq|wire.StepReplyFlag, s.cfg.QuantizeRates, nil)
				replyBatches = 1
			} else {
				for start := 0; start < len(entries); start += maxRateDeltaEntries {
					end := min(start+maxRateDeltaEntries, len(entries))
					hdrSeq := seq
					if end == len(entries) {
						hdrSeq = stepSeq | wire.StepReplyFlag
					}
					reply = wire.AppendRateDelta(reply, hdrSeq, s.cfg.QuantizeRates, entries[start:end])
					replyBatches++
				}
			}
		} else if replyCount == 0 {
			reply = wire.AppendRateBatchHeader(reply, stepSeq|wire.StepReplyFlag, 0)
			replyBatches = 1
		} else {
			emitted, chunkLeft := 0, 0
			for _, u := range updates {
				if s.owners[u.Flow] != stepper {
					continue
				}
				if chunkLeft == 0 {
					n := replyCount - emitted
					hdrSeq := seq
					if n <= maxBatchEntries {
						hdrSeq = stepSeq | wire.StepReplyFlag
					} else {
						n = maxBatchEntries
					}
					reply = wire.AppendRateBatchHeader(reply, hdrSeq, n)
					chunkLeft = n
					replyBatches++
				}
				reply = wire.AppendRateEntry(reply, wire.RateEntry{Flow: int64(u.Flow), Rate: u.Rate})
				chunkLeft--
				emitted++
			}
		}
		stepper.wbuf = reply
		// These rates supersede anything still queued for asynchronous
		// delivery (from interleaved ticker iterations): purge them so the
		// writer cannot emit a stale rate after the reply. On v4 sessions
		// also record the last-sent shadow, so a later asynchronous flush
		// can suppress a resend of the identical rate. Step replies
		// themselves never consult the shadow — every update the engine
		// surfaces reaches the stepping client, keeping step-driven runs
		// (and the committed baselines) byte-identical across versions.
		stepper.pmu.Lock()
		for _, u := range updates {
			if s.owners[u.Flow] == stepper {
				delete(stepper.pending, int64(u.Flow))
				if stepper.version >= 4 {
					stepper.lastSent[int64(u.Flow)] = stepper.shadowBits(u.Rate)
				}
			}
		}
		stepper.pmu.Unlock()
	}
	for _, u := range updates {
		owner := s.owners[u.Flow]
		if owner != nil && owner != stepper {
			owner.queueUpdate(int64(u.Flow), u.Rate, seq)
		}
	}
	var peers []*peerConn
	if s.shard != nil {
		peers = s.buildExchangeLocked(seq)
	}
	s.mu.Unlock()

	// Push the boundary exchange before replying to a stepper: once the
	// step returns, this iteration's digests and snapshots are guaranteed
	// to sit in every live peer's inbox, which is what makes step-driven
	// cluster runs deterministic.
	if len(peers) > 0 {
		s.sendExchange(peers)
	}

	if stepper != nil {
		// Count before writing: the write returning is what unblocks the
		// stepping client, so a client sampling Stats right after Step must
		// already see this reply (benchmark counters stay deterministic).
		s.stBatches.Add(int64(replyBatches))
		s.stUpdates.Add(int64(replyCount))
		s.stFanoutBytes.Add(int64(len(reply)))
		s.stFanoutFixed.Add(fixedRateBytes(replyCount))
		if err := stepper.write(reply); err != nil {
			return fmt.Errorf("server: session %d: step reply: %w", stepper.id, err)
		}
	}
	return nil
}

// maxBatchEntries bounds entries per RateBatch frame (a variable so tests
// can exercise chunking without a million flows).
var maxBatchEntries = wire.MaxBatchEntries

// maxRateDeltaEntries bounds entries per RateDelta frame, sized for the
// worst-case (incompressible) entry so a full chunk can never overflow the
// uint24 payload. A variable for the same testing reason as above.
var maxRateDeltaEntries = wire.MaxRateDeltaEntries

// drainInboxLocked folds pending flowlet events into the engine, in arrival
// order, with duplicate/unknown defense. Called with s.mu held.
func (s *Server) drainInboxLocked() {
	for _, ev := range s.inbox {
		if ev.end {
			owner, ok := s.owners[ev.flow]
			if !ok {
				s.stUnknown.Add(1)
				continue
			}
			if ev.cleanup && owner != ev.sess {
				// Stale orphan sweep: the flow was re-registered (by a
				// reconnected client under a new session) after the dead
				// session's cleanup was scheduled. The new owner's
				// registration stands.
				continue
			}
			if err := s.eng.FlowletEnd(ev.flow); err != nil {
				s.logf("flowlet %d end: %v", ev.flow, err)
				continue
			}
			delete(s.owners, ev.flow)
			delete(s.unowned, ev.flow)
			if owner != nil {
				delete(owner.flows, ev.flow)
				// Drop any undelivered rate and the delta shadow: a later
				// flowlet reusing this ID must get its first rate on the
				// wire even if it happens to equal the retired flow's last.
				owner.pmu.Lock()
				delete(owner.pending, int64(ev.flow))
				delete(owner.lastSent, int64(ev.flow))
				owner.pmu.Unlock()
			}
			continue
		}
		if owner, dup := s.owners[ev.flow]; dup {
			// Adoption without churn: a flow restored from a snapshot or
			// seeded from a peer replica sits in the engine unowned. When a
			// reconnecting client re-registers it with the same route and
			// weight, ownership transfers in place — the engine never sees a
			// retire/re-add pair, so prices and rates are undisturbed and a
			// warm restart costs zero registrations.
			meta, unowned := s.unowned[ev.flow]
			if owner == nil && unowned && ev.sess != nil {
				if meta.src == ev.src && meta.dst == ev.dst && meta.weight == ev.weight {
					if _, live := s.sessions[ev.sess]; live {
						s.owners[ev.flow] = ev.sess
						ev.sess.flows[ev.flow] = struct{}{}
						delete(s.unowned, ev.flow)
						s.stAdopted.Add(1)
					}
					continue
				}
				// Same ID, different registration: the stored flow is stale.
				// Retire it and fall through to a fresh registration.
				if err := s.eng.FlowletEnd(ev.flow); err != nil {
					s.logf("flowlet %d stale-adopt end: %v", ev.flow, err)
					continue
				}
				delete(s.owners, ev.flow)
				delete(s.unowned, ev.flow)
			} else {
				s.stDupAdds.Add(1)
				continue
			}
		}
		if s.draining {
			// A draining daemon admits no new flowlets: it is about to hand
			// its state to a successor, and anything admitted now would miss
			// the snapshot already replicated to peers.
			s.stDrainRej.Add(1)
			continue
		}
		if ev.sess != nil {
			if _, live := s.sessions[ev.sess]; !live {
				// The registering session disconnected before this add
				// was folded in; its one-shot cleanup has already run,
				// so registering now would leak the flow forever.
				s.stRejected.Add(1)
				continue
			}
			if s.cfg.MaxSessionFlows > 0 && len(ev.sess.flows) >= s.cfg.MaxSessionFlows {
				s.stLimited.Add(1)
				s.logf("flowlet %d add dropped: session %d at its %d-flow limit", ev.flow, ev.sess.id, s.cfg.MaxSessionFlows)
				continue
			}
		}
		if s.shard != nil && !s.shard.ownsFlow(ev.src, ev.dst) {
			// A sharded daemon allocates only flowlets sourced in its own
			// racks; anything else belongs to a peer and registering it
			// here would double-allocate its path.
			s.stRejected.Add(1)
			s.logf("flowlet %d add rejected: server %d is not owned by shard %d/%d", ev.flow, ev.src, s.cfg.ShardIndex, s.cfg.NumShards)
			continue
		}
		if err := s.eng.FlowletStartSized(ev.flow, ev.src, ev.dst, ev.weight, ev.size); err != nil {
			s.stRejected.Add(1)
			s.logf("flowlet %d add rejected: %v", ev.flow, err)
			continue
		}
		s.owners[ev.flow] = ev.sess
		if ev.sess != nil {
			ev.sess.flows[ev.flow] = struct{}{}
		}
	}
	s.inbox = s.inbox[:0]
}

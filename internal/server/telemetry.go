package server

import (
	"math"
	"sync/atomic"

	"repro/internal/telemetry"
	"repro/internal/topology"
)

// serverTelemetry is the daemon's hook into the telemetry layer. All fields
// are wired before traffic (RegisterMetrics / AttachFlightRecorder) and then
// only read on the iteration path, so no extra synchronization is needed
// beyond s.mu, which the iterate hook already holds.
type serverTelemetry struct {
	// hist and churn are written inside iterate; nil until RegisterMetrics.
	hist  *telemetry.Histogram
	churn *telemetry.Counter

	// rec and the price-residual buffers are nil until AttachFlightRecorder.
	rec    *telemetry.FlightRecorder
	pricer interface {
		LinkPrices(links []topology.LinkID, prices []float64)
	}
	links     []topology.LinkID
	prev, cur []float64

	// Previous scrape points of the lifetime counters, so FlightSamples
	// carry per-iteration deltas instead of monotonic totals.
	prevFolds, prevStale, prevFanout, prevFanoutFixed int64
}

// tel returns the server's telemetry state, creating it on first use. Callers
// must hold s.mu.
func (s *Server) telLocked() *serverTelemetry {
	if s.telemetry == nil {
		s.telemetry = &serverTelemetry{}
	}
	return s.telemetry
}

// IterationLatencyBuckets are the histogram bounds for the iteration-latency
// series: 1 µs to ~262 ms, exponential — the paper's ~10 µs NED budget sits
// in the fourth bucket, so budget violations are visible at a glance.
var IterationLatencyBuckets = telemetry.ExpBuckets(1e-6, 4, 10)

// RegisterMetrics exposes every daemon counter surface in reg, all under the
// flowtune_ prefix and carrying the given labels (the cluster admin passes
// shard="i"). Existing atomic counters are bound at scrape time — the hot
// path keeps its plain atomics and nothing is double-counted. The iteration
// latency histogram and churn counter are the only series recorded inside
// the loop, both allocation-free. Call before serving traffic; registering
// the same labels twice panics (duplicate series).
func (s *Server) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	counter := func(name, help string, v *atomic.Int64) {
		reg.CounterFunc(name, help, func() float64 { return float64(v.Load()) }, labels...)
	}
	dropped := func(reason string, v *atomic.Int64) {
		reg.CounterFunc("flowtune_events_dropped_total",
			"Flowlet events not applied to the engine, by reason.",
			func() float64 { return float64(v.Load()) },
			withLabel(labels, telemetry.Label{Key: "reason", Value: reason})...)
	}
	wireBytes := func(direction, encoding string, v *atomic.Int64) {
		reg.CounterFunc("flowtune_wire_bytes_total",
			"Bytes attributed to rate fan-out and the boundary exchange, actual encoding vs the fixed v3 cost of the same payloads.",
			func() float64 { return float64(v.Load()) },
			withLabel(labels,
				telemetry.Label{Key: "direction", Value: direction},
				telemetry.Label{Key: "encoding", Value: encoding})...)
	}

	counter("flowtune_sessions_accepted_total", "Endpoint sessions accepted since start.", &s.stSessions)
	reg.GaugeFunc("flowtune_sessions_active", "Endpoint sessions currently connected.",
		func() float64 { return float64(s.stActive.Load()) }, labels...)
	counter("flowtune_events_received_total", "Flowlet start/end events received.", &s.stEvents)
	dropped("duplicate_add", &s.stDupAdds)
	dropped("unknown_end", &s.stUnknown)
	dropped("rejected_add", &s.stRejected)
	dropped("limited_add", &s.stLimited)
	dropped("drain_reject", &s.stDrainRej)
	counter("flowtune_updates_sent_total", "Rate updates written to sessions.", &s.stUpdates)
	counter("flowtune_updates_coalesced_total", "Rate updates superseded before delivery.", &s.stCoalesced)
	counter("flowtune_update_batches_total", "Rate-update batches written.", &s.stBatches)
	counter("flowtune_peer_exchanges_total", "Boundary-exchange bundles sent to peer shards.", &s.stPeerEx)
	counter("flowtune_peer_rejected_total", "Peer bundles rejected (bad epoch or shape).", &s.stPeerRej)
	counter("flowtune_adopted_flows_total", "Flows adopted from failed peer shards.", &s.stAdopted)
	counter("flowtune_takeovers_total", "Peer-shard takeovers performed.", &s.stTakeovers)
	counter("flowtune_exchange_folds_total", "Peer boundary bundles folded into iterations.", &s.stExchFolds)
	counter("flowtune_exchange_staleness_iters_total", "Summed age, in iterations, of folded peer bundles.", &s.stExchStale)
	wireBytes("fanout", "wire", &s.stFanoutBytes)
	wireBytes("fanout", "fixed_v3", &s.stFanoutFixed)
	wireBytes("exchange", "wire", &s.stExchBytes)
	wireBytes("exchange", "fixed_v3", &s.stExchFixed)

	reg.GaugeFunc("flowtune_flows", "Flows currently registered in the engine.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.eng.NumFlows())
	}, labels...)
	reg.GaugeFunc("flowtune_epoch", "Allocator epoch announced in handshakes.",
		func() float64 { return float64(s.epoch.Load()) }, labels...)
	reg.GaugeFunc("flowtune_draining", "1 while the daemon is draining, else 0.", func() float64 {
		if s.Draining() {
			return 1
		}
		return 0
	}, labels...)

	reg.CounterFunc("flowtune_iterations_total", "Allocator iterations run.",
		func() float64 { return float64(s.loop.Snapshot().Iterations) }, labels...)
	reg.GaugeFunc("flowtune_iteration_latency_p50_seconds", "Median iteration latency over the recent window.",
		func() float64 { return s.loop.Snapshot().LatencySec.P50 }, labels...)
	reg.GaugeFunc("flowtune_iteration_latency_p99_seconds", "99th-percentile iteration latency over the recent window.",
		func() float64 { return s.loop.Snapshot().LatencySec.P99 }, labels...)
	reg.GaugeFunc("flowtune_iterations_per_second", "Busy-time iteration throughput.",
		func() float64 { return s.loop.Snapshot().IterationsPerSec }, labels...)

	hist := reg.Histogram("flowtune_iteration_latency_seconds",
		"Iteration wall-clock latency distribution.", IterationLatencyBuckets, labels...)
	churn := reg.Counter("flowtune_churn_events_total",
		"Flowlet add/end events folded in at iteration boundaries.", labels...)

	s.mu.Lock()
	t := s.telLocked()
	t.hist = hist
	t.churn = churn
	s.mu.Unlock()
}

// withLabel returns base extended with extra labels, copying so label slices
// registered under different reasons never alias.
func withLabel(base []telemetry.Label, extra ...telemetry.Label) []telemetry.Label {
	out := make([]telemetry.Label, 0, len(base)+len(extra))
	out = append(out, base...)
	return append(out, extra...)
}

// AttachFlightRecorder starts sampling the convergence flight recorder at
// every iteration boundary: objective, max price residual, exchange activity,
// fan-out byte deltas, churn, and latency. The price-residual buffers are
// allocated here, once — recording itself is allocation-free. Call before
// serving traffic.
func (s *Server) AttachFlightRecorder(rec *telemetry.FlightRecorder) {
	n := s.cfg.Topology.NumLinks()
	links := make([]topology.LinkID, n)
	for i := range links {
		links[i] = topology.LinkID(i)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.telLocked()
	t.rec = rec
	t.links = links
	t.prev = make([]float64, n)
	t.cur = make([]float64, n)
	if pricer, ok := s.eng.(interface {
		LinkPrices(links []topology.LinkID, prices []float64)
	}); ok {
		t.pricer = pricer
		// Seed the residual baseline with the current prices so the first
		// sample measures the first iteration's movement, not the distance
		// from zero.
		pricer.LinkPrices(t.links, t.prev)
	}
}

// FlightRecorder returns the attached recorder (nil when none).
func (s *Server) FlightRecorder() *telemetry.FlightRecorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.telemetry == nil {
		return nil
	}
	return s.telemetry.rec
}

// recordTelemetryLocked samples the telemetry surfaces after one iteration.
// Called from iterate with s.mu held; everything on this path is
// allocation-free (pinned by TestIterateZeroAllocsWithTelemetry).
func (s *Server) recordTelemetryLocked(seq uint64, latencySec float64, updates, churn int) {
	t := s.telemetry
	if t.hist != nil {
		t.hist.Observe(latencySec)
	}
	if t.churn != nil {
		t.churn.Add(int64(churn))
	}
	if t.rec == nil {
		return
	}
	var residual float64
	if t.pricer != nil {
		t.pricer.LinkPrices(t.links, t.cur)
		for i, p := range t.cur {
			if d := math.Abs(p - t.prev[i]); d > residual {
				residual = d
			}
		}
		t.prev, t.cur = t.cur, t.prev
	}
	obj := s.eng.Objective()
	if math.IsInf(obj, 0) || math.IsNaN(obj) {
		obj = 0 // JSON cannot carry non-finite values; see FlightSample.Objective
	}
	folds := s.stExchFolds.Load()
	stale := s.stExchStale.Load()
	fan := s.stFanoutBytes.Load()
	fanFixed := s.stFanoutFixed.Load()
	t.rec.Record(telemetry.FlightSample{
		Iteration:        seq,
		Objective:        obj,
		MaxPriceResidual: residual,
		ExchangeFolds:    folds - t.prevFolds,
		StalenessIters:   stale - t.prevStale,
		FanoutBytes:      fan - t.prevFanout,
		FanoutBytesFixed: fanFixed - t.prevFanoutFixed,
		ChurnEvents:      churn,
		Updates:          updates,
		LatencySec:       latencySec,
	})
	t.prevFolds, t.prevStale, t.prevFanout, t.prevFanoutFixed = folds, stale, fan, fanFixed
}

package server

import (
	"repro/internal/core"
	"repro/internal/topology"
)

// engine abstracts the daemon's optimizer: the sequential NED allocator or
// the FlowBlock/LinkBlock parallel allocator, both behind churn-at-iteration
// semantics.
type engine interface {
	FlowletStart(id core.FlowID, src, dst int, weight float64) error
	// FlowletStartSized is FlowletStart carrying the endpoint's wire v4
	// flowlet-size hint in bytes (0 = unknown), recorded in the flow
	// metadata and ignored by the solvers.
	FlowletStartSized(id core.FlowID, src, dst int, weight float64, size int64) error
	FlowletEnd(id core.FlowID) error
	// Iterate runs one allocation and returns the rate updates whose
	// change exceeded the notification threshold. The returned slice is
	// only valid until the next call.
	Iterate() []core.RateUpdate
	// Objective returns the NUM objective Σ U(x) at the rates of the most
	// recent Iterate (0 with no flows; -Inf while rates are still zero).
	// Allocation-free in steady state — it sits on the telemetry path.
	Objective() float64
	NumFlows() int
	Rates() map[core.FlowID]float64
	// SetLinkCapacity changes one link's raw capacity in place; the next
	// Iterate re-prices against it (see core.Allocator.SetLinkCapacity).
	SetLinkCapacity(l topology.LinkID, capacity float64) error
	Close()
}

// snapshotter is implemented by engines whose live flow set can be exported
// in canonical order — the basis of flow-state snapshots, peer replicas, and
// warm restart. Both engines support it, and both also implement the
// exchanger interface (see cluster.go) for price export and the sharded
// boundary exchange.
type snapshotter interface {
	LiveFlows() []core.ParallelFlow
}

// coreEngine adapts the sequential core.Allocator.
type coreEngine struct {
	alloc *core.Allocator
}

func newCoreEngine(cfg Config) (*coreEngine, error) {
	alloc, err := core.NewAllocator(core.Config{
		Topology:        cfg.Topology,
		Gamma:           cfg.Gamma,
		UpdateThreshold: cfg.UpdateThreshold,
	})
	if err != nil {
		return nil, err
	}
	return &coreEngine{alloc: alloc}, nil
}

func (e *coreEngine) FlowletStart(id core.FlowID, src, dst int, weight float64) error {
	return e.alloc.FlowletStart(id, src, dst, weight)
}
func (e *coreEngine) FlowletStartSized(id core.FlowID, src, dst int, weight float64, size int64) error {
	return e.alloc.FlowletStartSized(id, src, dst, weight, size)
}
func (e *coreEngine) FlowletEnd(id core.FlowID) error { return e.alloc.FlowletEnd(id) }
func (e *coreEngine) Iterate() []core.RateUpdate      { return e.alloc.Iterate() }
func (e *coreEngine) Objective() float64              { return e.alloc.Objective() }
func (e *coreEngine) NumFlows() int                   { return e.alloc.NumFlows() }
func (e *coreEngine) Rates() map[core.FlowID]float64  { return e.alloc.Rates() }
func (e *coreEngine) Close()                          {}
func (e *coreEngine) SetLinkCapacity(l topology.LinkID, capacity float64) error {
	return e.alloc.SetLinkCapacity(l, capacity)
}

func (e *coreEngine) LiveFlows() []core.ParallelFlow { return e.alloc.LiveFlows() }

// The sequential engine supports the sharded boundary exchange by
// delegating to the allocator's boundary API (see internal/core/boundary.go
// and this package's cluster.go).

func (e *coreEngine) SetExternalLoads(links []topology.LinkID, loads, hdiag []float64) {
	e.alloc.SetExternalLoads(links, loads, hdiag)
}
func (e *coreEngine) PinPrices(links []topology.LinkID, prices []float64) {
	e.alloc.PinPrices(links, prices)
}
func (e *coreEngine) BoundaryDigest(links []topology.LinkID, loads, hdiag []float64) error {
	return e.alloc.BoundaryDigest(links, loads, hdiag)
}
func (e *coreEngine) LinkPrices(links []topology.LinkID, prices []float64) {
	e.alloc.LinkPrices(links, prices)
}
func (e *coreEngine) SeedPrices(links []topology.LinkID, prices []float64) {
	e.alloc.SeedPrices(links, prices)
}
func (e *coreEngine) UnpinPrices(links []topology.LinkID) {
	e.alloc.UnpinPrices(links)
}

// parallelEngine adapts the multicore core.ParallelAllocator, which now
// maintains its flow set incrementally: FlowletStart/FlowletEnd are O(route
// length) CSR operations on the owning FlowBlock, so the engine keeps no
// shadow flow list, no dirty flag, and performs no full reload at iteration
// boundaries. Errors surface directly from FlowletStart (a bad route is
// rejected — and counted — when the add is folded in, never swallowed at
// reload time). Update suppression runs inside the allocator over dense
// per-FlowBlock lastNotified arrays carried alongside the CSR, replacing the
// former per-flow map lookup in the update walk.
type parallelEngine struct {
	pa        *core.ParallelAllocator
	threshold float64
	updates   []core.RateUpdate // reused across Iterate calls
}

func newParallelEngine(cfg Config) (*parallelEngine, error) {
	pa, err := core.NewParallelAllocator(core.ParallelConfig{
		Topology:   cfg.Topology,
		Blocks:     cfg.Blocks,
		Gamma:      cfg.Gamma,
		Headroom:   cfg.UpdateThreshold,
		Normalize:  true,
		PinWorkers: cfg.PinWorkers,
	})
	if err != nil {
		return nil, err
	}
	return &parallelEngine{pa: pa, threshold: cfg.UpdateThreshold}, nil
}

func (e *parallelEngine) FlowletStart(id core.FlowID, src, dst int, weight float64) error {
	return e.pa.FlowletStart(id, src, dst, weight)
}

func (e *parallelEngine) FlowletStartSized(id core.FlowID, src, dst int, weight float64, size int64) error {
	return e.pa.FlowletStartSized(id, src, dst, weight, size)
}

func (e *parallelEngine) FlowletEnd(id core.FlowID) error { return e.pa.FlowletEnd(id) }

func (e *parallelEngine) Iterate() []core.RateUpdate {
	// Skip the iteration entirely while idle, mirroring the sequential
	// allocator: prices neither advance nor decay when no flows are
	// registered.
	if e.pa.NumFlows() == 0 {
		return nil
	}
	e.pa.Iterate()
	e.updates = e.pa.AppendUpdates(e.threshold, e.updates[:0])
	return e.updates
}

func (e *parallelEngine) Objective() float64 { return e.pa.Objective() }

func (e *parallelEngine) NumFlows() int { return e.pa.NumFlows() }

func (e *parallelEngine) Rates() map[core.FlowID]float64 { return e.pa.Rates() }

func (e *parallelEngine) Close() { e.pa.Close() }

func (e *parallelEngine) SetLinkCapacity(l topology.LinkID, capacity float64) error {
	return e.pa.SetLinkCapacity(l, capacity)
}

func (e *parallelEngine) LiveFlows() []core.ParallelFlow { return e.pa.LiveFlows() }

// The multicore engine supports the sharded boundary exchange by delegating
// to the parallel allocator's boundary API (see
// internal/core/parallel_boundary.go): external loads and pinned prices are
// folded into the owning LinkBlock at the merge/price-update phases, and
// digests are exported from the owner FlowBlocks' merged accumulators in the
// same canonical link order the sequential engine uses — so a multicore shard
// speaks bit-identical wire bytes on partition-local traffic.

func (e *parallelEngine) SetExternalLoads(links []topology.LinkID, loads, hdiag []float64) {
	e.pa.SetExternalLoads(links, loads, hdiag)
}
func (e *parallelEngine) PinPrices(links []topology.LinkID, prices []float64) {
	e.pa.PinPrices(links, prices)
}
func (e *parallelEngine) BoundaryDigest(links []topology.LinkID, loads, hdiag []float64) error {
	return e.pa.BoundaryDigest(links, loads, hdiag)
}
func (e *parallelEngine) LinkPrices(links []topology.LinkID, prices []float64) {
	e.pa.LinkPrices(links, prices)
}
func (e *parallelEngine) SeedPrices(links []topology.LinkID, prices []float64) {
	e.pa.SeedPrices(links, prices)
}
func (e *parallelEngine) UnpinPrices(links []topology.LinkID) {
	e.pa.UnpinPrices(links)
}

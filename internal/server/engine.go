package server

import (
	"repro/internal/core"
	"repro/internal/topology"
)

// engine abstracts the daemon's optimizer: the sequential NED allocator or
// the FlowBlock/LinkBlock parallel allocator, both behind churn-at-iteration
// semantics.
type engine interface {
	FlowletStart(id core.FlowID, src, dst int, weight float64) error
	FlowletEnd(id core.FlowID) error
	// Iterate runs one allocation and returns the rate updates whose
	// change exceeded the notification threshold. The returned slice is
	// only valid until the next call.
	Iterate() []core.RateUpdate
	NumFlows() int
	Rates() map[core.FlowID]float64
	Close()
}

// coreEngine adapts the sequential core.Allocator.
type coreEngine struct {
	alloc *core.Allocator
}

func newCoreEngine(cfg Config) (*coreEngine, error) {
	alloc, err := core.NewAllocator(core.Config{
		Topology:        cfg.Topology,
		Gamma:           cfg.Gamma,
		UpdateThreshold: cfg.UpdateThreshold,
	})
	if err != nil {
		return nil, err
	}
	return &coreEngine{alloc: alloc}, nil
}

func (e *coreEngine) FlowletStart(id core.FlowID, src, dst int, weight float64) error {
	return e.alloc.FlowletStart(id, src, dst, weight)
}
func (e *coreEngine) FlowletEnd(id core.FlowID) error { return e.alloc.FlowletEnd(id) }
func (e *coreEngine) Iterate() []core.RateUpdate      { return e.alloc.Iterate() }
func (e *coreEngine) NumFlows() int                   { return e.alloc.NumFlows() }
func (e *coreEngine) Rates() map[core.FlowID]float64  { return e.alloc.Rates() }
func (e *coreEngine) Close()                          {}

// parallelEngine adapts the multicore core.ParallelAllocator. The parallel
// allocator takes whole flow sets, so the engine keeps the live flow list,
// reloads it on churn (SetFlows is CSR-compiled, so this is a linear pass),
// and layers the sequential allocator's threshold-based update suppression
// on top, tracking the rate last notified per flow.
type parallelEngine struct {
	pa        *core.ParallelAllocator
	topo      *topology.Topology
	threshold float64

	flows        []core.ParallelFlow
	lastNotified []float64
	index        map[core.FlowID]int
	dirty        bool

	updates []core.RateUpdate // reused across Iterate calls
}

func newParallelEngine(cfg Config) (*parallelEngine, error) {
	pa, err := core.NewParallelAllocator(core.ParallelConfig{
		Topology:  cfg.Topology,
		Blocks:    cfg.Blocks,
		Gamma:     cfg.Gamma,
		Headroom:  cfg.UpdateThreshold,
		Normalize: true,
	})
	if err != nil {
		return nil, err
	}
	return &parallelEngine{
		pa:        pa,
		topo:      cfg.Topology,
		threshold: cfg.UpdateThreshold,
		index:     make(map[core.FlowID]int),
	}, nil
}

func (e *parallelEngine) FlowletStart(id core.FlowID, src, dst int, weight float64) error {
	// Validate the route now so a bad add is rejected (and counted)
	// immediately, mirroring the sequential engine; SetFlows would only
	// surface it at the next iteration.
	if _, err := e.topo.Route(src, dst, int(id)); err != nil {
		return err
	}
	e.index[id] = len(e.flows)
	e.flows = append(e.flows, core.ParallelFlow{ID: id, Src: src, Dst: dst, Weight: weight})
	e.lastNotified = append(e.lastNotified, 0)
	e.dirty = true
	return nil
}

func (e *parallelEngine) FlowletEnd(id core.FlowID) error {
	idx, ok := e.index[id]
	if !ok {
		return nil
	}
	last := len(e.flows) - 1
	if idx != last {
		e.flows[idx] = e.flows[last]
		e.lastNotified[idx] = e.lastNotified[last]
		e.index[e.flows[idx].ID] = idx
	}
	e.flows = e.flows[:last]
	e.lastNotified = e.lastNotified[:last]
	delete(e.index, id)
	e.dirty = true
	return nil
}

func (e *parallelEngine) Iterate() []core.RateUpdate {
	if len(e.flows) == 0 {
		return nil
	}
	if e.dirty {
		if err := e.pa.SetFlows(e.flows); err != nil {
			// A flow with no route slipped past validation; drop the
			// whole reload rather than allocate from stale state.
			return nil
		}
		e.dirty = false
	}
	e.pa.Iterate()
	// Threshold directly in the rate walk — one e.index lookup per flow,
	// no per-iteration rate map. Update order is FlowBlock order, which is
	// deterministic for a given churn sequence.
	updates := e.updates[:0]
	e.pa.ForEachRate(func(id core.FlowID, rate float64) {
		i, ok := e.index[id]
		if !ok {
			return
		}
		if core.SignificantRateChange(e.lastNotified[i], rate, e.threshold) {
			e.lastNotified[i] = rate
			updates = append(updates, core.RateUpdate{Flow: id, Src: e.flows[i].Src, Rate: rate})
		}
	})
	e.updates = updates
	return updates
}

func (e *parallelEngine) NumFlows() int { return len(e.flows) }

// Rates reports rates for the *live* flow set only: after churn, the
// underlying allocator may still hold retired flows until the next reload,
// and before the first post-churn Iterate a new flow has no rate yet.
func (e *parallelEngine) Rates() map[core.FlowID]float64 {
	paRates := e.pa.Rates()
	out := make(map[core.FlowID]float64, len(e.flows))
	for i := range e.flows {
		out[e.flows[i].ID] = paRates[e.flows[i].ID]
	}
	return out
}

func (e *parallelEngine) Close() { e.pa.Close() }

// Package server hosts flowtuned, the networked allocator daemon: the
// centralized Flowtune rate allocator run as a long-lived process that
// endpoints talk to over the wire protocol of internal/wire.
//
// The daemon's control loop mirrors the paper's design: flowlet-start and
// flowlet-end notifications from client sessions are queued into an inbox
// and folded into the optimizer only at iteration boundaries; each iteration
// runs one NED step plus normalization (via the sequential core.Allocator,
// or the FlowBlock/LinkBlock multicore allocator when Config.Blocks is set)
// and fans the resulting rate updates back out to the sessions that
// registered the flows.
//
// Iterations are driven two ways. With Config.Interval set, an internal
// ticker free-runs the loop, and updates reach clients through per-session
// writer goroutines with coalescing backpressure: a slow client holds at
// most one pending rate per flow (latest wins), so it can never stall the
// allocator or grow daemon memory. With Interval zero the daemon is
// step-driven — a client Step frame triggers exactly one iteration and
// receives a synchronous reply batch — which is how the deterministic
// end-to-end tests and the daemon-backed scenarios run.
//
// Sessions run over any net.Conn: loopback TCP via Serve, or an in-memory
// net.Pipe end via ServeConn. A disconnecting session's flowlets are retired
// at the next iteration boundary. Loop latency/throughput percentiles are
// exposed through LoopStats.
package server

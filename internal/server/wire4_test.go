package server

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/wire"
)

// fanoutConn is the minimal net.Conn the fan-out unit tests hand a bare
// session: Write records whole frames (or discards them when record is
// false), everything else is a no-op.
type fanoutConn struct {
	record bool
	frames [][]byte
}

func (c *fanoutConn) Write(p []byte) (int, error) {
	if c.record {
		c.frames = append(c.frames, append([]byte(nil), p...))
	}
	return len(p), nil
}
func (c *fanoutConn) Read(p []byte) (int, error)         { return 0, net.ErrClosed }
func (c *fanoutConn) Close() error                       { return nil }
func (c *fanoutConn) LocalAddr() net.Addr                { return nil }
func (c *fanoutConn) RemoteAddr() net.Addr               { return nil }
func (c *fanoutConn) SetDeadline(t time.Time) error      { return nil }
func (c *fanoutConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *fanoutConn) SetWriteDeadline(t time.Time) error { return nil }

// fanoutSession builds a bare v4 session wired to conn, bypassing the
// handshake: just enough state for queueUpdate/flushPending.
func fanoutSession(srv *Server, conn net.Conn) *session {
	return &session{
		srv:      srv,
		conn:     conn,
		version:  wire.Version,
		pending:  make(map[int64]float64),
		lastSent: make(map[int64]uint64),
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
}

// decodeRateFrames parses every recorded frame as a RateDelta and returns
// the decoded entries, frame by frame.
func decodeRateFrames(t *testing.T, frames [][]byte) [][]wire.RateEntry {
	t.Helper()
	var out [][]wire.RateEntry
	for _, frame := range frames {
		sc := wire.NewScanner(bytes.NewReader(frame))
		typ, payload, err := sc.Next()
		if err != nil {
			t.Fatalf("scan fan-out frame: %v", err)
		}
		if typ != wire.TypeRateDelta {
			t.Fatalf("fan-out frame type = %d, want TypeRateDelta", typ)
		}
		var d wire.RateDelta
		if err := wire.DecodeRateDelta(payload, &d); err != nil {
			t.Fatalf("decode fan-out frame: %v", err)
		}
		out = append(out, append([]wire.RateEntry(nil), d.Entries...))
	}
	return out
}

// TestFanoutDeltaSuppression drives the writer's flush path directly: a v4
// session must skip flows whose rate is unchanged since its last sent value,
// resend when the rate moves, and — because the shadow is per-session state
// — resend everything on a fresh session, which is exactly what a client
// reconnect or an epoch bump produces.
func TestFanoutDeltaSuppression(t *testing.T) {
	srv := &Server{}
	conn := &fanoutConn{record: true}
	sess := fanoutSession(srv, conn)

	sess.queueUpdate(7, 5e9, 1)
	sess.queueUpdate(9, 2.5e9, 1)
	if !sess.flushPending() {
		t.Fatal("flushPending reported write error")
	}
	got := decodeRateFrames(t, conn.frames)
	if len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("first flush frames = %v, want one frame with 2 entries", got)
	}
	if got[0][0].Flow != 7 || got[0][0].Rate != 5e9 || got[0][1].Flow != 9 || got[0][1].Rate != 2.5e9 {
		t.Fatalf("first flush entries = %v", got[0])
	}

	// Same rates again: both suppressed, no frame at all.
	conn.frames = nil
	sess.queueUpdate(7, 5e9, 2)
	sess.queueUpdate(9, 2.5e9, 2)
	sess.flushPending()
	if len(conn.frames) != 0 {
		t.Fatalf("unchanged rates produced %d frames, want 0", len(conn.frames))
	}

	// One rate moves: only that flow is resent.
	sess.queueUpdate(7, 5e9, 3)
	sess.queueUpdate(9, 3e9, 3)
	sess.flushPending()
	got = decodeRateFrames(t, conn.frames)
	if len(got) != 1 || len(got[0]) != 1 || got[0][0].Flow != 9 || got[0][0].Rate != 3e9 {
		t.Fatalf("changed-rate flush = %v, want only flow 9 at 3e9", got)
	}

	// A fresh session (what Reconnect and BumpEpoch produce) has a fresh
	// shadow: the same rates go out in full again.
	conn2 := &fanoutConn{record: true}
	sess2 := fanoutSession(srv, conn2)
	sess2.queueUpdate(7, 5e9, 1)
	sess2.queueUpdate(9, 3e9, 1)
	sess2.flushPending()
	got = decodeRateFrames(t, conn2.frames)
	if len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("fresh session resend = %v, want both flows", got)
	}
}

// TestQuantizedFanout checks the opt-in lossy mode: rates leave the daemon
// on the paper's 1 Mbps grid, and a rate change too small to move the
// quantized value is suppressed entirely.
func TestQuantizedFanout(t *testing.T) {
	srv := &Server{cfg: Config{QuantizeRates: true}}
	conn := &fanoutConn{record: true}
	sess := fanoutSession(srv, conn)

	rate := 1.2345678e9
	sess.queueUpdate(1, rate, 1)
	sess.flushPending()
	got := decodeRateFrames(t, conn.frames)
	want := wire.DequantizeRate(wire.QuantizeRate(rate))
	if len(got) != 1 || len(got[0]) != 1 || got[0][0].Rate != want {
		t.Fatalf("quantized flush = %v, want rate %v", got, want)
	}

	// A sub-Mbps wiggle lands in the same bucket: suppressed.
	conn.frames = nil
	sess.queueUpdate(1, rate+1e3, 2)
	sess.flushPending()
	if len(conn.frames) != 0 {
		t.Fatalf("sub-grid rate change produced %d frames, want 0", len(conn.frames))
	}

	// A full-Mbps move crosses buckets: sent.
	sess.queueUpdate(1, rate+5e6, 3)
	sess.flushPending()
	got = decodeRateFrames(t, conn.frames)
	want = wire.DequantizeRate(wire.QuantizeRate(rate + 5e6))
	if len(got) != 1 || got[0][0].Rate != want {
		t.Fatalf("cross-bucket flush = %v, want rate %v", got, want)
	}
}

// fillFanout loads n flows into the session's pending map with rates that
// differ from round to round, so suppression never hides the encode work.
func fillFanout(sess *session, n int, round int) {
	sess.pmu.Lock()
	for i := 0; i < n; i++ {
		sess.pending[int64(i*3)] = float64(1e9 + i*1000 + round)
	}
	sess.pendingSeq = uint64(round)
	sess.pmu.Unlock()
}

// TestFanoutFlushZeroAllocs pins the steady-state fan-out path at zero
// allocations per flush: the entry scratch, encode buffer, and both shadow
// maps are reused across iterations (satellite of the wire v4 PR).
func TestFanoutFlushZeroAllocs(t *testing.T) {
	sess := fanoutSession(&Server{}, &fanoutConn{})
	const flows = 256
	// Warm-up rounds grow the scratch slices and map buckets to steady
	// state.
	for round := 0; round < 3; round++ {
		fillFanout(sess, flows, round)
		sess.flushPending()
	}
	round := 3
	avg := testing.AllocsPerRun(50, func() {
		fillFanout(sess, flows, round)
		round++
		sess.flushPending()
	})
	if avg != 0 {
		t.Fatalf("steady-state fan-out flush allocates %.2f objects/op, want 0", avg)
	}
}

// BenchmarkFanoutFlush measures the writer's drain-sort-encode-write cycle
// for one coalesced batch of 1024 changed rates.
func BenchmarkFanoutFlush(b *testing.B) {
	sess := fanoutSession(&Server{}, &fanoutConn{})
	const flows = 1024
	for round := 0; round < 3; round++ {
		fillFanout(sess, flows, round)
		sess.flushPending()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fillFanout(sess, flows, i+3)
		sess.flushPending()
	}
}

package server

import (
	"fmt"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/wire"
)

// This file implements the daemon's survivable-restart lifecycle: graceful
// drain, flow-state snapshots, and warm restore. The snapshot format reuses
// the wire protocol — a concatenation of FlowState chunks (the live flowlet
// registry in canonical engine order) and PriceSnapshot chunks (every link's
// current price) — so the same bytes serve as an on-disk drain artifact and
// as the peer replica pushed inside exchange bundles. Restoring replays the
// flows through the ordinary registration path and seeds (not pins) the
// prices; because rates are a pure function of prices and flow order, a
// restored daemon's subsequent iterations are bit-identical to an
// uninterrupted one's.

// Drain puts the daemon into drain mode: new flowlet registrations are
// refused (counted in Stats.DrainRejects), disconnecting sessions no longer
// schedule orphan cleanup (their flows are preserved for the snapshot and
// for peers mid-adoption), and existing sessions otherwise keep working so
// in-flight fan-out completes. Drain is idempotent and cannot be undone;
// it is the first phase of Shutdown.
func (s *Server) Drain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.logf("draining: new flowlet registrations refused")
	}
	s.mu.Unlock()
}

// Draining reports whether Drain (or Shutdown) has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Closed reports whether the daemon has shut down (Close or Shutdown
// completed). It backs the admin /healthz liveness probe: a daemon stays
// healthy through a drain and flips unhealthy only once it is gone.
func (s *Server) Closed() bool { return s.isClosed() }

// Snapshot serializes the daemon's allocator state: its live flowlet
// registry (FlowState chunks, canonical engine order) and every link's
// current price (PriceSnapshot chunks) — both engines export prices through
// the exchanger interface. The result feeds Restore on a replacement daemon
// for a warm restart that continues the dual ascent in place.
func (s *Server) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, net.ErrClosed
	}
	return s.snapshotLocked(), nil
}

// snapshotLocked encodes the snapshot with s.mu held.
func (s *Server) snapshotLocked() []byte {
	sn, ok := s.eng.(snapshotter)
	if !ok {
		return nil
	}
	flows := sn.LiveFlows()
	epoch := s.Epoch()
	shard := uint32(s.cfg.ShardIndex)
	var buf []byte
	for start := 0; start < len(flows) || start == 0; start += wire.MaxFlowStateEntries {
		end := min(start+wire.MaxFlowStateEntries, len(flows))
		buf = wire.AppendFlowStateHeader(buf, epoch, s.seq, shard, end-start)
		for _, f := range flows[start:end] {
			buf = wire.AppendFlowStateEntry(buf, wire.FlowStateEntry{
				Flow: int64(f.ID), Src: int32(f.Src), Dst: int32(f.Dst), Weight: f.Weight,
			})
		}
		if end == len(flows) {
			break
		}
	}
	ex, ok := s.eng.(exchanger)
	if !ok {
		return buf
	}
	links := make([]topology.LinkID, s.cfg.Topology.NumLinks())
	for i := range links {
		links[i] = topology.LinkID(i)
	}
	prices := make([]float64, len(links))
	ex.LinkPrices(links, prices)
	for start := 0; start < len(links); start += wire.MaxSnapshotEntries {
		end := min(start+wire.MaxSnapshotEntries, len(links))
		buf = wire.AppendPriceSnapshotHeader(buf, epoch, s.seq, shard, end-start)
		for i := start; i < end; i++ {
			buf = wire.AppendSnapshotEntry(buf, wire.SnapshotEntry{
				Link: uint32(links[i]), Price: prices[i],
			})
		}
	}
	return buf
}

// Restore loads a snapshot produced by Snapshot (or Shutdown) into a fresh
// daemon: flows are re-admitted in their original order as unowned
// registrations — a reconnecting client claims them without engine churn via
// the adoption path — and prices are seeded so the dual ascent continues
// where it stopped. It must be called before any client events are folded
// in (an engine with registered flows refuses the restore). The iteration
// counter resumes from the snapshot's.
func (s *Server) Restore(snap []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return net.ErrClosed
	}
	if s.eng.NumFlows() != 0 || len(s.inbox) != 0 {
		return fmt.Errorf("server: restore requires an empty daemon (%d flows, %d pending events)", s.eng.NumFlows(), len(s.inbox))
	}
	ex, hasPrices := s.eng.(exchanger)
	var seq uint64
	buf := snap
	for len(buf) > 0 {
		typ, payload, rest, err := wire.ParseFrame(buf)
		if err != nil {
			return fmt.Errorf("server: restore: %w", err)
		}
		switch typ {
		case wire.TypeFlowState:
			fs, err := wire.DecodeFlowState(payload)
			if err != nil {
				return fmt.Errorf("server: restore: %w", err)
			}
			if fs.Seq > seq {
				seq = fs.Seq
			}
			for i := 0; i < fs.Len(); i++ {
				e := fs.Entry(i)
				id := core.FlowID(e.Flow)
				if err := s.eng.FlowletStart(id, int(e.Src), int(e.Dst), e.Weight); err != nil {
					return fmt.Errorf("server: restore flowlet %d: %w", e.Flow, err)
				}
				s.owners[id] = nil
				s.unowned[id] = flowMeta{src: int(e.Src), dst: int(e.Dst), weight: e.Weight}
			}
		case wire.TypePriceSnapshot:
			ps, err := wire.DecodePriceSnapshot(payload)
			if err != nil {
				return fmt.Errorf("server: restore: %w", err)
			}
			if !hasPrices {
				s.logf("restore: engine does not import prices; %d seeded prices skipped", ps.Len())
				break
			}
			links := make([]topology.LinkID, 0, ps.Len())
			prices := make([]float64, 0, ps.Len())
			numLinks := s.cfg.Topology.NumLinks()
			for i := 0; i < ps.Len(); i++ {
				e := ps.Entry(i)
				if int(e.Link) >= numLinks {
					return fmt.Errorf("server: restore: link %d out of range", e.Link)
				}
				links = append(links, topology.LinkID(e.Link))
				prices = append(prices, e.Price)
			}
			ex.SeedPrices(links, prices)
		default:
			return fmt.Errorf("server: restore: unexpected %s frame", typ)
		}
		buf = rest
	}
	s.seq = seq
	s.logf("restored %d flowlets at iteration %d", s.eng.NumFlows(), seq)
	return nil
}

// Shutdown drains the daemon gracefully and closes it: new registrations
// stop, in-flight rate fan-out is given until the timeout to reach clients,
// a snapshot of the allocator state is taken, and every protocol-v3 client
// receives a final drain-flagged EpochNotify — the signal to freeze at
// last-known rates and fail over warm. The returned snapshot (nil when the
// engine cannot export state) is what an operator hands to Restore on the
// replacement daemon. Shutdown is idempotent through Close; a zero timeout
// skips the fan-out wait but still notifies and snapshots.
func (s *Server) Shutdown(timeout time.Duration) ([]byte, error) {
	deadline := time.Now().Add(timeout)
	s.Drain()

	// Let per-session writers drain their pending rate updates, so clients
	// freeze at the *current* allocation, not a stale one.
	for timeout > 0 && !s.fanoutDrained() {
		if !time.Now().Before(deadline) {
			s.logf("drain: fan-out wait timed out after %v", timeout)
			break
		}
		time.Sleep(time.Millisecond)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, net.ErrClosed
	}
	snap := s.snapshotLocked()
	epoch := s.Epoch()
	notify := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		if sess.version >= 3 {
			notify = append(notify, sess)
		}
	}
	s.wg.Add(len(notify))
	s.mu.Unlock()

	// The final push: epoch with the drain bit set. Clients treat it as
	// "daemon going away on purpose" (transport.ErrDaemonDraining) rather
	// than a crash. One goroutine per session so a dead client cannot stall
	// shutdown; Close below bounds them by closing every connection.
	frame := wire.AppendEpochNotify(nil, wire.EpochNotify{Epoch: epoch | wire.EpochDrainFlag})
	done := make(chan struct{}, len(notify))
	for _, sess := range notify {
		go func() {
			defer s.wg.Done()
			sess.conn.SetWriteDeadline(time.Now().Add(time.Second))
			sess.write(frame)
			done <- struct{}{}
		}()
	}
	for range notify {
		<-done
	}
	s.logf("drain complete: %d clients notified, snapshot %d bytes", len(notify), len(snap))
	return snap, s.Close()
}

// fanoutDrained reports whether every session's pending rate-update queue is
// empty (the per-session writers have caught up).
func (s *Server) fanoutDrained() bool {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.pmu.Lock()
		n := len(sess.pending)
		sess.pmu.Unlock()
		if n > 0 {
			return false
		}
	}
	return true
}

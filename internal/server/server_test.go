package server

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/workload"
)

// testTopology is a small two-tier fabric (16 servers) shared by the tests.
func testTopology(t *testing.T) *topology.Topology {
	t.Helper()
	cfg := topology.DefaultSimConfig()
	cfg.Racks = 4
	cfg.ServersPerRack = 4
	cfg.Spines = 2
	topo, err := topology.NewTwoTier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// testChurn generates a deterministic add/remove event stream.
func testChurn(t *testing.T, topo *topology.Topology, horizon float64, seed int64) []workload.Event {
	t.Helper()
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Kind:               workload.Web,
		NumServers:         topo.NumServers(),
		ServerLinkCapacity: topo.Config().LinkCapacity,
		Load:               0.6,
		Seed:               seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	flows := gen.GenerateUntil(horizon)
	return workload.ChurnEvents(flows, workload.IdealHold(topo.Config().LinkCapacity, 4))
}

// startPipeDaemon creates a step-driven daemon served over an in-memory pipe
// and a handshaken client on the other end.
func startPipeDaemon(t *testing.T, cfg Config) (*Server, *transport.AllocClient) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	clientEnd, serverEnd := net.Pipe()
	go srv.ServeConn(serverEnd)
	cli, err := transport.NewAllocClient(clientEnd, 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

// TestDaemonMatchesInProcessAllocator is the end-to-end determinism check:
// the same churn stream, folded in at the same iteration boundaries, must
// produce bit-identical rate updates whether the allocator runs in process
// or behind the wire protocol in a daemon.
func TestDaemonMatchesInProcessAllocator(t *testing.T) {
	topo := testTopology(t)
	const horizon = 2e-3
	const interval = 10e-6
	events := testChurn(t, topo, horizon, 1)

	srv, cli := startPipeDaemon(t, Config{Topology: topo})
	if cli.Epoch() != 1 {
		t.Fatalf("epoch = %d; want the default 1", cli.Epoch())
	}

	ref, err := core.NewAllocator(core.Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}

	added := make(map[int64]bool)
	next := 0
	steps := 0
	for now := interval; now <= horizon; now += interval {
		for next < len(events) && events[next].At <= now {
			ev := events[next]
			next++
			if ev.Kind == workload.FlowletAdd {
				added[ev.Flow.ID] = true
				if err := cli.FlowletStart(core.FlowID(ev.Flow.ID), ev.Flow.Src, ev.Flow.Dst, 1); err != nil {
					t.Fatal(err)
				}
				if err := ref.FlowletStart(core.FlowID(ev.Flow.ID), ev.Flow.Src, ev.Flow.Dst, 1); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := cli.FlowletEnd(core.FlowID(ev.Flow.ID)); err != nil {
					t.Fatal(err)
				}
				if err := ref.FlowletEnd(core.FlowID(ev.Flow.ID)); err != nil {
					t.Fatal(err)
				}
			}
		}
		got, err := cli.Step()
		if err != nil {
			t.Fatal(err)
		}
		want := ref.Iterate()
		steps++
		if len(got) != len(want) {
			t.Fatalf("step %d: daemon sent %d updates, in-process produced %d", steps, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d update %d: daemon %+v != in-process %+v", steps, i, got[i], want[i])
			}
		}
	}
	// Removal events whose hold time extends past the horizon drain in one
	// final iteration.
	for ; next < len(events); next++ {
		ev := events[next]
		if ev.Kind != workload.FlowletRemove || !added[ev.Flow.ID] {
			continue
		}
		if err := cli.FlowletEnd(core.FlowID(ev.Flow.ID)); err != nil {
			t.Fatal(err)
		}
		if err := ref.FlowletEnd(core.FlowID(ev.Flow.ID)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	ref.Iterate()
	steps++
	if steps < 100 {
		t.Fatalf("only %d steps ran; horizon/interval mismatch", steps)
	}

	// Final rate state must agree too.
	gotRates := srv.Rates()
	wantRates := ref.Rates()
	if len(gotRates) != len(wantRates) {
		t.Fatalf("daemon tracks %d flows, in-process %d", len(gotRates), len(wantRates))
	}
	for id, want := range wantRates {
		if got, ok := gotRates[id]; !ok || got != want {
			t.Fatalf("flow %d: daemon rate %g, in-process %g", id, got, want)
		}
	}
	if n := srv.Iterations(); n != uint64(steps) {
		t.Fatalf("daemon ran %d iterations; %d steps sent", n, steps)
	}
	if s := srv.LoopStats(); s.Iterations != int64(steps) || s.LatencySec.Count == 0 {
		t.Fatalf("loop stats = %+v; want %d iterations with latency samples", s, steps)
	}
}

// TestDaemonParallelEngineMatchesInProcess drives the daemon's multicore
// engine and an in-process ParallelAllocator through the same churn/iterate
// sequence and requires identical rates.
func TestDaemonParallelEngineMatchesInProcess(t *testing.T) {
	topo := testTopology(t)
	const horizon = 1e-3
	const interval = 10e-6
	events := testChurn(t, topo, horizon, 2)

	srv, cli := startPipeDaemon(t, Config{Topology: topo, Blocks: 2})

	pa, err := core.NewParallelAllocator(core.ParallelConfig{
		Topology:  topo,
		Blocks:    2,
		Headroom:  0.01, // the daemon's default UpdateThreshold
		Normalize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Close()

	// Mirror the daemon engine exactly: both sides fold churn in through
	// the allocator's incremental FlowletStart/FlowletEnd path.
	next := 0
	for now := interval; now <= horizon; now += interval {
		for next < len(events) && events[next].At <= now {
			ev := events[next]
			next++
			id := core.FlowID(ev.Flow.ID)
			if ev.Kind == workload.FlowletAdd {
				if err := cli.FlowletStart(id, ev.Flow.Src, ev.Flow.Dst, 1); err != nil {
					t.Fatal(err)
				}
				if err := pa.FlowletStart(id, ev.Flow.Src, ev.Flow.Dst, 1); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := cli.FlowletEnd(id); err != nil {
					t.Fatal(err)
				}
				if err := pa.FlowletEnd(id); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := cli.Step(); err != nil {
			t.Fatal(err)
		}
		if pa.NumFlows() == 0 {
			continue
		}
		pa.Iterate()
	}

	gotRates := srv.Rates()
	wantRates := pa.Rates()
	if len(gotRates) != len(wantRates) || len(gotRates) == 0 {
		t.Fatalf("daemon tracks %d flows, in-process %d (want equal and non-zero)", len(gotRates), len(wantRates))
	}
	for id, want := range wantRates {
		if got := gotRates[id]; got != want {
			t.Fatalf("flow %d: daemon rate %g, in-process %g", id, got, want)
		}
	}
}

// TestDaemonOverTCP exercises the daemon over real loopback sockets with two
// sessions: updates are routed to the session that registered the flow, and
// a disconnecting session's flowlets are retired at the next iteration.
func TestDaemonOverTCP(t *testing.T) {
	topo := testTopology(t)
	srv, err := New(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	a, err := transport.DialAlloc(ln.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := transport.DialAlloc(ln.Addr().String(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// A owns flows 1 and 2, B owns flow 3.
	if err := a.FlowletStart(1, 0, 5, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.FlowletStart(2, 1, 6, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.FlowletStart(3, 2, 7, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	// A's adds travel with its Step frame, but B's flushed add races it
	// over a separate socket; wait until the daemon has queued B's event
	// so the first iteration folds in all three flows.
	waitFor(t, func() bool { return srv.Stats().EventsReceived == 1 })

	got, err := a.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Flow != 1 || got[1].Flow != 2 {
		t.Fatalf("A received %+v; want updates for flows 1 and 2 only", got)
	}
	for _, u := range got {
		if u.Rate <= 0 {
			t.Fatalf("flow %d allocated non-positive rate %g", u.Flow, u.Rate)
		}
	}
	// B's update arrives through its asynchronous writer.
	bu, seq, err := b.Recv(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(bu) != 1 || bu[0].Flow != 3 || bu[0].Rate <= 0 {
		t.Fatalf("B received %+v; want one update for flow 3", bu)
	}
	if seq != srv.Iterations() {
		t.Fatalf("B's batch seq = %d; daemon iteration = %d", seq, srv.Iterations())
	}
	if n := srv.NumFlows(); n != 3 {
		t.Fatalf("NumFlows = %d; want 3", n)
	}

	// Disconnect B: flow 3 must be retired at a subsequent iteration.
	b.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.NumFlows() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("flow 3 not cleaned up after B disconnected; NumFlows = %d", srv.NumFlows())
		}
		if _, err := a.Step(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}

	st := srv.Stats()
	if st.SessionsAccepted != 2 || st.SessionsActive != 1 {
		t.Fatalf("session stats = %+v; want 2 accepted, 1 active", st)
	}
}

// TestFreeRunningDaemon runs the daemon with its internal ticker and checks
// updates flow without Step frames.
func TestFreeRunningDaemon(t *testing.T) {
	topo := testTopology(t)
	srv, err := New(Config{Topology: topo, Interval: 200 * time.Microsecond, Epoch: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	cli, err := transport.DialAlloc(ln.Addr().String(), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if cli.Epoch() != 9 {
		t.Fatalf("epoch = %d; want 9", cli.Epoch())
	}
	if cli.Interval() != 200*time.Microsecond {
		t.Fatalf("interval = %v; want 200µs", cli.Interval())
	}

	if err := cli.FlowletStart(1, 0, 9, 1); err != nil {
		t.Fatal(err)
	}
	if err := cli.FlowletStart(2, 3, 9, 1); err != nil {
		t.Fatal(err)
	}
	if err := cli.Flush(); err != nil {
		t.Fatal(err)
	}
	seen := make(map[core.FlowID]float64)
	deadline := time.Now().Add(5 * time.Second)
	for len(seen) < 2 && time.Now().Before(deadline) {
		updates, _, err := cli.Recv(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range updates {
			seen[u.Flow] = u.Rate
		}
	}
	if len(seen) != 2 || seen[1] <= 0 || seen[2] <= 0 {
		t.Fatalf("received rates %v; want positive rates for flows 1 and 2", seen)
	}
	if s := srv.LoopStats(); s.Iterations == 0 || s.IterationsPerSec <= 0 {
		t.Fatalf("loop stats = %+v; want free-running iterations", s)
	}
}

// TestDaemonDefensiveCounters checks duplicate adds, unknown ends, and
// rejected routes are dropped and counted rather than breaking the loop.
func TestDaemonDefensiveCounters(t *testing.T) {
	topo := testTopology(t)
	srv, cli := startPipeDaemon(t, Config{Topology: topo})

	send := func(frame []byte) {
		t.Helper()
		// Raw frames bypass the client's own dup defense.
		if _, err := cliConn(cli).Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	send(wire.AppendFlowletAdd(nil, wire.FlowletAdd{Flow: 1, Src: 0, Dst: 5, Weight: 1}))
	send(wire.AppendFlowletAdd(nil, wire.FlowletAdd{Flow: 1, Src: 0, Dst: 5, Weight: 1}))   // duplicate
	send(wire.AppendFlowletAdd(nil, wire.FlowletAdd{Flow: 2, Src: 0, Dst: 999, Weight: 1})) // bad route
	send(wire.AppendFlowletEnd(nil, wire.FlowletEnd{Flow: 77}))                             // unknown
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	if n := srv.NumFlows(); n != 1 {
		t.Fatalf("NumFlows = %d; want 1", n)
	}
	st := srv.Stats()
	if st.DuplicateAdds != 1 || st.RejectedAdds != 1 || st.UnknownEnds != 1 {
		t.Fatalf("stats = %+v; want 1 duplicate, 1 rejected, 1 unknown", st)
	}
}

// TestServerRejectsBadHandshake covers protocol errors at session start.
func TestServerRejectsBadHandshake(t *testing.T) {
	topo := testTopology(t)
	srv, err := New(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// First frame is not a Hello.
	c1, s1 := net.Pipe()
	errc := make(chan error, 1)
	go func() { errc <- srv.ServeConn(s1) }()
	go c1.Write(wire.AppendStep(nil, wire.Step{Seq: 1}))
	if err := <-errc; err == nil {
		t.Fatal("ServeConn accepted a session without a Hello")
	}
	c1.Close()

	// Hello from the future.
	c2, s2 := net.Pipe()
	go func() { errc <- srv.ServeConn(s2) }()
	go c2.Write(wire.AppendHello(nil, wire.Hello{Version: wire.Version + 1, ClientID: 1}))
	if err := <-errc; err == nil {
		t.Fatal("ServeConn accepted an incompatible protocol version")
	}
	c2.Close()
}

// waitFor polls cond until true or the test deadline budget is spent.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// cliConn extracts the client's connection for raw-frame tests.
func cliConn(c *transport.AllocClient) net.Conn { return c.Conn() }

// TestBatchChunking shrinks the per-frame entry limits and checks both the
// step-reply path and the asynchronous writer split oversized update sets
// into multiple valid rate frames that clients reassemble. Sessions here
// negotiate v4, so the RateDelta limit is the one that chunks; the v3 limit
// is shrunk too so the fixed-bytes accounting stays consistent.
func TestBatchChunking(t *testing.T) {
	old, oldDelta := maxBatchEntries, maxRateDeltaEntries
	maxBatchEntries, maxRateDeltaEntries = 3, 3
	defer func() { maxBatchEntries, maxRateDeltaEntries = old, oldDelta }()

	topo := testTopology(t)
	srv, err := New(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	a, err := transport.DialAlloc(ln.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := transport.DialAlloc(ln.Addr().String(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// A owns 8 flows (stepper path), B owns 5 (writer path); all get a
	// first-iteration rate update, exceeding the 3-entry frame limit.
	for i := 0; i < 8; i++ {
		if err := a.FlowletStart(core.FlowID(i), i%8, 8+i%8, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 8; i < 13; i++ {
		if err := b.FlowletStart(core.FlowID(i), i%8, 8+i%8, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.Stats().EventsReceived == 5 })

	got, err := a.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("A received %d updates; want all 8 across chunked frames", len(got))
	}
	seen := make(map[core.FlowID]bool)
	for len(seen) < 5 {
		updates, _, err := b.Recv(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range updates {
			seen[u.Flow] = true
		}
	}
	st := srv.Stats()
	// 8 stepper entries in exactly ceil(8/3)=3 frames; the writer delivers
	// B's 5 entries in 2 frames when it drains them in one wake, more if
	// its wakeups interleave with queueing — but never in a single frame.
	if st.UpdatesSent != 13 {
		t.Fatalf("stats = %+v; want 13 update entries sent", st)
	}
	if st.BatchesSent < 5 || st.BatchesSent > 8 {
		t.Fatalf("stats = %+v; want 5..8 chunked frames", st)
	}
}

// TestAddFromDisconnectedSessionDropped covers the phantom-flow case: an add
// still in the inbox when its session disconnects must not be registered.
func TestAddFromDisconnectedSessionDropped(t *testing.T) {
	topo := testTopology(t)
	srv, err := New(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	a, err := transport.DialAlloc(ln.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ghost, err := transport.DialAlloc(ln.Addr().String(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ghost.FlowletStart(100, 0, 9, 1); err != nil {
		t.Fatal(err)
	}
	if err := ghost.Flush(); err != nil {
		t.Fatal(err)
	}
	// Wait for the add to be queued, then disconnect before any iteration.
	waitFor(t, func() bool { return srv.Stats().EventsReceived == 1 })
	ghost.Close()
	waitFor(t, func() bool { return srv.Stats().SessionsActive == 1 })

	if _, err := a.Step(); err != nil {
		t.Fatal(err)
	}
	if n := srv.NumFlows(); n != 0 {
		t.Fatalf("phantom flow registered: NumFlows = %d; want 0", n)
	}
	if st := srv.Stats(); st.RejectedAdds != 1 {
		t.Fatalf("stats = %+v; want the orphaned add counted as rejected", st)
	}
}

// TestCloseUnblocksPreHandshakeConn ensures Close does not hang on a peer
// that connected but never sent its Hello.
func TestCloseUnblocksPreHandshakeConn(t *testing.T) {
	topo := testTopology(t)
	srv, err := New(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	silent, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	// Give the accept loop time to hand the conn to ServeConn.
	waitFor(t, func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return len(srv.conns) == 1
	})

	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a pre-handshake connection")
	}
}

// TestParallelEngineRejectsBadAdd is the error-path test for the incremental
// churn API: a flowlet with an unroutable endpoint must be rejected (and
// counted) at the iteration boundary it is folded in at, without disturbing
// the engine's live flows — the former SetFlows-based engine silently dropped
// the whole reload instead.
func TestParallelEngineRejectsBadAdd(t *testing.T) {
	topo := testTopology(t)
	srv, cli := startPipeDaemon(t, Config{Topology: topo, Blocks: 2})

	if err := cli.FlowletStart(1, 0, 5, 1); err != nil {
		t.Fatal(err)
	}
	// Raw frame bypasses the client's own validation.
	bad := wire.AppendFlowletAdd(nil, wire.FlowletAdd{Flow: 2, Src: 0, Dst: 999, Weight: 1})
	if _, err := cliConn(cli).Write(bad); err != nil {
		t.Fatal(err)
	}
	if err := cli.FlowletStart(3, 4, 9, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	if n := srv.NumFlows(); n != 2 {
		t.Fatalf("NumFlows = %d; want 2 (good adds folded, bad add rejected)", n)
	}
	if st := srv.Stats(); st.RejectedAdds != 1 {
		t.Fatalf("RejectedAdds = %d; want 1", st.RejectedAdds)
	}
	// The engine keeps allocating for the surviving flows.
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	rates := srv.Rates()
	if len(rates) != 2 || rates[1] <= 0 || rates[3] <= 0 {
		t.Fatalf("rates = %v; want positive rates for flows 1 and 3", rates)
	}
}

// TestParallelEngineSteadyStateAllocs pins the daemon engine's hot loop: with
// a stable flow set, Iterate (parallel NED step + update walk over the dense
// per-block notification arrays) must not allocate.
func TestParallelEngineSteadyStateAllocs(t *testing.T) {
	topo := testTopology(t)
	eng, err := newParallelEngine(Config{Topology: topo, Blocks: 2, UpdateThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 64; i++ {
		if err := eng.FlowletStart(core.FlowID(i), i%16, (i+5)%16, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Converge (and grow the reused update buffer to its working size).
	for i := 0; i < 50; i++ {
		eng.Iterate()
	}
	if allocs := testing.AllocsPerRun(100, func() { eng.Iterate() }); allocs != 0 {
		t.Fatalf("steady-state Iterate allocates %.1f times per op; want 0", allocs)
	}
}

// TestClientReconnect covers the client re-registration path: after the
// session drops, the daemon retires the orphaned flowlets, and Reconnect must
// re-register the live set through the incremental churn path so allocation
// resumes.
func TestClientReconnect(t *testing.T) {
	topo := testTopology(t)
	srv, cli := startPipeDaemon(t, Config{Topology: topo, Blocks: 2, Epoch: 7})

	if err := cli.FlowletStart(1, 0, 5, 1); err != nil {
		t.Fatal(err)
	}
	if err := cli.FlowletStart(2, 8, 13, 1); err != nil {
		t.Fatal(err)
	}
	if err := cli.FlowletStart(3, 2, 11, 1); err != nil {
		t.Fatal(err)
	}
	if err := cli.FlowletEnd(3); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	if n := srv.NumFlows(); n != 2 {
		t.Fatalf("NumFlows = %d; want 2", n)
	}

	// Kill the session; the daemon retires the orphans at the next
	// iteration boundary.
	cliConn(cli).Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().SessionsActive != 0 {
		if time.Now().After(deadline) {
			t.Fatal("session did not close")
		}
		time.Sleep(time.Millisecond)
	}

	clientEnd, serverEnd := net.Pipe()
	go srv.ServeConn(serverEnd)
	if err := cli.Reconnect(clientEnd); err != nil {
		t.Fatal(err)
	}
	if cli.Epoch() != 7 {
		t.Fatalf("Epoch = %d; want 7", cli.Epoch())
	}
	if cli.NumFlows() != 2 {
		t.Fatalf("client NumFlows = %d; want 2 live registrations", cli.NumFlows())
	}
	// The first Step flushes the buffered re-registrations (folding the
	// orphan cleanup and the re-adds in arrival order) and iterates.
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	if n := srv.NumFlows(); n != 2 {
		t.Fatalf("NumFlows after reconnect = %d; want 2", n)
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	rates := srv.Rates()
	if len(rates) != 2 || rates[1] <= 0 || rates[2] <= 0 {
		t.Fatalf("rates after reconnect = %v; want flows 1 and 2 allocated", rates)
	}
}

// TestClientReconnectBeforeCleanup reconnects without waiting for the daemon
// to notice the old session died, the racy path: Reconnect closes the old
// connection itself and re-registers via End/Add pairs, and the daemon's
// orphan sweep is ownership-checked, so whichever order the old session's
// cleanup and the new session's re-registrations fold in, the live set must
// converge to the client's registrations.
func TestClientReconnectBeforeCleanup(t *testing.T) {
	topo := testTopology(t)
	srv, cli := startPipeDaemon(t, Config{Topology: topo, Blocks: 2})

	if err := cli.FlowletStart(1, 0, 5, 1); err != nil {
		t.Fatal(err)
	}
	if err := cli.FlowletStart(2, 8, 13, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}

	// No explicit close, no wait: Reconnect tears the old connection down.
	clientEnd, serverEnd := net.Pipe()
	go srv.ServeConn(serverEnd)
	if err := cli.Reconnect(clientEnd); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	// Give the old session's orphan sweep a boundary to (wrongly) fire on,
	// then check it did not retire the re-registered flows.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().SessionsActive != 1 {
		if time.Now().After(deadline) {
			t.Fatal("old session never detected as closed")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	if n := srv.NumFlows(); n != 2 {
		t.Fatalf("NumFlows after racy reconnect = %d; want 2", n)
	}
	rates := srv.Rates()
	if len(rates) != 2 || rates[1] <= 0 || rates[2] <= 0 {
		t.Fatalf("rates after racy reconnect = %v; want flows 1 and 2 allocated", rates)
	}
}

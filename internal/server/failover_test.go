package server

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/transport"
)

// startDaemon builds one unsharded step-driven daemon over boundaryTopo-like
// fabric plus one piped client.
func startDaemon(t *testing.T, topo *topology.Topology) (*Server, *transport.AllocClient) {
	t.Helper()
	srv, err := New(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, pipeClient(t, srv, 1)
}

func pipeClient(t *testing.T, srv *Server, id uint64) *transport.AllocClient {
	t.Helper()
	clientEnd, serverEnd := net.Pipe()
	go srv.ServeConn(serverEnd)
	cli, err := transport.NewAllocClient(clientEnd, id)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

func failoverTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.NewTwoTier(topology.Config{
		Racks: 2, ServersPerRack: 2, Spines: 1, LinkCapacity: 10e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestDrainRefusesNewFlowlets pins drain-mode admission: existing flows keep
// their allocation, new registrations are counted and dropped.
func TestDrainRefusesNewFlowlets(t *testing.T) {
	srv, cli := startDaemon(t, failoverTopo(t))
	if err := cli.FlowletStart(1, 0, 3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	srv.Drain()
	if !srv.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	if err := cli.FlowletStart(2, 1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	if got := srv.NumFlows(); got != 1 {
		t.Fatalf("NumFlows = %d after draining add, want 1", got)
	}
	if st := srv.Stats(); st.DrainRejects != 1 {
		t.Fatalf("DrainRejects = %d, want 1", st.DrainRejects)
	}
	// The surviving flow is still allocated.
	if r := srv.Rates()[core.FlowID(1)]; r <= 0 {
		t.Fatalf("drained daemon stopped allocating: rate = %g", r)
	}
}

// TestDrainPreservesDisconnectedSessionFlows pins the orphan-sweep bugfix: a
// draining daemon must keep a disconnected client's flows registered — they
// are headed for the snapshot and may already be mid-adoption at a peer —
// instead of retiring them in the cleanup sweep.
func TestDrainPreservesDisconnectedSessionFlows(t *testing.T) {
	topo := failoverTopo(t)
	srv, cli := startDaemon(t, topo)
	cli2 := pipeClient(t, srv, 2)
	if err := cli.FlowletStart(1, 0, 3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	srv.Drain()
	cli.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().SessionsActive != 1 {
		if time.Now().After(deadline) {
			t.Fatal("session removal never observed")
		}
		time.Sleep(time.Millisecond)
	}
	// Fold an iteration through the second session: without the fix this is
	// where the orphan sweep would retire flow 1.
	if _, err := cli2.Step(); err != nil {
		t.Fatal(err)
	}
	if got := srv.NumFlows(); got != 1 {
		t.Fatalf("draining daemon retired a disconnected session's flow: NumFlows = %d", got)
	}
	// The preserved flow makes it into the snapshot.
	snap, err := srv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := fresh.NumFlows(); got != 1 {
		t.Fatalf("restored daemon has %d flows, want 1", got)
	}
}

// TestShutdownNotifiesDrainingClients pins the final drain-flagged
// EpochNotify: a connected client's read surfaces ErrDaemonDraining, with
// the epoch value preserved (the flag is stripped client-side).
func TestShutdownNotifiesDrainingClients(t *testing.T) {
	srv, cli := startDaemon(t, failoverTopo(t))
	if err := cli.FlowletStart(1, 0, 3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	before := cli.Epoch()
	snapc := make(chan []byte, 1)
	go func() {
		snap, err := srv.Shutdown(time.Second)
		if err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		snapc <- snap
	}()
	_, _, err := cli.Recv(5 * time.Second)
	if !errors.Is(err, transport.ErrDaemonDraining) {
		t.Fatalf("Recv during shutdown = %v, want ErrDaemonDraining", err)
	}
	if got := cli.Epoch(); got != before {
		t.Fatalf("drain notify changed the epoch: %d → %d", before, got)
	}
	snap := <-snapc
	if len(snap) == 0 {
		t.Fatal("Shutdown produced an empty snapshot")
	}
	// The daemon is gone afterwards.
	if _, err := cli.Step(); err == nil {
		t.Fatal("Step succeeded against a shut-down daemon")
	}
}

// TestRestoreWarmByteEquivalence is the daemon-level warm-restart guarantee:
// shut a daemon down mid-run, restore its snapshot into a fresh one, resume
// the client with bare adds (adopted without churn), and every subsequent
// iteration matches an uninterrupted reference daemon bit for bit.
func TestRestoreWarmByteEquivalence(t *testing.T) {
	topo := failoverTopo(t)
	flows := []struct {
		id       core.FlowID
		src, dst int
		w        float64
	}{{1, 0, 3, 1}, {2, 1, 2, 2}, {3, 2, 0, 1}}

	// Reference: an uninterrupted daemon stepped in lockstep.
	ref, refCli := startDaemon(t, topo)
	victim, cli := startDaemon(t, topo)
	for _, f := range flows {
		if err := refCli.FlowletStart(f.id, f.src, f.dst, f.w); err != nil {
			t.Fatal(err)
		}
		if err := cli.FlowletStart(f.id, f.src, f.dst, f.w); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		if _, err := refCli.Step(); err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Step(); err != nil {
			t.Fatal(err)
		}
	}

	snap, err := victim.Shutdown(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}

	restored, err := New(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := restored.NumFlows(); got != len(flows) {
		t.Fatalf("restored %d flows, want %d", got, len(flows))
	}

	// The client fails over: bare re-adds, adopted in place.
	clientEnd, serverEnd := net.Pipe()
	go restored.ServeConn(serverEnd)
	if err := cli.ResumeReconnect(clientEnd); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	if st := restored.Stats(); st.AdoptedFlows != int64(len(flows)) {
		t.Fatalf("AdoptedFlows = %d, want %d", st.AdoptedFlows, len(flows))
	}
	if _, err := refCli.Step(); err != nil { // keep the reference in lockstep
		t.Fatal(err)
	}

	for i := 0; i < 20; i++ {
		if _, err := refCli.Step(); err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Step(); err != nil {
			t.Fatal(err)
		}
		want, got := ref.Rates(), restored.Rates()
		for id, r := range want {
			if got[id] != r {
				t.Fatalf("iter %d flow %d: restored rate %v != reference %v", i, id, got[id], r)
			}
		}
	}
	// Warm restart cost zero engine churn: no retire/re-add pairs.
	if st := restored.Stats(); st.DuplicateAdds != 0 {
		t.Fatalf("restore caused %d duplicate adds", st.DuplicateAdds)
	}
}

// TestRestoreRequiresEmptyDaemon pins the restore precondition.
func TestRestoreRequiresEmptyDaemon(t *testing.T) {
	topo := failoverTopo(t)
	srv, cli := startDaemon(t, topo)
	if err := cli.FlowletStart(1, 0, 3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Step(); err != nil {
		t.Fatal(err)
	}
	snap, err := srv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Restore(snap); err == nil {
		t.Fatal("Restore into a non-empty daemon accepted")
	}
}

// startTakeoverPair is startShardPair with peer failover enabled.
func startTakeoverPair(t *testing.T) (srvs [2]*Server, clis [2]*transport.AllocClient) {
	t.Helper()
	topo := clusterTopo(t)
	for i := 0; i < 2; i++ {
		srv, err := New(Config{Topology: topo, NumShards: 2, ShardIndex: i, Takeover: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		srvs[i] = srv
	}
	for i := 0; i < 2; i++ {
		out, in := net.Pipe()
		go srvs[1-i].ServeConn(in)
		if _, err := srvs[i].ConnectPeer(out); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		clis[i] = pipeClient(t, srvs[i], uint64(i))
	}
	return srvs, clis
}

// TestTakeoverAdoptsDeadShard is the end-to-end failover check: kill one
// daemon of a two-shard cluster and the survivor adopts its rack block —
// flows seeded from the replica, admission re-pointed — and the dead
// daemon's client re-registers onto the survivor without engine churn.
func TestTakeoverAdoptsDeadShard(t *testing.T) {
	srvs, clis := startTakeoverPair(t)
	// Flow 1 lives in shard 0 (server 0), flow 2 in shard 1 (server 5); they
	// share the tor2→server4 downward link.
	if err := clis[0].FlowletStart(1, 0, 4, 1); err != nil {
		t.Fatal(err)
	}
	if err := clis[1].FlowletStart(2, 5, 4, 1); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		for i := 0; i < 2; i++ {
			if _, err := clis[i].Step(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Kill shard 1. Shard 0 notices at its next exchange push and adopts at
	// the iteration boundary after that.
	srvs[1].Close()
	for round := 0; round < 3 && !srvs[0].ServesShard(1); round++ {
		if _, err := clis[0].Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !srvs[0].ServesShard(1) {
		t.Fatal("survivor never adopted the dead shard")
	}
	st := srvs[0].Stats()
	if st.Takeovers != 1 {
		t.Fatalf("Takeovers = %d, want 1", st.Takeovers)
	}
	// The replica seeded flow 2 into the survivor's engine.
	if got := srvs[0].NumFlows(); got != 2 {
		t.Fatalf("survivor NumFlows = %d after adoption, want 2", got)
	}

	// The dead daemon's client fails over: a bare re-add is adopted in place.
	cli2 := pipeClient(t, srvs[0], 7)
	if err := cli2.FlowletStart(2, 5, 4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cli2.Step(); err != nil {
		t.Fatal(err)
	}
	st = srvs[0].Stats()
	if st.AdoptedFlows != 1 {
		t.Fatalf("AdoptedFlows = %d, want 1", st.AdoptedFlows)
	}
	if st.RejectedAdds != 0 {
		t.Fatalf("survivor rejected the failover registration (%d rejects)", st.RejectedAdds)
	}

	// The survivor now prices the shared link from both flows' demand.
	for round := 0; round < 200; round++ {
		if _, err := clis[0].Step(); err != nil {
			t.Fatal(err)
		}
	}
	rates := srvs[0].Rates()
	r1, r2 := rates[core.FlowID(1)], rates[core.FlowID(2)]
	const cap = 10e9
	if r1 <= 0 || r2 <= 0 {
		t.Fatalf("rates not allocated after takeover: r1=%g r2=%g", r1, r2)
	}
	if sum := r1 + r2; sum > 1.02*cap {
		t.Fatalf("combined allocation %g overshoots the shared link after takeover", sum)
	}
}

// TestTakeoverRejectedRegistrationBeforeAdoption pins the transient: before
// adoption completes, the survivor still refuses the dead shard's flows (no
// double allocation), and admits them after.
func TestTakeoverRejectedRegistrationBeforeAdoption(t *testing.T) {
	srvs, clis := startTakeoverPair(t)
	if err := clis[0].FlowletStart(1, 0, 4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := clis[0].Step(); err != nil {
		t.Fatal(err)
	}
	// Shard 1's flow registered on shard 0 while daemon 1 is alive: rejected.
	if err := clis[0].FlowletEnd(1); err != nil {
		t.Fatal(err)
	}
	if err := clis[0].FlowletStart(9, 5, 4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := clis[0].Step(); err != nil {
		t.Fatal(err)
	}
	if st := srvs[0].Stats(); st.RejectedAdds != 1 {
		t.Fatalf("RejectedAdds = %d, want 1", st.RejectedAdds)
	}

	srvs[1].Close()
	for round := 0; round < 3 && !srvs[0].ServesShard(1); round++ {
		if _, err := clis[0].Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !srvs[0].ServesShard(1) {
		t.Fatal("survivor never adopted the dead shard")
	}
	// The same registration from a failing-over client now lands.
	cli3 := pipeClient(t, srvs[0], 8)
	if err := cli3.FlowletStart(9, 5, 4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cli3.Step(); err != nil {
		t.Fatal(err)
	}
	if got := srvs[0].Rates()[core.FlowID(9)]; got <= 0 {
		t.Fatalf("adopted-shard flow not allocated: rate = %g", got)
	}
}

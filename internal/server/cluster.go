package server

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/wire"
)

// This file implements the daemon side of the sharded allocator cluster: a
// flowtuned instance configured with NumShards > 0 owns one rack block of
// the fabric (its servers plus all links anchored at its racks) and runs the
// ordinary allocator over just its own flows. The only state it shares with
// its peers is the boundary: downward links, which remote flows traverse.
// After every iteration the daemon pushes, to each peer,
//
//   - a PriceDigest with its local load and Hessian-diagonal contributions
//     on the links that peer owns (so the owner prices boundary links from
//     cluster-wide demand), and
//   - a PriceSnapshot of its own boundary-link prices (so peers rate their
//     cross-shard flows against the owner's congestion signal).
//
// Inbound bundles are folded in at the next iteration boundary, exactly like
// flowlet notifications. In step-driven runs a bundle stamped with iteration
// k is folded at iteration k+1 regardless of shard stepping order, and every
// push waits for the receiver's ExchangeAck, which together make cluster
// runs deterministic; free-running daemons fold whatever has arrived.

// exchanger is implemented by engines that support the boundary-price
// exchange. Both engines do: the sequential core engine delegates to the
// allocator's boundary API over its global price/load arrays, and the
// parallel engine to the block-local equivalents (external loads and pins
// folded into the owning LinkBlock, digests exported from the owner
// FlowBlocks' merged accumulators in the same canonical link order).
type exchanger interface {
	SetExternalLoads(links []topology.LinkID, loads, hdiag []float64)
	PinPrices(links []topology.LinkID, prices []float64)
	BoundaryDigest(links []topology.LinkID, loads, hdiag []float64) error
	LinkPrices(links []topology.LinkID, prices []float64)
	SeedPrices(links []topology.LinkID, prices []float64)
	UnpinPrices(links []topology.LinkID)
}

// exchangeMsg is one inbound peer frame waiting for the next iteration
// boundary. For a digest, vals/hdiag are the load/sensitivity entries; for a
// snapshot, vals holds prices and hdiag is nil; for a takeover announcement,
// from is the adopter and dead the adopted daemon. delta marks a wire v4
// delta frame (entries are a partial update; absent links keep their prior
// imported values) and reset re-baselines: a reset digest zeroes the
// sender's contributions before applying, a reset snapshot is a complete
// price listing.
type exchangeMsg struct {
	from     uint32
	seq      uint64
	snapshot bool
	takeover bool
	delta    bool
	reset    bool
	dead     uint32
	links    []int32
	vals     []float64
	hdiag    []float64
}

// replicaState is the latest flow-state replica received from one peer
// daemon: the flows it was serving, reassembled from FlowState chunks.
type replicaState struct {
	seq   uint64
	epoch uint64
	flows []wire.FlowStateEntry
}

// snapRecord retains the latest accepted prices from one peer daemon (the
// links it serves), so its successor can seed them when adopting. It is a
// merged map rather than the raw frames: v4 delta snapshots carry only the
// changed links, so the record accumulates across sequences and always holds
// the peer's full price set.
type snapRecord struct {
	seq    uint64
	prices map[topology.LinkID]float64
}

// peerConn is one outbound shard-to-shard connection; this daemon pushes its
// exchange bundles on it and reads acks back. It is only touched under
// shardState.sendMu after registration.
type peerConn struct {
	shard int
	conn  net.Conn
	sc    *wire.Scanner
	buf   []byte
	seq   uint64
	// acks is the number of ExchangeAcks the pending bundle will produce
	// (one per snapshot chunk; receivers ack each chunk).
	acks int
	// version is the wire protocol negotiated with this peer (the minimum
	// of both daemons' PeerHello versions); v4 peers get delta bundles.
	version uint16
	// needReset forces the next bundle to carry full (reset) digest and
	// snapshot frames. Set on a fresh connection — the receiver's imported
	// state is unknown — and whenever served-shard ownership changes.
	needReset bool
	// digestShadow / snapShadow record, per link, the (load, hdiag) and
	// price bit patterns last encoded for this peer; a delta bundle lists
	// only links whose value differs (missing key = send). Shadows advance
	// optimistically at build time: any push failure drops the whole
	// peerConn, and the reconnect's fresh connection starts with a reset,
	// so sender shadow and receiver state can never drift apart. Keyed by
	// LinkID, not boundary position, so they stay valid across takeovers.
	digestShadow map[topology.LinkID][2]uint64
	snapShadow   map[topology.LinkID]uint64
	// Reused delta-entry scratch.
	dLinks         []uint32
	dLoads, dHdiag []float64
	sLinks         []uint32
	sPrices        []float64
}

// peerExchangeTimeout bounds one bundle push (write + acks): a peer that is
// wedged — alive at the TCP level but not draining — must not stall the
// shard's allocation loop, so past this deadline it is dropped like a dead
// one and the shard keeps iterating on its last imported boundary state.
const peerExchangeTimeout = 2 * time.Second

// shardState is the sharded-cluster state of a daemon.
type shardState struct {
	smap     *topology.ShardMap
	index    int
	ex       exchanger
	numLinks int
	takeover bool
	interval time.Duration
	hbGrace  time.Duration

	// servedBy[x] is the daemon currently serving shard x's rack block:
	// initially the identity, re-pointed by takeovers. Every ownership
	// decision — flow admission, digest targeting, snapshot acceptance —
	// routes through it. Guarded by the server mutex.
	servedBy []int32
	// deadDaemons marks daemons known to be dead (adopted or announced).
	// Guarded by the server mutex.
	deadDaemons map[int]bool

	// boundary lists the downward links of every shard this daemon serves;
	// posOf maps a LinkID to its position in boundary (-1 otherwise).
	boundary []topology.LinkID
	posOf    []int32
	// remoteLinks caches, per peer daemon, the boundary links of the shards
	// it serves (the digest target set); invalidated on takeover.
	remoteLinks map[int][]topology.LinkID

	// lastSnap retains each peer daemon's latest accepted prices for
	// adoption seeding. Guarded by the server mutex (written at fold).
	lastSnap map[uint32]*snapRecord

	// announce holds takeover announcements awaiting inclusion in the next
	// exchange bundle. Guarded by the server mutex.
	announce []wire.Takeover

	// Latest digest from each peer, dense over boundary; extLoad/extHdiag
	// are the sums handed to the engine after each fold.
	peerLoad  map[uint32][]float64
	peerHdiag map[uint32][]float64
	extLoad   []float64
	extHdiag  []float64

	// sendMu serializes whole fold → iterate → push sequences so peers
	// observe bundles in iteration order.
	sendMu sync.Mutex

	// pmu guards peers (outbound connections, keyed by shard).
	pmu   sync.Mutex
	peers map[int]*peerConn

	// inMu guards pending, the inbound messages awaiting fold; drain is
	// the swap buffer that keeps free-running folds allocation-free. It
	// also guards the failover reception state below (written by peer
	// reader goroutines and the push path).
	inMu    sync.Mutex
	pending []exchangeMsg
	drain   []exchangeMsg
	// replicas holds the latest flow-state replica per peer daemon;
	// lastHeard the last time any frame arrived from it; deadPending the
	// daemons detected dead and awaiting the next iteration boundary.
	replicas    map[uint32]*replicaState
	lastHeard   map[int]time.Time
	deadPending []int

	// Reused build/fold scratch.
	digestLoads, digestHdiag, snapPrices []float64
	pinLinks                             []topology.LinkID
	pinVals                              []float64
}

// newShardState validates the sharded configuration and prepares the
// exchange state.
func newShardState(cfg Config, eng engine) (*shardState, error) {
	// Both engines implement exchanger; the assertion stays as a defensive
	// gate for any future engine that does not.
	ex, ok := eng.(exchanger)
	if !ok {
		return nil, fmt.Errorf("server: sharded mode requires an engine with boundary-exchange support")
	}
	if cfg.ShardIndex < 0 || cfg.ShardIndex >= cfg.NumShards {
		return nil, fmt.Errorf("server: ShardIndex %d out of range for %d shards", cfg.ShardIndex, cfg.NumShards)
	}
	smap, err := topology.NewShardMap(cfg.Topology, cfg.NumShards)
	if err != nil {
		return nil, err
	}
	st := &shardState{
		smap:        smap,
		index:       cfg.ShardIndex,
		ex:          ex,
		numLinks:    cfg.Topology.NumLinks(),
		takeover:    cfg.Takeover,
		interval:    cfg.Interval,
		hbGrace:     cfg.HeartbeatTimeout,
		servedBy:    make([]int32, cfg.NumShards),
		deadDaemons: make(map[int]bool),
		boundary:    smap.BoundaryLinks(cfg.ShardIndex),
		posOf:       make([]int32, cfg.Topology.NumLinks()),
		remoteLinks: make(map[int][]topology.LinkID),
		lastSnap:    make(map[uint32]*snapRecord),
		peerLoad:    make(map[uint32][]float64),
		peerHdiag:   make(map[uint32][]float64),
		peers:       make(map[int]*peerConn),
		replicas:    make(map[uint32]*replicaState),
		lastHeard:   make(map[int]time.Time),
	}
	for i := range st.servedBy {
		st.servedBy[i] = int32(i)
	}
	for i := range st.posOf {
		st.posOf[i] = -1
	}
	for i, l := range st.boundary {
		st.posOf[l] = int32(i)
	}
	st.extLoad = make([]float64, len(st.boundary))
	st.extHdiag = make([]float64, len(st.boundary))
	st.snapPrices = make([]float64, len(st.boundary))
	return st, nil
}

// ownsFlow reports whether a flowlet from src belongs to a shard this daemon
// currently serves (its own, plus any adopted by takeover). Out-of-range
// servers pass through so the engine rejects them with its own clearer
// error. Called with the server mutex held.
func (st *shardState) ownsFlow(src, dst int) bool {
	if src < 0 || src >= st.smap.Topology().NumServers() {
		return true
	}
	return st.servedBy[st.smap.ShardOfFlow(src, dst)] == int32(st.index)
}

// servesLink reports whether the daemon currently serving the shard that
// owns link l is daemon `from` — the snapshot-acceptance rule. Called with
// the server mutex held.
func (st *shardState) servesLink(l topology.LinkID, from uint32) bool {
	owner := st.smap.OwnerOfLink(l)
	return owner >= 0 && st.servedBy[owner] == int32(from)
}

// successorOf returns the daemon that should adopt dead's rack block: the
// next index after dead, skipping daemons already known dead. Every
// surviving daemon computes the same answer from the same death knowledge,
// so exactly one adopts. Called with the server mutex held.
func (st *shardState) successorOf(dead int) int {
	n := st.smap.NumShards()
	for i := 1; i < n; i++ {
		c := (dead + i) % n
		if c == st.index {
			return c
		}
		if !st.deadDaemons[c] && c != dead {
			return c
		}
	}
	return st.index
}

// noteDead queues a daemon for death processing at the next iteration
// boundary. Safe without the server mutex (inMu-guarded).
func (st *shardState) noteDead(daemon int) {
	st.inMu.Lock()
	for _, d := range st.deadPending {
		if d == daemon {
			st.inMu.Unlock()
			return
		}
	}
	st.deadPending = append(st.deadPending, daemon)
	st.inMu.Unlock()
}

// noteHeard stamps the liveness clock of a peer daemon.
func (st *shardState) noteHeard(daemon int) {
	st.inMu.Lock()
	st.lastHeard[daemon] = time.Now()
	st.inMu.Unlock()
}

// storeReplica folds one FlowState chunk into the replica held for a peer
// daemon: a chunk with a new sequence number starts a fresh replica, further
// chunks with the same sequence append (frames arrive in order).
func (st *shardState) storeReplica(fs wire.FlowState) {
	st.inMu.Lock()
	rep := st.replicas[fs.Shard]
	if rep == nil || rep.seq != fs.Seq || rep.epoch != fs.Epoch {
		rep = &replicaState{seq: fs.Seq, epoch: fs.Epoch}
		st.replicas[fs.Shard] = rep
	}
	for i := 0; i < fs.Len(); i++ {
		rep.flows = append(rep.flows, fs.Entry(i))
	}
	st.inMu.Unlock()
}

// peerContrib returns (allocating on first use) the dense contribution
// arrays of one peer.
func (st *shardState) peerContrib(from uint32) (loads, hdiag []float64) {
	loads, ok := st.peerLoad[from]
	if !ok {
		loads = make([]float64, len(st.boundary))
		hdiag = make([]float64, len(st.boundary))
		st.peerLoad[from] = loads
		st.peerHdiag[from] = hdiag
		return loads, hdiag
	}
	return loads, st.peerHdiag[from]
}

// closePeers tears down every outbound peer connection.
func (st *shardState) closePeers() {
	st.pmu.Lock()
	defer st.pmu.Unlock()
	for _, pc := range st.peers {
		pc.conn.Close()
	}
	clear(st.peers)
}

// ---------------------------------------------------------------------------
// Outbound: dialing peers and pushing bundles.

// ConnectPeer attaches an outbound shard-to-shard connection: it performs
// the symmetric PeerHello handshake over conn and, on success, pushes this
// daemon's exchange bundle to that peer after every iteration, returning the
// peer's shard index (so dialers can monitor it with HasPeer and redial).
// The caller supplies the transport (TCP for real clusters, a net.Pipe end
// for in-process ones); serving the *inbound* direction is the remote
// daemon's job (its ServeConn recognizes the PeerHello). Reconnecting an
// already connected shard replaces the previous connection.
func (s *Server) ConnectPeer(conn net.Conn) (int, error) {
	if s.shard == nil {
		conn.Close()
		return -1, fmt.Errorf("server: ConnectPeer on an unsharded daemon")
	}
	if s.isClosed() {
		conn.Close()
		return -1, net.ErrClosed
	}
	hello := wire.AppendPeerHello(nil, wire.PeerHello{
		Version:   wire.Version,
		Shard:     uint32(s.cfg.ShardIndex),
		NumShards: uint32(s.cfg.NumShards),
		Epoch:     s.Epoch(),
	})
	// Bound the whole handshake: a peer that accepts TCP but never replies
	// (wrong service, frozen daemon) must fail the dial attempt, not wedge
	// the dial-with-retry loop forever.
	if err := conn.SetDeadline(time.Now().Add(peerExchangeTimeout)); err != nil {
		conn.Close()
		return -1, fmt.Errorf("server: peer handshake: %w", err)
	}
	if _, err := conn.Write(hello); err != nil {
		conn.Close()
		return -1, fmt.Errorf("server: peer handshake: %w", err)
	}
	sc := wire.NewScanner(conn)
	typ, payload, err := sc.Next()
	if err != nil {
		conn.Close()
		return -1, fmt.Errorf("server: peer handshake: %w", err)
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		return -1, fmt.Errorf("server: peer handshake: %w", err)
	}
	if typ != wire.TypePeerHello {
		conn.Close()
		return -1, fmt.Errorf("server: peer handshake: expected peer-hello, got %s", typ)
	}
	reply, err := wire.DecodePeerHello(payload)
	if err != nil {
		conn.Close()
		return -1, fmt.Errorf("server: peer handshake: %w", err)
	}
	if err := s.shard.validatePeer(reply); err != nil {
		conn.Close()
		return -1, err
	}
	pc := &peerConn{
		shard:     int(reply.Shard),
		conn:      conn,
		sc:        sc,
		version:   min(reply.Version, wire.Version),
		needReset: true,
	}
	s.shard.pmu.Lock()
	old := s.shard.peers[pc.shard]
	s.shard.peers[pc.shard] = pc
	s.shard.pmu.Unlock()
	if old != nil {
		old.conn.Close()
	}
	s.logf("peer shard %d connected (epoch %d)", pc.shard, reply.Epoch)
	return pc.shard, nil
}

// HasPeer reports whether an outbound connection to the given shard is
// currently attached; dial loops poll it to detect a dropped peer and
// redial.
func (s *Server) HasPeer(shard int) bool {
	if s.shard == nil {
		return false
	}
	s.shard.pmu.Lock()
	defer s.shard.pmu.Unlock()
	_, ok := s.shard.peers[shard]
	return ok
}

// validatePeer checks a PeerHello against this daemon's cluster shape.
func (st *shardState) validatePeer(h wire.PeerHello) error {
	switch {
	case h.Version > wire.Version:
		return fmt.Errorf("server: peer speaks protocol v%d, daemon supports v%d", h.Version, wire.Version)
	case int(h.NumShards) != st.smap.NumShards():
		return fmt.Errorf("server: peer believes in %d shards, this cluster has %d", h.NumShards, st.smap.NumShards())
	case int(h.Shard) >= st.smap.NumShards():
		return fmt.Errorf("server: peer shard %d out of range for %d shards", h.Shard, st.smap.NumShards())
	case int(h.Shard) == st.index:
		return fmt.Errorf("server: peer claims this daemon's own shard %d", h.Shard)
	}
	return nil
}

// Peers returns the shard indices of the currently connected outbound peers,
// sorted.
func (s *Server) Peers() []int {
	if s.shard == nil {
		return nil
	}
	s.shard.pmu.Lock()
	out := make([]int, 0, len(s.shard.peers))
	for shard := range s.shard.peers {
		out = append(out, shard)
	}
	s.shard.pmu.Unlock()
	sort.Ints(out)
	return out
}

// buildExchangeLocked encodes this iteration's digest+snapshot bundle for
// every connected peer and returns the peers to push to, in shard order.
// Called with s.mu (engine state) and shard.sendMu held.
func (s *Server) buildExchangeLocked(seq uint64) []*peerConn {
	st := s.shard
	st.pmu.Lock()
	peers := make([]*peerConn, 0, len(st.peers))
	for _, pc := range st.peers {
		peers = append(peers, pc)
	}
	st.pmu.Unlock()
	if len(peers) == 0 {
		return nil
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].shard < peers[j].shard })

	st.ex.LinkPrices(st.boundary, st.snapPrices)
	epoch := s.Epoch()
	// Takeover mode: replicate this daemon's live flows to its successor in
	// every bundle, so the successor always holds the state it would need to
	// adopt; announcements of completed takeovers ride in every bundle once.
	var replica []core.ParallelFlow
	successor := -1
	if st.takeover {
		if sn, ok := s.eng.(snapshotter); ok {
			replica = sn.LiveFlows()
			successor = st.successorOf(st.index)
		}
	}
	announce := st.announce
	st.announce = nil
	for _, pc := range peers {
		remote := st.remoteLinksFor(pc.shard)
		if cap(st.digestLoads) < len(remote) {
			st.digestLoads = make([]float64, len(remote))
			st.digestHdiag = make([]float64, len(remote))
		}
		loads := st.digestLoads[:len(remote)]
		hdiag := st.digestHdiag[:len(remote)]
		if err := st.ex.BoundaryDigest(remote, loads, hdiag); err != nil {
			s.logf("boundary digest for shard %d: %v", pc.shard, err)
			continue
		}
		buf := pc.buf[:0]
		if pc.version >= 4 {
			buf = pc.appendDigestDelta(buf, seq, uint32(st.index), remote, loads, hdiag)
		} else {
			for start := 0; start < len(remote); start += wire.MaxDigestEntries {
				end := min(start+wire.MaxDigestEntries, len(remote))
				buf = wire.AppendPriceDigestHeader(buf, seq, uint32(st.index), end-start)
				for i := start; i < end; i++ {
					buf = wire.AppendDigestEntry(buf, wire.DigestEntry{
						Link: uint32(remote[i]), Load: loads[i], Hdiag: hdiag[i],
					})
				}
			}
		}
		exchBytes := len(buf)
		if st.takeover {
			buf = wire.AppendHeartbeat(buf, wire.Heartbeat{Seq: seq, Shard: uint32(st.index)})
		}
		for _, t := range announce {
			t.Epoch, t.Seq = epoch, seq
			buf = wire.AppendTakeover(buf, t)
		}
		if pc.shard == successor {
			for start := 0; start < len(replica) || start == 0; start += wire.MaxFlowStateEntries {
				end := min(start+wire.MaxFlowStateEntries, len(replica))
				buf = wire.AppendFlowStateHeader(buf, epoch, seq, uint32(st.index), end-start)
				for _, f := range replica[start:end] {
					buf = wire.AppendFlowStateEntry(buf, wire.FlowStateEntry{
						Flow: int64(f.ID), Src: int32(f.Src), Dst: int32(f.Dst), Weight: f.Weight,
					})
				}
				if end == len(replica) {
					break
				}
			}
		}
		// The receiver acks every snapshot chunk, so count the chunks this
		// bundle will produce for sendExchange to await. Snapshot chunks go
		// last: their acks therefore confirm delivery of the whole bundle,
		// including any replica and takeover frames written above.
		ctrl := len(buf)
		pc.acks = 0
		if pc.version >= 4 {
			buf = pc.appendSnapshotDelta(buf, epoch, seq, uint32(st.index), st.boundary, st.snapPrices)
		} else {
			for start := 0; start < len(st.boundary); start += wire.MaxSnapshotEntries {
				end := min(start+wire.MaxSnapshotEntries, len(st.boundary))
				buf = wire.AppendPriceSnapshotHeader(buf, epoch, seq, uint32(st.index), end-start)
				for i := start; i < end; i++ {
					buf = wire.AppendSnapshotEntry(buf, wire.SnapshotEntry{
						Link: uint32(st.boundary[i]), Price: st.snapPrices[i],
					})
				}
				pc.acks++
			}
		}
		exchBytes += len(buf) - ctrl
		pc.needReset = false
		pc.buf = buf
		pc.seq = seq
		// Exchange byte accounting happens at build time, not send time, so
		// the counters are deterministic in step-driven runs. Heartbeat,
		// takeover, and replica frames are excluded: they exist in both
		// encodings unchanged.
		s.stExchBytes.Add(int64(exchBytes))
		s.stExchFixed.Add(fixedExchangeBytes(len(remote), len(st.boundary)))
	}
	return peers
}

// appendDigestDelta encodes this iteration's digest for a v4 peer. On a
// fresh or resyncing connection it emits a reset digest — the receiver
// zeroes this daemon's contributions before applying it, so all-zero links
// can be omitted. Afterwards only links whose (load, hdiag) pair changed
// bit-wise since the last built bundle are listed; the receiver keeps prior
// values for omitted links, which is exactly what refreshing them from a
// full v3 digest would produce. A quiet iteration still emits one empty
// frame (header only): the fold and staleness counters measure per-iteration
// exchange behaviour, and an explicit "nothing changed" marker keeps them —
// and every committed baseline that records them — identical across wire
// versions at a cost of a few bytes.
func (pc *peerConn) appendDigestDelta(buf []byte, seq uint64, shard uint32, remote []topology.LinkID, loads, hdiag []float64) []byte {
	reset := pc.needReset || pc.digestShadow == nil
	if pc.digestShadow == nil {
		pc.digestShadow = make(map[topology.LinkID][2]uint64, len(remote))
	} else if reset {
		clear(pc.digestShadow)
	}
	links := pc.dLinks[:0]
	dl := pc.dLoads[:0]
	dh := pc.dHdiag[:0]
	for i, l := range remote {
		bits := [2]uint64{math.Float64bits(loads[i]), math.Float64bits(hdiag[i])}
		if reset {
			pc.digestShadow[l] = bits
			if loads[i] == 0 && hdiag[i] == 0 {
				continue // implied by the reset
			}
		} else {
			if prev, ok := pc.digestShadow[l]; ok && prev == bits {
				continue
			}
			pc.digestShadow[l] = bits
		}
		links = append(links, uint32(l))
		dl = append(dl, loads[i])
		dh = append(dh, hdiag[i])
	}
	pc.dLinks, pc.dLoads, pc.dHdiag = links, dl, dh
	for start := 0; ; start += wire.MaxDigestDeltaEntries {
		end := min(start+wire.MaxDigestDeltaEntries, len(links))
		buf = wire.AppendPriceDigestDelta(buf, seq, shard, reset && start == 0, links[start:end], dl[start:end], dh[start:end])
		if end >= len(links) {
			break
		}
	}
	return buf
}

// appendSnapshotDelta encodes this iteration's boundary-price snapshot for a
// v4 peer and sets pc.acks. A reset lists every boundary link — a pinned
// zero price is not the same as no pin, so resets cannot omit entries —
// while later bundles list only changed prices. At least one (possibly
// empty) frame is always emitted: the receiver acks each snapshot-delta
// chunk, and that ack is the delivery barrier step-driven determinism rests
// on.
func (pc *peerConn) appendSnapshotDelta(buf []byte, epoch, seq uint64, shard uint32, boundary []topology.LinkID, prices []float64) []byte {
	reset := pc.needReset || pc.snapShadow == nil
	if pc.snapShadow == nil {
		pc.snapShadow = make(map[topology.LinkID]uint64, len(boundary))
	} else if reset {
		clear(pc.snapShadow)
	}
	links := pc.sLinks[:0]
	vals := pc.sPrices[:0]
	for i, l := range boundary {
		bits := math.Float64bits(prices[i])
		if !reset {
			if prev, ok := pc.snapShadow[l]; ok && prev == bits {
				continue
			}
		}
		pc.snapShadow[l] = bits
		links = append(links, uint32(l))
		vals = append(vals, prices[i])
	}
	pc.sLinks, pc.sPrices = links, vals
	pc.acks = 0
	for start := 0; ; start += wire.MaxSnapshotDeltaEntries {
		end := min(start+wire.MaxSnapshotDeltaEntries, len(links))
		buf = wire.AppendPriceSnapshotDelta(buf, epoch, seq, shard, reset && start == 0, links[start:end], vals[start:end])
		pc.acks++
		if end >= len(links) {
			break
		}
	}
	return buf
}

// fixedExchangeBytes is the wire cost this bundle's digest and snapshot
// would have as fixed v3 frames with v3 chunking — the baseline of the
// ExchangeBytesFixed counter.
func fixedExchangeBytes(nRemote, nBoundary int) int64 {
	var b int64
	for start := 0; start < nRemote; start += wire.MaxDigestEntries {
		b += int64(wire.PriceDigestSize(min(wire.MaxDigestEntries, nRemote-start)))
	}
	for start := 0; start < nBoundary; start += wire.MaxSnapshotEntries {
		b += int64(wire.PriceSnapshotSize(min(wire.MaxSnapshotEntries, nBoundary-start)))
	}
	return b
}

// markResyncPeers forces the next bundle to every connected peer to carry a
// full (reset) digest and snapshot. Called whenever served-shard ownership
// changes: the per-link shadows themselves stay valid across a takeover
// (both sides track links, not boundary positions), but a full resync after
// the rare ownership change keeps the sender/receiver invariant easy to
// audit and bounds any divergence to one exchange round.
func (st *shardState) markResyncPeers() {
	st.pmu.Lock()
	for _, pc := range st.peers {
		pc.needReset = true
	}
	st.pmu.Unlock()
}

// remoteLinksFor returns the boundary links of every shard a peer daemon
// currently serves — the links a digest pushed to it must cover. Called with
// the server mutex held; the cache is invalidated when takeovers re-point
// servedBy.
func (st *shardState) remoteLinksFor(daemon int) []topology.LinkID {
	if links, ok := st.remoteLinks[daemon]; ok {
		return links
	}
	var links []topology.LinkID
	for x := 0; x < st.smap.NumShards(); x++ {
		if st.servedBy[x] == int32(daemon) {
			links = append(links, st.smap.BoundaryLinks(x)...)
		}
	}
	st.remoteLinks[daemon] = links
	return links
}

// sendExchange pushes the prepared bundles and waits for each peer's ack
// (the receiver acknowledges from its reader goroutine immediately, never
// from its own iteration path, so two shards pushing to each other cannot
// deadlock). A peer that fails is dropped; the shard keeps iterating with
// its last imported state until the operator reconnects it.
func (s *Server) sendExchange(peers []*peerConn) {
	for _, pc := range peers {
		if len(pc.buf) == 0 {
			continue
		}
		// Bound the whole push: a wedged peer (alive but not draining) is
		// dropped at the deadline instead of freezing the allocation loop.
		if err := pc.conn.SetDeadline(time.Now().Add(peerExchangeTimeout)); err != nil {
			s.dropPeer(pc, err)
			continue
		}
		if err := s.pushBundle(pc); err != nil {
			s.dropPeer(pc, err)
			continue
		}
		if err := pc.conn.SetDeadline(time.Time{}); err != nil {
			s.dropPeer(pc, err)
		}
	}
}

// pushBundle writes one prepared bundle and consumes its acks (one per
// snapshot chunk, each echoing the bundle's sequence number).
func (s *Server) pushBundle(pc *peerConn) error {
	if _, err := pc.conn.Write(pc.buf); err != nil {
		return err
	}
	for i := 0; i < pc.acks; i++ {
		typ, payload, err := pc.sc.Next()
		if err != nil {
			return err
		}
		if typ != wire.TypeExchangeAck {
			return fmt.Errorf("unexpected %s frame", typ)
		}
		seq, err := wire.DecodeExchangeAck(payload)
		if err != nil || seq != pc.seq {
			return fmt.Errorf("bad exchange ack (seq %d, want %d): %v", seq, pc.seq, err)
		}
	}
	return nil
}

// dropPeer detaches a failed outbound peer connection. With takeover
// enabled a failed push is the death signal: the peer is queued for
// processing at the next iteration boundary, where this daemon either
// adopts its rack block (if it is the successor) or just records the death.
// Keeping detection on the synchronous push path — never on asynchronous
// inbound EOFs — is what keeps step-driven cluster runs deterministic.
func (s *Server) dropPeer(pc *peerConn, err error) {
	st := s.shard
	st.pmu.Lock()
	if st.peers[pc.shard] == pc {
		delete(st.peers, pc.shard)
	}
	st.pmu.Unlock()
	pc.conn.Close()
	if s.isClosed() {
		return
	}
	s.logf("peer shard %d dropped: %v", pc.shard, err)
	if st.takeover {
		st.noteDead(pc.shard)
	}
}

// ---------------------------------------------------------------------------
// Inbound: serving peer sessions and folding their bundles.

// servePeer runs one inbound shard-to-shard session: it completes the
// symmetric handshake, then enqueues every digest and snapshot for the next
// iteration boundary, acknowledging each bundle as its snapshot arrives.
func (s *Server) servePeer(conn net.Conn, sc *wire.Scanner, payload []byte) error {
	if s.shard == nil {
		return fmt.Errorf("server: peer hello on an unsharded daemon")
	}
	hello, err := wire.DecodePeerHello(payload)
	if err != nil {
		return fmt.Errorf("server: peer handshake: %w", err)
	}
	if err := s.shard.validatePeer(hello); err != nil {
		return err
	}
	reply := wire.AppendPeerHello(nil, wire.PeerHello{
		Version:   wire.Version,
		Shard:     uint32(s.cfg.ShardIndex),
		NumShards: uint32(s.cfg.NumShards),
		Epoch:     s.Epoch(),
	})
	if _, err := conn.Write(reply); err != nil {
		return fmt.Errorf("server: peer handshake: %w", err)
	}
	s.logf("peer shard %d session from %v (epoch %d)", hello.Shard, conn.RemoteAddr(), hello.Epoch)

	var ack []byte
	var dd wire.PriceDigestDelta
	var sd wire.PriceSnapshotDelta
	for {
		typ, payload, err := sc.Next()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) {
				return nil
			}
			return fmt.Errorf("server: peer shard %d: %w", hello.Shard, err)
		}
		s.shard.noteHeard(int(hello.Shard))
		switch typ {
		case wire.TypePriceDigest:
			d, err := wire.DecodePriceDigest(payload)
			if err != nil {
				return fmt.Errorf("server: peer shard %d: %w", hello.Shard, err)
			}
			if d.Shard != hello.Shard {
				s.stPeerRej.Add(1)
				continue
			}
			s.shard.enqueueDigest(d)
		case wire.TypePriceDigestDelta:
			if err := wire.DecodePriceDigestDelta(payload, &dd); err != nil {
				return fmt.Errorf("server: peer shard %d: %w", hello.Shard, err)
			}
			if dd.Shard != hello.Shard {
				s.stPeerRej.Add(1)
				continue
			}
			s.shard.enqueueDigestDelta(dd)
		case wire.TypePriceSnapshotDelta:
			if err := wire.DecodePriceSnapshotDelta(payload, &sd); err != nil {
				return fmt.Errorf("server: peer shard %d: %w", hello.Shard, err)
			}
			if sd.Shard != hello.Shard || sd.Epoch < hello.Epoch {
				// Wrong sender or a pre-session generation: drop the content
				// but still ack — the peer blocks on delivery, not
				// acceptance.
				s.stPeerRej.Add(1)
			} else {
				s.shard.enqueueSnapshotDelta(sd)
			}
			ack = wire.AppendExchangeAck(ack[:0], sd.Seq)
			if _, err := conn.Write(ack); err != nil {
				return fmt.Errorf("server: peer shard %d: ack: %w", hello.Shard, err)
			}
		case wire.TypePriceSnapshot:
			sn, err := wire.DecodePriceSnapshot(payload)
			if err != nil {
				return fmt.Errorf("server: peer shard %d: %w", hello.Shard, err)
			}
			if sn.Shard != hello.Shard || sn.Epoch < hello.Epoch {
				// Wrong sender or a snapshot taken before the generation
				// this session advertised: drop the content but still ack,
				// because the peer blocks on delivery, not acceptance.
				s.stPeerRej.Add(1)
			} else {
				s.shard.enqueueSnapshot(sn)
			}
			ack = wire.AppendExchangeAck(ack[:0], sn.Seq)
			if _, err := conn.Write(ack); err != nil {
				return fmt.Errorf("server: peer shard %d: ack: %w", hello.Shard, err)
			}
		case wire.TypeHeartbeat:
			hb, err := wire.DecodeHeartbeat(payload)
			if err != nil {
				return fmt.Errorf("server: peer shard %d: %w", hello.Shard, err)
			}
			if hb.Shard != hello.Shard {
				s.stPeerRej.Add(1)
			}
		case wire.TypeFlowState:
			fs, err := wire.DecodeFlowState(payload)
			if err != nil {
				return fmt.Errorf("server: peer shard %d: %w", hello.Shard, err)
			}
			if fs.Shard != hello.Shard || fs.Epoch < hello.Epoch {
				s.stPeerRej.Add(1)
				continue
			}
			s.shard.storeReplica(fs)
		case wire.TypeTakeover:
			tk, err := wire.DecodeTakeover(payload)
			if err != nil {
				return fmt.Errorf("server: peer shard %d: %w", hello.Shard, err)
			}
			if tk.By != hello.Shard {
				s.stPeerRej.Add(1)
				continue
			}
			s.shard.enqueueTakeover(tk)
		default:
			return fmt.Errorf("server: peer shard %d: unexpected %s frame", hello.Shard, typ)
		}
	}
}

// enqueueTakeover queues a takeover announcement for the next iteration
// boundary, where it re-points servedBy like any other seq-stamped fold.
func (st *shardState) enqueueTakeover(tk wire.Takeover) {
	st.inMu.Lock()
	st.pending = append(st.pending, exchangeMsg{
		from: tk.By, seq: tk.Seq, takeover: true, dead: tk.Dead,
	})
	st.inMu.Unlock()
}

// enqueueDigest copies a digest out of the scanner buffer into the pending
// queue.
func (st *shardState) enqueueDigest(d wire.PriceDigest) {
	m := exchangeMsg{
		from:  d.Shard,
		seq:   d.Seq,
		links: make([]int32, d.Len()),
		vals:  make([]float64, d.Len()),
		hdiag: make([]float64, d.Len()),
	}
	for i := 0; i < d.Len(); i++ {
		e := d.Entry(i)
		m.links[i] = int32(e.Link)
		m.vals[i] = e.Load
		m.hdiag[i] = e.Hdiag
	}
	st.inMu.Lock()
	st.pending = append(st.pending, m)
	st.inMu.Unlock()
}

// enqueueDigestDelta copies a decoded delta digest (the decode scratch is
// reused frame to frame) into the pending queue.
func (st *shardState) enqueueDigestDelta(d wire.PriceDigestDelta) {
	m := exchangeMsg{
		from:  d.Shard,
		seq:   d.Seq,
		delta: true,
		reset: d.Reset,
		links: make([]int32, len(d.Links)),
		vals:  make([]float64, len(d.Links)),
		hdiag: make([]float64, len(d.Links)),
	}
	for i, l := range d.Links {
		m.links[i] = int32(l)
	}
	copy(m.vals, d.Loads)
	copy(m.hdiag, d.Hdiag)
	st.inMu.Lock()
	st.pending = append(st.pending, m)
	st.inMu.Unlock()
}

// enqueueSnapshotDelta copies a decoded delta snapshot into the pending
// queue.
func (st *shardState) enqueueSnapshotDelta(sn wire.PriceSnapshotDelta) {
	m := exchangeMsg{
		from:     sn.Shard,
		seq:      sn.Seq,
		snapshot: true,
		delta:    true,
		reset:    sn.Reset,
		links:    make([]int32, len(sn.Links)),
		vals:     make([]float64, len(sn.Links)),
	}
	for i, l := range sn.Links {
		m.links[i] = int32(l)
	}
	copy(m.vals, sn.Prices)
	st.inMu.Lock()
	st.pending = append(st.pending, m)
	st.inMu.Unlock()
}

// enqueueSnapshot copies a snapshot out of the scanner buffer into the
// pending queue.
func (st *shardState) enqueueSnapshot(sn wire.PriceSnapshot) {
	m := exchangeMsg{
		from:     sn.Shard,
		seq:      sn.Seq,
		snapshot: true,
		links:    make([]int32, sn.Len()),
		vals:     make([]float64, sn.Len()),
	}
	for i := 0; i < sn.Len(); i++ {
		e := sn.Entry(i)
		m.links[i] = int32(e.Link)
		m.vals[i] = e.Price
	}
	st.inMu.Lock()
	st.pending = append(st.pending, m)
	st.inMu.Unlock()
}

// foldExchangeLocked folds pending peer bundles into the engine. Called with
// s.mu held, before flowlet events are drained. Step-driven daemons apply
// only bundles stamped at or before their own completed iteration count, so
// a bundle from iteration k lands at iteration k+1 on every shard no matter
// in which order a cluster client steps the daemons; free-running daemons
// fold everything that has arrived.
func (s *Server) foldExchangeLocked() {
	st := s.shard
	st.inMu.Lock()
	if len(st.pending) == 0 {
		st.inMu.Unlock()
		return
	}
	var apply []exchangeMsg
	if s.cfg.Interval == 0 {
		kept := st.pending[:0]
		for _, m := range st.pending {
			if m.seq <= s.seq {
				apply = append(apply, m)
			} else {
				kept = append(kept, m)
			}
		}
		st.pending = kept
	} else {
		apply = st.pending
		st.pending = st.drain[:0]
		st.drain = apply
	}
	st.inMu.Unlock()

	digests := false
	for _, m := range apply {
		s.stPeerEx.Add(1)
		// Staleness: how many local iterations old the peer's bundle is at
		// the moment it takes effect. Step-driven daemons fold at exactly
		// seq+1 (staleness 1); free-running daemons can fold older — or,
		// clamped to zero, newer — bundles depending on scheduling.
		s.stExchFolds.Add(1)
		if lag := int64(s.seq) - int64(m.seq); lag > 0 {
			s.stExchStale.Add(lag)
		}
		if m.takeover {
			s.applyTakeoverLocked(int(m.dead), int(m.from))
			digests = true // peer contributions changed; re-sum below
			continue
		}
		if m.snapshot {
			st.pinLinks = st.pinLinks[:0]
			st.pinVals = st.pinVals[:0]
			for i, l := range m.links {
				if l < 0 || int(l) >= st.numLinks || !st.servesLink(topology.LinkID(l), m.from) {
					s.stPeerRej.Add(1)
					continue
				}
				st.pinLinks = append(st.pinLinks, topology.LinkID(l))
				st.pinVals = append(st.pinVals, m.vals[i])
			}
			if len(st.pinLinks) > 0 {
				st.ex.PinPrices(st.pinLinks, st.pinVals)
			}
			if len(st.pinLinks) > 0 || m.reset {
				st.retainSnapshot(m.from, m.seq, st.pinLinks, st.pinVals, m.reset, m.delta)
			}
			continue
		}
		loads, hdiag := st.peerContrib(m.from)
		if m.reset {
			// A reset digest re-baselines this sender: its previous
			// contributions are discarded before the (possibly sparse)
			// entries are applied, so all-zero links may be omitted.
			for i := range loads {
				loads[i], hdiag[i] = 0, 0
			}
		}
		for i, l := range m.links {
			pos := int32(-1)
			if l >= 0 && int(l) < st.numLinks {
				pos = st.posOf[l]
			}
			if pos < 0 {
				s.stPeerRej.Add(1)
				continue
			}
			loads[pos] = m.vals[i]
			hdiag[pos] = m.hdiag[i]
		}
		digests = true
	}
	if digests {
		for i := range st.extLoad {
			st.extLoad[i] = 0
			st.extHdiag[i] = 0
		}
		// Sum contributions in shard order, never map order: float addition
		// is not associative, so a randomized order would make runs with
		// three or more peers diverge at ULP scale.
		for from := 0; from < st.smap.NumShards(); from++ {
			loads, ok := st.peerLoad[uint32(from)]
			if !ok {
				continue
			}
			hdiag := st.peerHdiag[uint32(from)]
			for i := range st.extLoad {
				st.extLoad[i] += loads[i]
				st.extHdiag[i] += hdiag[i]
			}
		}
		st.ex.SetExternalLoads(st.boundary, st.extLoad, st.extHdiag)
	}
}

// retainSnapshot keeps a merged copy of a peer daemon's accepted prices for
// adoption seeding. Fixed (v3) snapshots are complete per sequence: chunks
// of one sequence accumulate, a newer sequence replaces. Delta (v4)
// snapshots list only changed links, so they merge across sequences and
// re-baseline on reset — either way the record always holds the peer's full
// last-known price set. Called with the server mutex held.
func (st *shardState) retainSnapshot(from uint32, seq uint64, links []topology.LinkID, prices []float64, reset, delta bool) {
	rec := st.lastSnap[from]
	if rec == nil {
		rec = &snapRecord{prices: make(map[topology.LinkID]float64, len(links))}
		st.lastSnap[from] = rec
	}
	if reset || (!delta && rec.seq != seq) {
		clear(rec.prices)
	}
	rec.seq = seq
	for i, l := range links {
		rec.prices[l] = prices[i]
	}
}

// applyTakeoverLocked re-points ownership after daemon `by` adopted dead
// daemon `dead`: every shard dead served is now served by the adopter,
// dead's stale digest contributions are discarded (the adopter's own digest
// now carries those flows' loads), and the digest-target cache is rebuilt.
// Called with the server mutex held.
func (s *Server) applyTakeoverLocked(dead, by int) {
	st := s.shard
	if dead == st.index || dead < 0 || dead >= st.smap.NumShards() {
		s.stPeerRej.Add(1)
		return
	}
	st.deadDaemons[dead] = true
	for x := range st.servedBy {
		if st.servedBy[x] == int32(dead) {
			st.servedBy[x] = int32(by)
		}
	}
	delete(st.peerLoad, uint32(dead))
	delete(st.peerHdiag, uint32(dead))
	clear(st.remoteLinks)
	// The adopter's digest target set just grew; push it (and everyone
	// else) a full bundle next iteration rather than a delta.
	st.markResyncPeers()
	s.logf("shard takeover: daemon %d adopted daemon %d's rack block", by, dead)
}

// processDeathsLocked handles daemons detected dead since the last
// iteration boundary: the successor adopts their rack blocks (seeding the
// replica flows and retained prices it holds) and queues a takeover
// announcement; everyone else records the death so successor elections
// stay consistent. Called with the server mutex and sendMu held, after
// foldExchangeLocked and before flowlet events are drained — a client
// re-registering an orphaned flow in the same step finds it already
// adopted.
func (s *Server) processDeathsLocked() {
	st := s.shard
	st.inMu.Lock()
	pend := st.deadPending
	st.deadPending = nil
	// Free-running daemons additionally declare peers dead on heartbeat
	// staleness; step-driven ones rely on push failures alone so runs stay
	// deterministic.
	if st.interval > 0 && st.hbGrace > 0 {
		now := time.Now()
		for d, heard := range st.lastHeard {
			if !st.deadDaemons[d] && now.Sub(heard) > st.hbGrace {
				pend = append(pend, d)
			}
		}
	}
	st.inMu.Unlock()
	if len(pend) == 0 {
		return
	}
	sort.Ints(pend)
	for _, dead := range pend {
		if dead == st.index || st.deadDaemons[dead] {
			continue
		}
		st.deadDaemons[dead] = true
		delete(st.peerLoad, uint32(dead))
		delete(st.peerHdiag, uint32(dead))
		clear(st.remoteLinks)
		st.markResyncPeers()
		if st.successorOf(dead) != st.index {
			continue
		}
		s.adoptLocked(dead)
	}
}

// adoptLocked makes this daemon serve dead's rack block: replica flows are
// admitted unowned (a reconnecting client claims them churn-free through
// the adoption path), the retained price snapshot is seeded and unpinned so
// the adopted boundary is priced locally from now on, ownership and the
// boundary arrays are rebuilt, and the takeover is queued for announcement
// in the next exchange bundle.
func (s *Server) adoptLocked(dead int) {
	st := s.shard
	st.inMu.Lock()
	rep := st.replicas[uint32(dead)]
	delete(st.replicas, uint32(dead))
	st.inMu.Unlock()

	adopted, failed := 0, 0
	if rep != nil {
		for _, e := range rep.flows {
			id := core.FlowID(e.Flow)
			if _, exists := s.owners[id]; exists {
				continue
			}
			if err := s.eng.FlowletStart(id, int(e.Src), int(e.Dst), e.Weight); err != nil {
				failed++
				continue
			}
			s.owners[id] = nil
			s.unowned[id] = flowMeta{src: int(e.Src), dst: int(e.Dst), weight: e.Weight}
			adopted++
		}
	}
	if rec := st.lastSnap[uint32(dead)]; rec != nil && len(rec.prices) > 0 {
		// Deterministic seeding order: the record is a merged map, so sort
		// by link. Per-link assignment makes the order cosmetic, but sorted
		// output keeps logs and tests stable.
		links := make([]topology.LinkID, 0, len(rec.prices))
		for l := range rec.prices {
			links = append(links, l)
		}
		sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
		prices := make([]float64, len(links))
		for i, l := range links {
			prices[i] = rec.prices[l]
		}
		st.ex.SeedPrices(links, prices)
		st.ex.UnpinPrices(links)
	}
	delete(st.lastSnap, uint32(dead))
	for x := range st.servedBy {
		if st.servedBy[x] == int32(dead) {
			st.servedBy[x] = int32(st.index)
		}
	}
	st.rebuildBoundaryLocked()
	st.announce = append(st.announce, wire.Takeover{Dead: uint32(dead), By: uint32(st.index)})
	s.stTakeovers.Add(1)
	s.logf("adopted dead daemon %d: %d flows seeded (%d failed), now serving %d shards",
		dead, adopted, failed, st.numServedLocked())
}

// numServedLocked counts the shards this daemon currently serves.
func (st *shardState) numServedLocked() int {
	n := 0
	for _, by := range st.servedBy {
		if by == int32(st.index) {
			n++
		}
	}
	return n
}

// rebuildBoundaryLocked recomputes the boundary arrays after the served
// shard set changed: the boundary becomes the concatenation, in shard
// order, of every served shard's downward links. The dense per-peer
// contribution arrays are remapped by LinkID onto the new layout — links
// present in both keep their imported values, which keeps peers' delta
// digests (whose omitted entries mean "unchanged") correct across the
// rebuild. The engine-visible external loads are zeroed exactly as before:
// the next fold re-sums them from the remapped arrays, and in step-driven
// runs every live peer's bundle arrives before that fold, so the remapped
// values are fully refreshed before they are ever summed.
func (st *shardState) rebuildBoundaryLocked() {
	old := st.boundary
	var b []topology.LinkID
	for x := 0; x < st.smap.NumShards(); x++ {
		if st.servedBy[x] == int32(st.index) {
			b = append(b, st.smap.BoundaryLinks(x)...)
		}
	}
	st.boundary = b
	for i := range st.posOf {
		st.posOf[i] = -1
	}
	for i, l := range st.boundary {
		st.posOf[l] = int32(i)
	}
	for from, oldLoads := range st.peerLoad {
		oldHdiag := st.peerHdiag[from]
		newLoads := make([]float64, len(b))
		newHdiag := make([]float64, len(b))
		for i, l := range old {
			if i >= len(oldLoads) {
				break
			}
			if pos := st.posOf[l]; pos >= 0 {
				newLoads[pos] = oldLoads[i]
				newHdiag[pos] = oldHdiag[i]
			}
		}
		st.peerLoad[from] = newLoads
		st.peerHdiag[from] = newHdiag
	}
	st.extLoad = make([]float64, len(b))
	st.extHdiag = make([]float64, len(b))
	st.snapPrices = make([]float64, len(b))
	clear(st.remoteLinks)
	st.ex.SetExternalLoads(st.boundary, st.extLoad, st.extHdiag)
	st.markResyncPeers()
}

// ServesShard reports whether this daemon currently serves the given shard:
// its own from the start, others after adopting them. Clients use it to
// decide where to re-register a dead shard's flows.
func (s *Server) ServesShard(shard int) bool {
	if s.shard == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return shard >= 0 && shard < len(s.shard.servedBy) && s.shard.servedBy[shard] == int32(s.shard.index)
}

package server

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/transport"
)

// clusterTopo is a 4-rack fabric sharded in halves by the cluster tests.
func clusterTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.NewTwoTier(topology.Config{
		Racks: 4, ServersPerRack: 2, Spines: 2, LinkCapacity: 10e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// startShardPair builds a 2-shard cluster over in-memory pipes: two sharded
// daemons, peer connections in both directions, and one client per shard.
func startShardPair(t *testing.T) (srvs [2]*Server, clis [2]*transport.AllocClient) {
	t.Helper()
	topo := clusterTopo(t)
	for i := 0; i < 2; i++ {
		srv, err := New(Config{Topology: topo, NumShards: 2, ShardIndex: i})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		srvs[i] = srv
	}
	for i := 0; i < 2; i++ {
		out, in := net.Pipe()
		go srvs[1-i].ServeConn(in)
		if _, err := srvs[i].ConnectPeer(out); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		clientEnd, serverEnd := net.Pipe()
		go srvs[i].ServeConn(serverEnd)
		cli, err := transport.NewAllocClient(clientEnd, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cli.Close() })
		clis[i] = cli
	}
	return srvs, clis
}

// TestBoundaryExchangeSharesCongestion is the end-to-end check of the price
// exchange: a cross-shard flow (shard 0 → a server in shard 1) and a local
// flow inside shard 1 share one downward link. Without the exchange each
// daemon would hand its flow the full link; with it, the owner prices the
// link from cluster-wide demand, the remote shard imports that price, and
// the two flows converge to fair shares that fit the link.
func TestBoundaryExchangeSharesCongestion(t *testing.T) {
	srvs, clis := startShardPair(t)
	if got := srvs[0].Peers(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("shard 0 peers = %v, want [1]", got)
	}

	// Flow 1: server 0 (rack 0, shard 0) → server 4 (rack 2, shard 1).
	// Flow 2: server 5 → server 4, intra-rack inside shard 1.
	// Shared bottleneck: the tor2→server4 downward link (10 Gbit/s).
	if err := clis[0].FlowletStart(1, 0, 4, 1); err != nil {
		t.Fatal(err)
	}
	if err := clis[1].FlowletStart(2, 5, 4, 1); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 200; round++ {
		if _, err := clis[0].Step(); err != nil {
			t.Fatal(err)
		}
		if _, err := clis[1].Step(); err != nil {
			t.Fatal(err)
		}
	}
	r1 := srvs[0].Rates()[core.FlowID(1)]
	r2 := srvs[1].Rates()[core.FlowID(2)]
	const cap = 10e9
	if r1 <= 0 || r2 <= 0 {
		t.Fatalf("rates not allocated: r1=%g r2=%g", r1, r2)
	}
	if sum := r1 + r2; sum > 1.02*cap {
		t.Fatalf("combined allocation %g overshoots the shared link (%g): the exchange is not pricing remote demand", sum, cap)
	}
	// Proportional fairness on one shared link: roughly equal shares.
	if r1 < 0.3*cap || r2 < 0.3*cap {
		t.Fatalf("shares too skewed: r1=%g r2=%g", r1, r2)
	}
	for i, srv := range srvs {
		st := srv.Stats()
		if st.PeerExchanges == 0 {
			t.Fatalf("shard %d folded no peer exchanges", i)
		}
		if st.PeerRejected != 0 {
			t.Fatalf("shard %d rejected %d peer entries", i, st.PeerRejected)
		}
	}
}

// TestShardRejectsForeignFlow pins flow ownership: a sharded daemon refuses
// flowlets sourced in a peer's racks instead of double-allocating them.
func TestShardRejectsForeignFlow(t *testing.T) {
	srvs, clis := startShardPair(t)
	// Server 4 belongs to shard 1; registering its flow on shard 0 must be
	// dropped at the fold.
	if err := clis[0].FlowletStart(3, 4, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := clis[0].Step(); err != nil {
		t.Fatal(err)
	}
	if got := srvs[0].NumFlows(); got != 0 {
		t.Fatalf("foreign flow registered: NumFlows = %d", got)
	}
	if st := srvs[0].Stats(); st.RejectedAdds != 1 {
		t.Fatalf("RejectedAdds = %d, want 1", st.RejectedAdds)
	}
}

// TestPeerHandshakeValidation pins the cluster-shape checks of the peer
// handshake.
func TestPeerHandshakeValidation(t *testing.T) {
	topo := clusterTopo(t)
	sharded, err := New(Config{Topology: topo, NumShards: 2, ShardIndex: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	unsharded, err := New(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	defer unsharded.Close()

	// ConnectPeer is meaningless on an unsharded daemon.
	a, b := net.Pipe()
	defer b.Close()
	if _, err := unsharded.ConnectPeer(a); err == nil {
		t.Fatal("unsharded ConnectPeer accepted")
	}

	// A peer believing in a different shard count is refused.
	other, err := New(Config{Topology: topo, NumShards: 4, ShardIndex: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	// The acceptor rejects the mismatched hello and closes the connection,
	// so the dialer sees its handshake fail (typically as EOF).
	out, in := net.Pipe()
	errc := make(chan error, 1)
	go func() { errc <- sharded.ServeConn(in) }()
	if _, err := other.ConnectPeer(out); err == nil {
		t.Fatal("mismatched cluster accepted by dialer")
	}
	if err := <-errc; err == nil || !strings.Contains(err.Error(), "shards") {
		t.Fatalf("acceptor ended with %v, want shard-count error", err)
	}

	// A peer claiming our own shard index is refused by the acceptor.
	same, err := New(Config{Topology: topo, NumShards: 2, ShardIndex: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer same.Close()
	out2, in2 := net.Pipe()
	go sharded.ServeConn(in2)
	if _, err := same.ConnectPeer(out2); err == nil {
		t.Fatal("duplicate shard index accepted")
	}
}

// TestConnectPeerTimesOutOnSilentPeer pins the outbound-handshake deadline:
// a peer that accepts TCP but never replies must fail the dial attempt
// within the exchange timeout instead of wedging the retry loop forever.
func TestConnectPeerTimesOutOnSilentPeer(t *testing.T) {
	topo := clusterTopo(t)
	srv, err := New(Config{Topology: topo, NumShards: 2, ShardIndex: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold it open, never reply
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := srv.ConnectPeer(conn)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("silent peer handshake succeeded")
		}
	case <-time.After(peerExchangeTimeout + 5*time.Second):
		t.Fatal("ConnectPeer wedged past the handshake deadline")
	}
}

// TestShardedConfigValidation pins the sharded-config checks — and that the
// multicore engine is accepted (the old sequential-only restriction is gone).
func TestShardedConfigValidation(t *testing.T) {
	topo := clusterTopo(t)
	srv, err := New(Config{Topology: topo, NumShards: 2, ShardIndex: 0, Blocks: 2})
	if err != nil {
		t.Fatalf("sharded multicore daemon rejected: %v", err)
	}
	srv.Close()
	if _, err := New(Config{Topology: topo, NumShards: 2, ShardIndex: 5}); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if _, err := New(Config{Topology: topo, NumShards: 3, ShardIndex: 0}); err == nil {
		t.Fatal("3 shards over 4 racks accepted")
	}
}

package faults

import "testing"

// FuzzPlanRoundTrip feeds arbitrary text through the plan parser and, for
// anything that parses, requires the encoder to reach a canonical fixpoint:
// Encode(Parse(x)) must itself parse, and re-encoding that parse must be
// byte-identical. The parser must never panic on malformed input. Same idiom
// as the wire-format fuzz tests.
func FuzzPlanRoundTrip(f *testing.F) {
	f.Add(fullPlan().Encode())
	f.Add(PlanFormat + "\n")
	f.Add(PlanFormat + "\nstep=1 kind=link-down rack=0 spine=1 down=true\n")
	f.Add(PlanFormat + "\nstep=2 kind=link-degrade rack=1 spine=0 fraction=0.25\n")
	f.Add(PlanFormat + "\nstep=3 kind=kill-during-drain shard=1 delay=5\n")
	f.Add(PlanFormat + "\n# comment\nstep=4 kind=flash-crowd target=0 fanin=8 size=100 ramp=2\n")
	f.Add("step=1 kind=link-down\n")
	f.Add("garbage\x00\xff")

	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(text)
		if err != nil {
			return
		}
		enc := p.Encode()
		q, err := Parse(enc)
		if err != nil {
			t.Fatalf("canonical text rejected: %v\n%q", err, enc)
		}
		if again := q.Encode(); again != enc {
			t.Fatalf("encode not a fixpoint:\n 1st %q\n 2nd %q", enc, again)
		}
	})
}

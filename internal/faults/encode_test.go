package faults

import (
	"reflect"
	"strings"
	"testing"
)

// fullPlan exercises every event kind and every encoded field.
func fullPlan() *Plan {
	return &Plan{Events: []Event{
		{Step: 10, Kind: LinkDown, Rack: 0, Spine: 1},
		{Step: 20, Kind: LinkDown, Rack: 2, Spine: 0, Down: true},
		{Step: 30, Kind: LinkDegrade, Rack: 1, Spine: 1, Fraction: 0.25},
		{Step: 40, Kind: ECMPRehash, Salt: 2654435769},
		{Step: 50, Kind: KillDaemon, Shard: 2},
		{Step: 60, Kind: KillDuringDrain, Shard: 1, Delay: 5},
		{Step: 70, Kind: CascadeKill, Shard: 3, Count: 2, Spacing: 30},
		{Step: 80, Kind: FlashCrowd, Target: 4, FanIn: 12, SizeBytes: 51200, Ramp: 20},
		{Step: 90, Kind: TrafficShift, Stride: 3, SizeBytes: 100000},
	}}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	p := fullPlan()
	text := p.Encode()
	if !strings.HasPrefix(text, PlanFormat+"\n") {
		t.Fatalf("encoded plan missing header:\n%s", text)
	}
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(Encode(p)): %v", err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip differs:\n in %+v\nout %+v", p.Events, q.Events)
	}
	if again := q.Encode(); again != text {
		t.Fatalf("Encode not a fixpoint:\n 1st %q\n 2nd %q", text, again)
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	text := "# a fault plan\n\n" + PlanFormat + "\n\n# mid-plan comment\nstep=3 kind=kill-daemon shard=1\n"
	p, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 1 || p.Events[0].Shard != 1 {
		t.Fatalf("parsed %+v; want one kill of shard 1", p.Events)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"missing header", "step=1 kind=link-down\n"},
		{"wrong header", "faultplan/v0\n"},
		{"unknown kind", PlanFormat + "\nstep=1 kind=meteor\n"},
		{"unknown key", PlanFormat + "\nstep=1 kind=link-down color=red\n"},
		{"duplicate key", PlanFormat + "\nstep=1 step=2 kind=link-down\n"},
		{"malformed field", PlanFormat + "\nstep=1 kind=link-down rack\n"},
		{"empty value", PlanFormat + "\nstep=1 kind=link-down rack=\n"},
		{"bad int", PlanFormat + "\nstep=banana kind=link-down\n"},
		{"int overflow", PlanFormat + "\nstep=99999999999999999999 kind=link-down\n"},
		{"missing step", PlanFormat + "\nkind=link-down\n"},
		{"missing kind", PlanFormat + "\nstep=1\n"},
		{"fails validate", PlanFormat + "\nstep=1 kind=ecmp-rehash salt=0\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.text); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.text)
		}
	}
}

// Package faults is the deterministic fault-injection layer: a scriptable,
// typed schedule of adversarial events applied at exact allocator-step
// boundaries through the engine's backend seam.
//
// A Plan is a list of Events, each pinned to a 1-based allocator step. The
// Injector wraps the engine's AllocatorBackend (the in-process allocator, a
// daemon client, or a sharded-cluster client — it cannot tell the
// difference) and, on each Step, first applies every event that has come
// due, then forwards the step, then shepherds the recovery of any
// outstanding daemon kills exactly the way the retired chaos backend did.
// Because every mutation lands between two allocator iterations and every
// observable it drives (capacity re-pricing, ECMP re-hash, drain, kill,
// takeover, failover) is itself step-driven, two seeded runs of a faulted
// scenario are byte-identical.
//
// Traffic events (FlashCrowd, TrafficShift) are not applied by the
// Injector: the plan is known before the run starts, so the scenario runner
// materializes them up front as synthetic flowlets (SyntheticFlowlets)
// whose arrival times coincide with the event's step. The runtime schedule
// and the traffic schedule come from the same Plan, keeping a scenario's
// entire adversarial script in one declarative object.
package faults

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/workload"
)

// Kind enumerates the fault-event types.
type Kind uint8

const (
	// LinkDown degrades a fabric link to DeadLinkFraction of its capacity.
	// True zero would make the NUM price update ill-defined and strand
	// in-flight packets forever; a dead-but-drainable link models the
	// same outage with tame numerics.
	LinkDown Kind = iota
	// LinkDegrade reduces a fabric link to Fraction of its capacity
	// (brown-out, autoneg downshift, a flapping optic).
	LinkDegrade
	// ECMPRehash re-seeds the fabric's ECMP hash with Salt. Paths already
	// installed in the data plane keep their links; flows routed after
	// the event — including the arbiter's view of late-registering
	// flowlets — see the new mapping, so arbiter and fabric can disagree.
	ECMPRehash
	// KillDaemon abruptly closes shard Shard's daemon (no drain, no
	// snapshot) and shepherds the takeover/failover recovery.
	KillDaemon
	// KillDuringDrain drains shard Shard at Step, then kills it Delay
	// steps later — the operator's graceful handover interrupted by the
	// failure it was trying to get ahead of.
	KillDuringDrain
	// CascadeKill kills Count shards, starting at Shard and walking
	// downward through the ring, Spacing steps apart.
	CascadeKill
	// FlashCrowd adds a synthetic incast: FanIn senders each send
	// SizeBytes to server Target, their starts ramped over Ramp steps.
	FlashCrowd
	// TrafficShift overlays a permutation: every server sends SizeBytes
	// to the server Stride positions ahead, all starting at Step — a
	// sudden change of the traffic matrix.
	TrafficShift

	numKinds
)

// DeadLinkFraction is the remaining capacity fraction a LinkDown leaves
// (one-millionth: ~10 kbit/s on a 10 Gbit/s link).
const DeadLinkFraction = 1e-6

var kindNames = [numKinds]string{
	LinkDown:        "link-down",
	LinkDegrade:     "link-degrade",
	ECMPRehash:      "ecmp-rehash",
	KillDaemon:      "kill-daemon",
	KillDuringDrain: "kill-during-drain",
	CascadeKill:     "cascade-kill",
	FlashCrowd:      "flash-crowd",
	TrafficShift:    "traffic-shift",
}

// String returns the kind's canonical plan-format name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind inverts String.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("faults: unknown event kind %q", s)
}

// Event is one scheduled fault. Step is the 1-based allocator step the event
// fires at: it is applied after step Step-1 completes and before step Step
// runs, so step Step is the first iteration that sees the mutated world.
// Which other fields are meaningful depends on Kind; Validate enforces the
// per-kind requirements.
type Event struct {
	Step int
	Kind Kind

	// Link events address a two-tier fabric link symbolically, so one plan
	// resolves against both the full and the shrunk scenario fabrics:
	// rack Rack's uplink to spine Spine, or — with Down — the reverse
	// downlink. Fraction is the remaining capacity for LinkDegrade.
	Rack     int
	Spine    int
	Down     bool
	Fraction float64

	// Salt re-seeds ECMP for ECMPRehash (must be non-zero).
	Salt uint64

	// Shard is the victim daemon of the kill/drain events. Delay is
	// KillDuringDrain's drain→kill gap in steps; Count and Spacing shape
	// a CascadeKill.
	Shard   int
	Delay   int
	Count   int
	Spacing int

	// Traffic events: FanIn senders each send SizeBytes to Target, ramped
	// over Ramp steps (FlashCrowd); every server sends SizeBytes to the
	// server Stride ahead (TrafficShift).
	Target    int
	FanIn     int
	SizeBytes int64
	Ramp      int
	Stride    int
}

// Plan is a fault schedule: events sorted by step (Normalize restores the
// order; equal steps keep their listed order).
type Plan struct {
	Events []Event
}

// Normalize sorts the events by step, preserving the relative order of
// events sharing a step.
func (p *Plan) Normalize() {
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].Step < p.Events[j].Step })
}

// Validate checks every event's intrinsic constraints (range checks against
// a concrete fabric and cluster happen when the Injector is built).
func (p *Plan) Validate() error {
	for i, e := range p.Events {
		if err := e.validate(); err != nil {
			return fmt.Errorf("faults: event %d: %w", i, err)
		}
	}
	return nil
}

func (e Event) validate() error {
	if e.Step < 1 {
		return fmt.Errorf("step %d must be >= 1", e.Step)
	}
	if e.Kind >= numKinds {
		return fmt.Errorf("unknown kind %d", e.Kind)
	}
	switch e.Kind {
	case LinkDown:
		if e.Rack < 0 || e.Spine < 0 {
			return fmt.Errorf("%s: rack %d / spine %d must be non-negative", e.Kind, e.Rack, e.Spine)
		}
	case LinkDegrade:
		if e.Rack < 0 || e.Spine < 0 {
			return fmt.Errorf("%s: rack %d / spine %d must be non-negative", e.Kind, e.Rack, e.Spine)
		}
		if !(e.Fraction > 0 && e.Fraction <= 1) || math.IsNaN(e.Fraction) {
			return fmt.Errorf("%s: fraction %g must be in (0, 1]", e.Kind, e.Fraction)
		}
	case ECMPRehash:
		if e.Salt == 0 {
			return fmt.Errorf("%s: salt must be non-zero", e.Kind)
		}
	case KillDaemon:
		if e.Shard < 0 {
			return fmt.Errorf("%s: shard %d must be non-negative", e.Kind, e.Shard)
		}
	case KillDuringDrain:
		if e.Shard < 0 {
			return fmt.Errorf("%s: shard %d must be non-negative", e.Kind, e.Shard)
		}
		if e.Delay < 1 {
			return fmt.Errorf("%s: delay %d must be >= 1 (the drain must precede the kill)", e.Kind, e.Delay)
		}
	case CascadeKill:
		if e.Shard < 0 {
			return fmt.Errorf("%s: shard %d must be non-negative", e.Kind, e.Shard)
		}
		if e.Count < 1 {
			return fmt.Errorf("%s: count %d must be >= 1", e.Kind, e.Count)
		}
		if e.Spacing < 0 {
			return fmt.Errorf("%s: spacing %d must be non-negative", e.Kind, e.Spacing)
		}
	case FlashCrowd:
		if e.Target < 0 {
			return fmt.Errorf("%s: target %d must be non-negative", e.Kind, e.Target)
		}
		if e.FanIn < 1 {
			return fmt.Errorf("%s: fan-in %d must be >= 1", e.Kind, e.FanIn)
		}
		if e.SizeBytes < 1 {
			return fmt.Errorf("%s: size %d must be >= 1 byte", e.Kind, e.SizeBytes)
		}
		if e.Ramp < 0 {
			return fmt.Errorf("%s: ramp %d must be non-negative", e.Kind, e.Ramp)
		}
	case TrafficShift:
		if e.Stride < 1 {
			return fmt.Errorf("%s: stride %d must be >= 1", e.Kind, e.Stride)
		}
		if e.SizeBytes < 1 {
			return fmt.Errorf("%s: size %d must be >= 1 byte", e.Kind, e.SizeBytes)
		}
	}
	return nil
}

// HasKills reports whether the plan contains daemon-kill events (KillDaemon,
// KillDuringDrain, CascadeKill) — the events that require a takeover-enabled
// sharded cluster.
func (p *Plan) HasKills() bool {
	for _, e := range p.Events {
		switch e.Kind {
		case KillDaemon, KillDuringDrain, CascadeKill:
			return true
		}
	}
	return false
}

// SyntheticFlowlets materializes the plan's traffic events (FlashCrowd,
// TrafficShift) into flowlets over a fabric of numServers servers, with
// stepInterval the allocator's iteration period (an event at step S produces
// arrivals from sim time S×stepInterval, matching the moment the Injector
// applies runtime events of the same step). IDs are assigned sequentially
// from idBase, which must be disjoint from the workload trace's ID space.
func (p *Plan) SyntheticFlowlets(numServers int, stepInterval float64, idBase int64) []workload.Flowlet {
	var out []workload.Flowlet
	id := idBase
	for _, e := range p.Events {
		base := float64(e.Step) * stepInterval
		switch e.Kind {
		case FlashCrowd:
			target := e.Target % numServers
			for i := 0; i < e.FanIn; i++ {
				src := (target + 1 + i) % numServers
				if src == target {
					continue
				}
				arrival := base
				if e.FanIn > 1 {
					arrival += float64(e.Ramp) * stepInterval * float64(i) / float64(e.FanIn-1)
				}
				out = append(out, workload.Flowlet{
					ID: id, Arrival: arrival,
					Src: src, Dst: target, SizeBytes: e.SizeBytes,
				})
				id++
			}
		case TrafficShift:
			for s := 0; s < numServers; s++ {
				dst := (s + e.Stride) % numServers
				if dst == s {
					continue
				}
				out = append(out, workload.Flowlet{
					ID: id, Arrival: base,
					Src: s, Dst: dst, SizeBytes: e.SizeBytes,
				})
				id++
			}
		}
	}
	return out
}

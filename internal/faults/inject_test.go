package faults

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// nullBackend is a minimal inner backend for injector unit tests.
type nullBackend struct{ steps int }

func (n *nullBackend) FlowletStart(id core.FlowID, src, dst int, weight float64) error { return nil }
func (n *nullBackend) FlowletEnd(id core.FlowID) error                                 { return nil }
func (n *nullBackend) Step() ([]core.RateUpdate, error)                                { n.steps++; return nil, nil }

// nullCapacity records capacity writes without an allocator behind it.
type nullCapacity struct{ calls int }

func (c *nullCapacity) SetLinkCapacity(l topology.LinkID, capacity float64) error {
	c.calls++
	return nil
}

// TestInjectorRegisterMetrics scrapes the injector's fault counters through
// the telemetry registry: the atomic mirrors must track the events the plan
// applies, and the exposition must lint clean.
func TestInjectorRegisterMetrics(t *testing.T) {
	topo, err := topology.NewTwoTier(topology.Config{
		Racks: 4, ServersPerRack: 4, Spines: 2, LinkCapacity: 10e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	cap := &nullCapacity{}
	inj, err := NewInjector(InjectorConfig{
		Plan: Plan{Events: []Event{
			{Step: 1, Kind: LinkDegrade, Rack: 0, Spine: 1, Fraction: 0.5},
			{Step: 2, Kind: ECMPRehash, Salt: 7},
		}},
		Topology: topo,
		Capacity: cap,
	}, &nullBackend{})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	inj.RegisterMetrics(reg)

	for i := 0; i < 3; i++ {
		if _, err := inj.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := inj.Finish(0); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := telemetry.Lint(out); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
	for _, series := range []string{
		"flowtune_fault_steps_total 3",
		"flowtune_fault_events_applied_total 2",
		"flowtune_fault_capacity_changes_total 1",
		"flowtune_fault_rehashes_total 1",
		"flowtune_fault_kills_total 0",
		"flowtune_fault_drains_total 0",
		"flowtune_fault_failovers_total 0",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("exposition missing %q:\n%s", series, out)
		}
	}
	if cap.calls != 1 {
		t.Fatalf("capacity setter called %d times; want 1", cap.calls)
	}
}

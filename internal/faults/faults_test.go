package faults

import (
	"math"
	"testing"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("unknown kind name accepted")
	}
}

func TestEventValidate(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		ok   bool
	}{
		{"linkdown ok", Event{Step: 1, Kind: LinkDown}, true},
		{"zero step", Event{Step: 0, Kind: LinkDown}, false},
		{"negative rack", Event{Step: 1, Kind: LinkDown, Rack: -1}, false},
		{"degrade ok", Event{Step: 1, Kind: LinkDegrade, Fraction: 0.5}, true},
		{"degrade zero fraction", Event{Step: 1, Kind: LinkDegrade}, false},
		{"degrade over one", Event{Step: 1, Kind: LinkDegrade, Fraction: 1.5}, false},
		{"degrade nan", Event{Step: 1, Kind: LinkDegrade, Fraction: math.NaN()}, false},
		{"rehash ok", Event{Step: 1, Kind: ECMPRehash, Salt: 1}, true},
		{"rehash zero salt", Event{Step: 1, Kind: ECMPRehash}, false},
		{"kill ok", Event{Step: 1, Kind: KillDaemon}, true},
		{"kill negative shard", Event{Step: 1, Kind: KillDaemon, Shard: -1}, false},
		{"drain-kill ok", Event{Step: 1, Kind: KillDuringDrain, Delay: 1}, true},
		{"drain-kill no delay", Event{Step: 1, Kind: KillDuringDrain}, false},
		{"cascade ok", Event{Step: 1, Kind: CascadeKill, Count: 2}, true},
		{"cascade zero count", Event{Step: 1, Kind: CascadeKill}, false},
		{"cascade negative spacing", Event{Step: 1, Kind: CascadeKill, Count: 1, Spacing: -1}, false},
		{"flash-crowd ok", Event{Step: 1, Kind: FlashCrowd, FanIn: 3, SizeBytes: 100}, true},
		{"flash-crowd no size", Event{Step: 1, Kind: FlashCrowd, FanIn: 3}, false},
		{"flash-crowd no fan-in", Event{Step: 1, Kind: FlashCrowd, SizeBytes: 100}, false},
		{"shift ok", Event{Step: 1, Kind: TrafficShift, Stride: 1, SizeBytes: 1}, true},
		{"shift zero stride", Event{Step: 1, Kind: TrafficShift, SizeBytes: 1}, false},
		{"unknown kind", Event{Step: 1, Kind: numKinds}, false},
	}
	for _, c := range cases {
		p := &Plan{Events: []Event{c.ev}}
		err := p.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid event accepted", c.name)
		}
	}
}

func TestNormalizeStable(t *testing.T) {
	p := &Plan{Events: []Event{
		{Step: 5, Kind: KillDaemon, Shard: 0},
		{Step: 2, Kind: LinkDown, Rack: 1},
		{Step: 5, Kind: ECMPRehash, Salt: 9},
	}}
	p.Normalize()
	if p.Events[0].Step != 2 {
		t.Fatalf("first event at step %d; want 2", p.Events[0].Step)
	}
	// Equal steps keep their listed order.
	if p.Events[1].Kind != KillDaemon || p.Events[2].Kind != ECMPRehash {
		t.Fatalf("step-5 events reordered: %v, %v", p.Events[1].Kind, p.Events[2].Kind)
	}
}

func TestHasKills(t *testing.T) {
	if (&Plan{Events: []Event{{Step: 1, Kind: LinkDown}}}).HasKills() {
		t.Error("link plan reports kills")
	}
	for _, k := range []Kind{KillDaemon, KillDuringDrain, CascadeKill} {
		if !(&Plan{Events: []Event{{Step: 1, Kind: k}}}).HasKills() {
			t.Errorf("%s plan reports no kills", k)
		}
	}
}

func TestSyntheticFlowletsFlashCrowd(t *testing.T) {
	const interval = 10e-6
	p := &Plan{Events: []Event{
		{Step: 100, Kind: FlashCrowd, Target: 1, FanIn: 3, SizeBytes: 10, Ramp: 2},
	}}
	fl := p.SyntheticFlowlets(16, interval, 1<<40)
	if len(fl) != 3 {
		t.Fatalf("got %d flowlets; want 3", len(fl))
	}
	base := 100 * interval
	for i, f := range fl {
		if f.ID != int64(1<<40)+int64(i) {
			t.Errorf("flowlet %d ID = %d; want sequential from 1<<40", i, f.ID)
		}
		if f.Dst != 1 || f.Src == 1 {
			t.Errorf("flowlet %d endpoints %d→%d; want distinct senders into 1", i, f.Src, f.Dst)
		}
		want := base + float64(i)*interval // ramp 2 steps over fan-in 3 → one interval apart
		if math.Abs(f.Arrival-want) > 1e-15 {
			t.Errorf("flowlet %d arrival %g; want %g", i, f.Arrival, want)
		}
	}
}

func TestSyntheticFlowletsTrafficShift(t *testing.T) {
	p := &Plan{Events: []Event{
		{Step: 50, Kind: TrafficShift, Stride: 1, SizeBytes: 7},
	}}
	fl := p.SyntheticFlowlets(4, 10e-6, 0)
	if len(fl) != 4 {
		t.Fatalf("got %d flowlets; want 4", len(fl))
	}
	for _, f := range fl {
		if f.Dst != (f.Src+1)%4 || f.SizeBytes != 7 || f.Arrival != 50*10e-6 {
			t.Errorf("unexpected flowlet %+v", f)
		}
	}
}

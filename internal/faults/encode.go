package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// PlanFormat is the header line of the plan text format.
const PlanFormat = "faultplan/v1"

// Encode renders the plan in its canonical text form: the format header,
// then one line per event in plan order, each a space-separated list of
// key=value fields starting with step and kind and followed by the kind's
// meaningful fields in a fixed order. Floats use the shortest exact
// representation, so Encode∘Parse is the identity on canonical text — the
// property the fuzz test pins.
func (p *Plan) Encode() string {
	var b strings.Builder
	b.WriteString(PlanFormat)
	b.WriteByte('\n')
	for _, e := range p.Events {
		fmt.Fprintf(&b, "step=%d kind=%s", e.Step, e.Kind)
		switch e.Kind {
		case LinkDown:
			fmt.Fprintf(&b, " rack=%d spine=%d", e.Rack, e.Spine)
			if e.Down {
				b.WriteString(" down=true")
			}
		case LinkDegrade:
			fmt.Fprintf(&b, " rack=%d spine=%d", e.Rack, e.Spine)
			if e.Down {
				b.WriteString(" down=true")
			}
			fmt.Fprintf(&b, " fraction=%s", strconv.FormatFloat(e.Fraction, 'g', -1, 64))
		case ECMPRehash:
			fmt.Fprintf(&b, " salt=%d", e.Salt)
		case KillDaemon:
			fmt.Fprintf(&b, " shard=%d", e.Shard)
		case KillDuringDrain:
			fmt.Fprintf(&b, " shard=%d delay=%d", e.Shard, e.Delay)
		case CascadeKill:
			fmt.Fprintf(&b, " shard=%d count=%d spacing=%d", e.Shard, e.Count, e.Spacing)
		case FlashCrowd:
			fmt.Fprintf(&b, " target=%d fanin=%d size=%d ramp=%d", e.Target, e.FanIn, e.SizeBytes, e.Ramp)
		case TrafficShift:
			fmt.Fprintf(&b, " stride=%d size=%d", e.Stride, e.SizeBytes)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Parse decodes a plan from its text form. It is strict — unknown keys,
// duplicate keys, malformed values, a missing header, or an event that
// fails Validate are all errors — and never panics on malformed input.
func Parse(text string) (*Plan, error) {
	lines := strings.Split(text, "\n")
	p := &Plan{}
	sawHeader := false
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sawHeader {
			if line != PlanFormat {
				return nil, fmt.Errorf("faults: line %d: expected header %q, got %q", ln+1, PlanFormat, line)
			}
			sawHeader = true
			continue
		}
		e, err := parseEvent(line)
		if err != nil {
			return nil, fmt.Errorf("faults: line %d: %w", ln+1, err)
		}
		p.Events = append(p.Events, e)
	}
	if !sawHeader {
		return nil, fmt.Errorf("faults: empty plan text (missing %q header)", PlanFormat)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseEvent(line string) (Event, error) {
	var e Event
	seen := map[string]bool{}
	sawStep, sawKind := false, false
	for _, field := range strings.Fields(line) {
		key, val, ok := strings.Cut(field, "=")
		if !ok || key == "" || val == "" {
			return e, fmt.Errorf("malformed field %q", field)
		}
		if seen[key] {
			return e, fmt.Errorf("duplicate key %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "step":
			e.Step, err = parseInt(val)
			sawStep = true
		case "kind":
			e.Kind, err = ParseKind(val)
			sawKind = true
		case "rack":
			e.Rack, err = parseInt(val)
		case "spine":
			e.Spine, err = parseInt(val)
		case "down":
			e.Down, err = strconv.ParseBool(val)
		case "fraction":
			e.Fraction, err = strconv.ParseFloat(val, 64)
		case "salt":
			e.Salt, err = strconv.ParseUint(val, 10, 64)
		case "shard":
			e.Shard, err = parseInt(val)
		case "delay":
			e.Delay, err = parseInt(val)
		case "count":
			e.Count, err = parseInt(val)
		case "spacing":
			e.Spacing, err = parseInt(val)
		case "target":
			e.Target, err = parseInt(val)
		case "fanin":
			e.FanIn, err = parseInt(val)
		case "size":
			e.SizeBytes, err = strconv.ParseInt(val, 10, 64)
		case "ramp":
			e.Ramp, err = parseInt(val)
		case "stride":
			e.Stride, err = parseInt(val)
		default:
			return e, fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return e, fmt.Errorf("field %q: %w", field, err)
		}
	}
	if !sawStep || !sawKind {
		return e, fmt.Errorf("event %q needs both step= and kind=", line)
	}
	return e, nil
}

func parseInt(s string) (int, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if v < int64(minInt) || v > int64(maxInt) {
		return 0, strconv.ErrRange
	}
	return int(v), nil
}

const (
	maxInt = int(^uint(0) >> 1)
	minInt = -maxInt - 1
)

package faults

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/transport"
)

// Fabric sets data-plane link rates; implemented by sim.Network.
type Fabric interface {
	SetLinkRate(id topology.LinkID, rate float64) error
}

// CapacitySetter sets control-plane link capacities; implemented by
// core.Allocator, server.Server, and cluster.Cluster (broadcast).
type CapacitySetter interface {
	SetLinkCapacity(l topology.LinkID, capacity float64) error
}

// InjectorConfig wires an Injector to the run it disturbs.
type InjectorConfig struct {
	// Plan is the fault schedule. Traffic events are ignored at runtime
	// (the scenario runner materializes them via SyntheticFlowlets).
	Plan Plan
	// Topology resolves symbolic link references and carries the ECMP
	// route salt. Required.
	Topology *topology.Topology
	// Fabric applies link events to the simulated data plane; optional
	// (nil leaves the data plane untouched — control-plane-only runs).
	Fabric Fabric
	// Capacity applies link events to the allocator's view so it
	// re-prices; required when the plan has link events.
	Capacity CapacitySetter
	// Cluster and Client are the sharded daemons and their endpoint
	// session; required when the plan has kill or drain events.
	Cluster *cluster.Cluster
	// Client is the sharded session the Injector shepherds through
	// failover after a kill (it is also, typically, the inner backend).
	Client *transport.ShardedClient
}

// KillRecord is the recovery trace of one daemon kill.
type KillRecord struct {
	// Shard is the killed daemon; Step the allocator step the kill
	// landed at. DuringDrain marks kills that interrupted a drain.
	Shard       int  `json:"shard"`
	Step        int  `json:"step"`
	DuringDrain bool `json:"during_drain,omitempty"`
	// Adopter is the daemon that took the shard over; RecoverySteps the
	// number of allocator steps from the kill (inclusive) until the
	// endpoint failed over to the adopter.
	Adopter       int `json:"adopter"`
	RecoverySteps int `json:"recovery_steps"`
	// AdoptedFlows and Takeovers are the adopter daemon's counters at the
	// end of the run (shared between records when one daemon adopts
	// several shards of a cascade).
	AdoptedFlows int64 `json:"adopted_flows"`
	Takeovers    int64 `json:"takeovers"`

	killed     bool
	failedOver bool
}

// Report summarizes what the Injector did; it is embedded in scenario
// results and therefore must be byte-deterministic.
type Report struct {
	EventsApplied   int          `json:"events_applied"`
	CapacityChanges int          `json:"capacity_changes,omitempty"`
	Rehashes        int          `json:"rehashes,omitempty"`
	Drains          int          `json:"drains,omitempty"`
	SyntheticFlows  int          `json:"synthetic_flows,omitempty"`
	Kills           []KillRecord `json:"kills,omitempty"`
}

// op is one expanded runtime action. Kill/drain ops reference kills/drains
// by index; link and rehash ops carry their resolved parameters.
type op struct {
	step int
	kind Kind // LinkDown/LinkDegrade (capacity), ECMPRehash, KillDaemon (kill), or drain (see drain flag)
	// capacity op
	link topology.LinkID
	frac float64
	// rehash op
	salt uint64
	// kill / drain op
	kill  int // index into Injector.kills
	shard int
	drain bool
}

// Injector applies a Plan to a live run. It implements
// transport.AllocatorBackend and is installed with Engine.WrapBackend; the
// inner backend receives every flowlet event and step untouched.
type Injector struct {
	cfg   InjectorConfig
	inner transport.AllocatorBackend
	ops   []op
	next  int
	steps int
	kills []KillRecord
	rep   Report

	// Scrape-safe mirrors of the step counter and report fields: rep and
	// steps are mutated on the engine goroutine while an admin endpoint
	// scrapes from HTTP goroutines, so RegisterMetrics binds to these
	// atomics instead.
	mSteps     atomic.Int64
	mEvents    atomic.Int64
	mCapacity  atomic.Int64
	mRehashes  atomic.Int64
	mDrains    atomic.Int64
	mKills     atomic.Int64
	mFailovers atomic.Int64
}

// RegisterMetrics exposes the injector's activity in reg under the
// flowtune_fault_ prefix, bound at scrape time to the atomic mirrors.
func (in *Injector) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	bind := func(name, help string, v *atomic.Int64) {
		reg.CounterFunc(name, help, func() float64 { return float64(v.Load()) }, labels...)
	}
	bind("flowtune_fault_steps_total", "Allocator steps forwarded through the injector.", &in.mSteps)
	bind("flowtune_fault_events_applied_total", "Fault-plan events applied.", &in.mEvents)
	bind("flowtune_fault_capacity_changes_total", "Link capacity changes injected.", &in.mCapacity)
	bind("flowtune_fault_rehashes_total", "ECMP rehashes injected.", &in.mRehashes)
	bind("flowtune_fault_drains_total", "Graceful drains initiated by the plan.", &in.mDrains)
	bind("flowtune_fault_kills_total", "Daemon kills applied.", &in.mKills)
	bind("flowtune_fault_failovers_total", "Endpoint failovers completed after kills.", &in.mFailovers)
}

// NewInjector expands and validates the plan against the concrete run. The
// inner backend is whatever the engine was already using.
func NewInjector(cfg InjectorConfig, inner transport.AllocatorBackend) (*Injector, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("faults: InjectorConfig.Topology is required")
	}
	if inner == nil {
		return nil, fmt.Errorf("faults: inner backend is required")
	}
	if err := cfg.Plan.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{cfg: cfg, inner: inner}
	for i, e := range cfg.Plan.Events {
		if err := in.expand(e); err != nil {
			return nil, fmt.Errorf("faults: event %d: %w", i, err)
		}
	}
	// Events are scheduled in step order; expansion preserves the listed
	// order within a step (stable sort).
	stableSortOps(in.ops)
	if len(in.kills) > 0 {
		if cfg.Cluster == nil || cfg.Client == nil {
			return nil, fmt.Errorf("faults: kill events require a cluster and a sharded client")
		}
		// Frozen sessions keep their registrations, which is what lets
		// Failover re-home them — same policy as the retired chaos backend.
		cfg.Client.SetFreezeOnFailure(true)
	}
	return in, nil
}

func (in *Injector) expand(e Event) error {
	switch e.Kind {
	case LinkDown, LinkDegrade:
		if in.cfg.Capacity == nil {
			return fmt.Errorf("%s: no capacity setter wired", e.Kind)
		}
		l, ok := in.resolveLink(e)
		if !ok {
			return fmt.Errorf("%s: no link rack=%d spine=%d down=%v in this fabric", e.Kind, e.Rack, e.Spine, e.Down)
		}
		frac := DeadLinkFraction
		if e.Kind == LinkDegrade {
			frac = e.Fraction
		}
		in.ops = append(in.ops, op{step: e.Step, kind: e.Kind, link: l, frac: frac})
	case ECMPRehash:
		in.ops = append(in.ops, op{step: e.Step, kind: ECMPRehash, salt: e.Salt})
	case KillDaemon:
		return in.addKill(e.Step, e.Shard, false)
	case KillDuringDrain:
		if err := in.checkShard(e.Shard); err != nil {
			return err
		}
		in.ops = append(in.ops, op{step: e.Step, kind: KillDuringDrain, drain: true, shard: e.Shard})
		return in.addKill(e.Step+e.Delay, e.Shard, true)
	case CascadeKill:
		n := in.numShards()
		if e.Count >= n {
			return fmt.Errorf("cascade-kill: count %d must leave a survivor (%d shards)", e.Count, n)
		}
		for i := 0; i < e.Count; i++ {
			victim := ((e.Shard-i)%n + n) % n
			if err := in.addKill(e.Step+i*e.Spacing, victim, false); err != nil {
				return err
			}
		}
	case FlashCrowd, TrafficShift:
		// Materialized up front by the scenario runner; nothing to do at
		// runtime. The report reflects them through SyntheticFlows.
	}
	return nil
}

func (in *Injector) numShards() int {
	if in.cfg.Cluster == nil {
		return 0
	}
	return in.cfg.Cluster.NumShards()
}

func (in *Injector) checkShard(shard int) error {
	if n := in.numShards(); shard >= n {
		return fmt.Errorf("shard %d out of range (%d shards)", shard, n)
	}
	return nil
}

func (in *Injector) addKill(step, shard int, duringDrain bool) error {
	if err := in.checkShard(shard); err != nil {
		return err
	}
	for _, k := range in.kills {
		if k.Shard == shard {
			return fmt.Errorf("shard %d killed twice", shard)
		}
	}
	in.kills = append(in.kills, KillRecord{Shard: shard, DuringDrain: duringDrain, Adopter: -1})
	in.ops = append(in.ops, op{step: step, kind: KillDaemon, kill: len(in.kills) - 1, shard: shard})
	return nil
}

func stableSortOps(ops []op) {
	// Insertion sort keeps it dependency-free and stable; plans are tiny.
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j-1].step > ops[j].step; j-- {
			ops[j-1], ops[j] = ops[j], ops[j-1]
		}
	}
}

// FlowletStart forwards to the inner backend.
func (in *Injector) FlowletStart(id core.FlowID, src, dst int, weight float64) error {
	return in.inner.FlowletStart(id, src, dst, weight)
}

// FlowletStartSized forwards the wire v4 size-hinted registration when the
// inner backend carries it, degrading to a plain start otherwise.
func (in *Injector) FlowletStartSized(id core.FlowID, src, dst int, weight float64, size int64) error {
	type sized interface {
		FlowletStartSized(id core.FlowID, src, dst int, weight float64, size int64) error
	}
	if s, ok := in.inner.(sized); ok {
		return s.FlowletStartSized(id, src, dst, weight, size)
	}
	return in.inner.FlowletStart(id, src, dst, weight)
}

// FlowletEnd forwards to the inner backend.
func (in *Injector) FlowletEnd(id core.FlowID) error { return in.inner.FlowletEnd(id) }

// Step applies every event due at this step boundary, forwards the step to
// the inner backend, then shepherds outstanding kill recoveries: once the
// takeover successor serves the dead shard, the client fails over and the
// adopter claims the re-registered flows without engine churn. All of it is
// step-indexed, so the injection is as deterministic as the run around it.
func (in *Injector) Step() ([]core.RateUpdate, error) {
	in.steps++
	in.mSteps.Add(1)
	for in.next < len(in.ops) && in.ops[in.next].step <= in.steps {
		o := in.ops[in.next]
		in.next++
		if err := in.apply(o); err != nil {
			return nil, err
		}
	}
	ups, err := in.inner.Step()
	if err != nil {
		return ups, err
	}
	for i := range in.kills {
		k := &in.kills[i]
		if !k.killed || k.failedOver {
			continue
		}
		k.RecoverySteps++
		adopter := in.cfg.Client.Successor(k.Shard)
		if adopter >= 0 && in.cfg.Cluster.Server(adopter).ServesShard(k.Shard) {
			if err := in.cfg.Client.Failover(k.Shard, adopter); err != nil {
				return nil, fmt.Errorf("faults: failover %d→%d: %w", k.Shard, adopter, err)
			}
			k.failedOver = true
			k.Adopter = adopter
			in.mFailovers.Add(1)
		}
	}
	return ups, nil
}

func (in *Injector) apply(o op) error {
	in.rep.EventsApplied++
	in.mEvents.Add(1)
	switch {
	case o.drain:
		in.cfg.Cluster.Drain(o.shard)
		in.rep.Drains++
		in.mDrains.Add(1)
	case o.kind == KillDaemon:
		if err := in.cfg.Cluster.Kill(o.shard); err != nil {
			return fmt.Errorf("faults: kill shard %d: %w", o.shard, err)
		}
		k := &in.kills[o.kill]
		k.killed = true
		k.Step = in.steps
		in.mKills.Add(1)
	case o.kind == ECMPRehash:
		in.cfg.Topology.SetRouteSalt(o.salt)
		in.rep.Rehashes++
		in.mRehashes.Add(1)
	default: // LinkDown / LinkDegrade
		raw := in.cfg.Topology.Link(o.link).Capacity * o.frac
		if err := in.cfg.Capacity.SetLinkCapacity(o.link, raw); err != nil {
			return fmt.Errorf("faults: link %d capacity: %w", o.link, err)
		}
		if in.cfg.Fabric != nil {
			if err := in.cfg.Fabric.SetLinkRate(o.link, raw); err != nil {
				return fmt.Errorf("faults: link %d rate: %w", o.link, err)
			}
		}
		in.rep.CapacityChanges++
		in.mCapacity.Add(1)
	}
	return nil
}

func (in *Injector) resolveLink(e Event) (topology.LinkID, bool) {
	if e.Down {
		return in.cfg.Topology.DownlinkID(e.Spine, e.Rack)
	}
	return in.cfg.Topology.UplinkID(e.Rack, e.Spine)
}

// Steps returns the number of allocator steps forwarded so far.
func (in *Injector) Steps() int { return in.steps }

// Finish validates that the whole plan ran — every scheduled op applied,
// every kill recovered — and returns the report. syntheticFlows is the
// number of flowlets the runner materialized from the plan's traffic
// events (see SyntheticFlowlets).
func (in *Injector) Finish(syntheticFlows int) (*Report, error) {
	if in.next < len(in.ops) {
		o := in.ops[in.next]
		return nil, fmt.Errorf("faults: run ended before step %d (%s): only %d allocator steps", o.step, o.kind, in.steps)
	}
	for i := range in.kills {
		k := &in.kills[i]
		if !k.failedOver {
			return nil, fmt.Errorf("faults: shard %d never failed over (%d steps since kill)", k.Shard, k.RecoverySteps)
		}
		st := in.cfg.Cluster.Server(k.Adopter).Stats()
		k.AdoptedFlows = st.AdoptedFlows
		k.Takeovers = st.Takeovers
	}
	in.rep.SyntheticFlows = syntheticFlows
	in.rep.Kills = in.kills
	return &in.rep, nil
}

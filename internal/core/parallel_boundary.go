package core

import "repro/internal/topology"

// Boundary-exchange support for the multicore allocator: the same six hooks
// core.Allocator exposes (see boundary.go), so a sharded daemon can run the
// FlowBlock/LinkBlock engine and still participate in the cluster's
// boundary-price exchange. Every fabric link lives in exactly one LinkBlock,
// so each hook resolves its links through the dense owner lookup built at
// construction and reads or writes block-local state directly — there is no
// global price or load array.
//
// Like the allocator's other mutators, these may only be called while no
// Iterate is in flight; the daemon calls them at iteration boundaries.

// SetExternalLoads records remote flows' aggregate load and Hessian-diagonal
// contributions on the given links (typically this shard's boundary links,
// summed over all peers' latest PriceDigests). The values are folded into the
// owning LinkBlock's merged accumulators at the price-update phase — g is
// computed as (load − cap) + ext, the sequential solver's operation order —
// and the normalize phase counts the loads toward link utilization, so
// boundary links are priced and normalized against cluster-wide demand
// without any global pass. Passing all zeros restores purely local behaviour.
// Links outside every LinkBlock (allocator uplinks) are ignored: no flow of
// this allocator can traverse them, so remote demand there prices nothing.
func (p *ParallelAllocator) SetExternalLoads(links []topology.LinkID, loads, hdiag []float64) {
	for i, l := range links {
		lb := p.ownerLB[l]
		if lb == nil {
			continue
		}
		if lb.ext == nil {
			lb.ext = make([]float64, len(lb.links))
			lb.extH = make([]float64, len(lb.links))
		}
		pos := p.ownerPos[l]
		lb.ext[pos] = loads[i]
		lb.extH[pos] = hdiag[i]
	}
}

// PinPrices imports remote-owned link prices (a peer's PriceSnapshot): each
// link's price is set now — in the authoritative LinkBlock and in every
// FlowBlock's local copy, so the next rate update already sees it — and
// re-imposed after every local price update until a newer snapshot replaces
// it. Links never pinned stay under local control.
func (p *ParallelAllocator) PinPrices(links []topology.LinkID, prices []float64) {
	for i, l := range links {
		lb := p.ownerLB[l]
		if lb == nil {
			continue
		}
		if lb.pinned == nil {
			lb.pinned = make([]float64, len(lb.links))
			for j := range lb.pinned {
				lb.pinned[j] = -1
			}
		}
		pos := p.ownerPos[l]
		lb.pinned[pos] = prices[i]
		lb.price[pos] = prices[i]
		p.writeLocalPrice(l, prices[i])
	}
}

// SeedPrices sets the current price of each link without pinning it: the next
// price update starts from the seeded values and evolves them locally. It is
// the warm-restart half of the snapshot protocol — a restarted (or adopting)
// daemon seeds the saved prices so its first iteration continues the dual
// ascent instead of restarting from scratch, but keeps the links under local
// control.
func (p *ParallelAllocator) SeedPrices(links []topology.LinkID, prices []float64) {
	for i, l := range links {
		if p.ownerLB[l] == nil {
			continue
		}
		p.ownerLB[l].price[p.ownerPos[l]] = prices[i]
		p.writeLocalPrice(l, prices[i])
	}
}

// UnpinPrices returns the given links to local control, undoing PinPrices.
// The last pinned price remains as the starting value (like SeedPrices); it
// is simply no longer re-imposed after local price updates. An allocator that
// adopts a dead peer's links calls this so the adopted boundary is priced by
// its own price updates from then on.
func (p *ParallelAllocator) UnpinPrices(links []topology.LinkID) {
	for _, l := range links {
		lb := p.ownerLB[l]
		if lb == nil || lb.pinned == nil {
			continue
		}
		lb.pinned[p.ownerPos[l]] = -1
	}
}

// writeLocalPrice propagates an imported price into the FlowBlock-local
// copies of the link's block, which are otherwise refreshed only by the
// distribute phase at the end of an iteration. Without this the first rate
// update after an import would still price flows with the stale local copy.
func (p *ParallelAllocator) writeLocalPrice(l topology.LinkID, price float64) {
	n := p.numBlocks
	b := int(p.ownerBlk[l])
	pos := p.ownerPos[l]
	if p.ownerIsUp[l] {
		for db := 0; db < n; db++ {
			p.fbAt[b*n+db].upPrice[pos] = price
		}
	} else {
		for sb := 0; sb < n; sb++ {
			p.fbAt[sb*n+b].downPrice[pos] = price
		}
	}
}

// BoundaryDigest fills loads and hdiag (parallel to links) with this
// allocator's own flows' contributions on the given links, as merged by the
// most recent Iterate's aggregation rounds — the payload of an outgoing
// PriceDigest. The owner FlowBlocks' accumulators hold exactly the local
// flows' sums (external loads are folded in only at the price update, never
// into the accumulators), so the exported bytes match the sequential
// engine's digest bit for bit on the same flow set. With no registered flows
// the digest is all zeros (an idle shard puts no load on anyone's links), as
// it is for links outside every LinkBlock. The error return exists to match
// the sequential allocator's signature; it is always nil here.
func (p *ParallelAllocator) BoundaryDigest(links []topology.LinkID, loads, hdiag []float64) error {
	n := p.numBlocks
	for i, l := range links {
		if p.numFlows == 0 || p.ownerLB[l] == nil {
			loads[i], hdiag[i] = 0, 0
			continue
		}
		b := int(p.ownerBlk[l])
		pos := p.ownerPos[l]
		if p.ownerIsUp[l] {
			owner := p.fbAt[b*n] // (b, 0) owns block b's upward LinkBlock
			loads[i], hdiag[i] = owner.upLoad[pos], owner.upHdiag[pos]
		} else {
			owner := p.fbAt[b] // (0, b) owns block b's downward LinkBlock
			loads[i], hdiag[i] = owner.downLoad[pos], owner.downHdiag[pos]
		}
	}
	return nil
}

// LinkPrices fills prices (parallel to links) with the current price of each
// link — the payload of an outgoing PriceSnapshot for links this shard owns.
// Links outside every LinkBlock report their initial price of 1: the
// multicore allocator never prices them (no flow it admits can traverse
// them), where the sequential engine would decay such idle links toward 0.
func (p *ParallelAllocator) LinkPrices(links []topology.LinkID, prices []float64) {
	for i, l := range links {
		if lb := p.ownerLB[l]; lb != nil {
			prices[i] = lb.price[p.ownerPos[l]]
		} else {
			prices[i] = 1
		}
	}
}

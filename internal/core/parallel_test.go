package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/num"
	"repro/internal/topology"
)

// parallelTestTopo builds a small fabric whose rack count is divisible by the
// requested block counts.
func parallelTestTopo(t *testing.T, racks int) *topology.Topology {
	t.Helper()
	topo, err := topology.NewTwoTier(topology.Config{
		Racks:          racks,
		ServersPerRack: 8,
		Spines:         4,
		LinkCapacity:   10e9,
		LinkDelay:      1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestNewParallelAllocatorValidation(t *testing.T) {
	topo := parallelTestTopo(t, 8)
	if _, err := NewParallelAllocator(ParallelConfig{Blocks: 2}); err == nil {
		t.Error("missing topology accepted")
	}
	if _, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 0}); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 3}); err == nil {
		t.Error("non-power-of-two blocks accepted")
	}
	if _, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 16}); err == nil {
		t.Error("blocks not dividing racks accepted")
	}
	pa, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Close()
	if pa.NumWorkers() != 16 {
		t.Errorf("NumWorkers = %d, want 16", pa.NumWorkers())
	}
	if pa.AggregationSteps() != 2 {
		t.Errorf("AggregationSteps = %d, want 2", pa.AggregationSteps())
	}
}

// randomParallelFlows draws distinct-endpoint flows.
func randomParallelFlows(numServers, count int, seed int64) []ParallelFlow {
	rng := rand.New(rand.NewSource(seed))
	flows := make([]ParallelFlow, count)
	for i := range flows {
		src := rng.Intn(numServers)
		dst := rng.Intn(numServers - 1)
		if dst >= src {
			dst++
		}
		flows[i] = ParallelFlow{ID: FlowID(i), Src: src, Dst: dst, Weight: 1}
	}
	return flows
}

// sequentialReference runs the sequential NED solver on the same flows and
// returns rates keyed by flow ID after the given number of iterations.
func sequentialReference(t *testing.T, topo *topology.Topology, flows []ParallelFlow, iters int) map[FlowID]float64 {
	t.Helper()
	prob := num.Problem{Capacities: topo.Capacities(), MaxFlowRate: topo.Config().LinkCapacity}
	for _, f := range flows {
		route, err := topo.Route(f.Src, f.Dst, int(f.ID))
		if err != nil {
			t.Fatal(err)
		}
		links := make([]int32, len(route))
		for i, l := range route {
			links[i] = int32(l)
		}
		prob.Flows = append(prob.Flows, num.Flow{
			Route: links,
			Util:  num.LogUtility{W: topo.Config().LinkCapacity},
		})
	}
	st := num.NewState(&prob)
	ned := &num.NED{Gamma: 1}
	for i := 0; i < iters; i++ {
		ned.Step(&prob, st)
	}
	out := make(map[FlowID]float64, len(flows))
	for i, f := range flows {
		out[f.ID] = st.Rates[i]
	}
	return out
}

// TestParallelMatchesSequential is the key correctness test of the multicore
// design: the FlowBlock/LinkBlock-partitioned iteration must compute exactly
// the same rates as the sequential NED iteration.
func TestParallelMatchesSequential(t *testing.T) {
	topo := parallelTestTopo(t, 8)
	flows := randomParallelFlows(topo.NumServers(), 500, 11)
	const iters = 30
	want := sequentialReference(t, topo, flows, iters)

	for _, blocks := range []int{1, 2, 4} {
		pa, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: blocks, Gamma: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := pa.SetFlows(flows); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < iters; i++ {
			pa.Iterate()
		}
		got := pa.Rates()
		pa.Close()
		if len(got) != len(want) {
			t.Fatalf("blocks=%d: got %d rates, want %d", blocks, len(got), len(want))
		}
		for id, w := range want {
			g := got[id]
			if w == 0 {
				continue
			}
			if math.Abs(g-w)/w > 1e-9 {
				t.Fatalf("blocks=%d: flow %d rate %.9g differs from sequential %.9g", blocks, id, g, w)
			}
		}
	}
}

func TestParallelNormalizeRespectsCapacity(t *testing.T) {
	topo := parallelTestTopo(t, 8)
	// Incast: many flows into the servers of rack 0.
	var flows []ParallelFlow
	for i := 0; i < 200; i++ {
		flows = append(flows, ParallelFlow{ID: FlowID(i), Src: 8 + i%56, Dst: i % 8})
	}
	pa, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 2, Gamma: 1, Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Close()
	if err := pa.SetFlows(flows); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		pa.Iterate()
	}
	// Check per-destination-server loads stay within the NIC rate.
	rates := pa.Rates()
	perDst := map[int]float64{}
	for _, f := range flows {
		perDst[f.Dst] += rates[f.ID]
	}
	for dst, load := range perDst {
		if load > topo.Config().LinkCapacity*1.001 {
			t.Errorf("server %d downlink over capacity after F-NORM: %.3g", dst, load)
		}
	}
}

func TestParallelChurnViaSetFlows(t *testing.T) {
	topo := parallelTestTopo(t, 8)
	pa, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 2, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Close()
	flows := randomParallelFlows(topo.NumServers(), 100, 3)
	if err := pa.SetFlows(flows); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		pa.Iterate()
	}
	if pa.NumFlows() != 100 {
		t.Errorf("NumFlows = %d, want 100", pa.NumFlows())
	}
	// Replace the flow set (prices persist) and keep iterating.
	if err := pa.SetFlows(flows[:40]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		pa.Iterate()
	}
	if got := len(pa.Rates()); got != 40 {
		t.Errorf("Rates returned %d entries, want 40", got)
	}
	prices := pa.Prices()
	for id, price := range prices {
		if price < 0 || math.IsNaN(price) {
			t.Fatalf("invalid price %g on link %d", price, id)
		}
	}
}

func TestParallelCloseIdempotent(t *testing.T) {
	topo := parallelTestTopo(t, 8)
	pa, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Close before any Iterate must not hang or panic.
	pa.Close()
	pa.Close()

	pa2, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pa2.SetFlows(randomParallelFlows(topo.NumServers(), 10, 1)); err != nil {
		t.Fatal(err)
	}
	pa2.Iterate()
	pa2.Close()
	pa2.Close()
}

func TestBarrier(t *testing.T) {
	b := newBarrier(3)
	done := make(chan int, 3)
	for i := 0; i < 3; i++ {
		go func(id int) {
			for round := 0; round < 100; round++ {
				b.wait()
			}
			done <- id
		}(i)
	}
	for i := 0; i < 3; i++ {
		<-done
	}
}

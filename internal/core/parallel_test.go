package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/num"
	"repro/internal/topology"
)

// parallelTestTopo builds a small fabric whose rack count is divisible by the
// requested block counts.
func parallelTestTopo(t *testing.T, racks int) *topology.Topology {
	t.Helper()
	topo, err := topology.NewTwoTier(topology.Config{
		Racks:          racks,
		ServersPerRack: 8,
		Spines:         4,
		LinkCapacity:   10e9,
		LinkDelay:      1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestNewParallelAllocatorValidation(t *testing.T) {
	topo := parallelTestTopo(t, 8)
	if _, err := NewParallelAllocator(ParallelConfig{Blocks: 2}); err == nil {
		t.Error("missing topology accepted")
	}
	if _, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 0}); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 3}); err == nil {
		t.Error("non-power-of-two blocks accepted")
	}
	if _, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 16}); err == nil {
		t.Error("blocks not dividing racks accepted")
	}
	pa, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Close()
	if pa.NumWorkers() != 16 {
		t.Errorf("NumWorkers = %d, want 16", pa.NumWorkers())
	}
	if pa.AggregationSteps() != 2 {
		t.Errorf("AggregationSteps = %d, want 2", pa.AggregationSteps())
	}
}

// randomParallelFlows draws distinct-endpoint flows.
func randomParallelFlows(numServers, count int, seed int64) []ParallelFlow {
	rng := rand.New(rand.NewSource(seed))
	flows := make([]ParallelFlow, count)
	for i := range flows {
		src := rng.Intn(numServers)
		dst := rng.Intn(numServers - 1)
		if dst >= src {
			dst++
		}
		flows[i] = ParallelFlow{ID: FlowID(i), Src: src, Dst: dst, Weight: 1}
	}
	return flows
}

// sequentialReference runs the sequential NED solver on the same flows and
// returns rates keyed by flow ID after the given number of iterations.
func sequentialReference(t *testing.T, topo *topology.Topology, flows []ParallelFlow, iters int) map[FlowID]float64 {
	t.Helper()
	prob := num.Problem{Capacities: topo.Capacities(), MaxFlowRate: topo.Config().LinkCapacity}
	for _, f := range flows {
		route, err := topo.Route(f.Src, f.Dst, int(f.ID))
		if err != nil {
			t.Fatal(err)
		}
		links := make([]int32, len(route))
		for i, l := range route {
			links[i] = int32(l)
		}
		prob.Flows = append(prob.Flows, num.Flow{
			Route: links,
			Util:  num.LogUtility{W: topo.Config().LinkCapacity},
		})
	}
	st := num.NewState(&prob)
	ned := &num.NED{Gamma: 1}
	for i := 0; i < iters; i++ {
		ned.Step(&prob, st)
	}
	out := make(map[FlowID]float64, len(flows))
	for i, f := range flows {
		out[f.ID] = st.Rates[i]
	}
	return out
}

// TestParallelMatchesSequential is the key correctness test of the multicore
// design: the FlowBlock/LinkBlock-partitioned iteration must compute exactly
// the same rates as the sequential NED iteration.
func TestParallelMatchesSequential(t *testing.T) {
	topo := parallelTestTopo(t, 8)
	flows := randomParallelFlows(topo.NumServers(), 500, 11)
	const iters = 30
	want := sequentialReference(t, topo, flows, iters)

	for _, blocks := range []int{1, 2, 4} {
		pa, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: blocks, Gamma: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := pa.SetFlows(flows); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < iters; i++ {
			pa.Iterate()
		}
		got := pa.Rates()
		pa.Close()
		if len(got) != len(want) {
			t.Fatalf("blocks=%d: got %d rates, want %d", blocks, len(got), len(want))
		}
		for id, w := range want {
			g := got[id]
			if w == 0 {
				continue
			}
			if math.Abs(g-w)/w > 1e-9 {
				t.Fatalf("blocks=%d: flow %d rate %.9g differs from sequential %.9g", blocks, id, g, w)
			}
		}
	}
}

func TestParallelNormalizeRespectsCapacity(t *testing.T) {
	topo := parallelTestTopo(t, 8)
	// Incast: many flows into the servers of rack 0.
	var flows []ParallelFlow
	for i := 0; i < 200; i++ {
		flows = append(flows, ParallelFlow{ID: FlowID(i), Src: 8 + i%56, Dst: i % 8})
	}
	pa, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 2, Gamma: 1, Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Close()
	if err := pa.SetFlows(flows); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		pa.Iterate()
	}
	// Check per-destination-server loads stay within the NIC rate.
	rates := pa.Rates()
	perDst := map[int]float64{}
	for _, f := range flows {
		perDst[f.Dst] += rates[f.ID]
	}
	for dst, load := range perDst {
		if load > topo.Config().LinkCapacity*1.001 {
			t.Errorf("server %d downlink over capacity after F-NORM: %.3g", dst, load)
		}
	}
}

func TestParallelChurnViaSetFlows(t *testing.T) {
	topo := parallelTestTopo(t, 8)
	pa, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 2, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Close()
	flows := randomParallelFlows(topo.NumServers(), 100, 3)
	if err := pa.SetFlows(flows); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		pa.Iterate()
	}
	if pa.NumFlows() != 100 {
		t.Errorf("NumFlows = %d, want 100", pa.NumFlows())
	}
	// Replace the flow set (prices persist) and keep iterating.
	if err := pa.SetFlows(flows[:40]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		pa.Iterate()
	}
	if got := len(pa.Rates()); got != 40 {
		t.Errorf("Rates returned %d entries, want 40", got)
	}
	prices := pa.Prices()
	for id, price := range prices {
		if price < 0 || math.IsNaN(price) {
			t.Fatalf("invalid price %g on link %d", price, id)
		}
	}
}

func TestParallelCloseIdempotent(t *testing.T) {
	topo := parallelTestTopo(t, 8)
	pa, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Close before any Iterate must not hang or panic.
	pa.Close()
	pa.Close()

	pa2, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pa2.SetFlows(randomParallelFlows(topo.NumServers(), 10, 1)); err != nil {
		t.Fatal(err)
	}
	pa2.Iterate()
	pa2.Close()
	pa2.Close()
}

func TestBarrier(t *testing.T) {
	b := newBarrier(3)
	done := make(chan int, 3)
	for i := 0; i < 3; i++ {
		go func(id int) {
			for round := 0; round < 100; round++ {
				b.wait()
			}
			done <- id
		}(i)
	}
	for i := 0; i < 3; i++ {
		<-done
	}
}

// TestParallelIncrementalMatchesSetFlows is the churn-equivalence test of the
// incremental CSR maintenance: driving one allocator through a seeded
// add/end sequence with FlowletStart/FlowletEnd must produce byte-identical
// rates to bulk-loading a second allocator with SetFlows from the first's
// live set (in its canonical FlowBlock order) at every iteration boundary.
// The removal-heavy phase pushes the arenas past the hole threshold so the
// equivalence also covers compaction.
func TestParallelIncrementalMatchesSetFlows(t *testing.T) {
	topo := parallelTestTopo(t, 8)
	newPA := func() *ParallelAllocator {
		pa, err := NewParallelAllocator(ParallelConfig{
			Topology: topo, Blocks: 2, Gamma: 1, Normalize: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pa
	}
	inc := newPA()
	defer inc.Close()
	bulk := newPA()
	defer bulk.Close()

	rng := rand.New(rand.NewSource(7))
	var live []FlowID
	nextID := FlowID(0)
	add := func() {
		src := rng.Intn(topo.NumServers())
		dst := rng.Intn(topo.NumServers() - 1)
		if dst >= src {
			dst++
		}
		// Fractional weights exercise the exact (bit-level) weight
		// round-trip through LiveFlows.
		weight := 0.25 + 3*rng.Float64()
		if err := inc.FlowletStart(nextID, src, dst, weight); err != nil {
			t.Fatal(err)
		}
		live = append(live, nextID)
		nextID++
	}
	end := func() {
		i := rng.Intn(len(live))
		id := live[i]
		live[i] = live[len(live)-1]
		live = live[:len(live)-1]
		if err := inc.FlowletEnd(id); err != nil {
			t.Fatal(err)
		}
	}

	peakArena := 0
	arenaLen := func() int {
		total := 0
		for _, fb := range inc.fbs {
			total += len(fb.upIdx) + len(fb.downIdx)
		}
		return total
	}

	const rounds = 120
	for round := 0; round < rounds; round++ {
		events := 1 + rng.Intn(8)
		for e := 0; e < events; e++ {
			switch {
			case len(live) == 0:
				add()
			case round < 50: // growth phase
				if rng.Intn(10) < 8 {
					add()
				} else {
					end()
				}
			case round < 90: // removal phase: drive the arenas past the hole threshold
				if rng.Intn(10) < 8 {
					end()
				} else {
					add()
				}
			default: // steady churn
				if rng.Intn(2) == 0 {
					add()
				} else {
					end()
				}
			}
		}
		if a := arenaLen(); a > peakArena {
			peakArena = a
		}
		if err := bulk.SetFlows(inc.LiveFlows()); err != nil {
			t.Fatal(err)
		}
		if inc.NumFlows() == 0 {
			continue
		}
		inc.Iterate()
		bulk.Iterate()
		want := bulk.Rates()
		got := inc.Rates()
		if len(got) != len(want) || len(got) != len(live) {
			t.Fatalf("round %d: incremental tracks %d rates, bulk %d, live %d", round, len(got), len(want), len(live))
		}
		for id, w := range want {
			g, ok := got[id]
			if !ok || math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("round %d flow %d: incremental rate %x differs from bulk %x",
					round, id, math.Float64bits(g), math.Float64bits(w))
			}
		}
	}

	// The removal phase must actually have exercised compaction: the hole
	// invariant (dead ≤ max(live, threshold) after every remove) bounds
	// every arena, and the arenas must have shrunk from their peak rather
	// than accumulating holes forever.
	for _, fb := range inc.fbs {
		for _, arena := range []struct {
			name string
			dead int
			size int
		}{
			{"up", fb.upDead, len(fb.upIdx)},
			{"down", fb.downDead, len(fb.downIdx)},
		} {
			livePart := arena.size - arena.dead
			if arena.dead > livePart && arena.dead > num.CompactMinDead {
				t.Errorf("FlowBlock (%d,%d) %s arena: %d dead vs %d live entries — compaction did not run",
					fb.srcBlock, fb.dstBlock, arena.name, arena.dead, livePart)
			}
		}
	}
	if final := arenaLen(); final >= peakArena {
		t.Errorf("arena never shrank: final %d entries, peak %d (compaction untested)", final, peakArena)
	}
}

// TestParallelFlowletChurnAPI covers the incremental API's edge cases:
// duplicate adds, unknown ends, swap-delete locator fixups, and interleaving
// with Iterate.
func TestParallelFlowletChurnAPI(t *testing.T) {
	topo := parallelTestTopo(t, 8)
	pa, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 2, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Close()

	if err := pa.FlowletStart(1, 0, 9, 1); err != nil {
		t.Fatal(err)
	}
	if err := pa.FlowletStart(1, 0, 9, 1); err == nil {
		t.Error("duplicate FlowletStart accepted")
	}
	if err := pa.FlowletEnd(99); err == nil {
		t.Error("unknown FlowletEnd accepted")
	}
	if err := pa.FlowletStart(2, 0, 17, 1); err != nil {
		t.Fatal(err)
	}
	if err := pa.FlowletStart(3, 1, 9, 1); err != nil {
		t.Fatal(err)
	}
	if !pa.HasFlow(2) || pa.HasFlow(99) {
		t.Error("HasFlow bookkeeping wrong")
	}
	pa.Iterate()
	// Remove a middle flow; the moved flow must keep its rate and stay
	// addressable.
	if err := pa.FlowletEnd(1); err != nil {
		t.Fatal(err)
	}
	if pa.NumFlows() != 2 {
		t.Fatalf("NumFlows = %d, want 2", pa.NumFlows())
	}
	pa.Iterate()
	rates := pa.Rates()
	if len(rates) != 2 || rates[2] <= 0 || rates[3] <= 0 {
		t.Fatalf("rates after churn = %v", rates)
	}
	if err := pa.FlowletEnd(2); err != nil {
		t.Fatal(err)
	}
	if err := pa.FlowletEnd(3); err != nil {
		t.Fatal(err)
	}
	if pa.NumFlows() != 0 {
		t.Fatalf("NumFlows = %d, want 0", pa.NumFlows())
	}
	// SetFlows after incremental churn re-bulk-loads cleanly.
	if err := pa.SetFlows(randomParallelFlows(topo.NumServers(), 20, 5)); err != nil {
		t.Fatal(err)
	}
	pa.Iterate()
	if got := len(pa.Rates()); got != 20 {
		t.Errorf("Rates returned %d entries, want 20", got)
	}
	if err := pa.SetFlows([]ParallelFlow{{ID: 4, Src: 0, Dst: 9}, {ID: 4, Src: 1, Dst: 9}}); err == nil {
		t.Error("SetFlows accepted duplicate IDs")
	}
}

// TestMortonLayout pins the bit-interleaved FlowBlock order: round-1 up-merge
// partners must be adjacent, and mortonIndex/mortonCoords must be inverses.
func TestMortonLayout(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		for sb := 0; sb < n; sb++ {
			for db := 0; db < n; db++ {
				m := mortonIndex(sb, db, n)
				if m < 0 || m >= n*n {
					t.Fatalf("n=%d: mortonIndex(%d,%d) = %d out of range", n, sb, db, m)
				}
				gsb, gdb := mortonCoords(m, n)
				if gsb != sb || gdb != db {
					t.Fatalf("n=%d: mortonCoords(mortonIndex(%d,%d)) = (%d,%d)", n, sb, db, gsb, gdb)
				}
				if db%2 == 0 && db+1 < n {
					if other := mortonIndex(sb, db+1, n); other != m+1 {
						t.Errorf("n=%d: up-merge partner of (%d,%d) at %d, want %d", n, sb, db, other, m+1)
					}
				}
			}
		}
	}
}

package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/affinity"
	"repro/internal/num"
	"repro/internal/topology"
)

// ParallelFlow is one flow handed to the multicore allocator.
type ParallelFlow struct {
	// ID is an opaque identifier reported back with rates.
	ID FlowID
	// Src and Dst are server indices.
	Src, Dst int
	// Weight is the log-utility weight (1 when zero).
	Weight float64
	// SizeHint is the endpoint's flowlet-size hint in bytes (0 = unknown);
	// solvers ignore it.
	SizeHint int64
}

// flowBlock is the state owned by one worker: its flows in a flat CSR layout
// (no per-flow slices — link positions for all flows live concatenated in two
// arenas, mirroring num.Compiled), its local copies of the two LinkBlocks it
// updates, and scratch space for aggregation.
//
// The CSR is maintained incrementally across flowlet churn: adds append to
// the arenas, removes swap-delete and leave holes, and an arena is compacted
// (into a reused scratch buffer) once holes outnumber live entries. Because
// of the holes the layout keeps explicit per-flow lengths instead of the
// textbook n+1 offsets array — the same scheme num.Compiled uses.
type flowBlock struct {
	srcBlock, dstBlock int

	// Per-flow state, parallel slices indexed by block-local flow index.
	// weights hold the capacity-scaled value the hot loop consumes;
	// baseWeights keep the caller's original weight so LiveFlows can
	// reproduce registrations bit-exactly (scaling is not a reversible
	// float operation for arbitrary weights).
	ids         []FlowID
	srcs        []int32
	dsts        []int32
	weights     []float64
	baseWeights []float64
	sizes       []int64
	rates       []float64
	// lastNotified is the rate most recently reported through
	// AppendUpdates. Carrying it alongside the CSR (and applying the same
	// swap-deletes to it) lets the daemon engine's update walk run on
	// dense arrays with no per-flow map lookups.
	lastNotified []float64

	// CSR link-position arenas: flow i touches positions
	// upIdx[upOff[i]:upOff[i]+upLen[i]] of the source block's upward
	// LinkBlock and downIdx[downOff[i]:downOff[i]+downLen[i]] of the
	// destination block's downward LinkBlock. Positions are resolved from
	// the topology once, when the flow is added; churn of other flows
	// never re-routes this one.
	upIdx, upOff, upLen       []int32
	downIdx, downOff, downLen []int32
	upDead, downDead          int     // arena entries orphaned by swap-deletes
	upScratch, downScratch    []int32 // ping-pong buffers for compaction

	// Local copies of link state (§5): prices are copied in during the
	// distribute step; loads and Hessian diagonals are accumulated locally
	// during the rate-update step and merged during aggregation. The four
	// accumulators are padded to whole cache lines (see paddedFloats) so
	// concurrent writers in the rate-update phase never false-share.
	upPrice, downPrice []float64
	upLoad, downLoad   []float64
	upHdiag, downHdiag []float64
}

// numFlows returns the number of flows loaded into the block.
func (fb *flowBlock) numFlows() int { return len(fb.ids) }

// addFlow appends one flow whose up/down link positions have already been
// written to the arena tails (upIdx/downIdx grew by upN/downN entries).
func (fb *flowBlock) addFlow(f ParallelFlow, weight, baseWeight float64, upN, downN int) {
	fb.ids = append(fb.ids, f.ID)
	fb.srcs = append(fb.srcs, int32(f.Src))
	fb.dsts = append(fb.dsts, int32(f.Dst))
	fb.weights = append(fb.weights, weight)
	fb.baseWeights = append(fb.baseWeights, baseWeight)
	fb.sizes = append(fb.sizes, f.SizeHint)
	fb.rates = append(fb.rates, 0)
	fb.lastNotified = append(fb.lastNotified, 0)
	fb.upOff = append(fb.upOff, int32(len(fb.upIdx)-upN))
	fb.upLen = append(fb.upLen, int32(upN))
	fb.downOff = append(fb.downOff, int32(len(fb.downIdx)-downN))
	fb.downLen = append(fb.downLen, int32(downN))
}

// removeSwap removes flow i by moving the block's last flow into its slot,
// leaving the removed flow's arena entries as holes. It returns the ID of the
// flow that moved into slot i (the removed flow itself when it was last) so
// the allocator can fix its locator.
func (fb *flowBlock) removeSwap(i int) FlowID {
	last := len(fb.ids) - 1
	fb.upDead += int(fb.upLen[i])
	fb.downDead += int(fb.downLen[i])
	if i != last {
		fb.ids[i] = fb.ids[last]
		fb.srcs[i] = fb.srcs[last]
		fb.dsts[i] = fb.dsts[last]
		fb.weights[i] = fb.weights[last]
		fb.baseWeights[i] = fb.baseWeights[last]
		fb.sizes[i] = fb.sizes[last]
		fb.rates[i] = fb.rates[last]
		fb.lastNotified[i] = fb.lastNotified[last]
		fb.upOff[i] = fb.upOff[last]
		fb.upLen[i] = fb.upLen[last]
		fb.downOff[i] = fb.downOff[last]
		fb.downLen[i] = fb.downLen[last]
	}
	moved := fb.ids[last]
	fb.ids = fb.ids[:last]
	fb.srcs = fb.srcs[:last]
	fb.dsts = fb.dsts[:last]
	fb.weights = fb.weights[:last]
	fb.baseWeights = fb.baseWeights[:last]
	fb.sizes = fb.sizes[:last]
	fb.rates = fb.rates[:last]
	fb.lastNotified = fb.lastNotified[:last]
	fb.upOff = fb.upOff[:last]
	fb.upLen = fb.upLen[:last]
	fb.downOff = fb.downOff[:last]
	fb.downLen = fb.downLen[:last]
	if fb.upDead > len(fb.upIdx)-fb.upDead && fb.upDead > num.CompactMinDead {
		fb.upIdx, fb.upScratch, fb.upDead = num.CompactArena(fb.upIdx, fb.upScratch, fb.upOff, fb.upLen)
	}
	if fb.downDead > len(fb.downIdx)-fb.downDead && fb.downDead > num.CompactMinDead {
		fb.downIdx, fb.downScratch, fb.downDead = num.CompactArena(fb.downIdx, fb.downScratch, fb.downOff, fb.downLen)
	}
	if i != last {
		return fb.ids[i]
	}
	return moved
}

// reset clears all per-flow state, keeping capacity.
func (fb *flowBlock) reset() {
	fb.ids = fb.ids[:0]
	fb.srcs = fb.srcs[:0]
	fb.dsts = fb.dsts[:0]
	fb.weights = fb.weights[:0]
	fb.baseWeights = fb.baseWeights[:0]
	fb.sizes = fb.sizes[:0]
	fb.rates = fb.rates[:0]
	fb.lastNotified = fb.lastNotified[:0]
	fb.upIdx = fb.upIdx[:0]
	fb.upOff = fb.upOff[:0]
	fb.upLen = fb.upLen[:0]
	fb.downIdx = fb.downIdx[:0]
	fb.downOff = fb.downOff[:0]
	fb.downLen = fb.downLen[:0]
	fb.upDead = 0
	fb.downDead = 0
}

// reallocAccumulators replaces the block's price/load/Hessian arrays with
// fresh allocations holding the same contents. A pinned worker calls it from
// its own OS thread before the first barrier, so first-touch places the
// merge-phase working set on the worker's local memory node; the barrier's
// release then publishes the new slice headers to the merge partners.
func (fb *flowBlock) reallocAccumulators() {
	fb.upPrice = repadded(fb.upPrice)
	fb.downPrice = repadded(fb.downPrice)
	fb.upLoad = repadded(fb.upLoad)
	fb.downLoad = repadded(fb.downLoad)
	fb.upHdiag = repadded(fb.upHdiag)
	fb.downHdiag = repadded(fb.downHdiag)
}

// repadded copies src into a fresh cache-line-padded allocation.
func repadded(src []float64) []float64 {
	dst := paddedFloats(len(src))
	copy(dst, src)
	return dst
}

// linkBlockState is the authoritative state of one LinkBlock (prices persist
// across iterations; capacities are fixed).
type linkBlockState struct {
	links []topology.LinkID
	price []float64
	cap   []float64
	// posOf maps LinkID to its position within the block (-1 when the link
	// is not in the block); a dense array indexed by LinkID replaces the
	// map lookup on the flow-add path.
	posOf []int32
	// ext and extH, when non-nil, carry remote shards' load and
	// Hessian-diagonal contributions per block position (see
	// ParallelAllocator.SetExternalLoads). The price-update phase folds
	// them into the merged accumulators exactly as the sequential NED
	// solver folds num.Problem.ExternalLoads, and the normalize phase
	// counts ext toward link utilization.
	ext, extH []float64
	// pinned, when non-nil, holds imported remote-owner prices per block
	// position (-1 = locally priced); re-imposed after every price update,
	// mirroring num.Problem.PinnedPrices.
	pinned []float64
}

func newLinkBlockState(t *topology.Topology, links []topology.LinkID, headroom float64) *linkBlockState {
	s := &linkBlockState{
		links: links,
		price: make([]float64, len(links)),
		cap:   make([]float64, len(links)),
		posOf: make([]int32, t.NumLinks()),
	}
	for i := range s.posOf {
		s.posOf[i] = -1
	}
	for i, l := range links {
		s.price[i] = 1
		s.cap[i] = t.Link(l).Capacity * (1 - headroom)
		s.posOf[l] = int32(i)
	}
	return s
}

// ParallelConfig configures the multicore allocator.
type ParallelConfig struct {
	// Topology is the fabric to schedule. Required.
	Topology *topology.Topology
	// Blocks is the number of rack blocks n; the allocator uses n²
	// FlowBlocks, each handled by one worker goroutine (the paper's 4-,
	// 16- and 64-core configurations correspond to 2, 4 and 8 blocks).
	Blocks int
	// Gamma is NED's step size (default 1).
	Gamma float64
	// Headroom is the fraction of link capacity withheld (the update
	// threshold of the sequential allocator); default 0.
	Headroom float64
	// Normalize enables the parallel F-NORM pass after the price update.
	Normalize bool
	// PinWorkers pins each FlowBlock worker's OS thread to a NUMA socket
	// (round-robin by worker index) and re-allocates the block's
	// accumulator arrays from the pinned thread, so first-touch places the
	// merge-phase working set on the worker's local memory node. It is a
	// no-op unless the binary is built with the `numa` tag on linux (see
	// internal/affinity).
	PinWorkers bool
}

// flowLoc locates a registered flow: the FlowBlock that holds it and its
// block-local index. The index moves under swap-deletes; FlowletEnd keeps the
// locator map consistent.
type flowLoc struct {
	fb  int32
	idx int32
}

// ParallelAllocator is the FlowBlock/LinkBlock multicore implementation of
// the NED optimizer (§5). Flows are partitioned by (source block, destination
// block) into FlowBlocks; each FlowBlock worker updates only its own local
// copies of the source block's upward LinkBlock and the destination block's
// downward LinkBlock, eliminating concurrent writes. Local copies are then
// merged into authoritative copies in log2(n) pairwise aggregation rounds
// (Figure 3), prices are updated on the authoritative copies, and the new
// prices are distributed back to the FlowBlocks.
//
// The flow set is maintained incrementally: FlowletStart and FlowletEnd are
// O(route length) operations on the owning FlowBlock's CSR arenas, so flowlet
// churn between iterations never rebuilds or re-routes the rest of the flow
// set. SetFlows remains as the bulk-load path.
type ParallelAllocator struct {
	cfg  ParallelConfig
	topo *topology.Topology
	part *topology.BlockPartition
	// routes memoizes path computation; with a warm cache FlowletStart is
	// allocation-free, which BenchmarkParallelChurn and
	// TestParallelChurnAllocFree pin.
	routes *topology.RouteCache

	numBlocks int
	gamma     float64
	maxRate   float64 // per-flow rate cap (the server NIC line rate)
	linkCap   float64 // weight scale (see FlowletStart)

	up   []*linkBlockState // authoritative upward LinkBlocks, indexed by block
	down []*linkBlockState // authoritative downward LinkBlocks, indexed by block

	// Dense LinkID→owning-LinkBlock lookup for the boundary API (every
	// fabric link lives in exactly one LinkBlock; allocator uplinks in
	// none, so their ownerLB entry is nil). ownerPos is the link's position
	// within the block, ownerBlk the block index, ownerIsUp whether it is
	// the block's upward half.
	ownerLB   []*linkBlockState
	ownerPos  []int32
	ownerBlk  []int32
	ownerIsUp []bool

	// fbs holds the FlowBlocks in Morton (bit-interleaved) order of their
	// (srcBlock, dstBlock) coordinates, so the partners of the early
	// pairwise merge rounds sit next to each other — both in the slice and
	// in the heap, since their accumulator arenas are allocated in the
	// same order. fbAt is the row-major lookup: fbAt[sb*numBlocks+db].
	fbs  []*flowBlock
	fbAt []*flowBlock

	// loc locates every registered flow for FlowletEnd; it is touched only
	// on churn, never in the iteration hot path.
	loc map[FlowID]flowLoc

	// Worker pool: one worker per FlowBlock. The outer barrier (workers +
	// coordinator) marks the start and end of an iteration; the inner
	// barrier (workers only) separates the phases within an iteration.
	barrier *barrier
	inner   *barrier
	wg      sync.WaitGroup
	stop    atomic.Bool
	started bool

	numFlows int
}

// NewParallelAllocator builds the multicore allocator.
func NewParallelAllocator(cfg ParallelConfig) (*ParallelAllocator, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("core: ParallelConfig.Topology is required")
	}
	if cfg.Blocks <= 0 {
		return nil, fmt.Errorf("core: ParallelConfig.Blocks must be positive, got %d", cfg.Blocks)
	}
	if cfg.Blocks&(cfg.Blocks-1) != 0 {
		return nil, fmt.Errorf("core: ParallelConfig.Blocks must be a power of two, got %d", cfg.Blocks)
	}
	part, err := topology.NewBlockPartition(cfg.Topology, cfg.Blocks)
	if err != nil {
		return nil, err
	}
	gamma := cfg.Gamma
	if gamma == 0 {
		gamma = 1
	}
	p := &ParallelAllocator{
		cfg:       cfg,
		topo:      cfg.Topology,
		part:      part,
		routes:    topology.NewRouteCache(cfg.Topology),
		numBlocks: cfg.Blocks,
		gamma:     gamma,
		maxRate:   cfg.Topology.Config().LinkCapacity,
		linkCap:   cfg.Topology.Config().LinkCapacity,
		loc:       make(map[FlowID]flowLoc),
	}
	for b := 0; b < cfg.Blocks; b++ {
		p.up = append(p.up, newLinkBlockState(cfg.Topology, part.UpwardLinkBlock(b), cfg.Headroom))
		p.down = append(p.down, newLinkBlockState(cfg.Topology, part.DownwardLinkBlock(b), cfg.Headroom))
	}
	p.ownerLB = make([]*linkBlockState, cfg.Topology.NumLinks())
	p.ownerPos = make([]int32, cfg.Topology.NumLinks())
	p.ownerBlk = make([]int32, cfg.Topology.NumLinks())
	p.ownerIsUp = make([]bool, cfg.Topology.NumLinks())
	for b := 0; b < cfg.Blocks; b++ {
		for i, l := range p.up[b].links {
			p.ownerLB[l], p.ownerPos[l], p.ownerBlk[l], p.ownerIsUp[l] = p.up[b], int32(i), int32(b), true
		}
		for i, l := range p.down[b].links {
			p.ownerLB[l], p.ownerPos[l], p.ownerBlk[l], p.ownerIsUp[l] = p.down[b], int32(i), int32(b), false
		}
	}
	n := cfg.Blocks
	p.fbs = make([]*flowBlock, n*n)
	p.fbAt = make([]*flowBlock, n*n)
	// Allocate the FlowBlocks (and their accumulator arenas) in Morton
	// order so round-1 merge partners get adjacent heap placements.
	for m := 0; m < n*n; m++ {
		sb, db := mortonCoords(m, n)
		fb := &flowBlock{
			srcBlock:  sb,
			dstBlock:  db,
			upPrice:   paddedFloats(len(p.up[sb].links)),
			downPrice: paddedFloats(len(p.down[db].links)),
			upLoad:    paddedFloats(len(p.up[sb].links)),
			downLoad:  paddedFloats(len(p.down[db].links)),
			upHdiag:   paddedFloats(len(p.up[sb].links)),
			downHdiag: paddedFloats(len(p.down[db].links)),
		}
		copy(fb.upPrice, p.up[sb].price)
		copy(fb.downPrice, p.down[db].price)
		p.fbs[m] = fb
		p.fbAt[sb*n+db] = fb
	}
	return p, nil
}

// cacheLineFloats is the number of float64 words per 64-byte cache line.
const cacheLineFloats = 8

// paddedFloats allocates a float64 slice of length n whose backing array
// spans whole cache lines, so per-FlowBlock accumulators written concurrently
// in the rate-update phase never share a line with another block's (Go's size
// classes place multiple-of-64-byte allocations on 64-byte boundaries).
func paddedFloats(n int) []float64 {
	padded := (n + cacheLineFloats - 1) &^ (cacheLineFloats - 1)
	if padded == 0 {
		padded = cacheLineFloats
	}
	return make([]float64, n, padded)
}

// mortonCoords decodes Morton index m into (srcBlock, dstBlock) for n blocks:
// dstBlock occupies the even bits, srcBlock the odd bits. With this
// interleaving the round-1 up-merge partner (sb, db±1) is the neighbouring
// slot and the round-1 down-merge partner (sb±1, db) is two slots away.
func mortonCoords(m, n int) (sb, db int) {
	for bit := 0; 1<<bit < n; bit++ {
		db |= (m >> (2 * bit) & 1) << bit
		sb |= (m >> (2*bit + 1) & 1) << bit
	}
	return sb, db
}

// NumWorkers returns the number of worker goroutines (FlowBlocks).
func (p *ParallelAllocator) NumWorkers() int { return len(p.fbs) }

// NumFlows returns the number of loaded flows.
func (p *ParallelAllocator) NumFlows() int { return p.numFlows }

// AggregationSteps returns the number of pairwise merge rounds per iteration.
func (p *ParallelAllocator) AggregationSteps() int { return p.part.AggregationSteps() }

// HasFlow reports whether a flowlet is currently registered.
func (p *ParallelAllocator) HasFlow(id FlowID) bool {
	_, ok := p.loc[id]
	return ok
}

// FlowletStart registers one new flowlet, resolving its route to LinkBlock
// positions once and appending them to the owning FlowBlock's CSR arenas —
// an O(route length) operation that leaves every other flow untouched. It may
// only be called while no Iterate call is in flight.
func (p *ParallelAllocator) FlowletStart(id FlowID, src, dst int, weight float64) error {
	return p.FlowletStartSized(id, src, dst, weight, 0)
}

// FlowletStartSized is FlowletStart carrying the endpoint's flowlet-size
// hint in bytes (0 = unknown). The hint is recorded in the flow metadata and
// surfaced by LiveFlows; it does not affect allocation.
func (p *ParallelAllocator) FlowletStartSized(id FlowID, src, dst int, weight float64, size int64) error {
	if _, dup := p.loc[id]; dup {
		return fmt.Errorf("core: flowlet %d already registered", id)
	}
	return p.addFlow(ParallelFlow{ID: id, Src: src, Dst: dst, Weight: weight, SizeHint: size})
}

// addFlow routes and appends one flow (shared by FlowletStart and SetFlows;
// the caller has already rejected duplicates).
func (p *ParallelAllocator) addFlow(f ParallelFlow) error {
	route, err := p.routes.Route(f.Src, f.Dst, int(f.ID))
	if err != nil {
		return fmt.Errorf("core: flow %d: %w", f.ID, err)
	}
	sb := p.part.BlockOfServer(f.Src)
	db := p.part.BlockOfServer(f.Dst)
	fbi := mortonIndex(sb, db, p.numBlocks)
	fb := p.fbs[fbi]
	upStart, downStart := len(fb.upIdx), len(fb.downIdx)
	for _, l := range route {
		if pos := p.up[sb].posOf[l]; pos >= 0 {
			fb.upIdx = append(fb.upIdx, pos)
			continue
		}
		if pos := p.down[db].posOf[l]; pos >= 0 {
			fb.downIdx = append(fb.downIdx, pos)
			continue
		}
		fb.upIdx = fb.upIdx[:upStart]
		fb.downIdx = fb.downIdx[:downStart]
		return fmt.Errorf("core: flow %d: link %d is in neither its upward nor its downward LinkBlock", f.ID, l)
	}
	weight := f.Weight
	if weight == 0 {
		weight = 1
	}
	// Weights are scaled by link capacity (as in the sequential allocator)
	// so prices stay O(1).
	fb.addFlow(f, weight*p.linkCap, weight, len(fb.upIdx)-upStart, len(fb.downIdx)-downStart)
	p.loc[f.ID] = flowLoc{fb: int32(fbi), idx: int32(fb.numFlows() - 1)}
	p.numFlows++
	return nil
}

// mortonIndex interleaves the bits of (srcBlock, dstBlock): the inverse of
// mortonCoords.
func mortonIndex(sb, db, n int) int {
	m := 0
	for bit := 0; 1<<bit < n; bit++ {
		m |= (db >> bit & 1) << (2 * bit)
		m |= (sb >> bit & 1) << (2*bit + 1)
	}
	return m
}

// FlowletEnd removes a flowlet by swap-deleting it from its FlowBlock — an
// O(1) operation (plus an amortized arena compaction once holes outnumber
// live entries). It may only be called while no Iterate call is in flight.
func (p *ParallelAllocator) FlowletEnd(id FlowID) error {
	l, ok := p.loc[id]
	if !ok {
		return fmt.Errorf("core: flowlet %d is not registered", id)
	}
	fb := p.fbs[l.fb]
	moved := fb.removeSwap(int(l.idx))
	if moved != id {
		p.loc[moved] = flowLoc{fb: l.fb, idx: l.idx}
	}
	delete(p.loc, id)
	p.numFlows--
	return nil
}

// SetLinkCapacity replaces one link's raw capacity in every LinkBlock that
// covers it (a link appears in at most one upward and one downward block's
// authoritative copy). The stored value is headroom-scaled, matching
// construction, and the next Iterate's price-update phase reads it — no CSR
// rebuild, no price or rate loss. Like all mutators it may only be called
// while no Iterate is in flight.
func (p *ParallelAllocator) SetLinkCapacity(l topology.LinkID, capacity float64) error {
	if l < 0 || int(l) >= p.topo.NumLinks() {
		return fmt.Errorf("core: SetLinkCapacity link %d out of range (%d links)", l, p.topo.NumLinks())
	}
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return fmt.Errorf("core: SetLinkCapacity link %d: invalid capacity %g", l, capacity)
	}
	eff := capacity * (1 - p.cfg.Headroom)
	found := false
	for _, lb := range p.up {
		if pos := lb.posOf[l]; pos >= 0 {
			lb.cap[pos] = eff
			found = true
		}
	}
	for _, lb := range p.down {
		if pos := lb.posOf[l]; pos >= 0 {
			lb.cap[pos] = eff
			found = true
		}
	}
	if !found {
		return fmt.Errorf("core: SetLinkCapacity link %d is not covered by any LinkBlock", l)
	}
	return nil
}

// SetFlows replaces the allocator's flow set in bulk, re-routing every flow.
// Link prices persist across calls. Incremental churn should use
// FlowletStart/FlowletEnd instead; SetFlows remains as the bulk-load path.
// Flow IDs must be distinct. It may only be called while no Iterate call is
// in flight.
func (p *ParallelAllocator) SetFlows(flows []ParallelFlow) error {
	for _, fb := range p.fbs {
		fb.reset()
	}
	clear(p.loc)
	p.numFlows = 0
	for _, f := range flows {
		if _, dup := p.loc[f.ID]; dup {
			return fmt.Errorf("core: duplicate flow ID %d", f.ID)
		}
		if err := p.addFlow(f); err != nil {
			return err
		}
	}
	return nil
}

// LiveFlows returns the registered flows in the allocator's internal
// (FlowBlock-major) order — the canonical order in which rates are reported
// and loads are accumulated. Feeding the result to SetFlows on an allocator
// with the same configuration reproduces this allocator's layout exactly.
func (p *ParallelAllocator) LiveFlows() []ParallelFlow {
	out := make([]ParallelFlow, 0, p.numFlows)
	for _, fb := range p.fbs {
		for i, id := range fb.ids {
			out = append(out, ParallelFlow{
				ID:       id,
				Src:      int(fb.srcs[i]),
				Dst:      int(fb.dsts[i]),
				Weight:   fb.baseWeights[i],
				SizeHint: fb.sizes[i],
			})
		}
	}
	return out
}

// start launches the persistent worker goroutines on first use.
func (p *ParallelAllocator) start() {
	if p.started {
		return
	}
	p.started = true
	p.barrier = newBarrier(len(p.fbs) + 1) // workers + coordinator
	p.inner = newBarrier(len(p.fbs))       // workers only
	for w := range p.fbs {
		p.wg.Add(1)
		go p.worker(w)
	}
}

// Close shuts down the worker pool. The allocator cannot be used afterwards.
func (p *ParallelAllocator) Close() {
	if !p.started {
		return
	}
	p.stop.Store(true)
	p.barrier.wait() // release workers into the iteration; they observe stop
	p.wg.Wait()
	p.started = false
}

// Iterate runs one parallel NED iteration (rate update, aggregation, price
// update, distribution, and optionally F-NORM) and returns after all workers
// finish.
func (p *ParallelAllocator) Iterate() {
	p.start()
	p.barrier.wait() // release workers into the iteration
	p.barrier.wait() // wait for workers to finish the iteration
}

// worker is the body of one FlowBlock worker goroutine.
func (p *ParallelAllocator) worker(idx int) {
	defer p.wg.Done()
	fb := p.fbs[idx]
	if p.cfg.PinWorkers && affinity.Enabled() {
		// Pin before the first barrier: re-allocating the accumulators from
		// the pinned thread makes first-touch place them on the worker's
		// memory node, and the barrier's release publishes the new slice
		// headers to the merge partners that read them. The CSR churn
		// arenas stay coordinator-allocated (churn happens between
		// iterations, off the worker threads), a documented approximation.
		if _, err := affinity.PinWorker(idx); err == nil {
			fb.reallocAccumulators()
		}
	}
	n := p.numBlocks
	for {
		p.barrier.wait() // wait for Iterate (or Close)
		if p.stop.Load() {
			return
		}

		// Phase 1: rate update on local copies (Equation 3), accumulating
		// per-link loads and Hessian diagonals locally.
		p.rateUpdatePhase(fb)
		p.inner.wait()

		// Phase 2: log2(n) pairwise aggregation rounds. Upward LinkBlocks
		// are reduced across the destination-block dimension; downward
		// LinkBlocks across the source-block dimension (Figure 3). The
		// Morton layout of fbs makes the stride-1 partners heap
		// neighbours, so the early (widest) rounds stay local.
		for stride := 1; stride < n; stride *= 2 {
			if fb.dstBlock%(2*stride) == 0 && fb.dstBlock+stride < n {
				other := p.fbAt[fb.srcBlock*n+fb.dstBlock+stride]
				addInto(fb.upLoad, other.upLoad)
				addInto(fb.upHdiag, other.upHdiag)
			}
			if fb.srcBlock%(2*stride) == 0 && fb.srcBlock+stride < n {
				other := p.fbAt[(fb.srcBlock+stride)*n+fb.dstBlock]
				addInto(fb.downLoad, other.downLoad)
				addInto(fb.downHdiag, other.downHdiag)
			}
			p.inner.wait()
		}

		// Phase 3: price update (Equation 4) on the authoritative copies.
		// FlowBlock (b, 0) owns block b's upward LinkBlock; FlowBlock
		// (0, b) owns block b's downward LinkBlock.
		if fb.dstBlock == 0 {
			p.priceUpdatePhase(p.up[fb.srcBlock], fb.upLoad, fb.upHdiag)
		}
		if fb.srcBlock == 0 {
			p.priceUpdatePhase(p.down[fb.dstBlock], fb.downLoad, fb.downHdiag)
		}
		p.inner.wait()

		// Phase 4: distribute the new prices back to local copies.
		copy(fb.upPrice, p.up[fb.srcBlock].price)
		copy(fb.downPrice, p.down[fb.dstBlock].price)

		if p.cfg.Normalize {
			p.inner.wait()
			// Parallel F-NORM: each FlowBlock scales its flows by the
			// worst utilization ratio along their paths, computed from the
			// aggregated loads held by the LinkBlock owners.
			p.normalizePhase(fb)
		}

		p.barrier.wait() // iteration complete; coordinator resumes
	}
}

// rateUpdatePhase computes flow rates from the FlowBlock's local prices and
// accumulates loads and Hessian diagonals locally.
func (p *ParallelAllocator) rateUpdatePhase(fb *flowBlock) {
	for i := range fb.upLoad {
		fb.upLoad[i] = 0
		fb.upHdiag[i] = 0
	}
	for i := range fb.downLoad {
		fb.downLoad[i] = 0
		fb.downHdiag[i] = 0
	}
	for i := 0; i < fb.numFlows(); i++ {
		up := fb.upIdx[fb.upOff[i] : fb.upOff[i]+fb.upLen[i]]
		down := fb.downIdx[fb.downOff[i] : fb.downOff[i]+fb.downLen[i]]
		priceSum := 0.0
		for _, pos := range up {
			priceSum += fb.upPrice[pos]
		}
		for _, pos := range down {
			priceSum += fb.downPrice[pos]
		}
		if priceSum < minParallelPrice {
			priceSum = minParallelPrice
		}
		w := fb.weights[i]
		x := w / priceSum
		if x > p.maxRate {
			x = p.maxRate
		}
		d := -w / (priceSum * priceSum)
		fb.rates[i] = x
		for _, pos := range up {
			fb.upLoad[pos] += x
			fb.upHdiag[pos] += d
		}
		for _, pos := range down {
			fb.downLoad[pos] += x
			fb.downHdiag[pos] += d
		}
	}
}

// minParallelPrice mirrors the price floor of the sequential solver.
const minParallelPrice = 1e-12

// priceUpdatePhase applies NED's price update to one authoritative LinkBlock.
// External loads (remote shards' demand) are folded into the merged
// accumulators here — g is computed as (load − cap) + ext, exactly the
// sequential solver's operation order, so a boundary-exchanging shard stays
// bit-identical to the sequential engine — and pinned prices are re-imposed
// after the update, mirroring num's applyPins.
func (p *ParallelAllocator) priceUpdatePhase(lb *linkBlockState, load, hdiag []float64) {
	ext, extH, pinned := lb.ext, lb.extH, lb.pinned
	for i := range lb.price {
		g := load[i] - lb.cap[i]
		h := hdiag[i]
		if ext != nil {
			g += ext[i]
		}
		if extH != nil {
			h += extH[i]
		}
		if h == 0 {
			// Mirror the sequential solver: idle links decay toward zero.
			lb.price[i] *= 0.5
		} else {
			price := lb.price[i] - p.gamma*g/h
			if price < 0 {
				price = 0
			}
			lb.price[i] = price
		}
		if pinned != nil && pinned[i] >= 0 {
			lb.price[i] = pinned[i]
		}
	}
}

// normalizePhase applies F-NORM within a FlowBlock: each flow is scaled by
// the worst load/capacity ratio among the links it traverses. The aggregated
// loads live in the owner FlowBlocks (column 0 for upward, row 0 for
// downward), which this phase only reads. External loads count toward a
// link's utilization — as (load + ext) / cap, the sequential normalizer's
// operation order — so a boundary link crowded by remote traffic slows local
// flows just as local congestion would.
func (p *ParallelAllocator) normalizePhase(fb *flowBlock) {
	upOwner := p.fbAt[fb.srcBlock*p.numBlocks] // (srcBlock, 0)
	downOwner := p.fbAt[fb.dstBlock]           // (0, dstBlock)
	upCap := p.up[fb.srcBlock].cap
	downCap := p.down[fb.dstBlock].cap
	upExt := p.up[fb.srcBlock].ext
	downExt := p.down[fb.dstBlock].ext
	for i := 0; i < fb.numFlows(); i++ {
		worst := 1.0
		for _, pos := range fb.upIdx[fb.upOff[i] : fb.upOff[i]+fb.upLen[i]] {
			load := upOwner.upLoad[pos]
			if upExt != nil {
				load += upExt[pos]
			}
			if r := load / upCap[pos]; r > worst {
				worst = r
			}
		}
		for _, pos := range fb.downIdx[fb.downOff[i] : fb.downOff[i]+fb.downLen[i]] {
			load := downOwner.downLoad[pos]
			if downExt != nil {
				load += downExt[pos]
			}
			if r := load / downCap[pos]; r > worst {
				worst = r
			}
		}
		if worst > 1 {
			fb.rates[i] /= worst
		}
	}
}

// Rates returns the rates computed by the most recent Iterate call, keyed by
// flow ID.
func (p *ParallelAllocator) Rates() map[FlowID]float64 {
	out := make(map[FlowID]float64, p.numFlows)
	p.ForEachRate(func(id FlowID, rate float64) { out[id] = rate })
	return out
}

// ForEachRate calls fn with the most recently computed rate of every loaded
// flow, in FlowBlock order, without allocating. It may only be called while
// no Iterate is in flight.
func (p *ParallelAllocator) ForEachRate(fn func(FlowID, float64)) {
	for _, fb := range p.fbs {
		for i, id := range fb.ids {
			fn(id, fb.rates[i])
		}
	}
}

// AppendUpdates appends a RateUpdate for every flow whose rate changed
// significantly (per SignificantRateChange) since it was last reported,
// records the reported rates, and returns the extended slice. The walk runs
// over the dense per-FlowBlock arrays — no per-flow map lookups — and
// allocates nothing once buf has grown to the working-set size. It may only
// be called while no Iterate is in flight.
func (p *ParallelAllocator) AppendUpdates(threshold float64, buf []RateUpdate) []RateUpdate {
	for _, fb := range p.fbs {
		for i, id := range fb.ids {
			rate := fb.rates[i]
			if SignificantRateChange(fb.lastNotified[i], rate, threshold) {
				fb.lastNotified[i] = rate
				buf = append(buf, RateUpdate{Flow: id, Src: int(fb.srcs[i]), Rate: rate})
			}
		}
	}
	return buf
}

// Prices returns the authoritative link prices keyed by LinkID.
func (p *ParallelAllocator) Prices() map[topology.LinkID]float64 {
	out := make(map[topology.LinkID]float64)
	for _, lb := range p.up {
		for i, l := range lb.links {
			out[l] = lb.price[i]
		}
	}
	for _, lb := range p.down {
		for i, l := range lb.links {
			out[l] = lb.price[i]
		}
	}
	return out
}

// addInto adds src element-wise into dst.
func addInto(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// barrier is a reusable sense-reversing barrier for n parties. Arrival is a
// single atomic add; the last arriver resets the count and advances the
// generation (the "sense"), releasing the others. Waiters spin briefly on the
// generation word — at the allocator's µs-scale phase lengths the partners
// usually arrive within the spin budget, so the common case costs no kernel
// transition — and park on a condition variable only when the spin budget
// runs out (or the scheduler is oversubscribed).
type barrier struct {
	n       int32
	spins   int
	arrived atomic.Int32
	gen     atomic.Uint32

	mu   sync.Mutex
	cond *sync.Cond
}

// barrierSpins bounds the busy-wait before a waiter parks.
const barrierSpins = 1 << 13

func newBarrier(n int) *barrier {
	b := &barrier{n: int32(n)}
	// Spinning only pays when the stragglers can run concurrently with
	// the spinner; on an oversubscribed scheduler the spinner's timeslice
	// is exactly what the last arriver is waiting for, so park at once.
	if n <= runtime.GOMAXPROCS(0) {
		b.spins = barrierSpins
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n parties have called wait for the current
// generation.
func (b *barrier) wait() {
	gen := b.gen.Load()
	if b.arrived.Add(1) == b.n {
		// Reset before flipping the sense: the other n-1 parties are all
		// inside wait, so no new arrival can race the reset.
		b.arrived.Store(0)
		b.mu.Lock()
		b.gen.Add(1)
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for spins := 0; spins < b.spins; spins++ {
		if b.gen.Load() != gen {
			return
		}
		if spins&63 == 63 {
			// Yield periodically so spinning cannot starve the very
			// parties being waited for if the scheduler shrank.
			runtime.Gosched()
		}
	}
	b.mu.Lock()
	for b.gen.Load() == gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

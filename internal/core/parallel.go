package core

import (
	"fmt"
	"sync"

	"repro/internal/topology"
)

// ParallelFlow is one flow handed to the multicore allocator.
type ParallelFlow struct {
	// ID is an opaque identifier reported back with rates.
	ID FlowID
	// Src and Dst are server indices.
	Src, Dst int
	// Weight is the log-utility weight (1 when zero).
	Weight float64
}

// flowBlock is the state owned by one worker: its flows in a flat CSR layout
// (no per-flow slices — link positions for all flows live concatenated in two
// arenas, mirroring num.Compiled), its local copies of the two LinkBlocks it
// updates, and scratch space for aggregation.
type flowBlock struct {
	srcBlock, dstBlock int

	// Per-flow state, parallel slices indexed by block-local flow index.
	ids     []FlowID
	weights []float64
	rates   []float64

	// CSR link-position indices: flow i touches positions
	// upIdx[upOff[i]:upOff[i+1]] of the source block's upward LinkBlock and
	// downIdx[downOff[i]:downOff[i+1]] of the destination block's downward
	// LinkBlock.
	upIdx, upOff     []int32
	downIdx, downOff []int32

	// Local copies of link state (§5): prices are copied in during the
	// distribute step; loads and Hessian diagonals are accumulated locally
	// during the rate-update step and merged during aggregation.
	upPrice, downPrice []float64
	upLoad, downLoad   []float64
	upHdiag, downHdiag []float64
}

// numFlows returns the number of flows loaded into the block.
func (fb *flowBlock) numFlows() int { return len(fb.ids) }

// linkBlockState is the authoritative state of one LinkBlock (prices persist
// across iterations; capacities are fixed).
type linkBlockState struct {
	links []topology.LinkID
	price []float64
	cap   []float64
	// posOf maps LinkID to its position within the block (-1 when the link
	// is not in the block); a dense array indexed by LinkID replaces the
	// map lookup on the SetFlows path.
	posOf []int32
}

func newLinkBlockState(t *topology.Topology, links []topology.LinkID, headroom float64) *linkBlockState {
	s := &linkBlockState{
		links: links,
		price: make([]float64, len(links)),
		cap:   make([]float64, len(links)),
		posOf: make([]int32, t.NumLinks()),
	}
	for i := range s.posOf {
		s.posOf[i] = -1
	}
	for i, l := range links {
		s.price[i] = 1
		s.cap[i] = t.Link(l).Capacity * (1 - headroom)
		s.posOf[l] = int32(i)
	}
	return s
}

// ParallelConfig configures the multicore allocator.
type ParallelConfig struct {
	// Topology is the fabric to schedule. Required.
	Topology *topology.Topology
	// Blocks is the number of rack blocks n; the allocator uses n²
	// FlowBlocks, each handled by one worker goroutine (the paper's 4-,
	// 16- and 64-core configurations correspond to 2, 4 and 8 blocks).
	Blocks int
	// Gamma is NED's step size (default 1).
	Gamma float64
	// Headroom is the fraction of link capacity withheld (the update
	// threshold of the sequential allocator); default 0.
	Headroom float64
	// Normalize enables the parallel F-NORM pass after the price update.
	Normalize bool
}

// ParallelAllocator is the FlowBlock/LinkBlock multicore implementation of
// the NED optimizer (§5). Flows are partitioned by (source block, destination
// block) into FlowBlocks; each FlowBlock worker updates only its own local
// copies of the source block's upward LinkBlock and the destination block's
// downward LinkBlock, eliminating concurrent writes. Local copies are then
// merged into authoritative copies in log2(n) pairwise aggregation rounds
// (Figure 3), prices are updated on the authoritative copies, and the new
// prices are distributed back to the FlowBlocks.
type ParallelAllocator struct {
	cfg  ParallelConfig
	topo *topology.Topology
	part *topology.BlockPartition

	numBlocks int
	gamma     float64
	maxRate   float64 // per-flow rate cap (the server NIC line rate)

	up   []*linkBlockState // authoritative upward LinkBlocks, indexed by block
	down []*linkBlockState // authoritative downward LinkBlocks, indexed by block

	fbs []*flowBlock // indexed by srcBlock*numBlocks + dstBlock

	// Worker pool: one worker per FlowBlock. The outer barrier (workers +
	// coordinator) marks the start and end of an iteration; the inner
	// barrier (workers only) separates the phases within an iteration.
	barrier *barrier
	inner   *barrier
	wg      sync.WaitGroup
	stop    bool
	started bool

	numFlows int
}

// NewParallelAllocator builds the multicore allocator.
func NewParallelAllocator(cfg ParallelConfig) (*ParallelAllocator, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("core: ParallelConfig.Topology is required")
	}
	if cfg.Blocks <= 0 {
		return nil, fmt.Errorf("core: ParallelConfig.Blocks must be positive, got %d", cfg.Blocks)
	}
	if cfg.Blocks&(cfg.Blocks-1) != 0 {
		return nil, fmt.Errorf("core: ParallelConfig.Blocks must be a power of two, got %d", cfg.Blocks)
	}
	part, err := topology.NewBlockPartition(cfg.Topology, cfg.Blocks)
	if err != nil {
		return nil, err
	}
	gamma := cfg.Gamma
	if gamma == 0 {
		gamma = 1
	}
	p := &ParallelAllocator{
		cfg:       cfg,
		topo:      cfg.Topology,
		part:      part,
		numBlocks: cfg.Blocks,
		gamma:     gamma,
		maxRate:   cfg.Topology.Config().LinkCapacity,
	}
	for b := 0; b < cfg.Blocks; b++ {
		p.up = append(p.up, newLinkBlockState(cfg.Topology, part.UpwardLinkBlock(b), cfg.Headroom))
		p.down = append(p.down, newLinkBlockState(cfg.Topology, part.DownwardLinkBlock(b), cfg.Headroom))
	}
	for sb := 0; sb < cfg.Blocks; sb++ {
		for db := 0; db < cfg.Blocks; db++ {
			fb := &flowBlock{
				srcBlock:  sb,
				dstBlock:  db,
				upPrice:   make([]float64, len(p.up[sb].links)),
				downPrice: make([]float64, len(p.down[db].links)),
				upLoad:    make([]float64, len(p.up[sb].links)),
				downLoad:  make([]float64, len(p.down[db].links)),
				upHdiag:   make([]float64, len(p.up[sb].links)),
				downHdiag: make([]float64, len(p.down[db].links)),
			}
			copy(fb.upPrice, p.up[sb].price)
			copy(fb.downPrice, p.down[db].price)
			p.fbs = append(p.fbs, fb)
		}
	}
	return p, nil
}

// NumWorkers returns the number of worker goroutines (FlowBlocks).
func (p *ParallelAllocator) NumWorkers() int { return len(p.fbs) }

// NumFlows returns the number of loaded flows.
func (p *ParallelAllocator) NumFlows() int { return p.numFlows }

// AggregationSteps returns the number of pairwise merge rounds per iteration.
func (p *ParallelAllocator) AggregationSteps() int { return p.part.AggregationSteps() }

// SetFlows replaces the allocator's flow set. It may only be called while no
// Iterate call is in flight.
func (p *ParallelAllocator) SetFlows(flows []ParallelFlow) error {
	for _, fb := range p.fbs {
		fb.ids = fb.ids[:0]
		fb.weights = fb.weights[:0]
		fb.rates = fb.rates[:0]
		fb.upIdx = fb.upIdx[:0]
		fb.downIdx = fb.downIdx[:0]
		fb.upOff = append(fb.upOff[:0], 0)
		fb.downOff = append(fb.downOff[:0], 0)
	}
	for _, f := range flows {
		route, err := p.topo.Route(f.Src, f.Dst, int(f.ID))
		if err != nil {
			return fmt.Errorf("core: flow %d: %w", f.ID, err)
		}
		sb := p.part.BlockOfServer(f.Src)
		db := p.part.BlockOfServer(f.Dst)
		fb := p.fbs[sb*p.numBlocks+db]
		weight := f.Weight
		if weight == 0 {
			weight = 1
		}
		for _, l := range route {
			if pos := p.up[sb].posOf[l]; pos >= 0 {
				fb.upIdx = append(fb.upIdx, pos)
				continue
			}
			if pos := p.down[db].posOf[l]; pos >= 0 {
				fb.downIdx = append(fb.downIdx, pos)
				continue
			}
			return fmt.Errorf("core: flow %d: link %d is in neither its upward nor its downward LinkBlock", f.ID, l)
		}
		fb.ids = append(fb.ids, f.ID)
		// Weights are scaled by link capacity (as in the sequential
		// allocator) so prices stay O(1).
		fb.weights = append(fb.weights, weight*p.topo.Config().LinkCapacity)
		fb.rates = append(fb.rates, 0)
		fb.upOff = append(fb.upOff, int32(len(fb.upIdx)))
		fb.downOff = append(fb.downOff, int32(len(fb.downIdx)))
	}
	p.numFlows = len(flows)
	return nil
}

// start launches the persistent worker goroutines on first use.
func (p *ParallelAllocator) start() {
	if p.started {
		return
	}
	p.started = true
	p.barrier = newBarrier(len(p.fbs) + 1) // workers + coordinator
	p.inner = newBarrier(len(p.fbs))       // workers only
	for w := range p.fbs {
		p.wg.Add(1)
		go p.worker(w)
	}
}

// Close shuts down the worker pool. The allocator cannot be used afterwards.
func (p *ParallelAllocator) Close() {
	if !p.started {
		return
	}
	p.stop = true
	p.barrier.wait() // release workers into the iteration; they observe stop
	p.wg.Wait()
	p.started = false
}

// Iterate runs one parallel NED iteration (rate update, aggregation, price
// update, distribution, and optionally F-NORM) and returns after all workers
// finish.
func (p *ParallelAllocator) Iterate() {
	p.start()
	p.barrier.wait() // release workers into the iteration
	p.barrier.wait() // wait for workers to finish the iteration
}

// worker is the body of one FlowBlock worker goroutine.
func (p *ParallelAllocator) worker(idx int) {
	defer p.wg.Done()
	fb := p.fbs[idx]
	n := p.numBlocks
	for {
		p.barrier.wait() // wait for Iterate (or Close)
		if p.stop {
			return
		}

		// Phase 1: rate update on local copies (Equation 3), accumulating
		// per-link loads and Hessian diagonals locally.
		p.rateUpdatePhase(fb)
		p.inner.wait()

		// Phase 2: log2(n) pairwise aggregation rounds. Upward LinkBlocks
		// are reduced across the destination-block dimension; downward
		// LinkBlocks across the source-block dimension (Figure 3).
		for stride := 1; stride < n; stride *= 2 {
			if fb.dstBlock%(2*stride) == 0 && fb.dstBlock+stride < n {
				other := p.fbs[fb.srcBlock*n+fb.dstBlock+stride]
				addInto(fb.upLoad, other.upLoad)
				addInto(fb.upHdiag, other.upHdiag)
			}
			if fb.srcBlock%(2*stride) == 0 && fb.srcBlock+stride < n {
				other := p.fbs[(fb.srcBlock+stride)*n+fb.dstBlock]
				addInto(fb.downLoad, other.downLoad)
				addInto(fb.downHdiag, other.downHdiag)
			}
			p.inner.wait()
		}

		// Phase 3: price update (Equation 4) on the authoritative copies.
		// FlowBlock (b, 0) owns block b's upward LinkBlock; FlowBlock
		// (0, b) owns block b's downward LinkBlock.
		if fb.dstBlock == 0 {
			p.priceUpdatePhase(p.up[fb.srcBlock], fb.upLoad, fb.upHdiag)
		}
		if fb.srcBlock == 0 {
			p.priceUpdatePhase(p.down[fb.dstBlock], fb.downLoad, fb.downHdiag)
		}
		p.inner.wait()

		// Phase 4: distribute the new prices back to local copies.
		copy(fb.upPrice, p.up[fb.srcBlock].price)
		copy(fb.downPrice, p.down[fb.dstBlock].price)

		if p.cfg.Normalize {
			p.inner.wait()
			// Parallel F-NORM: each FlowBlock scales its flows by the
			// worst utilization ratio along their paths, computed from the
			// aggregated loads held by the LinkBlock owners.
			p.normalizePhase(fb)
		}

		p.barrier.wait() // iteration complete; coordinator resumes
	}
}

// rateUpdatePhase computes flow rates from the FlowBlock's local prices and
// accumulates loads and Hessian diagonals locally.
func (p *ParallelAllocator) rateUpdatePhase(fb *flowBlock) {
	for i := range fb.upLoad {
		fb.upLoad[i] = 0
		fb.upHdiag[i] = 0
	}
	for i := range fb.downLoad {
		fb.downLoad[i] = 0
		fb.downHdiag[i] = 0
	}
	for i := 0; i < fb.numFlows(); i++ {
		up := fb.upIdx[fb.upOff[i]:fb.upOff[i+1]]
		down := fb.downIdx[fb.downOff[i]:fb.downOff[i+1]]
		priceSum := 0.0
		for _, pos := range up {
			priceSum += fb.upPrice[pos]
		}
		for _, pos := range down {
			priceSum += fb.downPrice[pos]
		}
		if priceSum < minParallelPrice {
			priceSum = minParallelPrice
		}
		w := fb.weights[i]
		x := w / priceSum
		if x > p.maxRate {
			x = p.maxRate
		}
		d := -w / (priceSum * priceSum)
		fb.rates[i] = x
		for _, pos := range up {
			fb.upLoad[pos] += x
			fb.upHdiag[pos] += d
		}
		for _, pos := range down {
			fb.downLoad[pos] += x
			fb.downHdiag[pos] += d
		}
	}
}

// minParallelPrice mirrors the price floor of the sequential solver.
const minParallelPrice = 1e-12

// priceUpdatePhase applies NED's price update to one authoritative LinkBlock.
func (p *ParallelAllocator) priceUpdatePhase(lb *linkBlockState, load, hdiag []float64) {
	for i := range lb.price {
		g := load[i] - lb.cap[i]
		h := hdiag[i]
		if h == 0 {
			// Mirror the sequential solver: idle links decay toward zero.
			lb.price[i] *= 0.5
			continue
		}
		price := lb.price[i] - p.gamma*g/h
		if price < 0 {
			price = 0
		}
		lb.price[i] = price
	}
}

// normalizePhase applies F-NORM within a FlowBlock: each flow is scaled by
// the worst load/capacity ratio among the links it traverses. The aggregated
// loads live in the owner FlowBlocks (column 0 for upward, row 0 for
// downward), which this phase only reads.
func (p *ParallelAllocator) normalizePhase(fb *flowBlock) {
	upOwner := p.fbs[fb.srcBlock*p.numBlocks] // (srcBlock, 0)
	downOwner := p.fbs[fb.dstBlock]           // (0, dstBlock)
	upCap := p.up[fb.srcBlock].cap
	downCap := p.down[fb.dstBlock].cap
	for i := 0; i < fb.numFlows(); i++ {
		worst := 1.0
		for _, pos := range fb.upIdx[fb.upOff[i]:fb.upOff[i+1]] {
			if r := upOwner.upLoad[pos] / upCap[pos]; r > worst {
				worst = r
			}
		}
		for _, pos := range fb.downIdx[fb.downOff[i]:fb.downOff[i+1]] {
			if r := downOwner.downLoad[pos] / downCap[pos]; r > worst {
				worst = r
			}
		}
		if worst > 1 {
			fb.rates[i] /= worst
		}
	}
}

// Rates returns the rates computed by the most recent Iterate call, keyed by
// flow ID.
func (p *ParallelAllocator) Rates() map[FlowID]float64 {
	out := make(map[FlowID]float64, p.numFlows)
	p.ForEachRate(func(id FlowID, rate float64) { out[id] = rate })
	return out
}

// ForEachRate calls fn with the most recently computed rate of every loaded
// flow, in FlowBlock order, without allocating. It may only be called while
// no Iterate is in flight.
func (p *ParallelAllocator) ForEachRate(fn func(FlowID, float64)) {
	for _, fb := range p.fbs {
		for i, id := range fb.ids {
			fn(id, fb.rates[i])
		}
	}
}

// Prices returns the authoritative link prices keyed by LinkID.
func (p *ParallelAllocator) Prices() map[topology.LinkID]float64 {
	out := make(map[topology.LinkID]float64)
	for _, lb := range p.up {
		for i, l := range lb.links {
			out[l] = lb.price[i]
		}
	}
	for _, lb := range p.down {
		for i, l := range lb.links {
			out[l] = lb.price[i]
		}
	}
	return out
}

// addInto adds src element-wise into dst.
func addInto(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// barrier is a reusable cyclic barrier for n parties.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n parties have called wait for the current
// generation.
func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

package core

import (
	"fmt"

	"repro/internal/num"
	"repro/internal/topology"
)

// Boundary-exchange support: a sharded allocator cluster runs one Allocator
// per shard over the full fabric but only its own flows. The methods below
// are the shard-side half of the price exchange — importing remote demand
// and prices, and exporting local demand and prices — that the flowtuned
// daemon drives at iteration boundaries (see internal/server and
// internal/cluster).

// SetExternalLoads records remote flows' aggregate load and Hessian-diagonal
// contributions on the given links (typically this shard's boundary links,
// summed over all peers' latest PriceDigests). The solver adds them to its
// locally accumulated values in every subsequent price update, and the
// normalizer counts the loads toward link utilization, so boundary links are
// priced and normalized against cluster-wide demand. Passing all zeros
// restores purely local behaviour. loads and hdiag must have the same
// length as links; hdiag entries are the (negative) rate sensitivities
// Σ ∂x/∂p of the remote flows.
func (a *Allocator) SetExternalLoads(links []topology.LinkID, loads, hdiag []float64) {
	if a.problem.ExternalLoads == nil {
		a.problem.ExternalLoads = make([]float64, len(a.problem.Capacities))
		a.problem.ExternalHdiag = make([]float64, len(a.problem.Capacities))
	}
	for i, l := range links {
		a.problem.ExternalLoads[l] = loads[i]
		a.problem.ExternalHdiag[l] = hdiag[i]
	}
}

// PinPrices imports remote-owned link prices (a peer's PriceSnapshot): each
// link's price is set now — so the next rate update already sees it — and
// re-imposed after every local price update until a newer snapshot replaces
// it. Links never pinned stay under local control.
func (a *Allocator) PinPrices(links []topology.LinkID, prices []float64) {
	if a.problem.PinnedPrices == nil {
		a.problem.PinnedPrices = make([]float64, len(a.problem.Capacities))
		for i := range a.problem.PinnedPrices {
			a.problem.PinnedPrices[i] = -1
		}
	}
	for i, l := range links {
		a.problem.PinnedPrices[l] = prices[i]
		a.state.Prices[l] = prices[i]
	}
}

// BoundaryDigest fills loads and hdiag (parallel to links) with this
// allocator's own flows' contributions on the given links, as accumulated by
// the most recent Iterate — the payload of an outgoing PriceDigest. With no
// registered flows the digest is all zeros (an idle shard puts no load on
// anyone's links). It requires a solver that reports its load accumulations
// (NED, the default, does).
func (a *Allocator) BoundaryDigest(links []topology.LinkID, loads, hdiag []float64) error {
	rep, ok := a.cfg.Solver.(num.LoadReporter)
	if !ok {
		return fmt.Errorf("core: solver %s does not report link loads; boundary exchange requires NED or Gradient", a.cfg.Solver.Name())
	}
	ll, hh := rep.LastLoads()
	idle := len(a.flows) == 0
	for i, l := range links {
		if idle || int(l) >= len(ll) {
			loads[i], hdiag[i] = 0, 0
			continue
		}
		loads[i] = ll[l]
		if hh != nil {
			hdiag[i] = hh[l]
		} else {
			hdiag[i] = 0
		}
	}
	return nil
}

// LinkPrices fills prices (parallel to links) with the current price of each
// link — the payload of an outgoing PriceSnapshot for links this shard owns.
func (a *Allocator) LinkPrices(links []topology.LinkID, prices []float64) {
	for i, l := range links {
		prices[i] = a.state.Prices[l]
	}
}

// SeedPrices sets the current price of each link without pinning it: the next
// price update starts from the seeded values and evolves them locally. It is
// the warm-restart half of the snapshot protocol — a restarted (or adopting)
// daemon seeds the saved prices so its first iteration continues the dual
// ascent instead of restarting from zero, but keeps the links under local
// control.
func (a *Allocator) SeedPrices(links []topology.LinkID, prices []float64) {
	for i, l := range links {
		a.state.Prices[l] = prices[i]
	}
}

// UnpinPrices returns the given links to local control, undoing PinPrices.
// The last pinned price remains as the starting value (like SeedPrices); it
// is simply no longer re-imposed after local price updates. An allocator that
// adopts a dead peer's links calls this so the adopted boundary is priced by
// its own solver from then on.
func (a *Allocator) UnpinPrices(links []topology.LinkID) {
	if a.problem.PinnedPrices == nil {
		return
	}
	for _, l := range links {
		a.problem.PinnedPrices[l] = -1
	}
}

package core

import (
	"fmt"
	"math"

	"repro/internal/norm"
	"repro/internal/num"
	"repro/internal/topology"
)

// Control-message payload sizes from §6.2: notifications of flowlet start,
// flowlet end, and rate updates are encoded in 16, 4 and 6 bytes plus
// standard TCP/IP overheads.
const (
	// FlowletStartBytes is the payload size of a flowlet-start notification.
	FlowletStartBytes = 16
	// FlowletEndBytes is the payload size of a flowlet-end notification.
	FlowletEndBytes = 4
	// RateUpdateBytes is the payload size of one rate update.
	RateUpdateBytes = 6
	// perMessageOverheadBytes is the amortized per-notification share of
	// TCP/IP/Ethernet framing, assuming notifications are batched into
	// MTU-sized packets by the endpoints and the allocator.
	perMessageOverheadBytes = 4
)

// FlowID identifies a flowlet registered with the allocator.
type FlowID int64

// Config configures an Allocator.
type Config struct {
	// Topology is the fabric the allocator schedules. Required.
	Topology *topology.Topology
	// Gamma is NED's step-size parameter γ (default 0.4, the value used in
	// the paper's simulations).
	Gamma float64
	// UpdateThreshold is the relative rate-change threshold above which
	// endpoints are notified (default 0.01). To keep links from being
	// over-utilized between notifications, the allocator reserves the same
	// fraction of link capacity as headroom (§6.4).
	UpdateThreshold float64
	// Normalizer selects the normalization scheme. Nil means F-NORM.
	Normalizer norm.Normalizer
	// Solver selects the optimization algorithm. Nil means NED with Gamma.
	Solver num.Solver
	// IterationInterval is the wall-clock interval between allocator
	// iterations in seconds (default 10 µs, §6.2). It is used to convert
	// per-iteration update counts into traffic rates.
	IterationInterval float64
}

// withDefaults fills in unset fields.
func (c Config) withDefaults() (Config, error) {
	if c.Topology == nil {
		return c, fmt.Errorf("core: Config.Topology is required")
	}
	if c.Gamma == 0 {
		c.Gamma = 0.4
	}
	if c.UpdateThreshold == 0 {
		c.UpdateThreshold = 0.01
	}
	if c.UpdateThreshold < 0 || c.UpdateThreshold >= 1 {
		return c, fmt.Errorf("core: UpdateThreshold must be in [0,1), got %g", c.UpdateThreshold)
	}
	if c.Normalizer == nil {
		c.Normalizer = norm.NewFNorm()
	}
	if c.Solver == nil {
		c.Solver = &num.NED{Gamma: c.Gamma}
	}
	if c.IterationInterval == 0 {
		c.IterationInterval = 10e-6
	}
	return c, nil
}

// flowState is the allocator's bookkeeping for one registered flowlet.
type flowState struct {
	id       FlowID
	src, dst int
	weight   float64
	// size is the endpoint's flowlet-size hint in bytes (0 = unknown).
	// Solvers ignore it today; it is kept for size-aware utilities.
	size int64
	// lastNotified is the rate most recently sent to the endpoint, or 0 if
	// the endpoint has never been notified.
	lastNotified float64
}

// RateUpdate is one rate notification for an endpoint.
type RateUpdate struct {
	// Flow identifies the flowlet.
	Flow FlowID
	// Src is the sending server's index (the notification's recipient).
	Src int
	// Rate is the newly allocated rate in bits per second.
	Rate float64
}

// TrafficStats accumulates control-plane traffic volume (§6.4).
type TrafficStats struct {
	// ToAllocatorBytes counts bytes sent from servers to the allocator
	// (flowlet start and end notifications).
	ToAllocatorBytes int64
	// FromAllocatorBytes counts bytes sent from the allocator to servers
	// (rate updates).
	FromAllocatorBytes int64
	// StartNotifications and EndNotifications count flowlet events.
	StartNotifications int64
	EndNotifications   int64
	// RateUpdatesSent counts rate-update messages actually sent (i.e.
	// changes exceeding the notification threshold).
	RateUpdatesSent int64
	// RateUpdatesSuppressed counts rate changes below the threshold that
	// did not generate a notification.
	RateUpdatesSuppressed int64
	// Iterations counts optimizer iterations executed.
	Iterations int64
}

// Allocator is Flowtune's centralized rate allocator. It is not safe for
// concurrent use; the multicore optimizer in ParallelAllocator parallelizes a
// single logical iteration internally.
type Allocator struct {
	cfg  Config
	topo *topology.Topology
	// routes memoizes path computation so repeated flowlet starts between
	// the same endpoints (with the same ECMP hash class) never re-route.
	routes *topology.RouteCache

	problem   num.Problem
	state     *num.State
	flows     []flowState
	indexByID map[FlowID]int

	// effectiveCapacities are link capacities scaled down by the update
	// threshold so links are not over-utilized between notifications.
	effectiveCapacities []float64

	normalized []float64
	updates    []RateUpdate // reused across Iterate calls
	stats      TrafficStats

	// failed models allocator failure for fault-tolerance tests: a failed
	// allocator stops producing updates until Recover is called.
	failed bool
}

// NewAllocator creates an allocator for the given topology.
func NewAllocator(cfg Config) (*Allocator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	topo := cfg.Topology
	caps := topo.Capacities()
	eff := make([]float64, len(caps))
	for i, c := range caps {
		eff[i] = c * (1 - cfg.UpdateThreshold)
	}
	a := &Allocator{
		cfg:                 cfg,
		topo:                topo,
		routes:              topology.NewRouteCache(topo),
		indexByID:           make(map[FlowID]int),
		effectiveCapacities: eff,
	}
	a.problem.Capacities = eff
	// An endpoint cannot send faster than its NIC; capping per-flow rates
	// here keeps transient over-allocations physical.
	a.problem.MaxFlowRate = topo.Config().LinkCapacity
	a.state = num.NewState(&a.problem)
	return a, nil
}

// Config returns the allocator's effective configuration.
func (a *Allocator) Config() Config { return a.cfg }

// NumFlows returns the number of currently registered flowlets.
func (a *Allocator) NumFlows() int { return len(a.flows) }

// Stats returns a snapshot of accumulated control-traffic statistics.
func (a *Allocator) Stats() TrafficStats { return a.stats }

// ResetStats zeroes the traffic statistics (used between experiment warmup
// and measurement phases).
func (a *Allocator) ResetStats() { a.stats = TrafficStats{} }

// FlowletStart registers a new flowlet from server src to server dst with the
// given weight (1 for plain proportional fairness). It corresponds to a
// flowlet-start notification arriving at the allocator.
func (a *Allocator) FlowletStart(id FlowID, src, dst int, weight float64) error {
	return a.FlowletStartSized(id, src, dst, weight, 0)
}

// FlowletStartSized is FlowletStart carrying the endpoint's flowlet-size
// hint in bytes (0 = unknown). The hint is recorded in the flow metadata and
// surfaced by LiveFlows; it does not affect allocation.
func (a *Allocator) FlowletStartSized(id FlowID, src, dst int, weight float64, size int64) error {
	if _, ok := a.indexByID[id]; ok {
		return fmt.Errorf("core: flowlet %d already registered", id)
	}
	if weight <= 0 {
		weight = 1
	}
	// Path selection mirrors ECMP: hash the flow ID over the spines so the
	// allocator and the network agree on paths (§7).
	route, err := a.routes.Route(src, dst, int(id))
	if err != nil {
		return fmt.Errorf("core: flowlet %d: %w", id, err)
	}
	links := make([]int32, len(route))
	for i, l := range route {
		links[i] = int32(l)
	}
	idx := len(a.flows)
	a.flows = append(a.flows, flowState{id: id, src: src, dst: dst, weight: weight, size: size})
	a.indexByID[id] = idx
	// Flow weights are scaled by the link capacity so optimal prices are
	// O(1), the same scale they are initialized to. Proportional fairness
	// is unaffected by a uniform scaling of weights. AppendFlow keeps the
	// compiled CSR index in sync incrementally.
	a.problem.AppendFlow(num.Flow{
		Route: links,
		Util:  num.LogUtility{W: weight * a.topo.Config().LinkCapacity},
	})
	a.state.Resize(len(a.problem.Flows))
	a.stats.StartNotifications++
	a.stats.ToAllocatorBytes += FlowletStartBytes + perMessageOverheadBytes
	return nil
}

// FlowletEnd removes a flowlet. It corresponds to a flowlet-end notification.
func (a *Allocator) FlowletEnd(id FlowID) error {
	idx, ok := a.indexByID[id]
	if !ok {
		return fmt.Errorf("core: flowlet %d is not registered", id)
	}
	last := len(a.flows) - 1
	if idx != last {
		a.flows[idx] = a.flows[last]
		a.state.Rates[idx] = a.state.Rates[last]
		a.indexByID[a.flows[idx].id] = idx
	}
	a.flows = a.flows[:last]
	// RemoveFlowSwap applies the same swap-delete to the problem and its
	// compiled CSR index.
	a.problem.RemoveFlowSwap(idx)
	a.state.Resize(last)
	delete(a.indexByID, id)
	a.stats.EndNotifications++
	a.stats.ToAllocatorBytes += FlowletEndBytes + perMessageOverheadBytes
	return nil
}

// HasFlow reports whether a flowlet is currently registered.
func (a *Allocator) HasFlow(id FlowID) bool {
	_, ok := a.indexByID[id]
	return ok
}

// LiveFlows returns the registered flowlets in the allocator's internal
// order — the canonical order rates are reported in. Replaying the result
// through FlowletStart on a fresh allocator with the same configuration
// reproduces this allocator's flow and CSR layout exactly, which is what
// flow-state snapshots and shard takeover rely on (see internal/server).
// The record type is shared with ParallelAllocator.LiveFlows.
func (a *Allocator) LiveFlows() []ParallelFlow {
	out := make([]ParallelFlow, len(a.flows))
	for i, f := range a.flows {
		out[i] = ParallelFlow{ID: f.id, Src: f.src, Dst: f.dst, Weight: f.weight, SizeHint: f.size}
	}
	return out
}

// SetLinkCapacity replaces one link's raw capacity with immediate effect:
// the effective (headroom-scaled) capacity is updated in place and the next
// Iterate re-prices the link against it. Nothing is rebuilt — the compiled
// CSR, registered flows, prices and rates all survive — so a capacity change
// mid-run costs exactly one ordinary iteration. Capacity must be positive
// and finite; model a dead link as a tiny fraction of its former capacity.
func (a *Allocator) SetLinkCapacity(l topology.LinkID, capacity float64) error {
	if l < 0 || int(l) >= a.topo.NumLinks() {
		return fmt.Errorf("core: SetLinkCapacity link %d out of range (%d links)", l, a.topo.NumLinks())
	}
	// problem.Capacities aliases effectiveCapacities, so the validated write
	// below is visible to the solver immediately.
	return a.problem.SetCapacity(int(l), capacity*(1-a.cfg.UpdateThreshold))
}

// Fail simulates an allocator failure (§2, fault tolerance): the allocator
// stops iterating and produces no updates until Recover is called. Endpoints
// keep their previously allocated rates and fall back to their own congestion
// control.
func (a *Allocator) Fail() { a.failed = true }

// Recover restores a failed allocator. Previously learned prices are kept, so
// allocations resume close to where they left off.
func (a *Allocator) Recover() { a.failed = false }

// Failed reports whether the allocator is currently failed.
func (a *Allocator) Failed() bool { return a.failed }

// Iterate runs one allocator iteration: a NED step over the registered flows,
// normalization, and threshold-based rate-update generation. It returns the
// rate updates that would be sent to endpoints this iteration. The returned
// slice is reused across calls and is only valid until the next call.
func (a *Allocator) Iterate() []RateUpdate {
	if a.failed || len(a.flows) == 0 {
		return nil
	}
	a.stats.Iterations++
	a.cfg.Solver.Step(&a.problem, a.state)
	a.normalized = a.cfg.Normalizer.Normalize(&a.problem, a.state.Rates, a.normalized)

	updates := a.updates[:0]
	thr := a.cfg.UpdateThreshold
	for i := range a.flows {
		rate := a.normalized[i]
		f := &a.flows[i]
		if SignificantRateChange(f.lastNotified, rate, thr) {
			f.lastNotified = rate
			updates = append(updates, RateUpdate{Flow: f.id, Src: f.src, Rate: rate})
			a.stats.RateUpdatesSent++
			a.stats.FromAllocatorBytes += RateUpdateBytes + perMessageOverheadBytes
		} else {
			a.stats.RateUpdatesSuppressed++
		}
	}
	a.updates = updates
	return updates
}

// SignificantRateChange reports whether a rate change from old to new
// exceeds the relative notification threshold. It is the single definition
// of the update-suppression rule (§6.4), shared by this allocator and the
// daemon's engines so they can never drift apart.
func SignificantRateChange(old, new, threshold float64) bool {
	if old == 0 {
		return new != 0
	}
	return math.Abs(new-old) > threshold*old
}

// Rate returns the current normalized rate of a flowlet (the value most
// recently computed by Iterate), or 0 if the flowlet is unknown or no
// iteration has run since it was registered.
func (a *Allocator) Rate(id FlowID) float64 {
	idx, ok := a.indexByID[id]
	if !ok || idx >= len(a.normalized) {
		return 0
	}
	return a.normalized[idx]
}

// Rates returns the normalized rates of all registered flowlets keyed by
// flowlet ID.
func (a *Allocator) Rates() map[FlowID]float64 {
	out := make(map[FlowID]float64, len(a.flows))
	for i, f := range a.flows {
		if i < len(a.normalized) {
			out[f.id] = a.normalized[i]
		}
	}
	return out
}

// RawRates returns the optimizer's un-normalized rates keyed by flowlet ID
// (used by the normalization experiments).
func (a *Allocator) RawRates() map[FlowID]float64 {
	out := make(map[FlowID]float64, len(a.flows))
	for i, f := range a.flows {
		if i < len(a.state.Rates) {
			out[f.id] = a.state.Rates[i]
		}
	}
	return out
}

// Problem exposes the allocator's current NUM problem (for experiments that
// need reference optimal allocations). The returned problem aliases internal
// state and must not be modified.
func (a *Allocator) Problem() *num.Problem { return &a.problem }

// State exposes the allocator's solver state (prices and raw rates). The
// returned state aliases internal state and must not be modified.
func (a *Allocator) State() *num.State { return a.state }

// OverAllocation returns the total amount by which the optimizer's raw
// (pre-normalization) rates exceed link capacities, in bits per second.
func (a *Allocator) OverAllocation() float64 {
	if len(a.flows) == 0 {
		return 0
	}
	return num.OverAllocation(&a.problem, a.state.Rates)
}

// UpdateTrafficFractions returns control traffic to and from the allocator as
// fractions of total network capacity, given the wall-clock duration the
// accumulated stats cover. Total network capacity follows the paper's
// convention: the sum of all server link capacities.
func (a *Allocator) UpdateTrafficFractions(duration float64) (toAllocator, fromAllocator float64) {
	if duration <= 0 {
		return 0, 0
	}
	capacityBits := float64(a.topo.NumServers()) * a.topo.Config().LinkCapacity
	toAllocator = float64(a.stats.ToAllocatorBytes*8) / duration / capacityBits
	fromAllocator = float64(a.stats.FromAllocatorBytes*8) / duration / capacityBits
	return toAllocator, fromAllocator
}

package core

import (
	"math"
	"testing"

	"repro/internal/num"
)

// TestParallelSetLinkCapacityMatchesSequential checks the LinkBlock in-place
// capacity mutation against the sequential NED reference with the same
// mid-run mutation: the partitioned solver must track the re-priced problem
// exactly, without any rebuild.
func TestParallelSetLinkCapacityMatchesSequential(t *testing.T) {
	topo := parallelTestTopo(t, 8)
	flows := randomParallelFlows(topo.NumServers(), 300, 3)
	link, ok := topo.UplinkID(0, 1)
	if !ok {
		t.Fatal("no uplink rack 0 → spine 1")
	}
	newCap := topo.Link(link).Capacity / 4
	const pre, post = 15, 15

	// Sequential reference with the same mutation at the same iteration.
	prob := num.Problem{Capacities: topo.Capacities(), MaxFlowRate: topo.Config().LinkCapacity}
	for _, f := range flows {
		route, err := topo.Route(f.Src, f.Dst, int(f.ID))
		if err != nil {
			t.Fatal(err)
		}
		links := make([]int32, len(route))
		for i, l := range route {
			links[i] = int32(l)
		}
		prob.Flows = append(prob.Flows, num.Flow{
			Route: links,
			Util:  num.LogUtility{W: topo.Config().LinkCapacity},
		})
	}
	st := num.NewState(&prob)
	ned := &num.NED{Gamma: 1}
	for i := 0; i < pre; i++ {
		ned.Step(&prob, st)
	}
	if err := prob.SetCapacity(int(link), newCap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < post; i++ {
		ned.Step(&prob, st)
	}
	want := make(map[FlowID]float64, len(flows))
	for i, f := range flows {
		want[f.ID] = st.Rates[i]
	}

	for _, blocks := range []int{1, 2} {
		pa, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: blocks, Gamma: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := pa.SetFlows(flows); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < pre; i++ {
			pa.Iterate()
		}
		if err := pa.SetLinkCapacity(link, newCap); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < post; i++ {
			pa.Iterate()
		}
		got := pa.Rates()
		pa.Close()
		for id, w := range want {
			if w == 0 {
				continue
			}
			if g := got[id]; math.Abs(g-w)/w > 1e-9 {
				t.Fatalf("blocks=%d: flow %d rate %.9g differs from sequential %.9g after capacity cut", blocks, id, g, w)
			}
		}
	}
}

func TestParallelSetLinkCapacityRejectsBadInput(t *testing.T) {
	topo := parallelTestTopo(t, 8)
	pa, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Close()
	if err := pa.SetLinkCapacity(-1, 1e9); err == nil {
		t.Error("negative link accepted")
	}
	if err := pa.SetLinkCapacity(0, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if err := pa.SetLinkCapacity(0, math.NaN()); err == nil {
		t.Error("NaN capacity accepted")
	}
}

// TestAllocatorSetLinkCapacity checks the sequential allocator's in-place
// update end to end: after cutting a ToR uplink the flows crossing it are
// re-priced down below the new capacity.
func TestAllocatorSetLinkCapacity(t *testing.T) {
	topo := parallelTestTopo(t, 8)
	a, err := NewAllocator(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetLinkCapacity(-1, 1e9); err == nil {
		t.Error("negative link accepted")
	}
	if err := a.SetLinkCapacity(0, -5); err == nil {
		t.Error("negative capacity accepted")
	}

	// Cross-rack flows from every rack-0 server, all spine choices.
	n := topo.Config().ServersPerRack
	for i := 0; i < 4*n; i++ {
		if err := a.FlowletStart(FlowID(i), i%n, n+i%(7*n), 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		a.Iterate()
	}
	link, ok := topo.UplinkID(0, 0)
	if !ok {
		t.Fatal("no uplink rack 0 → spine 0")
	}
	newCap := topo.Link(link).Capacity / 10
	if err := a.SetLinkCapacity(link, newCap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		a.Iterate()
	}
	var load float64
	for id, rate := range a.Rates() {
		route, err := topo.Route(int(id)%n, n+int(id)%(7*n), int(id))
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range route {
			if l == link {
				load += rate
			}
		}
	}
	if load == 0 {
		t.Fatal("no flows cross the cut link; test topology assumption broken")
	}
	if load > newCap*1.01 {
		t.Fatalf("link load %.3g exceeds cut capacity %.3g", load, newCap)
	}
}

// Package core implements Flowtune's centralized flowlet allocator (§2 of
// the paper): it receives flowlet start and end notifications from endpoints,
// runs the NED optimizer over the current flow set, normalizes the resulting
// rates with F-NORM (or U-NORM), and produces rate updates for endpoints,
// notifying them only when a flow's rate changes by more than a configurable
// threshold (§6.4). The package also contains the FlowBlock/LinkBlock
// multicore implementation of the optimizer (§5).
//
// The sequential Allocator is the engine behind the transport simulator's
// Flowtune endpoints and the scenario runner in internal/experiments; the
// ParallelAllocator reproduces the paper's multicore scaling study. Both
// maintain their flow sets incrementally across churn — FlowletStart and
// FlowletEnd are O(route length) operations on CSR arenas (per FlowBlock in
// the parallel case), with swap-delete holes compacted amortizedly — so the
// per-iteration cost is independent of churn history. The parallel
// allocator's phases are separated by a sense-reversing spin-then-park
// barrier, its accumulators are cache-line padded, and its FlowBlocks are
// laid out in Morton order so early merge-tree rounds touch neighbours; see
// ARCHITECTURE.md, "The parallel iteration path".
package core

package core

import (
	"testing"

	"repro/internal/topology"
)

// blockLocalFlows draws flows that never leave their rack: with shards (and
// the parallel allocator's blocks) aligned on rack boundaries, every flow
// lands in a diagonal FlowBlock, so each link's load is accumulated by exactly
// one block and the merge tree adds exact zeros — the regime in which the
// parallel engine must match the sequential one bit for bit.
func blockLocalFlows(topo *topology.Topology, count int) []ParallelFlow {
	perRack := topo.Config().ServersPerRack
	flows := make([]ParallelFlow, 0, count)
	for i := 0; i < count; i++ {
		rack := i % topo.Config().Racks
		src := rack*perRack + i%perRack
		dst := rack*perRack + (i+1+i/7)%perRack
		if dst == src {
			dst = rack*perRack + (src+1)%perRack
		}
		flows = append(flows, ParallelFlow{
			ID: FlowID(i + 1), Src: src, Dst: dst, Weight: 1 + float64(i%3),
		})
	}
	return flows
}

// downLinks returns a few downward fabric links spread across the topology.
func downLinks(t *testing.T, topo *topology.Topology, n int) []topology.LinkID {
	t.Helper()
	var out []topology.LinkID
	for l := 0; l < topo.NumLinks() && len(out) < n; l++ {
		if !topo.Link(topology.LinkID(l)).Up {
			out = append(out, topology.LinkID(l))
		}
	}
	if len(out) < n {
		t.Fatalf("only %d downward links in fabric, want %d", len(out), n)
	}
	return out
}

// TestParallelBoundaryBitIdenticalToSequential is the tentpole equivalence
// check: on block-local traffic, a ParallelAllocator with external loads and
// pinned prices applied through the boundary API must produce exactly the
// sequential Allocator's rates, digests, and prices — the property that keeps
// a multicore shard's wire bytes bit-identical to a sequential shard's.
func TestParallelBoundaryBitIdenticalToSequential(t *testing.T) {
	topo := parallelTestTopo(t, 8)
	flows := blockLocalFlows(topo, 96)

	allLinks := make([]topology.LinkID, topo.NumLinks())
	for i := range allLinks {
		allLinks[i] = topology.LinkID(i)
	}
	// Remote demand on two downward links, imported prices on two others.
	ext := downLinks(t, topo, 4)
	extLinks, pinLinks := ext[:2], ext[2:]
	extLoads := []float64{3e9, 5e9}
	extHdiag := []float64{-1e9, -2.5e9}
	pinVals := []float64{7.25, 3.5}

	for _, blocks := range []int{2, 4} {
		// Gamma and Headroom mirror the sequential defaults (0.4 and the
		// 0.01 update-threshold headroom) — the same pairing the daemon's
		// parallelEngine uses — so the two engines solve the identical
		// problem.
		pa, err := NewParallelAllocator(ParallelConfig{
			Topology: topo, Blocks: blocks, Gamma: 0.4, Headroom: 0.01, Normalize: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := pa.SetFlows(flows); err != nil {
			t.Fatal(err)
		}

		pa.SetExternalLoads(extLinks, extLoads, extHdiag)
		pa.PinPrices(pinLinks, pinVals)

		// Fresh sequential reference per block count: prices persist across
		// Iterates, so the comparison needs a cold start on both sides.
		seqRef, err := NewAllocator(Config{Topology: topo})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range flows {
			if err := seqRef.FlowletStart(f.ID, f.Src, f.Dst, f.Weight); err != nil {
				t.Fatal(err)
			}
		}
		seqRef.SetExternalLoads(extLinks, extLoads, extHdiag)
		seqRef.PinPrices(pinLinks, pinVals)

		for i := 0; i < 40; i++ {
			seqRef.Iterate()
			pa.Iterate()
		}

		want, got := seqRef.Rates(), pa.Rates()
		if len(got) != len(want) {
			t.Fatalf("blocks=%d: %d rates, want %d", blocks, len(got), len(want))
		}
		for id, w := range want {
			if g := got[id]; g != w {
				t.Fatalf("blocks=%d flow %d: parallel rate %v != sequential %v", blocks, id, g, w)
			}
		}

		// The exported digest and prices — the wire payloads — agree bit for
		// bit as well.
		wantLoads := make([]float64, len(allLinks))
		wantHd := make([]float64, len(allLinks))
		gotLoads := make([]float64, len(allLinks))
		gotHd := make([]float64, len(allLinks))
		if err := seqRef.BoundaryDigest(allLinks, wantLoads, wantHd); err != nil {
			t.Fatal(err)
		}
		if err := pa.BoundaryDigest(allLinks, gotLoads, gotHd); err != nil {
			t.Fatal(err)
		}
		for i := range allLinks {
			if gotLoads[i] != wantLoads[i] || gotHd[i] != wantHd[i] {
				t.Fatalf("blocks=%d link %d: digest %v/%v != sequential %v/%v",
					blocks, i, gotLoads[i], gotHd[i], wantLoads[i], wantHd[i])
			}
		}
		wantPrices := make([]float64, len(allLinks))
		gotPrices := make([]float64, len(allLinks))
		seqRef.LinkPrices(allLinks, wantPrices)
		pa.LinkPrices(allLinks, gotPrices)
		for i := range allLinks {
			if gotPrices[i] != wantPrices[i] {
				t.Fatalf("blocks=%d link %d: price %v != sequential %v", blocks, i, gotPrices[i], wantPrices[i])
			}
		}
		pa.Close()
	}
}

// TestParallelExternalLoadsThrottle mirrors the sequential throttling test:
// imported remote demand on a path link must lower the local allocation, and
// clearing it must restore headroom.
func TestParallelExternalLoadsThrottle(t *testing.T) {
	topo := parallelTestTopo(t, 8)
	newPA := func() *ParallelAllocator {
		pa, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(pa.Close)
		if err := pa.FlowletStart(1, 0, 3, 1); err != nil {
			t.Fatal(err)
		}
		return pa
	}
	alone, shared := newPA(), newPA()
	route, err := topo.Route(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ext := []topology.LinkID{route[len(route)-1]}
	w := topo.Config().LinkCapacity
	shared.SetExternalLoads(ext, []float64{10e9}, []float64{-w / 4})
	for i := 0; i < 200; i++ {
		alone.Iterate()
		shared.Iterate()
	}
	ra, rs := alone.Rates()[1], shared.Rates()[1]
	if rs >= ra/1.5 {
		t.Fatalf("external congestion barely throttled the flow: alone %g, shared %g", ra, rs)
	}
	shared.SetExternalLoads(ext, []float64{0}, []float64{0})
	for i := 0; i < 300; i++ {
		shared.Iterate()
	}
	if got := shared.Rates()[1]; got < 0.9*ra {
		t.Fatalf("after clearing external load rate = %g, want ≈ %g", got, ra)
	}
}

// TestParallelPinUnpinLifecycle checks a pinned price takes effect on the
// very next iteration (the FlowBlock-local copies are written through),
// survives local updates, and evolves again after UnpinPrices.
func TestParallelPinUnpinLifecycle(t *testing.T) {
	topo := parallelTestTopo(t, 8)
	pa, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Close()
	if err := pa.FlowletStart(1, 0, 3, 1); err != nil {
		t.Fatal(err)
	}
	route, err := topo.Route(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	down := []topology.LinkID{route[len(route)-1]}
	prices := make([]float64, 1)

	pa.PinPrices(down, []float64{40})
	pa.Iterate()
	pa.LinkPrices(down, prices)
	if prices[0] != 40 {
		t.Fatalf("pinned price after Iterate = %g, want 40", prices[0])
	}
	// The pin reached the rate update immediately: a path price ≥ 40 caps
	// the rate near w/40.
	w := topo.Config().LinkCapacity
	if rate := pa.Rates()[1]; rate > w/40 {
		t.Fatalf("rate %g exceeds w/pinned-price %g", rate, w/40)
	}
	// Unpinned, one lone flow cannot justify a price of 40; local updates
	// pull it down.
	pa.UnpinPrices(down)
	for i := 0; i < 50; i++ {
		pa.Iterate()
	}
	pa.LinkPrices(down, prices)
	if prices[0] >= 40 {
		t.Fatalf("price after unpinning = %g, want < 40 (local control)", prices[0])
	}
	// UnpinPrices before any PinPrices is a no-op, not a panic.
	fresh, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	fresh.UnpinPrices(down)
}

// TestParallelSeedPricesWarmRestart mirrors the sequential warm-restart
// check: replaying LiveFlows and seeding LinkPrices onto a fresh parallel
// allocator reproduces bit-identical rates from the first iteration on.
func TestParallelSeedPricesWarmRestart(t *testing.T) {
	topo := parallelTestTopo(t, 8)
	orig, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 4, Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	if err := orig.SetFlows(randomParallelFlows(topo.NumServers(), 64, 5)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 37; i++ {
		orig.Iterate()
	}
	live := orig.LiveFlows()
	links := make([]topology.LinkID, topo.NumLinks())
	for i := range links {
		links[i] = topology.LinkID(i)
	}
	prices := make([]float64, len(links))
	orig.LinkPrices(links, prices)

	warm, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 4, Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if err := warm.SetFlows(live); err != nil {
		t.Fatal(err)
	}
	warm.SeedPrices(links, prices)
	for i := 0; i < 20; i++ {
		orig.Iterate()
		warm.Iterate()
		ro, rw := orig.Rates(), warm.Rates()
		for id, r := range ro {
			if rw[id] != r {
				t.Fatalf("iter %d flow %d: warm rate %v != original %v", i, id, rw[id], r)
			}
		}
	}
}

// TestParallelBoundaryUncoveredLinks pins the behaviour on links outside
// every LinkBlock (a WithAllocator topology's allocator uplinks): digests
// read zero, prices read the initial 1, and imports are ignored without
// panicking.
func TestParallelBoundaryUncoveredLinks(t *testing.T) {
	cfg := topology.Config{
		Racks: 4, ServersPerRack: 4, Spines: 2, LinkCapacity: 10e9,
		WithAllocator: true,
	}
	topo, err := topology.NewTwoTier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Close()
	var uncovered []topology.LinkID
	for l := 0; l < topo.NumLinks(); l++ {
		if pa.ownerLB[l] == nil {
			uncovered = append(uncovered, topology.LinkID(l))
		}
	}
	if len(uncovered) == 0 {
		t.Fatal("WithAllocator topology has no uncovered links; test premise broken")
	}
	if err := pa.FlowletStart(1, 0, 5, 1); err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, len(uncovered))
	pa.SetExternalLoads(uncovered, vals, vals)
	pa.PinPrices(uncovered, vals)
	pa.SeedPrices(uncovered, vals)
	pa.UnpinPrices(uncovered)
	pa.Iterate()
	loads := make([]float64, len(uncovered))
	hd := make([]float64, len(uncovered))
	if err := pa.BoundaryDigest(uncovered, loads, hd); err != nil {
		t.Fatal(err)
	}
	prices := make([]float64, len(uncovered))
	pa.LinkPrices(uncovered, prices)
	for i := range uncovered {
		if loads[i] != 0 || hd[i] != 0 {
			t.Fatalf("uncovered link %d digest %g/%g, want zeros", uncovered[i], loads[i], hd[i])
		}
		if prices[i] != 1 {
			t.Fatalf("uncovered link %d price %g, want 1", uncovered[i], prices[i])
		}
	}
}

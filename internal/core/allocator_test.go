package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/norm"
	"repro/internal/num"
	"repro/internal/topology"
)

func simTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.NewTwoTier(topology.DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func newTestAllocator(t *testing.T, cfg Config) *Allocator {
	t.Helper()
	if cfg.Topology == nil {
		cfg.Topology = simTopo(t)
	}
	a, err := NewAllocator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAllocatorValidation(t *testing.T) {
	if _, err := NewAllocator(Config{}); err == nil {
		t.Error("allocator without topology accepted")
	}
	if _, err := NewAllocator(Config{Topology: simTopo(t), UpdateThreshold: 1.5}); err == nil {
		t.Error("threshold >= 1 accepted")
	}
	a := newTestAllocator(t, Config{})
	cfg := a.Config()
	if cfg.Gamma != 0.4 || cfg.UpdateThreshold != 0.01 || cfg.IterationInterval != 10e-6 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if cfg.Normalizer == nil || cfg.Normalizer.Name() != "F-NORM" {
		t.Error("default normalizer should be F-NORM")
	}
}

func TestFlowletLifecycle(t *testing.T) {
	a := newTestAllocator(t, Config{})
	if err := a.FlowletStart(1, 0, 17, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.FlowletStart(1, 0, 17, 1); err == nil {
		t.Error("duplicate registration accepted")
	}
	if !a.HasFlow(1) || a.NumFlows() != 1 {
		t.Error("flow not registered")
	}
	if err := a.FlowletEnd(1); err != nil {
		t.Fatal(err)
	}
	if a.HasFlow(1) || a.NumFlows() != 0 {
		t.Error("flow not removed")
	}
	if err := a.FlowletEnd(1); err == nil {
		t.Error("removing an unknown flow should fail")
	}
	if err := a.FlowletStart(2, 0, 0, 1); err == nil {
		t.Error("flow with src == dst accepted")
	}
}

func TestFairShareSingleBottleneck(t *testing.T) {
	a := newTestAllocator(t, Config{})
	// Three flows into server 17's downlink.
	for id, src := range []int{0, 40, 100} {
		if err := a.FlowletStart(FlowID(id+1), src, 17, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		a.Iterate()
	}
	link := a.Config().Topology.Config().LinkCapacity
	want := link * (1 - a.Config().UpdateThreshold) / 3
	for id := FlowID(1); id <= 3; id++ {
		if got := a.Rate(id); math.Abs(got-want)/want > 0.02 {
			t.Errorf("flow %d rate %.3g, want %.3g", id, got, want)
		}
	}
}

func TestWeightedAllocation(t *testing.T) {
	a := newTestAllocator(t, Config{})
	if err := a.FlowletStart(1, 0, 17, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.FlowletStart(2, 40, 17, 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		a.Iterate()
	}
	r1, r2 := a.Rate(1), a.Rate(2)
	if math.Abs(r2/r1-3) > 0.1 {
		t.Errorf("weighted shares wrong: r1=%.3g r2=%.3g (want 1:3)", r1, r2)
	}
}

func TestRatesNeverExceedLinkCapacity(t *testing.T) {
	a := newTestAllocator(t, Config{})
	// Heavy incast into one server plus cross traffic.
	id := FlowID(1)
	for src := 1; src <= 20; src++ {
		if err := a.FlowletStart(id, src, 0, 1); err != nil {
			t.Fatal(err)
		}
		id++
	}
	for i := 0; i < 100; i++ {
		a.Iterate()
		// Normalized rates must always respect capacities.
		loads := num.LinkLoads(a.Problem(), normalizedRates(a), nil)
		for l, load := range loads {
			capacity := a.Config().Topology.Link(topology.LinkID(l)).Capacity
			if load > capacity*1.0001 {
				t.Fatalf("iteration %d: link %d over capacity: %.3g > %.3g", i, l, load, capacity)
			}
		}
	}
}

// normalizedRates extracts the allocator's normalized rates in problem order.
func normalizedRates(a *Allocator) []float64 {
	rates := make([]float64, a.NumFlows())
	m := a.Rates()
	i := 0
	for _, f := range a.flows {
		rates[i] = m[f.id]
		i++
	}
	return rates
}

func TestReconvergenceAfterChurn(t *testing.T) {
	a := newTestAllocator(t, Config{})
	for id := 1; id <= 4; id++ {
		if err := a.FlowletStart(FlowID(id), id*10, 17, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		a.Iterate()
	}
	if err := a.FlowletEnd(2); err != nil {
		t.Fatal(err)
	}
	// Within a handful of iterations the remaining flows should share the
	// released bandwidth (the paper: convergence within ~20 µs, i.e. a few
	// 10 µs iterations).
	for i := 0; i < 20; i++ {
		a.Iterate()
	}
	link := a.Config().Topology.Config().LinkCapacity
	want := link * (1 - a.Config().UpdateThreshold) / 3
	for _, id := range []FlowID{1, 3, 4} {
		if got := a.Rate(id); math.Abs(got-want)/want > 0.05 {
			t.Errorf("flow %d rate %.3g after churn, want %.3g", id, got, want)
		}
	}
}

func TestUpdateThresholdSuppressesNotifications(t *testing.T) {
	a := newTestAllocator(t, Config{UpdateThreshold: 0.01})
	if err := a.FlowletStart(1, 0, 17, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.FlowletStart(2, 40, 17, 1); err != nil {
		t.Fatal(err)
	}
	var updates int
	for i := 0; i < 100; i++ {
		updates += len(a.Iterate())
	}
	stats := a.Stats()
	if stats.RateUpdatesSent != int64(updates) {
		t.Errorf("stats (%d) disagree with returned updates (%d)", stats.RateUpdatesSent, updates)
	}
	// In steady state the rates stop changing, so almost all iterations
	// suppress their updates.
	if stats.RateUpdatesSuppressed < 150 {
		t.Errorf("expected most updates to be suppressed in steady state, got %d suppressed / %d sent",
			stats.RateUpdatesSuppressed, stats.RateUpdatesSent)
	}
	if updates < 2 {
		t.Errorf("at least the initial allocations must be notified, got %d", updates)
	}
}

func TestHigherThresholdSendsFewerUpdates(t *testing.T) {
	// 25 flows share one destination link; each additional arrival changes
	// the existing flows' fair share by ~3-4%, which a 0.01 threshold must
	// report but a 0.05 threshold suppresses.
	run := func(threshold float64) int64 {
		a := newTestAllocator(t, Config{UpdateThreshold: threshold})
		id := FlowID(1)
		for ; id <= 25; id++ {
			_ = a.FlowletStart(id, 1+int(id), 0, 1)
		}
		for i := 0; i < 100; i++ {
			a.Iterate()
		}
		a.ResetStats()
		for ; id <= 30; id++ {
			_ = a.FlowletStart(id, 1+int(id), 0, 1)
			for i := 0; i < 30; i++ {
				a.Iterate()
			}
		}
		return a.Stats().RateUpdatesSent
	}
	low := run(0.01)
	high := run(0.05)
	if high >= low {
		t.Errorf("threshold 0.05 sent %d updates, threshold 0.01 sent %d; higher threshold should send fewer", high, low)
	}
}

func TestTrafficStatsAccounting(t *testing.T) {
	a := newTestAllocator(t, Config{})
	_ = a.FlowletStart(1, 0, 17, 1)
	_ = a.FlowletStart(2, 5, 30, 1)
	_ = a.FlowletEnd(1)
	stats := a.Stats()
	if stats.StartNotifications != 2 || stats.EndNotifications != 1 {
		t.Errorf("notification counts wrong: %+v", stats)
	}
	wantTo := int64(2*(FlowletStartBytes+perMessageOverheadBytes) + FlowletEndBytes + perMessageOverheadBytes)
	if stats.ToAllocatorBytes != wantTo {
		t.Errorf("ToAllocatorBytes = %d, want %d", stats.ToAllocatorBytes, wantTo)
	}
	a.ResetStats()
	if a.Stats().ToAllocatorBytes != 0 {
		t.Error("ResetStats did not clear counters")
	}
	to, from := a.UpdateTrafficFractions(0)
	if to != 0 || from != 0 {
		t.Error("zero-duration fractions should be zero")
	}
}

func TestFailureAndRecovery(t *testing.T) {
	a := newTestAllocator(t, Config{})
	_ = a.FlowletStart(1, 0, 17, 1)
	for i := 0; i < 50; i++ {
		a.Iterate()
	}
	before := a.Rate(1)
	a.Fail()
	if !a.Failed() {
		t.Error("Failed() should report true")
	}
	if got := a.Iterate(); got != nil {
		t.Error("failed allocator should not produce updates")
	}
	// Rates survive the failure (endpoints keep using them, §2).
	if a.Rate(1) != before {
		t.Error("rates should be preserved across a failure")
	}
	a.Recover()
	if a.Failed() {
		t.Error("Recover did not clear the failure")
	}
	// After recovery the allocator picks up where it left off.
	a.Iterate()
	if math.Abs(a.Rate(1)-before)/before > 0.05 {
		t.Errorf("rate after recovery %.3g drifted from %.3g", a.Rate(1), before)
	}
}

func TestIterateWithNoFlows(t *testing.T) {
	a := newTestAllocator(t, Config{})
	if got := a.Iterate(); got != nil {
		t.Error("Iterate with no flows should return nil")
	}
	if a.OverAllocation() != 0 {
		t.Error("OverAllocation with no flows should be 0")
	}
}

func TestUNormAllocatorStillFeasible(t *testing.T) {
	a := newTestAllocator(t, Config{Normalizer: norm.NewUNorm()})
	for id := 1; id <= 5; id++ {
		_ = a.FlowletStart(FlowID(id), id, 100, 1)
	}
	for i := 0; i < 50; i++ {
		a.Iterate()
	}
	loads := num.LinkLoads(a.Problem(), normalizedRates(a), nil)
	for l, load := range loads {
		capacity := a.Config().Topology.Link(topology.LinkID(l)).Capacity
		if load > capacity*1.0001 {
			t.Fatalf("U-NORM allocator exceeded capacity on link %d", l)
		}
	}
}

func TestRawVsNormalizedRates(t *testing.T) {
	a := newTestAllocator(t, Config{})
	for id := 1; id <= 8; id++ {
		_ = a.FlowletStart(FlowID(id), id, 140, 1)
	}
	a.Iterate()
	raw := a.RawRates()
	normalized := a.Rates()
	for id, r := range normalized {
		if r > raw[id]*1.0001 {
			t.Errorf("flow %d: normalized rate %.3g exceeds raw %.3g", id, r, raw[id])
		}
	}
}

func TestRateUnknownFlow(t *testing.T) {
	a := newTestAllocator(t, Config{})
	if got := a.Rate(99); got != 0 {
		t.Errorf("Rate(unknown) = %g, want 0", got)
	}
}

// TestAllocatorChurnIndexConsistency drives randomized FlowletStart and
// FlowletEnd churn and asserts that after every swap-delete the compiled CSR
// index, the allocator's indexByID map, its flowState slice, and the solver's
// Rates slice stay mutually consistent: every registered ID maps to the slot
// holding its flow, whose compiled route matches the problem's route.
func TestAllocatorChurnIndexConsistency(t *testing.T) {
	a := newTestAllocator(t, Config{})
	rng := rand.New(rand.NewSource(5))
	numServers := a.Config().Topology.NumServers()
	nextID := FlowID(1)
	var live []FlowID

	check := func() {
		t.Helper()
		if len(a.flows) != len(a.indexByID) || a.NumFlows() != len(a.problem.Flows) {
			t.Fatalf("size mismatch: %d flows, %d ids, %d problem flows",
				len(a.flows), len(a.indexByID), len(a.problem.Flows))
		}
		if len(a.state.Rates) != a.NumFlows() {
			t.Fatalf("Rates has %d entries for %d flows", len(a.state.Rates), a.NumFlows())
		}
		c := a.problem.Compiled()
		if c.NumFlows() != a.NumFlows() {
			t.Fatalf("compiled has %d flows, allocator has %d", c.NumFlows(), a.NumFlows())
		}
		for id, idx := range a.indexByID {
			f := a.flows[idx]
			if f.id != id {
				t.Fatalf("indexByID[%d] = %d, but slot holds flow %d", id, idx, f.id)
			}
			// The compiled route must match both the problem's route slice
			// and the topology's route for the flow's endpoints.
			want, err := a.Config().Topology.Route(f.src, f.dst, int(id))
			if err != nil {
				t.Fatal(err)
			}
			got := c.Route(idx)
			probRoute := a.problem.Flows[idx].Route
			if len(got) != len(want) || len(probRoute) != len(want) {
				t.Fatalf("flow %d: route lengths diverge: compiled %v, problem %v, topo %v", id, got, probRoute, want)
			}
			for j := range want {
				if got[j] != int32(want[j]) || probRoute[j] != int32(want[j]) {
					t.Fatalf("flow %d: compiled %v / problem %v, want %v", id, got, probRoute, want)
				}
			}
		}
	}

	for step := 0; step < 1500; step++ {
		if rng.Float64() < 0.55 || len(live) == 0 {
			src := rng.Intn(numServers)
			dst := rng.Intn(numServers - 1)
			if dst >= src {
				dst++
			}
			if err := a.FlowletStart(nextID, src, dst, 1+rng.Float64()); err != nil {
				t.Fatal(err)
			}
			live = append(live, nextID)
			nextID++
		} else {
			i := rng.Intn(len(live))
			if err := a.FlowletEnd(live[i]); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%10 == 0 {
			a.Iterate()
		}
		if step%23 == 0 || len(live) < 2 {
			check()
		}
	}
	check()
}

func TestSignificantChange(t *testing.T) {
	cases := []struct {
		old, new, threshold float64
		want                bool
	}{
		{0, 5, 0.01, true},
		{0, 0, 0.01, false},
		{100, 100.5, 0.01, false},
		{100, 102, 0.01, true},
		{100, 98, 0.01, true},
		{100, 99.5, 0.01, false},
	}
	for _, tc := range cases {
		if got := SignificantRateChange(tc.old, tc.new, tc.threshold); got != tc.want {
			t.Errorf("SignificantRateChange(%g,%g,%g) = %v, want %v", tc.old, tc.new, tc.threshold, got, tc.want)
		}
	}
}

package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/topology"
)

// condBarrier is the former sync.Cond-based cyclic barrier, kept as the
// baseline for BenchmarkBarrier: every wait takes the mutex, and every
// release goes through a kernel-assisted broadcast, which costs µs-scale
// wakeups between the allocator's phases.
type condBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newCondBarrier(n int) *condBarrier {
	b := &condBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *condBarrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// BenchmarkBarrier compares one full barrier round (all parties arrive and
// are released) of the sense-reversing atomic barrier against the former
// sync.Cond implementation, at the party counts of the 2- and 4-block
// allocator configurations.
func BenchmarkBarrier(b *testing.B) {
	for _, parties := range []int{4, 16} {
		run := func(wait func()) func(b *testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				var wg sync.WaitGroup
				for p := 0; p < parties-1; p++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < b.N; i++ {
							wait()
						}
					}()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					wait()
				}
				wg.Wait()
			}
		}
		b.Run(fmt.Sprintf("sense-reversing/parties=%d", parties), run(newBarrier(parties).wait))
		b.Run(fmt.Sprintf("cond/parties=%d", parties), run(newCondBarrier(parties).wait))
	}
}

// benchChurnTopo is the fabric shared by the churn benchmarks: 16 racks of
// 32 servers behind 8 spines.
func benchChurnTopo(b *testing.B) *topology.Topology {
	b.Helper()
	topo, err := topology.NewTwoTier(topology.Config{
		Racks:          16,
		ServersPerRack: 32,
		Spines:         8,
		LinkCapacity:   10e9,
		LinkDelay:      1e-6,
	})
	if err != nil {
		b.Fatal(err)
	}
	return topo
}

// benchFlow derives deterministic distinct endpoints from a flow ID.
func benchFlow(id FlowID, numServers int) ParallelFlow {
	src := int(id*7) % numServers
	dst := int(id*7+11) % numServers
	if dst == src {
		dst = (dst + 1) % numServers
	}
	return ParallelFlow{ID: id, Src: src, Dst: dst, Weight: 1}
}

// TestParallelChurnAllocFree pins the allocation-free churn property: with a
// warm route cache and warmed arenas, a steady-state FlowletEnd+FlowletStart
// pair performs zero heap allocations (the former topo.Route call allocated
// one Path per start; the (src, dst, hash)-keyed RouteCache removes it).
func TestParallelChurnAllocFree(t *testing.T) {
	topo, err := topology.NewTwoTier(topology.Config{
		Racks: 4, ServersPerRack: 8, Spines: 2, LinkCapacity: 10e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := topo.NumServers()
	pa, err := NewParallelAllocator(ParallelConfig{Topology: topo, Blocks: 2, Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Close()
	const base = 512
	for i := 0; i < base; i++ {
		f := benchFlow(FlowID(i), n)
		if err := pa.FlowletStart(f.ID, f.Src, f.Dst, f.Weight); err != nil {
			t.Fatal(err)
		}
	}
	// Warm every (src, dst, hash-class) the churn sequence will touch, plus
	// the arena compaction scratch, by cycling the whole window once.
	oldest, next := FlowID(0), FlowID(base)
	churn := func() {
		if err := pa.FlowletEnd(oldest); err != nil {
			t.Fatal(err)
		}
		oldest++
		f := benchFlow(next, n)
		// benchFlow endpoints depend on id modulo the server count; keep the
		// hash class stable too by reusing ids modulo a fixed cycle.
		if err := pa.FlowletStart(f.ID, f.Src, f.Dst, f.Weight); err != nil {
			t.Fatal(err)
		}
		next++
	}
	for i := 0; i < 4*base; i++ {
		churn()
	}
	if avg := testing.AllocsPerRun(200, churn); avg != 0 {
		t.Fatalf("steady-state churn allocates %.1f objects per start/end pair, want 0", avg)
	}
}

// BenchmarkParallelChurn measures one daemon-realistic iteration boundary —
// a burst of flowlet starts and ends folded in, then one parallel iteration —
// through the incremental FlowletStart/FlowletEnd path versus the former
// full-rebuild (SetFlows of the whole live set) baseline. With the route
// cache warm the churn itself is allocation-free (TestParallelChurnAllocFree
// asserts exactly that), so -benchmem here shows only the iteration path.
func BenchmarkParallelChurn(b *testing.B) {
	const (
		blocks     = 2
		baseFlows  = 8192
		churnBurst = 32 // starts + ends folded in per iteration
	)
	topo := benchChurnTopo(b)
	n := topo.NumServers()
	setup := func(b *testing.B) (*ParallelAllocator, []ParallelFlow) {
		b.Helper()
		pa, err := NewParallelAllocator(ParallelConfig{
			Topology: topo, Blocks: blocks, Gamma: 1, Normalize: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		flows := make([]ParallelFlow, baseFlows)
		for i := range flows {
			flows[i] = benchFlow(FlowID(i), n)
		}
		if err := pa.SetFlows(flows); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			pa.Iterate()
		}
		return pa, flows
	}

	b.Run("incremental", func(b *testing.B) {
		pa, _ := setup(b)
		defer pa.Close()
		oldest, next := FlowID(0), FlowID(baseFlows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < churnBurst; k++ {
				if err := pa.FlowletEnd(oldest); err != nil {
					b.Fatal(err)
				}
				oldest++
				f := benchFlow(next, n)
				if err := pa.FlowletStart(f.ID, f.Src, f.Dst, f.Weight); err != nil {
					b.Fatal(err)
				}
				next++
			}
			pa.Iterate()
		}
	})

	b.Run("boundary", func(b *testing.B) {
		// The multicore shard's per-exchange cost on top of plain iteration:
		// export the digest for the fabric links, fold a peer's external
		// loads and pinned prices back in, then iterate. This is exactly the
		// extra work a sharded daemon adds per exchange interval when its
		// engine is the ParallelAllocator.
		pa, _ := setup(b)
		defer pa.Close()
		var fabric []topology.LinkID
		for l := 0; l < topo.NumLinks(); l++ {
			link := topo.Link(topology.LinkID(l))
			if topo.Node(link.Src).Kind != topology.Server &&
				topo.Node(link.Dst).Kind != topology.Server {
				fabric = append(fabric, topology.LinkID(l))
			}
		}
		loads := make([]float64, len(fabric))
		hdiag := make([]float64, len(fabric))
		prices := make([]float64, len(fabric))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := pa.BoundaryDigest(fabric, loads, hdiag); err != nil {
				b.Fatal(err)
			}
			pa.LinkPrices(fabric, prices)
			// Feed the digest back as if it were a peer's: realistic sizes,
			// zero net effect on convergence, no per-iteration drift.
			pa.SetExternalLoads(fabric, loads, hdiag)
			pa.PinPrices(fabric[:len(fabric)/2], prices[:len(fabric)/2])
			pa.Iterate()
		}
	})

	b.Run("rebuild", func(b *testing.B) {
		pa, flows := setup(b)
		defer pa.Close()
		// The former engine's shadow state: the live list plus an ID
		// index, reloaded wholesale on churn.
		index := make(map[FlowID]int, len(flows))
		for i, f := range flows {
			index[f.ID] = i
		}
		oldest, next := FlowID(0), FlowID(baseFlows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < churnBurst; k++ {
				idx := index[oldest]
				last := len(flows) - 1
				if idx != last {
					flows[idx] = flows[last]
					index[flows[idx].ID] = idx
				}
				flows = flows[:last]
				delete(index, oldest)
				oldest++
				index[next] = len(flows)
				flows = append(flows, benchFlow(next, n))
				next++
			}
			if err := pa.SetFlows(flows); err != nil {
				b.Fatal(err)
			}
			pa.Iterate()
		}
	})
}

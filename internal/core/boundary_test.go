package core

import (
	"testing"

	"repro/internal/topology"
)

// boundaryTopo is a 2-rack fabric small enough to reason about link
// ownership by hand.
func boundaryTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.NewTwoTier(topology.Config{
		Racks: 2, ServersPerRack: 2, Spines: 1, LinkCapacity: 10e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestBoundaryDigestMatchesLoads checks the exported digest equals the loads
// of the rates the last Iterate produced, and is all zeros while idle.
func TestBoundaryDigestMatchesLoads(t *testing.T) {
	topo := boundaryTopo(t)
	a, err := NewAllocator(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	links := make([]topology.LinkID, topo.NumLinks())
	for i := range links {
		links[i] = topology.LinkID(i)
	}
	loads := make([]float64, len(links))
	hdiag := make([]float64, len(links))

	// Idle allocator: digest is all zeros even before any Iterate.
	if err := a.BoundaryDigest(links, loads, hdiag); err != nil {
		t.Fatal(err)
	}
	for i := range loads {
		if loads[i] != 0 || hdiag[i] != 0 {
			t.Fatalf("idle digest not zero at link %d: %g/%g", i, loads[i], hdiag[i])
		}
	}

	if err := a.FlowletStart(1, 0, 3, 1); err != nil {
		t.Fatal(err)
	}
	a.Iterate()
	if err := a.BoundaryDigest(links, loads, hdiag); err != nil {
		t.Fatal(err)
	}
	route, err := topo.Route(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	onPath := make(map[topology.LinkID]bool)
	for _, l := range route {
		onPath[l] = true
	}
	raw := a.RawRates()[1]
	if raw <= 0 {
		t.Fatalf("raw rate = %g", raw)
	}
	for i, l := range links {
		if onPath[l] {
			if loads[i] != raw {
				t.Fatalf("link %d load %g, want %g", l, loads[i], raw)
			}
			if hdiag[i] >= 0 {
				t.Fatalf("link %d hdiag %g, want negative", l, hdiag[i])
			}
		} else if loads[i] != 0 {
			t.Fatalf("off-path link %d load %g, want 0", l, loads[i])
		}
	}

	// Retiring the flow empties the digest again.
	if err := a.FlowletEnd(1); err != nil {
		t.Fatal(err)
	}
	if err := a.BoundaryDigest(links, loads, hdiag); err != nil {
		t.Fatal(err)
	}
	for i := range loads {
		if loads[i] != 0 {
			t.Fatalf("post-retire digest not zero at link %d", i)
		}
	}
}

// TestExternalLoadsThrottleSharedLink verifies imported remote demand raises
// a link's price and lowers the local flow's allocation, and that clearing
// it restores headroom.
func TestExternalLoadsThrottleSharedLink(t *testing.T) {
	topo := boundaryTopo(t)
	alone, err := NewAllocator(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := NewAllocator(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []*Allocator{alone, shared} {
		if err := a.FlowletStart(1, 0, 3, 1); err != nil {
			t.Fatal(err)
		}
	}
	route, err := topo.Route(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A remote flow congesting the last (downward) link of the path at full
	// line rate, with a realistic sensitivity.
	ext := []topology.LinkID{route[len(route)-1]}
	w := topo.Config().LinkCapacity
	for i := 0; i < 200; i++ {
		shared.SetExternalLoads(ext, []float64{10e9}, []float64{-w / 4})
		alone.Iterate()
		shared.Iterate()
	}
	ra, rs := alone.Rate(1), shared.Rate(1)
	if rs >= ra/1.5 {
		t.Fatalf("external congestion barely throttled the flow: alone %g, shared %g", ra, rs)
	}
	// Clearing external demand recovers the allocation.
	shared.SetExternalLoads(ext, []float64{0}, []float64{0})
	for i := 0; i < 300; i++ {
		shared.Iterate()
	}
	if got := shared.Rate(1); got < 0.9*ra {
		t.Fatalf("after clearing external load rate = %g, want ≈ %g", got, ra)
	}
}

// TestPinPricesAppliesImmediately verifies an imported price takes effect on
// the very next iteration and survives local price updates.
func TestPinPricesAppliesImmediately(t *testing.T) {
	topo := boundaryTopo(t)
	a, err := NewAllocator(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.FlowletStart(1, 0, 3, 1); err != nil {
		t.Fatal(err)
	}
	route, err := topo.Route(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	down := route[len(route)-1]
	a.PinPrices([]topology.LinkID{down}, []float64{40})
	a.Iterate()
	prices := make([]float64, 1)
	a.LinkPrices([]topology.LinkID{down}, prices)
	if prices[0] != 40 {
		t.Fatalf("pinned price after Iterate = %g, want 40", prices[0])
	}
	// A pinned path price of ≥ 40 caps the raw rate near w/40.
	w := topo.Config().LinkCapacity
	if raw := a.RawRates()[1]; raw > w/40 {
		t.Fatalf("raw rate %g exceeds w/pinned-price %g", raw, w/40)
	}
}

// TestUnpinPricesReturnsLinkToLocalControl verifies an unpinned link keeps
// the last imported price as a starting point but evolves under local
// updates afterwards — the adopting daemon's seeding semantics.
func TestUnpinPricesReturnsLinkToLocalControl(t *testing.T) {
	topo := boundaryTopo(t)
	a, err := NewAllocator(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.FlowletStart(1, 0, 3, 1); err != nil {
		t.Fatal(err)
	}
	route, err := topo.Route(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	down := []topology.LinkID{route[len(route)-1]}
	prices := make([]float64, 1)

	// Pinned: the price survives iterations verbatim.
	a.PinPrices(down, []float64{40})
	a.Iterate()
	a.LinkPrices(down, prices)
	if prices[0] != 40 {
		t.Fatalf("pinned price = %g, want 40", prices[0])
	}
	// Unpinned: one lone flow cannot justify a price of 40 on a 10 Gb/s
	// link, so local updates pull it down.
	a.UnpinPrices(down)
	for i := 0; i < 50; i++ {
		a.Iterate()
	}
	a.LinkPrices(down, prices)
	if prices[0] >= 40 {
		t.Fatalf("price after unpinning = %g, want < 40 (local control)", prices[0])
	}
	// UnpinPrices before any PinPrices is a no-op, not a panic.
	fresh, err := NewAllocator(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	fresh.UnpinPrices(down)
}

// TestSeedPricesWarmRestartByteEquivalence is the core of the daemon's warm
// restart: replaying LiveFlows in order and seeding LinkPrices onto a fresh
// allocator makes every subsequent iteration produce bit-identical rates,
// because NED rates are a pure function of prices and flow order.
func TestSeedPricesWarmRestartByteEquivalence(t *testing.T) {
	topo := boundaryTopo(t)
	orig, err := NewAllocator(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	flows := []struct {
		id       FlowID
		src, dst int
		w        float64
	}{{1, 0, 3, 1}, {2, 1, 2, 2}, {3, 2, 0, 1}, {4, 3, 1, 0.5}}
	for _, f := range flows {
		if err := orig.FlowletStart(f.id, f.src, f.dst, f.w); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 37; i++ {
		orig.Iterate()
	}

	// Snapshot: live flows in canonical order + all link prices.
	live := orig.LiveFlows()
	links := make([]topology.LinkID, topo.NumLinks())
	for i := range links {
		links[i] = topology.LinkID(i)
	}
	prices := make([]float64, len(links))
	orig.LinkPrices(links, prices)

	// Restore onto a fresh allocator.
	warm, err := NewAllocator(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range live {
		if err := warm.FlowletStart(f.ID, f.Src, f.Dst, f.Weight); err != nil {
			t.Fatal(err)
		}
	}
	warm.SeedPrices(links, prices)

	// Both must now produce bit-identical rates forever.
	for i := 0; i < 20; i++ {
		orig.Iterate()
		warm.Iterate()
		ro, rw := orig.RawRates(), warm.RawRates()
		for id, r := range ro {
			if rw[id] != r {
				t.Fatalf("iter %d flow %d: warm rate %v != original %v", i, id, rw[id], r)
			}
		}
	}
}

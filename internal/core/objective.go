package core

import "repro/internal/num"

// Objective returns the NUM objective Σ U(x) over the most recently computed
// normalized rates. With no flows registered the objective is 0 by
// convention; with flows still at zero rate the sum is -Inf (log utility), so
// callers that serialize the value must sanitize non-finite results.
// Allocation-free in steady state (the compiled index is cached).
func (a *Allocator) Objective() float64 {
	if len(a.flows) == 0 {
		return 0
	}
	rates := a.normalized
	if len(rates) != len(a.problem.Flows) {
		rates = a.state.Rates
	}
	return num.Objective(&a.problem, rates)
}

// Objective returns the NUM objective Σ U(x) over the rates computed by the
// most recent Iterate, matching Allocator.Objective: both evaluate the log
// utility at the capacity-scaled weights the solver runs on. It walks the
// dense per-FlowBlock arrays without allocating and may only be called while
// no Iterate is in flight.
func (p *ParallelAllocator) Objective() float64 {
	sum := 0.0
	for _, fb := range p.fbs {
		for i := range fb.ids {
			sum += num.LogUtility{W: fb.weights[i]}.Value(fb.rates[i])
		}
	}
	return sum
}

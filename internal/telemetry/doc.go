// Package telemetry is the daemon's observability layer: a dependency-free
// metrics registry (atomic counters, gauges and fixed-bucket histograms with
// zero allocations on the hot path), a convergence flight recorder (a
// fixed-size ring of per-iteration samples), and an admin HTTP endpoint that
// exposes both — hand-rolled Prometheus text-format exposition on /metrics,
// net/http/pprof under /debug/pprof/, drain-aware /healthz and /readyz
// probes, and the flight-recorder ring as JSON on /trace.
//
// The registry unifies the pre-existing ad-hoc counter surfaces —
// server.Stats, metrics.LoopStats, cluster.WireStats and the fault
// injector's kill records — behind scrape-time CounterFunc/GaugeFunc
// bindings, so the sources keep their cheap atomic counters and nothing on
// the allocator's iteration path changes shape. Everything is hand-rolled on
// the standard library: the module has no external dependencies, and the
// Prometheus exposition format is simple enough that writing (and linting,
// see Lint) it directly is less code than vendoring a client library.
package telemetry

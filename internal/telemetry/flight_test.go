package telemetry

import (
	"encoding/json"
	"testing"
)

func TestFlightRecorderWraparound(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(FlightSample{Iteration: uint64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d; want 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d; want 10", r.Total())
	}
	snap := r.Snapshot()
	want := []uint64{6, 7, 8, 9}
	for i, s := range snap {
		if s.Iteration != want[i] {
			t.Fatalf("Snapshot[%d].Iteration = %d; want %d (oldest-first order)", i, s.Iteration, want[i])
		}
	}
}

func TestFlightRecorderPartial(t *testing.T) {
	r := NewFlightRecorder(8)
	r.Record(FlightSample{Iteration: 1})
	r.Record(FlightSample{Iteration: 2})
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Iteration != 1 || snap[1].Iteration != 2 {
		t.Fatalf("partial snapshot wrong: %+v", snap)
	}
}

func TestFlightTraceJSON(t *testing.T) {
	r := NewFlightRecorder(2)
	r.Record(FlightSample{Iteration: 7, Objective: 1.5, ChurnEvents: 3})
	raw, err := json.Marshal(r.Trace())
	if err != nil {
		t.Fatal(err)
	}
	var back FlightTrace
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Total != 1 || len(back.Samples) != 1 || back.Samples[0].Iteration != 7 ||
		back.Samples[0].Objective != 1.5 || back.Samples[0].ChurnEvents != 3 {
		t.Fatalf("trace round-trip wrong: %s", raw)
	}
}

func TestFlightRecorderZeroAlloc(t *testing.T) {
	r := NewFlightRecorder(16)
	// Fill the ring first: append growth is setup cost, not steady state.
	for i := 0; i < 16; i++ {
		r.Record(FlightSample{})
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(FlightSample{Iteration: 1, LatencySec: 1e-5})
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v per op; want 0", allocs)
	}
}

func BenchmarkTelemetryRecord(b *testing.B) {
	reg := NewRegistry()
	hist := reg.Histogram("flowtune_iteration_latency_seconds", "latency", ExpBuckets(1e-6, 4, 10))
	churn := reg.Counter("flowtune_churn_events_total", "churn")
	rec := NewFlightRecorder(DefaultFlightWindow)
	for i := 0; i < DefaultFlightWindow; i++ {
		rec.Record(FlightSample{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hist.Observe(1.2e-5)
		churn.Add(2)
		rec.Record(FlightSample{
			Iteration:        uint64(i),
			Objective:        42.5,
			MaxPriceResidual: 1e-9,
			ChurnEvents:      2,
			Updates:          8,
			LatencySec:       1.2e-5,
		})
	}
}

package telemetry

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// Lint validates a Prometheus text-format exposition, returning the first
// violation found. It enforces what an external promtool-style linter would:
// every series is preceded by HELP and TYPE lines for its family, TYPE is a
// known metric type, families are contiguous (no interleaving), sample values
// parse as floats, and no series (name plus label set) appears twice. It is
// the in-suite replacement for an external format linter, run by the tests
// against every registry this repo assembles.
func Lint(exposition string) error {
	type familyInfo struct {
		help, typ bool
		kind      string
		closed    bool // a different family started after this one
	}
	families := make(map[string]*familyInfo)
	seen := make(map[string]struct{}) // full series lines (name+labels)
	var current string

	open := func(name string) *familyInfo {
		f := families[name]
		if f == nil {
			f = &familyInfo{}
			families[name] = f
		}
		if current != name {
			if f.closed {
				return nil // family re-opened after another family ran
			}
			if cur := families[current]; cur != nil {
				cur.closed = true
			}
			current = name
		}
		return f
	}

	sc := bufio.NewScanner(strings.NewReader(exposition))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", line, text)
			}
			name := fields[2]
			f := open(name)
			if f == nil {
				return fmt.Errorf("line %d: family %s re-opened after another family", line, name)
			}
			switch fields[1] {
			case "HELP":
				if f.help {
					return fmt.Errorf("line %d: duplicate HELP for %s", line, name)
				}
				f.help = true
			case "TYPE":
				if f.typ {
					return fmt.Errorf("line %d: duplicate TYPE for %s", line, name)
				}
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE for %s missing a type", line, name)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q for %s", line, fields[3], name)
				}
				f.kind = fields[3]
				f.typ = true
			}
			continue
		}

		// Sample line: name[{labels}] value
		name, labels, value, err := splitSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if !validMetricName(name) {
			return fmt.Errorf("line %d: invalid metric name %q", line, name)
		}
		family := name
		// Histogram component series belong to the base family.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name {
				if f, ok := families[base]; ok && f.kind == "histogram" {
					family = base
				}
				break
			}
		}
		f := open(family)
		if f == nil {
			return fmt.Errorf("line %d: family %s re-opened after another family", line, family)
		}
		if !f.help || !f.typ {
			return fmt.Errorf("line %d: series %s not preceded by HELP and TYPE for %s", line, name, family)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: unparsable value %q for %s", line, value, name)
		}
		key := name + labels
		if _, dup := seen[key]; dup {
			return fmt.Errorf("line %d: duplicate series %s", line, key)
		}
		seen[key] = struct{}{}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(seen) == 0 {
		return fmt.Errorf("empty exposition: no series")
	}
	return nil
}

// splitSample splits a sample line into metric name, rendered label block
// (may be empty) and value text.
func splitSample(text string) (name, labels, value string, err error) {
	rest := text
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unterminated label block in %q", text)
		}
		labels = rest[i : j+1]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", "", "", fmt.Errorf("malformed sample %q", text)
		}
		return fields[0], "", fields[1], nil
	}
	if name == "" || rest == "" || strings.ContainsAny(rest, " \t") {
		return "", "", "", fmt.Errorf("malformed sample %q", text)
	}
	return name, labels, rest, nil
}

package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Series under the same family name are told
// apart by their label sets ({shard="0"} vs {shard="1"}).
type Label struct {
	Key, Value string
}

// metricKind is the Prometheus metric type of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing value. The zero value is unusable;
// obtain counters from a Registry. All methods are safe for concurrent use
// and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (d must be non-negative; negative deltas
// are ignored so a miscounted source cannot make the series non-monotonic).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. Safe for concurrent use,
// allocation-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Buckets are cumulative
// upper-bound counters in the Prometheus style; Observe is a linear scan
// over at most a few dozen bounds plus three atomic adds — no allocation,
// no locking.
type Histogram struct {
	bounds []float64 // sorted upper bounds, +Inf implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// ExpBuckets returns n exponentially spaced bucket bounds starting at start
// and growing by factor. It is the standard latency-bucket shape
// (ExpBuckets(1e-6, 4, 10) spans 1 µs to ~262 ms).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// series is one exposition line: a label set plus its value source.
type series struct {
	labels string // pre-rendered {k="v",...}, "" when unlabeled
	// Exactly one of the following is set.
	counter     *Counter
	gauge       *Gauge
	counterFunc func() float64
	gaugeFunc   func() float64
	hist        *Histogram
}

// family is one named metric with HELP/TYPE and its series.
type family struct {
	name string
	help string
	kind metricKind
	ser  []series
	seen map[string]struct{} // label strings, duplicate defense
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration order is preserved, so scrapes are
// deterministic. Registration methods panic on invalid names, duplicate
// series, or re-registering a name under a different type/help — these are
// programming errors, caught by the exposition lint test.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.add(name, help, kindCounter, series{counter: c}, labels)
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.add(name, help, kindGauge, series{gauge: g}, labels)
	return g
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the binding that exposes pre-existing atomic counters
// (server.Stats and friends) without double-counting.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, kindCounter, series{counterFunc: fn}, labels)
}

// GaugeFunc registers a gauge series evaluated at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, kindGauge, series{gaugeFunc: fn}, labels)
}

// Histogram registers and returns a histogram with the given upper bounds
// (sorted ascending; the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("telemetry: histogram %s bounds not sorted", name))
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)),
	}
	r.add(name, help, kindHistogram, series{hist: h}, labels)
	return h
}

func (r *Registry) add(name, help string, kind metricKind, s series, labels []Label) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	s.labels = renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, seen: make(map[string]struct{})}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s re-registered as %s (was %s)", name, kind, f.kind))
	} else if f.help != help {
		panic(fmt.Sprintf("telemetry: metric %s re-registered with different help", name))
	}
	if _, dup := f.seen[s.labels]; dup {
		panic(fmt.Sprintf("telemetry: duplicate series %s%s", name, s.labels))
	}
	f.seen[s.labels] = struct{}{}
	f.ser = append(f.ser, s)
}

// validMetricName reports whether name matches the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// validLabelKey reports whether key matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelKey(key string) bool {
	if key == "" {
		return false
	}
	for i, c := range key {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// renderLabels renders a label set as {k="v",...} with exposition escaping,
// keys in the given order (callers pass stable orders, so series identity is
// deterministic).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("telemetry: invalid label key %q", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		escapeLabelValue(&b, l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the exposition-format escapes (backslash, quote,
// newline).
func escapeLabelValue(b *strings.Builder, v string) {
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
}

// escapeHelp escapes a HELP string (backslash and newline only, per the
// format).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatValue renders a sample value. Integral values print without an
// exponent so counters read naturally; everything else uses the shortest
// round-trip float form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the registry in the Prometheus text exposition format
// (version 0.0.4): families in registration order, each preceded by its HELP
// and TYPE lines, series in registration order. Scrape-time funcs are
// evaluated here.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.ser {
			switch {
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.counter.Value())
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.gauge.Value()))
			case s.counterFunc != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.counterFunc()))
			case s.gaugeFunc != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.gaugeFunc()))
			case s.hist != nil:
				writeHistogram(&b, f.name, s.labels, s.hist)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative _bucket lines,
// then _sum and _count.
func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	// The bucket label set extends the series labels with le="bound".
	prefix := "{"
	if labels != "" {
		prefix = labels[:len(labels)-1] + ","
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%sle=%q} %d\n", name, prefix, formatValue(bound), cum)
	}
	fmt.Fprintf(b, "%s_bucket%sle=\"+Inf\"} %d\n", name, prefix, h.Count())
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatValue(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, h.Count())
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// AdminConfig wires an admin endpoint to its sources.
type AdminConfig struct {
	// Registry backs /metrics. Required.
	Registry *Registry
	// Recorder backs /trace; nil serves an empty trace unless Trace is set.
	Recorder *FlightRecorder
	// Trace, when set, overrides the /trace payload (the cluster admin
	// serves a per-shard map through this hook). The result is JSON-encoded.
	Trace func() any
	// Healthy backs /healthz: liveness. Nil means always healthy. A daemon
	// stays healthy through a drain — only process death (Shutdown
	// completing) should flip it, so orchestrators do not kill a daemon
	// that is busy handing its flows over.
	Healthy func() bool
	// Ready backs /readyz: readiness to take new work. Nil means always
	// ready. Wire it to the drain flag: readiness must flip to 503 the
	// moment Drain starts, so load balancers stop routing new endpoints to
	// the daemon before the drain-flagged EpochNotify ever lands.
	Ready func() bool
}

// Admin serves the observability endpoints of one daemon (or one aggregated
// cluster view): Prometheus text-format /metrics, /healthz and /readyz
// probes, the flight-recorder ring on /trace, and net/http/pprof under
// /debug/pprof/.
type Admin struct {
	cfg AdminConfig
	srv *http.Server

	mu sync.Mutex
	ln net.Listener
}

// NewAdmin creates an admin endpoint. Call Start (own listener) or Handler
// (caller-managed serving) to expose it.
func NewAdmin(cfg AdminConfig) (*Admin, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("telemetry: AdminConfig.Registry is required")
	}
	a := &Admin{cfg: cfg}
	a.srv = &http.Server{
		Handler:           a.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return a, nil
}

// Handler returns the admin mux. The pprof handlers are mounted explicitly
// (not via the net/http/pprof DefaultServeMux side effect), so importing this
// package never pollutes a caller's default mux.
func (a *Admin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/healthz", probeHandler(a.cfg.Healthy))
	mux.HandleFunc("/readyz", probeHandler(a.cfg.Ready))
	mux.HandleFunc("/trace", a.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (a *Admin) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	a.cfg.Registry.WriteText(w)
}

func (a *Admin) handleTrace(w http.ResponseWriter, r *http.Request) {
	var payload any
	switch {
	case a.cfg.Trace != nil:
		payload = a.cfg.Trace()
	case a.cfg.Recorder != nil:
		payload = a.cfg.Recorder.Trace()
	default:
		payload = FlightTrace{Samples: []FlightSample{}}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// probeHandler renders a health probe: 200 "ok" or 503 "unavailable".
func probeHandler(probe func() bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if probe != nil && !probe() {
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	}
}

// Start listens on addr (port 0 picks a free port) and serves in the
// background until Close. It returns the bound address.
func (a *Admin) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: admin listen %s: %w", addr, err)
	}
	a.mu.Lock()
	a.ln = ln
	a.mu.Unlock()
	go a.srv.Serve(ln)
	return ln.Addr(), nil
}

// Addr returns the bound listen address (nil before Start).
func (a *Admin) Addr() net.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ln == nil {
		return nil
	}
	return a.ln.Addr()
}

// Close stops the admin server and its listener.
func (a *Admin) Close() error {
	a.mu.Lock()
	ln := a.ln
	a.ln = nil
	a.mu.Unlock()
	err := a.srv.Close()
	if ln != nil {
		ln.Close()
	}
	return err
}

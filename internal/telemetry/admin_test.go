package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
)

func getBody(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("flowtune_test_total", "a counter").Add(7)
	rec := NewFlightRecorder(4)
	rec.Record(FlightSample{Iteration: 3, Updates: 2})

	var ready atomic.Bool
	ready.Store(true)
	adm, err := NewAdmin(AdminConfig{
		Registry: reg,
		Recorder: rec,
		Ready:    ready.Load,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := adm.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	base := fmt.Sprintf("http://%s", addr)

	code, body, hdr := getBody(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	if !strings.Contains(body, "flowtune_test_total 7") {
		t.Fatalf("/metrics missing series:\n%s", body)
	}
	if err := Lint(body); err != nil {
		t.Fatalf("/metrics lint: %v", err)
	}

	if code, _, _ := getBody(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	if code, _, _ := getBody(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz status %d", code)
	}
	ready.Store(false)
	if code, _, _ := getBody(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after ready=false: status %d; want 503", code)
	}
	if code, _, _ := getBody(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz should stay 200 when only readiness drops; got %d", code)
	}

	code, body, hdr = getBody(t, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("/trace Content-Type = %q", ct)
	}
	var tr FlightTrace
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("/trace decode: %v\n%s", err, body)
	}
	if tr.Total != 1 || len(tr.Samples) != 1 || tr.Samples[0].Iteration != 3 {
		t.Fatalf("/trace payload wrong: %s", body)
	}

	if code, body, _ := getBody(t, base+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

func TestAdminTraceOverride(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x")
	adm, err := NewAdmin(AdminConfig{
		Registry: reg,
		Trace: func() any {
			return map[string]string{"shard0": "custom"}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := adm.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	_, body, _ := getBody(t, fmt.Sprintf("http://%s/trace", addr))
	if !strings.Contains(body, "custom") {
		t.Fatalf("/trace override ignored: %s", body)
	}
}

func TestAdminRequiresRegistry(t *testing.T) {
	if _, err := NewAdmin(AdminConfig{}); err == nil {
		t.Fatal("NewAdmin accepted a nil registry")
	}
}

package telemetry

import "sync"

// FlightSample is one iteration-boundary record in the convergence flight
// recorder: enough to diagnose whether a daemon is converging, thrashing on
// churn, or drowning in exchange staleness — sampled at every allocator
// iteration, kept in a fixed ring.
type FlightSample struct {
	// Iteration is the allocator iteration (server sequence number).
	Iteration uint64 `json:"iteration"`
	// Objective is the NUM objective Σ U(x) at this iteration. Recorded as
	// 0 while non-finite (flows still at zero rate produce -Inf, which JSON
	// cannot carry).
	Objective float64 `json:"objective"`
	// MaxPriceResidual is the largest absolute link-price change since the
	// previous iteration — the dual-ascent convergence signal.
	MaxPriceResidual float64 `json:"max_price_residual"`
	// ExchangeFolds and StalenessIters are this iteration's boundary
	// exchange activity: peer bundles folded in, and the summed staleness
	// (in iterations) of those folds.
	ExchangeFolds  int64 `json:"exchange_folds"`
	StalenessIters int64 `json:"staleness_iters"`
	// FanoutBytes and FanoutBytesFixed are the rate fan-out bytes
	// attributed since the previous sample, actual wire encoding vs the
	// fixed v3 cost of the same updates.
	FanoutBytes      int64 `json:"fanout_bytes"`
	FanoutBytesFixed int64 `json:"fanout_bytes_fixed"`
	// ChurnEvents is the number of flowlet add/end events folded in at
	// this iteration's boundary.
	ChurnEvents int `json:"churn_events"`
	// Updates is the number of rate updates the iteration emitted.
	Updates int `json:"updates"`
	// LatencySec is the iteration's wall-clock solver latency in seconds.
	LatencySec float64 `json:"latency_sec"`
}

// DefaultFlightWindow is the default ring size.
const DefaultFlightWindow = 512

// FlightRecorder keeps the last N FlightSamples in a fixed ring. Record is
// allocation-free (one mutex, one struct copy), so it can sit on the
// allocator's iteration path; Snapshot copies the ring out oldest-first for
// the admin /trace endpoint. Safe for concurrent use.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []FlightSample
	next  int
	total uint64
}

// NewFlightRecorder creates a recorder holding the last window samples
// (DefaultFlightWindow when window <= 0).
func NewFlightRecorder(window int) *FlightRecorder {
	if window <= 0 {
		window = DefaultFlightWindow
	}
	return &FlightRecorder{ring: make([]FlightSample, 0, window)}
}

// Record appends one sample, overwriting the oldest once the ring is full.
func (r *FlightRecorder) Record(s FlightSample) {
	r.mu.Lock()
	r.total++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, s)
	} else {
		r.ring[r.next] = s
		r.next = (r.next + 1) % len(r.ring)
	}
	r.mu.Unlock()
}

// Len returns the number of samples currently held (≤ the window).
func (r *FlightRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Total returns the number of samples recorded over the recorder's lifetime.
func (r *FlightRecorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the held samples oldest-first.
func (r *FlightRecorder) Snapshot() []FlightSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FlightSample, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// FlightTrace is the JSON shape the admin /trace endpoint serves.
type FlightTrace struct {
	// Total counts samples recorded over the recorder's lifetime; Samples
	// holds the retained window, oldest first.
	Total   uint64         `json:"total"`
	Samples []FlightSample `json:"samples"`
}

// Trace returns the recorder's current state in the /trace shape.
func (r *FlightRecorder) Trace() FlightTrace {
	return FlightTrace{Total: r.Total(), Samples: r.Snapshot()}
}
